package gvfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"gvfs/internal/nfs3"
)

// File is an open file within a Session. Reads and writes flow through
// the session's buffer cache in block-aligned NFS transfers, mimicking
// a kernel NFS client's page-sized I/O. File implements io.Reader,
// io.Writer, io.ReaderAt, io.WriterAt, io.Seeker and io.Closer.
type File struct {
	s    *Session
	fh   nfs3.FH
	path string

	mu     sync.Mutex
	pos    int64
	size   uint64
	dirty  bool // written since the last successful Sync
	closed bool
}

// Handle returns the file's NFS handle.
func (f *File) Handle() nfs3.FH { return f.fh }

// Path returns the session path the file was opened with.
func (f *File) Path() string { return f.path }

// Size returns the file size as known to this handle.
func (f *File) Size() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Close releases the handle, committing written data first so the
// caller learns about propagation failures instead of losing them.
// Close is idempotent: the commit happens once, and a second Close
// returns nil. Durability beyond the first hop is governed by the
// session's consistency model (see the proxy Flush/WriteBack controls).
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	dirty := f.dirty
	f.dirty = false
	f.mu.Unlock()
	f.s.untrackFile(f)
	if dirty {
		return f.s.nfs.Commit(f.fh, 0, 0)
	}
	return nil
}

func (f *File) checkOpen() error {
	if f.closed {
		return errors.New("gvfs: file is closed")
	}
	return nil
}

// ReadAt implements io.ReaderAt with block-aligned NFS reads through
// the buffer cache.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return 0, err
	}
	f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("gvfs: negative offset %d", off)
	}
	bs := int64(f.s.bs)
	total := 0
	for total < len(p) {
		cur := off + int64(total)
		blockStart := cur - cur%bs
		block := uint64(blockStart) / uint64(bs)

		// Only pay for time.Now() when session metrics are enabled.
		var blockStartTime time.Time
		if f.s.readDur != nil {
			blockStartTime = time.Now()
		}
		data, hit := f.s.pages.Get(f.fh, block)
		eof := false
		if !hit {
			var err error
			data, eof, err = f.s.nfs.Read(f.fh, uint64(blockStart), uint32(bs))
			if err != nil {
				return total, err
			}
			if len(data) > 0 {
				f.s.pages.Put(f.fh, block, data)
			}
			f.s.observeRead("miss", blockStartTime)
		} else {
			f.s.observeRead("hit", blockStartTime)
			// A page cached while it was the (short) tail of the file
			// goes stale when later writes extend the file past it:
			// the missing bytes are zero-fill holes. Extend the view
			// up to the known file size before concluding EOF.
			f.mu.Lock()
			size := int64(f.size)
			f.mu.Unlock()
			if want := size - blockStart; want > int64(len(data)) {
				if want > bs {
					want = bs
				}
				grown := make([]byte, want)
				copy(grown, data)
				data = grown
				f.s.pages.Put(f.fh, block, data)
			}
			eof = len(data) < int(bs)
		}
		inBlock := int(cur - blockStart)
		if inBlock >= len(data) {
			if total == 0 {
				return 0, io.EOF
			}
			return total, io.EOF
		}
		n := copy(p[total:], data[inBlock:])
		total += n
		if eof && inBlock+n >= len(data) {
			if total < len(p) {
				return total, io.EOF
			}
			return total, nil
		}
	}
	return total, nil
}

// ReadAll reads the entire file from offset 0.
func (f *File) ReadAll() ([]byte, error) {
	size := f.Size()
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if err == io.EOF {
		err = nil
	}
	return buf[:n], err
}

// WriteAt implements io.WriterAt. Writes are issued to the NFS server
// block by block (the proxy absorbs them under write-back), and the
// buffer cache is updated so subsequent reads hit in memory.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if err := f.checkOpen(); err != nil {
		f.mu.Unlock()
		return 0, err
	}
	f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("gvfs: negative offset %d", off)
	}
	bs := int64(f.s.bs)
	total := 0
	for total < len(p) {
		cur := off + int64(total)
		blockStart := cur - cur%bs
		inBlock := cur - blockStart
		n := int(bs - inBlock)
		if n > len(p)-total {
			n = len(p) - total
		}
		chunk := p[total : total+n]
		if _, _, err := f.s.nfs.Write(f.fh, uint64(cur), chunk, nfs3.Unstable); err != nil {
			return total, err
		}
		f.updatePageAfterWrite(blockStart, inBlock, chunk)
		total += n
	}
	f.mu.Lock()
	if end := uint64(off) + uint64(total); end > f.size {
		f.size = end
	}
	f.dirty = true
	f.mu.Unlock()
	return total, nil
}

// updatePageAfterWrite keeps the buffer cache coherent with a write.
// If the page is resident it is patched in place; a non-resident page
// is only installed for whole-block writes (partial writes to absent
// pages would otherwise need a read-modify-write round trip).
func (f *File) updatePageAfterWrite(blockStart, inBlock int64, chunk []byte) {
	block := uint64(blockStart) / uint64(f.s.bs)
	if data, ok := f.s.pages.Get(f.fh, block); ok {
		end := inBlock + int64(len(chunk))
		if int64(len(data)) < end {
			grown := make([]byte, end)
			copy(grown, data)
			data = grown
		}
		copy(data[inBlock:], chunk)
		f.s.pages.Put(f.fh, block, data)
		return
	}
	if inBlock == 0 {
		f.s.pages.Put(f.fh, block, chunk)
	}
}

// Read implements io.Reader at the current position.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	n, err := f.ReadAt(p, pos)
	f.mu.Lock()
	f.pos += int64(n)
	f.mu.Unlock()
	return n, err
}

// Write implements io.Writer at the current position.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	n, err := f.WriteAt(p, pos)
	f.mu.Lock()
	f.pos += int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.pos + offset
	case io.SeekEnd:
		next = int64(f.size) + offset
	default:
		return 0, fmt.Errorf("gvfs: bad whence %d", whence)
	}
	if next < 0 {
		return 0, errors.New("gvfs: negative seek position")
	}
	f.pos = next
	return next, nil
}

// Truncate resizes the file.
func (f *File) Truncate(size uint64) error {
	if _, err := f.s.nfs.SetAttr(f.fh, nfs3.SetAttr{Size: &size}); err != nil {
		return err
	}
	f.s.pages.InvalidateFile(f.fh)
	f.mu.Lock()
	f.size = size
	if f.pos > int64(size) {
		f.pos = int64(size)
	}
	f.mu.Unlock()
	return nil
}

// Sync issues an NFS COMMIT for the file. Under the proxy's write-back
// policy this returns quickly: the session consistency model defers
// real propagation to the middleware's WriteBack/Flush.
func (f *File) Sync() error {
	if err := f.s.nfs.Commit(f.fh, 0, 0); err != nil {
		return err
	}
	f.mu.Lock()
	f.dirty = false
	f.mu.Unlock()
	return nil
}
