// Command promlint validates a GVFS daemon's diagnostic surfaces — the
// CI guard that a live proxy serves well-formed, bounded output. It
// checks Prometheus text exposition (including exemplar syntax) from
// -url or standard input, the /statusz accounting document with
// -statusz-url, the /logz structured-log ring with -logz-url, and the
// /cachez cache-analytics document with -cachez-url; any combination
// may be given and the first failure exits non-zero. -require lists
// metric names the exposition must contain, which is how CI pins the
// gvfs_cachean_* surface.
//
// Usage:
//
//	promlint -url http://127.0.0.1:9049/metrics \
//	         -require gvfs_cachean_hit_ratio,gvfs_cachean_working_set_bytes
//	promlint -statusz-url http://127.0.0.1:9049/statusz \
//	         -logz-url http://127.0.0.1:9049/logz \
//	         -cachez-url http://127.0.0.1:9049/cachez
//	gvfsproxy ... | promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"os"
	"time"

	"gvfs/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body: parses args, fetches each requested
// surface, and lints it. Reading stdin happens only when no URL flag
// selects a surface.
func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(out)
	url := fs.String("url", "", "scrape this /metrics endpoint (empty = read stdin unless another -*-url is given)")
	statuszURL := fs.String("statusz-url", "", "validate this /statusz endpoint as bounded JSON")
	logzURL := fs.String("logz-url", "", "validate this /logz endpoint as a bounded structured-log document")
	cachezURL := fs.String("cachez-url", "", "validate this /cachez cache-analytics endpoint as bounded JSON")
	require := fs.String("require", "", "comma-separated metric names the exposition must contain")
	maxArray := fs.Int("max-array", 4096, "array bound applied to -statusz-url documents")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	if *url != "" || (*statuszURL == "" && *logzURL == "" && *cachezURL == "") {
		var data []byte
		var err error
		if *url != "" {
			data, err = fetch(client, *url)
		} else {
			data, err = io.ReadAll(stdin)
		}
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := obs.Lint(data); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := checkRequired(data, *require); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Fprintf(out, "promlint: metrics ok (%d bytes)\n", len(data))
	}
	if *statuszURL != "" {
		data, err := fetch(client, *statuszURL)
		if err != nil {
			return fmt.Errorf("statusz: %w", err)
		}
		if err := obs.LintBoundedJSON(data, *maxArray); err != nil {
			return fmt.Errorf("statusz: %w", err)
		}
		fmt.Fprintf(out, "promlint: statusz ok (%d bytes)\n", len(data))
	}
	if *logzURL != "" {
		data, err := fetch(client, *logzURL)
		if err != nil {
			return fmt.Errorf("logz: %w", err)
		}
		if err := obs.LintLogz(data); err != nil {
			return fmt.Errorf("logz: %w", err)
		}
		fmt.Fprintf(out, "promlint: logz ok (%d bytes)\n", len(data))
	}
	if *cachezURL != "" {
		data, err := fetch(client, *cachezURL)
		if err != nil {
			return fmt.Errorf("cachez: %w", err)
		}
		if err := obs.LintBoundedJSON(data, *maxArray); err != nil {
			return fmt.Errorf("cachez: %w", err)
		}
		fmt.Fprintf(out, "promlint: cachez ok (%d bytes)\n", len(data))
	}
	return nil
}

// checkRequired verifies each comma-separated metric name appears in
// the exposition as a sample (bare, labelled, or histogram-suffixed).
func checkRequired(data []byte, require string) error {
	if require == "" {
		return nil
	}
	names := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		names[name] = true
	}
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if !names[want] && !names[want+"_sum"] && !names[want+"_count"] {
			return fmt.Errorf("required metric %q not found in exposition", want)
		}
	}
	return nil
}

// fetch reads one diagnostic URL in full.
func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
