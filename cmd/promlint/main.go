// Command promlint validates Prometheus text exposition — the CI guard
// that a live proxy's /metrics endpoint serves well-formed output. It
// reads from -url (any http endpoint) or standard input and exits
// non-zero on the first malformed line.
//
// Usage:
//
//	promlint -url http://127.0.0.1:9049/metrics
//	gvfsproxy ... | promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"gvfs/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this endpoint (empty = read stdin)")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout")
	flag.Parse()

	var data []byte
	var err error
	if *url != "" {
		client := &http.Client{Timeout: *timeout}
		resp, err2 := client.Get(*url)
		if err2 != nil {
			log.Fatalf("promlint: %v", err2)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("promlint: %s returned status %d", *url, resp.StatusCode)
		}
		data, err = io.ReadAll(resp.Body)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatalf("promlint: read: %v", err)
	}
	if err := obs.Lint(data); err != nil {
		log.Fatalf("promlint: %v", err)
	}
	fmt.Printf("promlint: ok (%d bytes)\n", len(data))
}
