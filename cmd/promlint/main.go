// Command promlint validates a GVFS daemon's diagnostic surfaces — the
// CI guard that a live proxy serves well-formed, bounded output. It
// checks Prometheus text exposition (including exemplar syntax) from
// -url or standard input, the /statusz accounting document with
// -statusz-url, and the /logz structured-log ring with -logz-url; any
// combination may be given and the first failure exits non-zero.
//
// Usage:
//
//	promlint -url http://127.0.0.1:9049/metrics
//	promlint -statusz-url http://127.0.0.1:9049/statusz \
//	         -logz-url http://127.0.0.1:9049/logz
//	gvfsproxy ... | promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"gvfs/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body: parses args, fetches each requested
// surface, and lints it. Reading stdin happens only when no URL flag
// selects a surface.
func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(out)
	url := fs.String("url", "", "scrape this /metrics endpoint (empty = read stdin unless another -*-url is given)")
	statuszURL := fs.String("statusz-url", "", "validate this /statusz endpoint as bounded JSON")
	logzURL := fs.String("logz-url", "", "validate this /logz endpoint as a bounded structured-log document")
	maxArray := fs.Int("max-array", 4096, "array bound applied to -statusz-url documents")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	if *url != "" || (*statuszURL == "" && *logzURL == "") {
		var data []byte
		var err error
		if *url != "" {
			data, err = fetch(client, *url)
		} else {
			data, err = io.ReadAll(stdin)
		}
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := obs.Lint(data); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Fprintf(out, "promlint: metrics ok (%d bytes)\n", len(data))
	}
	if *statuszURL != "" {
		data, err := fetch(client, *statuszURL)
		if err != nil {
			return fmt.Errorf("statusz: %w", err)
		}
		if err := obs.LintBoundedJSON(data, *maxArray); err != nil {
			return fmt.Errorf("statusz: %w", err)
		}
		fmt.Fprintf(out, "promlint: statusz ok (%d bytes)\n", len(data))
	}
	if *logzURL != "" {
		data, err := fetch(client, *logzURL)
		if err != nil {
			return fmt.Errorf("logz: %w", err)
		}
		if err := obs.LintLogz(data); err != nil {
			return fmt.Errorf("logz: %w", err)
		}
		fmt.Fprintf(out, "promlint: logz ok (%d bytes)\n", len(data))
	}
	return nil
}

// fetch reads one diagnostic URL in full.
func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
