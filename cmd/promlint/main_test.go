package main

// The linter is exercised against a real obs.Endpoint: a registry with
// an exemplar-bearing histogram, a populated log ring, and a flight
// recorder, served over httptest. This is the same mux the daemons
// mount, so `go test ./cmd/promlint` validates the whole scrape path
// CI uses against live daemons.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/cachean"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
)

// startEndpoint serves a fully-populated diagnostic surface.
func startEndpoint(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("gvfs_test_total", "A counter.").Add(3)
	h := reg.Histogram("gvfs_test_duration_seconds", "A histogram.", nil)
	h.Observe(30 * time.Millisecond)
	h.SetExemplar(30*time.Millisecond, 0xdeadbeef)

	ring := obs.NewLogRing(16)
	log := obs.NewLogger(obs.LoggerConfig{Ring: ring, Metrics: reg})
	log.Named("test").Info("hello", "k", "v")

	tracer := obs.NewTracer(16)
	flight := obs.NewFlightRecorder(16, time.Millisecond)
	a := tracer.Start(tracer.NewID(), 0, "READ")
	a.Span("proxy", "ok", time.Now().Add(-10*time.Millisecond))
	flight.Record(a.Finish(), obs.ReasonSlow)

	an := cachean.New(cachean.Config{Rate: 1, CapacityBytes: 100 * 8192, BlockSize: 8192})
	t.Cleanup(func() { an.Close() })
	fh := nfs3.FH("promlint-test-file")
	for block := uint64(0); block < 8; block++ {
		an.CacheLookup(fh, block, cache.LookupMiss)
	}
	an.CacheLookup(fh, 0, cache.LookupHit)
	an.Sync()

	srv := httptest.NewServer(obs.Endpoint{
		Registry: reg,
		Tracer:   tracer,
		Log:      ring,
		Flight:   flight,
		Cachez:   an.WriteCachez,
	}.Mux())
	t.Cleanup(srv.Close)
	return srv
}

func TestLintAllSurfacesAgainstLiveEndpoint(t *testing.T) {
	srv := startEndpoint(t)
	var out strings.Builder
	err := run([]string{
		"-url", srv.URL + "/metrics",
		"-statusz-url", srv.URL + "/statusz",
		"-logz-url", srv.URL + "/logz",
		"-cachez-url", srv.URL + "/cachez",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("lint failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"metrics ok", "statusz ok", "logz ok", "cachez ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRequiredMetrics(t *testing.T) {
	srv := startEndpoint(t)
	var out strings.Builder
	// Both a bare counter and a histogram family (matched via its _sum /
	// _count samples) must satisfy -require.
	err := run([]string{
		"-url", srv.URL + "/metrics",
		"-require", "gvfs_test_total,gvfs_test_duration_seconds",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("required metrics not found: %v\n%s", err, out.String())
	}
	err = run([]string{
		"-url", srv.URL + "/metrics",
		"-require", "gvfs_no_such_metric_total",
	}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "gvfs_no_such_metric_total") {
		t.Fatalf("missing required metric accepted: %v", err)
	}
}

func TestLintStdin(t *testing.T) {
	var out strings.Builder
	good := "# HELP x_total A counter.\n# TYPE x_total counter\nx_total 1\n"
	if err := run(nil, strings.NewReader(good), &out); err != nil {
		t.Fatalf("good stdin rejected: %v", err)
	}
	if err := run(nil, strings.NewReader("not metrics at all\n"), &out); err == nil {
		t.Fatal("malformed stdin accepted")
	}
}

// badHandler serves documents that are each invalid for their linter.
func badHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "this is not exposition format\n")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `["top-level array, not object"]`)
	})
	mux.HandleFunc("/logz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"total_logged":1,"capacity":0,"events":[]}`)
	})
	return mux
}

func TestLintRejectsMalformedSurfaces(t *testing.T) {
	bad := httptest.NewServer(badHandler())
	t.Cleanup(bad.Close)
	var out strings.Builder
	if err := run([]string{"-url", bad.URL + "/metrics"}, strings.NewReader(""), &out); err == nil {
		t.Error("malformed metrics accepted")
	}
	if err := run([]string{"-statusz-url", bad.URL + "/statusz"}, strings.NewReader(""), &out); err == nil {
		t.Error("unbounded statusz accepted")
	}
	if err := run([]string{"-logz-url", bad.URL + "/logz"}, strings.NewReader(""), &out); err == nil {
		t.Error("malformed logz accepted")
	}
}

func TestLintBoundedStatuszArrays(t *testing.T) {
	srv := startEndpoint(t)
	var out strings.Builder
	// max-array 0 makes any non-empty array fail; the endpoint's empty
	// statusz ({}) must still pass.
	if err := run([]string{"-statusz-url", srv.URL + "/statusz", "-max-array", "0"},
		strings.NewReader(""), &out); err != nil {
		t.Fatalf("empty statusz rejected at bound 0: %v", err)
	}
}
