// Command vmclone clones a VM from a golden image through a GVFS
// session: it copies the configuration, symlinks the virtual disk,
// pulls the memory state (via the proxy's meta-data handling when
// available) and resumes the clone — the paper's §3.2.3 workflow.
//
// Usage:
//
//	vmclone -proxy 127.0.0.1:8049 -golden /images/golden -name rh73 \
//	        -clone-dir /clones/c1 -user alice
package main

import (
	"flag"
	"fmt"
	"log"

	gvfs "gvfs"
	"gvfs/internal/clone"
	"gvfs/internal/sunrpc"
)

func main() {
	proxyAddr := flag.String("proxy", "127.0.0.1:8049", "GVFS proxy (or NFS server) address")
	export := flag.String("export", "/", "export to mount")
	golden := flag.String("golden", "", "golden image directory (required)")
	name := flag.String("name", "", "image base name (required)")
	cloneDir := flag.String("clone-dir", "", "directory for the clone (required)")
	user := flag.String("user", "", "grid user to configure the clone for")
	uid := flag.Uint("uid", 500, "RPC credential uid")
	flag.Parse()

	if *golden == "" || *name == "" || *cloneDir == "" {
		log.Fatal("vmclone: -golden, -name and -clone-dir are required")
	}
	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:           *proxyAddr,
		Export:         *export,
		Cred:           sunrpc.UnixCred{UID: uint32(*uid), GID: uint32(*uid), MachineName: "vmclone"}.Encode(),
		PageCachePages: 4096,
	})
	if err != nil {
		log.Fatalf("vmclone: %v", err)
	}
	defer sess.Close()

	res, err := clone.Clone(sess, clone.Options{
		GoldenDir: *golden,
		CloneDir:  *cloneDir,
		Name:      *name,
		User:      *user,
	})
	if err != nil {
		log.Fatalf("vmclone: %v", err)
	}
	fmt.Printf("vmclone: cloned %s -> %s in %v\n", *golden, *cloneDir, res.Duration)
}
