// Command gvfsbench regenerates the paper's tables and figures. Each
// experiment assembles the required topology (image server, proxy
// chain, emulated WAN/LAN links) in-process, runs the workloads, and
// prints the same rows/series the paper reports.
//
// Usage:
//
//	gvfsbench -experiment all -scale 64
//	gvfsbench -experiment fig4 -scale 16 -v
//
// Experiments: fig3, fig4, fig5, fig6, table1, zerofilter,
// concurrency, crash, noisy, all.
// Data sizes and compute times are the paper's divided by -scale;
// network latency and bandwidth always use the paper's calibrated
// values, so measured seconds × scale estimate paper-scale seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gvfs/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"comma-separated experiments: fig3|fig4|fig5|fig6|table1|zerofilter|persistent|concurrency|ablation-writepolicy|ablation-metadata|ablation-geometry|ablation-tunnel|ablation-readahead|trace|flightrec|crash|noisy|alloc|dedup|mrc|failover|all")
	scale := flag.Float64("scale", 64, "divide data sizes and compute times by this factor")
	verbose := flag.Bool("v", false, "log progress to stderr")
	noEncrypt := flag.Bool("no-encrypt", false, "disable inter-proxy tunnels")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	results := flag.String("results", "", "directory receiving BENCH_*.json reports")
	flag.Parse()

	o := bench.Options{Scale: *scale, Verbose: *verbose, NoEncrypt: *noEncrypt, ResultsDir: *results}
	runners := map[string]func() (*bench.Table, error){
		"fig3":                 o.RunFig3,
		"fig4":                 o.RunFig4,
		"fig5":                 o.RunFig5,
		"fig6":                 o.RunFig6,
		"table1":               o.RunTable1,
		"zerofilter":           o.RunZeroFilter,
		"persistent":           o.RunPersistentVM,
		"concurrency":          o.RunConcurrency,
		"ablation-writepolicy": o.RunAblationWritePolicy,
		"ablation-metadata":    o.RunAblationMetadata,
		"ablation-geometry":    o.RunAblationCacheGeometry,
		"ablation-tunnel":      o.RunAblationTunnel,
		"ablation-readahead":   o.RunAblationReadAhead,
		"trace":                o.RunTrace,
		"flightrec":            o.RunFlightRec,
		"crash":                o.RunCrash,
		"noisy":                o.RunNoisy,
		"alloc":                o.RunAlloc,
		"dedup":                o.RunDedup,
		"mrc":                  o.RunMrc,
		"failover":             o.RunFailover,
	}
	order := []string{"fig3", "fig4", "fig5", "fig6", "table1", "zerofilter", "persistent", "concurrency",
		"ablation-writepolicy", "ablation-metadata", "ablation-geometry", "ablation-tunnel", "ablation-readahead",
		"trace", "flightrec", "crash", "noisy", "alloc", "dedup", "mrc", "failover"}

	var selected []string
	if *experiment == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "gvfsbench: unknown experiment %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		t0 := time.Now()
		table, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvfsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(table, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "gvfsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(blob))
		} else {
			table.Print(os.Stdout)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "bench: %s took %v\n", name, time.Since(t0))
		}
	}
}
