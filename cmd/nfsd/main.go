// Command nfsd runs the userspace NFSv3 + MOUNT server over a host
// directory. It is the end server of a GVFS chain — typically fronted
// by a gvfsd server-side proxy on the image server.
//
// Usage:
//
//	nfsd -listen 127.0.0.1:2049 -root /srv/images -export /
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/osfs"
	"gvfs/internal/sunrpc"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:2049", "TCP address to listen on")
	root := flag.String("root", ".", "directory to export")
	export := flag.String("export", "/", "MOUNT dirpath of the export")
	flag.Parse()

	backend, err := osfs.New(*root)
	if err != nil {
		log.Fatalf("nfsd: %v", err)
	}
	rootFH, err := backend.Root()
	if err != nil {
		log.Fatalf("nfsd: %v", err)
	}
	srv := sunrpc.NewServer()
	nfsSrv := nfs3.NewServer(backend)
	srv.Register(nfs3.Program, nfs3.Version, nfsSrv)
	md := mountd.NewServer()
	md.Export(*export, rootFH)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, md)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("nfsd: %v", err)
	}
	fmt.Printf("nfsd: exporting %s as %s on %s\n", *root, *export, l.Addr())
	log.Fatal(srv.Serve(l))
}
