// Command gvfstop is a live terminal view over a chain of GVFS
// proxies: a top(1) for the paper's cascaded-proxy deployments. It
// polls each hop's observability endpoint (/statusz for the
// per-file/per-client accounting tables, /metrics for the aggregate
// counters, /flightrec for the recorder depth, /cachez for the cache
// analytics — hit ratio, working set, what-if sizing — when the hop
// runs with -cachean) and renders one compact screen per refresh,
// closest hop first.
//
// Usage:
//
//	gvfstop -targets compute=127.0.0.1:9049,image=127.0.0.1:9051
//	gvfstop -targets 127.0.0.1:9049 -once        # one snapshot, no TUI
//
// Each target is [name=]host:port of a gvfsproxy/gvfsd -metrics
// address. -once prints a single snapshot and exits, which is what the
// CI smoke job and scripts use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"gvfs/internal/backend/replbe"
	"gvfs/internal/cachean"
	"gvfs/internal/obs"
	"gvfs/internal/proxy"
)

// hop is one polled proxy in the chain.
type hop struct {
	name string
	base string // http://host:port
}

// hopState is everything one refresh learned about a hop.
type hopState struct {
	err      error
	statusz  proxy.Statusz
	metrics  map[string]float64
	recorded uint64            // flight recordings ever made
	cachez   *cachean.Snapshot // nil when the hop has no analytics endpoint
}

func main() {
	targets := flag.String("targets", "", "comma-separated [name=]host:port observability addresses, closest hop first")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	rows := flag.Int("rows", 5, "file/client rows shown per hop")
	once := flag.Bool("once", false, "print one snapshot and exit")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
	flag.Parse()
	if *targets == "" {
		log.Fatal("gvfstop: -targets is required")
	}
	hops, err := parseTargets(*targets)
	if err != nil {
		log.Fatalf("gvfstop: %v", err)
	}
	client := &http.Client{Timeout: *timeout}
	for {
		out := render(client, hops, *rows)
		if *once {
			fmt.Print(out)
			return
		}
		// Home the cursor and clear below: repaint without scrollback spam.
		fmt.Print("\x1b[H\x1b[2J" + out)
		time.Sleep(*interval)
	}
}

// parseTargets splits the -targets flag into hops.
func parseTargets(s string) ([]hop, error) {
	var hops []hop
	for i, t := range strings.Split(s, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		name, addr := fmt.Sprintf("hop%d", i), t
		if eq := strings.IndexByte(t, '='); eq >= 0 {
			name, addr = t[:eq], t[eq+1:]
		}
		if addr == "" {
			return nil, fmt.Errorf("empty address in target %q", t)
		}
		hops = append(hops, hop{name: name, base: "http://" + addr})
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("no targets in %q", s)
	}
	return hops, nil
}

// poll gathers one hop's state.
func poll(client *http.Client, h hop) hopState {
	var st hopState
	body, err := get(client, h.base+"/statusz")
	if err != nil {
		st.err = err
		return st
	}
	if err := json.Unmarshal(body, &st.statusz); err != nil {
		st.err = fmt.Errorf("statusz: %v", err)
		return st
	}
	if body, err = get(client, h.base+"/metrics"); err == nil {
		st.metrics, _ = obs.ParseText(body)
	}
	if body, err = get(client, h.base+"/flightrec"); err == nil {
		var doc struct {
			Total uint64 `json:"total_recorded"`
		}
		if json.Unmarshal(body, &doc) == nil {
			st.recorded = doc.Total
		}
	}
	// Cache analytics are optional: older daemons (or ones running
	// without -cachean) have no /cachez, and the hop renders without
	// the analytics line.
	if body, err = get(client, h.base+"/cachez"); err == nil {
		var snap cachean.Snapshot
		if json.Unmarshal(body, &snap) == nil && snap.SampleRate > 0 {
			st.cachez = &snap
		}
	}
	return st
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// render paints one full screen for the chain.
func render(client *http.Client, hops []hop, rows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gvfstop  %s  (%d hops)\n\n",
		time.Now().UTC().Format(time.RFC3339), len(hops))
	for i, h := range hops {
		st := poll(client, h)
		fmt.Fprintf(&b, "[%d] %s  %s", i, h.name, strings.TrimPrefix(h.base, "http://"))
		if st.err != nil {
			fmt.Fprintf(&b, "  UNREACHABLE (%v)\n\n", st.err)
			continue
		}
		if st.statusz.Degraded {
			b.WriteString("  DEGRADED")
		}
		b.WriteByte('\n')
		renderHop(&b, st, rows)
		b.WriteByte('\n')
	}
	return b.String()
}

// renderHop paints one hop's summary, file table and client table.
func renderHop(b *strings.Builder, st hopState, rows int) {
	m := st.metrics
	hits, misses := m["gvfs_proxy_read_hits_total"], m["gvfs_proxy_read_misses_total"]
	ratio := 0.0
	if hits+misses > 0 {
		ratio = hits / (hits + misses)
	}
	fmt.Fprintf(b, "    calls %.0f  fwd %.0f  hit %.1f%%  zero %.0f  absorbed %.0f  dirty %d (oldest %s)  flightrec %d\n",
		m["gvfs_proxy_calls_total"], m["gvfs_proxy_forwarded_total"],
		100*ratio, m["gvfs_proxy_zero_filtered_total"],
		m["gvfs_proxy_writes_absorbed_total"],
		st.statusz.Audit.DirtyBlocks,
		humanDur(st.statusz.Audit.OldestDirtyAgeNs),
		st.recorded)
	if cz := st.cachez; cz != nil {
		fmt.Fprintf(b, "    cachean  hit %.1f%%  wss %s  predicted@2x %.1f%%  (cap %s, sampled %d",
			100*cz.HitRatio, humanBytes(cz.WorkingSetBytes),
			100*whatIfAt(cz, "2x"), humanBytes(cz.CapacityBytes), cz.SampledRefs)
		if cz.DroppedEvents > 0 {
			fmt.Fprintf(b, ", dropped %d", cz.DroppedEvents)
		}
		b.WriteString(")\n")
	}
	renderReplicas(b, st.statusz.Replication)
	files := st.statusz.Files["reads"]
	if len(files) > rows {
		files = files[:rows]
	}
	if len(files) > 0 {
		fmt.Fprintf(b, "    %-32s %8s %8s %10s %7s %9s\n",
			"top files by reads", "reads", "writes", "bytes", "hit%", "degraded")
		for _, f := range files {
			fmt.Fprintf(b, "    %-32s %8d %8d %10s %6.1f%% %9d\n",
				clip(f.File, 32), f.Reads, f.Writes,
				humanBytes(f.ReadBytes+f.WriteBytes), 100*f.HitRatio, f.DegradedReads)
		}
	}
	clients := st.statusz.Clients
	if len(clients) > rows {
		clients = clients[:rows]
	}
	for _, c := range clients {
		fmt.Fprintf(b, "    client %-25s %s  rd %s  wr %s",
			clip(c.Client, 25), opMix(c.Ops), humanBytes(c.ReadBytes), humanBytes(c.WriteBytes))
		if c.DegradedReads > 0 {
			fmt.Fprintf(b, "  degraded=%d", c.DegradedReads)
		}
		b.WriteByte('\n')
	}
}

// renderReplicas paints the replicated-backend health table. Hops
// running a single backend carry no replication section in /statusz
// and render nothing here.
func renderReplicas(b *strings.Builder, rs *replbe.Stats) {
	if rs == nil {
		return
	}
	mode := "primary-ack"
	if rs.Quorum {
		mode = "quorum"
	}
	hedgeRate := 0.0
	if rs.Reads > 0 {
		hedgeRate = float64(rs.HedgesFired) / float64(rs.Reads)
	}
	fmt.Fprintf(b, "    repl %s  reads %d  failovers %d  hedges %d/%d (%.1f%% of reads, delay %s)  scrub %d/%d repaired\n",
		mode, rs.Reads, rs.Failovers, rs.HedgesWon, rs.HedgesFired,
		100*hedgeRate, humanDur(rs.HedgeDelayNs),
		rs.Scrub.BlocksRepaired, rs.Scrub.BlocksDivergent)
	fmt.Fprintf(b, "    %-12s %-9s %-8s %9s %8s %7s %7s %7s %6s\n",
		"replica", "backend", "state", "ewma", "ops", "errs", "hwins", "pending", "stale")
	for _, r := range rs.Replicas {
		state := r.State
		if r.State == "down" && r.DownSinceNs > 0 {
			state = "down " + time.Since(time.Unix(0, r.DownSinceNs)).Round(time.Second).String()
		}
		if r.ReadOnly {
			state += " ro"
		}
		fmt.Fprintf(b, "    %-12s %-9s %-8s %9s %8d %7d %7d %7d %6d\n",
			clip(r.Name, 12), clip(r.Backend, 9), state,
			humanLat(r.EWMALatencyNs), r.Ops, r.Errors, r.HedgeWins,
			r.PendingRepl, r.StaleFiles)
	}
}

// humanLat renders a latency with sub-millisecond resolution (replica
// EWMAs on a LAN are routinely tens of microseconds).
func humanLat(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	d := time.Duration(ns)
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(100 * time.Microsecond).String()
}

// whatIfAt picks one ghost-cache prediction by scale label; falls back
// to the observed hit ratio when the grid lacks the point (e.g. the
// analyzer has no capacity configured).
func whatIfAt(cz *cachean.Snapshot, scale string) float64 {
	for _, w := range cz.WhatIf {
		if w.Scale == scale {
			return w.HitRatio
		}
	}
	return cz.HitRatio
}

// opMix renders a client's op counters as "READ=12 WRITE=3", sorted by
// count so the dominant ops lead.
func opMix(ops map[string]uint64) string {
	type kv struct {
		k string
		v uint64
	}
	list := make([]kv, 0, len(ops))
	for k, v := range ops {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].k < list[j].k
	})
	if len(list) > 4 {
		list = list[:4]
	}
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = fmt.Sprintf("%s=%d", e.k, e.v)
	}
	return strings.Join(parts, " ")
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func humanDur(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Millisecond).String()
}
