// Command gvfsproxy runs the client-side GVFS proxy on a compute
// server: the disk-caching, meta-data-handling proxy the paper's
// extensions live in. It listens for NFS RPC traffic from the local
// client, serves what it can from its block-based and file-based disk
// caches, and forwards the rest to the next hop (typically a gvfsd on
// the image server) over an optionally encrypted channel.
//
// The middleware-driven consistency model is exposed through O/S
// signals, exactly as the paper describes:
//
//	SIGUSR1  write back all dirty cached data (keep it cached)
//	SIGUSR2  flush: write back and invalidate all caches
//
// Usage:
//
//	gvfsproxy -listen 127.0.0.1:8049 -upstream imageserver:7049 \
//	          -cache-dir /var/cache/gvfs -policy write-back \
//	          -filechan imageserver:7050 -keyfile session.key
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/tunnel"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8049", "listen address for local NFS clients")
	upstream := flag.String("upstream", "", "next hop (gvfsd or another gvfsproxy)")
	keyfile := flag.String("keyfile", "", "32-byte session key for the upstream tunnel")
	cacheDir := flag.String("cache-dir", "", "block cache directory (empty = no disk cache)")
	banks := flag.Int("cache-banks", 512, "number of cache banks")
	sets := flag.Int("cache-sets", 128, "sets per bank")
	assoc := flag.Int("cache-assoc", 16, "cache associativity")
	blockSize := flag.Int("cache-block", 8192, "cache block size (<= 32768)")
	stripes := flag.Int("cache-stripes", 0, "cache lock stripes (0 = default 64; 1 = single global lock)")
	policyName := flag.String("policy", "write-back", "write policy: write-back | write-through")
	fileCacheDir := flag.String("filecache-dir", "", "file cache directory (enables meta-data handling)")
	fileChan := flag.String("filechan", "", "image server file-channel address")
	readAhead := flag.Int("readahead", 0, "sequential read-ahead window in blocks (0 = off)")
	persist := flag.Bool("persist-index", true, "reload/save the disk cache index across restarts")
	idle := flag.Duration("idle-writeback", 0, "write dirty data back after this idle period (0 = only on signals)")
	statsEvery := flag.Duration("stats", 0, "print proxy statistics at this interval (0 = off)")
	callTimeout := flag.Duration("call-timeout", 0, "per-call deadline on upstream RPCs (0 = wait forever)")
	maxRetries := flag.Int("max-retries", 0, "retransmission attempts for idempotent upstream calls (0 = no retries)")
	degraded := flag.Bool("degraded-reads", false, "serve cached data while the upstream is unreachable")
	failThreshold := flag.Int("failure-threshold", 0, "consecutive upstream failures that open the circuit breaker (0 = default)")
	probeEvery := flag.Duration("probe-interval", 0, "recovery probe period while the breaker is open (0 = default)")
	flag.Parse()

	if *upstream == "" {
		log.Fatal("gvfsproxy: -upstream is required")
	}
	var key []byte
	if *keyfile != "" {
		var err error
		key, err = os.ReadFile(*keyfile)
		if err != nil {
			log.Fatalf("gvfsproxy: %v", err)
		}
		if len(key) != tunnel.KeySize {
			log.Fatalf("gvfsproxy: key must be %d bytes", tunnel.KeySize)
		}
	}
	var policy cache.Policy
	switch *policyName {
	case "write-back":
		policy = cache.WriteBack
	case "write-through":
		policy = cache.WriteThrough
	default:
		log.Fatalf("gvfsproxy: unknown policy %q", *policyName)
	}

	opts := stack.ProxyOptions{
		UpstreamAddr:        *upstream,
		UpstreamKey:         key,
		ReadAhead:           *readAhead,
		PersistIndex:        *persist,
		IdleWriteBack:       *idle,
		UpstreamCallTimeout: *callTimeout,
		UpstreamMaxRetries:  *maxRetries,
		DegradedReads:       *degraded,
		FailureThreshold:    *failThreshold,
		ProbeInterval:       *probeEvery,
	}
	if *cacheDir != "" {
		cfg := cache.Config{
			Dir: *cacheDir, Banks: *banks, SetsPerBank: *sets,
			Assoc: *assoc, BlockSize: *blockSize, Policy: policy,
			Stripes: *stripes,
		}
		opts.CacheConfig = &cfg
	}
	if *fileCacheDir != "" {
		opts.FileCacheDir = *fileCacheDir
		opts.FileChanAddr = *fileChan
		opts.FileChanKey = key
	}

	// Build via stack but with an explicit listen address.
	node, err := stack.StartProxy(opts)
	if err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	// StartProxy listens on an ephemeral port; re-serve on the
	// requested address as well.
	l, err := stack.ListenOn(*listen, nil, nil)
	if err != nil {
		log.Fatalf("gvfsproxy: listen: %v", err)
	}
	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, node.Proxy)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, node.Proxy)
	fmt.Printf("gvfsproxy: %s -> %s (cache: %v, policy: %s)\n",
		l.Addr(), *upstream, *cacheDir != "", policy)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := node.Proxy.Stats()
				log.Printf("gvfsproxy: calls=%d hits=%d misses=%d zero=%d filechan=%d/%d absorbed=%d prefetched=%d",
					st.Calls, st.ReadHits, st.ReadMisses, st.ZeroFiltered,
					st.FileChanReads, st.FileChanFetch, st.WritesAbsorbed, st.Prefetched)
				log.Printf("gvfsproxy: retries=%d reconnects=%d timeouts=%d breaker=%d fastfail=%d probes=%d replays=%d degraded-reads=%d degraded=%v",
					st.Retries, st.Reconnects, st.Timeouts, st.BreakerOpens,
					st.BreakerFastFails, st.Probes, st.Replays, st.DegradedReads,
					node.Proxy.Degraded())
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGUSR1, syscall.SIGUSR2, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			switch sig {
			case syscall.SIGUSR1:
				fmt.Println("gvfsproxy: SIGUSR1 -> writing back dirty data")
				if err := node.Proxy.WriteBack(); err != nil {
					log.Printf("gvfsproxy: write-back: %v", err)
				}
			case syscall.SIGUSR2:
				fmt.Println("gvfsproxy: SIGUSR2 -> flushing caches")
				if err := node.Proxy.Flush(); err != nil {
					log.Printf("gvfsproxy: flush: %v", err)
				}
			case syscall.SIGINT, syscall.SIGTERM:
				// Graceful shutdown: settle the session, snapshot the
				// cache index so the next start is warm.
				fmt.Println("gvfsproxy: shutting down")
				if err := node.Proxy.WriteBack(); err != nil {
					log.Printf("gvfsproxy: write-back: %v", err)
				}
				if *persist && node.BlockCache != nil {
					if err := node.BlockCache.SaveIndex(); err != nil {
						log.Printf("gvfsproxy: save index: %v", err)
					}
				}
				os.Exit(0)
			}
		}
	}()
	log.Fatal(srv.Serve(l))
}
