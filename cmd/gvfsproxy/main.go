// Command gvfsproxy runs the client-side GVFS proxy on a compute
// server: the disk-caching, meta-data-handling proxy the paper's
// extensions live in. It listens for NFS RPC traffic from the local
// client, serves what it can from its block-based and file-based disk
// caches, and forwards the rest to the next hop (typically a gvfsd on
// the image server) over an optionally encrypted channel.
//
// The middleware-driven consistency model is exposed through O/S
// signals, exactly as the paper describes:
//
//	SIGUSR1  write back all dirty cached data (keep it cached)
//	SIGUSR2  flush: write back and invalidate all caches
//
// With -metrics the proxy serves its unified observability surface
// over HTTP: Prometheus exposition at /metrics, the request-trace ring
// at /traces, and the Go runtime debug endpoints under /debug.
//
// Usage:
//
//	gvfsproxy -listen 127.0.0.1:8049 -upstream imageserver:7049 \
//	          -cache-dir /var/cache/gvfs -policy write-back \
//	          -filechan imageserver:7050 -keyfile session.key \
//	          -metrics 127.0.0.1:9049 -trace-ring 1024
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/tunnel"
)

func main() {
	flags := stack.BindProxyFlags(flag.CommandLine)
	flag.Parse()

	opts, err := flags.Options()
	if err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	node, err := stack.StartProxy(opts)
	if err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	// StartProxy listens on an ephemeral port; re-serve on the
	// requested address as well.
	l, err := stack.ListenOn(flags.Listen, nil, nil)
	if err != nil {
		log.Fatalf("gvfsproxy: listen: %v", err)
	}
	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, node.Proxy)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, node.Proxy)
	fmt.Printf("gvfsproxy: %s -> %s (cache: %v, policy: %s)\n",
		l.Addr(), flags.Upstream, flags.CacheDir != "", flags.Policy)

	// registerBridges in the proxy covers its own subsystems; the
	// tunnel's process-wide totals are bridged here, where the daemon
	// knows one registry serves the whole process.
	node.Metrics.CounterFunc("gvfs_tunnel_tx_bytes_total",
		"Plaintext bytes sent through tunnels.",
		func() uint64 { return tunnel.ReadStats().TxBytes })
	node.Metrics.CounterFunc("gvfs_tunnel_rx_bytes_total",
		"Plaintext bytes received through tunnels.",
		func() uint64 { return tunnel.ReadStats().RxBytes })
	if flags.MetricsAddr != "" {
		ml, err := obs.Serve(flags.MetricsAddr, node.Metrics, node.Tracer)
		if err != nil {
			log.Fatalf("gvfsproxy: metrics: %v", err)
		}
		fmt.Printf("gvfsproxy: metrics on http://%s/metrics\n", ml.Addr())
	}

	// done is closed exactly once, when the daemon begins shutting
	// down, so the periodic stats goroutine exits with it instead of
	// ticking forever (time.Tick can never be stopped).
	done := make(chan struct{})
	if flags.StatsEvery > 0 {
		go func() {
			tick := time.NewTicker(flags.StatsEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
				}
				st := node.Proxy.Stats()
				log.Printf("gvfsproxy: calls=%d hits=%d misses=%d zero=%d filechan=%d/%d absorbed=%d prefetched=%d",
					st.Calls, st.ReadHits, st.ReadMisses, st.ZeroFiltered,
					st.FileChanReads, st.FileChanFetch, st.WritesAbsorbed, st.Prefetched)
				log.Printf("gvfsproxy: retries=%d reconnects=%d timeouts=%d breaker=%d fastfail=%d probes=%d replays=%d degraded-reads=%d degraded=%v",
					st.Retries, st.Reconnects, st.Timeouts, st.BreakerOpens,
					st.BreakerFastFails, st.Probes, st.Replays, st.DegradedReads,
					node.Proxy.Degraded())
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGUSR1, syscall.SIGUSR2, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			switch sig {
			case syscall.SIGUSR1:
				fmt.Println("gvfsproxy: SIGUSR1 -> writing back dirty data")
				if err := node.Proxy.WriteBack(); err != nil {
					log.Printf("gvfsproxy: write-back: %v", err)
				}
			case syscall.SIGUSR2:
				fmt.Println("gvfsproxy: SIGUSR2 -> flushing caches")
				if err := node.Proxy.Flush(); err != nil {
					log.Printf("gvfsproxy: flush: %v", err)
				}
			case syscall.SIGINT, syscall.SIGTERM:
				// Graceful shutdown: settle the session, snapshot the
				// cache index so the next start is warm, and stop the
				// stats printer before the server goes away.
				fmt.Println("gvfsproxy: shutting down")
				close(done)
				if err := node.Proxy.WriteBack(); err != nil {
					log.Printf("gvfsproxy: write-back: %v", err)
				}
				if flags.PersistIndex && node.BlockCache != nil {
					if err := node.BlockCache.SaveIndex(); err != nil {
						log.Printf("gvfsproxy: save index: %v", err)
					}
				}
				srv.Close()
				l.Close()
				return
			}
		}
	}()
	err = srv.Serve(l)
	// Serve returns when the listener closes — during signal-driven
	// shutdown that is the normal exit, not an error.
	select {
	case <-done:
	default:
		close(done)
		if err != nil {
			log.Fatalf("gvfsproxy: serve: %v", err)
		}
	}
}
