// Command gvfsproxy runs the client-side GVFS proxy on a compute
// server: the disk-caching, meta-data-handling proxy the paper's
// extensions live in. It listens for NFS RPC traffic from the local
// client, serves what it can from its block-based and file-based disk
// caches, and forwards the rest to the next hop (typically a gvfsd on
// the image server) over an optionally encrypted channel.
//
// The middleware-driven consistency model is exposed through O/S
// signals, exactly as the paper describes:
//
//	SIGUSR1  write back all dirty cached data (keep it cached)
//	SIGUSR2  flush: write back and invalidate all caches
//
// With -journal (the default under -policy write-back) every dirty
// block is journaled to the cache directory before the WRITE is
// acknowledged; a proxy killed mid-session replays the journal to the
// server on its next start, before serving traffic. -journal-sync
// picks the durability mode (batch group-fsync, always, or none) and
// -crashpoint / GVFS_CRASHPOINT arms the fault-injection harness used
// by the kill-9 recovery tests.
//
// With -qos the proxy admits calls through per-client admission
// control: bounded per-client queues, optional token-bucket rate
// limits (-qos-rate/-qos-burst), byte-weighted deficit-round-robin
// fair sharing (-qos-quantum) and a global concurrency cap
// (-qos-inflight). Overflow is shed with the retriable
// NFS3ERR_JUKEBOX. -call-budget stamps a default deadline on every
// call (a budget propagated in the GVFS trace verifier wins), and
// -brownout-enter arms the brownout controller that sheds optional
// work and defers cache misses when the admission queue delay grows.
//
// With -backend objstore the proxy needs no upstream at all: images
// live in a local content-addressed object store (-objstore-dir), and
// NFS clients mount the proxy directly. -dedup additionally lets
// identical cached blocks — N cloned VM images — share one disk-cache
// frame, whichever backend is in use.
//
// With -backend repl the proxy fans its upstream over a replica set
// (-replicas objstore:/a,objstore:/b,objstore:/c): per-replica health
// tracking with automatic failover, hedged reads after a latency
// quantile (-repl-hedge-quantile), optional majority-ack writes
// (-repl-quorum), and a background scrub that cross-checks block
// hashes between replicas and repairs divergence (-repl-scrub).
// Replica health appears at /statusz and as gvfs_backend_replica_*
// metrics.
//
// With -metrics the proxy serves its unified observability surface
// over HTTP: Prometheus exposition at /metrics (with exemplars when
// the flight recorder is on), the request-trace ring at /traces, the
// structured event log at /logz, the flight recorder at /flightrec,
// per-file/per-client accounting at /statusz, and the Go runtime
// debug endpoints under /debug.
//
// Usage:
//
//	gvfsproxy -listen 127.0.0.1:8049 -upstream imageserver:7049 \
//	          -cache-dir /var/cache/gvfs -policy write-back \
//	          -filechan imageserver:7050 -keyfile session.key \
//	          -metrics 127.0.0.1:9049 -flightrec 256 -log-level info
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/tunnel"
)

func main() {
	flags := stack.BindProxyFlags(flag.CommandLine)
	flag.Parse()

	// Arm the crash fault-injection harness before any cache activity.
	if err := cache.SetCrashpoint(flags.Crashpoint); err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	opts, err := flags.OptionsV2()
	if err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	// One registry serves the whole process: proxy counters, log-event
	// counters and the tunnel bridges all land in it.
	reg := obs.NewRegistry()
	opts.Metrics = reg
	logger, closeLog, err := flags.Log.Logger("gvfsproxy", reg)
	if err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	defer closeLog()
	opts.Logger = logger

	node, err := stack.StartProxyV2(opts)
	if err != nil {
		log.Fatalf("gvfsproxy: %v", err)
	}
	// StartProxy listens on an ephemeral port; re-serve on the
	// requested address as well.
	l, err := stack.ListenOn(flags.Listen, nil, nil)
	if err != nil {
		log.Fatalf("gvfsproxy: listen: %v", err)
	}
	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, node.Proxy)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, node.Proxy)
	logger.Info("proxy up",
		"listen", l.Addr().String(),
		"backend", flags.Backend,
		"upstream", flags.Upstream,
		"replicas", flags.Replicas,
		"cache", flags.CacheDir != "",
		"dedup", flags.Dedup,
		"policy", flags.Policy,
		"flightrec", flags.FlightRing)

	// registerBridges in the proxy covers its own subsystems; the
	// tunnel's process-wide totals are bridged here, where the daemon
	// knows one registry serves the whole process.
	node.Metrics.CounterFunc("gvfs_tunnel_tx_bytes_total",
		"Plaintext bytes sent through tunnels.",
		func() uint64 { return tunnel.ReadStats().TxBytes })
	node.Metrics.CounterFunc("gvfs_tunnel_rx_bytes_total",
		"Plaintext bytes received through tunnels.",
		func() uint64 { return tunnel.ReadStats().RxBytes })
	if flags.MetricsAddr != "" {
		ep := obs.Endpoint{
			Registry: node.Metrics,
			Tracer:   node.Tracer,
			Log:      logger.Ring(),
			Flight:   node.Flight,
			Statusz:  node.Proxy.WriteStatusz,
		}
		if node.Cachean != nil {
			ep.Cachez = node.Cachean.WriteCachez
		}
		ml, err := ep.ListenAndServe(flags.MetricsAddr)
		if err != nil {
			log.Fatalf("gvfsproxy: metrics: %v", err)
		}
		logger.Info("observability endpoint up", "addr", ml.Addr().String())
	}

	stopStats := func() {}
	if flags.StatsEvery > 0 {
		stopStats = stack.StartStatsLogger(logger, node.Proxy, flags.StatsEvery)
	}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGUSR1, syscall.SIGUSR2, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			switch sig {
			case syscall.SIGUSR1:
				logger.Info("middleware signal: write back dirty data", "sig", "SIGUSR1")
				if err := node.Proxy.WriteBack(); err != nil {
					logger.Error("write-back failed", "err", err)
				}
			case syscall.SIGUSR2:
				logger.Info("middleware signal: flush caches", "sig", "SIGUSR2")
				if err := node.Proxy.Flush(); err != nil {
					logger.Error("flush failed", "err", err)
				}
			case syscall.SIGINT, syscall.SIGTERM:
				// Graceful shutdown: settle the session, snapshot the
				// cache index so the next start is warm, and stop the
				// stats logger before the server goes away.
				logger.Info("shutting down", "sig", sig.String())
				close(done)
				stopStats()
				if err := node.Proxy.WriteBack(); err != nil {
					logger.Error("shutdown write-back failed", "err", err)
				}
				if flags.PersistIndex && node.BlockCache != nil {
					if err := node.BlockCache.SaveIndex(); err != nil {
						logger.Error("cache index snapshot failed", "err", err)
					}
				}
				srv.Close()
				l.Close()
				return
			}
		}
	}()
	err = srv.Serve(l)
	// Serve returns when the listener closes — during signal-driven
	// shutdown that is the normal exit, not an error.
	select {
	case <-done:
	default:
		close(done)
		stopStats()
		if err != nil {
			log.Fatalf("gvfsproxy: serve: %v", err)
		}
	}
}
