// Command gvfsd runs the server-side GVFS services on an image server:
// the proxy that authenticates requests and maps Grid users onto
// short-lived logical accounts before forwarding to the local NFS
// server, and the file-channel service used by client-side proxies for
// meta-data-driven whole-file transfers.
//
// Usage:
//
//	gvfsd -listen :7049 -upstream 127.0.0.1:2049 \
//	      -filechan-listen :7050 -root /srv/images \
//	      -keyfile session.key
//
// The session key file (32 bytes) enables SSH-style encrypted private
// channels; generate one with -genkey.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gvfs/internal/auth"
	"gvfs/internal/filechan"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/osfs"
	"gvfs/internal/proxy"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/tunnel"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7049", "proxy listen address")
	upstream := flag.String("upstream", "127.0.0.1:2049", "local NFS server address")
	fcListen := flag.String("filechan-listen", "127.0.0.1:7050", "file-channel listen address")
	root := flag.String("root", "", "export root served by the file channel (empty = disabled)")
	keyfile := flag.String("keyfile", "", "32-byte session key file enabling tunnels")
	genkey := flag.Bool("genkey", false, "generate a key into -keyfile and exit")
	idBase := flag.Uint("identity-base", 60000, "first UID of the logical account pool")
	idCount := flag.Uint("identity-count", 1000, "size of the logical account pool")
	idTTL := flag.Duration("identity-ttl", 30*time.Minute, "lifetime of short-lived identities")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /traces and /debug on this address (empty = off)")
	traceRing := flag.Int("trace-ring", 0, "keep the last N request traces for /traces (0 = tracing off)")
	flag.Parse()

	if *genkey {
		if *keyfile == "" {
			log.Fatal("gvfsd: -genkey requires -keyfile")
		}
		key := make([]byte, tunnel.KeySize)
		if _, err := rand.Read(key); err != nil {
			log.Fatalf("gvfsd: %v", err)
		}
		if err := os.WriteFile(*keyfile, key, 0600); err != nil {
			log.Fatalf("gvfsd: %v", err)
		}
		fmt.Printf("gvfsd: wrote session key to %s\n", *keyfile)
		return
	}

	var key []byte
	if *keyfile != "" {
		var err error
		key, err = os.ReadFile(*keyfile)
		if err != nil {
			log.Fatalf("gvfsd: read key: %v", err)
		}
		if len(key) != tunnel.KeySize {
			log.Fatalf("gvfsd: key must be %d bytes, got %d", tunnel.KeySize, len(key))
		}
	}

	alloc := auth.NewAllocator(uint32(*idBase), uint32(*idCount), *idTTL)
	upstreamDial := stack.Dialer(*upstream, nil, nil)
	conn, err := upstreamDial()
	if err != nil {
		log.Fatalf("gvfsd: dial upstream: %v", err)
	}
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(*traceRing)
	}
	p, err := proxy.New(proxy.Config{
		Upstream: sunrpc.NewClient(conn),
		Mapper:   auth.NewMapper(alloc),
		Tracer:   tracer,
	})
	if err != nil {
		log.Fatalf("gvfsd: %v", err)
	}
	if *metricsAddr != "" {
		reg := p.MetricsRegistry()
		reg.CounterFunc("gvfs_tunnel_tx_bytes_total",
			"Plaintext bytes sent through tunnels.",
			func() uint64 { return tunnel.ReadStats().TxBytes })
		reg.CounterFunc("gvfs_tunnel_rx_bytes_total",
			"Plaintext bytes received through tunnels.",
			func() uint64 { return tunnel.ReadStats().RxBytes })
		ml, err := obs.Serve(*metricsAddr, reg, tracer)
		if err != nil {
			log.Fatalf("gvfsd: metrics: %v", err)
		}
		fmt.Printf("gvfsd: metrics on http://%s/metrics\n", ml.Addr())
	}
	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, p)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, p)

	l, err := stack.ListenOn(*listen, nil, key)
	if err != nil {
		log.Fatalf("gvfsd: listen: %v", err)
	}
	fmt.Printf("gvfsd: proxying %s on %s (tunnel: %v)\n", *upstream, l.Addr(), key != nil)
	go func() { log.Fatal(srv.Serve(l)) }()

	if *root != "" {
		store, err := osfs.New(*root)
		if err != nil {
			log.Fatalf("gvfsd: %v", err)
		}
		fcl, err := stack.ListenOn(*fcListen, nil, key)
		if err != nil {
			log.Fatalf("gvfsd: filechan listen: %v", err)
		}
		fmt.Printf("gvfsd: file channel for %s on %s\n", *root, fcl.Addr())
		go func() { log.Fatal(filechan.NewServer(store).Serve(fcl)) }()
	}
	select {}
}
