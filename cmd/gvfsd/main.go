// Command gvfsd runs the server-side GVFS services on an image server:
// the proxy that authenticates requests and maps Grid users onto
// short-lived logical accounts before forwarding to the local NFS
// server, and the file-channel service used by client-side proxies for
// meta-data-driven whole-file transfers.
//
// Usage:
//
//	gvfsd -listen :7049 -upstream 127.0.0.1:2049 \
//	      -filechan-listen :7050 -root /srv/images \
//	      -keyfile session.key
//
// The session key file (32 bytes) enables SSH-style encrypted private
// channels; generate one with -genkey.
//
// With -metrics the daemon serves the same observability surface as
// gvfsproxy: /metrics, /traces, /logz, /flightrec, /statusz and
// /debug. SIGINT/SIGTERM shut the services down cleanly.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gvfs/internal/auth"
	"gvfs/internal/filechan"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/osfs"
	"gvfs/internal/proxy"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/tunnel"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7049", "proxy listen address")
	upstream := flag.String("upstream", "127.0.0.1:2049", "local NFS server address")
	fcListen := flag.String("filechan-listen", "127.0.0.1:7050", "file-channel listen address")
	root := flag.String("root", "", "export root served by the file channel (empty = disabled)")
	keyfile := flag.String("keyfile", "", "32-byte session key file enabling tunnels")
	genkey := flag.Bool("genkey", false, "generate a key into -keyfile and exit")
	idBase := flag.Uint("identity-base", 60000, "first UID of the logical account pool")
	idCount := flag.Uint("identity-count", 1000, "size of the logical account pool")
	idTTL := flag.Duration("identity-ttl", 30*time.Minute, "lifetime of short-lived identities")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /traces, /logz, /flightrec, /statusz and /debug on this address (empty = off)")
	traceRing := flag.Int("trace-ring", 0, "keep the last N request traces for /traces (0 = tracing off)")
	flightRing := flag.Int("flightrec", 0, "retain the last N slow/error call recordings for /flightrec (0 = off)")
	slowThresh := flag.Duration("slow-threshold", 0, "latency that promotes a call to the flight recorder (0 = default 100ms)")
	statsEvery := flag.Duration("stats", 0, "log daemon statistics at this interval (0 = off)")
	logFlags := stack.BindLogFlags(flag.CommandLine)
	flag.Parse()

	if *genkey {
		if *keyfile == "" {
			log.Fatal("gvfsd: -genkey requires -keyfile")
		}
		key := make([]byte, tunnel.KeySize)
		if _, err := rand.Read(key); err != nil {
			log.Fatalf("gvfsd: %v", err)
		}
		if err := os.WriteFile(*keyfile, key, 0600); err != nil {
			log.Fatalf("gvfsd: %v", err)
		}
		fmt.Printf("gvfsd: wrote session key to %s\n", *keyfile)
		return
	}

	key, err := stack.ReadKeyfile(*keyfile)
	if err != nil {
		log.Fatalf("gvfsd: read key: %v", err)
	}

	// One registry serves the whole process, exactly as in gvfsproxy.
	reg := obs.NewRegistry()
	logger, closeLog, err := logFlags.Logger("gvfsd", reg)
	if err != nil {
		log.Fatalf("gvfsd: %v", err)
	}
	defer closeLog()

	alloc := auth.NewAllocator(uint32(*idBase), uint32(*idCount), *idTTL)
	upstreamDial := stack.Dialer(*upstream, nil, nil)
	conn, err := upstreamDial()
	if err != nil {
		log.Fatalf("gvfsd: dial upstream: %v", err)
	}
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(*traceRing)
	}
	var flight *obs.FlightRecorder
	if *flightRing > 0 {
		// Flight recordings are span trees: enable tracing implicitly.
		if tracer == nil {
			tracer = obs.NewTracer(obs.DefaultRing)
		}
		flight = obs.NewFlightRecorder(*flightRing, *slowThresh)
	}
	p, err := proxy.New(proxy.Config{
		Upstream: sunrpc.NewClient(conn),
		Mapper:   auth.NewMapper(alloc),
		Tracer:   tracer,
		Flight:   flight,
		Metrics:  reg,
		Logger:   logger,
	})
	if err != nil {
		log.Fatalf("gvfsd: %v", err)
	}
	if *metricsAddr != "" {
		reg.CounterFunc("gvfs_tunnel_tx_bytes_total",
			"Plaintext bytes sent through tunnels.",
			func() uint64 { return tunnel.ReadStats().TxBytes })
		reg.CounterFunc("gvfs_tunnel_rx_bytes_total",
			"Plaintext bytes received through tunnels.",
			func() uint64 { return tunnel.ReadStats().RxBytes })
		ep := obs.Endpoint{
			Registry: reg,
			Tracer:   tracer,
			Log:      logger.Ring(),
			Flight:   flight,
			Statusz:  p.WriteStatusz,
		}
		ml, err := ep.ListenAndServe(*metricsAddr)
		if err != nil {
			log.Fatalf("gvfsd: metrics: %v", err)
		}
		logger.Info("observability endpoint up", "addr", ml.Addr().String())
	}
	stopStats := func() {}
	if *statsEvery > 0 {
		stopStats = stack.StartStatsLogger(logger, p, *statsEvery)
	}

	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, p)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, p)

	l, err := stack.ListenOn(*listen, nil, key)
	if err != nil {
		log.Fatalf("gvfsd: listen: %v", err)
	}
	logger.Info("proxy up",
		"listen", l.Addr().String(),
		"upstream", *upstream,
		"tunnel", key != nil)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	var fcClose func()
	if *root != "" {
		store, err := osfs.New(*root)
		if err != nil {
			log.Fatalf("gvfsd: %v", err)
		}
		fcl, err := stack.ListenOn(*fcListen, nil, key)
		if err != nil {
			log.Fatalf("gvfsd: filechan listen: %v", err)
		}
		logger.Info("file channel up", "root", *root, "addr", fcl.Addr().String())
		fcSrv := filechan.NewServer(store)
		fcClose = func() { fcSrv.Close(); fcl.Close() }
		go func() {
			if err := fcSrv.Serve(fcl); err != nil {
				logger.Error("file channel stopped", "err", err)
			}
		}()
	}

	// Signal-driven clean shutdown, mirroring gvfsproxy: stop the stats
	// logger, close every listener, and let background probing exit.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Info("shutting down", "sig", sig.String())
		stopStats()
		srv.Close()
		l.Close()
		if fcClose != nil {
			fcClose()
		}
		p.Shutdown()
	case err := <-serveErr:
		stopStats()
		if err != nil {
			log.Fatalf("gvfsd: serve: %v", err)
		}
	}
}
