// Package gvfs is the public API of this GVFS implementation — a
// reproduction of "Distributed File System Support for Virtual
// Machines in Grid Computing" (Zhao, Zhang, Figueiredo; HPDC 2004).
//
// A Session plays the role of an NFS mount on a compute server: it
// connects to a GVFS proxy (or directly to an NFS server), obtains the
// export root via the MOUNT protocol, and provides file access through
// a kernel-buffer-cache stand-in. All VM state access in the examples,
// benchmarks and the VM monitor simulator flows through this API, then
// through the proxy chain, exactly as the paper's Figure 2 describes:
//
//	application -> memory buffer (1) -> client proxy cache (3,4)
//	            -> tunneled RPC (5) -> server proxy (6) -> NFS server (7)
//
// The heavy lifting lives in the internal packages: internal/proxy
// (caching, meta-data, identity mapping), internal/cache (the
// block-based disk cache), internal/filechan and internal/filecache
// (the file-based data channel and cache), internal/nfs3 and
// internal/sunrpc (the protocol substrate), and internal/simnet (WAN
// emulation for experiments).
package gvfs

import (
	"errors"
	"fmt"
	"net"
	"path"
	"strings"
	"sync"
	"time"

	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/pagecache"
	"gvfs/internal/sunrpc"
)

// DefaultBlockSize is the NFS transfer size used by Sessions: 8 KB,
// the preferred size advertised by the servers (protocol maximum is
// 32 KB).
const DefaultBlockSize = 8192

// SessionConfig describes how to establish a GVFS session.
type SessionConfig struct {
	// Addr is the TCP address of the first hop (client proxy, or the
	// NFS server itself). Ignored when Dial is set.
	Addr string
	// Dial, when set, produces the transport connection (e.g. through
	// a simnet link or tunnel).
	Dial func() (net.Conn, error)
	// Export is the directory to mount (MOUNT protocol dirpath).
	Export string
	// Cred is the RPC credential presented by this session's user.
	Cred sunrpc.OpaqueAuth
	// PageCachePages bounds the in-memory buffer cache emulating the
	// kernel NFS client's page cache. Zero disables it.
	PageCachePages int
	// BlockSize is the NFS read/write transfer size (default 8 KB).
	BlockSize uint32
	// CallTimeout bounds each RPC issued by the session (per-call
	// deadline). Zero means no deadline.
	CallTimeout time.Duration
	// MaxRetries enables transparent reconnection (with exponential
	// backoff) and retransmission of idempotent NFS calls after a
	// connection failure. Zero disables retries.
	MaxRetries int
	// Metrics, when set, is the obs registry the session publishes its
	// page-cache instruments into — pass the same registry used by a
	// proxy and obs.Snapshot() covers the whole chain. Nil disables
	// session metrics (and their time.Now() calls on the read path).
	Metrics *obs.Registry
}

// Session is a mounted GVFS file system.
type Session struct {
	rpc   *sunrpc.Client
	nfs   *nfs3.Client
	root  nfs3.FH
	bs    uint32
	pages *pagecache.Cache

	// metrics is nil unless SessionConfig.Metrics was set; readDur
	// holds the pre-resolved per-outcome page-read histograms.
	metrics *obs.Registry
	readDur map[string]*obs.Histogram

	mu       sync.Mutex
	dentries map[string]dentry  // path -> fh/attr cache
	files    map[*File]struct{} // files open in this session
}

type dentry struct {
	fh   nfs3.FH
	ftyp nfs3.FileType
}

// Mount establishes a session.
func Mount(cfg SessionConfig) (*Session, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.BlockSize > 32768 {
		return nil, fmt.Errorf("gvfs: block size %d exceeds the NFSv3 32 KB limit", cfg.BlockSize)
	}
	dial := cfg.Dial
	if dial == nil {
		addr := cfg.Addr
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("gvfs: dial: %w", err)
	}
	var rpc *sunrpc.Client
	if cfg.CallTimeout > 0 || cfg.MaxRetries > 0 {
		opts := sunrpc.ClientOptions{
			CallTimeout: cfg.CallTimeout,
			MaxRetries:  cfg.MaxRetries,
			Idempotent:  nfs3.RetrySafe,
		}
		if cfg.MaxRetries > 0 {
			opts.Redial = dial
		}
		rpc = sunrpc.NewClientWithOptions(conn, opts)
	} else {
		rpc = sunrpc.NewClient(conn)
	}
	export := cfg.Export
	if export == "" {
		export = "/"
	}
	root, err := mountd.Mount(rpc, cfg.Cred, export)
	if err != nil {
		rpc.Close()
		return nil, fmt.Errorf("gvfs: mount %s: %w", export, err)
	}
	s := &Session{
		rpc:      rpc,
		nfs:      nfs3.NewClient(rpc, cfg.Cred),
		root:     root,
		bs:       cfg.BlockSize,
		pages:    pagecache.New(cfg.PageCachePages),
		dentries: make(map[string]dentry),
		files:    make(map[*File]struct{}),
	}
	if cfg.Metrics != nil {
		s.registerMetrics(cfg.Metrics)
	}
	return s, nil
}

// registerMetrics publishes the session's buffer-cache instruments:
// collection-time bridges over the page cache's own counters, plus a
// per-outcome latency histogram observed on every block read.
func (s *Session) registerMetrics(reg *obs.Registry) {
	s.metrics = reg
	pages := s.pages
	reg.CounterFunc("gvfs_pagecache_hits_total", "Buffer-cache page hits.",
		func() uint64 { return pages.Stats().Hits })
	reg.CounterFunc("gvfs_pagecache_misses_total", "Buffer-cache page misses.",
		func() uint64 { return pages.Stats().Misses })
	reg.CounterFunc("gvfs_pagecache_evictions_total", "Buffer-cache page evictions.",
		func() uint64 { return pages.Stats().Evictions })
	hv := reg.HistogramVec("gvfs_pagecache_read_duration_seconds",
		"Per-block session read latency by buffer-cache outcome.", nil, "outcome")
	s.readDur = map[string]*obs.Histogram{
		"hit":  hv.With("hit"),
		"miss": hv.With("miss"),
	}
}

// observeRead records one block read when session metrics are enabled.
func (s *Session) observeRead(outcome string, start time.Time) {
	if h, ok := s.readDur[outcome]; ok {
		h.ObserveSince(start)
	}
}

// Metrics returns the registry the session publishes into, or nil when
// metrics were not enabled at Mount time.
func (s *Session) Metrics() *obs.Registry { return s.metrics }

// Close commits the dirty state of any files still open in this
// session, then tears down the connection. File.Close reports commit
// failures for explicitly closed files; Close extends the same
// guarantee to files the application left open, so an acknowledged
// write is never silently dropped at session teardown. The first
// commit error (then any transport-close error) is returned.
func (s *Session) Close() error {
	s.mu.Lock()
	open := make([]*File, 0, len(s.files))
	for f := range s.files {
		open = append(open, f)
	}
	s.mu.Unlock()
	var first error
	for _, f := range open {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.rpc.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// trackFile registers an open file so Session.Close can settle it.
func (s *Session) trackFile(f *File) {
	s.mu.Lock()
	s.files[f] = struct{}{}
	s.mu.Unlock()
}

// untrackFile removes a closed file from the registry.
func (s *Session) untrackFile(f *File) {
	s.mu.Lock()
	delete(s.files, f)
	s.mu.Unlock()
}

// Root returns the export root handle.
func (s *Session) Root() nfs3.FH { return s.root }

// NFS exposes the underlying protocol client for advanced callers.
func (s *Session) NFS() *nfs3.Client { return s.nfs }

// BlockSize returns the session's transfer size.
func (s *Session) BlockSize() uint32 { return s.bs }

// PageCacheStats reports buffer-cache effectiveness.
//
// Deprecated: the unified stats surface is SessionConfig.Metrics +
// obs.Snapshot(); this accessor remains for existing callers.
func (s *Session) PageCacheStats() pagecache.Stats { return s.pages.Stats() }

// DropCaches empties the in-memory buffer cache — the equivalent of
// the paper's un-mounting and re-mounting between cold-cache runs.
func (s *Session) DropCaches() {
	s.pages.InvalidateAll()
	s.mu.Lock()
	s.dentries = make(map[string]dentry)
	s.mu.Unlock()
}

func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// resolve walks p from the root, consulting the dentry cache.
func (s *Session) resolve(p string) (nfs3.FH, nfs3.FileType, error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return s.root, nfs3.TypeDir, nil
	}
	s.mu.Lock()
	if d, ok := s.dentries[clean]; ok {
		s.mu.Unlock()
		return d.fh, d.ftyp, nil
	}
	s.mu.Unlock()

	cur := s.root
	ftyp := nfs3.TypeDir
	walked := "/"
	for _, part := range splitPath(clean) {
		fh, attr, err := s.nfs.Lookup(cur, part)
		if err != nil {
			return nil, 0, err
		}
		cur = fh
		ftyp = nfs3.TypeReg
		if attr != nil {
			ftyp = attr.Type
		}
		walked = path.Join(walked, part)
		s.mu.Lock()
		s.dentries[walked] = dentry{fh: cur, ftyp: ftyp}
		s.mu.Unlock()
	}
	return cur, ftyp, nil
}

func (s *Session) forgetDentry(p string) {
	clean := path.Clean("/" + p)
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.dentries {
		if key == clean || strings.HasPrefix(key, clean+"/") {
			delete(s.dentries, key)
		}
	}
}

// Stat returns the attributes of the object at p.
func (s *Session) Stat(p string) (nfs3.Fattr, error) {
	fh, _, err := s.resolve(p)
	if err != nil {
		return nfs3.Fattr{}, err
	}
	return s.nfs.GetAttr(fh)
}

// Mkdir creates a directory.
func (s *Session) Mkdir(p string) error {
	dir, base, err := s.resolveParent(p)
	if err != nil {
		return err
	}
	_, _, err = s.nfs.Mkdir(dir, base, nfs3.SetAttr{})
	return err
}

// MkdirAll creates a directory and any missing parents.
func (s *Session) MkdirAll(p string) error {
	parts := splitPath(p)
	cur := "/"
	for _, part := range parts {
		cur = path.Join(cur, part)
		if err := s.Mkdir(cur); err != nil && nfs3.StatusOf(err) != nfs3.ErrExist {
			return err
		}
	}
	return nil
}

// Remove unlinks the file at p.
func (s *Session) Remove(p string) error {
	dir, base, err := s.resolveParent(p)
	if err != nil {
		return err
	}
	if err := s.nfs.Remove(dir, base); err != nil {
		return err
	}
	s.forgetDentry(p)
	return nil
}

// Rename moves oldp to newp (same-session, possibly across dirs).
func (s *Session) Rename(oldp, newp string) error {
	fromDir, fromBase, err := s.resolveParent(oldp)
	if err != nil {
		return err
	}
	toDir, toBase, err := s.resolveParent(newp)
	if err != nil {
		return err
	}
	if err := s.nfs.Rename(fromDir, fromBase, toDir, toBase); err != nil {
		return err
	}
	s.forgetDentry(oldp)
	s.forgetDentry(newp)
	return nil
}

// Symlink creates a symbolic link at p pointing to target.
func (s *Session) Symlink(target, p string) error {
	dir, base, err := s.resolveParent(p)
	if err != nil {
		return err
	}
	_, _, err = s.nfs.Symlink(dir, base, target)
	return err
}

// ReadLink returns the target of the symlink at p.
func (s *Session) ReadLink(p string) (string, error) {
	fh, _, err := s.resolve(p)
	if err != nil {
		return "", err
	}
	return s.nfs.ReadLink(fh)
}

// ReadDir lists the directory at p.
func (s *Session) ReadDir(p string) ([]nfs3.DirEntry, error) {
	fh, _, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	return s.nfs.ReadDirAll(fh)
}

func (s *Session) resolveParent(p string) (nfs3.FH, string, error) {
	clean := path.Clean("/" + p)
	dir, base := path.Split(clean)
	if base == "" {
		return nil, "", errors.New("gvfs: empty file name")
	}
	fh, ftyp, err := s.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if ftyp != nfs3.TypeDir {
		return nil, "", &nfs3.Error{Status: nfs3.ErrNotDir, Op: dir}
	}
	return fh, base, nil
}

// Open opens an existing file for reading and writing.
func (s *Session) Open(p string) (*File, error) {
	fh, ftyp, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	if ftyp == nfs3.TypeDir {
		return nil, &nfs3.Error{Status: nfs3.ErrIsDir, Op: p}
	}
	attr, err := s.nfs.GetAttr(fh)
	if err != nil {
		return nil, err
	}
	f := &File{s: s, fh: fh, path: path.Clean("/" + p), size: attr.Size}
	s.trackFile(f)
	return f, nil
}

// Create creates (or truncates) a file and opens it.
func (s *Session) Create(p string) (*File, error) {
	dir, base, err := s.resolveParent(p)
	if err != nil {
		return nil, err
	}
	var zero uint64
	fh, _, err := s.nfs.Create(dir, base, nfs3.SetAttr{Size: &zero}, false)
	if err != nil {
		return nil, err
	}
	s.pages.InvalidateFile(fh)
	clean := path.Clean("/" + p)
	f := &File{s: s, fh: fh, path: clean}
	s.mu.Lock()
	s.dentries[clean] = dentry{fh: fh, ftyp: nfs3.TypeReg}
	s.files[f] = struct{}{}
	s.mu.Unlock()
	return f, nil
}

// ReadFile reads the whole file at p.
func (s *Session) ReadFile(p string) ([]byte, error) {
	f, err := s.Open(p)
	if err != nil {
		return nil, err
	}
	data, err := f.ReadAll()
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// WriteFile creates p with the given contents. The close-time commit
// error is reported: a nil return means the data reached (at least)
// the first-hop proxy's cache.
func (s *Session) WriteFile(p string, data []byte) error {
	f, err := s.Create(p)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, 0)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
