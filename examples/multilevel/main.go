// Multi-level proxy cache hierarchy: the paper's §3.2.1 observes that
// "a series of proxies, with independent caches of different sizes,
// can be cascaded between client and server". This example builds the
// WAN-S3-style topology — compute server -> LAN cache server -> WAN ->
// image server — and shows a second compute server on the same LAN
// being served from the LAN-level cache instead of crossing the WAN.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

func main() {
	// A 4 MB dataset on the WAN image server.
	fs := memfs.New()
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := fs.WriteFile("/shared/dataset.bin", payload); err != nil {
		log.Fatal(err)
	}

	wan := simnet.NewLink(simnet.WAN())
	lan := simnet.NewLink(simnet.LAN())
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: wan, Encrypt: true})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	// LAN cache server: a mid-tier proxy with its own (large) disk
	// cache, shared by every compute server on this LAN.
	lanDir, _ := os.MkdirTemp("", "lan-cache")
	defer os.RemoveAll(lanDir)
	lanCfg := cache.DefaultConfig(lanDir)
	lanCfg.Banks, lanCfg.SetsPerBank = 64, 32
	lanCfg.Policy = cache.WriteThrough
	lanProxy, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamLink: wan,
		UpstreamKey:  server.Key,
		CacheConfig:  &lanCfg,
		ListenLink:   lan,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lanProxy.Close()

	// Two compute servers, each with a small first-level proxy cache,
	// both chained through the LAN cache server.
	computeServer := func(name string) (*stack.Node, *gvfs.Session) {
		dir, _ := os.MkdirTemp("", "compute-cache")
		cfg := cache.DefaultConfig(dir)
		cfg.Banks, cfg.SetsPerBank = 8, 8 // small level-1 cache
		node, err := stack.StartProxy(stack.ProxyOptions{
			UpstreamAddr: lanProxy.Addr,
			UpstreamLink: lan,
			CacheConfig:  &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		node.AddCleanup(func() { os.RemoveAll(dir) })
		sess, err := gvfs.Mount(gvfs.SessionConfig{
			Addr:           node.Addr,
			Export:         "/",
			Cred:           sunrpc.UnixCred{UID: 500, GID: 500, MachineName: name}.Encode(),
			PageCachePages: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		return node, sess
	}

	read := func(sess *gvfs.Session) time.Duration {
		t0 := time.Now()
		if _, err := sess.ReadFile("/shared/dataset.bin"); err != nil {
			log.Fatal(err)
		}
		return time.Since(t0)
	}

	node1, sess1 := computeServer("compute1")
	defer node1.Close()
	defer sess1.Close()
	cold := read(sess1)
	fmt.Printf("compute1 cold read (across the WAN):          %7.2f s\n", cold.Seconds())

	node2, sess2 := computeServer("compute2")
	defer node2.Close()
	defer sess2.Close()
	lanWarm := read(sess2)
	fmt.Printf("compute2 cold read (LAN cache already warm):  %7.2f s\n", lanWarm.Seconds())

	warm := read(sess1)
	fmt.Printf("compute1 warm re-read (level-1 + buffer):     %7.2f s\n", warm.Seconds())

	lst := lanProxy.Proxy.Snapshot()
	fmt.Printf("\nLAN proxy cache: %d hits, %d misses, %d forwarded\n",
		lst.Counter("gvfs_proxy_read_hits_total"),
		lst.Counter("gvfs_proxy_read_misses_total"),
		lst.Counter("gvfs_proxy_forwarded_total"))
	fmt.Printf("speedup for the second LAN client: %.1fx\n", cold.Seconds()/lanWarm.Seconds())
}
