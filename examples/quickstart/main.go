// Quickstart: assemble a minimal GVFS deployment in-process — an image
// server (userspace NFS + server-side proxy with identity mapping) and
// a caching client-side proxy — then mount a session and do file I/O
// through the whole chain.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

func main() {
	// The image server's storage: an in-memory filesystem with a file
	// already on it.
	fs := memfs.New()
	if err := fs.WriteFile("/data/hello.txt", []byte("hello from the image server\n")); err != nil {
		log.Fatal(err)
	}

	// Image server: NFS server + server-side proxy + file channel.
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	// Client-side proxy with a write-back disk cache.
	cacheDir, err := os.MkdirTemp("", "gvfs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cfg := cache.DefaultConfig(cacheDir)
	cfg.Banks, cfg.SetsPerBank = 16, 16 // small demo cache
	proxyNode, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proxyNode.Close()

	// Mount a session, as the compute server's NFS client would.
	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:           proxyNode.Addr,
		Export:         "/",
		Cred:           sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "demo"}.Encode(),
		PageCachePages: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Read through the chain.
	data, err := sess.ReadFile("/data/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s", data)

	// Write through it; write-back keeps the data at the proxy.
	payload := bytes.Repeat([]byte("result-block "), 1000)
	if err := sess.WriteFile("/data/results.out", payload); err != nil {
		log.Fatal(err)
	}
	st := proxyNode.Proxy.Snapshot()
	fmt.Printf("proxy absorbed %d writes (dirty at the proxy, not yet at the server)\n",
		st.Counter("gvfs_proxy_writes_absorbed_total"))

	// Middleware-driven consistency: propagate the session's data.
	if err := proxyNode.Proxy.WriteBack(); err != nil {
		log.Fatal(err)
	}
	back, err := fs.ReadFile("/data/results.out")
	if err != nil || !bytes.Equal(back, payload) {
		log.Fatalf("server copy mismatch: %v", err)
	}
	fmt.Printf("after WriteBack the image server holds all %d bytes\n", len(back))

	// Re-read to show the cache hierarchy at work.
	sess.DropCaches() // cold client memory, warm proxy disk
	if _, err := sess.ReadFile("/data/results.out"); err != nil {
		log.Fatal(err)
	}
	st = proxyNode.Proxy.Snapshot()
	fmt.Printf("proxy cache: %d hits, %d misses\n",
		st.Counter("gvfs_proxy_read_hits_total"), st.Counter("gvfs_proxy_read_misses_total"))
}
