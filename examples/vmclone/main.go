// VM cloning over an emulated WAN: a golden VM image (16 MB memory
// state, 64 MB virtual disk) lives on an image server reached across
// the paper's WAN profile (30 ms RTT, scaled 2x to keep the demo
// short). The example clones it three times with full GVFS support —
// meta-data-driven compressed memory state transfer, symlinked disks,
// proxy caches — and compares against the SCP full-copy and plain-NFS
// baselines.
//
//	go run ./examples/vmclone
package main

import (
	"fmt"
	"log"
	"os"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/clone"
	"gvfs/internal/memfs"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/vm"
)

// demoWAN is the paper's WAN profile accelerated 2x so the demo
// (including the deliberately slow baselines) finishes quickly.
func demoWAN() simnet.Profile {
	p := simnet.WAN()
	p.Scale = 2
	return p
}

func main() {
	spec := vm.Spec{
		Name:        "rh73",
		MemoryBytes: 16 << 20,
		DiskBytes:   64 << 20,
		Seed:        1,
	}
	fs := memfs.New()
	fmt.Println("installing golden image (16 MB memory state, 64 MB disk)...")
	if err := vm.InstallImage(fs, "/images/golden", spec); err != nil {
		log.Fatal(err)
	}

	wan := simnet.NewLink(demoWAN())
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: wan, Encrypt: true})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	blockDir, _ := os.MkdirTemp("", "vmclone-block")
	fileDir, _ := os.MkdirTemp("", "vmclone-file")
	defer os.RemoveAll(blockDir)
	defer os.RemoveAll(fileDir)
	cfg := cache.DefaultConfig(blockDir)
	cfg.Banks, cfg.SetsPerBank = 32, 32
	proxyNode, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamLink: wan,
		UpstreamKey:  server.Key,
		CacheConfig:  &cfg,
		FileCacheDir: fileDir,
		FileChanAddr: server.FileChanAddr(),
		FileChanLink: wan,
		FileChanKey:  server.Key,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proxyNode.Close()

	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:           proxyNode.Addr,
		Export:         "/",
		Cred:           sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "compute1"}.Encode(),
		PageCachePages: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	for i := 1; i <= 3; i++ {
		res, err := clone.Clone(sess, clone.Options{
			GoldenDir: "/images/golden",
			CloneDir:  fmt.Sprintf("/clones/c%d", i),
			Name:      "rh73",
			User:      fmt.Sprintf("user%d", i),
		})
		if err != nil {
			log.Fatalf("clone %d: %v", i, err)
		}
		fmt.Printf("clone %d: %8.2f s", i, res.Duration.Seconds())
		if i == 1 {
			fmt.Printf("   (cold: compressed memory state crossed the WAN)")
		} else {
			fmt.Printf("   (warm: memory state served from the proxy file cache)")
		}
		fmt.Println()
	}
	st := proxyNode.Proxy.Snapshot()
	fmt.Printf("file-channel transfers: %d (one per golden image, regardless of clone count)\n",
		st.Counter("gvfs_proxy_filechan_fetches_total"))

	// Baseline 1: SCP-style full-image copy over the same WAN profile.
	fmt.Println("\nbaselines over the same WAN profile:")
	scpWAN := simnet.NewLink(demoWAN())
	fcNode, err := stack.StartFileChanServer(fs, scpWAN, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer fcNode.Close()
	_, scpDur, err := clone.SCPCopy(stack.Dialer(fcNode.Addr, scpWAN, nil), "/images/golden", "rh73")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scp full-image copy:     %8.2f s\n", scpDur.Seconds())

	// Baseline 2: plain NFS resume (block-by-block memory state).
	nfsWAN := simnet.NewLink(demoWAN())
	nfsNode, err := stack.StartNFSServer(fs, stack.NFSServerOptions{ListenLink: nfsWAN})
	if err != nil {
		log.Fatal(err)
	}
	defer nfsNode.Close()
	plainSess, err := gvfs.Mount(gvfs.SessionConfig{Addr: nfsNode.Addr, Export: "/", PageCachePages: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer plainSess.Close()
	nfsDur, err := clone.PlainNFSResume(plainSess, "/images/golden", "rh73")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  plain NFS resume:        %8.2f s\n", nfsDur.Seconds())
	fmt.Println("\n(the paper reports 160 s first clone / 25 s warm vs 1127 s scp and 2060 s plain NFS at full scale)")
}
