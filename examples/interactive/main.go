// Interactive session latency: the paper's LaTeX scenario. A user's
// "virtual workspace" VM sits on a WAN image server; the example runs
// the 20-iteration document-processing workload twice — once over a
// plain forwarding proxy (the WAN scenario) and once with the
// client-side write-back disk cache (WAN+C) — and prints per-iteration
// response times, showing the cache bringing steady-state latency down
// to near-local levels.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"path"

	"gvfs/internal/bench"
	"gvfs/internal/memfs"
	"gvfs/internal/vm"
	"gvfs/internal/workload"
)

func main() {
	const scale = 256 // 1/256 of paper-scale sizes and compute
	opts := bench.Options{Scale: scale}

	fmt.Printf("LaTeX interactive benchmark (scale 1/%d, 20 iterations)\n\n", scale)
	fmt.Printf("%-8s %12s %12s\n", "iter", "WAN (s)", "WAN+C (s)")

	reports := map[bench.Scenario]*workload.Report{}
	for _, scenario := range []bench.Scenario{bench.WAN, bench.WANC} {
		rep, err := runLaTeX(opts, scenario)
		if err != nil {
			log.Fatal(err)
		}
		reports[scenario] = rep
	}
	wan, wanc := reports[bench.WAN], reports[bench.WANC]
	for i := range wan.Phases {
		fmt.Printf("%-8s %12.3f %12.3f\n", wan.Phases[i].Name,
			wan.Phases[i].Duration.Seconds(), wanc.Phases[i].Duration.Seconds())
	}
	fmt.Printf("\nfirst iteration:  WAN %.2f s   WAN+C %.2f s   (startup: cold caches dominate both)\n",
		workload.FirstIteration(wan).Seconds(), workload.FirstIteration(wanc).Seconds())
	fmt.Printf("mean of 2..20:    WAN %.3f s  WAN+C %.3f s  (the proxy cache absorbs the WAN)\n",
		workload.MeanOfRest(wan).Seconds(), workload.MeanOfRest(wanc).Seconds())
}

// runLaTeX builds one scenario and runs the workload, mirroring the
// harness's Figure 4 driver in miniature.
func runLaTeX(o bench.Options, s bench.Scenario) (*workload.Report, error) {
	params := workload.Params{Scale: 256}
	spec := vm.Spec{
		Name:        "workspace",
		MemoryBytes: 512 << 20 / 256,
		DiskBytes:   2 << 30 / 256,
		Seed:        3,
	}
	fs := memfs.New()
	if err := vm.InstallImage(fs, "/vm", spec); err != nil {
		return nil, err
	}
	dep, err := o.Deploy(fs, s)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	disk, err := dep.Session.Open(path.Join("/vm", spec.DiskFile()))
	if err != nil {
		return nil, err
	}
	guest, err := workload.NewGuestFS(disk, spec.DiskBytes, dep.Session.BlockSize(),
		workload.LaTeXInstall(params))
	if err != nil {
		return nil, err
	}
	return workload.LaTeX(guest, params)
}
