// Persistent-VM session (paper §3.2.3, first scenario): a Grid user
// owns a dedicated VM whose state lives on a WAN image server. The
// session resumes it, works, and suspends it; the write-back proxy
// hides the checkpoint latency, and the proxy's *idle writer* settles
// the modifications "when the user is off-line or the session is
// idle" — no explicit middleware flush needed.
//
//	go run ./examples/persistent
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/vm"
)

func main() {
	spec := vm.Spec{Name: "rh73", MemoryBytes: 8 << 20, DiskBytes: 32 << 20, Seed: 4}
	fs := memfs.New()
	if err := vm.InstallImage(fs, "/users/alice/vm", spec); err != nil {
		log.Fatal(err)
	}
	wan := simnet.NewLink(simnet.WAN())
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: wan, Encrypt: true})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	blockDir, _ := os.MkdirTemp("", "persistent-block")
	fileDir, _ := os.MkdirTemp("", "persistent-file")
	defer os.RemoveAll(blockDir)
	defer os.RemoveAll(fileDir)
	cfg := cache.DefaultConfig(blockDir)
	cfg.Banks, cfg.SetsPerBank = 16, 32
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr:  server.ProxyAddr(),
		UpstreamLink:  wan,
		UpstreamKey:   server.Key,
		CacheConfig:   &cfg,
		FileCacheDir:  fileDir,
		FileChanAddr:  server.FileChanAddr(),
		FileChanLink:  wan,
		FileChanKey:   server.Key,
		IdleWriteBack: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:           node.Addr,
		Export:         "/",
		Cred:           sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "workstation"}.Encode(),
		PageCachePages: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	monitor := vm.NewMonitor(sess)
	t0 := time.Now()
	machine, err := monitor.Resume("/users/alice/vm", "rh73")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed alice's VM in %.2f s (meta-data restore over the WAN)\n",
		time.Since(t0).Seconds())

	// The user works: the VM writes to its virtual disk.
	work := bytes.Repeat([]byte("user data "), 3277) // ~32 KB
	t0 = time.Now()
	if _, err := machine.Disk.WriteAt(work, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk writes absorbed by the write-back proxy in %.3f s\n",
		time.Since(t0).Seconds())

	// The user suspends and walks away.
	newState := spec.GenerateMemState()
	t0 = time.Now()
	if err := monitor.Suspend(machine, newState); err != nil {
		log.Fatal(err)
	}
	machine.Close()
	fmt.Printf("suspend (checkpoint write) returned in %.2f s — state is dirty at the proxy\n",
		time.Since(t0).Seconds())

	// With the session idle, the proxy settles on its own.
	fmt.Println("session idle; waiting for the proxy's idle writer...")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		stored, err := fs.ReadFile("/users/alice/vm/rh73.vmss")
		if err == nil && bytes.Equal(stored, newState) {
			fmt.Println("image server now holds the checkpointed state — session settled without any explicit flush")
			return
		}
		time.Sleep(500 * time.Millisecond)
	}
	log.Fatal("idle writer never settled the session")
}
