// VM migration across compute servers — the paper's future-work
// direction, built on the mechanisms the paper provides: a VM running
// on compute server A is checkpointed, A's proxy writes its dirty
// session state back to the image server, and the VM resumes on
// compute server B, pulling state on demand through B's own proxy
// caches.
//
//	go run ./examples/migrate
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/clone"
	"gvfs/internal/memfs"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
	"gvfs/internal/vm"
)

func computeServer(name string, server *stack.ImageServer, wan *simnet.Link) (*stack.Node, *gvfs.Session, func(), error) {
	blockDir, _ := os.MkdirTemp("", "migrate-block")
	fileDir, _ := os.MkdirTemp("", "migrate-file")
	cfg := cache.DefaultConfig(blockDir)
	cfg.Banks, cfg.SetsPerBank = 16, 32
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamLink: wan,
		UpstreamKey:  server.Key,
		CacheConfig:  &cfg,
		FileCacheDir: fileDir,
		FileChanAddr: server.FileChanAddr(),
		FileChanLink: wan,
		FileChanKey:  server.Key,
	})
	if err != nil {
		os.RemoveAll(blockDir)
		os.RemoveAll(fileDir)
		return nil, nil, nil, err
	}
	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:           node.Addr,
		Export:         "/",
		Cred:           sunrpc.UnixCred{UID: 500, GID: 500, MachineName: name}.Encode(),
		PageCachePages: 512,
	})
	if err != nil {
		node.Close()
		os.RemoveAll(blockDir)
		os.RemoveAll(fileDir)
		return nil, nil, nil, err
	}
	cleanup := func() {
		sess.Close()
		node.Close()
		os.RemoveAll(blockDir)
		os.RemoveAll(fileDir)
	}
	return node, sess, cleanup, nil
}

func main() {
	spec := vm.Spec{Name: "rh73", MemoryBytes: 16 << 20, DiskBytes: 64 << 20, Seed: 2}
	fs := memfs.New()
	if err := vm.InstallImage(fs, "/vm", spec); err != nil {
		log.Fatal(err)
	}
	wan := simnet.NewLink(simnet.WAN())
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: wan, Encrypt: true})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	nodeA, sessA, cleanA, err := computeServer("computeA", server, wan)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanA()
	_, sessB, cleanB, err := computeServer("computeB", server, wan)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanB()

	fmt.Println("resuming VM on compute server A...")
	monitorA := vm.NewMonitor(sessA)
	machine, err := monitorA.Resume("/vm", "rh73")
	if err != nil {
		log.Fatal(err)
	}
	// The running VM modifies its disk.
	patch := bytes.Repeat([]byte("dirty-state "), 680)
	if _, err := machine.Disk.WriteAt(patch, 4096); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VM running on A; disk modified (absorbed by A's write-back cache)")

	checkpoint := bytes.Repeat([]byte{0xC4}, int(spec.MemoryBytes))
	res, err := clone.Migrate(sessB, clone.MigrateOptions{
		Machine:      machine,
		Monitor:      monitorA,
		MemState:     checkpoint,
		SettleSource: nodeA.Proxy.WriteBack,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer res.VM.Close()

	fmt.Printf("migration phases: suspend %.2f s, settle %.2f s, resume %.2f s\n",
		res.SuspendTime.Seconds(), res.SettleTime.Seconds(), res.ResumeTime.Seconds())

	// Verify B sees A's modification through its own chain.
	buf := make([]byte, len(patch))
	if _, err := res.VM.Disk.ReadAt(buf, 4096); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(buf, patch) {
		fmt.Println("compute server B sees A's disk modifications: migration consistent")
	} else {
		fmt.Println("MIGRATION INCONSISTENT")
		os.Exit(1)
	}
}
