package gvfs_test

// Benchmark harness entry points: one testing.B benchmark per table
// and figure in the paper's evaluation, plus ablation benches for the
// design choices called out in DESIGN.md. Each benchmark iteration
// regenerates the complete experiment (topology construction, cold
// caches, workload execution) at a reduced scale; the full-size runs
// live in cmd/gvfsbench.
//
// Key scenario results are attached via b.ReportMetric (in seconds) so
// `go test -bench` output captures the table shape, not just the
// harness runtime.
//
// Set GVFS_BENCH_SCALE to change the scale factor (default 1024; the
// paper's sizes divided by 1024).

import (
	"os"
	"strconv"
	"testing"

	"gvfs/internal/bench"
)

func benchScale() float64 {
	if v := os.Getenv("GVFS_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1024
}

func benchOptions(b *testing.B) bench.Options {
	b.Helper()
	return bench.Options{Scale: benchScale(), WorkDir: b.TempDir()}
}

// report attaches selected table cells as benchmark metrics.
func report(b *testing.B, t *bench.Table, cells map[string][2]string) {
	b.Helper()
	for metric, rc := range cells {
		if v, ok := t.Value(rc[0], rc[1]); ok {
			b.ReportMetric(v, metric)
		}
	}
}

// BenchmarkFig3SPECseis regenerates Figure 3: SPECseis phase times
// across Local/LAN/WAN/WAN+C.
func BenchmarkFig3SPECseis(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"local-total-s": {"Local", "Total"},
			"wan-total-s":   {"WAN", "Total"},
			"wanc-total-s":  {"WAN+C", "Total"},
		})
	}
}

// BenchmarkFig4LaTeX regenerates Figure 4: LaTeX first-iteration and
// steady-state times.
func BenchmarkFig4LaTeX(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"local-mean-s": {"Local", "Mean 2-20"},
			"wan-mean-s":   {"WAN", "Mean 2-20"},
			"wanc-mean-s":  {"WAN+C", "Mean 2-20"},
			"wan-first-s":  {"WAN", "First iter"},
		})
	}
}

// BenchmarkFig5KernelCompile regenerates Figure 5: kernel compilation,
// cold and warm runs.
func BenchmarkFig5KernelCompile(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunFig5()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"local-cold-s": {"Local run1", "Total"},
			"wanc-cold-s":  {"WAN+C run1", "Total"},
			"wanc-warm-s":  {"WAN+C run2", "Total"},
			"wan-warm-s":   {"WAN run2", "Total"},
		})
	}
}

// BenchmarkFig6Cloning regenerates Figure 6: the 8-image cloning
// sequences.
func BenchmarkFig6Cloning(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"s1-first-clone-s": {"WAN-S1", "clone 1"},
			"s1-warm-clone-s":  {"WAN-S1", "clone 8"},
			"s2-clone-s":       {"WAN-S2", "clone 8"},
			"s3-clone-s":       {"WAN-S3", "clone 8"},
		})
	}
}

// BenchmarkTable1ParallelCloning regenerates Table 1: sequential vs
// parallel cloning of eight images, cold and warm.
func BenchmarkTable1ParallelCloning(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"seq-cold-s": {"WAN-S1 (sequential)", "cold caches"},
			"par-cold-s": {"WAN-P (parallel)", "cold caches"},
			"seq-warm-s": {"WAN-S1 (sequential)", "warm caches"},
			"par-warm-s": {"WAN-P (parallel)", "warm caches"},
		})
	}
}

// BenchmarkZeroBlockFiltering regenerates the in-text zero-filter
// measurement (65,750 reads, 60,452 filtered at paper scale).
func BenchmarkZeroBlockFiltering(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunZeroFilter()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"reads":    {"this run", "client reads"},
			"filtered": {"this run", "filtered"},
		})
	}
}

// BenchmarkAblationWritePolicy compares write-through and write-back
// for a large WAN trace write (§3.2.1 design choice).
func BenchmarkAblationWritePolicy(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunAblationWritePolicy()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"writethrough-s": {"write-through", "write time"},
			"writeback-s":    {"write-back", "write time"},
		})
	}
}

// BenchmarkAblationMetadata compares first-clone latency with full
// meta-data, zero map only, and none (§3.2.2 design choice).
func BenchmarkAblationMetadata(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunAblationMetadata()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"filechannel-s": {"file channel + zero map", "clone time"},
			"zeromap-s":     {"zero map only", "clone time"},
			"none-s":        {"no meta-data", "clone time"},
		})
	}
}

// BenchmarkAblationCacheGeometry sweeps cache block size and
// associativity.
func BenchmarkAblationCacheGeometry(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunAblationCacheGeometry()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"cold-8k-s":  {"8KB 16-way", "cold scan"},
			"warm-8k-s":  {"8KB 16-way", "warm scan"},
			"cold-32k-s": {"32KB 16-way", "cold scan"},
		})
	}
}

// BenchmarkAblationTunnel measures private-channel encryption cost.
func BenchmarkAblationTunnel(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunAblationTunnel()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"plain-s":    {"plain", "cold scan"},
			"tunneled-s": {"tunneled", "cold scan"},
		})
	}
}

// BenchmarkAblationReadAhead measures the future-work sequential
// prefetching extension.
func BenchmarkAblationReadAhead(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunAblationReadAhead()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"disabled-s": {"disabled", "cold scan"},
			"ra16-s":     {"read-ahead 16", "cold scan"},
		})
	}
}

// BenchmarkPersistentVM exercises the §3.2.3 persistent-VM session:
// resume, interactive work, suspend, settle — WAN vs WAN+C.
func BenchmarkPersistentVM(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := o.RunPersistentVM()
		if err != nil {
			b.Fatal(err)
		}
		report(b, t, map[string][2]string{
			"wan-suspend-s":  {"WAN", "suspend"},
			"wanc-suspend-s": {"WAN+C", "suspend"},
			"wan-resume-s":   {"WAN", "resume"},
			"wanc-resume-s":  {"WAN+C", "resume"},
		})
	}
}
