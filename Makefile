# GVFS reproduction — convenience targets.

GO ?= go

.PHONY: all build test race vet bench experiments examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# testing.B entry points, one per paper table/figure (reduced scale).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full experiment suite at 1/64 of paper scale (several minutes).
experiments:
	$(GO) run ./cmd/gvfsbench -experiment all -scale 64 -v

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vmclone
	$(GO) run ./examples/interactive
	$(GO) run ./examples/multilevel
	$(GO) run ./examples/migrate

clean:
	$(GO) clean ./...
