package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while snapshots and exposition run concurrently; run
// under -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	g := r.Gauge("g", "gauge")
	cv := r.CounterVec("cv_total", "labeled counter", "which")
	hv := r.HistogramVec("h_seconds", "labeled histogram", []float64{0.001, 0.01}, "proc")
	r.CounterFunc("cf_total", "func counter", func() uint64 { return c.Value() })
	r.GaugeFunc("gf", "func gauge", func() float64 { return g.Value() })

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := []string{"a", "b", "c"}[w%3]
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				cv.With(label).Add(2)
				hv.With(label).Observe(time.Duration(i%20) * time.Millisecond)
			}
		}(w)
	}
	// Concurrent readers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Snapshot()
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["c_total"]; got != workers*iters {
		t.Errorf("c_total = %d, want %d", got, workers*iters)
	}
	if got := s.Counters["cf_total"]; got != workers*iters {
		t.Errorf("cf_total = %d, want %d", got, workers*iters)
	}
	if got := s.Gauges["g"]; got != workers*iters {
		t.Errorf("g = %v, want %d", got, workers*iters)
	}
	var labeled uint64
	for _, l := range []string{"a", "b", "c"} {
		labeled += s.Counters[`cv_total{which="`+l+`"}`]
	}
	if labeled != 2*workers*iters {
		t.Errorf("sum cv_total = %d, want %d", labeled, 2*workers*iters)
	}
	var hcount uint64
	for key, hval := range s.Histograms {
		_ = key
		hcount += hval.Count
	}
	if hcount != workers*iters {
		t.Errorf("histogram total count = %d, want %d", hcount, workers*iters)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket
// semantics: an observation exactly on a bound lands in that bound's
// bucket, and everything past the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.010, 0.100})

	h.Observe(0)                      // below first bound
	h.Observe(1 * time.Millisecond)   // exactly the first bound
	h.Observe(1*time.Millisecond + 1) // just over the first bound
	h.Observe(10 * time.Millisecond)  // exactly the second bound
	h.Observe(100 * time.Millisecond) // exactly the last bound
	h.Observe(150 * time.Millisecond) // overflow -> +Inf only

	v := h.snapshot()
	if v.Count != 6 {
		t.Fatalf("count = %d, want 6", v.Count)
	}
	wantCum := []uint64{2, 4, 5, 6} // le=0.001, 0.01, 0.1, +Inf
	if len(v.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(v.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if v.Buckets[i].Count != want {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, v.Buckets[i].LE, v.Buckets[i].Count, want)
		}
	}
	wantSum := (0 + 1 + 1 + 10 + 100 + 150) * time.Millisecond
	if got := time.Duration(v.Sum * float64(time.Second)); got < wantSum-time.Microsecond || got > wantSum+time.Microsecond {
		t.Errorf("sum = %v, want ~%v", got, wantSum)
	}
	if mean := v.Mean(); mean <= 0 {
		t.Errorf("mean = %v, want > 0", mean)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared instrument should see increments from either handle")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "help")
}
