package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerLevelFiltering(t *testing.T) {
	ring := NewLogRing(16)
	lg := NewLogger(LoggerConfig{Level: LevelWarn, Ring: ring})
	lg.Debug("d")
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Level != "warn" || evs[1].Level != "error" {
		t.Fatalf("wrong levels: %+v", evs)
	}
	lg.SetLevel(LevelDebug)
	if !lg.Enabled(LevelDebug) {
		t.Fatal("debug should be enabled after SetLevel")
	}
	lg.Debug("d2")
	if got := len(ring.Events()); got != 3 {
		t.Fatalf("got %d events after SetLevel, want 3", got)
	}
}

func TestLogRingOverwritesOldest(t *testing.T) {
	ring := NewLogRing(3)
	lg := NewLogger(LoggerConfig{Ring: ring})
	for i := 0; i < 5; i++ {
		lg.Info(fmt.Sprintf("msg%d", i))
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, want := range []string{"msg2", "msg3", "msg4"} {
		if evs[i].Msg != want {
			t.Errorf("event %d = %q, want %q", i, evs[i].Msg, want)
		}
	}
	if ring.Total() != 5 {
		t.Errorf("Total = %d, want 5", ring.Total())
	}
}

func TestLoggerNamedComponent(t *testing.T) {
	ring := NewLogRing(16)
	root := NewLogger(LoggerConfig{Ring: ring})
	root.Named("proxy").Info("a")
	root.Named("breaker").Warn("b")
	evs := ring.Events()
	if evs[0].Component != "proxy" || evs[1].Component != "breaker" {
		t.Fatalf("components wrong: %+v", evs)
	}
}

type stringerVal struct{}

func (stringerVal) String() string { return "stringered" }

func TestPairFields(t *testing.T) {
	fs := pairFields([]any{
		"str", "v",
		"dur", 250 * time.Millisecond,
		"err", errors.New("boom"),
		"stringer", stringerVal{},
		42, "badkey",
		"dangling",
	})
	want := []Field{
		{Key: "str", Value: "v"},
		{Key: "dur", Value: "250ms"},
		{Key: "err", Value: "boom"},
		{Key: "stringer", Value: "stringered"},
		{Key: "!BADKEY(42)", Value: "badkey"},
		{Key: "dangling", Value: "(MISSING)"},
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d fields, want %d: %+v", len(fs), len(want), fs)
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("field %d = %+v, want %+v", i, fs[i], want[i])
		}
	}
}

func TestLoggerTextSink(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(LoggerConfig{Output: &buf}).Named("gvfsd")
	lg.Info("started", "addr", "127.0.0.1:2049", "note", "two words")
	line := buf.String()
	for _, want := range []string{"INFO", "gvfsd: started", "addr=127.0.0.1:2049", `note="two words"`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLogzJSONPassesLint(t *testing.T) {
	ring := NewLogRing(8)
	lg := NewLogger(LoggerConfig{Ring: ring})
	lg.Info("hello", "k", 1)
	lg.Error("bad", "err", errors.New("x"))
	var buf bytes.Buffer
	if err := ring.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintLogz(buf.Bytes()); err != nil {
		t.Fatalf("LintLogz rejected own output: %v\n%s", err, buf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["total_logged"].(float64) != 2 {
		t.Errorf("total_logged = %v, want 2", doc["total_logged"])
	}
}

func TestLintLogzRejects(t *testing.T) {
	cases := map[string]string{
		"malformed":     `{"total_logged": `,
		"zero capacity": `{"total_logged":1,"capacity":0,"events":[]}`,
		"overflow":      `{"total_logged":3,"capacity":1,"events":[{"time_ns":1,"level":"info","msg":"a"},{"time_ns":2,"level":"info","msg":"b"}]}`,
		"no msg":        `{"total_logged":1,"capacity":4,"events":[{"time_ns":1,"level":"info","msg":""}]}`,
		"bad level":     `{"total_logged":1,"capacity":4,"events":[{"time_ns":1,"level":"fatal","msg":"x"}]}`,
		"bad time":      `{"total_logged":1,"capacity":4,"events":[{"time_ns":0,"level":"info","msg":"x"}]}`,
	}
	for name, in := range cases {
		if err := LintLogz([]byte(in)); err == nil {
			t.Errorf("%s: LintLogz accepted %s", name, in)
		}
	}
}

func TestLintBoundedJSON(t *testing.T) {
	if err := LintBoundedJSON([]byte(`{"a":[1,2,3],"b":{"c":[]}}`), 3); err != nil {
		t.Errorf("bounded doc rejected: %v", err)
	}
	if err := LintBoundedJSON([]byte(`{"a":[1,2,3,4]}`), 3); err == nil {
		t.Error("over-bound array accepted")
	}
	if err := LintBoundedJSON([]byte(`[1,2]`), 3); err == nil {
		t.Error("non-object top level accepted")
	}
	if err := LintBoundedJSON([]byte(`{"a":`), 3); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestNilLoggerAndRingSafe(t *testing.T) {
	var lg *Logger
	lg.Info("ignored", "k", "v")
	lg.SetLevel(LevelDebug)
	if lg.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if lg.Named("x") != nil {
		t.Error("nil logger Named should return nil")
	}
	if lg.Ring() != nil {
		t.Error("nil logger Ring should return nil")
	}
	var ring *LogRing
	ring.append(Event{})
	if ring.Events() != nil || ring.Total() != 0 || ring.Capacity() != 0 {
		t.Error("nil ring not inert")
	}
	var buf bytes.Buffer
	if err := ring.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintBoundedJSON(buf.Bytes(), 10); err != nil {
		t.Errorf("nil ring JSON not bounded-valid: %v", err)
	}
}

func TestLoggerEventCounter(t *testing.T) {
	reg := NewRegistry()
	lg := NewLogger(LoggerConfig{Metrics: reg, Ring: NewLogRing(4)})
	lg.Info("a")
	lg.Info("b")
	lg.Error("c")
	snap := reg.Snapshot()
	if got := snap.Counters[`gvfs_log_events_total{level="info"}`]; got != 2 {
		t.Errorf("info count = %d, want 2", got)
	}
	if got := snap.Counters[`gvfs_log_events_total{level="error"}`]; got != 1 {
		t.Errorf("error count = %d, want 1", got)
	}
}

func TestLoggerConcurrent(t *testing.T) {
	ring := NewLogRing(64)
	var buf bytes.Buffer
	lg := NewLogger(LoggerConfig{Ring: ring, Output: &buf})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			l := lg.Named(fmt.Sprintf("c%d", n))
			for j := 0; j < 50; j++ {
				l.Info("tick", "j", j)
			}
		}(i)
	}
	wg.Wait()
	if ring.Total() != 400 {
		t.Errorf("Total = %d, want 400", ring.Total())
	}
	if got := len(ring.Events()); got != 64 {
		t.Errorf("retained %d, want 64", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("fatal"); err == nil {
		t.Error("ParseLevel(fatal) should fail")
	}
}
