package obs

// Structured, leveled logging — the event-log half of the diagnostic
// layer. Gray's observation that most outages are diagnosed from event
// logs rather than counters motivates keeping this next to the metrics
// registry: one dependency-free package carries both signals.
//
// A Logger renders key-value events into up to two sinks: a bounded
// in-memory ring (served as JSON at /logz, and dumpable as a post-
// mortem artifact) and a text writer (stderr and/or a log file). All
// methods are safe on a nil *Logger, so components can thread a logger
// through unconditionally the same way they thread a nil *Tracer.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("Level(%d)", int32(l))
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Field is one key-value pair attached to an event.
type Field struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Event is one structured log record.
type Event struct {
	TimeNs    int64   `json:"time_ns"` // unix nanoseconds
	Level     string  `json:"level"`
	Component string  `json:"component,omitempty"`
	Msg       string  `json:"msg"`
	Fields    []Field `json:"fields,omitempty"`
}

// DefaultLogRing is the ring capacity used when none is given.
const DefaultLogRing = 1024

// LogRing retains the most recent events in a bounded ring; when full,
// the oldest entries are overwritten. A nil *LogRing is safe to use
// (events are dropped).
type LogRing struct {
	capacity int

	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// NewLogRing returns a ring keeping the last capacity events
// (DefaultLogRing when capacity <= 0).
func NewLogRing(capacity int) *LogRing {
	if capacity <= 0 {
		capacity = DefaultLogRing
	}
	return &LogRing{capacity: capacity}
}

// Capacity reports the ring bound (0 on nil).
func (r *LogRing) Capacity() int {
	if r == nil {
		return 0
	}
	return r.capacity
}

func (r *LogRing) append(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < r.capacity {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
	}
	r.next = (r.next + 1) % r.capacity
	r.total++
}

// Events returns the retained events, oldest first.
func (r *LogRing) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) < r.capacity {
		out = append(out, r.ring...)
	} else {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	}
	return out
}

// Total reports how many events were ever logged into the ring
// (including ones since overwritten).
func (r *LogRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// logzDoc is the /logz JSON document.
type logzDoc struct {
	Total    uint64  `json:"total_logged"`
	Capacity int     `json:"capacity"`
	Events   []Event `json:"events"`
}

// WriteJSON dumps the ring as a JSON document (the /logz endpoint).
// Safe on a nil receiver (empty document).
func (r *LogRing) WriteJSON(w io.Writer) error {
	doc := logzDoc{Total: r.Total(), Capacity: r.Capacity(), Events: r.Events()}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LintLogz validates a /logz document: well-formed JSON of the right
// shape, with the events array bounded by the declared capacity. The
// linter guards the same failure modes Lint does for /metrics — a
// hand-rolled encoder emitting unbounded or malformed output.
func LintLogz(data []byte) error {
	var doc logzDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("logz: malformed JSON: %v", err)
	}
	if doc.Capacity <= 0 {
		return fmt.Errorf("logz: capacity %d is not positive", doc.Capacity)
	}
	if len(doc.Events) > doc.Capacity {
		return fmt.Errorf("logz: %d events exceed declared capacity %d", len(doc.Events), doc.Capacity)
	}
	for i, e := range doc.Events {
		if e.Msg == "" {
			return fmt.Errorf("logz: event %d has no msg", i)
		}
		if _, err := ParseLevel(e.Level); err != nil || e.Level == "" {
			return fmt.Errorf("logz: event %d has bad level %q", i, e.Level)
		}
		if e.TimeNs <= 0 {
			return fmt.Errorf("logz: event %d has bad time_ns %d", i, e.TimeNs)
		}
	}
	return nil
}

// logCore is the sink state shared by a Logger and everything derived
// from it with Named.
type logCore struct {
	level  atomic.Int32
	ring   *LogRing
	events *CounterVec // gvfs_log_events_total{level}; nil when unmetered

	mu  sync.Mutex // serializes text rendering
	out io.Writer  // nil = no text sink
}

// LoggerConfig assembles a Logger. Every sink is optional.
type LoggerConfig struct {
	// Level is the minimum severity that is recorded (default Info —
	// note LevelDebug must be selected explicitly).
	Level Level
	// Output receives one text line per event (typically os.Stderr, or
	// an io.MultiWriter adding a log file). Nil disables the text sink.
	Output io.Writer
	// Ring receives every event for /logz. Nil disables the ring sink.
	Ring *LogRing
	// Metrics, when set, counts emitted events per level as
	// gvfs_log_events_total{level=...}.
	Metrics *Registry
}

// Logger emits structured events scoped to one component. Derive
// per-component loggers with Named; they share sinks and level.
type Logger struct {
	core      *logCore
	component string
}

// NewLogger builds a logger for cfg.
func NewLogger(cfg LoggerConfig) *Logger {
	core := &logCore{ring: cfg.Ring, out: cfg.Output}
	core.level.Store(int32(cfg.Level))
	if cfg.Metrics != nil {
		core.events = cfg.Metrics.CounterVec("gvfs_log_events_total",
			"Structured log events emitted, by level.", "level")
	}
	return &Logger{core: core}
}

// Named returns a logger labeling every event with the component name.
// Safe on nil (returns nil).
func (l *Logger) Named(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, component: component}
}

// Ring returns the ring sink (nil when absent or on a nil logger).
func (l *Logger) Ring() *LogRing {
	if l == nil {
		return nil
	}
	return l.core.ring
}

// SetLevel changes the minimum recorded severity at runtime.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.core.level.Store(int32(level))
}

// Enabled reports whether events at level would be recorded.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.core.level.Load()
}

// Debug logs a debug event. kv is alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs an informational event.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs a warning event.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs an error event.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	e := Event{
		TimeNs:    time.Now().UnixNano(),
		Level:     level.String(),
		Component: l.component,
		Msg:       msg,
		Fields:    pairFields(kv),
	}
	c := l.core
	if c.events != nil {
		c.events.With(e.Level).Inc()
	}
	c.ring.append(e)
	if c.out != nil {
		line := renderText(e)
		c.mu.Lock()
		io.WriteString(c.out, line)
		c.mu.Unlock()
	}
}

// pairFields folds alternating key, value arguments into Fields,
// normalizing values to JSON-friendly types. A trailing key without a
// value, or a non-string key, is kept visibly malformed rather than
// dropped, so bugs in call sites show up in the log itself.
func pairFields(kv []any) []Field {
	if len(kv) == 0 {
		return nil
	}
	fields := make([]Field, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("!BADKEY(%v)", kv[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(kv) {
			val = normalizeValue(kv[i+1])
		}
		fields = append(fields, Field{Key: key, Value: val})
	}
	return fields
}

// normalizeValue maps arbitrary values onto a small set of stable,
// JSON-encodable types so ring entries never retain caller state.
func normalizeValue(v any) any {
	switch x := v.(type) {
	case nil:
		return nil
	case string, bool, float64, float32,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64:
		return x
	case time.Duration:
		return x.String()
	case time.Time:
		return x.Format(time.RFC3339Nano)
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}

// renderText formats one event as a single text line:
//
//	2026-08-06T12:00:00.000000Z INFO  gvfsproxy: shutting down sig=SIGTERM
func renderText(e Event) string {
	var b strings.Builder
	b.WriteString(time.Unix(0, e.TimeNs).UTC().Format("2006-01-02T15:04:05.000000Z"))
	b.WriteByte(' ')
	lv := strings.ToUpper(e.Level)
	b.WriteString(lv)
	for i := len(lv); i < 5; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte(' ')
	if e.Component != "" {
		b.WriteString(e.Component)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(fieldText(f.Value))
	}
	b.WriteByte('\n')
	return b.String()
}

// fieldText renders one field value for the text sink, quoting strings
// that would be ambiguous in key=value form.
func fieldText(v any) string {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	if s == "" {
		return `""`
	}
	return s
}

// LintBoundedJSON validates a generic JSON diagnostic document (the
// /statusz endpoint): it must parse, be a JSON object, and every array
// anywhere inside it must hold at most maxArray elements — the
// "bounded" guarantee that a scrape can never be asked to swallow an
// unbounded dump.
func LintBoundedJSON(data []byte, maxArray int) error {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("malformed JSON: %v", err)
	}
	if _, ok := doc.(map[string]any); !ok {
		return fmt.Errorf("top-level value is %T, want object", doc)
	}
	return checkBounded(doc, maxArray, 0)
}

func checkBounded(v any, maxArray, depth int) error {
	if depth > 64 {
		return fmt.Errorf("nesting deeper than 64 levels")
	}
	switch x := v.(type) {
	case []any:
		if len(x) > maxArray {
			return fmt.Errorf("array of %d elements exceeds bound %d", len(x), maxArray)
		}
		for _, el := range x {
			if err := checkBounded(el, maxArray, depth+1); err != nil {
				return err
			}
		}
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := checkBounded(x[k], maxArray, depth+1); err != nil {
				return fmt.Errorf("%s: %w", k, err)
			}
		}
	}
	return nil
}
