package obs

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestPrometheusExpositionGolden pins the exact exposition output for
// a fixed registry: family ordering, label rendering, cumulative
// histogram buckets, and the _sum/_count trailers.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("gvfs_calls_total", "Total calls handled.").Add(42)
	r.Gauge("gvfs_dirty_frames", "Dirty cache frames.").Set(3)
	cv := r.CounterVec("gvfs_reads_total", "Reads by outcome.", "outcome")
	cv.With("hit").Add(7)
	cv.With("miss").Add(2)
	hv := r.HistogramVec("gvfs_rpc_duration_seconds", "RPC latency by procedure.",
		[]float64{0.001, 0.01}, "proc")
	h := hv.With("READ")
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)

	const want = `# HELP gvfs_calls_total Total calls handled.
# TYPE gvfs_calls_total counter
gvfs_calls_total 42
# HELP gvfs_dirty_frames Dirty cache frames.
# TYPE gvfs_dirty_frames gauge
gvfs_dirty_frames 3
# HELP gvfs_reads_total Reads by outcome.
# TYPE gvfs_reads_total counter
gvfs_reads_total{outcome="hit"} 7
gvfs_reads_total{outcome="miss"} 2
# HELP gvfs_rpc_duration_seconds RPC latency by procedure.
# TYPE gvfs_rpc_duration_seconds histogram
gvfs_rpc_duration_seconds_bucket{proc="READ",le="0.001"} 2
gvfs_rpc_duration_seconds_bucket{proc="READ",le="0.01"} 3
gvfs_rpc_duration_seconds_bucket{proc="READ",le="+Inf"} 4
gvfs_rpc_duration_seconds_sum{proc="READ"} 0.056
gvfs_rpc_duration_seconds_count{proc="READ"} 4
`
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Errorf("golden output fails Lint: %v", err)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	bad := []struct{ name, in string }{
		{"no type", "orphan_total 3\n"},
		{"bad value", "# TYPE x counter\nx notanumber\n"},
		{"bad name", "# TYPE 9x counter\n9x 1\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{proc=\"READ\"} 1\n"},
		{"empty", ""},
		{"unknown type", "# TYPE x widget\nx 1\n"},
	}
	for _, tc := range bad {
		if err := Lint([]byte(tc.in)); err == nil {
			t.Errorf("%s: Lint accepted malformed input %q", tc.name, tc.in)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\"} 1\n"
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("Lint rejected valid input: %v", err)
	}
}

// TestMuxEndpoints drives the bundled HTTP endpoint: /metrics must
// pass the linter, /traces must serve the ring as JSON, and
// /debug/vars must answer.
func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("gvfs_up_total", "up").Inc()
	tr := NewTracer(8)
	act := tr.Start(tr.NewID(), 0, "READ")
	act.Span(LayerBlockCache, "hit", time.Now())
	act.Finish()

	srv := httptest.NewServer(NewMux(r, tr))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if err := Lint([]byte(metrics)); err != nil {
		t.Errorf("/metrics failed lint: %v\n%s", err, metrics)
	}
	traces := get("/traces")
	if !strings.Contains(traces, `"block_cache"`) || !strings.Contains(traces, `"proc": "READ"`) {
		t.Errorf("/traces missing recorded trace: %s", traces)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Errorf("/debug/vars missing memstats")
	}
}
