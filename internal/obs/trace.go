package obs

// Lightweight request tracing. A trace context (64-bit ID + hop count)
// is allocated at the first proxy a call reaches and propagated
// upstream hop to hop — the wire encoding lives in internal/sunrpc as
// a verifier-field header extension; this file only knows IDs, hops
// and spans. Every participating proxy records its own view of the
// call (one Trace with per-layer Spans) into its bounded ring, so
// stitching the rings of a chain by trace ID reconstructs where each
// RPC spent its time: page cache, block cache hit/miss, zero filter,
// file cache, or the upstream round trip.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span layer names recorded by the session and proxy layers.
const (
	LayerPageCache  = "page_cache"
	LayerBlockCache = "block_cache"
	LayerZeroFilter = "zero_filter"
	LayerFileCache  = "file_cache"
	LayerUpstream   = "upstream_rpc"
)

// Span is one layer's contribution to a traced call.
type Span struct {
	Layer   string `json:"layer"`
	Outcome string `json:"outcome,omitempty"` // e.g. "hit", "miss", "ok", "error"
	StartNs int64  `json:"start_ns"`          // offset from the trace start
	DurNs   int64  `json:"dur_ns"`
}

// Trace is one hop's record of one RPC.
type Trace struct {
	ID    uint64 `json:"id"`
	Hop   uint32 `json:"hop"` // 0 at the hop that allocated the ID
	Proc  string `json:"proc"`
	DurNs int64  `json:"dur_ns"`
	Spans []Span `json:"spans,omitempty"`
}

// Tracer records finished traces into a bounded ring; when full, the
// oldest entries are overwritten. The zero Tracer is not usable;
// a nil *Tracer is safe to call (tracing disabled).
type Tracer struct {
	capacity int
	ids      atomic.Uint64

	mu    sync.Mutex
	ring  []Trace
	next  int
	total uint64
}

// DefaultRing is the trace ring capacity used when none is given.
const DefaultRing = 1024

// NewTracer returns a tracer keeping the last capacity traces
// (DefaultRing when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRing
	}
	t := &Tracer{capacity: capacity}
	// Seed the ID allocator randomly so IDs from unrelated processes
	// (or restarts) don't collide when rings are stitched offline.
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.ids.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	return t
}

// NewID allocates a fresh trace ID. Only the hop that originates a
// trace (hop 0) allocates; later hops reuse the propagated ID.
func (t *Tracer) NewID() uint64 { return t.ids.Add(1) }

// Start begins recording one call. The returned Active is nil-safe:
// all its methods are no-ops on nil, so callers can thread it through
// unconditionally.
func (t *Tracer) Start(id uint64, hop uint32, proc string) *Active {
	if t == nil {
		return nil
	}
	return &Active{t: t, start: time.Now(), trace: Trace{ID: id, Hop: hop, Proc: proc}}
}

// record commits a finished trace to the ring.
func (t *Tracer) record(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
	}
	t.next = (t.next + 1) % t.capacity
	t.total++
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	if len(t.ring) < t.capacity {
		out = append(out, t.ring...)
	} else {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// Total reports how many traces have ever been recorded (including
// ones the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteJSON dumps the ring as a JSON document (the /traces endpoint).
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Total  uint64  `json:"total_recorded"`
		Traces []Trace `json:"traces"`
	}{Total: t.Total(), Traces: t.Traces()}
	if doc.Traces == nil {
		doc.Traces = []Trace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Active is an in-flight trace at one hop. Methods are safe on a nil
// receiver and safe for concurrent span recording.
type Active struct {
	t     *Tracer
	start time.Time

	mu    sync.Mutex
	trace Trace
}

// ID returns the trace ID (0 on nil).
func (a *Active) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.trace.ID
}

// Hop returns this hop's index (0 on nil).
func (a *Active) Hop() uint32 {
	if a == nil {
		return 0
	}
	return a.trace.Hop
}

// Span records one layer visit lasting from start to now.
func (a *Active) Span(layer, outcome string, start time.Time) {
	if a == nil {
		return
	}
	now := time.Now()
	a.mu.Lock()
	a.trace.Spans = append(a.trace.Spans, Span{
		Layer:   layer,
		Outcome: outcome,
		StartNs: start.Sub(a.start).Nanoseconds(),
		DurNs:   now.Sub(start).Nanoseconds(),
	})
	a.mu.Unlock()
}

// Finish stamps the total duration and commits the trace to the ring.
// It returns the committed trace so callers (the flight recorder
// promotion path) can retain the span tree without re-reading the
// ring; on a nil receiver it returns the zero Trace.
func (a *Active) Finish() Trace {
	if a == nil {
		return Trace{}
	}
	a.mu.Lock()
	a.trace.DurNs = time.Since(a.start).Nanoseconds()
	tr := a.trace
	tr.Spans = append([]Span(nil), a.trace.Spans...)
	a.mu.Unlock()
	a.t.record(tr)
	return tr
}
