package obs

// Prometheus text exposition, the linter the CI smoke job uses to
// reject malformed output, and the HTTP endpoint bundling /metrics,
// expvar and pprof.

import (
	"bufio"

	"bytes"
	"expvar"
	"fmt"
	"gvfs/internal/bufpool"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sorted by
// name, samples by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range f.sortedChildren() {
			switch f.kind {
			case KindCounter:
				v := ch.c.Value()
				if ch.cf != nil {
					v = ch.cf()
				}
				fmt.Fprintf(bw, "%s %d\n", sampleName(f.name, f.labels, ch.vals), v)
			case KindGauge:
				v := ch.g.Value()
				if ch.gf != nil {
					v = ch.gf()
				}
				fmt.Fprintf(bw, "%s %s\n", sampleName(f.name, f.labels, ch.vals), formatFloat(v))
			case KindHistogram:
				hv := ch.h.snapshot()
				labels := append(append([]string(nil), f.labels...), "le")
				for _, b := range hv.Buckets {
					vals := append(append([]string(nil), ch.vals...), formatLE(b.LE))
					fmt.Fprintf(bw, "%s %d", sampleName(f.name+"_bucket", labels, vals), b.Count)
					if b.Exemplar != nil {
						// OpenMetrics-style exemplar: links this bucket to
						// one traced call retained at /flightrec.
						fmt.Fprintf(bw, " # {trace_id=\"%s\"} %s",
							b.Exemplar.TraceIDHex(), formatFloat(b.Exemplar.Value))
					}
					bw.WriteByte('\n')
				}
				fmt.Fprintf(bw, "%s %s\n", sampleName(f.name+"_sum", f.labels, ch.vals), formatFloat(hv.Sum))
				fmt.Fprintf(bw, "%s %d\n", sampleName(f.name+"_count", f.labels, ch.vals), hv.Count)
			}
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatFloat(v)
}

// Lint checks Prometheus text exposition output for structural
// validity: every sample parses, belongs to a TYPE-declared family of
// a known type, and histogram series use the _bucket/_sum/_count
// naming with an le label on buckets. It is deliberately strict enough
// to catch the failure modes a hand-rolled encoder can produce.
func Lint(data []byte) error {
	types := make(map[string]string)
	var samples int
	sc := bufio.NewScanner(bytes.NewReader(data))
	scanBuf := bufpool.Get(1 << 20)
	defer bufpool.Put(scanBuf)
	sc.Buffer(scanBuf, 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE without a type: %q", lineNo, line)
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = typ
			}
			continue
		}
		name, labels, _, exemplar, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
		if exemplar != "" {
			if !strings.HasSuffix(name, "_bucket") {
				return fmt.Errorf("line %d: exemplar on non-bucket sample %q", lineNo, name)
			}
			if err := lintExemplar(exemplar); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		fam, suffix := name, ""
		if typ, ok := types[name]; !ok || typ == "histogram" {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, s) && types[strings.TrimSuffix(name, s)] == "histogram" {
					fam, suffix = strings.TrimSuffix(name, s), s
					break
				}
			}
		}
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if typ == "histogram" {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram sample %q must end in _bucket/_sum/_count", lineNo, name)
			}
			if suffix == "_bucket" && !strings.Contains(labels, `le="`) {
				return fmt.Errorf("line %d: histogram bucket %q lacks an le label", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition output")
	}
	return nil
}

// lintExemplar validates the `{trace_id="..."} value` suffix after a
// bucket sample's ` # ` separator.
func lintExemplar(ex string) error {
	const pre = `{trace_id="`
	if !strings.HasPrefix(ex, pre) {
		return fmt.Errorf("malformed exemplar %q", ex)
	}
	rest := ex[len(pre):]
	end := strings.Index(rest, `"}`)
	if end < 0 {
		return fmt.Errorf("malformed exemplar %q", ex)
	}
	id := rest[:end]
	if len(id) != 16 {
		return fmt.Errorf("exemplar trace_id %q is not 16 hex digits", id)
	}
	if _, err := strconv.ParseUint(id, 16, 64); err != nil {
		return fmt.Errorf("exemplar trace_id %q is not hex: %v", id, err)
	}
	val := strings.TrimSpace(rest[end+2:])
	if _, err := strconv.ParseFloat(val, 64); err != nil {
		return fmt.Errorf("exemplar value %q: %v", val, err)
	}
	return nil
}

// parseSample splits `name{labels} value [# exemplar]` and validates
// the pieces.
func parseSample(line string) (name, labels string, value float64, exemplar string, err error) {
	rest := line
	if i := strings.Index(rest, " # "); i >= 0 {
		exemplar = strings.TrimSpace(rest[i+3:])
		rest = strings.TrimSpace(rest[:i])
	}
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, "", fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !validMetricName(name) {
		return "", "", 0, "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", "", 0, "", fmt.Errorf("sample %q has no value", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, "", fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	return name, labels, value, exemplar, nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Handler serves the registry at /metrics content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, and several registries (tests, multi-node
// benches) may each start an endpoint.
var expvarOnce sync.Once

// Endpoint bundles every diagnostic surface one daemon exposes. All
// fields are optional; absent ones serve empty documents so scrapers
// and dashboards can treat the URL set as uniform across a chain.
type Endpoint struct {
	Registry *Registry
	Tracer   *Tracer
	Log      *LogRing
	Flight   *FlightRecorder
	// Statusz, when set, renders the daemon-specific /statusz JSON
	// document (the proxy's accounting tables).
	Statusz func(w io.Writer) error
	// Cachez, when set, renders the cache-analytics JSON document
	// (miss-ratio curves, working sets, what-if predictions).
	Cachez func(w io.Writer) error
}

// Mux builds the HTTP handler set:
//
//	/metrics       Prometheus text exposition (with exemplars)
//	/debug/vars    expvar (Go runtime memstats + gvfs snapshot)
//	/debug/pprof/  the standard pprof handlers
//	/traces        JSON dump of the trace ring
//	/logz          JSON dump of the structured log ring
//	/flightrec     JSON dump of the flight recorder
//	/statusz       daemon accounting document (when Statusz set)
//	/cachez        cache-analytics document (when Cachez set)
func (e Endpoint) Mux() *http.ServeMux {
	reg := e.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	expvarOnce.Do(func() {
		expvar.Publish("gvfs", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	jsonHandler := func(write func(io.Writer) error) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			write(w)
		}
	}
	mux.HandleFunc("/traces", jsonHandler(e.Tracer.WriteJSON))
	mux.HandleFunc("/logz", jsonHandler(e.Log.WriteJSON))
	mux.HandleFunc("/flightrec", jsonHandler(e.Flight.WriteJSON))
	statusz := e.Statusz
	if statusz == nil {
		statusz = func(w io.Writer) error {
			_, err := io.WriteString(w, "{}\n")
			return err
		}
	}
	mux.HandleFunc("/statusz", jsonHandler(statusz))
	cachez := e.Cachez
	if cachez == nil {
		cachez = func(w io.Writer) error {
			_, err := io.WriteString(w, "{}\n")
			return err
		}
	}
	mux.HandleFunc("/cachez", jsonHandler(cachez))
	return mux
}

// ListenAndServe starts the endpoint on addr and returns the listener
// (close it to stop). Errors from the HTTP server after startup are
// dropped: diagnostics must never take the data path down.
func (e Endpoint) ListenAndServe(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(l, e.Mux())
	return l, nil
}

// NewMux is the pre-Endpoint form, kept for callers that only have a
// registry and tracer.
func NewMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	return Endpoint{Registry: reg, Tracer: tracer}.Mux()
}

// Serve starts a registry+tracer endpoint on addr; see
// Endpoint.ListenAndServe.
func Serve(addr string, reg *Registry, tracer *Tracer) (net.Listener, error) {
	return Endpoint{Registry: reg, Tracer: tracer}.ListenAndServe(addr)
}

// ParseText parses Prometheus text exposition output into a flat
// sample map keyed by `name` or `name{labels}`. Consumers that poll
// /metrics (cmd/gvfstop, benches) share this instead of re-scraping by
// hand.
func ParseText(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(data))
	scanBuf := bufpool.Get(1 << 20)
	defer bufpool.Put(scanBuf)
	sc.Buffer(scanBuf, 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, _, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		out[key] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ExtractExemplarTraceIDs returns every exemplar trace ID (fixed-width
// hex) present in Prometheus text exposition output, deduplicated, in
// first-seen order. The flightrec bench uses this to prove each
// exposed exemplar resolves at /flightrec.
func ExtractExemplarTraceIDs(data []byte) []string {
	var out []string
	seen := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(data))
	scanBuf := bufpool.Get(1 << 20)
	defer bufpool.Put(scanBuf)
	sc.Buffer(scanBuf, 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		_, _, _, exemplar, err := parseSample(line)
		if err != nil || exemplar == "" {
			continue
		}
		const pre = `{trace_id="`
		rest := strings.TrimPrefix(exemplar, pre)
		if rest == exemplar {
			continue
		}
		end := strings.Index(rest, `"`)
		if end < 0 {
			continue
		}
		id := rest[:end]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
