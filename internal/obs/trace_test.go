package obs

import (
	"testing"
	"time"
)

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		a := tr.Start(uint64(i), 0, "READ")
		a.Finish()
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Oldest-first: the ring retained IDs 6..9.
	for i, trace := range got {
		if want := uint64(6 + i); trace.ID != want {
			t.Errorf("trace[%d].ID = %d, want %d", i, trace.ID, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

func TestTracerSpansAndNilSafety(t *testing.T) {
	tr := NewTracer(0) // default capacity
	start := time.Now()
	a := tr.Start(tr.NewID(), 2, "WRITE")
	a.Span(LayerBlockCache, "miss", start)
	a.Span(LayerUpstream, "ok", start)
	a.Finish()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	trace := traces[0]
	if trace.Hop != 2 || trace.Proc != "WRITE" {
		t.Errorf("trace = %+v, want hop 2 proc WRITE", trace)
	}
	if len(trace.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(trace.Spans))
	}
	if trace.Spans[0].Layer != LayerBlockCache || trace.Spans[0].Outcome != "miss" {
		t.Errorf("span[0] = %+v", trace.Spans[0])
	}
	if trace.Spans[1].DurNs < 0 || trace.DurNs <= 0 {
		t.Errorf("non-positive durations: span %d trace %d", trace.Spans[1].DurNs, trace.DurNs)
	}

	// A nil tracer and its nil Active must be inert.
	var none *Tracer
	na := none.Start(1, 0, "READ")
	if na != nil {
		t.Fatal("nil tracer must return a nil Active")
	}
	na.Span(LayerUpstream, "ok", time.Now())
	na.Finish()
	if na.ID() != 0 || na.Hop() != 0 {
		t.Error("nil Active must report zero ID/hop")
	}
	if none.Traces() != nil || none.Total() != 0 {
		t.Error("nil tracer must report no traces")
	}
}

func TestTracerDistinctIDs(t *testing.T) {
	tr := NewTracer(4)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := tr.NewID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
}
