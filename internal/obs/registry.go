// Package obs is the unified observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket latency histograms)
// with Prometheus-text exposition, a structured Snapshot API replacing
// the stats surfaces that used to be scattered across the proxy, the
// caches and the RPC client, and a bounded request-tracing ring (see
// trace.go) that follows one RPC through a cascaded proxy chain.
//
// The package imports nothing from the rest of the repository, so any
// layer — sunrpc transport, block cache, proxy, session — can emit
// into a Registry without creating import cycles. Hot-path instruments
// (Counter, Histogram) are single atomic operations, the same cost as
// the ad-hoc atomic counter blocks they replace.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var inf = math.Inf(1)

// Kind distinguishes the metric families a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LatencyBuckets are the default histogram bounds (seconds) for RPC
// latencies: they resolve local cache hits (tens of microseconds)
// through WAN round trips (tens of milliseconds) up to breaker-open
// stalls.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Exemplar links a histogram bucket to one concrete traced call that
// landed in it — the OpenMetrics exemplar concept, reduced to the one
// label this system needs: a trace ID resolvable at /flightrec.
type Exemplar struct {
	TraceID uint64  `json:"-"`
	Value   float64 `json:"value"`   // the observation, in seconds
	WallNs  int64   `json:"wall_ns"` // unix nanoseconds at capture
}

// TraceIDHex is the rendered form used in exposition and JSON.
func (e Exemplar) TraceIDHex() string { return TraceIDString(e.TraceID) }

// MarshalJSON renders the trace ID in the same fixed-width hex used in
// /metrics exposition and /flightrec, so consumers compare strings.
func (e Exemplar) MarshalJSON() ([]byte, error) {
	type wire struct {
		TraceID string  `json:"trace_id"`
		Value   float64 `json:"value"`
		WallNs  int64   `json:"wall_ns"`
	}
	return json.Marshal(wire{TraceID: e.TraceIDHex(), Value: e.Value, WallNs: e.WallNs})
}

// Histogram counts observations into fixed buckets (upper bounds in
// seconds, ascending, with an implicit +Inf overflow bucket) and keeps
// the running sum. Observe is two atomic adds: safe on the RPC path.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumNanos  atomic.Int64
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, parallel to counts
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// SetExemplar attaches an exemplar to the bucket that an observation of
// d falls into. Callers set exemplars only for calls they also promoted
// to the flight recorder, which is what guarantees every exemplar trace
// ID exposed at /metrics resolves at /flightrec. Last writer per bucket
// wins — an exemplar is a pointer to recent evidence, not a sample set.
func (h *Histogram) SetExemplar(d time.Duration, traceID uint64) {
	if h.exemplars == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.exemplars[i].Store(&Exemplar{
		TraceID: traceID,
		Value:   d.Seconds(),
		WallNs:  time.Now().UnixNano(),
	})
}

// snapshot returns cumulative bucket counts, the total count and the
// sum in seconds.
func (h *Histogram) snapshot() HistogramValue {
	v := HistogramValue{Buckets: make([]Bucket, len(h.bounds)+1)}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := inf
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		v.Buckets[i] = Bucket{LE: le, Count: cum, Exemplar: h.exemplars[i].Load()}
	}
	v.Count = cum
	v.Sum = float64(h.sumNanos.Load()) / 1e9
	return v
}

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to LE seconds.
type Bucket struct {
	LE       float64   `json:"le"`
	Count    uint64    `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramValue is a point-in-time histogram reading.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum_seconds"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns the average observation in seconds (0 when empty).
func (v HistogramValue) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// Snapshot is the registry's unified structured reading — the single
// stats surface that replaces the disjoint Proxy.Stats / cache stripe
// stats / pagecache stats / transport counters. Keys are the rendered
// sample names, e.g. `gvfs_proxy_calls_total` or
// `gvfs_proxy_rpc_duration_seconds{proc="READ"}`.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Counter reads a counter by its rendered sample name, returning 0
// when the instrument is absent (e.g. an optional bridge that was
// never registered). This is the lookup callers of the retired
// proxy.Stats projection migrate to.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge reads a gauge by its rendered sample name (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// child is one labeled instrument within a family.
type child struct {
	vals []string
	c    *Counter
	g    *Gauge
	h    *Histogram
	cf   func() uint64
	gf   func() float64
}

type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*child
}

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first use.
// Registration is idempotent: asking again for an existing name returns
// the same family, so several components can share instruments in one
// registry. A kind or label-arity mismatch is a programming error.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v(%d labels), was %v(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

const childKeySep = "\x1f"

func (f *family) child(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, childKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{vals: append([]string(nil), vals...)}
		switch f.kind {
		case KindCounter:
			ch.c = &Counter{}
		case KindGauge:
			ch.g = &Gauge{}
		case KindHistogram:
			ch.h = &Histogram{
				bounds:    f.buckets,
				counts:    make([]atomic.Uint64, len(f.buckets)+1),
				exemplars: make([]atomic.Pointer[Exemplar], len(f.buckets)+1),
			}
		}
		f.children[key] = ch
	}
	return ch
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).child(nil).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).child(nil).g
}

// CounterFunc registers a counter whose value is read through fn at
// collection time. It bridges subsystems that keep their own internal
// counters (lock-striped cache stats, transport atomics) into the
// registry without restructuring their fast paths. Re-registering the
// same name replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	ch := r.family(name, help, KindCounter, nil, nil).child(nil)
	ch.cf = fn
}

// GaugeFunc registers a gauge read through fn at collection time.
// Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	ch := r.family(name, help, KindGauge, nil, nil).child(nil)
	ch.gf = fn
}

// Histogram registers (or finds) an unlabeled histogram. Nil or empty
// buckets default to LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return r.family(name, help, KindHistogram, nil, buckets).child(nil).h
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ fam *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Cache the result on hot paths.
func (v *CounterVec) With(vals ...string) *Counter { return v.fam.child(vals).c }

// WithFunc registers a callback-backed counter for the given label
// values, read through fn at collection time. Re-registering the same
// label values replaces the callback.
func (v *CounterVec) WithFunc(fn func() uint64, vals ...string) {
	v.fam.child(vals).cf = fn
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values, creating it on
// first use. Cache the result on hot paths.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.fam.child(vals).g }

// WithFunc registers a callback-backed gauge for the given label
// values, read through fn at collection time. Re-registering the same
// label values replaces the callback.
func (v *GaugeVec) WithFunc(fn func() float64, vals ...string) {
	v.fam.child(vals).gf = fn
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ fam *family }

// HistogramVec registers (or finds) a labeled histogram family. Nil or
// empty buckets default to LatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return &HistogramVec{fam: r.family(name, help, KindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values, creating it
// on first use. Cache the result on hot paths.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.fam.child(vals).h }

// sortedFamilies returns the families in name order for deterministic
// rendering.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns a family's children in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		kids = append(kids, ch)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		return strings.Join(kids[i].vals, childKeySep) < strings.Join(kids[j].vals, childKeySep)
	})
	return kids
}

// sampleName renders `name` or `name{l1="v1",...}`.
func sampleName(name string, labels, vals []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Snapshot reads every instrument in the registry into one structured
// value. Func-backed instruments are invoked at this point.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramValue),
	}
	for _, f := range r.sortedFamilies() {
		for _, ch := range f.sortedChildren() {
			key := sampleName(f.name, f.labels, ch.vals)
			switch f.kind {
			case KindCounter:
				if ch.cf != nil {
					s.Counters[key] = ch.cf()
				} else {
					s.Counters[key] = ch.c.Value()
				}
			case KindGauge:
				if ch.gf != nil {
					s.Gauges[key] = ch.gf()
				} else {
					s.Gauges[key] = ch.g.Value()
				}
			case KindHistogram:
				s.Histograms[key] = ch.h.snapshot()
			}
		}
	}
	return s
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
