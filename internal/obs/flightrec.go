package obs

// Flight recorder: the retained ring of "interesting" calls. The
// regular trace ring (trace.go) keeps the last N traces regardless of
// what they were, so by the time an operator asks "why was that call
// slow", the evidence has usually been overwritten by thousands of
// healthy calls. The flight recorder solves that by promoting calls
// that crossed a per-procedure latency threshold — or ended in error
// or while the circuit breaker was open — into a separate ring that
// only interesting calls can displace. Each promoted call keeps its
// full per-layer span tree, and the promoting component links the
// matching histogram bucket to it with an exemplar (see registry.go),
// so a slow bucket on a dashboard resolves to a concrete recording at
// /flightrec.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Promotion reasons recorded with each flight recording.
const (
	ReasonSlow        = "slow"
	ReasonError       = "error"
	ReasonRetry       = "retry"
	ReasonBreakerOpen = "breaker_open"
)

// DefaultFlightRing is the recording capacity used when none is given.
const DefaultFlightRing = 256

// DefaultSlowThreshold is the promotion latency bound used when none
// is given.
const DefaultSlowThreshold = 100 * time.Millisecond

// Recording is one promoted call.
type Recording struct {
	Trace       Trace  `json:"trace"`
	Reason      string `json:"reason"`
	WallNs      int64  `json:"wall_ns"` // unix nanoseconds at capture
	ThresholdNs int64  `json:"threshold_ns,omitempty"`
}

// FlightRecorder retains promoted calls in a bounded ring. A nil
// *FlightRecorder is safe to use (recording disabled).
type FlightRecorder struct {
	capacity int
	def      time.Duration

	mu      sync.Mutex
	perProc map[string]time.Duration
	ring    []Recording
	next    int
	total   uint64
}

// NewFlightRecorder returns a recorder keeping the last capacity
// recordings (DefaultFlightRing when capacity <= 0) and promoting
// calls slower than slow (DefaultSlowThreshold when slow <= 0).
func NewFlightRecorder(capacity int, slow time.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	return &FlightRecorder{capacity: capacity, def: slow}
}

// SetProcThreshold overrides the slow threshold for one procedure
// label (e.g. "READ"), so cheap procedures can be held to a tighter
// bound than ones that legitimately cross a WAN.
func (f *FlightRecorder) SetProcThreshold(proc string, d time.Duration) {
	if f == nil || d <= 0 {
		return
	}
	f.mu.Lock()
	if f.perProc == nil {
		f.perProc = make(map[string]time.Duration)
	}
	f.perProc[proc] = d
	f.mu.Unlock()
}

// Threshold reports the promotion bound for proc (0 on nil).
func (f *FlightRecorder) Threshold(proc string) time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if d, ok := f.perProc[proc]; ok {
		return d
	}
	return f.def
}

// ShouldRecord reports whether a call of proc lasting d qualifies as
// slow. Error/retry/breaker promotions bypass this check.
func (f *FlightRecorder) ShouldRecord(proc string, d time.Duration) bool {
	if f == nil {
		return false
	}
	return d >= f.Threshold(proc)
}

// Record commits one promoted call.
func (f *FlightRecorder) Record(tr Trace, reason string) {
	if f == nil {
		return
	}
	rec := Recording{
		Trace:  tr,
		Reason: reason,
		WallNs: time.Now().UnixNano(),
	}
	if reason == ReasonSlow {
		rec.ThresholdNs = f.Threshold(tr.Proc).Nanoseconds()
	}
	f.mu.Lock()
	if len(f.ring) < f.capacity {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[f.next] = rec
	}
	f.next = (f.next + 1) % f.capacity
	f.total++
	f.mu.Unlock()
}

// Recordings returns the retained recordings, oldest first.
func (f *FlightRecorder) Recordings() []Recording {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Recording, 0, len(f.ring))
	if len(f.ring) < f.capacity {
		out = append(out, f.ring...)
	} else {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	}
	return out
}

// Total reports how many calls were ever promoted (including ones the
// ring has since overwritten).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Resolve finds the most recent recording with the given trace ID —
// the lookup an exemplar's trace_id label points at.
func (f *FlightRecorder) Resolve(id uint64) (Recording, bool) {
	if f == nil {
		return Recording{}, false
	}
	recs := f.Recordings()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Trace.ID == id {
			return recs[i], true
		}
	}
	return Recording{}, false
}

// flightDoc is the /flightrec JSON document.
type flightDoc struct {
	Total      uint64      `json:"total_recorded"`
	Capacity   int         `json:"capacity"`
	Recordings []Recording `json:"recordings"`
}

// WriteJSON dumps the ring as a JSON document (the /flightrec
// endpoint). Safe on a nil receiver (empty document).
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := flightDoc{Total: f.Total(), Recordings: f.Recordings()}
	if f != nil {
		doc.Capacity = f.capacity
	}
	if doc.Recordings == nil {
		doc.Recordings = []Recording{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// TraceIDString renders a trace ID the way exemplars and /flightrec
// consumers compare them: fixed-width hex.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }
