package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderThresholds(t *testing.T) {
	f := NewFlightRecorder(8, 50*time.Millisecond)
	if !f.ShouldRecord("READ", 60*time.Millisecond) {
		t.Error("60ms over a 50ms default should record")
	}
	if f.ShouldRecord("READ", 10*time.Millisecond) {
		t.Error("10ms under a 50ms default should not record")
	}
	f.SetProcThreshold("GETATTR", 5*time.Millisecond)
	if !f.ShouldRecord("GETATTR", 10*time.Millisecond) {
		t.Error("per-proc override not applied")
	}
	if !f.ShouldRecord("READ", 60*time.Millisecond) {
		t.Error("override leaked onto other procs")
	}
}

func TestFlightRecorderRingAndResolve(t *testing.T) {
	f := NewFlightRecorder(2, time.Second)
	for i := uint64(1); i <= 3; i++ {
		f.Record(Trace{ID: i, Proc: "READ", DurNs: int64(i)}, ReasonSlow)
	}
	recs := f.Recordings()
	if len(recs) != 2 {
		t.Fatalf("retained %d, want 2", len(recs))
	}
	if recs[0].Trace.ID != 2 || recs[1].Trace.ID != 3 {
		t.Fatalf("wrong retained IDs: %+v", recs)
	}
	if f.Total() != 3 {
		t.Errorf("Total = %d, want 3", f.Total())
	}
	if _, ok := f.Resolve(3); !ok {
		t.Error("retained trace not resolvable")
	}
	if _, ok := f.Resolve(1); ok {
		t.Error("overwritten trace should not resolve")
	}
	if rec, _ := f.Resolve(2); rec.ThresholdNs != time.Second.Nanoseconds() {
		t.Errorf("slow recording threshold = %d, want %d", rec.ThresholdNs, time.Second.Nanoseconds())
	}
}

func TestFlightRecorderJSON(t *testing.T) {
	f := NewFlightRecorder(4, time.Second)
	f.Record(Trace{ID: 0xabc, Proc: "WRITE", Spans: []Span{{Layer: LayerUpstream, Outcome: "ok"}}}, ReasonError)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintBoundedJSON(buf.Bytes(), 4); err != nil {
		t.Fatalf("flightrec JSON not bounded-valid: %v\n%s", err, buf.String())
	}
	var doc struct {
		Total      uint64 `json:"total_recorded"`
		Recordings []struct {
			Reason string `json:"reason"`
			Trace  Trace  `json:"trace"`
		} `json:"recordings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 1 || len(doc.Recordings) != 1 {
		t.Fatalf("bad doc: %+v", doc)
	}
	if doc.Recordings[0].Reason != ReasonError || len(doc.Recordings[0].Trace.Spans) != 1 {
		t.Fatalf("span tree not preserved: %+v", doc.Recordings[0])
	}
}

func TestNilFlightRecorderSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(Trace{ID: 1}, ReasonSlow)
	f.SetProcThreshold("READ", time.Second)
	if f.ShouldRecord("READ", time.Hour) {
		t.Error("nil recorder should never record")
	}
	if f.Recordings() != nil || f.Total() != 0 {
		t.Error("nil recorder not inert")
	}
	if _, ok := f.Resolve(1); ok {
		t.Error("nil recorder resolved something")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("test_rpc_seconds", "help", nil, "proc").With("READ")
	h.Observe(30 * time.Millisecond)
	h.SetExemplar(30*time.Millisecond, 0xdeadbeef)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `# {trace_id="00000000deadbeef"} 0.03`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, out)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("Lint rejected exemplar output: %v", err)
	}
	ids := ExtractExemplarTraceIDs(buf.Bytes())
	if len(ids) != 1 || ids[0] != "00000000deadbeef" {
		t.Fatalf("ExtractExemplarTraceIDs = %v", ids)
	}
	parsed, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed[`test_rpc_seconds_count{proc="READ"}`] != 1 {
		t.Fatalf("ParseText lost the count sample: %v", parsed)
	}
	// Exemplar must land in the bucket the observation falls into.
	if parsed[`test_rpc_seconds_bucket{proc="READ",le="0.05"}`] != 1 {
		t.Fatalf("bucket parse wrong: %v", parsed)
	}
}

func TestLintRejectsBadExemplars(t *testing.T) {
	head := "# HELP m h\n# TYPE m histogram\n"
	cases := map[string]string{
		"on sum":     head + `m_bucket{le="+Inf"} 1` + "\n" + `m_sum 0.1 # {trace_id="0000000000000001"} 0.1` + "\nm_count 1\n",
		"short id":   head + `m_bucket{le="+Inf"} 1 # {trace_id="abc"} 0.1` + "\nm_sum 0.1\nm_count 1\n",
		"not hex":    head + `m_bucket{le="+Inf"} 1 # {trace_id="zzzzzzzzzzzzzzzz"} 0.1` + "\nm_sum 0.1\nm_count 1\n",
		"bad value":  head + `m_bucket{le="+Inf"} 1 # {trace_id="0000000000000001"} x` + "\nm_sum 0.1\nm_count 1\n",
		"no trailer": head + `m_bucket{le="+Inf"} 1 # nonsense` + "\nm_sum 0.1\nm_count 1\n",
	}
	for name, in := range cases {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: Lint accepted:\n%s", name, in)
		}
	}
}

func TestActiveFinishReturnsTrace(t *testing.T) {
	tr := NewTracer(4)
	act := tr.Start(7, 1, "READ")
	act.Span(LayerBlockCache, "miss", time.Now())
	got := act.Finish()
	if got.ID != 7 || got.Hop != 1 || got.Proc != "READ" || len(got.Spans) != 1 {
		t.Fatalf("Finish returned %+v", got)
	}
	var nilAct *Active
	if z := nilAct.Finish(); z.ID != 0 {
		t.Fatalf("nil Finish returned %+v", z)
	}
}

func TestTraceIDString(t *testing.T) {
	if got := TraceIDString(0xab); got != "00000000000000ab" {
		t.Fatalf("TraceIDString = %q", got)
	}
}
