package proxy_test

// Trace-propagation suite: a session mounted through a two-level proxy
// chain (client proxy -> image-server proxy) over simnet, with tracing
// enabled at both hops. The invariant under test is the header
// extension's contract: every RPC the client proxy forwards upstream
// appears in the server proxy's ring under the SAME trace ID with the
// hop count incremented, and per-layer spans land at the right hop.

import (
	"os"
	"testing"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/obs"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

func TestTracePropagationAcrossChain(t *testing.T) {
	fs := memfs.New()
	content := chaosPattern(32*8192, 3)
	if err := fs.WriteFile("/vm.img", content); err != nil {
		t.Fatal(err)
	}

	link := simnet.NewLink(simnet.Profile{Name: "trace-lan", RTT: time.Millisecond})
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{
		Link:      link,
		TraceRing: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	cacheDir, err := os.MkdirTemp(t.TempDir(), "blockcache")
	if err != nil {
		t.Fatal(err)
	}
	client, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamLink: link,
		UpstreamKey:  server.Key,
		CacheConfig: &cache.Config{
			Dir: cacheDir, Banks: 4, SetsPerBank: 8, Assoc: 4,
			BlockSize: 8192, Policy: cache.WriteBack,
		},
		TraceRing: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Tracer == nil || server.Proxy.Tracer == nil {
		t.Fatal("TraceRing > 0 must give both nodes a tracer")
	}

	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:   client.Addr,
		Export: "/",
		Cred:   sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "trace"}.Encode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Cold read: misses go upstream. Second read: block-cache hits
	// stay at hop 0 and must NOT reach the server's ring.
	for i := 0; i < 2; i++ {
		got, err := sess.ReadFile("/vm.img")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(content) {
			t.Fatalf("read %d bytes, want %d", len(got), len(content))
		}
	}

	clientTraces := client.Tracer.Traces()
	serverTraces := server.Proxy.Tracer.Traces()
	if len(clientTraces) == 0 || len(serverTraces) == 0 {
		t.Fatalf("empty rings: client=%d server=%d", len(clientTraces), len(serverTraces))
	}

	// Index the client ring; IDs are allocated at hop 0.
	clientByID := make(map[uint64]obs.Trace, len(clientTraces))
	for _, tr := range clientTraces {
		if tr.Hop != 0 {
			t.Errorf("client trace %d at hop %d, want 0", tr.ID, tr.Hop)
		}
		clientByID[tr.ID] = tr
	}

	// Every server-side READ trace must continue a client trace at
	// hop 1 — the propagated context, not a fresh allocation.
	matched := 0
	for _, tr := range serverTraces {
		down, ok := clientByID[tr.ID]
		if !ok {
			continue
		}
		matched++
		if tr.Hop != down.Hop+1 {
			t.Errorf("trace %d: server hop %d, want %d", tr.ID, tr.Hop, down.Hop+1)
		}
		if tr.Proc != down.Proc {
			t.Errorf("trace %d: proc %q at hop 1 vs %q at hop 0", tr.ID, tr.Proc, down.Proc)
		}
	}
	if matched == 0 {
		t.Fatal("no trace ID was propagated from client proxy to server proxy")
	}

	// The client ring must show both outcomes of the block-cache
	// layer (cold misses, then warm hits), and upstream spans only on
	// traces that actually went upstream.
	outcomes := map[string]int{}
	for _, tr := range clientTraces {
		for _, sp := range tr.Spans {
			if sp.Layer == obs.LayerBlockCache {
				outcomes[sp.Outcome]++
			}
			if sp.Layer == obs.LayerUpstream && tr.Proc == "READ" {
				if _, ok := clientByID[tr.ID]; !ok {
					t.Errorf("upstream span on unknown trace %d", tr.ID)
				}
			}
		}
	}
	if outcomes["miss"] == 0 || outcomes["hit"] == 0 {
		t.Errorf("block-cache outcomes = %v, want both hits and misses", outcomes)
	}

	// Warm READ traces (block-cache hit) must not have gone upstream.
	for _, tr := range clientTraces {
		var hit, upstream bool
		for _, sp := range tr.Spans {
			hit = hit || (sp.Layer == obs.LayerBlockCache && sp.Outcome == "hit")
			upstream = upstream || sp.Layer == obs.LayerUpstream
		}
		if hit && upstream {
			t.Errorf("trace %d: block-cache hit still produced an upstream span", tr.ID)
		}
	}
}
