package proxy_test

// Failure injection: the proxy chain must degrade cleanly when the
// image server disappears — errors, not hangs or data loss.

import (
	"bytes"
	"testing"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/meta"
	"gvfs/internal/stack"
)

func TestUpstreamDeathSurfacesErrors(t *testing.T) {
	fs := memfs.New()
	fs.WriteFile("/f", bytes.Repeat([]byte{1}, 64*1024))
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(), CacheConfig: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}

	// The image server dies mid-session.
	server.Close()

	done := make(chan error, 1)
	go func() {
		_, err := sess.ReadFile("/g") // uncached: must reach upstream
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read of uncached file succeeded with dead upstream")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read hung after upstream death")
	}
}

func TestWriteBackFailurePreservesDirtyData(t *testing.T) {
	fs := memfs.New()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(), CacheConfig: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	payload := bytes.Repeat([]byte{9}, 32*1024)
	if err := sess.WriteFile("/out", payload); err != nil {
		t.Fatal(err)
	}
	dirtyBefore := node.BlockCache.DirtyCount()
	if dirtyBefore == 0 {
		t.Fatal("no dirty blocks absorbed")
	}

	server.Close()
	if err := node.Proxy.WriteBack(); err == nil {
		t.Fatal("WriteBack succeeded against a dead server")
	}
	// The dirty data must still be in the cache — nothing lost.
	if got := node.BlockCache.DirtyCount(); got != dirtyBefore {
		t.Errorf("dirty blocks %d -> %d after failed write-back", dirtyBefore, got)
	}
	// Reads of the absorbed data still succeed locally.
	got, err := sess.ReadFile("/out")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("local read of dirty data after upstream death: %v", err)
	}
}

func TestFileChannelFailureFallsBackToBlocks(t *testing.T) {
	// If the file-channel service is unreachable, reads of a
	// metadata-marked file must still succeed via block-based NFS.
	fs := memfs.New()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	const bs = 8192
	state := bytes.Repeat([]byte{0x42}, 16*bs)
	fs.WriteFile("/vm/mem.vmss", state)
	m := metaForWholeFile(t, state, bs)
	fs.WriteFile("/vm/.gvfsmeta.mem.vmss", m)

	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: bs, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &cfg,
		FileCacheDir: t.TempDir(),
		FileChanAddr: "127.0.0.1:1", // nothing listens here
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.ReadFile("/vm/mem.vmss")
	if err != nil || !bytes.Equal(got, state) {
		t.Fatalf("fallback read failed: %v", err)
	}
	st := node.Proxy.Snapshot()
	if st.Counter("gvfs_proxy_filechan_fetches_total") != 0 {
		t.Error("fetch count nonzero despite unreachable channel")
	}
	if st.Counter("gvfs_proxy_read_misses_total") == 0 {
		t.Error("no block-based reads despite fallback")
	}
}

func metaForWholeFile(t *testing.T, data []byte, bs uint32) []byte {
	t.Helper()
	m := meta.ForWholeFile(data, bs)
	blob, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
