package proxy

// QoS wiring: admission control at RPC dispatch, deadline propagation
// through the trace verifier, and the brownout shed policy.
//
// Admission runs before any handler work: the call is weighed (bytes
// for READ/WRITE, a nominal unit for metadata), queued in its client's
// bounded queue, and scheduled by the qos package's deficit
// round-robin. A call that cannot be admitted is shed with the
// retriable NFS3ERR_JUKEBOX (data procedures) so well-behaved clients
// simply retry, while the aggressive client burns its own budget.
//
// Deadlines arrive as a remaining-budget word in the GVFS trace
// verifier (sunrpc.TraceContext.BudgetMs) or default to
// Config.CallBudget; the remaining budget is re-encoded on every
// upstream hop so the whole chain stops working on a call its
// originator has given up on.

import (
	"context"
	"errors"
	"time"

	"gvfs/internal/nfs3"
	"gvfs/internal/qos"
	"gvfs/internal/sunrpc"
)

// metaCallCost weighs calls that carry no bulk data.
const metaCallCost = 512

// callCost estimates a call's byte weight for fair-share scheduling.
func callCost(c *sunrpc.Call) int {
	if c.Prog != nfs3.Program {
		return metaCallCost
	}
	switch c.Proc {
	case nfs3.ProcRead:
		if args, err := nfs3.DecodeReadArgs(c.Args); err == nil {
			return int(args.Count) + metaCallCost
		}
	case nfs3.ProcWrite:
		// The args carry the data; their length bounds the write size.
		return len(c.Args) + metaCallCost
	}
	return metaCallCost
}

// setDeadline stamps the call with its absolute deadline: the budget
// propagated by the downstream hop when present, else the configured
// default per-call budget.
func (p *Proxy) setDeadline(c *sunrpc.Call, now time.Time) {
	if tc, ok := sunrpc.DecodeTraceVerf(c.Verf); ok && tc.BudgetMs > 0 {
		c.Deadline = now.Add(time.Duration(tc.BudgetMs) * time.Millisecond)
		return
	}
	if p.cfg.CallBudget > 0 {
		c.Deadline = now.Add(p.cfg.CallBudget)
	}
}

// admit runs the call through the QoS scheduler. On success it returns
// the release function (never nil) and ok true. On shed it returns the
// reply to send and ok false.
func (p *Proxy) admit(c *sunrpc.Call) (release func(), res []byte, stat sunrpc.AcceptStat, ok bool) {
	if p.qos == nil {
		return func() {}, nil, 0, true
	}
	release, err := p.qos.Admit(p.clientLabel(c), callCost(c), c.Deadline)
	if err == nil {
		return release, nil, 0, true
	}
	switch {
	case errors.Is(err, qos.ErrQueueFull):
		p.log.Debug("call shed: client queue full", "client", p.clientLabel(c),
			"proc", procLabel(c.Prog, c.Proc))
	case errors.Is(err, context.DeadlineExceeded):
		p.log.Debug("call shed: deadline expired before admission",
			"client", p.clientLabel(c), "proc", procLabel(c.Prog, c.Proc))
	}
	res, stat = shedReply(c)
	return nil, res, stat, false
}

// shedReply builds the reply for a call the proxy refuses to serve
// right now. Data procedures get the retriable NFS3ERR_JUKEBOX —
// "try again shortly" — which NFS clients handle by backing off and
// retrying; anything else gets an RPC-level system error.
func shedReply(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	if c.Prog != nfs3.Program {
		return nil, sunrpc.SystemErr
	}
	switch c.Proc {
	case nfs3.ProcRead:
		return (&nfs3.ReadRes{Status: nfs3.ErrJukebox}).Encode(), sunrpc.Success
	case nfs3.ProcWrite:
		return (&nfs3.WriteRes{Status: nfs3.ErrJukebox}).Encode(), sunrpc.Success
	case nfs3.ProcLookup:
		return (&nfs3.LookupRes{Status: nfs3.ErrJukebox}).Encode(), sunrpc.Success
	case nfs3.ProcGetattr:
		return (&nfs3.GetattrRes{Status: nfs3.ErrJukebox}).Encode(), sunrpc.Success
	}
	return nil, sunrpc.SystemErr
}

// brownout reports whether the proxy should shed optional work.
func (p *Proxy) brownout() bool {
	return p.qos != nil && p.qos.Brownout()
}

// deferMissInBrownout reports whether a block-cache miss should be
// deferred instead of forwarded: in brownout the proxy keeps answering
// cache hits (cheap, local) but pushes miss traffic back onto the
// clients with a retriable error so the upstream path and the
// admission queues can drain.
func (p *Proxy) deferMissInBrownout(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat, bool) {
	if !p.brownout() {
		return nil, 0, false
	}
	p.stats.brownoutShed.Add(1)
	res, stat := shedReply(c)
	return res, stat, true
}

// remainingBudgetMs converts a call deadline back into a verifier
// budget word for the next hop. Returns 0 (no budget) for a zero
// deadline; an expired deadline yields the 1ms floor so the wire never
// carries "no deadline" for a call that has one.
func remainingBudgetMs(deadline time.Time) uint32 {
	if deadline.IsZero() {
		return 0
	}
	rem := time.Until(deadline)
	if rem < time.Millisecond {
		return 1
	}
	ms := rem / time.Millisecond
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// QoSTenants returns the scheduler's per-tenant table (nil when QoS is
// disabled); surfaced in /statusz.
func (p *Proxy) QoSTenants() []qos.TenantStats {
	if p.qos == nil {
		return nil
	}
	return p.qos.Snapshot()
}
