package proxy_test

// Chaos suite: a session mounted through a two-level proxy chain over
// simnet, with faults injected mid-read, mid-write and mid-flush. The
// invariants under test are the robustness contract of the RPC
// substrate and the proxy breaker: no hangs, no lost acknowledged
// writes, bounded error latency, and correct data after recovery.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/qos"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

// chaosPattern builds deterministic, position-dependent content so a
// misplaced or stale block shows up as a comparison failure.
func chaosPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7+13) ^ byte(i>>8) ^ seed
	}
	return b
}

// startChaosChain mounts a session through a two-level chain:
// session -> client proxy (write-back disk cache) -> wan link ->
// server-side proxy -> NFS server over fs. Faults are injected on wan.
func startChaosChain(t *testing.T, fs *memfs.FS, wan *simnet.Link,
	opts stack.ProxyOptions) (*stack.ImageServer, *stack.Node, *gvfs.Session) {
	t.Helper()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: wan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	opts.UpstreamAddr = server.ProxyAddr()
	opts.UpstreamLink = wan
	if opts.CacheConfig == nil {
		cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
			BlockSize: 8192, Policy: cache.WriteBack}
		opts.CacheConfig = &cfg
	}
	// When GVFS_CHAOS_LOG_DIR is set (CI sets it), the client proxy
	// runs a ring-only structured logger plus a flight recorder, and a
	// failing test dumps those surfaces as post-mortem artifacts.
	var logRing *obs.LogRing
	if os.Getenv("GVFS_CHAOS_LOG_DIR") != "" {
		logRing = obs.NewLogRing(512)
		opts.Logger = obs.NewLogger(obs.LoggerConfig{Level: obs.LevelDebug, Ring: logRing})
		if opts.FlightRing == 0 {
			opts.FlightRing = 64
		}
	}
	node, err := stack.StartProxy(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	if logRing != nil {
		dumpChaosDiagnostics(t, logRing, node) // registered after node.Close: dumps before it
	}
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return server, node, sess
}

// dumpChaosDiagnostics registers a cleanup that, if the test failed,
// writes the client proxy's log ring, statusz accounting document and
// flight recordings into $GVFS_CHAOS_LOG_DIR for artifact upload.
func dumpChaosDiagnostics(t *testing.T, ring *obs.LogRing, node *stack.Node) {
	t.Helper()
	dir := os.Getenv("GVFS_CHAOS_LOG_DIR")
	base := strings.ReplaceAll(t.Name(), "/", "_")
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("chaos diagnostics: %v", err)
			return
		}
		dump := func(kind string, write func(io.Writer) error) {
			path := filepath.Join(dir, base+"."+kind+".json")
			f, err := os.Create(path)
			if err != nil {
				t.Logf("chaos diagnostics: %v", err)
				return
			}
			defer f.Close()
			if err := write(f); err != nil {
				t.Logf("chaos diagnostics: %s: %v", kind, err)
				return
			}
			t.Logf("chaos diagnostics: wrote %s", path)
		}
		dump("logz", ring.WriteJSON)
		dump("statusz", node.Proxy.WriteStatusz)
		if node.Flight != nil {
			dump("flightrec", node.Flight.WriteJSON)
		}
	})
}

func TestChaosLossAndFlapWholeFileRead(t *testing.T) {
	fs := memfs.New()
	img := chaosPattern(256*1024, 1)
	fs.WriteFile("/img", img)
	wan := simnet.NewLink(simnet.Local())
	_, node, sess := startChaosChain(t, fs, wan, stack.ProxyOptions{
		UpstreamCallTimeout: 250 * time.Millisecond,
		UpstreamMaxRetries:  8,
	})

	// Seeded 5% message loss on the WAN for the whole transfer, plus
	// one connection kill mid-read.
	wan.SetLoss(0.05, 42)
	type result struct {
		data []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		data, err := sess.ReadFile("/img")
		done <- result{data, err}
	}()
	time.Sleep(100 * time.Millisecond)
	wan.Flap(1, 5*time.Millisecond)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("read under loss+flap: %v", r.err)
		}
		if !bytes.Equal(r.data, img) {
			t.Fatalf("read returned %d bytes, corrupt or truncated (want %d)",
				len(r.data), len(img))
		}
	case <-time.After(60 * time.Second):
		t.Fatal("whole-file read hung under loss + flap")
	}
	if n := node.Proxy.Snapshot().Counter("gvfs_rpc_reconnects_total"); n == 0 {
		t.Error("want at least one reconnect after the flap")
	}
	if wan.DroppedMessages() == 0 {
		t.Error("loss injection dropped nothing — test exercised no faults")
	}
}

func TestChaosPartitionDegradedModeAndReplay(t *testing.T) {
	fs := memfs.New()
	img := chaosPattern(64*1024, 2)
	fs.WriteFile("/img", img)
	wan := simnet.NewLink(simnet.Local())
	_, node, sess := startChaosChain(t, fs, wan, stack.ProxyOptions{
		UpstreamCallTimeout: 150 * time.Millisecond,
		UpstreamMaxRetries:  2,
		DegradedReads:       true,
		FailureThreshold:    1,
		ProbeInterval:       50 * time.Millisecond,
	})

	// Warm the cache and absorb a write while the WAN is healthy.
	if got, err := sess.ReadFile("/img"); err != nil || !bytes.Equal(got, img) {
		t.Fatalf("warm read: %v", err)
	}
	part1 := chaosPattern(16*1024, 3)
	if err := sess.WriteFile("/out", part1); err != nil {
		t.Fatal(err)
	}
	if node.BlockCache.DirtyCount() == 0 {
		t.Fatal("write not absorbed into the write-back cache")
	}

	// Partition the WAN: established connections die, new dials fail.
	wan.Partition()
	wan.Drop()
	sess.DropCaches() // force name resolution back through the proxy

	// Cached data stays readable (degraded read-only mode), including
	// LOOKUP/GETATTR synthesized from the proxy's shadow state.
	if got, err := sess.ReadFile("/img"); err != nil || !bytes.Equal(got, img) {
		t.Fatalf("degraded read of cached file: %v", err)
	}
	if !node.Proxy.Degraded() {
		t.Error("proxy not in degraded mode during partition")
	}

	// Writes against absorbed state keep being acknowledged.
	f, err := sess.Open("/out")
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	part2 := chaosPattern(16*1024, 4)
	if _, err := f.WriteAt(part2, int64(len(part1))); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("degraded close: %v", err)
	}

	// Uncached access fails fast: bounded error latency, never a hang.
	start := time.Now()
	if _, err := sess.ReadFile("/nope"); err == nil {
		t.Error("read of unknown file succeeded during partition")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("degraded error took %v, want fast failure", d)
	}
	st := node.Proxy.Snapshot()
	if st.Counter("gvfs_proxy_breaker_opens_total") == 0 {
		t.Error("circuit breaker never opened")
	}
	if st.Counter("gvfs_proxy_breaker_fastfails_total") == 0 {
		t.Error("no fast-fails recorded while partitioned")
	}
	if st.Counter("gvfs_proxy_degraded_reads_total") == 0 {
		t.Error("no degraded reads recorded")
	}

	// Heal: probes must close the breaker and replay every acknowledged
	// write; the origin must converge to the exact session content.
	wan.Heal()
	want := append(append([]byte{}, part1...), part2...)
	wantSum := sha256.Sum256(want)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if got, err := fs.ReadFile("/out"); err == nil && sha256.Sum256(got) == wantSum {
			break
		}
		if time.Now().After(deadline) {
			got, _ := fs.ReadFile("/out")
			t.Fatalf("acknowledged writes not replayed within 15s (origin has %d bytes, want %d)",
				len(got), len(want))
		}
		time.Sleep(100 * time.Millisecond)
	}
	if node.Proxy.Degraded() {
		t.Error("proxy still degraded after heal + probe")
	}
	st = node.Proxy.Snapshot()
	if st.Counter("gvfs_proxy_probes_total") == 0 || st.Counter("gvfs_proxy_replays_total") == 0 {
		t.Error("recovery stats: want probes and replays > 0")
	}
}

func TestChaosStallMidReadRecovers(t *testing.T) {
	fs := memfs.New()
	img := chaosPattern(128*1024, 5)
	fs.WriteFile("/img", img)
	wan := simnet.NewLink(simnet.Local())
	_, _, sess := startChaosChain(t, fs, wan, stack.ProxyOptions{
		UpstreamCallTimeout: 150 * time.Millisecond,
		UpstreamMaxRetries:  8,
	})

	// Freeze the WAN, then start the read so its first RPCs are caught
	// by the stall: they must ride timeouts and retransmission instead
	// of hanging, and complete once the link thaws.
	const stall = 400 * time.Millisecond
	wan.Stall(stall)
	start := time.Now()
	done := make(chan struct{})
	var data []byte
	var rerr error
	go func() {
		data, rerr = sess.ReadFile("/img")
		close(done)
	}()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("read hung across a WAN stall")
	}
	if rerr != nil {
		t.Fatalf("read across stall: %v", rerr)
	}
	if !bytes.Equal(data, img) {
		t.Fatal("read across stall returned wrong content")
	}
	if d := time.Since(start); d < stall-50*time.Millisecond {
		t.Errorf("read finished in %v — the %v stall never took effect", d, stall)
	}
}

// TestChaosOverloadStallWithAggressiveTenant combines two faults: a
// WAN stall and a noisy tenant flooding the proxy with cold misses
// from many connections at once. With admission control on, the
// invariants are: the proxy never deadlocks, overflow is shed with
// the retriable NFS3ERR_JUKEBOX instead of unbounded queueing, the
// polite tenant's requests stay bounded, brownout trips under the
// sustained queue delay, and the acknowledged write survives to the
// origin once the storm passes.
func TestChaosOverloadStallWithAggressiveTenant(t *testing.T) {
	fs := memfs.New()
	big := chaosPattern(2*1024*1024, 7) // larger than the block cache
	fs.WriteFile("/big", big)
	hot := chaosPattern(32*1024, 8)
	fs.WriteFile("/hot", hot)
	wan := simnet.NewLink(simnet.Local())
	_, node, sess := startChaosChain(t, fs, wan, stack.ProxyOptions{
		UpstreamCallTimeout: 150 * time.Millisecond,
		UpstreamMaxRetries:  2,
		QoS: &qos.Config{
			MaxConcurrent:  4,
			PerClientQueue: 8,
			Quantum:        64 << 10,
			BrownoutEnter:  10 * time.Millisecond,
		},
	})

	// Warm the polite tenant's working set and absorb one acknowledged
	// write while the WAN is healthy.
	if got, err := sess.ReadFile("/hot"); err != nil || !bytes.Equal(got, hot) {
		t.Fatalf("warm read: %v", err)
	}
	payload := chaosPattern(48*1024, 9)
	if err := sess.WriteFile("/ack", payload); err != nil {
		t.Fatal(err)
	}
	if node.BlockCache.DirtyCount() == 0 {
		t.Fatal("write not absorbed into the write-back cache")
	}

	// The aggressor: 16 connections sharing one credential (one
	// tenant), each hammering cold reads of the big file in a closed
	// loop. Shed replies and transport errors during the stall are
	// expected; hangs are not.
	aggCred := sunrpc.UnixCred{UID: 666, GID: 666, MachineName: "noisy"}.Encode()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var aggShed, aggServed atomic.Int64
	// Mount every aggressor connection before the storm starts: MOUNT
	// has no retriable shed encoding, so a mount racing the tenant's
	// own full queue would fail outright.
	files := make([]*gvfs.File, 16)
	for i := range files {
		as, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/", Cred: aggCred})
		if err != nil {
			t.Fatalf("aggressor mount: %v", err)
		}
		t.Cleanup(func() { as.Close() })
		files[i], err = as.Open("/big")
		if err != nil {
			t.Fatalf("aggressor open: %v", err)
		}
	}
	for i := range files {
		f := files[i]
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			buf := make([]byte, 8192)
			off := int64(id) * 8192
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := f.ReadAt(buf, off%int64(len(big)-8192))
				switch {
				case err == nil:
					aggServed.Add(1)
				case isJukeboxErr(err):
					aggShed.Add(1)
				}
				off += 37 * 8192 // stride to defeat read-ahead
			}
		}(i)
	}

	// Let the storm establish, then freeze the WAN under it.
	time.Sleep(200 * time.Millisecond)
	wan.Stall(600 * time.Millisecond)

	// The polite tenant keeps issuing reads of its warmed file through
	// the storm. Individual requests may fail transiently while the
	// WAN is frozen; none may hang, and successes must be correct.
	politeDeadline := time.Now().Add(1500 * time.Millisecond)
	var politeOK int
	for time.Now().Before(politeDeadline) {
		opDone := make(chan []byte, 1)
		go func() {
			got, err := sess.ReadFile("/hot")
			if err != nil {
				opDone <- nil
				return
			}
			opDone <- got
		}()
		select {
		case got := <-opDone:
			if got != nil {
				if !bytes.Equal(got, hot) {
					t.Fatal("polite read returned corrupt data during overload")
				}
				politeOK++
			}
		case <-time.After(10 * time.Second):
			t.Fatal("polite read hung during overload — deadlock or unbounded queueing")
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if politeOK == 0 {
		t.Error("polite tenant made no progress at all during the storm")
	}

	// After the storm: the acknowledged write must reach the origin.
	// Earlier flush attempts may still race residual timeouts, so
	// retry; acknowledged data must never be dropped on failure.
	var flushErr error
	for i := 0; i < 20; i++ {
		if flushErr = node.Proxy.WriteBack(); flushErr == nil {
			break
		}
		if node.BlockCache.DirtyCount() == 0 {
			t.Fatal("flush failed but dirty blocks were discarded")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if flushErr != nil {
		t.Fatalf("write-back never succeeded after the storm: %v", flushErr)
	}
	got, err := fs.ReadFile("/ack")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("acknowledged write lost under overload: %v", err)
	}

	// Overload handling must be visible: admissions happened, overflow
	// was shed retriably, and brownout engaged under the stall.
	counters := node.Metrics.Snapshot().Counters
	if counters["gvfs_qos_admitted_total"] == 0 {
		t.Error("no admissions recorded — QoS was not in the call path")
	}
	if counters["gvfs_qos_rejected_queue_full_total"] == 0 && aggShed.Load() == 0 {
		t.Error("16 streams against 4+8 capacity produced no queue-full sheds")
	}
	if counters["gvfs_qos_brownout_entered_total"] == 0 {
		t.Error("sustained stall queue delay never tripped brownout")
	}
	if aggServed.Load() == 0 {
		t.Error("aggressor was starved completely — shed should be selective, not total")
	}
	t.Logf("overload: polite ok=%d aggressor served=%d shed=%d brownouts=%d",
		politeOK, aggServed.Load(), aggShed.Load(), counters["gvfs_qos_brownout_entered_total"])
}

// isJukeboxErr reports whether err is the retriable NFS3ERR_JUKEBOX
// shed reply.
func isJukeboxErr(err error) bool {
	var ne *nfs3.Error
	return errors.As(err, &ne) && ne.Status == nfs3.ErrJukebox
}

func TestChaosFlapMidFlushNoLostWrites(t *testing.T) {
	fs := memfs.New()
	wan := simnet.NewLink(simnet.Local())
	_, node, sess := startChaosChain(t, fs, wan, stack.ProxyOptions{
		UpstreamCallTimeout: 500 * time.Millisecond,
		UpstreamMaxRetries:  4,
	})
	payload := chaosPattern(64*1024, 6)
	if err := sess.WriteFile("/disk", payload); err != nil {
		t.Fatal(err)
	}
	if node.BlockCache.DirtyCount() == 0 {
		t.Fatal("no dirty blocks absorbed")
	}

	// Slow the WAN so the flush is in flight when the link flaps.
	wan.Stall(100 * time.Millisecond)
	flushErr := make(chan error, 1)
	go func() { flushErr <- node.Proxy.WriteBack() }()
	wan.Flap(2, 5*time.Millisecond)

	err := <-flushErr
	for i := 0; err != nil && i < 10; i++ {
		// A failed flush must keep every dirty block for the retry:
		// acknowledged data is never dropped on error.
		if node.BlockCache.DirtyCount() == 0 {
			t.Fatal("flush failed but dirty blocks were discarded")
		}
		err = node.Proxy.WriteBack()
	}
	if err != nil {
		t.Fatalf("write-back never succeeded after flaps: %v", err)
	}
	got, err := fs.ReadFile("/disk")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("origin content wrong after flush through flaps: %v", err)
	}
	if node.BlockCache.DirtyCount() != 0 {
		t.Error("dirty blocks remain after successful write-back")
	}
}
