package proxy

// Local namespace: when the proxy runs without an RPC upstream
// (Config.Upstream == nil — e.g. the objstore backend), control-plane
// calls that would otherwise be relayed are synthesized from the
// backend's namespace interface. The READ/WRITE data path never comes
// through here; io.go routes it to the backend directly. Procedures
// the backend cannot express return ProcUnavail, exactly as an
// upstream that does not serve the program would.

import (
	"bytes"

	"gvfs/internal/backend"
	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
	"gvfs/internal/xdr"
)

func (p *Proxy) localNamespace(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	if c.Prog == nfs3.MountProgram {
		return p.localMount(c)
	}
	switch c.Proc {
	case nfs3.ProcNull:
		return nil, sunrpc.Success
	case nfs3.ProcGetattr:
		return p.localGetattr(c)
	case nfs3.ProcAccess:
		return p.localAccess(c)
	case nfs3.ProcFSInfo:
		return p.localFsinfo(c)
	case nfs3.ProcCommit:
		return p.localCommit(c)
	}
	ns, ok := p.cfg.Backend.(backend.Namespacer)
	if !ok {
		return nil, sunrpc.ProcUnavail
	}
	switch c.Proc {
	case nfs3.ProcLookup:
		return p.localLookup(ns, c)
	case nfs3.ProcCreate:
		return p.localCreate(ns, c)
	}
	return nil, sunrpc.ProcUnavail
}

func (p *Proxy) localMount(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	switch c.Proc {
	case mountd.ProcNull, mountd.ProcUmnt:
		return nil, sunrpc.Success
	case mountd.ProcMnt:
	default:
		return nil, sunrpc.ProcUnavail
	}
	d := xdr.NewDecoder(bytes.NewReader(c.Args))
	dirpath := d.String()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	ns, ok := p.cfg.Backend.(backend.Namespacer)
	if !ok {
		e.Uint32(mountd.ErrAcces)
		return buf.Bytes(), sunrpc.Success
	}
	fid, _, err := ns.Root(dirpath)
	if err != nil {
		e.Uint32(mountd.ErrNoEnt)
		return buf.Bytes(), sunrpc.Success
	}
	e.Uint32(mountd.OK)
	e.Opaque(fid)
	e.Uint32(1) // one auth flavor follows
	e.Uint32(sunrpc.AuthUnix)
	return buf.Bytes(), sunrpc.Success
}

func (p *Proxy) localLookup(ns backend.Namespacer, c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	args, err := nfs3.DecodeLookupArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	fid, attr, lerr := ns.Lookup(backend.FileID(args.Dir), args.Name, backend.CallOpts{Deadline: c.Deadline})
	if lerr != nil {
		st, ok := errStatus(lerr)
		if !ok {
			return nil, sunrpc.SystemErr
		}
		res := nfs3.LookupRes{Status: st}
		return res.Encode(), sunrpc.Success
	}
	res := nfs3.LookupRes{Status: nfs3.OK, Object: nfs3.FH(fid), ObjAttr: fattrOf(&attr)}
	return res.Encode(), sunrpc.Success
}

func (p *Proxy) localGetattr(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	args, err := nfs3.DecodeGetattrArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	attr, gerr := p.cfg.Backend.GetAttr(backend.FileID(args.FH), backend.CallOpts{Deadline: c.Deadline})
	if gerr != nil {
		st, ok := errStatus(gerr)
		if !ok {
			return nil, sunrpc.SystemErr
		}
		res := nfs3.GetattrRes{Status: st}
		return res.Encode(), sunrpc.Success
	}
	res := nfs3.GetattrRes{Status: nfs3.OK, Attr: *fattrOf(&attr)}
	return res.Encode(), sunrpc.Success
}

func (p *Proxy) localAccess(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(c.Args))
	fh := nfs3.DecodeFH(d)
	want := d.Uint32()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	attr, gerr := p.cfg.Backend.GetAttr(backend.FileID(fh), backend.CallOpts{Deadline: c.Deadline})
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	if gerr != nil {
		st, ok := errStatus(gerr)
		if !ok {
			return nil, sunrpc.SystemErr
		}
		e.Uint32(uint32(st))
		nfs3.EncodePostOpAttr(e, nil)
		return buf.Bytes(), sunrpc.Success
	}
	e.Uint32(uint32(nfs3.OK))
	nfs3.EncodePostOpAttr(e, fattrOf(&attr))
	// Access control is the proxy layer's job (identity mapping);
	// grant whatever was requested, like the end server does.
	e.Uint32(want)
	return buf.Bytes(), sunrpc.Success
}

func (p *Proxy) localFsinfo(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	args, err := nfs3.DecodeGetattrArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	var post *nfs3.Fattr
	if attr, gerr := p.cfg.Backend.GetAttr(backend.FileID(args.FH), backend.CallOpts{Deadline: c.Deadline}); gerr == nil {
		post = fattrOf(&attr)
	}
	info := nfs3.DefaultFSInfo()
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(nfs3.OK))
	nfs3.EncodePostOpAttr(e, post)
	e.Uint32(info.RtMax)
	e.Uint32(info.RtPref)
	e.Uint32(info.RtMult)
	e.Uint32(info.WtMax)
	e.Uint32(info.WtPref)
	e.Uint32(info.WtMult)
	e.Uint32(info.DtPref)
	e.Uint64(info.MaxFileSize)
	e.Uint32(info.TimeDelta.Sec)
	e.Uint32(info.TimeDelta.Nsec)
	e.Uint32(info.Properties)
	return buf.Bytes(), sunrpc.Success
}

func (p *Proxy) localCreate(ns backend.Namespacer, c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(c.Args))
	dir := nfs3.DecodeFH(d)
	name := d.String()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	fid, attr, cerr := ns.Create(backend.FileID(dir), name, backend.CallOpts{Deadline: c.Deadline})
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	if cerr != nil {
		st, ok := errStatus(cerr)
		if !ok {
			return nil, sunrpc.SystemErr
		}
		e.Uint32(uint32(st))
		wcc := nfs3.WccData{}
		wcc.Encode(e)
		return buf.Bytes(), sunrpc.Success
	}
	e.Uint32(uint32(nfs3.OK))
	nfs3.EncodePostOpFH(e, nfs3.FH(fid))
	nfs3.EncodePostOpAttr(e, fattrOf(&attr))
	wcc := nfs3.WccData{}
	wcc.Encode(e)
	return buf.Bytes(), sunrpc.Success
}

func (p *Proxy) localCommit(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	a, err := nfs3.DecodeCommitArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	status := nfs3.OK
	if cerr := p.cfg.Backend.Commit(backend.FileID(a.FH), backend.CallOpts{Deadline: c.Deadline}); cerr != nil {
		st, ok := errStatus(cerr)
		if !ok {
			return nil, sunrpc.SystemErr
		}
		status = st
	}
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(status))
	wcc := nfs3.WccData{}
	wcc.Encode(e)
	e.FixedOpaque(nfs3.WriteVerf[:])
	return buf.Bytes(), sunrpc.Success
}
