package proxy_test

// End-to-end property test: arbitrary sequences of block-aligned and
// unaligned reads, writes, truncates and flushes through the full
// proxy chain must behave exactly like a flat in-memory model. This is
// the strongest single check on the write-back cache's correctness:
// read-your-writes, merge-on-partial-write, size shadowing and flush
// ordering all fall out of it.

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"gvfs/internal/cache"
)

type fileOp struct {
	kind  int // 0 read, 1 write, 2 truncate, 3 writeback, 4 drop page cache
	off   int64
	size  int
	fill  byte
	tsize uint64
}

func genOps(rng *rand.Rand, n int) []fileOp {
	ops := make([]fileOp, n)
	for i := range ops {
		op := fileOp{kind: rng.Intn(5)}
		switch op.kind {
		case 0, 1:
			op.off = int64(rng.Intn(96 * 1024))
			op.size = 1 + rng.Intn(24*1024)
			op.fill = byte(rng.Intn(255) + 1)
		case 2:
			op.tsize = uint64(rng.Intn(96 * 1024))
		}
		ops[i] = op
	}
	return ops
}

func TestPropertyProxyMatchesModel(t *testing.T) {
	for _, policy := range []cache.Policy{cache.WriteThrough, cache.WriteBack} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for round := 0; round < 6; round++ {
				e := newEnv(t, envOptions{policy: policy, pages: 8})
				f, err := e.session.Create("/model.bin")
				if err != nil {
					t.Fatal(err)
				}
				model := []byte{}
				for i, op := range genOps(rng, 40) {
					switch op.kind {
					case 0: // read and compare
						buf := make([]byte, op.size)
						n, err := f.ReadAt(buf, op.off)
						if err != nil && err != io.EOF {
							t.Fatalf("round %d op %d: read: %v", round, i, err)
						}
						want := 0
						if op.off < int64(len(model)) {
							want = len(model) - int(op.off)
							if want > op.size {
								want = op.size
							}
						}
						if n != want {
							t.Fatalf("round %d op %d: read %d bytes at %d, want %d (file %d)",
								round, i, n, op.off, want, len(model))
						}
						if n > 0 && !bytes.Equal(buf[:n], model[op.off:int(op.off)+n]) {
							t.Fatalf("round %d op %d: read data mismatch at %d", round, i, op.off)
						}
					case 1: // write
						data := bytes.Repeat([]byte{op.fill}, op.size)
						if _, err := f.WriteAt(data, op.off); err != nil {
							t.Fatalf("round %d op %d: write: %v", round, i, err)
						}
						end := int(op.off) + op.size
						if end > len(model) {
							model = append(model, make([]byte, end-len(model))...)
						}
						copy(model[op.off:end], data)
					case 2: // truncate
						if err := f.Truncate(op.tsize); err != nil {
							t.Fatalf("round %d op %d: truncate: %v", round, i, err)
						}
						if op.tsize <= uint64(len(model)) {
							model = model[:op.tsize]
						} else {
							model = append(model, make([]byte, op.tsize-uint64(len(model)))...)
						}
					case 3: // middleware write-back
						if err := e.proxyN.Proxy.WriteBack(); err != nil {
							t.Fatalf("round %d op %d: writeback: %v", round, i, err)
						}
					case 4: // client cache drop
						e.session.DropCaches()
					}
				}
				// Final settle: server must hold exactly the model.
				if err := e.proxyN.Proxy.Flush(); err != nil {
					t.Fatal(err)
				}
				got, err := e.fs.ReadFile("/model.bin")
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, model) {
					t.Fatalf("round %d: server state diverged from model (len %d vs %d)",
						round, len(got), len(model))
				}
				f.Close()
			}
		})
	}
}
