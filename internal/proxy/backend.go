package proxy

// Backend plumbing for the data path. The proxy's READ/WRITE handling,
// write-back, read-ahead and meta-data machinery speak the
// internal/backend interface exclusively; the NFSv3 wire client lives
// behind it in internal/backend/nfs3be. The one deliberate exception
// is the cache-less relay (no block cache, real RPC upstream — the
// gvfsd identity-mapping role), which keeps raw call forwarding so
// each client's own credentials ride every data call.

import (
	"errors"
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/bufpool"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/sunrpc"
)

// useBackendIO reports whether READ/WRITE data-path calls go through
// the backend interface (caching proxy, or no RPC upstream at all).
func (p *Proxy) useBackendIO() bool {
	return p.cfg.BlockCache != nil || p.cfg.Upstream == nil
}

// beOpts builds backend call options from a live trace span and the
// call's remaining deadline budget.
func beOpts(tr *obs.Active, deadline time.Time) backend.CallOpts {
	opts := backend.CallOpts{Deadline: deadline}
	if tr != nil {
		opts.TraceID, opts.Hop = tr.ID(), tr.Hop()+1
	}
	return opts
}

// beRead issues a proxy-initiated backend read (write-back RMW,
// read-ahead, meta-data) with breaker fast-fail and health observation.
func (p *Proxy) beRead(fh nfs3.FH, off uint64, count uint32, tr *obs.Active, deadline time.Time) (backend.ReadResult, error) {
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return backend.ReadResult{}, errUpstreamDown
	}
	return p.beReadRaw(fh, off, count, tr, deadline)
}

// beDemandRead is beRead for client-demand reads: those count toward
// the forwarded counter exactly like relayed calls (the fast-fail path
// does not).
func (p *Proxy) beDemandRead(fh nfs3.FH, off uint64, count uint32, tr *obs.Active, deadline time.Time) (backend.ReadResult, error) {
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return backend.ReadResult{}, errUpstreamDown
	}
	p.stats.forwarded.Add(1)
	return p.beReadRaw(fh, off, count, tr, deadline)
}

func (p *Proxy) beReadRaw(fh nfs3.FH, off uint64, count uint32, tr *obs.Active, deadline time.Time) (backend.ReadResult, error) {
	upStart := time.Now()
	r, err := p.cfg.Backend.Read(backend.FileID(fh), off, count, beOpts(tr, deadline))
	tr.Span(obs.LayerUpstream, callOutcome(err), upStart)
	p.observeUpstream(err)
	return r, err
}

// beWrite issues a proxy-initiated durable backend write (write-back).
func (p *Proxy) beWrite(fh nfs3.FH, off uint64, data []byte) (*backend.Attr, error) {
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return nil, errUpstreamDown
	}
	attr, err := p.cfg.Backend.Write(backend.FileID(fh), off, data, backend.CallOpts{})
	p.observeUpstream(err)
	return attr, err
}

// beDemandWrite is beWrite for client-demand write-through, counted as
// forwarded and attributed to the call's trace and deadline.
func (p *Proxy) beDemandWrite(fh nfs3.FH, off uint64, data []byte, tr *obs.Active, deadline time.Time) (*backend.Attr, error) {
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return nil, errUpstreamDown
	}
	p.stats.forwarded.Add(1)
	upStart := time.Now()
	attr, err := p.cfg.Backend.Write(backend.FileID(fh), off, data, beOpts(tr, deadline))
	tr.Span(obs.LayerUpstream, callOutcome(err), upStart)
	p.observeUpstream(err)
	return attr, err
}

// errNoNamespace marks a backend without namespace support.
var errNoNamespace = errors.New("proxy: backend has no namespace support")

// beLookup resolves dir/name through the backend's namespace.
func (p *Proxy) beLookup(dir nfs3.FH, name string) (nfs3.FH, backend.Attr, error) {
	lk, ok := p.cfg.Backend.(backend.Lookuper)
	if !ok {
		return nil, backend.Attr{}, errNoNamespace
	}
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return nil, backend.Attr{}, errUpstreamDown
	}
	fid, attr, err := lk.Lookup(backend.FileID(dir), name, backend.CallOpts{})
	p.observeUpstream(err)
	return nfs3.FH(fid), attr, err
}

// errStatus maps a classified backend error onto the NFS status to
// report to the client. ok=false means the failure is transport-level
// (unavailable, out of budget, or unclassified) and must surface as an
// RPC-level SystemErr, never as an NFS status the client would treat
// as authoritative.
func errStatus(err error) (nfs3.Status, bool) {
	var be *backend.Error
	if !errors.As(err, &be) {
		return 0, false
	}
	switch be.Class {
	case backend.ClassUnavailable, backend.ClassTimeout:
		return 0, false
	}
	if be.Status != 0 {
		return nfs3.Status(be.Status), true
	}
	switch be.Class {
	case backend.ClassRetriable:
		return nfs3.ErrJukebox, true
	case backend.ClassStale:
		return nfs3.ErrStale, true
	case backend.ClassNotFound:
		return nfs3.ErrNoEnt, true
	default:
		return nfs3.ErrIO, true
	}
}

// backendReadError encodes a failed backend read as the NFS reply.
func backendReadError(err error) ([]byte, sunrpc.AcceptStat) {
	if st, ok := errStatus(err); ok {
		res := nfs3.ReadRes{Status: st}
		return res.Encode(), sunrpc.Success
	}
	return nil, sunrpc.SystemErr
}

// backendWriteError encodes a failed backend write as the NFS reply.
func backendWriteError(err error) ([]byte, sunrpc.AcceptStat) {
	if st, ok := errStatus(err); ok {
		res := nfs3.WriteRes{Status: st, Verf: nfs3.WriteVerf}
		return res.Encode(), sunrpc.Success
	}
	return nil, sunrpc.SystemErr
}

// fattrOf converts a backend attribute to an NFS post-op attribute.
func fattrOf(a *backend.Attr) *nfs3.Fattr {
	if a == nil {
		return nil
	}
	fa := &nfs3.Fattr{Type: nfs3.TypeReg, Mode: a.Mode, Nlink: 1, Size: a.Size, Used: a.Size}
	if a.Dir {
		fa.Type = nfs3.TypeDir
	}
	if fa.Mode == 0 {
		if a.Dir {
			fa.Mode = 0755
		} else {
			fa.Mode = 0644
		}
	}
	return fa
}

// readResultReply encodes a successful backend read as the NFS READ
// reply, into a pooled buffer released by the RPC server (ReplyPooled).
func (p *Proxy) readResultReply(c *sunrpc.Call, r backend.ReadResult) ([]byte, sunrpc.AcceptStat) {
	res := nfs3.ReadRes{
		Status: nfs3.OK,
		Count:  uint32(len(r.Data)),
		EOF:    r.EOF,
		Data:   r.Data,
		Attr:   fattrOf(r.Attr),
	}
	out := res.AppendTo(bufpool.Get(nfs3.ReadResSize(len(r.Data)))[:0])
	c.ReplyPooled = true
	return out, sunrpc.Success
}

// backendWriteReply encodes a successful durable backend write. The
// backend contract is FILE_SYNC stability, so that is what the client
// is told regardless of what it asked for.
func (p *Proxy) backendWriteReply(c *sunrpc.Call, args *nfs3.WriteArgs, attr *backend.Attr) []byte {
	res := nfs3.WriteRes{
		Status:    nfs3.OK,
		Count:     uint32(len(args.Data)),
		Committed: nfs3.FileSync,
		Verf:      nfs3.WriteVerf,
	}
	if fa := fattrOf(attr); fa != nil {
		res.Wcc.After = fa
	}
	out := res.AppendTo(bufpool.Get(nfs3.WriteResSize)[:0])
	c.ReplyPooled = true
	return out
}

// readThrough satisfies a READ that bypasses the block cache — none
// configured, or an unaligned request.
func (p *Proxy) readThrough(c *sunrpc.Call, args *nfs3.ReadArgs, tr *obs.Active, start time.Time) ([]byte, sunrpc.AcceptStat) {
	if !p.useBackendIO() {
		res, stat := p.forward(c, tr)
		p.accountRead(c, args.FH, args.Offset, "forwarded", args.Count, start)
		return res, stat
	}
	r, err := p.beDemandRead(args.FH, args.Offset, args.Count, tr, c.Deadline)
	if err != nil {
		p.accountRead(c, args.FH, args.Offset, "error", args.Count, start)
		return backendReadError(err)
	}
	if r.Attr != nil {
		p.rememberSize(args.FH, r.Attr.Size)
	}
	res, stat := p.readResultReply(c, r)
	p.accountRead(c, args.FH, args.Offset, "forwarded", args.Count, start)
	return res, stat
}
