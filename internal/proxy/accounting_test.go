package proxy_test

// Satellite coverage: degraded-mode transitions (internal/proxy/health.go)
// as seen through the accounting tables — a partition must show up in
// /statusz as degraded reads attributed to the right file and client —
// plus the write-back audit lifecycle across a middleware flush.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/obs"
	"gvfs/internal/proxy"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

func TestDegradedReadsAttributedInStatusz(t *testing.T) {
	fs := memfs.New()
	img := chaosPattern(64*1024, 9)
	fs.WriteFile("/img", img)
	wan := simnet.NewLink(simnet.Local())
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: wan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr:        server.ProxyAddr(),
		UpstreamLink:        wan,
		CacheConfig:         &cfg,
		UpstreamCallTimeout: 150 * time.Millisecond,
		UpstreamMaxRetries:  2,
		DegradedReads:       true,
		FailureThreshold:    1,
		ProbeInterval:       time.Hour, // keep the breaker open for the test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr: node.Addr, Export: "/",
		Cred: sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "compute1"}.Encode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })

	// Warm the block cache, then partition the WAN.
	if got, err := sess.ReadFile("/img"); err != nil || !bytes.Equal(got, img) {
		t.Fatalf("warm read: %v", err)
	}
	before := node.Proxy.Statusz()
	wan.Partition()
	wan.Drop()
	sess.DropCaches()

	// Degraded read: served from cache while the breaker is open.
	if got, err := sess.ReadFile("/img"); err != nil || !bytes.Equal(got, img) {
		t.Fatalf("degraded read: %v", err)
	}
	if !node.Proxy.Degraded() {
		t.Fatal("proxy not degraded after partition")
	}

	st := node.Proxy.Statusz()
	if !st.Degraded {
		t.Error("statusz does not report degraded mode")
	}
	var row *proxy.FileStats
	for i := range st.Files["reads"] {
		if st.Files["reads"][i].File == "/img" {
			row = &st.Files["reads"][i]
		}
	}
	if row == nil {
		t.Fatalf("no /img row in reads ranking: %+v", st.Files["reads"])
	}
	if row.DegradedReads == 0 {
		t.Errorf("degraded reads not attributed to /img: %+v", row)
	}
	found := false
	for _, c := range st.Clients {
		if strings.HasPrefix(c.Client, "compute1/uid=500") {
			found = true
			if c.DegradedReads == 0 {
				t.Errorf("degraded reads not attributed to client: %+v", c)
			}
			if c.Ops["READ"] == 0 {
				t.Errorf("client op mix missing READs: %+v", c)
			}
		}
	}
	if !found {
		t.Fatalf("client compute1/uid=500 absent from statusz: %+v", st.Clients)
	}
	if before.Degraded {
		t.Error("statusz reported degraded before the partition")
	}

	// The document itself must be bounded, valid JSON.
	var buf bytes.Buffer
	if err := node.Proxy.WriteStatusz(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintBoundedJSON(buf.Bytes(), 4096); err != nil {
		t.Fatalf("statusz fails bounded-JSON lint: %v", err)
	}
}

func TestWriteBackAuditAcrossFlush(t *testing.T) {
	fs := memfs.New()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(), CacheConfig: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })

	payload := chaosPattern(32*1024, 10)
	if err := sess.WriteFile("/disk", payload); err != nil {
		t.Fatal(err)
	}
	st := node.Proxy.Statusz()
	if st.Audit.DirtyBlocks == 0 {
		t.Fatal("no dirty blocks in audit after absorbed writes")
	}
	dirtyEvents := 0
	for _, e := range st.Audit.Events {
		if e.Kind == proxy.AuditDirty && e.File == "/disk" {
			dirtyEvents++
		}
	}
	if dirtyEvents == 0 {
		t.Fatalf("no dirty audit events for /disk: %+v", st.Audit.Events)
	}

	if err := node.Proxy.WriteBack(); err != nil {
		t.Fatal(err)
	}
	st = node.Proxy.Statusz()
	if st.Audit.DirtyBlocks != 0 {
		t.Errorf("dirty blocks remain in audit after write-back: %d", st.Audit.DirtyBlocks)
	}
	var sawTrigger, sawCommit bool
	for _, e := range st.Audit.Events {
		switch e.Kind {
		case proxy.AuditTrigger:
			if e.Reason == proxy.TriggerWriteBack {
				sawTrigger = true
			}
		case proxy.AuditCommit:
			sawCommit = true
			if e.AgeNs <= 0 {
				t.Errorf("commit event without a dirty-block age: %+v", e)
			}
		}
	}
	if !sawTrigger || !sawCommit {
		t.Fatalf("audit lifecycle incomplete (trigger=%v commit=%v): %+v",
			sawTrigger, sawCommit, st.Audit.Events)
	}
}
