package proxy

import (
	"sync/atomic"
	"time"
)

// Idle write-back implements the paper's §3.2.3 persistent-VM
// behaviour: "write-back caching can effectively hide the latencies of
// write operations perceived by the user ... and submit the
// modifications when the user is off-line or the session is idle."
// When enabled, a background loop watches RPC activity; once the
// session has been quiet for the configured period and dirty data
// exists, the proxy propagates it upstream on its own.

// idleState tracks activity for the idle writer.
type idleState struct {
	lastActivity atomic.Int64 // unix nanos of the last client RPC
	stop         chan struct{}
	stopped      atomic.Bool
}

// touch records client activity.
func (s *idleState) touch() {
	s.lastActivity.Store(time.Now().UnixNano())
}

// StartIdleWriteBack begins background propagation of dirty data after
// every idle period of the given length. It returns a stop function;
// calling it more than once is safe.
func (p *Proxy) StartIdleWriteBack(idle time.Duration) (stop func()) {
	s := &idleState{stop: make(chan struct{})}
	s.touch()
	p.idle.Store(s)

	go func() {
		ticker := time.NewTicker(idle / 4)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
			}
			last := time.Unix(0, s.lastActivity.Load())
			if time.Since(last) < idle {
				continue
			}
			if !p.hasDirtyData() {
				continue
			}
			// Brownout sheds optional work: background write-back would
			// add upstream WRITE load exactly when the proxy is trying
			// to drain; the data stays safely dirty for a later tick.
			if p.brownout() {
				continue
			}
			// Best-effort: failures leave the data dirty for the next
			// tick (or an explicit middleware flush).
			_ = p.writeBackReason(TriggerIdle)
		}
	}()
	return func() {
		if s.stopped.CompareAndSwap(false, true) {
			close(s.stop)
		}
	}
}

// hasDirtyData reports whether any cache holds unpropagated writes.
func (p *Proxy) hasDirtyData() bool {
	if p.cfg.BlockCache != nil && p.cfg.BlockCache.DirtyCount() > 0 {
		return true
	}
	if p.cfg.FileCache != nil && len(p.cfg.FileCache.DirtyPaths()) > 0 {
		return true
	}
	return false
}
