package proxy_test

// Chaos suite for the replicated upstream backend: a session mounted
// through a proxy whose data path fans over three identically seeded
// NFS replicas, each reached across its own simnet link. Faults —
// partition+kill, stall, flap — hit one replica mid-workload. The
// invariants are the replication contract: zero client-visible
// failures while any replica survives, hedged reads bound the latency
// of a stalled replica, and scrub/read-repair reconverges a replica
// that missed acknowledged writes.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	gvfs "gvfs"
	"gvfs/internal/backend/nfs3be"
	"gvfs/internal/backend/replbe"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/nfs3"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

// replChain is a running replicated deployment: three NFS servers over
// identically seeded file systems, one link per replica client, and a
// proxy whose backend is the replbe composite. The control plane
// (MOUNT/LOOKUP/GETATTR relay) rides an unshaped connection to
// server 0, so data-path faults on the links never touch it — the
// failure under test is a replica, not the namespace.
type replChain struct {
	fss   []*memfs.FS
	links []*simnet.Link
	node  *stack.Node
	sess  *gvfs.Session
}

// startReplChain builds the deployment. seed must write the same files
// in the same order on every FS — memfs handles are sequential node
// ids, so identical seeding is what makes the replicas interchangeable
// under one file handle. profiles[i] shapes replica i's link.
func startReplChain(t *testing.T, profiles []simnet.Profile,
	seed func(*memfs.FS), rcfg *replbe.Config, cliOpts sunrpc.ClientOptions) *replChain {
	t.Helper()
	c := &replChain{}
	var relayAddr string
	var reps []replbe.Replica
	for i, p := range profiles {
		fs := memfs.New()
		seed(fs)
		server, err := stack.StartNFSServer(fs, stack.NFSServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(server.Close)
		if i == 0 {
			relayAddr = server.Addr
		}
		link := simnet.NewLink(p)
		dial := stack.Dialer(server.Addr, link, nil)
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		opts := cliOpts
		opts.Redial = dial
		opts.Idempotent = nfs3.RetrySafe
		client := sunrpc.NewClientWithOptions(conn, opts)
		t.Cleanup(func() { client.Close() })
		reps = append(reps, replbe.Replica{
			Name: fmt.Sprintf("r%d", i),
			B:    nfs3be.New(client),
		})
		c.fss = append(c.fss, fs)
		c.links = append(c.links, link)
	}
	// A small write-through cache keeps READ/WRITE on the backend data
	// path (a cache-less relay would forward them verbatim) while
	// staying far smaller than the working set, so reads keep missing
	// into the replica set instead of being absorbed.
	ccfg := cache.Config{Dir: t.TempDir(), Banks: 4, SetsPerBank: 4, Assoc: 1,
		BlockSize: 8192, Policy: cache.WriteThrough}
	node, err := stack.StartProxyV2(stack.ProxyOptionsV2{
		ProxyOptions: stack.ProxyOptions{
			UpstreamAddr: relayAddr,
			CacheConfig:  &ccfg,
		},
		Backend:         stack.BackendRepl,
		ReplicaBackends: reps,
		ReplConfig:      rcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	c.node = node
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	c.sess = sess
	return c
}

// repl returns the composite's current stats from /statusz.
func (c *replChain) repl(t *testing.T) *replbe.Stats {
	t.Helper()
	doc := c.node.Proxy.Statusz()
	if doc.Replication == nil {
		t.Fatal("statusz carries no replication section for a repl-backend proxy")
	}
	return doc.Replication
}

// waitRepl polls the replication stats until cond holds.
func (c *replChain) waitRepl(t *testing.T, what string, timeout time.Duration,
	cond func(*replbe.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond(c.repl(t)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica set never reached %q within %v (stats: %+v)",
				what, timeout, *c.repl(t))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func localProfiles(n int) []simnet.Profile {
	ps := make([]simnet.Profile, n)
	for i := range ps {
		ps[i] = simnet.Local()
	}
	return ps
}

// TestChaosReplicaKillMidWorkload partitions and kills one replica in
// the middle of a mixed read/write workload. The client must see zero
// failures, the composite must observe the outage (down transition or
// failovers), and after the link heals the probe loop plus scrub must
// reconverge the dead replica to the exact acknowledged content.
func TestChaosReplicaKillMidWorkload(t *testing.T) {
	img := chaosPattern(1<<20, 21) // 8x the block cache: reads keep missing
	out := chaosPattern(64<<10, 22)
	seed := func(fs *memfs.FS) {
		fs.WriteFile("/img", img)
		fs.WriteFile("/out", out)
	}
	c := startReplChain(t, localProfiles(3), seed, &replbe.Config{
		FailThreshold: 2,
		ProbeInterval: 50 * time.Millisecond,
		ScrubInterval: 100 * time.Millisecond,
		HedgeQuantile: -1, // isolate failover from hedging
	}, sunrpc.ClientOptions{CallTimeout: 250 * time.Millisecond, MaxRetries: 1})

	f, err := c.sess.Open("/img")
	if err != nil {
		t.Fatal(err)
	}
	of, err := c.sess.Open("/out")
	if err != nil {
		t.Fatal(err)
	}

	// The workload: strided 8 KiB reads over /img (cache-defeating) and
	// periodic overwrites of /out blocks, single-threaded so every
	// failure is attributable. Halfway through, replica 1 dies.
	want := append([]byte(nil), out...)
	buf := make([]byte, 8192)
	const rounds = 120
	for i := 0; i < rounds; i++ {
		if i == rounds/2 {
			c.links[1].Partition() // redials fail like a dead host...
			c.links[1].Drop()      // ...and established connections die now
		}
		boff := int64((i * 37 % 128) * 8192)
		if _, err := f.ReadAt(buf, boff); err != nil {
			t.Fatalf("read %d (off %d): client saw a replica failure: %v", i, boff, err)
		}
		if !bytes.Equal(buf, img[boff:boff+8192]) {
			t.Fatalf("read %d returned wrong content", i)
		}
		if i%10 == 0 {
			blk := chaosPattern(8192, byte(23+i))
			woff := int64(i % 8 * 8192)
			if _, err := of.WriteAt(blk, woff); err != nil {
				t.Fatalf("write %d: client saw a replica failure: %v", i, err)
			}
			copy(want[woff:], blk)
		}
	}
	if err := of.Close(); err != nil {
		t.Fatalf("close after kill: %v", err)
	}

	// The outage must have been real and observed by the composite —
	// through a read/commit failover or through the replication queue
	// failing its applies. Both paths are asynchronous to the client
	// workload, so poll.
	c.waitRepl(t, "replica 1 outage observed", 5*time.Second, func(s *replbe.Stats) bool {
		return s.Replicas[1].Transitions > 0 || s.Failovers > 0
	})

	// Heal. Probes mark the replica up; the scrub repairs every file it
	// missed writes for; the replica's own store must converge to the
	// acknowledged bytes.
	c.links[1].Heal()
	c.waitRepl(t, "replica 1 healthy", 10*time.Second, func(s *replbe.Stats) bool {
		return s.Replicas[1].State == "healthy"
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := c.fss[1].ReadFile("/out")
		if err == nil && bytes.Equal(got, want) {
			break
		}
		if time.Now().After(deadline) {
			st := c.repl(t)
			t.Fatalf("replica 1 never reconverged after heal (stale=%d pending=%d scrub=%+v)",
				st.Replicas[1].StaleFiles, st.Replicas[1].PendingRepl, st.Scrub)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.waitRepl(t, "no stale files on replica 1", 10*time.Second, func(s *replbe.Stats) bool {
		return s.Replicas[1].StaleFiles == 0 && s.Replicas[1].PendingRepl == 0
	})
}

// TestChaosReplicaStallHedgedReads shapes replicas 1 and 2 with a few
// milliseconds of RTT so replica 0 is the EWMA-preferred read target,
// then freezes replica 0's link. Reads issued during the stall must be
// answered by hedges against the next-best replica — bounded far below
// the stalled replica's call timeout — and the hedge counters must show
// the second request both firing and winning.
func TestChaosReplicaStallHedgedReads(t *testing.T) {
	img := chaosPattern(1<<20, 31)
	seed := func(fs *memfs.FS) { fs.WriteFile("/img", img) }
	near := simnet.Profile{Name: "near", RTT: 4 * time.Millisecond}
	c := startReplChain(t, []simnet.Profile{simnet.Local(), near, near}, seed,
		&replbe.Config{
			FailThreshold: 10, // keep r0 "up but slow" so every stalled read hedges
			ProbeInterval: 50 * time.Millisecond,
			ScrubInterval: -1,
			HedgeBudget:   0.5,
		}, sunrpc.ClientOptions{CallTimeout: 500 * time.Millisecond, MaxRetries: 1})

	f, err := c.sess.Open("/img")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the latency distribution past the hedge arming threshold:
	// 32 distinct blocks, each a cache miss, almost all served by the
	// fast replica once the EWMA ordering settles.
	buf := make([]byte, 8192)
	for i := 0; i < 32; i++ {
		off := int64(i) * 8192
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatalf("warm read %d: %v", i, err)
		}
		if !bytes.Equal(buf, img[off:off+8192]) {
			t.Fatalf("warm read %d returned wrong content", i)
		}
	}
	if d := c.repl(t).HedgeDelayNs; d == 0 {
		t.Fatal("hedge delay still warming up after 32 backend reads")
	}

	// Freeze replica 0's link and read blocks never touched before.
	// Each read's first attempt stalls; the hedge must answer from a
	// shaped-but-live replica in a few milliseconds.
	c.links[0].Stall(3 * time.Second)
	start := time.Now()
	for i := 32; i < 40; i++ {
		off := int64(i) * 8192
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatalf("stalled read %d: %v", i, err)
		}
		if !bytes.Equal(buf, img[off:off+8192]) {
			t.Fatalf("stalled read %d returned wrong content", i)
		}
	}
	elapsed := time.Since(start)
	st := c.repl(t)
	if st.HedgesFired == 0 {
		t.Error("no hedges fired against a stalled primary")
	}
	if st.HedgesWon == 0 {
		t.Error("no hedge won against a stalled primary")
	}
	// 8 reads against a 3 s stall: hedged service must beat waiting out
	// the stall or the 500 ms call timeout per read.
	if elapsed > 2*time.Second {
		t.Errorf("8 hedged reads took %v under a stalled primary — hedging did not bound latency", elapsed)
	}
	t.Logf("stall: 8 reads in %v, hedges fired=%d won=%d delay=%v",
		elapsed, st.HedgesFired, st.HedgesWon, time.Duration(st.HedgeDelayNs))
}

// TestChaosPrimaryFlapWriteFailover flaps the write primary's link
// while the session overwrites a replicated file. WRITE is not
// transport-retry-safe, so a connection killed mid-call surfaces to
// the composite, which must fail the write over to the next replica
// instead of the client — zero visible errors — and the set must
// reconverge on every replica once the flapping stops.
func TestChaosPrimaryFlapWriteFailover(t *testing.T) {
	out := chaosPattern(128<<10, 41)
	seed := func(fs *memfs.FS) { fs.WriteFile("/out", out) }
	c := startReplChain(t, localProfiles(3), seed, &replbe.Config{
		FailThreshold: 2,
		ProbeInterval: 25 * time.Millisecond,
		ScrubInterval: 100 * time.Millisecond,
		HedgeQuantile: -1,
	}, sunrpc.ClientOptions{CallTimeout: 250 * time.Millisecond, MaxRetries: 1})

	of, err := c.sess.Open("/out")
	if err != nil {
		t.Fatal(err)
	}
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		c.links[0].Flap(6, 40*time.Millisecond)
	}()

	// Write-through traffic for the duration of the flapping: every
	// WriteAt reaches replbe.Write synchronously, so a mid-call
	// connection kill exercises the primary-failover path.
	want := append([]byte(nil), out...)
	i := 0
	for {
		select {
		case <-flapDone:
		default:
			blk := chaosPattern(8192, byte(43+i))
			woff := int64(i % 16 * 8192)
			if _, err := of.WriteAt(blk, woff); err != nil {
				t.Fatalf("write %d during primary flap: client saw the fault: %v", i, err)
			}
			copy(want[woff:], blk)
			i++
			time.Sleep(5 * time.Millisecond)
			continue
		}
		break
	}
	if i == 0 {
		t.Fatal("workload issued no writes while the link flapped")
	}
	if err := of.Close(); err != nil {
		t.Fatalf("close after flaps: %v", err)
	}

	// Every replica — including the flapped primary — must converge to
	// the acknowledged content once replication and scrub settle.
	deadline := time.Now().Add(15 * time.Second)
	for r := 0; r < 3; r++ {
		for {
			got, err := c.fss[r].ReadFile("/out")
			if err == nil && bytes.Equal(got, want) {
				break
			}
			if time.Now().After(deadline) {
				st := c.repl(t)
				t.Fatalf("replica %d diverged after primary flaps (stats: %+v)", r, *st)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	c.waitRepl(t, "all replicas healthy and drained", 10*time.Second, func(s *replbe.Stats) bool {
		for _, rs := range s.Replicas {
			if rs.State != "healthy" || rs.StaleFiles != 0 || rs.PendingRepl != 0 {
				return false
			}
		}
		return true
	})
	t.Logf("flap: %d writes, failovers=%d scrub=%+v", i, c.repl(t).Failovers, c.repl(t).Scrub)
}
