package proxy

import (
	"fmt"
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/bufpool"
	"gvfs/internal/cache"
	"gvfs/internal/filechan"
	"gvfs/internal/meta"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/sunrpc"
)

// This file contains the READ/WRITE fast paths — the disk cache, zero
// filtering and file-channel mechanisms — plus the middleware-facing
// consistency entry points.

// synthesizedAttr builds the post-op attribute the proxy attaches to
// locally-satisfied replies.
func (p *Proxy) synthesizedAttr(fh nfs3.FH) *nfs3.Fattr {
	if sz, ok := p.sizeOf(fh); ok {
		return &nfs3.Fattr{Type: nfs3.TypeReg, Mode: 0644, Nlink: 1, Size: sz, Used: sz}
	}
	return nil
}

// accountRead feeds one finished READ into the per-outcome latency
// histogram, the per-file / per-client accounting tables, and the
// cache-analytics demand feed (tenant identity + block touched).
// Degraded reads are attributed to the file and client that issued
// them, so /statusz shows who was served from cache during an outage.
func (p *Proxy) accountRead(c *sunrpc.Call, fh nfs3.FH, off uint64, outcome string, count uint32, start time.Time) {
	p.stats.observeRead(outcome, start)
	// The aggregate histogram above always records; the per-file /
	// per-client table detail is optional work brownout sheds.
	if p.brownout() {
		return
	}
	client := p.clientLabel(c)
	if p.cfg.Cachean != nil && p.cfg.BlockCache != nil && outcome != "error" {
		bs := uint64(p.cfg.BlockCache.BlockSize())
		p.cfg.Cachean.DemandData(client, fh, off/bs, int(count), false)
	}
	served := outcome == "block_hit" || outcome == "file_cache" || outcome == "zero_filter"
	p.acct.recordRead(p.fileLabel(fh), client, outcome, count, served && p.degraded())
}

func (p *Proxy) handleRead(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	// Stack-allocated args: only the FH (copied by DecodeInto) may
	// outlive the call, via prefetch goroutines and accounting keys.
	var args nfs3.ReadArgs
	if err := args.DecodeInto(c.Args); err != nil {
		return nil, sunrpc.GarbageArgs
	}
	start := time.Now()

	// Meta-data handling (paper §3.2.2): consult the file's meta-data
	// on first access and act on it.
	if !p.cfg.DisableMeta {
		if ms := p.metaFor(args.FH); ms != nil && ms.m != nil {
			if ms.m.WantsFileChannel() && p.cfg.FileCache != nil && p.cfg.FileChanDial != nil {
				if err := p.ensureFetched(args.FH, ms); err == nil {
					res, stat := p.readFromFileCache(&args)
					tr.Span(obs.LayerFileCache, "hit", start)
					p.accountRead(c, args.FH, args.Offset, "file_cache", args.Count, start)
					return res, stat
				}
				// Channel failure: fall through to block-based path.
			} else if ms.m.HasZeroMap() && rangeIsZero(ms.m, args.Offset, args.Count) {
				res, stat := p.zeroReply(&args, ms.m)
				tr.Span(obs.LayerZeroFilter, "hit", start)
				p.accountRead(c, args.FH, args.Offset, "zero_filter", args.Count, start)
				return res, stat
			}
		}
	}

	// A file previously fetched whole stays served from the file cache.
	if p.cfg.FileCache != nil {
		if info, ok := p.pathOf(args.FH); ok && p.cfg.FileCache.Has(info.full) {
			res, stat := p.readFromFileCache(&args)
			tr.Span(obs.LayerFileCache, "hit", start)
			p.accountRead(c, args.FH, args.Offset, "file_cache", args.Count, start)
			return res, stat
		}
	}

	if p.cfg.BlockCache == nil {
		return p.readThrough(c, &args, tr, start)
	}
	bs := uint64(p.cfg.BlockCache.BlockSize())
	if args.Offset%bs != 0 || uint64(args.Count) > bs {
		// Unaligned read: ensure dirty state is visible upstream, then
		// bypass the cache.
		if err := p.cfg.BlockCache.WriteBackFile(args.FH); err != nil {
			return nil, sunrpc.SystemErr
		}
		return p.readThrough(c, &args, tr, start)
	}
	block := args.Offset / bs
	lookup := time.Now()
	if res, stat, ok := p.serveBlockHit(c, &args, block, tr, lookup, start); ok {
		return res, stat
	}
	// A prefetch of this block may already be in flight: join it
	// rather than duplicating the WAN transfer.
	if p.ra != nil && p.ra.waitFor(args.FH, block) {
		if res, stat, ok := p.serveBlockHit(c, &args, block, tr, lookup, start); ok {
			return res, stat
		}
	}
	tr.Span(obs.LayerBlockCache, "miss", lookup)
	// Content-hash hints: with dedup enabled and a hashing backend, a
	// clone's block often already sits in the shared cache under
	// another file's identity — serve it without any upstream
	// transfer. Zero-content blocks need no frame at all (the paper's
	// zero-block map generalized to the well-known zero hash). Local
	// work, so it runs even under brownout.
	if uint64(args.Count) == bs && p.cfg.BlockCache.DedupEnabled() {
		if hr, ok := p.cfg.Backend.(backend.Hasher); ok {
			if h, n, ok := hr.BlockHash(backend.FileID(args.FH), block, int(bs)); ok {
				if res, stat, ok := p.serveByHash(c, &args, block, h, n, tr, lookup, start); ok {
					return res, stat
				}
			}
		}
	}
	// Brownout: hits above kept being served, but a miss means WAN work
	// the overloaded proxy cannot afford — defer it with a retriable
	// error so the queues drain.
	if res, stat, shed := p.deferMissInBrownout(c); shed {
		p.accountRead(c, args.FH, args.Offset, "error", args.Count, start)
		return res, stat
	}
	p.stats.readMisses.Add(1)
	r, err := p.beDemandRead(args.FH, args.Offset, args.Count, tr, c.Deadline)
	if err != nil {
		p.accountRead(c, args.FH, args.Offset, "error", args.Count, start)
		return backendReadError(err)
	}
	if r.Attr != nil {
		p.rememberSize(args.FH, r.Attr.Size)
	}
	// Only cache full-block requests so a frame always represents the
	// block's prefix from its aligned start.
	if uint64(args.Count) == bs && len(r.Data) > 0 {
		if err := p.cfg.BlockCache.PutDedup(args.FH, block, r.Data, false); err != nil {
			return nil, sunrpc.SystemErr
		}
	}
	p.maybePrefetch(args.FH, block)
	res, stat := p.readResultReply(c, r)
	p.accountRead(c, args.FH, args.Offset, "block_miss", args.Count, start)
	return res, stat
}

// serveByHash tries to satisfy a missed block read by content: a known
// zero block is synthesized locally, and content already cached under
// another file's identity is served through a dedup alias. Both avoid
// the upstream transfer entirely.
func (p *Proxy) serveByHash(c *sunrpc.Call, args *nfs3.ReadArgs, block uint64, h backend.Hash, n uint32, tr *obs.Active, lookup, start time.Time) ([]byte, sunrpc.AcceptStat, bool) {
	if backend.IsZeroHash(h, int(n)) {
		p.stats.zeroFiltered.Add(1)
		res, stat := p.cachedReadReply(c, args, make([]byte, n))
		tr.Span(obs.LayerZeroFilter, "hit", lookup)
		p.accountRead(c, args.FH, args.Offset, "zero_filter", args.Count, start)
		return res, stat, true
	}
	buf := bufpool.Get(p.cfg.BlockCache.BlockSize())
	data, ok := p.cfg.BlockCache.GetByHash(args.FH, block, h, buf)
	if !ok {
		bufpool.Put(buf)
		return nil, 0, false
	}
	tr.Span(obs.LayerBlockCache, "dedup_hit", lookup)
	p.stats.readHits.Add(1)
	p.maybePrefetch(args.FH, block)
	res, stat := p.cachedReadReply(c, args, data)
	bufpool.Put(buf)
	p.accountRead(c, args.FH, args.Offset, "block_hit", args.Count, start)
	return res, stat, true
}

// serveBlockHit serves a READ from the block cache when present, using
// pooled buffers end to end: the frame is read into a pooled block
// buffer, the reply encoded into a pooled results buffer that the RPC
// server releases after framing (Call.ReplyPooled). The boolean
// reports whether the block was cached.
func (p *Proxy) serveBlockHit(c *sunrpc.Call, args *nfs3.ReadArgs, block uint64, tr *obs.Active, lookup, start time.Time) ([]byte, sunrpc.AcceptStat, bool) {
	buf := bufpool.Get(p.cfg.BlockCache.BlockSize())
	data, ok := p.cfg.BlockCache.GetInto(args.FH, block, buf)
	if !ok {
		bufpool.Put(buf)
		return nil, 0, false
	}
	tr.Span(obs.LayerBlockCache, "hit", lookup)
	p.stats.readHits.Add(1)
	p.maybePrefetch(args.FH, block)
	res, stat := p.cachedReadReply(c, args, data)
	bufpool.Put(buf)
	p.accountRead(c, args.FH, args.Offset, "block_hit", args.Count, start)
	return res, stat, true
}

// cachedReadReply serves a READ hit, trimming to the requested count
// and to the known file size. The reply is encoded into a pooled
// buffer released by the RPC server (ReplyPooled); blockData is only
// read before returning, so the caller may release it immediately.
func (p *Proxy) cachedReadReply(c *sunrpc.Call, args *nfs3.ReadArgs, blockData []byte) ([]byte, sunrpc.AcceptStat) {
	if p.degraded() {
		p.stats.degradedReads.Add(1)
	}
	data := blockData
	if uint64(len(data)) > uint64(args.Count) {
		data = data[:args.Count]
	}
	eof := len(blockData) < p.cfg.BlockCache.BlockSize()
	size, haveSize := p.sizeOf(args.FH)
	if haveSize {
		end := args.Offset + uint64(len(data))
		if args.Offset >= size {
			data = nil
			eof = true
		} else {
			if end > size {
				data = data[:size-args.Offset]
				end = size
			}
			eof = end >= size
		}
	}
	res := nfs3.ReadRes{
		Status: nfs3.OK,
		Count:  uint32(len(data)),
		EOF:    eof,
		Data:   data,
	}
	var attr nfs3.Fattr
	if haveSize {
		attr = nfs3.Fattr{Type: nfs3.TypeReg, Mode: 0644, Nlink: 1, Size: size, Used: size}
		res.Attr = &attr
	}
	out := res.AppendTo(bufpool.Get(nfs3.ReadResSize(len(data)))[:0])
	c.ReplyPooled = true
	return out, sunrpc.Success
}

// rangeIsZero reports whether [off, off+count) is covered by all-zero
// blocks of the meta-data map.
func rangeIsZero(m *meta.Meta, off uint64, count uint32) bool {
	if count == 0 {
		return false
	}
	bs := uint64(m.BlockSize)
	end := off + uint64(count)
	if end > m.FileSize {
		end = m.FileSize
	}
	if off >= end {
		return true // fully past EOF: trivially zero-satisfiable
	}
	for b := off / bs; b <= (end-1)/bs; b++ {
		if !m.IsZeroBlock(b) {
			return false
		}
	}
	return true
}

// zeroReply satisfies a read of all-zero blocks locally — the paper's
// zero filtering for memory-state files.
func (p *Proxy) zeroReply(args *nfs3.ReadArgs, m *meta.Meta) ([]byte, sunrpc.AcceptStat) {
	p.stats.zeroFiltered.Add(1)
	size := m.FileSize
	var data []byte
	eof := true
	if args.Offset < size {
		end := args.Offset + uint64(args.Count)
		if end > size {
			end = size
		}
		data = make([]byte, end-args.Offset)
		eof = end >= size
	}
	attr := &nfs3.Fattr{Type: nfs3.TypeReg, Mode: 0644, Nlink: 1, Size: size, Used: size}
	res := nfs3.ReadRes{Status: nfs3.OK, Attr: attr, Count: uint32(len(data)), EOF: eof, Data: data}
	return res.Encode(), sunrpc.Success
}

// readFromFileCache serves a READ from the whole-file cache.
func (p *Proxy) readFromFileCache(args *nfs3.ReadArgs) ([]byte, sunrpc.AcceptStat) {
	info, ok := p.pathOf(args.FH)
	if !ok {
		return nil, sunrpc.SystemErr
	}
	data, eof, err := p.cfg.FileCache.ReadAt(info.full, args.Offset, args.Count)
	if err != nil {
		res := nfs3.ReadRes{Status: nfs3.ErrIO}
		return res.Encode(), sunrpc.Success
	}
	p.stats.fileChanReads.Add(1)
	if p.degraded() {
		p.stats.degradedReads.Add(1)
	}
	var attr *nfs3.Fattr
	if sz, ok := p.cfg.FileCache.Size(info.full); ok {
		attr = &nfs3.Fattr{Type: nfs3.TypeReg, Mode: 0644, Nlink: 1, Size: sz, Used: sz}
	}
	res := nfs3.ReadRes{Status: nfs3.OK, Attr: attr, Count: uint32(len(data)), EOF: eof, Data: data}
	return res.Encode(), sunrpc.Success
}

func (p *Proxy) handleWrite(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	// Zero-copy parse: args.Data aliases the transport's pooled request
	// record, which stays valid until this handler returns. Every sink
	// below (file cache, bank write, journal append, upstream marshal)
	// copies the bytes before then; only the FH is retained, and
	// DecodeRefInto copies it.
	var args nfs3.WriteArgs
	if err := args.DecodeRefInto(c.Args); err != nil {
		return nil, sunrpc.GarbageArgs
	}
	start := time.Now()

	// Writes to a file resident in the file cache stay local; the
	// file-based channel uploads them at flush time.
	if p.cfg.FileCache != nil {
		if info, ok := p.pathOf(args.FH); ok && p.cfg.FileCache.Has(info.full) {
			if err := p.cfg.FileCache.WriteAt(info.full, args.Offset, args.Data); err != nil {
				return nil, sunrpc.SystemErr
			}
			p.bumpSize(args.FH, args.Offset+uint64(len(args.Data)))
			p.stats.writesAbsorbed.Add(1)
			p.acct.recordWrite(p.fileLabel(args.FH), p.clientLabel(c), len(args.Data))
			tr.Span(obs.LayerFileCache, "absorb", start)
			return p.absorbedWriteReply(c, &args), sunrpc.Success
		}
	}

	if p.cfg.BlockCache == nil || p.cfg.WritePolicy != cache.WriteBack {
		return p.writeThrough(c, &args, tr)
	}

	bs := uint64(p.cfg.BlockCache.BlockSize())
	if args.Offset%bs != 0 || uint64(len(args.Data)) > bs {
		// Unaligned: push dirty state upstream first, then forward.
		if err := p.cfg.BlockCache.WriteBackFile(args.FH); err != nil {
			return nil, sunrpc.SystemErr
		}
		return p.writeThrough(c, &args, tr)
	}

	block := args.Offset / bs
	merged, err := p.mergeBlock(args.FH, block, bs, args.Data)
	if err != nil {
		return p.writeThrough(c, &args, tr)
	}
	if err := p.cfg.BlockCache.Put(args.FH, block, merged, true); err != nil {
		return nil, sunrpc.SystemErr
	}
	p.bumpSize(args.FH, args.Offset+uint64(len(args.Data)))
	p.stats.writesAbsorbed.Add(1)
	file := p.fileLabel(args.FH)
	client := p.clientLabel(c)
	if p.cfg.Cachean != nil {
		p.cfg.Cachean.DemandData(client, args.FH, block, len(args.Data), true)
	}
	p.acct.recordWrite(file, client, len(args.Data))
	p.acct.blockDirtied(file, block, len(args.Data))
	tr.Span(obs.LayerBlockCache, "absorb", start)
	return p.absorbedWriteReply(c, &args), sunrpc.Success
}

// mergeBlock combines newly written data (always at the block's start,
// since callers check alignment) with any existing block content so the
// cached frame remains a faithful prefix of the block.
func (p *Proxy) mergeBlock(fh nfs3.FH, block, bs uint64, data []byte) ([]byte, error) {
	if uint64(len(data)) == bs {
		return data, nil
	}
	if existing, ok := p.cfg.BlockCache.Get(fh, block); ok {
		if len(existing) <= len(data) {
			return data, nil
		}
		merged := make([]byte, len(existing))
		copy(merged, existing)
		copy(merged, data)
		return merged, nil
	}
	size, known := p.sizeOf(fh)
	blockStart := block * bs
	if !known || size <= blockStart+uint64(len(data)) {
		// Writing the current tail of the file: the partial block is
		// the whole block content.
		return data, nil
	}
	// The block has bytes beyond the write that we don't hold:
	// read-modify-write through the backend. Failures come back
	// classified (backend.Error), so the caller's fallback treats
	// every backend identically.
	r, err := p.beRead(fh, blockStart, uint32(bs), nil, time.Time{})
	if err != nil {
		return nil, err
	}
	if len(r.Data) <= len(data) {
		return data, nil
	}
	merged := make([]byte, len(r.Data))
	copy(merged, r.Data)
	copy(merged, data)
	return merged, nil
}

// absorbedWriteReply fabricates the WRITE reply for data held by the
// write-back cache. The proxy reports FILE_SYNC: under the session
// consistency model the proxy is the authority for this data until the
// middleware flushes it. The reply is encoded into a pooled buffer
// released by the RPC server (ReplyPooled).
func (p *Proxy) absorbedWriteReply(c *sunrpc.Call, args *nfs3.WriteArgs) []byte {
	res := nfs3.WriteRes{
		Status:    nfs3.OK,
		Count:     uint32(len(args.Data)),
		Committed: nfs3.FileSync,
		Verf:      nfs3.WriteVerf,
	}
	var attr nfs3.Fattr
	if sz, ok := p.sizeOf(args.FH); ok {
		attr = nfs3.Fattr{Type: nfs3.TypeReg, Mode: 0644, Nlink: 1, Size: sz, Used: sz}
		res.Wcc.After = &attr
	}
	out := res.AppendTo(bufpool.Get(nfs3.WriteResSize)[:0])
	c.ReplyPooled = true
	return out
}

// writeThrough pushes a write upstream synchronously and keeps the
// block cache coherent. Caching proxies (and upstream-less ones) go
// through the backend; cache-less relays keep raw forwarding so the
// client's own credentials ride the call.
func (p *Proxy) writeThrough(c *sunrpc.Call, args *nfs3.WriteArgs, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	if !p.useBackendIO() {
		return p.relayWrite(c, args, tr)
	}
	p.stats.writesForwarded.Add(1)
	if p.cfg.Cachean != nil && p.cfg.BlockCache != nil {
		bs := uint64(p.cfg.BlockCache.BlockSize())
		p.cfg.Cachean.DemandData(p.clientLabel(c), args.FH, args.Offset/bs, len(args.Data), true)
	}
	p.acct.recordWrite(p.fileLabel(args.FH), p.clientLabel(c), len(args.Data))
	attr, err := p.beDemandWrite(args.FH, args.Offset, args.Data, tr, c.Deadline)
	if err != nil {
		return backendWriteError(err)
	}
	if attr != nil {
		p.rememberSize(args.FH, attr.Size)
	} else {
		p.bumpSize(args.FH, args.Offset+uint64(len(args.Data)))
	}
	if err := p.coherentAfterWrite(args); err != nil {
		return nil, sunrpc.SystemErr
	}
	return p.backendWriteReply(c, args, attr), sunrpc.Success
}

// relayWrite is the raw-forwarding write-through for cache-less relays.
func (p *Proxy) relayWrite(c *sunrpc.Call, args *nfs3.WriteArgs, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	res, stat := p.forward(c, tr)
	p.stats.writesForwarded.Add(1)
	p.acct.recordWrite(p.fileLabel(args.FH), p.clientLabel(c), len(args.Data))
	if stat != sunrpc.Success {
		return res, stat
	}
	r, err := nfs3.DecodeWriteRes(res)
	if err != nil || r.Status != nfs3.OK {
		return res, stat
	}
	if r.Wcc.After != nil {
		p.rememberSize(args.FH, r.Wcc.After.Size)
	}
	return res, stat
}

// coherentAfterWrite reconciles the block cache with a write that was
// just made durable upstream.
func (p *Proxy) coherentAfterWrite(args *nfs3.WriteArgs) error {
	if p.cfg.BlockCache == nil {
		return nil
	}
	bs := uint64(p.cfg.BlockCache.BlockSize())
	if p.cfg.BlockCache.Config().ReadOnly {
		// Shared read-only caches hold golden (immutable) data; a
		// write through this proxy only drops the stale frame.
		return p.cfg.BlockCache.InvalidateBlock(args.FH, args.Offset/bs)
	}
	if args.Offset%bs == 0 && uint64(len(args.Data)) == bs {
		return p.cfg.BlockCache.PutDedup(args.FH, args.Offset/bs, args.Data, false)
	}
	// Partial overlap: drop any stale frame.
	return p.cfg.BlockCache.InvalidateBlock(args.FH, args.Offset/bs)
}

// --- meta-data machinery ---

// metaFor returns the (lazily initialized) meta-data state for fh.
func (p *Proxy) metaFor(fh nfs3.FH) *metaState {
	key := fh.Key()
	p.mu.Lock()
	ms, ok := p.metas[key]
	if !ok {
		ms = &metaState{}
		p.metas[key] = ms
	}
	p.mu.Unlock()

	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.checked {
		return ms
	}
	ms.checked = true
	info, ok := p.pathOf(fh)
	if !ok || info.parent == "" || meta.IsMetaName(info.name) {
		return ms
	}
	obj, attr, err := p.beLookup(nfs3.FH(info.parent), meta.NameFor(info.name))
	if err != nil {
		return ms
	}
	size := attr.Size
	if size == 0 {
		size = 1 << 20
	}
	blob, err := p.readAllUpstream(obj, size)
	if err != nil {
		return ms
	}
	m, err := meta.Decode(blob)
	if err != nil {
		return ms
	}
	ms.m = m
	return ms
}

// readAllUpstream fetches an entire (small) file block by block
// through the backend.
func (p *Proxy) readAllUpstream(fh nfs3.FH, sizeHint uint64) ([]byte, error) {
	const chunk = 8192
	out := make([]byte, 0, sizeHint)
	var off uint64
	for {
		r, err := p.beRead(fh, off, chunk, nil, time.Time{})
		if err != nil {
			return nil, err
		}
		out = append(out, r.Data...)
		off += uint64(len(r.Data))
		if r.EOF || len(r.Data) == 0 {
			return out, nil
		}
		if off > 64<<20 {
			return nil, fmt.Errorf("proxy: meta-data file unreasonably large")
		}
	}
}

// ensureFetched runs the file-based data channel once per file:
// compress on the server, remote copy, uncompress into the file cache.
func (p *Proxy) ensureFetched(fh nfs3.FH, ms *metaState) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.fetched {
		return nil
	}
	info, ok := p.pathOf(fh)
	if !ok {
		return fmt.Errorf("proxy: no path known for %s", fh)
	}
	if p.cfg.FileCache.Has(info.full) {
		// A previous session (or clone) already pulled this file.
		ms.fetched = true
		if sz, ok := p.cfg.FileCache.Size(info.full); ok {
			p.bumpSize(fh, sz)
		}
		return nil
	}
	conn, err := p.cfg.FileChanDial()
	if err != nil {
		return err
	}
	defer conn.Close()
	data, err := filechan.Fetch(conn, info.full, ms.m.WantsCompression())
	if err != nil {
		return err
	}
	if err := p.cfg.FileCache.Store(info.full, data); err != nil {
		return err
	}
	p.rememberSize(fh, uint64(len(data)))
	p.stats.fileChanFetch.Add(1)
	ms.fetched = true
	return nil
}

// --- middleware-driven consistency (paper §3.2.1) ---

// WriteBack propagates all dirty state upstream while keeping it
// cached. The gvfsproxy daemon binds this to SIGUSR1.
func (p *Proxy) WriteBack() error {
	return p.writeBackReason(TriggerWriteBack)
}

// writeBackReason is WriteBack with the audit-log trigger reason
// attributed to whichever path asked (middleware signal, idle-session
// writer, post-recovery replay).
func (p *Proxy) writeBackReason(reason string) error {
	p.acct.flushTriggered(reason)
	if p.cfg.BlockCache != nil {
		if err := p.cfg.BlockCache.WriteBackAll(); err != nil {
			return err
		}
	}
	return p.flushFileCache()
}

// Flush propagates all dirty state and invalidates every cache, ending
// the session's ownership of the data. The gvfsproxy daemon binds this
// to SIGUSR2.
func (p *Proxy) Flush() error {
	p.acct.flushTriggered(TriggerFlush)
	if p.cfg.BlockCache != nil {
		if err := p.cfg.BlockCache.Flush(); err != nil {
			return err
		}
	}
	if err := p.flushFileCache(); err != nil {
		return err
	}
	if p.cfg.FileCache != nil {
		p.cfg.FileCache.InvalidateAll()
	}
	p.mu.Lock()
	p.metas = make(map[string]*metaState)
	p.mu.Unlock()
	if p.ra != nil {
		p.ra.reset()
	}
	return nil
}

func (p *Proxy) flushFileCache() error {
	if p.cfg.FileCache == nil || p.cfg.FileChanDial == nil {
		return nil
	}
	return p.cfg.FileCache.Flush(func(path string, data []byte) error {
		conn, err := p.cfg.FileChanDial()
		if err != nil {
			return err
		}
		defer conn.Close()
		return filechan.Put(conn, path, data, true)
	})
}
