// Package proxy implements the GVFS user-level file system proxy — the
// paper's core contribution. A proxy receives NFS RPC calls (acting as
// a server) and satisfies them from its caches or forwards them to the
// next hop (acting as a client), which may be another proxy or the end
// NFS server. Proxies therefore cascade into multi-level hierarchies:
// client-side proxy with disk cache, optional LAN second-level proxy,
// and server-side proxy performing identity mapping.
//
// Per the paper, the proxy provides:
//
//   - a client-side, proxy-managed disk cache at NFS RPC granularity
//     with write-through or write-back policies (§3.2.1);
//   - meta-data handling: zero-block filtering for memory-state files
//     and the compress/remote-copy/uncompress/read-locally file channel
//     feeding a file-based cache (§3.2.2);
//   - cross-domain identity mapping via logical user accounts at the
//     server side;
//   - middleware-driven consistency: WriteBack and Flush entry points
//     that the gvfsproxy daemon binds to O/S signals.
//
// The proxy is transparent: unmodified NFS clients and servers sit at
// the ends of the chain, and applications (VM monitors) are unaware of
// the interposition.
package proxy

import (
	"bytes"
	"fmt"
	"net"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/auth"
	"gvfs/internal/backend"
	"gvfs/internal/backend/nfs3be"
	"gvfs/internal/cache"
	"gvfs/internal/cachean"
	"gvfs/internal/filecache"
	"gvfs/internal/meta"
	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/qos"
	"gvfs/internal/sunrpc"
	"gvfs/internal/xdr"
)

// Config assembles a proxy. At least one of Backend and Upstream must
// be set; everything else enables an optional paper mechanism.
type Config struct {
	// Backend is the upstream provider the proxy's data path (READ,
	// WRITE, write-back, read-ahead, meta-data) speaks to. Leaving it
	// nil with Upstream set wraps Upstream in the NFSv3 backend
	// (internal/backend/nfs3be) automatically, preserving the classic
	// proxy-over-RPC arrangement.
	Backend backend.Backend

	// Upstream is the RPC transport to the next hop. It remains the
	// control-plane relay — LOOKUP, MOUNT and directory operations are
	// forwarded verbatim so each client's own credentials cross the
	// hop. Nil routes control calls to the backend's namespace instead
	// (see backend.Namespacer; the objstore arrangement).
	Upstream nfs3.Caller

	// Mapper, when set, rewrites AUTH_UNIX credentials to short-lived
	// local identities (server-side proxy role).
	Mapper *auth.Mapper

	// BlockCache, when set, caches blocks at NFS RPC granularity.
	BlockCache *cache.Cache

	// WritePolicy selects write-through or write-back handling of
	// WRITE calls when BlockCache is set.
	WritePolicy cache.Policy

	// FileCache and FileChanDial together enable meta-data-driven
	// whole-file transfers: FileChanDial opens a connection to the
	// image server's file-channel service.
	FileCache    *filecache.Cache
	FileChanDial func() (net.Conn, error)

	// DisableMeta turns off meta-data lookups even when a file cache
	// is configured (for ablation experiments).
	DisableMeta bool

	// ReadAhead, when positive, prefetches up to this many blocks into
	// the disk cache after a sequential access run is detected (the
	// paper's future-work pre-fetching direction). Requires BlockCache.
	ReadAhead int

	// ReadAheadPipeline issues each prefetch window's READs pipelined
	// on the upstream connection — the whole window outstanding at
	// once, replies multiplexed by XID — instead of one goroutine and
	// one synchronous call per block. Over a WAN the window then costs
	// roughly one round trip instead of (window / concurrency) trips.
	// Takes effect only when Upstream implements sunrpc.Starter.
	ReadAheadPipeline bool

	// DegradedReads enables serve-from-cache degraded mode: while the
	// upstream circuit breaker is open, cached reads keep working and
	// LOOKUP/GETATTR are synthesized from shadow state. Setting it (or
	// either knob below) activates upstream health tracking.
	DegradedReads bool

	// FailureThreshold is the number of consecutive upstream transport
	// failures that opens the circuit breaker (default 3).
	FailureThreshold int

	// ProbeInterval is the recovery-probe period while the breaker is
	// open (default 1s).
	ProbeInterval time.Duration

	// Metrics is the registry this proxy's instruments live in. Nil
	// creates a private registry; either way it is readable through
	// MetricsRegistry and Snapshot. Sharing one registry across the
	// components of a node yields one unified stats surface.
	Metrics *obs.Registry

	// Tracer, when set, enables request tracing: each handled call is
	// recorded into the tracer's bounded ring with per-layer spans,
	// and the trace context is propagated upstream in the RPC verifier
	// (see sunrpc.TraceContext) so cascaded proxies that also trace
	// record the same trace ID at increasing hop counts.
	Tracer *obs.Tracer

	// Logger, when set, receives structured events (breaker
	// transitions, write-back replays). The proxy derives a "proxy"
	// component logger from it; nil disables event logging.
	Logger *obs.Logger

	// Flight, when set, promotes interesting calls — slower than the
	// recorder's per-proc threshold, failed, or handled while the
	// breaker was open — into the flight recorder ring, and attaches a
	// matching exemplar to the call's latency histogram bucket.
	// Requires Tracer; without one there is no span tree to promote.
	Flight *obs.FlightRecorder

	// StatuszTopN bounds every ranking in the /statusz accounting
	// document (default DefaultTopN). AuditRing bounds the write-back
	// audit event ring (default DefaultAuditRing).
	StatuszTopN int
	AuditRing   int

	// AcctMaxEntries caps the per-file and per-client accounting
	// tables (default DefaultAcctEntries); AcctIdleTTL is how long an
	// entry may sit untouched before a cap-hit evicts it (default
	// DefaultAcctTTL).
	AcctMaxEntries int
	AcctIdleTTL    time.Duration

	// QoS, when set, runs every incoming call through per-client
	// admission control, fair-share scheduling and brownout
	// degradation. The caller owns the scheduler's lifecycle (the
	// stack layer builds and closes it alongside the proxy).
	QoS *qos.Scheduler

	// Cachean, when set, receives proxy-level demand taps (tenant
	// identity from the AUTH_UNIX credential, op-class tagging) and is
	// surfaced through /statusz, /cachez and the gvfs_cachean_*
	// metrics. The caller owns its lifecycle and normally also installs
	// it as the block cache's AccessTap (the stack layer does both).
	Cachean *cachean.Analyzer

	// CallBudget is the default per-call deadline applied to calls
	// that arrive without a propagated budget in the trace verifier.
	// The remaining budget is re-propagated upstream on every hop and
	// caps upstream retransmission. Zero applies no default deadline.
	CallBudget time.Duration
}

type pathInfo struct {
	parent string // parent fh key ("" for root)
	name   string
	full   string // full path from export root
}

// metaState tracks per-file meta-data handling.
type metaState struct {
	mu      sync.Mutex
	checked bool
	m       *meta.Meta // nil after check = no meta-data
	fetched bool       // whole file resident in the file cache
}

// Proxy is a GVFS proxy. It implements sunrpc.Handler for both the NFS
// and MOUNT programs; register it for both on a sunrpc.Server.
type Proxy struct {
	cfg Config

	mu    sync.RWMutex
	paths map[string]pathInfo // fh key -> location
	sizes map[string]uint64   // fh key -> best-known size
	metas map[string]*metaState

	credMu   sync.RWMutex
	lastCred sunrpc.OpaqueAuth // most recent client credential

	labelMu sync.RWMutex
	labels  map[string]string // cred-body bytes -> accounting label

	stats *counters   // instruments in the unified obs registry
	acct  *accounting // per-file / per-client tables + write-back audit
	log   *obs.Logger // component-scoped event logger (nil-safe)
	qos   *qos.Scheduler

	ra   *readAhead                // nil unless Config.ReadAhead > 0
	idle atomic.Pointer[idleState] // nil unless StartIdleWriteBack was called

	health    *health // nil unless health tracking is enabled
	done      chan struct{}
	closeOnce sync.Once
}

// New returns a Proxy for cfg. If a write-back block cache is
// supplied, its write-back function is wired to backend WRITE calls.
func New(cfg Config) (*Proxy, error) {
	if cfg.Backend == nil && cfg.Upstream == nil {
		return nil, fmt.Errorf("proxy: Config.Backend or Config.Upstream is required")
	}
	if cfg.Backend == nil {
		cfg.Backend = nfs3be.New(cfg.Upstream)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Proxy{
		cfg:   cfg,
		paths:  make(map[string]pathInfo),
		sizes:  make(map[string]uint64),
		metas:  make(map[string]*metaState),
		labels: make(map[string]string),
		stats: newCounters(reg),
		acct:  newAccounting(cfg.StatuszTopN, cfg.AuditRing, cfg.AcctMaxEntries, cfg.AcctIdleTTL),
		log:   cfg.Logger.Named("proxy"),
		qos:   cfg.QoS,
		done:  make(chan struct{}),
	}
	// Proxy-initiated backend calls (write-back, RMW, meta-data,
	// read-ahead) carry the session credential through the same mapper
	// the relay path uses, so identity mapping stays uniform.
	if cc, ok := cfg.Backend.(backend.CredentialCarrier); ok {
		cc.SetCredSource(func() (uint32, []byte, error) {
			cred, err := p.upstreamCred(p.proxyCred())
			if err != nil {
				return 0, nil, err
			}
			return cred.Flavor, cred.Body, nil
		})
	}
	p.registerBridges(reg)
	if cfg.Cachean != nil {
		// Render raw fh keys in /cachez through the proxy's path map.
		cfg.Cachean.SetFileLabeler(func(key string) string {
			return p.fileLabel(nfs3.FH(key))
		})
	}
	if cfg.ReadAhead > 0 && cfg.BlockCache != nil {
		p.ra = newReadAhead()
	}
	if cfg.DegradedReads || cfg.FailureThreshold > 0 || cfg.ProbeInterval > 0 {
		p.health = newHealth(p, cfg.FailureThreshold, cfg.ProbeInterval)
	}
	if cfg.BlockCache != nil && !cfg.BlockCache.Config().ReadOnly {
		cfg.BlockCache.SetWriteBackFunc(func(fh nfs3.FH, off uint64, data []byte) error {
			return p.upstreamWrite(fh, off, data)
		})
	}
	return p, nil
}

// upstreamCred maps the caller's credential for the next hop.
func (p *Proxy) upstreamCred(cred sunrpc.OpaqueAuth) (sunrpc.OpaqueAuth, error) {
	if p.cfg.Mapper == nil {
		return cred, nil
	}
	out, _, err := p.cfg.Mapper.Rewrite(cred)
	return out, err
}

// sessionCred is the credential used for proxy-initiated calls
// (write-back, meta-data reads). The proxy remembers the most recent
// client credential for this purpose.
var defaultCred = sunrpc.UnixCred{MachineName: "gvfs-proxy", UID: 0, GID: 0}.Encode()

func (p *Proxy) proxyCred() sunrpc.OpaqueAuth {
	p.credMu.RLock()
	defer p.credMu.RUnlock()
	if p.lastCred.Body != nil || p.lastCred.Flavor != 0 {
		return p.lastCred
	}
	return defaultCred
}

// rememberCred records the most recent client credential. Nearly every
// call repeats the previous credential, so the fast path is a
// read-lock comparison; the write lock is taken only on change. The
// body is copied: the incoming slice aliases the transport's pooled
// request record and must not be retained past the call.
func (p *Proxy) rememberCred(cred sunrpc.OpaqueAuth) {
	p.credMu.RLock()
	same := p.lastCred.Flavor == cred.Flavor && bytes.Equal(p.lastCred.Body, cred.Body)
	p.credMu.RUnlock()
	if same {
		return
	}
	p.credMu.Lock()
	p.lastCred = sunrpc.OpaqueAuth{Flavor: cred.Flavor, Body: append([]byte(nil), cred.Body...)}
	p.credMu.Unlock()
}

// HandleCall implements sunrpc.Handler. Every call is timed into the
// per-procedure latency histogram; when tracing is enabled the call's
// trace (continued from a downstream hop, or originated here) is
// committed to the ring on return.
func (p *Proxy) HandleCall(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	start := time.Now()
	p.stats.calls.Add(1)
	p.rememberCred(c.Cred)
	// Per-client op-mix accounting is optional detail brownout sheds.
	if !p.brownout() {
		p.acct.recordOp(p.clientLabel(c), procLabel(c.Prog, c.Proc))
		if p.cfg.Cachean != nil && c.Prog == nfs3.Program {
			// Metadata op classes; READ/WRITE demand is tapped with its
			// block identity on the io.go paths instead.
			switch c.Proc {
			case nfs3.ProcRead, nfs3.ProcWrite:
			case nfs3.ProcGetattr:
				p.cfg.Cachean.DemandMeta(cachean.ClassGetattr)
			case nfs3.ProcLookup:
				p.cfg.Cachean.DemandMeta(cachean.ClassLookup)
			default:
				p.cfg.Cachean.DemandMeta(cachean.ClassOtherMeta)
			}
		}
	}
	if idle := p.idle.Load(); idle != nil {
		idle.touch()
	}
	degradedAtEntry := p.degraded()
	p.setDeadline(c, start)
	release, shedRes, shedStat, admitted := p.admit(c)
	if !admitted {
		p.stats.observeRPC(c.Prog, c.Proc, time.Since(start))
		return shedRes, shedStat
	}
	defer release()
	tr := p.startTrace(c)
	var res []byte
	stat := sunrpc.ProgUnavail
	switch c.Prog {
	case nfs3.MountProgram:
		res, stat = p.handleMount(c, tr)
	case nfs3.Program:
		res, stat = p.handleNFS(c, tr)
	}
	d := time.Since(start)
	p.stats.observeRPC(c.Prog, c.Proc, d)
	trace := tr.Finish()
	p.maybePromote(c, trace, d, stat, degradedAtEntry)
	return res, stat
}

// maybePromote moves an interesting call's span tree into the flight
// recorder and links the call's latency bucket to it with an exemplar.
// Exemplars are set ONLY here, so every exemplar trace ID exposed at
// /metrics is guaranteed to resolve against /flightrec (until the
// recording ring overwrites it).
func (p *Proxy) maybePromote(c *sunrpc.Call, trace obs.Trace, d time.Duration, stat sunrpc.AcceptStat, degraded bool) {
	f := p.cfg.Flight
	if f == nil || trace.ID == 0 {
		return
	}
	var reason string
	switch {
	case stat != sunrpc.Success:
		reason = obs.ReasonError
	case degraded:
		reason = obs.ReasonBreakerOpen
	case f.ShouldRecord(trace.Proc, d):
		reason = obs.ReasonSlow
	default:
		return
	}
	f.Record(trace, reason)
	p.stats.setExemplar(c.Prog, c.Proc, d, trace.ID)
	p.log.Debug("call promoted to flight recorder",
		"proc", trace.Proc, "trace_id", obs.TraceIDString(trace.ID),
		"reason", reason, "dur", d)
}

func (p *Proxy) handleMount(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	res, stat := p.forward(c, tr)
	if stat != sunrpc.Success || c.Proc != mountd.ProcMnt {
		return res, stat
	}
	// Learn the export root's path so fh->path resolution can work.
	d := xdr.NewDecoder(bytes.NewReader(c.Args))
	dirpath := d.String()
	if d.Err() != nil {
		return res, stat
	}
	rd := xdr.NewDecoder(bytes.NewReader(res))
	if rd.Uint32() == mountd.OK {
		fh := nfs3.FH(rd.Opaque())
		if rd.Err() == nil {
			p.mu.Lock()
			p.paths[fh.Key()] = pathInfo{full: path.Clean(dirpath)}
			p.mu.Unlock()
		}
	}
	return res, stat
}

func (p *Proxy) handleNFS(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	switch c.Proc {
	case nfs3.ProcLookup:
		return p.handleLookup(c, tr)
	case nfs3.ProcGetattr:
		return p.handleGetattr(c, tr)
	case nfs3.ProcRead:
		return p.handleRead(c, tr)
	case nfs3.ProcWrite:
		return p.handleWrite(c, tr)
	case nfs3.ProcCommit:
		return p.handleCommit(c, tr)
	case nfs3.ProcSetattr:
		return p.handleSetattr(c, tr)
	case nfs3.ProcCreate, nfs3.ProcMkdir, nfs3.ProcSymlink:
		return p.handleNewObject(c, tr)
	case nfs3.ProcRemove, nfs3.ProcRename:
		return p.handleNamespaceChange(c, tr)
	}
	return p.forward(c, tr)
}

// errUpstreamDown is returned by proxy-initiated calls that fail fast
// while the circuit breaker is open.
var errUpstreamDown = fmt.Errorf("proxy: upstream unavailable (circuit breaker open)")

// forward relays a call upstream unchanged except for credentials.
// While the circuit breaker is open the call fails fast: degraded mode
// guarantees bounded error latency instead of hanging on a dead WAN.
// Without an RPC upstream the call is synthesized from the backend's
// namespace instead (local.go).
func (p *Proxy) forward(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	if p.cfg.Upstream == nil {
		return p.localNamespace(c)
	}
	cred, err := p.upstreamCred(c.Cred)
	if err != nil {
		return nil, sunrpc.SystemErr
	}
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return nil, sunrpc.SystemErr
	}
	p.stats.forwarded.Add(1)
	upStart := time.Now()
	res, err := p.upstreamCall(c.Prog, c.Vers, c.Proc, cred, c.Args, tr, c.Deadline)
	tr.Span(obs.LayerUpstream, callOutcome(err), upStart)
	p.observeUpstream(err)
	if err != nil {
		if rpcErr, ok := err.(*sunrpc.RPCError); ok {
			return nil, rpcErr.Stat
		}
		return nil, sunrpc.SystemErr
	}
	return res, sunrpc.Success
}

// upstreamWrite propagates one block to the next hop with durable
// (FileSync) stability; used for write-back of dirty cache frames. A
// failure surfaces as a classified backend error, so journal rescue
// and keeps-dirty handling behave identically across backends.
func (p *Proxy) upstreamWrite(fh nfs3.FH, off uint64, data []byte) error {
	if _, err := p.beWrite(fh, off, data); err != nil {
		return err
	}
	if p.cfg.BlockCache != nil {
		// A coalesced write-back covers several blocks; close each
		// block's dirty-lifecycle entry.
		bs := uint64(p.cfg.BlockCache.BlockSize())
		label := p.fileLabel(fh)
		for rem, b := len(data), off/bs; rem > 0; b++ {
			n := int(bs)
			if rem < n {
				n = rem
			}
			p.acct.writeCommitted(label, b, n)
			rem -= n
		}
	}
	return nil
}

// --- path and size tracking ---

func (p *Proxy) rememberPath(obj nfs3.FH, dir nfs3.FH, name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dirInfo, ok := p.paths[dir.Key()]
	if !ok {
		return
	}
	p.paths[obj.Key()] = pathInfo{
		parent: dir.Key(),
		name:   name,
		full:   path.Join(dirInfo.full, name),
	}
}

func (p *Proxy) pathOf(fh nfs3.FH) (pathInfo, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	info, ok := p.paths[fh.Key()]
	return info, ok
}

func (p *Proxy) rememberSize(fh nfs3.FH, size uint64) {
	p.mu.Lock()
	p.sizes[fh.Key()] = size
	p.mu.Unlock()
}

// bumpSize raises the shadow size to at least size.
func (p *Proxy) bumpSize(fh nfs3.FH, size uint64) {
	p.mu.Lock()
	if size > p.sizes[fh.Key()] {
		p.sizes[fh.Key()] = size
	}
	p.mu.Unlock()
}

func (p *Proxy) sizeOf(fh nfs3.FH) (uint64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	sz, ok := p.sizes[fh.Key()]
	return sz, ok
}

// --- procedure handlers ---

func (p *Proxy) handleLookup(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	args, err := nfs3.DecodeLookupArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	res, stat := p.forward(c, tr)
	if stat != sunrpc.Success {
		// Degraded mode: resolve names the session has already seen from
		// the proxy's own path map so cached files stay reachable.
		if p.degraded() && p.cfg.DegradedReads {
			if fh, ok := p.childFH(args.Dir, args.Name); ok {
				if attr := p.synthesizedAttr(fh); attr != nil {
					r := nfs3.LookupRes{Status: nfs3.OK, Object: fh, ObjAttr: attr}
					return r.Encode(), sunrpc.Success
				}
			}
		}
		return res, stat
	}
	r, err := nfs3.DecodeLookupRes(res)
	if err != nil || r.Status != nfs3.OK {
		return res, stat
	}
	p.rememberPath(r.Object, args.Dir, args.Name)
	if r.ObjAttr != nil {
		// Patch the reported size if we hold absorbed writes beyond it.
		if shadow, ok := p.sizeOf(r.Object); ok && shadow > r.ObjAttr.Size {
			r.ObjAttr.Size = shadow
			r.ObjAttr.Used = shadow
			return r.Encode(), sunrpc.Success
		}
		p.rememberSize(r.Object, r.ObjAttr.Size)
	}
	return res, stat
}

func (p *Proxy) handleGetattr(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	args, err := nfs3.DecodeGetattrArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	res, stat := p.forward(c, tr)
	if stat != sunrpc.Success {
		// Upstream unreachable: during a session the proxy owns the
		// file's dirty state, so attributes it can synthesize from its
		// shadow size remain authoritative (session consistency).
		if attr := p.synthesizedAttr(args.FH); attr != nil {
			r := nfs3.GetattrRes{Status: nfs3.OK, Attr: *attr}
			return r.Encode(), sunrpc.Success
		}
		return res, stat
	}
	r, err := nfs3.DecodeGetattrRes(res)
	if err != nil || r.Status != nfs3.OK {
		return res, stat
	}
	if shadow, ok := p.sizeOf(args.FH); ok && shadow > r.Attr.Size {
		r.Attr.Size = shadow
		r.Attr.Used = shadow
		return r.Encode(), sunrpc.Success
	}
	p.rememberSize(args.FH, r.Attr.Size)
	return res, stat
}

func (p *Proxy) handleNewObject(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	// CREATE, MKDIR and SYMLINK all start with diropargs-compatible
	// (dir, name) and reply with post_op_fh3 + post_op_attr.
	d := xdr.NewDecoder(bytes.NewReader(c.Args))
	dir := nfs3.DecodeFH(d)
	name := d.String()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	res, stat := p.forward(c, tr)
	if stat != sunrpc.Success {
		return res, stat
	}
	rd := xdr.NewDecoder(bytes.NewReader(res))
	if nfs3.Status(rd.Uint32()) == nfs3.OK {
		obj := nfs3.DecodePostOpFH(rd)
		attr := nfs3.DecodePostOpAttr(rd)
		if rd.Err() == nil && obj != nil {
			p.rememberPath(obj, dir, name)
			if attr != nil {
				p.rememberSize(obj, attr.Size)
			}
		}
	}
	return res, stat
}

func (p *Proxy) handleNamespaceChange(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	// REMOVE and RENAME invalidate cached state for the affected file.
	d := xdr.NewDecoder(bytes.NewReader(c.Args))
	dir := nfs3.DecodeFH(d)
	name := d.String()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	if fh, ok := p.childFH(dir, name); ok {
		if p.cfg.BlockCache != nil {
			if err := p.cfg.BlockCache.InvalidateFile(fh); err != nil {
				return nil, sunrpc.SystemErr
			}
		}
		if info, ok := p.pathOf(fh); ok && p.cfg.FileCache != nil {
			p.cfg.FileCache.Invalidate(info.full)
		}
		p.mu.Lock()
		delete(p.sizes, fh.Key())
		delete(p.metas, fh.Key())
		p.mu.Unlock()
		if p.ra != nil {
			p.ra.forget(fh)
		}
	}
	return p.forward(c, tr)
}

// childFH finds the handle previously observed for dir/name.
func (p *Proxy) childFH(dir nfs3.FH, name string) (nfs3.FH, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	dirKey := dir.Key()
	for fhKey, info := range p.paths {
		if info.parent == dirKey && info.name == name {
			return nfs3.FH(fhKey), true
		}
	}
	return nil, false
}

func (p *Proxy) handleSetattr(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	args, err := nfs3.DecodeSetattrArgs(c.Args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	if args.Attr.Size != nil && p.cfg.BlockCache != nil {
		// Truncation: push dirty state out, then drop cached blocks.
		if err := p.cfg.BlockCache.InvalidateFile(args.FH); err != nil {
			return nil, sunrpc.SystemErr
		}
		if p.ra != nil {
			p.ra.forget(args.FH)
		}
	}
	res, stat := p.forward(c, tr)
	if stat == sunrpc.Success && args.Attr.Size != nil {
		p.rememberSize(args.FH, *args.Attr.Size)
	}
	return res, stat
}

func (p *Proxy) handleCommit(c *sunrpc.Call, tr *obs.Active) ([]byte, sunrpc.AcceptStat) {
	if p.cfg.BlockCache != nil && p.cfg.WritePolicy == cache.WriteBack {
		// Under session consistency the proxy owns dirty data until
		// the middleware says otherwise; acknowledge the commit.
		args, err := nfs3.DecodeCommitArgs(c.Args)
		if err != nil {
			return nil, sunrpc.GarbageArgs
		}
		var buf bytes.Buffer
		e := xdr.NewEncoder(&buf)
		e.Uint32(uint32(nfs3.OK))
		wcc := nfs3.WccData{}
		if sz, ok := p.sizeOf(args.FH); ok {
			attr := nfs3.Fattr{Type: nfs3.TypeReg, Size: sz, Used: sz, Nlink: 1}
			wcc.After = &attr
		}
		wcc.Encode(e)
		e.FixedOpaque(nfs3.WriteVerf[:])
		return buf.Bytes(), sunrpc.Success
	}
	return p.forward(c, tr)
}
