package proxy

// QoS wiring tests: shed replies on the NFS wire, admission at
// HandleCall, deadline stamping/propagation through the trace
// verifier, and the brownout miss-deferral path.

import (
	"sync"
	"testing"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
	"gvfs/internal/qos"
	"gvfs/internal/sunrpc"
)

func TestShedReplyWireFormat(t *testing.T) {
	read := &sunrpc.Call{Prog: nfs3.Program, Vers: nfs3.Version, Proc: nfs3.ProcRead}
	res, stat := shedReply(read)
	if stat != sunrpc.Success {
		t.Fatalf("READ shed stat = %v, want Success carrying NFS status", stat)
	}
	r, err := nfs3.DecodeReadRes(res)
	if err != nil || r.Status != nfs3.ErrJukebox {
		t.Fatalf("READ shed reply = %+v, %v; want NFS3ERR_JUKEBOX", r, err)
	}

	write := &sunrpc.Call{Prog: nfs3.Program, Vers: nfs3.Version, Proc: nfs3.ProcWrite}
	res, stat = shedReply(write)
	w, err := nfs3.DecodeWriteRes(res)
	if stat != sunrpc.Success || err != nil || w.Status != nfs3.ErrJukebox {
		t.Fatalf("WRITE shed reply = %+v, %v, %v", w, err, stat)
	}

	// Procedures without a retriable encoding (and foreign programs)
	// fall back to an RPC-level system error.
	null := &sunrpc.Call{Prog: nfs3.Program, Vers: nfs3.Version, Proc: nfs3.ProcNull}
	if _, stat := shedReply(null); stat != sunrpc.SystemErr {
		t.Errorf("NULL shed stat = %v, want SystemErr", stat)
	}
	mnt := &sunrpc.Call{Prog: nfs3.MountProgram, Vers: nfs3.MountVersion, Proc: 1}
	if _, stat := shedReply(mnt); stat != sunrpc.SystemErr {
		t.Errorf("MOUNT shed stat = %v, want SystemErr", stat)
	}
}

// blockingCaller parks every upstream call until released.
type blockingCaller struct {
	entered chan struct{} // signaled once per call that reaches upstream
	release chan struct{}
}

func (b *blockingCaller) Call(prog, vers, proc uint32, cred sunrpc.OpaqueAuth, args []byte) ([]byte, error) {
	b.entered <- struct{}{}
	<-b.release
	return (&nfs3.ReadRes{Status: nfs3.ErrServerFault}).Encode(), nil
}

func readCall(count uint32) *sunrpc.Call {
	args := nfs3.ReadArgs{FH: nfs3.FH("qos-test-fh"), Count: count}
	return &sunrpc.Call{
		Prog: nfs3.Program, Vers: nfs3.Version, Proc: nfs3.ProcRead,
		Args: args.Encode(),
	}
}

func TestHandleCallShedsWhenClientQueueFull(t *testing.T) {
	sched := qos.New(qos.Config{MaxConcurrent: 1, PerClientQueue: 1})
	defer sched.Close()
	up := &blockingCaller{entered: make(chan struct{}, 4), release: make(chan struct{})}
	p, err := New(Config{Upstream: up, QoS: sched})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	var wg sync.WaitGroup
	wg.Add(2)
	// First call takes the only concurrency slot and parks upstream.
	go func() {
		defer wg.Done()
		p.HandleCall(readCall(4096))
	}()
	<-up.entered
	// Second call fills the client's queue of one.
	go func() {
		defer wg.Done()
		p.HandleCall(readCall(4096))
	}()
	waitUntil(t, "second call queued", func() bool {
		for _, ts := range sched.Snapshot() {
			if ts.Queued == 1 {
				return true
			}
		}
		return false
	})

	// Third call must bounce off the queue bound with JUKEBOX.
	res, stat := p.HandleCall(readCall(4096))
	if stat != sunrpc.Success {
		t.Fatalf("shed stat = %v", stat)
	}
	r, err := nfs3.DecodeReadRes(res)
	if err != nil || r.Status != nfs3.ErrJukebox {
		t.Fatalf("overflow call reply = %+v, %v; want NFS3ERR_JUKEBOX", r, err)
	}

	close(up.release)
	wg.Wait()
}

func TestHandleCallShedsExpiredDeadline(t *testing.T) {
	sched := qos.New(qos.Config{})
	defer sched.Close()
	p, err := New(Config{Upstream: stubCaller{}, QoS: sched})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	c := readCall(4096)
	c.Deadline = time.Now().Add(-time.Millisecond)
	res, stat := p.HandleCall(c)
	if stat != sunrpc.Success {
		t.Fatalf("expired-call stat = %v", stat)
	}
	r, err := nfs3.DecodeReadRes(res)
	if err != nil || r.Status != nfs3.ErrJukebox {
		t.Fatalf("expired call reply = %+v, %v; want NFS3ERR_JUKEBOX", r, err)
	}
}

func TestSetDeadlineFromVerifierBudget(t *testing.T) {
	p, err := New(Config{Upstream: stubCaller{}, CallBudget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	now := time.Now()

	// A propagated budget wins over the local default.
	c := readCall(4096)
	tc := sunrpc.TraceContext{ID: 7, Hop: 1, BudgetMs: 250}
	c.Verf = tc.EncodeVerf()
	p.setDeadline(c, now)
	if got := c.Deadline.Sub(now); got != 250*time.Millisecond {
		t.Errorf("verifier budget deadline = %v, want 250ms", got)
	}

	// Without a budget word the configured CallBudget applies.
	c2 := readCall(4096)
	p.setDeadline(c2, now)
	if got := c2.Deadline.Sub(now); got != time.Minute {
		t.Errorf("default budget deadline = %v, want 1m", got)
	}
}

// verfRecorder captures the verifier and deadline of upstream calls.
type verfRecorder struct {
	mu       sync.Mutex
	verf     sunrpc.OpaqueAuth
	deadline time.Time
}

func (v *verfRecorder) Call(prog, vers, proc uint32, cred sunrpc.OpaqueAuth, args []byte) ([]byte, error) {
	return nil, nil
}

func (v *verfRecorder) CallVerf(prog, vers, proc uint32, cred, verf sunrpc.OpaqueAuth, args []byte) ([]byte, error) {
	v.mu.Lock()
	v.verf = verf
	v.mu.Unlock()
	return nil, nil
}

func (v *verfRecorder) CallVerfDeadline(prog, vers, proc uint32, cred, verf sunrpc.OpaqueAuth, args []byte, deadline time.Time) ([]byte, error) {
	v.mu.Lock()
	v.verf, v.deadline = verf, deadline
	v.mu.Unlock()
	return nil, nil
}

func TestUpstreamCallPropagatesRemainingBudget(t *testing.T) {
	up := &verfRecorder{}
	p, err := New(Config{Upstream: up})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	deadline := time.Now().Add(2 * time.Second)
	if _, err := p.upstreamCall(nfs3.Program, nfs3.Version, nfs3.ProcNull,
		sunrpc.OpaqueAuth{}, nil, nil, deadline); err != nil {
		t.Fatal(err)
	}
	up.mu.Lock()
	verf, got := up.verf, up.deadline
	up.mu.Unlock()
	if !got.Equal(deadline) {
		t.Errorf("upstream deadline = %v, want %v (DeadlineVerfCaller path)", got, deadline)
	}
	tc, ok := sunrpc.DecodeTraceVerf(verf)
	if !ok {
		t.Fatal("upstream call carried no trace verifier")
	}
	if tc.BudgetMs == 0 || tc.BudgetMs > 2000 {
		t.Errorf("propagated budget = %dms, want (0, 2000]", tc.BudgetMs)
	}

	// A zero deadline must not invent a budget.
	up2 := &verfRecorder{}
	p2, err := New(Config{Upstream: up2})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Shutdown()
	if _, err := p2.upstreamCall(nfs3.Program, nfs3.Version, nfs3.ProcNull,
		sunrpc.OpaqueAuth{}, nil, nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	up2.mu.Lock()
	verf2 := up2.verf
	up2.mu.Unlock()
	if len(verf2.Body) != 0 {
		t.Error("zero deadline produced a verifier on an untraced call")
	}
}

func TestBrownoutDefersCacheMisses(t *testing.T) {
	// The EWMA only sees nonzero samples from *queued* admissions, so
	// park one call on the single concurrency slot, let another age in
	// the queue well past the 100µs threshold, then release.
	sched := qos.New(qos.Config{MaxConcurrent: 1, BrownoutEnter: 100 * time.Microsecond})
	defer sched.Close()
	bc, err := cache.New(cache.Config{
		Dir: t.TempDir(), Banks: 2, SetsPerBank: 4, Assoc: 2, BlockSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	up := &blockingCaller{entered: make(chan struct{}, 4), release: make(chan struct{})}
	p, err := New(Config{Upstream: up, QoS: sched, BlockCache: bc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.HandleCall(readCall(4096))
	}()
	<-up.entered
	go func() {
		defer wg.Done()
		p.HandleCall(readCall(4096))
	}()
	waitUntil(t, "second call queued", func() bool {
		for _, ts := range sched.Snapshot() {
			if ts.Queued == 1 {
				return true
			}
		}
		return false
	})
	time.Sleep(10 * time.Millisecond) // queue delay >> BrownoutEnter
	close(up.release)
	wg.Wait()
	if !p.brownout() {
		t.Fatal("sustained queue delay did not trip brownout")
	}
	missesBefore := p.stats.readMisses.Value()

	// A cold read is a cache miss: brownout must defer it with
	// JUKEBOX instead of spending an upstream round trip.
	res, stat := p.HandleCall(readCall(4096))
	if stat != sunrpc.Success {
		t.Fatalf("brownout miss stat = %v", stat)
	}
	r, derr := nfs3.DecodeReadRes(res)
	if derr != nil || r.Status != nfs3.ErrJukebox {
		t.Fatalf("brownout miss reply = %+v, %v; want NFS3ERR_JUKEBOX", r, derr)
	}
	if p.stats.brownoutShed.Value() == 0 {
		t.Error("brownout shed counter not incremented")
	}
	if p.stats.readMisses.Value() != missesBefore {
		t.Error("deferred miss still counted as a forwarded miss")
	}
}
