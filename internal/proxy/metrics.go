package proxy

import (
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/backend/replbe"
	"gvfs/internal/cachean"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/sunrpc"
)

// counters holds the proxy's instruments in the unified obs registry.
// The hot-path fields are plain obs.Counters — one atomic add each,
// the same cost as the free-standing atomic block they replaced — and
// the per-procedure / per-outcome histogram children are resolved once
// here so HandleCall never takes the registry lock.
type counters struct {
	registry *obs.Registry

	calls            *obs.Counter
	forwarded        *obs.Counter
	readHits         *obs.Counter
	readMisses       *obs.Counter
	zeroFiltered     *obs.Counter
	fileChanReads    *obs.Counter
	fileChanFetch    *obs.Counter
	writesAbsorbed   *obs.Counter
	writesForwarded  *obs.Counter
	prefetched       *obs.Counter
	breakerOpens     *obs.Counter
	breakerFastFails *obs.Counter
	probes           *obs.Counter
	replays          *obs.Counter
	degradedReads    *obs.Counter
	journalRecovered *obs.Counter
	brownoutShed     *obs.Counter

	// nfsDur[proc] is the handling-latency histogram for that NFS
	// procedure; mountDur and otherDur catch MOUNT and unknown calls.
	nfsDur   [nfs3.ProcCommit + 1]*obs.Histogram
	mountDur *obs.Histogram
	otherDur *obs.Histogram

	// readDur breaks READ latency down by which cache layer answered.
	readDur map[string]*obs.Histogram
}

// readOutcomes are the label values of gvfs_proxy_read_duration_seconds.
var readOutcomes = []string{
	"block_hit", "block_miss", "zero_filter", "file_cache", "forwarded", "error",
}

func newCounters(reg *obs.Registry) *counters {
	c := &counters{registry: reg}
	c.calls = reg.Counter("gvfs_proxy_calls_total", "RPC calls handled by the proxy.")
	c.forwarded = reg.Counter("gvfs_proxy_forwarded_total", "Calls relayed to the upstream hop.")
	c.readHits = reg.Counter("gvfs_proxy_read_hits_total", "Block reads served from the disk cache.")
	c.readMisses = reg.Counter("gvfs_proxy_read_misses_total", "Block reads that went upstream.")
	c.zeroFiltered = reg.Counter("gvfs_proxy_zero_filtered_total", "Reads satisfied from the zero-block map.")
	c.fileChanReads = reg.Counter("gvfs_proxy_filechan_reads_total", "Reads served from the file cache.")
	c.fileChanFetch = reg.Counter("gvfs_proxy_filechan_fetches_total", "Whole-file channel transfers performed.")
	c.writesAbsorbed = reg.Counter("gvfs_proxy_writes_absorbed_total", "Writes held by write-back caching.")
	c.writesForwarded = reg.Counter("gvfs_proxy_writes_forwarded_total", "Writes relayed upstream.")
	c.prefetched = reg.Counter("gvfs_proxy_prefetched_total", "Blocks pulled in by sequential read-ahead.")
	c.breakerOpens = reg.Counter("gvfs_proxy_breaker_opens_total", "Times the upstream circuit breaker tripped open.")
	c.breakerFastFails = reg.Counter("gvfs_proxy_breaker_fastfails_total", "Calls failed fast while the breaker was open.")
	c.probes = reg.Counter("gvfs_proxy_probes_total", "Recovery probes sent while the breaker was open.")
	c.replays = reg.Counter("gvfs_proxy_replays_total", "Post-recovery write-back replays triggered.")
	c.degradedReads = reg.Counter("gvfs_proxy_degraded_reads_total", "Reads served from cache while degraded.")
	c.journalRecovered = reg.Counter("gvfs_proxy_journal_recovered_total", "Dirty blocks rebuilt from the journal after a crash.")
	c.brownoutShed = reg.Counter("gvfs_qos_brownout_shed_total", "Cache misses deferred with NFS3ERR_JUKEBOX during brownout.")

	rpcDur := reg.HistogramVec("gvfs_proxy_rpc_duration_seconds",
		"Proxy call handling latency by NFS procedure.", nil, "proc")
	for proc := range c.nfsDur {
		c.nfsDur[proc] = rpcDur.With(nfs3.ProcName(uint32(proc)))
	}
	c.mountDur = rpcDur.With("MOUNT")
	c.otherDur = rpcDur.With("OTHER")

	readDur := reg.HistogramVec("gvfs_proxy_read_duration_seconds",
		"READ handling latency by which cache layer answered.", nil, "outcome")
	c.readDur = make(map[string]*obs.Histogram, len(readOutcomes))
	for _, o := range readOutcomes {
		c.readDur[o] = readDur.With(o)
	}
	return c
}

// rpcHist resolves the per-procedure latency histogram for one call.
func (c *counters) rpcHist(prog, proc uint32) *obs.Histogram {
	switch prog {
	case nfs3.Program:
		if int(proc) < len(c.nfsDur) {
			return c.nfsDur[proc]
		}
		return c.otherDur
	case nfs3.MountProgram:
		return c.mountDur
	}
	return c.otherDur
}

// observeRPC records one handled call into the per-procedure histogram.
func (c *counters) observeRPC(prog, proc uint32, d time.Duration) {
	c.rpcHist(prog, proc).Observe(d)
}

// setExemplar links the latency bucket an observation of d fell into
// to a flight-recorded trace.
func (c *counters) setExemplar(prog, proc uint32, d time.Duration, traceID uint64) {
	c.rpcHist(prog, proc).SetExemplar(d, traceID)
}

// observeRead records one READ into the per-outcome histogram.
func (c *counters) observeRead(outcome string, start time.Time) {
	if h, ok := c.readDur[outcome]; ok {
		h.ObserveSince(start)
	}
}

// registerBridges surfaces the subsystems that keep their own internal
// counters — the lock-striped block cache and the fault-tolerant RPC
// client — in the registry via collection-time callbacks, so their
// fast paths stay untouched.
func (p *Proxy) registerBridges(reg *obs.Registry) {
	reg.CounterFunc("gvfs_proxy_accounting_evictions_total",
		"Entries evicted from the bounded per-file/per-client accounting tables.",
		func() uint64 { return p.acct.evictions.Load() })
	if bc := p.cfg.BlockCache; bc != nil {
		reg.CounterFunc("gvfs_blockcache_hits_total", "Block cache hits.",
			func() uint64 { return bc.Stats().Hits })
		reg.CounterFunc("gvfs_blockcache_misses_total", "Block cache misses.",
			func() uint64 { return bc.Stats().Misses })
		reg.CounterFunc("gvfs_blockcache_insertions_total", "Frames inserted into the block cache.",
			func() uint64 { return bc.Stats().Insertions })
		reg.CounterFunc("gvfs_blockcache_evictions_total", "Frames evicted from the block cache.",
			func() uint64 { return bc.Stats().Evictions })
		reg.CounterFunc("gvfs_blockcache_writebacks_total", "Dirty frames propagated upstream.",
			func() uint64 { return bc.Stats().WriteBacks })
		reg.GaugeFunc("gvfs_blockcache_dirty_frames", "Dirty frames currently held.",
			func() float64 { return float64(bc.DirtyCount()) })
		reg.CounterFunc("gvfs_blockcache_checksum_errors_total", "Frame reads failing CRC32C verification.",
			func() uint64 { return bc.Stats().ChecksumErrors })
		if bc.JournalEnabled() {
			reg.CounterFunc("gvfs_journal_appends_total", "Intent records appended to the dirty-block journal.",
				func() uint64 { return bc.JournalStats().Appends })
			reg.CounterFunc("gvfs_journal_syncs_total", "Journal fsyncs (group commit batches many appends into one).",
				func() uint64 { return bc.JournalStats().Syncs })
			reg.CounterFunc("gvfs_journal_commits_total", "Commit records journaled after successful write-back.",
				func() uint64 { return bc.JournalStats().Commits })
			reg.CounterFunc("gvfs_journal_checkpoints_total", "Journal truncations after the live set drained.",
				func() uint64 { return bc.JournalStats().Checkpoints })
			reg.CounterFunc("gvfs_journal_restores_total", "Blocks rebuilt from journal data during recovery.",
				func() uint64 { return bc.JournalStats().Restores })
			reg.GaugeFunc("gvfs_journal_live_blocks", "Uncommitted blocks currently in the journal.",
				func() float64 { return float64(bc.JournalStats().Live) })
			reg.GaugeFunc("gvfs_journal_size_bytes", "Current journal file size.",
				func() float64 { return float64(bc.JournalStats().SizeBytes) })
		}
	}
	if bc := p.cfg.BlockCache; bc != nil && bc.DedupEnabled() {
		reg.GaugeFunc("gvfs_dedup_entries", "Distinct contents tracked by the dedup table.",
			func() float64 { return float64(bc.DedupStats().Entries) })
		reg.GaugeFunc("gvfs_dedup_refs", "File-block identities bound to deduplicated contents.",
			func() float64 { return float64(bc.DedupStats().Refs) })
		reg.CounterFunc("gvfs_dedup_hits_total", "Reads served through a dedup alias or content-hash hint.",
			func() uint64 { return bc.DedupStats().Hits })
		reg.CounterFunc("gvfs_dedup_alias_drops_total", "Stale dedup mappings discarded lazily.",
			func() uint64 { return bc.DedupStats().AliasDrops })
	}
	if an := p.cfg.Cachean; an != nil {
		reg.GaugeFunc("gvfs_cachean_hit_ratio",
			"Observed block-cache hit ratio (alias hits included).",
			an.HitRatio)
		pred := reg.GaugeVec("gvfs_cachean_predicted_hit_ratio",
			"Ghost-cache predicted hit ratio at a multiple of current capacity.", "scale")
		for _, s := range cachean.Scales {
			s := s
			pred.WithFunc(func() float64 { return an.PredictedHitRatio(s) }, cachean.ScaleLabel(s))
		}
		reg.GaugeFunc("gvfs_cachean_working_set_bytes",
			"Estimated working-set size over the sliding window (scaled from the sample).",
			func() float64 { return float64(an.WorkingSetBytes()) })
		reg.CounterFunc("gvfs_cachean_sampled_refs_total",
			"Cache references admitted by the spatial sampler.",
			an.SampledRefs)
		reg.CounterFunc("gvfs_cachean_dropped_events_total",
			"Sampled events dropped because the analytics queue was full.",
			an.DroppedEvents)
		reg.GaugeFunc("gvfs_cachean_sampler_busy_seconds",
			"Cumulative CPU time spent in the analytics consumer goroutine.",
			func() float64 { return float64(an.BusyNs()) / 1e9 })
	}
	if ts, ok := p.cfg.Backend.(backend.TransportStatser); ok {
		reg.CounterFunc("gvfs_rpc_retries_total", "Upstream RPC retransmissions.",
			func() uint64 { return ts.TransportStats().Retries })
		reg.CounterFunc("gvfs_rpc_reconnects_total", "Upstream transport reconnects.",
			func() uint64 { return ts.TransportStats().Reconnects })
		reg.CounterFunc("gvfs_rpc_timeouts_total", "Upstream per-call deadline expirations.",
			func() uint64 { return ts.TransportStats().Timeouts })
	}
	if rb, ok := p.cfg.Backend.(*replbe.Backend); ok {
		up := reg.GaugeVec("gvfs_backend_replica_up",
			"Replica health: 1 healthy, 0 down.", "replica")
		ewma := reg.GaugeVec("gvfs_backend_replica_ewma_latency_seconds",
			"EWMA op latency per replica.", "replica")
		ops := reg.CounterVec("gvfs_backend_replica_ops_total",
			"Operations issued per replica.", "replica")
		errs := reg.CounterVec("gvfs_backend_replica_errors_total",
			"Failed operations per replica.", "replica")
		for i := 0; i < rb.ReplicaCount(); i++ {
			i := i
			name := rb.ReplicaName(i)
			up.WithFunc(func() float64 { return rb.ReplicaUp(i) }, name)
			ewma.WithFunc(func() float64 { return rb.ReplicaEWMASeconds(i) }, name)
			ops.WithFunc(func() uint64 { return rb.ReplicaOps(i) }, name)
			errs.WithFunc(func() uint64 { return rb.ReplicaErrors(i) }, name)
		}
		reg.CounterFunc("gvfs_backend_replica_failovers_total",
			"Operations re-routed to another replica after a failover-class error.",
			rb.Failovers)
		reg.CounterFunc("gvfs_backend_replica_hedges_total",
			"Hedged reads fired after the latency-quantile delay.",
			rb.HedgesFired)
		reg.CounterFunc("gvfs_backend_replica_hedge_wins_total",
			"Hedged reads where the second replica answered first.",
			rb.HedgesWon)
		reg.CounterFunc("gvfs_backend_replica_scrub_divergent_total",
			"Divergent blocks detected by the background scrub.",
			rb.ScrubDivergent)
		reg.CounterFunc("gvfs_backend_replica_scrub_repaired_total",
			"Divergent blocks rewritten from a good replica.",
			rb.ScrubRepaired)
	}
}

// MetricsRegistry returns the registry this proxy emits into — the
// unified stats surface. Pass one registry to several components (or
// read this one) and Snapshot() sees them all.
func (p *Proxy) MetricsRegistry() *obs.Registry { return p.stats.registry }

// Tracer returns the proxy's trace ring (nil when tracing is off).
func (p *Proxy) Tracer() *obs.Tracer { return p.cfg.Tracer }

// Flight returns the proxy's flight recorder (nil when disabled).
func (p *Proxy) Flight() *obs.FlightRecorder { return p.cfg.Flight }

// Snapshot reads every instrument the proxy and its bridged subsystems
// publish. This replaces the disjoint Stats surfaces.
func (p *Proxy) Snapshot() obs.Snapshot { return p.stats.registry.Snapshot() }

// startTrace begins (or continues) the trace for an incoming call.
// A call arriving with a trace-context verifier is a downstream hop's
// trace: reuse its ID and hop count. Otherwise this proxy is hop 0 and
// allocates the ID. Returns nil (a no-op Active) when tracing is off.
func (p *Proxy) startTrace(c *sunrpc.Call) *obs.Active {
	t := p.cfg.Tracer
	if t == nil {
		return nil
	}
	proc := procLabel(c.Prog, c.Proc)
	// ID 0 marks a budget-only verifier (deadline propagation without
	// tracing): not a trace to continue.
	if tc, ok := sunrpc.DecodeTraceVerf(c.Verf); ok && tc.ID != 0 {
		return t.Start(tc.ID, tc.Hop, proc)
	}
	return t.Start(t.NewID(), 0, proc)
}

func procLabel(prog, proc uint32) string {
	switch prog {
	case nfs3.Program:
		return nfs3.ProcName(proc)
	case nfs3.MountProgram:
		return "MOUNT"
	}
	return "OTHER"
}

// upstreamCall issues one upstream RPC, attaching the trace context
// and/or the remaining deadline budget as a verifier extension when
// the transport can carry them (see sunrpc.TraceContext). When a
// deadline is set and the transport supports it, retransmission is
// capped at the deadline too.
func (p *Proxy) upstreamCall(prog, vers, proc uint32, cred sunrpc.OpaqueAuth, args []byte, tr *obs.Active, deadline time.Time) ([]byte, error) {
	var tc sunrpc.TraceContext
	haveVerf := false
	if tr != nil {
		tc.ID, tc.Hop = tr.ID(), tr.Hop()+1
		haveVerf = true
	}
	if budget := remainingBudgetMs(deadline); budget > 0 {
		tc.BudgetMs = budget
		haveVerf = true
	}
	if haveVerf {
		if !deadline.IsZero() {
			if dc, ok := p.cfg.Upstream.(sunrpc.DeadlineVerfCaller); ok {
				return dc.CallVerfDeadline(prog, vers, proc, cred, tc.EncodeVerf(), args, deadline)
			}
		}
		if vc, ok := p.cfg.Upstream.(sunrpc.VerfCaller); ok {
			return vc.CallVerf(prog, vers, proc, cred, tc.EncodeVerf(), args)
		}
	}
	return p.cfg.Upstream.Call(prog, vers, proc, cred, args)
}

// callOutcome labels an upstream span.
func callOutcome(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}
