package proxy

import (
	"fmt"
	"testing"
	"time"
)

func TestAccountingTablesAndRankings(t *testing.T) {
	a := newAccounting(2, 8, 0, 0)
	// Three files so the top-2 bound is exercised.
	a.recordRead("/a", "c1/uid=1", "block_hit", 100, false)
	a.recordRead("/a", "c1/uid=1", "block_hit", 100, false)
	a.recordRead("/a", "c1/uid=1", "block_miss", 100, false)
	a.recordRead("/b", "c2/uid=2", "zero_filter", 4096, false)
	a.recordRead("/c", "c1/uid=1", "forwarded", 10, false)
	a.recordWrite("/b", "c2/uid=2", 8192)
	a.recordOp("c1/uid=1", "READ")
	a.recordOp("c2/uid=2", "WRITE")

	doc := a.snapshot(false)
	if doc.FilesTracked != 3 {
		t.Errorf("FilesTracked = %d, want 3", doc.FilesTracked)
	}
	for name, rows := range doc.Files {
		if len(rows) > 2 {
			t.Errorf("ranking %q has %d rows, want <= 2", name, len(rows))
		}
	}
	reads := doc.Files["reads"]
	if len(reads) == 0 || reads[0].File != "/a" {
		t.Fatalf("top reads = %+v, want /a first", reads)
	}
	if got := reads[0].HitRatio; got < 0.66 || got > 0.67 {
		t.Errorf("hit ratio = %v, want 2/3", got)
	}
	zero := doc.Files["zero_savings"]
	if len(zero) == 0 || zero[0].File != "/b" || zero[0].ZeroSavedB != 4096 {
		t.Errorf("zero_savings ranking wrong: %+v", zero)
	}
	writes := doc.Files["writes"]
	if writes[0].File != "/b" || writes[0].WriteBytes != 8192 {
		t.Errorf("writes ranking wrong: %+v", writes)
	}
	if len(doc.Clients) != 2 {
		t.Fatalf("clients = %+v, want 2", doc.Clients)
	}
	c1 := doc.Clients[0]
	if c1.Client != "c1/uid=1" || c1.Ops["READ"] != 1 || c1.ReadBytes != 310 {
		t.Errorf("client c1 wrong: %+v", c1)
	}
}

func TestAccountingDegradedAttribution(t *testing.T) {
	a := newAccounting(4, 8, 0, 0)
	a.recordRead("/img", "compute/uid=500", "block_hit", 8192, true)
	doc := a.snapshot(true)
	if !doc.Degraded {
		t.Error("snapshot not marked degraded")
	}
	rows := doc.Files["reads"]
	if len(rows) != 1 || rows[0].DegradedReads != 1 {
		t.Fatalf("degraded read not attributed to file: %+v", rows)
	}
	if doc.Clients[0].DegradedReads != 1 {
		t.Errorf("degraded read not attributed to client: %+v", doc.Clients[0])
	}
}

func TestAuditLifecycle(t *testing.T) {
	a := newAccounting(4, 16, 0, 0)
	a.blockDirtied("/disk", 3, 8192)
	time.Sleep(5 * time.Millisecond)
	// Re-dirty keeps the original timestamp.
	a.blockDirtied("/disk", 3, 8192)
	a.flushTriggered(TriggerWriteBack)
	a.writeCommitted("/disk", 3, 8192)

	doc := a.snapshot(false)
	ev := doc.Audit.Events
	if len(ev) != 4 {
		t.Fatalf("got %d audit events, want 4: %+v", len(ev), ev)
	}
	if ev[0].Kind != AuditDirty || ev[2].Kind != AuditTrigger || ev[3].Kind != AuditCommit {
		t.Fatalf("event order wrong: %+v", ev)
	}
	if ev[2].Reason != TriggerWriteBack || ev[2].Pending != 1 {
		t.Errorf("trigger event wrong: %+v", ev[2])
	}
	if ev[3].AgeNs < (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("commit age %dns, want >= 5ms (re-dirty must keep the first timestamp)", ev[3].AgeNs)
	}
	if doc.Audit.DirtyBlocks != 0 {
		t.Errorf("dirty blocks = %d after commit, want 0", doc.Audit.DirtyBlocks)
	}
}

func TestAuditRingBounded(t *testing.T) {
	a := newAccounting(4, 4, 0, 0)
	for i := 0; i < 10; i++ {
		a.flushTriggered(fmt.Sprintf("r%d", i))
	}
	doc := a.snapshot(false)
	if len(doc.Audit.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(doc.Audit.Events))
	}
	if doc.Audit.TotalEvents != 10 {
		t.Errorf("TotalEvents = %d, want 10", doc.Audit.TotalEvents)
	}
	if doc.Audit.Events[0].Reason != "r6" || doc.Audit.Events[3].Reason != "r9" {
		t.Errorf("oldest-first order wrong: %+v", doc.Audit.Events)
	}
}

func TestDirtyAgeTracking(t *testing.T) {
	a := newAccounting(4, 8, 0, 0)
	a.blockDirtied("/x", 0, 1)
	time.Sleep(2 * time.Millisecond)
	doc := a.snapshot(false)
	if doc.Audit.DirtyBlocks != 1 {
		t.Fatalf("dirty blocks = %d, want 1", doc.Audit.DirtyBlocks)
	}
	if doc.Audit.OldestDirtyAgeNs < (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("oldest dirty age = %dns, want >= 2ms", doc.Audit.OldestDirtyAgeNs)
	}
}
