package proxy

import (
	"fmt"
	"testing"

	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
)

// Regression tests for the read-ahead state leak: per-file profiles
// used to accumulate forever (one per file handle ever read) and
// survived cache flushes.

func fhN(i int) nfs3.FH {
	return nfs3.FH(fmt.Sprintf("fh-%06d", i))
}

func TestReadAheadProfileMapCapped(t *testing.T) {
	ra := newReadAhead()
	for i := 0; i < raMaxFiles+100; i++ {
		ra.observe(fhN(i), 0, 4, 1)
	}
	if n := ra.profileCount(); n > raMaxFiles {
		t.Fatalf("profile map grew to %d entries, cap is %d", n, raMaxFiles)
	}
	// The newest profile survives; the oldest was evicted.
	ra.mu.Lock()
	_, newest := ra.files[fhN(raMaxFiles+99).Key()]
	_, oldest := ra.files[fhN(0).Key()]
	ra.mu.Unlock()
	if !newest {
		t.Error("most recent profile was evicted")
	}
	if oldest {
		t.Error("least recent profile survived past the cap")
	}
}

func TestReadAheadResetClearsProfilesNotInflight(t *testing.T) {
	ra := newReadAhead()
	for i := 0; i < 10; i++ {
		ra.observe(fhN(i), 0, 4, 1)
	}
	// An in-flight prefetch that a demand read could be waiting on.
	id := cache.BlockID{FH: fhN(0).Key(), Block: 7}
	if !ra.begin(id) {
		t.Fatal("begin refused with nothing in flight")
	}

	ra.reset()
	if n := ra.profileCount(); n != 0 {
		t.Fatalf("reset left %d profiles", n)
	}
	// Reset must NOT clear in-flight tracking: waiters block on the
	// entry's channel and only finish() may remove and close it.
	ra.mu.Lock()
	ch, ok := ra.inflight[id]
	ra.mu.Unlock()
	if !ok {
		t.Fatal("reset cleared in-flight tracking; waiters would be orphaned")
	}
	ra.finish(id)
	select {
	case <-ch:
	default:
		t.Error("finish did not close the in-flight channel")
	}
	if ra.waitFor(fhN(0), 7) {
		t.Error("finished prefetch still registered as in flight")
	}
}

func TestFlushResetsReadAheadProfiles(t *testing.T) {
	bc, err := cache.New(cache.Config{
		Dir: t.TempDir(), Banks: 2, SetsPerBank: 4, Assoc: 2, BlockSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	p, err := New(Config{
		Upstream:   stubCaller{},
		BlockCache: bc,
		ReadAhead:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.ra.observe(fhN(i), 0, 4, 1)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := p.ra.profileCount(); n != 0 {
		t.Fatalf("flush left %d read-ahead profiles", n)
	}
}

type stubCaller struct{}

func (stubCaller) Call(prog, vers, proc uint32, cred sunrpc.OpaqueAuth, args []byte) ([]byte, error) {
	return nil, fmt.Errorf("stub upstream")
}
