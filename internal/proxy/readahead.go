package proxy

import (
	"sync"
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
)

// Read-ahead implements one of the paper's stated future-work
// directions: "dynamic profiling of application data access behavior
// to support pre-fetching ... in a selective manner". The proxy
// profiles per-file access at RPC granularity; once it observes a
// sequential run of block reads it prefetches a window of following
// blocks into the disk cache concurrently, overlapping many WAN round
// trips. Demand reads that race an in-flight prefetch of the same
// block wait for it instead of duplicating the transfer.

// raMinStreak is how many sequential reads trigger prefetching.
const raMinStreak = 2

// raConcurrency bounds simultaneous prefetch RPCs per proxy.
const raConcurrency = 16

// raMaxFiles caps the per-file profile map. A proxy serving a large
// namespace would otherwise accumulate one profile per file handle it
// ever saw read; past the cap, the least-recently-observed profile is
// evicted (losing only a prefetch hint, never correctness).
const raMaxFiles = 1024

// raState is the per-file sequential-access profile.
type raState struct {
	lastBlock uint64
	seen      bool
	streak    int
	nextWant  uint64 // first block not yet scheduled for prefetch
	touched   uint64 // ra.tick value of the last observation
}

type readAhead struct {
	mu    sync.Mutex
	files map[string]*raState
	tick  uint64 // observation counter ordering profile recency
	// inflight tracks running prefetches. Entries are self-cleaning —
	// finish() always deletes and closes — so reset() must NOT clear
	// it: waiters in waitFor block on the entry's channel.
	inflight map[cache.BlockID]chan struct{}
	sem      chan struct{}
}

func newReadAhead() *readAhead {
	return &readAhead{
		files:    make(map[string]*raState),
		inflight: make(map[cache.BlockID]chan struct{}),
		sem:      make(chan struct{}, raConcurrency),
	}
}

// observe records a read of block and returns the window of blocks to
// prefetch now (nil when the pattern is not sequential enough).
// minBatch adds scheduling hysteresis: once the watermark is ahead of
// the reader, extension of the window is deferred until at least
// minBatch blocks are due, so prefetches go out as batches instead of
// degenerating to one block per demand read in steady state. Batching
// is what lets a pipelined transport amortize a whole burst into one
// round trip; per-block transports pass 1 for the old behavior.
func (ra *readAhead) observe(fh nfs3.FH, block uint64, window, minBatch int) []uint64 {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	st, ok := ra.files[fh.Key()]
	if !ok {
		if len(ra.files) >= raMaxFiles {
			ra.evictOldestLocked()
		}
		st = &raState{}
		ra.files[fh.Key()] = st
	}
	ra.tick++
	st.touched = ra.tick
	switch {
	case st.seen && block == st.lastBlock+1:
		st.streak++
	case st.seen && block == st.lastBlock:
		// repeated read of the same block: neutral
	default:
		st.streak = 0
		st.nextWant = 0
	}
	st.lastBlock = block
	st.seen = true
	if st.streak < raMinStreak {
		return nil
	}
	start := block + 1
	if st.nextWant > start {
		start = st.nextWant
	}
	end := block + 1 + uint64(window)
	if start >= end {
		return nil
	}
	if minBatch > 1 && start > block+1 && end-start < uint64(minBatch) {
		// Steady state with runway still ahead of the reader: hold off
		// until a full batch is due. nextWant is left alone, so the
		// deferred blocks are picked up by a later observation.
		return nil
	}
	var out []uint64
	for b := start; b < end; b++ {
		out = append(out, b)
	}
	st.nextWant = end
	return out
}

// begin registers an in-flight prefetch for id, returning false if one
// is already running.
func (ra *readAhead) begin(id cache.BlockID) bool {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if _, busy := ra.inflight[id]; busy {
		return false
	}
	ra.inflight[id] = make(chan struct{})
	return true
}

// finish completes the in-flight prefetch for id, waking waiters.
func (ra *readAhead) finish(id cache.BlockID) {
	ra.mu.Lock()
	ch := ra.inflight[id]
	delete(ra.inflight, id)
	ra.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// waitFor blocks until any in-flight prefetch of (fh, block) finishes.
// It reports whether there was one to wait for.
func (ra *readAhead) waitFor(fh nfs3.FH, block uint64) bool {
	id := cache.BlockID{FH: fh.Key(), Block: block}
	ra.mu.Lock()
	ch, ok := ra.inflight[id]
	ra.mu.Unlock()
	if !ok {
		return false
	}
	<-ch
	return true
}

// forget drops profiling state for a file (remove/rename/invalidate).
func (ra *readAhead) forget(fh nfs3.FH) {
	ra.mu.Lock()
	delete(ra.files, fh.Key())
	ra.mu.Unlock()
}

// reset drops every per-file profile (cache flush). In-flight prefetch
// tracking is left alone: those entries are removed by finish() and
// waiters depend on their channels being closed.
func (ra *readAhead) reset() {
	ra.mu.Lock()
	ra.files = make(map[string]*raState)
	ra.mu.Unlock()
}

// evictOldestLocked removes the least-recently-observed profile; the
// caller holds ra.mu.
func (ra *readAhead) evictOldestLocked() {
	var oldestKey string
	var oldest uint64 = ^uint64(0)
	for k, st := range ra.files {
		if st.touched < oldest {
			oldest = st.touched
			oldestKey = k
		}
	}
	if oldestKey != "" {
		delete(ra.files, oldestKey)
	}
}

// profileCount reports how many per-file profiles are resident (tests).
func (ra *readAhead) profileCount() int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return len(ra.files)
}

// maybePrefetch schedules asynchronous prefetches of the blocks after
// block when the file's access pattern warrants it.
func (p *Proxy) maybePrefetch(fh nfs3.FH, block uint64) {
	if p.ra == nil {
		return
	}
	// Optional work is the first thing brownout sheds: prefetching
	// spends WAN round trips the overloaded proxy cannot spare.
	if p.brownout() {
		return
	}
	pipelined := false
	var br backend.BatchReader
	if p.cfg.ReadAheadPipeline {
		if b, ok := p.cfg.Backend.(backend.BatchReader); ok && p.cfg.Backend.Caps().Batched {
			pipelined, br = true, b
		}
	}
	minBatch := 1
	if pipelined {
		if minBatch = p.cfg.ReadAhead / 2; minBatch < 1 {
			minBatch = 1
		}
	}
	targets := p.ra.observe(fh, block, p.cfg.ReadAhead, minBatch)
	if len(targets) == 0 {
		return
	}
	size, sizeKnown := p.sizeOf(fh)
	bs := uint64(p.cfg.BlockCache.BlockSize())
	eligible := targets[:0]
	for _, b := range targets {
		if sizeKnown && b*bs >= size {
			break
		}
		if cached, _ := p.cfg.BlockCache.Peek(fh, b); cached {
			continue
		}
		if !p.ra.begin(cache.BlockID{FH: fh.Key(), Block: b}) {
			continue
		}
		eligible = append(eligible, b)
	}
	if len(eligible) == 0 {
		return
	}

	if pipelined {
		// One goroutine, one sem slot, the whole batch outstanding
		// on the wire at once. Never block the demand path on
		// prefetch capacity.
		select {
		case p.ra.sem <- struct{}{}:
		default:
			for _, b := range eligible {
				p.ra.finish(cache.BlockID{FH: fh.Key(), Block: b})
			}
			p.ra.rewind(fh, eligible[0])
			return
		}
		go p.prefetchPipelined(br, fh, append([]uint64(nil), eligible...), bs)
		return
	}

	// Call-per-block: one goroutine and one synchronous RPC per target.
	for i, b := range eligible {
		id := cache.BlockID{FH: fh.Key(), Block: b}
		// Never block the demand path on prefetch capacity.
		select {
		case p.ra.sem <- struct{}{}:
		default:
			for _, rb := range eligible[i:] {
				p.ra.finish(cache.BlockID{FH: fh.Key(), Block: rb})
			}
			p.ra.rewind(fh, b)
			return
		}
		go func(b uint64, id cache.BlockID) {
			defer func() {
				<-p.ra.sem
				p.ra.finish(id)
			}()
			p.prefetchBlock(fh, b, bs)
		}(b, id)
	}
}

// prefetchPipelined pulls a window of blocks through the backend's
// batch reader: every request is transmitted back to back, then the
// replies are collected in order (backend/nfs3be pipelines them on the
// upstream connection). Over a WAN the window costs one round trip
// plus serialization instead of one round trip per block. Every block
// in blocks has a registered in-flight entry; this function owns
// finishing all of them.
func (p *Proxy) prefetchPipelined(br backend.BatchReader, fh nfs3.FH, blocks []uint64, bs uint64) {
	defer func() { <-p.ra.sem }()
	if p.degraded() {
		for _, b := range blocks {
			p.ra.finish(cache.BlockID{FH: fh.Key(), Block: b})
		}
		return
	}
	offs := make([]uint64, len(blocks))
	for i, b := range blocks {
		offs[i] = b * bs
	}
	finished := make([]bool, len(blocks))
	br.ReadBatch(backend.FileID(fh), offs, uint32(bs), backend.CallOpts{},
		func(i int, r backend.ReadResult, err error) {
			p.observeUpstream(err)
			if err == nil {
				p.storePrefetched(fh, blocks[i], r)
			}
			p.ra.finish(cache.BlockID{FH: fh.Key(), Block: blocks[i]})
			finished[i] = true
		})
	// A batch cut short (transport down mid-window) still owes every
	// remaining waiter its wake-up.
	for i, done := range finished {
		if !done {
			p.ra.finish(cache.BlockID{FH: fh.Key(), Block: blocks[i]})
		}
	}
}

// prefetchBlock pulls one block into the disk cache. Errors are
// swallowed: prefetching is best-effort and the demand path remains
// correct without it.
func (p *Proxy) prefetchBlock(fh nfs3.FH, block, bs uint64) {
	r, err := p.beRead(fh, block*bs, uint32(bs), nil, time.Time{})
	if err != nil {
		return
	}
	p.storePrefetched(fh, block, r)
}

// storePrefetched inserts one prefetched block into the block cache,
// through the dedup table when enabled. The result's data may alias
// the transport reply; the cache copies into its bank.
func (p *Proxy) storePrefetched(fh nfs3.FH, block uint64, r backend.ReadResult) {
	if r.Attr != nil {
		p.rememberSize(fh, r.Attr.Size)
	}
	if len(r.Data) == 0 {
		return
	}
	// A block dirtied by a racing demand write must win.
	if cached, dirty := p.cfg.BlockCache.Peek(fh, block); cached && dirty {
		return
	}
	if err := p.cfg.BlockCache.PutDedup(fh, block, r.Data, false); err != nil {
		return
	}
	p.stats.prefetched.Add(1)
}

// rewind lowers a file's scheduled-prefetch watermark after capacity
// forced some of the window to be skipped, so the blocks are retried
// on the next observation.
func (ra *readAhead) rewind(fh nfs3.FH, to uint64) {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if st, ok := ra.files[fh.Key()]; ok && st.nextWant > to {
		st.nextWant = to
	}
}
