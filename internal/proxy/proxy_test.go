package proxy_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/meta"
	"gvfs/internal/nfs3"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"

	gvfs "gvfs"
)

// env is a full test deployment: image server, one client proxy, and a
// mounted session.
type env struct {
	fs      *memfs.FS
	server  *stack.ImageServer
	proxyN  *stack.Node
	session *gvfs.Session
}

type envOptions struct {
	policy      cache.Policy
	noCache     bool
	fileCache   bool
	disableMeta bool
	pages       int
}

func newEnv(t testing.TB, o envOptions) *env {
	t.Helper()
	fs := memfs.New()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)

	popts := stack.ProxyOptions{UpstreamAddr: server.ProxyAddr()}
	if !o.noCache {
		cfg := cache.Config{
			Dir: t.TempDir(), Banks: 16, SetsPerBank: 16, Assoc: 4,
			BlockSize: 8192, Policy: o.policy,
		}
		popts.CacheConfig = &cfg
	}
	if o.fileCache {
		popts.FileCacheDir = t.TempDir()
		popts.FileChanAddr = server.FileChanAddr()
	}
	popts.DisableMeta = o.disableMeta
	proxyN, err := stack.StartProxy(popts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxyN.Close)

	sess, err := gvfs.Mount(gvfs.SessionConfig{
		Addr:           proxyN.Addr,
		Export:         "/",
		Cred:           sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "compute1"}.Encode(),
		PageCachePages: o.pages,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return &env{fs: fs, server: server, proxyN: proxyN, session: sess}
}

func TestReadThroughProxyChain(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := bytes.Repeat([]byte("GridVM"), 10000)
	e.fs.WriteFile("/images/vm.vmdk", payload)

	got, err := e.session.ReadFile("/images/vm.vmdk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read through chain: %d bytes, want %d", len(got), len(payload))
	}
}

func TestProxyCacheHitsOnRereadAfterPageCacheDrop(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack, pages: 4})
	payload := bytes.Repeat([]byte{0x5a}, 64*1024)
	e.fs.WriteFile("/vm.vmdk", payload)

	if _, err := e.session.ReadFile("/vm.vmdk"); err != nil {
		t.Fatal(err)
	}
	beforeMisses := e.proxyN.Proxy.Snapshot().Counter("gvfs_proxy_read_misses_total")
	if beforeMisses == 0 {
		t.Fatal("first read should miss in the proxy cache")
	}

	// Drop the client memory cache: re-reads must hit the proxy disk
	// cache, not the server.
	e.session.DropCaches()
	if _, err := e.session.ReadFile("/vm.vmdk"); err != nil {
		t.Fatal(err)
	}
	after := e.proxyN.Proxy.Snapshot()
	if after.Counter("gvfs_proxy_read_hits_total") == 0 {
		t.Error("re-read produced no proxy cache hits")
	}
	if m := after.Counter("gvfs_proxy_read_misses_total"); m != beforeMisses {
		t.Errorf("re-read missed in proxy cache: %d -> %d", beforeMisses, m)
	}
}

func TestWriteBackAbsorbsWrites(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := bytes.Repeat([]byte{7}, 32*1024)
	if err := e.session.WriteFile("/out.dat", payload); err != nil {
		t.Fatal(err)
	}
	if n := e.proxyN.Proxy.Snapshot().Counter("gvfs_proxy_writes_absorbed_total"); n == 0 {
		t.Fatal("no writes absorbed under write-back")
	}
	// Server must NOT have the data yet.
	if data, err := e.fs.ReadFile("/out.dat"); err == nil && bytes.Equal(data, payload) {
		t.Fatal("write-back leaked data to server before flush")
	}
	// Reads through the same proxy see the absorbed data.
	got, err := e.session.ReadFile("/out.dat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read-your-writes failed: err=%v", err)
	}
	// Middleware write-back propagates it.
	if err := e.proxyN.Proxy.WriteBack(); err != nil {
		t.Fatal(err)
	}
	data, err := e.fs.ReadFile("/out.dat")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("server data after WriteBack: err=%v len=%d", err, len(data))
	}
}

func TestWriteThroughPropagatesImmediately(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteThrough})
	payload := bytes.Repeat([]byte{9}, 16*1024)
	if err := e.session.WriteFile("/wt.dat", payload); err != nil {
		t.Fatal(err)
	}
	data, err := e.fs.ReadFile("/wt.dat")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("write-through did not reach server: err=%v", err)
	}
}

func TestFlushPropagatesAndInvalidates(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := bytes.Repeat([]byte{3}, 24*1024)
	if err := e.session.WriteFile("/f.dat", payload); err != nil {
		t.Fatal(err)
	}
	if err := e.proxyN.Proxy.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := e.fs.ReadFile("/f.dat")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("flush did not propagate: err=%v", err)
	}
	// After flush the proxy cache is cold again.
	e.session.DropCaches()
	before := e.proxyN.Proxy.Snapshot().Counter("gvfs_proxy_read_misses_total")
	if _, err := e.session.ReadFile("/f.dat"); err != nil {
		t.Fatal(err)
	}
	after := e.proxyN.Proxy.Snapshot().Counter("gvfs_proxy_read_misses_total")
	if after == before {
		t.Error("proxy cache unexpectedly warm after flush")
	}
}

func TestGetattrSeesAbsorbedSize(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := make([]byte, 20000)
	if err := e.session.WriteFile("/grow.dat", payload); err != nil {
		t.Fatal(err)
	}
	attr, err := e.session.Stat("/grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 20000 {
		t.Errorf("stat size = %d, want 20000 (absorbed writes visible)", attr.Size)
	}
}

func TestZeroBlockFiltering(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	// A "memory state" that is mostly zero.
	const bs = 8192
	state := make([]byte, 64*bs)
	copy(state[5*bs:], bytes.Repeat([]byte{0xAB}, bs)) // one non-zero block
	e.fs.WriteFile("/vm/mem.vmss", state)

	m := meta.GenerateZeroMap(state, bs)
	blob, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	e.fs.WriteFile("/vm/"+meta.NameFor("mem.vmss"), blob)

	got, err := e.session.ReadFile("/vm/mem.vmss")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("zero-filtered read corrupted data")
	}
	if n := e.proxyN.Proxy.Snapshot().Counter("gvfs_proxy_zero_filtered_total"); n != 63 {
		t.Errorf("zero-filtered reads = %d, want 63", n)
	}
}

func TestFileChannelFetch(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack, fileCache: true})
	const bs = 8192
	state := make([]byte, 32*bs)
	for i := 0; i < len(state); i += 7 {
		state[i] = byte(i)
	}
	e.fs.WriteFile("/vm/mem.vmss", state)
	m := meta.ForWholeFile(state, bs)
	blob, _ := m.Encode()
	e.fs.WriteFile("/vm/"+meta.NameFor("mem.vmss"), blob)

	got, err := e.session.ReadFile("/vm/mem.vmss")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("file-channel read corrupted data")
	}
	st := e.proxyN.Proxy.Snapshot()
	if n := st.Counter("gvfs_proxy_filechan_fetches_total"); n != 1 {
		t.Errorf("file channel fetches = %d, want 1", n)
	}
	if st.Counter("gvfs_proxy_filechan_reads_total") == 0 {
		t.Error("no reads served from the file cache")
	}
	// Re-read after dropping the client cache: still served locally,
	// with no second fetch.
	e.session.DropCaches()
	if _, err := e.session.ReadFile("/vm/mem.vmss"); err != nil {
		t.Fatal(err)
	}
	if n := e.proxyN.Proxy.Snapshot().Counter("gvfs_proxy_filechan_fetches_total"); n != 1 {
		t.Errorf("re-read refetched the file: %d fetches", n)
	}
}

func TestDisableMetaIgnoresMetadata(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack, fileCache: true, disableMeta: true})
	const bs = 8192
	state := make([]byte, 16*bs)
	e.fs.WriteFile("/vm/mem.vmss", state)
	m := meta.ForWholeFile(state, bs)
	blob, _ := m.Encode()
	e.fs.WriteFile("/vm/"+meta.NameFor("mem.vmss"), blob)

	if _, err := e.session.ReadFile("/vm/mem.vmss"); err != nil {
		t.Fatal(err)
	}
	st := e.proxyN.Proxy.Snapshot()
	if f, z := st.Counter("gvfs_proxy_filechan_fetches_total"), st.Counter("gvfs_proxy_zero_filtered_total"); f != 0 || z != 0 {
		t.Errorf("metadata acted on despite DisableMeta: fetches=%d zero-filtered=%d", f, z)
	}
}

func TestIdentityMappingAtServerProxy(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	if err := e.session.WriteFile("/id.dat", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := e.proxyN.Proxy.WriteBack(); err != nil {
		t.Fatal(err)
	}
	// The server-side proxy must have allocated a short-lived identity
	// for the session's grid user.
	if live := e.server.Allocator.Live(); live == 0 {
		t.Error("no logical user account allocated at the server proxy")
	}
	if _, ok := e.server.Allocator.Lookup("uid500@compute1"); !ok {
		t.Error("expected identity for uid500@compute1")
	}
}

func TestRemoveInvalidatesCaches(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := bytes.Repeat([]byte{1}, 16*1024)
	e.fs.WriteFile("/gone.dat", payload)
	if _, err := e.session.ReadFile("/gone.dat"); err != nil {
		t.Fatal(err)
	}
	if err := e.session.Remove("/gone.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.session.ReadFile("/gone.dat"); err == nil {
		t.Error("read of removed file succeeded")
	}
}

func TestTruncateThroughProxy(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := bytes.Repeat([]byte{0xEE}, 20000)
	if err := e.session.WriteFile("/t.dat", payload); err != nil {
		t.Fatal(err)
	}
	f, err := e.session.Open("/t.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	e.session.DropCaches()
	got, err := e.session.ReadFile("/t.dat")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Errorf("size after truncate = %d, want 100", len(got))
	}
}

func TestOverwriteVisibleThroughCache(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	e.fs.WriteFile("/o.dat", bytes.Repeat([]byte{1}, 8192))
	if _, err := e.session.ReadFile("/o.dat"); err != nil {
		t.Fatal(err)
	}
	f, err := e.session.Open("/o.dat")
	if err != nil {
		t.Fatal(err)
	}
	newData := bytes.Repeat([]byte{2}, 8192)
	if _, err := f.WriteAt(newData, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	e.session.DropCaches()
	got, err := e.session.ReadFile("/o.dat")
	if err != nil || !bytes.Equal(got, newData) {
		t.Errorf("overwrite invisible: err=%v", err)
	}
}

func TestPartialBlockWriteMerging(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	// Server has a full block; client writes a small prefix; the block
	// read back must merge old and new.
	orig := bytes.Repeat([]byte{0xCC}, 8192)
	e.fs.WriteFile("/m.dat", orig)
	f, err := e.session.Open("/m.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("HDR!"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	e.session.DropCaches()
	got, err := e.session.ReadFile("/m.dat")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("HDR!"), orig[4:]...)
	if !bytes.Equal(got, want) {
		t.Error("partial write clobbered block remainder")
	}
	// And the merge must survive flush to the server.
	if err := e.proxyN.Proxy.Flush(); err != nil {
		t.Fatal(err)
	}
	data, _ := e.fs.ReadFile("/m.dat")
	if !bytes.Equal(data, want) {
		t.Error("server data wrong after flush of merged block")
	}
}

func TestCascadedProxies(t *testing.T) {
	// Two proxy levels (the paper's LAN second-level cache): client
	// proxy -> LAN proxy -> server proxy -> NFS server.
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0x42}, 64*1024)
	fs.WriteFile("/vm.vmdk", payload)
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	lanCfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 16, Assoc: 4, BlockSize: 8192, Policy: cache.WriteThrough}
	lanProxy, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &lanCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lanProxy.Close()

	cliCfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 16, Assoc: 4, BlockSize: 8192, Policy: cache.WriteBack}
	cliProxy, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: lanProxy.Addr,
		CacheConfig:  &cliCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cliProxy.Close()

	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: cliProxy.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	got, err := sess.ReadFile("/vm.vmdk")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("cascaded read failed: err=%v", err)
	}
	// Both levels saw the traffic.
	if lanProxy.Proxy.Snapshot().Counter("gvfs_proxy_read_misses_total") == 0 {
		t.Error("LAN proxy saw no read misses")
	}
	if cliProxy.Proxy.Snapshot().Counter("gvfs_proxy_read_misses_total") == 0 {
		t.Error("client proxy saw no read misses")
	}
}

func TestConcurrentSessionsThroughOneProxy(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	for i := 0; i < 4; i++ {
		e.fs.WriteFile(fmt.Sprintf("/f%d", i), bytes.Repeat([]byte{byte(i)}, 32*1024))
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			data, err := e.session.ReadFile(fmt.Sprintf("/f%d", i))
			if err == nil && !bytes.Equal(data, bytes.Repeat([]byte{byte(i)}, 32*1024)) {
				err = fmt.Errorf("data mismatch for f%d", i)
			}
			done <- err
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestNoCacheProxyPureForwarding(t *testing.T) {
	e := newEnv(t, envOptions{noCache: true})
	payload := bytes.Repeat([]byte{0x11}, 32*1024)
	e.fs.WriteFile("/p.dat", payload)
	got, err := e.session.ReadFile("/p.dat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("forwarding proxy read failed: %v", err)
	}
	if err := e.session.WriteFile("/q.dat", payload); err != nil {
		t.Fatal(err)
	}
	data, err := e.fs.ReadFile("/q.dat")
	if err != nil || !bytes.Equal(data, payload) {
		t.Error("forwarding proxy write did not reach server")
	}
	st := e.proxyN.Proxy.Snapshot()
	if h, w := st.Counter("gvfs_proxy_read_hits_total"), st.Counter("gvfs_proxy_writes_absorbed_total"); h != 0 || w != 0 {
		t.Errorf("cache activity on cacheless proxy: hits=%d absorbed=%d", h, w)
	}
}

func TestStatusErrorsPropagate(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	if _, err := e.session.Open("/does/not/exist"); nfs3.StatusOf(err) != nfs3.ErrNoEnt {
		t.Errorf("err = %v, want NOENT", err)
	}
}

func TestReadAheadPrefetchesSequential(t *testing.T) {
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0x77}, 512*1024)
	fs.WriteFile("/seq.bin", payload)
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cfg := cache.Config{Dir: t.TempDir(), Banks: 16, SetsPerBank: 16, Assoc: 4,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &cfg,
		ReadAhead:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.ReadFile("/seq.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("sequential read through read-ahead proxy: %v", err)
	}
	if n := node.Proxy.Snapshot().Counter("gvfs_proxy_prefetched_total"); n == 0 {
		t.Error("no blocks prefetched on a fully sequential scan")
	}
	// Prefetching must never corrupt: re-read after dropping client
	// caches and verify again.
	sess.DropCaches()
	got, err = sess.ReadFile("/seq.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("re-read after prefetch: %v", err)
	}
}

func TestReadAheadDoesNotCorruptWrites(t *testing.T) {
	// Interleave sequential reads with writes to nearby blocks: the
	// dirty data must win over racing prefetches.
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0x11}, 256*1024)
	fs.WriteFile("/rw.bin", payload)
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cfg := cache.Config{Dir: t.TempDir(), Banks: 16, SetsPerBank: 16, Assoc: 4,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &cfg,
		ReadAhead:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	f, err := sess.Open("/rw.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8192)
	patch := bytes.Repeat([]byte{0xFF}, 8192)
	for block := 0; block < 32; block++ {
		off := int64(block) * 8192
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if block%4 == 0 {
			if _, err := f.WriteAt(patch, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := node.Proxy.Flush(); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/rw.bin")
	for block := 0; block < 32; block++ {
		want := byte(0x11)
		if block%4 == 0 {
			want = 0xFF
		}
		if data[block*8192] != want {
			t.Fatalf("block %d = %#x, want %#x", block, data[block*8192], want)
		}
	}
}

func TestProxyWarmRestartWithPersistedIndex(t *testing.T) {
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0x3C}, 128*1024)
	fs.WriteFile("/warm.bin", payload)
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cacheDir := t.TempDir()
	cfg := cache.Config{Dir: cacheDir, Banks: 16, SetsPerBank: 16, Assoc: 4,
		BlockSize: 8192, Policy: cache.WriteBack}

	// First proxy lifetime: read everything, save the index.
	node1, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(), CacheConfig: &cfg, PersistIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess1, err := gvfs.Mount(gvfs.SessionConfig{Addr: node1.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.ReadFile("/warm.bin"); err != nil {
		t.Fatal(err)
	}
	if err := node1.Proxy.WriteBack(); err != nil {
		t.Fatal(err)
	}
	if err := node1.BlockCache.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	sess1.Close()
	node1.Close()

	// Second lifetime over the same directory: reads hit immediately.
	node2, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(), CacheConfig: &cfg, PersistIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	sess2, err := gvfs.Mount(gvfs.SessionConfig{Addr: node2.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	got, err := sess2.ReadFile("/warm.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after restart: %v", err)
	}
	st := node2.Proxy.Snapshot()
	if st.Counter("gvfs_proxy_read_hits_total") == 0 {
		t.Error("no cache hits after warm restart")
	}
	if m := st.Counter("gvfs_proxy_read_misses_total"); m != 0 {
		t.Errorf("%d misses after warm restart, want 0", m)
	}
}

func TestCascadedWriteConsistency(t *testing.T) {
	// Writes absorbed by a first-level write-back proxy must reach the
	// end server through a second-level (write-through) proxy when the
	// middleware settles the session.
	fs := memfs.New()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	lanCfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteThrough}
	lanProxy, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(), CacheConfig: &lanCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lanProxy.Close()

	cliCfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteBack}
	cliProxy, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: lanProxy.Addr, CacheConfig: &cliCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cliProxy.Close()

	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: cliProxy.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	payload := bytes.Repeat([]byte{0xBE}, 40*1024)
	if err := sess.WriteFile("/cascade.dat", payload); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("/cascade.dat"); bytes.Equal(data, payload) {
		t.Fatal("data reached server before flush")
	}
	if err := cliProxy.Proxy.WriteBack(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/cascade.dat")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("data wrong after cascaded write-back: %v", err)
	}
	// The middle (write-through) proxy now also has the fresh blocks
	// cached: a cold client re-read must not produce stale data.
	sess2, err := gvfs.Mount(gvfs.SessionConfig{Addr: lanProxy.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	got, err := sess2.ReadFile("/cascade.dat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("stale data at LAN level: %v", err)
	}
}

func TestTwoSessionsShareProxyState(t *testing.T) {
	// Two sessions on the same compute server (e.g. middleware and VM
	// monitor) see each other's absorbed writes through the shared
	// client proxy — the paper's session owns the data at the proxy.
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	payload := bytes.Repeat([]byte{0x66}, 24*1024)
	if err := e.session.WriteFile("/shared.dat", payload); err != nil {
		t.Fatal(err)
	}
	sess2, err := gvfs.Mount(gvfs.SessionConfig{Addr: e.proxyN.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	got, err := sess2.ReadFile("/shared.dat")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("second session missed absorbed writes: %v", err)
	}
}

func TestIdleWriteBackPropagates(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	stop := e.proxyN.Proxy.StartIdleWriteBack(300 * time.Millisecond)
	defer stop()
	payload := bytes.Repeat([]byte{0x77}, 16*1024)
	if err := e.session.WriteFile("/idle.dat", payload); err != nil {
		t.Fatal(err)
	}
	// Without any explicit flush, the idle writer must settle the
	// session within a few idle periods.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := e.fs.ReadFile("/idle.dat"); err == nil && bytes.Equal(data, payload) {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("idle write-back never propagated the session's data")
}

func TestIdleWriteBackStop(t *testing.T) {
	e := newEnv(t, envOptions{policy: cache.WriteBack})
	stop := e.proxyN.Proxy.StartIdleWriteBack(100 * time.Millisecond)
	stop()
	stop() // double-stop must be safe
	if err := e.session.WriteFile("/kept.dat", []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if _, err := e.fs.ReadFile("/kept.dat"); err == nil {
		if data, _ := e.fs.ReadFile("/kept.dat"); len(data) > 0 {
			t.Error("stopped idle writer still propagated data")
		}
	}
}

func TestSharedReadOnlyCache(t *testing.T) {
	// Two proxies (two compute sessions on one host) share a single
	// read-only disk cache: the second proxy hits on blocks the first
	// one fetched (paper §3.2.1 shared read-only caches).
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0xC0}, 64*1024)
	fs.WriteFile("/golden.vmdk", payload)
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteThrough, ReadOnly: true}
	shared, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	mkProxy := func() (*stack.Node, *gvfs.Session) {
		node, err := stack.StartProxy(stack.ProxyOptions{
			UpstreamAddr:     server.ProxyAddr(),
			SharedBlockCache: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		return node, sess
	}

	nodeA, sessA := mkProxy()
	if _, err := sessA.ReadFile("/golden.vmdk"); err != nil {
		t.Fatal(err)
	}
	if nodeA.Proxy.Snapshot().Counter("gvfs_proxy_read_misses_total") == 0 {
		t.Fatal("first proxy should miss")
	}

	nodeB, sessB := mkProxy()
	got, err := sessB.ReadFile("/golden.vmdk")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("second proxy read: %v", err)
	}
	st := nodeB.Proxy.Snapshot()
	if st.Counter("gvfs_proxy_read_hits_total") == 0 {
		t.Error("second proxy got no hits from the shared cache")
	}
	if m := st.Counter("gvfs_proxy_read_misses_total"); m != 0 {
		t.Errorf("second proxy missed %d blocks despite shared cache", m)
	}

	// Writes through a read-only shared cache pass through and drop
	// the stale frames.
	patch := bytes.Repeat([]byte{0xFF}, 8192)
	f, err := sessB.Open("/golden.vmdk")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(patch, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, _ := fs.ReadFile("/golden.vmdk")
	if !bytes.Equal(data[:8192], patch) {
		t.Error("write did not pass through to the server")
	}
	sessA.DropCaches()
	fresh, err := sessA.ReadFile("/golden.vmdk")
	if err != nil || !bytes.Equal(fresh[:8192], patch) {
		t.Error("stale block served from shared cache after write")
	}
}

func TestSharedCacheMustBeReadOnly(t *testing.T) {
	cfg := cache.Config{Dir: t.TempDir(), Banks: 2, SetsPerBank: 2, Assoc: 2, BlockSize: 512}
	writable, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer writable.Close()
	fs := memfs.New()
	node, err := stack.StartNFSServer(fs, stack.NFSServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr:     node.Addr,
		SharedBlockCache: writable,
	}); err == nil {
		t.Error("writable shared cache accepted")
	}
}
