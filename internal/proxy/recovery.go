package proxy

// Crash recovery orchestration. A proxy that died with write-back state
// still unpropagated left a dirty-block journal in its cache directory;
// on restart the stack calls RecoverJournal before the listener starts
// serving, so by the time a client can reconnect the server already
// reflects every acknowledged write.

import (
	"gvfs/internal/cache"
)

// RecoverJournal rebuilds the dirty set a crashed predecessor left in
// the block cache's journal and replays it upstream through the
// ordinary write-back path. It is a no-op when the cache has no journal.
//
// A recovery *scan* failure is returned (the operator must intervene —
// serving with unreplayed acked writes would be silent data loss), but
// a *replay* failure is logged and swallowed: the dirty set is safely
// rebuilt in the cache, and the PR-1 circuit breaker replays it once
// the upstream answers probes again.
func (p *Proxy) RecoverJournal() (cache.RecoveryReport, error) {
	bc := p.cfg.BlockCache
	if bc == nil || !bc.JournalEnabled() {
		return cache.RecoveryReport{}, nil
	}
	rep, err := bc.RecoverJournal()
	if err != nil {
		return rep, err
	}
	if rep.Records > 0 || rep.TornTail {
		p.log.Info("crash recovery",
			"records", rep.Records,
			"dirty", rep.Dirty,
			"restored", rep.Restored,
			"bytes", rep.Bytes,
			"torn_tail", rep.TornTail)
	}
	if rep.Dirty == 0 {
		return rep, nil
	}
	p.stats.journalRecovered.Add(uint64(rep.Dirty))
	if err := p.writeBackReason(TriggerRecovery); err != nil {
		p.log.Warn("recovery replay deferred; breaker will retry",
			"dirty", rep.Dirty, "err", err.Error())
	}
	return rep, nil
}
