package proxy

// Satellite coverage: circuit-breaker half-open behavior under
// concurrency (internal/proxy/health.go). While the breaker is open,
// exactly one probe loop owns recovery: racing transport failures must
// not spawn extra probers (no thundering herd against a struggling
// upstream), blocked callers must fail fast without ever touching the
// transport, and recovery must close the breaker — and trigger replay
// — exactly once.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvfs/internal/sunrpc"
)

// gateCaller is a switchable upstream transport: while down it fails
// every call with a transport error; once up it answers NULL. It
// counts every call that actually reaches it, which is how the tests
// distinguish "one probe loop" from a herd.
type gateCaller struct {
	calls atomic.Int64
	up    atomic.Bool
}

func (g *gateCaller) Call(prog, vers, proc uint32, cred sunrpc.OpaqueAuth, args []byte) ([]byte, error) {
	g.calls.Add(1)
	if !g.up.Load() {
		return nil, fmt.Errorf("gate: transport down")
	}
	return nil, nil
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// nullCall mimics what every proxy-initiated upstream call does since
// the backend split: fail fast while the breaker is open, otherwise
// touch the transport and feed the outcome to the health tracker.
func nullCall(p *Proxy) error {
	if p.degraded() {
		p.stats.breakerFastFails.Add(1)
		return errUpstreamDown
	}
	err := p.cfg.Backend.Probe()
	p.observeUpstream(err)
	return err
}

// tripBreaker drives the proxy's own failure accounting until the
// breaker opens.
func tripBreaker(t *testing.T, p *Proxy, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		if err := nullCall(p); err == nil {
			t.Fatal("call succeeded against a down gate")
		}
	}
	if !p.Degraded() {
		t.Fatal("breaker did not open at the failure threshold")
	}
}

func TestBreakerOpenCallersFailFastWithoutProbing(t *testing.T) {
	const (
		threshold = 3
		interval  = 40 * time.Millisecond
	)
	gate := &gateCaller{}
	p, err := New(Config{
		Upstream:         gate,
		FailureThreshold: threshold,
		ProbeInterval:    interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	tripBreaker(t, p, threshold)
	tripCalls := gate.calls.Load()

	// Hammer the open breaker from many goroutines. Every call must
	// fail fast with the breaker error; none may reach the transport.
	const workers, perWorker = 16, 50
	start := time.Now()
	var wg sync.WaitGroup
	var wrongErr atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := nullCall(p); !errors.Is(err, errUpstreamDown) {
					wrongErr.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := wrongErr.Load(); n != 0 {
		t.Errorf("%d hammer calls did not fail fast with errUpstreamDown", n)
	}
	if elapsed > 2*time.Second {
		t.Errorf("fast-fail path took %v for %d calls", elapsed, workers*perWorker)
	}
	fastFails := p.Snapshot().Counter("gvfs_proxy_breaker_fastfails_total")
	if fastFails < workers*perWorker {
		t.Errorf("fast-fail counter %d < %d hammer calls", fastFails, workers*perWorker)
	}
	// Only the probe loop may have touched the transport while open:
	// at most one probe per interval (plus generous scheduling slack),
	// nowhere near the 800 hammer calls.
	probeBudget := int64(elapsed/interval) + 5
	if got := gate.calls.Load() - tripCalls; got > probeBudget {
		t.Errorf("%d transport calls while breaker open; want <= %d (single probe loop)", got, probeBudget)
	}
}

func TestBreakerConcurrentFailuresSpawnOneProbeLoop(t *testing.T) {
	const interval = 50 * time.Millisecond
	gate := &gateCaller{}
	p, err := New(Config{
		Upstream:         gate,
		FailureThreshold: 2,
		ProbeInterval:    interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	// Race many goroutines through the failure accounting so the trip
	// decision itself is contended.
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.health.failure()
			}
		}()
	}
	wg.Wait()
	if !p.Degraded() {
		t.Fatal("breaker did not open")
	}
	if opens := p.Snapshot().Counter("gvfs_proxy_breaker_opens_total"); opens != 1 {
		t.Fatalf("breaker opened %d times from one outage", opens)
	}

	// Watch the down upstream for a handful of intervals: a single
	// probe loop sends ~1 call per interval; 32 leaked loops would
	// send ~32x that.
	before := gate.calls.Load()
	const window = 8 * interval
	time.Sleep(window)
	probes := gate.calls.Load() - before
	if probes > int64(window/interval)+4 {
		t.Errorf("%d probes in %v; more than one probe loop is running", probes, window)
	}
	if probes == 0 {
		t.Error("no probes while the breaker was open")
	}
}

func TestBreakerRecoveryClosesOnceAndReplaysOnce(t *testing.T) {
	const interval = 30 * time.Millisecond
	gate := &gateCaller{}
	p, err := New(Config{
		Upstream:         gate,
		FailureThreshold: 2,
		ProbeInterval:    interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	tripBreaker(t, p, 2)

	// Heal the transport; the single prober must close the breaker.
	gate.up.Store(true)
	waitUntil(t, "breaker close", func() bool { return !p.Degraded() })

	// The loser callers racing in right after recovery go upstream
	// normally — they must not re-trip or re-probe a healthy path.
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := nullCall(p); err != nil {
					t.Errorf("post-recovery call failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	waitUntil(t, "replay", func() bool {
		return p.Snapshot().Counter("gvfs_proxy_replays_total") == 1
	})
	if opens := p.Snapshot().Counter("gvfs_proxy_breaker_opens_total"); opens != 1 {
		t.Errorf("breaker opened %d times across one outage+recovery", opens)
	}
	// The probe loop must have exited: probing flag clear, and no
	// further probes land on the healthy upstream.
	p.health.mu.Lock()
	probing := p.health.probing
	p.health.mu.Unlock()
	if probing {
		t.Error("probe loop still marked running after recovery")
	}
	settled := gate.calls.Load()
	time.Sleep(4 * interval)
	if extra := gate.calls.Load() - settled; extra != 0 {
		t.Errorf("%d stray probes after recovery", extra)
	}
}
