package proxy

// Per-file and per-client accounting, and the write-back audit log.
// The metrics registry answers "how much, in aggregate"; these tables
// answer the operator questions the paper's session model makes
// specific: which file is hot, which client is issuing the op mix, and
// where each dirty block is in the session-consistency lifecycle
// (dirtied -> flush triggered -> WRITE committed upstream). The whole
// surface is served as one bounded JSON document at /statusz.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/backend/replbe"
	"gvfs/internal/nfs3"
	"gvfs/internal/qos"
	"gvfs/internal/sunrpc"
)

const (
	// DefaultTopN bounds every per-file ranking in the statusz document.
	DefaultTopN = 10
	// DefaultAuditRing bounds the write-back audit event ring.
	DefaultAuditRing = 128
	// DefaultAcctEntries caps each accounting table (files, clients).
	DefaultAcctEntries = 4096
	// DefaultAcctTTL evicts accounting entries idle this long once a
	// table is at its cap.
	DefaultAcctTTL = 15 * time.Minute
)

// Audit event kinds and flush-trigger reasons.
const (
	AuditDirty   = "dirty"
	AuditTrigger = "flush_trigger"
	AuditCommit  = "commit"

	TriggerWriteBack = "write_back" // middleware SIGUSR1 / WriteBack()
	TriggerFlush     = "flush"      // middleware SIGUSR2 / Flush()
	TriggerIdle      = "idle"       // idle-session background write-back
	TriggerReplay    = "replay"     // post-recovery breaker replay
	TriggerRecovery  = "crash_recovery" // journal replay after a proxy crash
)

// FileStats is one file's row in the statusz tables.
type FileStats struct {
	File          string  `json:"file"`
	Reads         uint64  `json:"reads"`
	Writes        uint64  `json:"writes"`
	ReadBytes     uint64  `json:"read_bytes"`
	WriteBytes    uint64  `json:"write_bytes"`
	BlockHits     uint64  `json:"block_hits"`
	BlockMisses   uint64  `json:"block_misses"`
	HitRatio      float64 `json:"hit_ratio"`
	ZeroReads     uint64  `json:"zero_reads"`
	ZeroSavedB    uint64  `json:"zero_saved_bytes"`
	FileCacheHits uint64  `json:"file_cache_hits"`
	DegradedReads uint64  `json:"degraded_reads"`
}

// ClientStats is one client's row: who they are and their op mix.
type ClientStats struct {
	Client        string            `json:"client"`
	Ops           map[string]uint64 `json:"ops"`
	ReadBytes     uint64            `json:"read_bytes"`
	WriteBytes    uint64            `json:"write_bytes"`
	DegradedReads uint64            `json:"degraded_reads"`
}

// AuditEvent is one step of a dirty block's lifecycle.
type AuditEvent struct {
	TimeNs  int64  `json:"time_ns"`
	Kind    string `json:"kind"` // dirty | flush_trigger | commit
	File    string `json:"file,omitempty"`
	Block   uint64 `json:"block,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Reason  string `json:"reason,omitempty"`        // flush_trigger only
	Pending int    `json:"pending_dirty,omitempty"` // flush_trigger only
	AgeNs   int64  `json:"age_ns,omitempty"`        // commit: dirty-block age
}

// Statusz is the full /statusz document.
type Statusz struct {
	NowNs    int64 `json:"now_ns"`
	Degraded bool  `json:"degraded"`
	TopN     int   `json:"top_n"`

	FilesTracked int                    `json:"files_tracked"`
	Files        map[string][]FileStats `json:"files"` // ranking name -> top-N rows
	Clients      []ClientStats          `json:"clients"`

	// QoS is the admission scheduler's per-tenant table (absent when
	// QoS is disabled), with cache-analytics demand columns merged in
	// when -cachean is on. Brownout mirrors the
	// gvfs_qos_brownout_active gauge.
	QoS      []TenantRow `json:"qos_tenants,omitempty"`
	Brownout bool        `json:"brownout,omitempty"`

	// Replication is the replicated backend's health snapshot (absent
	// for single-backend proxies).
	Replication *replbe.Stats `json:"replication,omitempty"`

	Audit AuditLog `json:"writeback_audit"`
}

// TenantRow is one tenant's row in the statusz QoS table: the
// admission scheduler's counters joined with the cache-analytics
// demand estimate for the same identity (zero when analytics are off
// or the tenant's accesses were never sampled). WorkingSetBytes is
// the SHARDS-scaled estimate of distinct bytes the tenant touched in
// the sliding window; SampledUniqueBlocks is the raw (unscaled)
// evidence behind it.
type TenantRow struct {
	qos.TenantStats
	WorkingSetBytes     uint64 `json:"working_set_bytes"`
	SampledUniqueBlocks uint64 `json:"sampled_unique_blocks"`
}

// AuditLog is the audit section of the statusz document.
type AuditLog struct {
	DirtyBlocks      int          `json:"dirty_blocks"`
	OldestDirtyAgeNs int64        `json:"oldest_dirty_age_ns"`
	TotalEvents      uint64       `json:"total_events"`
	Capacity         int          `json:"capacity"`
	Events           []AuditEvent `json:"events"`
}

type fileAcct struct {
	FileStats
	touched int64 // unix nanos of last update, for eviction
}

type clientAcct struct {
	ops           map[string]uint64
	readBytes     uint64
	writeBytes    uint64
	degradedReads uint64
	touched       int64 // unix nanos of last update, for eviction
}

// accounting holds all three tables under one mutex. Updates are one
// short critical section per call — small next to the XDR decode each
// call already pays. The files and clients tables are bounded: a
// client-ID (or file-handle) churn storm evicts idle entries past the
// TTL — or, failing that, the least-recently-touched entry — instead
// of growing the proxy heap without limit.
type accounting struct {
	topN       int
	auditCap   int
	maxEntries int
	idleTTL    time.Duration

	evictions atomic.Uint64 // entries dropped from either table

	mu         sync.Mutex
	files      map[string]*fileAcct   // keyed by file label
	clients    map[string]*clientAcct // keyed by client identity
	dirtyAt    map[dirtyID]int64      // file label + block -> dirtied unix nanos
	audit      []AuditEvent
	auditNext  int
	auditTotal uint64
}

func newAccounting(topN, auditCap, maxEntries int, idleTTL time.Duration) *accounting {
	if topN <= 0 {
		topN = DefaultTopN
	}
	if auditCap <= 0 {
		auditCap = DefaultAuditRing
	}
	if maxEntries <= 0 {
		maxEntries = DefaultAcctEntries
	}
	if idleTTL <= 0 {
		idleTTL = DefaultAcctTTL
	}
	return &accounting{
		topN:       topN,
		auditCap:   auditCap,
		maxEntries: maxEntries,
		idleTTL:    idleTTL,
		files:      make(map[string]*fileAcct),
		clients:    make(map[string]*clientAcct),
		dirtyAt:    make(map[dirtyID]int64),
	}
}

// evictLocked makes room in a table at its cap: first sweep entries
// idle past the TTL, and if nothing is that old drop the single
// least-recently-touched entry so the cap always holds.
func evictLocked[V any](m map[string]V, touched func(V) int64, now int64, ttl time.Duration) (evicted uint64) {
	cutoff := now - ttl.Nanoseconds()
	oldestKey := ""
	oldestAt := int64(1<<63 - 1)
	for k, v := range m {
		at := touched(v)
		if at <= cutoff {
			delete(m, k)
			evicted++
		} else if at < oldestAt {
			oldestAt, oldestKey = at, k
		}
	}
	if evicted == 0 && oldestKey != "" {
		delete(m, oldestKey)
		evicted++
	}
	return evicted
}

func (a *accounting) fileLocked(label string) *fileAcct {
	now := time.Now().UnixNano()
	f, ok := a.files[label]
	if !ok {
		if len(a.files) >= a.maxEntries {
			a.evictions.Add(evictLocked(a.files,
				func(f *fileAcct) int64 { return f.touched }, now, a.idleTTL))
		}
		f = &fileAcct{FileStats: FileStats{File: label}}
		a.files[label] = f
	}
	f.touched = now
	return f
}

func (a *accounting) clientLocked(key string) *clientAcct {
	now := time.Now().UnixNano()
	c, ok := a.clients[key]
	if !ok {
		if len(a.clients) >= a.maxEntries {
			a.evictions.Add(evictLocked(a.clients,
				func(c *clientAcct) int64 { return c.touched }, now, a.idleTTL))
		}
		c = &clientAcct{ops: make(map[string]uint64)}
		a.clients[key] = c
	}
	c.touched = now
	return c
}

// recordOp counts one handled call into the client's op mix.
func (a *accounting) recordOp(client, proc string) {
	a.mu.Lock()
	a.clientLocked(client).ops[proc]++
	a.mu.Unlock()
}

// recordRead attributes one READ to its file and client.
func (a *accounting) recordRead(file, client, outcome string, bytes uint32, degraded bool) {
	a.mu.Lock()
	f := a.fileLocked(file)
	f.Reads++
	f.ReadBytes += uint64(bytes)
	switch outcome {
	case "block_hit":
		f.BlockHits++
	case "block_miss":
		f.BlockMisses++
	case "zero_filter":
		f.ZeroReads++
		f.ZeroSavedB += uint64(bytes)
	case "file_cache":
		f.FileCacheHits++
	}
	c := a.clientLocked(client)
	c.readBytes += uint64(bytes)
	if degraded {
		f.DegradedReads++
		c.degradedReads++
	}
	a.mu.Unlock()
}

// recordWrite attributes one WRITE to its file and client.
func (a *accounting) recordWrite(file, client string, bytes int) {
	a.mu.Lock()
	f := a.fileLocked(file)
	f.Writes++
	f.WriteBytes += uint64(bytes)
	a.clientLocked(client).writeBytes += uint64(bytes)
	a.mu.Unlock()
}

// dirtyID keys the dirty-block lifecycle table. A comparable struct
// instead of a formatted string keeps the per-WRITE bookkeeping
// allocation-free.
type dirtyID struct {
	file  string
	block uint64
}

func (a *accounting) appendEventLocked(e AuditEvent) {
	if len(a.audit) < a.auditCap {
		a.audit = append(a.audit, e)
	} else {
		a.audit[a.auditNext] = e
	}
	a.auditNext = (a.auditNext + 1) % a.auditCap
	a.auditTotal++
}

// blockDirtied opens a lifecycle: a write-back cache absorbed a write.
// Re-dirtying an already-dirty block keeps the original timestamp, so
// the eventual commit reports the full time the data was at risk.
func (a *accounting) blockDirtied(file string, block uint64, bytes int) {
	now := time.Now().UnixNano()
	a.mu.Lock()
	key := dirtyID{file, block}
	if _, dirty := a.dirtyAt[key]; !dirty {
		a.dirtyAt[key] = now
	}
	a.appendEventLocked(AuditEvent{TimeNs: now, Kind: AuditDirty, File: file, Block: block, Bytes: bytes})
	a.mu.Unlock()
}

// flushTriggered records why dirty state is about to move upstream.
func (a *accounting) flushTriggered(reason string) {
	now := time.Now().UnixNano()
	a.mu.Lock()
	a.appendEventLocked(AuditEvent{TimeNs: now, Kind: AuditTrigger, Reason: reason, Pending: len(a.dirtyAt)})
	a.mu.Unlock()
}

// writeCommitted closes a lifecycle: the block's WRITE landed upstream.
func (a *accounting) writeCommitted(file string, block uint64, bytes int) {
	now := time.Now().UnixNano()
	a.mu.Lock()
	key := dirtyID{file, block}
	e := AuditEvent{TimeNs: now, Kind: AuditCommit, File: file, Block: block, Bytes: bytes}
	if dirtied, ok := a.dirtyAt[key]; ok {
		e.AgeNs = now - dirtied
		delete(a.dirtyAt, key)
	}
	a.appendEventLocked(e)
	a.mu.Unlock()
}

func (a *accounting) auditEventsLocked() []AuditEvent {
	out := make([]AuditEvent, 0, len(a.audit))
	if len(a.audit) < a.auditCap {
		out = append(out, a.audit...)
	} else {
		out = append(out, a.audit[a.auditNext:]...)
		out = append(out, a.audit[:a.auditNext]...)
	}
	return out
}

// rankings orders the per-file top-N tables of the statusz document.
var rankings = []struct {
	name string
	key  func(*FileStats) float64
}{
	{"reads", func(f *FileStats) float64 { return float64(f.Reads) }},
	{"writes", func(f *FileStats) float64 { return float64(f.Writes) }},
	{"bytes", func(f *FileStats) float64 { return float64(f.ReadBytes + f.WriteBytes) }},
	{"hit_ratio", func(f *FileStats) float64 { return f.HitRatio }},
	{"zero_savings", func(f *FileStats) float64 { return float64(f.ZeroSavedB) }},
}

// snapshot assembles the statusz document.
func (a *accounting) snapshot(degraded bool) Statusz {
	now := time.Now().UnixNano()
	a.mu.Lock()
	rows := make([]FileStats, 0, len(a.files))
	for _, f := range a.files {
		r := f.FileStats
		if lookups := r.BlockHits + r.BlockMisses; lookups > 0 {
			r.HitRatio = float64(r.BlockHits) / float64(lookups)
		}
		rows = append(rows, r)
	}
	clients := make([]ClientStats, 0, len(a.clients))
	for key, c := range a.clients {
		ops := make(map[string]uint64, len(c.ops))
		for p, n := range c.ops {
			ops[p] = n
		}
		clients = append(clients, ClientStats{
			Client: key, Ops: ops,
			ReadBytes: c.readBytes, WriteBytes: c.writeBytes,
			DegradedReads: c.degradedReads,
		})
	}
	var oldest int64
	for _, at := range a.dirtyAt {
		if age := now - at; age > oldest {
			oldest = age
		}
	}
	audit := AuditLog{
		DirtyBlocks:      len(a.dirtyAt),
		OldestDirtyAgeNs: oldest,
		TotalEvents:      a.auditTotal,
		Capacity:         a.auditCap,
		Events:           a.auditEventsLocked(),
	}
	a.mu.Unlock()

	doc := Statusz{
		NowNs:        now,
		Degraded:     degraded,
		TopN:         a.topN,
		FilesTracked: len(rows),
		Files:        make(map[string][]FileStats, len(rankings)),
		Clients:      clients,
		Audit:        audit,
	}
	sort.Slice(doc.Clients, func(i, j int) bool { return doc.Clients[i].Client < doc.Clients[j].Client })
	for _, r := range rankings {
		sorted := append([]FileStats(nil), rows...)
		sort.SliceStable(sorted, func(i, j int) bool {
			ki, kj := r.key(&sorted[i]), r.key(&sorted[j])
			if ki != kj {
				return ki > kj
			}
			return sorted[i].File < sorted[j].File
		})
		if len(sorted) > a.topN {
			sorted = sorted[:a.topN]
		}
		doc.Files[r.name] = sorted
	}
	// Bound the client table the same way the file tables are bounded.
	if len(doc.Clients) > a.topN {
		doc.Clients = doc.Clients[:a.topN]
	}
	return doc
}

// Statusz returns the proxy's accounting snapshot.
func (p *Proxy) Statusz() Statusz {
	doc := p.acct.snapshot(p.degraded())
	for _, ts := range p.QoSTenants() {
		row := TenantRow{TenantStats: ts}
		if p.cfg.Cachean != nil {
			row.WorkingSetBytes, row.SampledUniqueBlocks = p.cfg.Cachean.TenantWSS(ts.Client)
		}
		doc.QoS = append(doc.QoS, row)
	}
	doc.Brownout = p.brownout()
	if rb, ok := p.cfg.Backend.(*replbe.Backend); ok {
		s := rb.Stats()
		doc.Replication = &s
	}
	return doc
}

// WriteStatusz renders the /statusz JSON document.
func (p *Proxy) WriteStatusz(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Statusz())
}

// fileLabel names a file for the accounting tables: the path when the
// proxy has resolved one (MNT/LOOKUP observed), else the handle bytes.
func (p *Proxy) fileLabel(fh nfs3.FH) string {
	if info, ok := p.pathOf(fh); ok && info.full != "" {
		return info.full
	}
	return fmt.Sprintf("fh:%x", string(fh))
}

// clientLabel identifies the calling client: the AUTH_UNIX machine
// name and UID when present, else the transport peer address.
func clientLabel(c *sunrpc.Call) string {
	if cred, err := sunrpc.DecodeUnixCred(c.Cred); err == nil {
		return fmt.Sprintf("%s/uid=%d", cred.MachineName, cred.UID)
	}
	if c.RemoteAddr != nil {
		return c.RemoteAddr.String()
	}
	return "unknown"
}

// clientLabelMax bounds the cred->label cache; a burst of distinct
// credentials (identity churn) resets it rather than growing forever.
const clientLabelMax = 1024

// clientLabel is the cached form of the free function: deriving the
// label decodes the credential and formats a string, which would be
// the data path's biggest allocator. Lookup is by the raw cred body
// (map index by string conversion does not allocate), so steady-state
// calls cost one read-locked map hit.
func (p *Proxy) clientLabel(c *sunrpc.Call) string {
	if c.Cred.Flavor != sunrpc.AuthUnix || len(c.Cred.Body) == 0 {
		return clientLabel(c)
	}
	p.labelMu.RLock()
	l, ok := p.labels[string(c.Cred.Body)]
	p.labelMu.RUnlock()
	if ok {
		return l
	}
	l = clientLabel(c)
	p.labelMu.Lock()
	if len(p.labels) >= clientLabelMax {
		p.labels = make(map[string]string)
	}
	p.labels[string(c.Cred.Body)] = l
	p.labelMu.Unlock()
	return l
}
