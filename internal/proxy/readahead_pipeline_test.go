package proxy_test

import (
	"bytes"
	"testing"

	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/stack"

	gvfs "gvfs"
)

// patternPayload builds position-dependent content so a block stored
// at the wrong offset (a reply matched to the wrong request) fails
// comparison — a constant fill would hide ordering bugs.
func patternPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte((i / 512) * 13)
	}
	return p
}

func startPipelinedRAProxy(t *testing.T, fs *memfs.FS) (*stack.Node, func()) {
	t.Helper()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{Dir: t.TempDir(), Banks: 16, SetsPerBank: 16, Assoc: 4,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr:      server.ProxyAddr(),
		CacheConfig:       &cfg,
		ReadAhead:         8,
		ReadAheadPipeline: true,
	})
	if err != nil {
		server.Close()
		t.Fatal(err)
	}
	return node, func() {
		node.Close()
		server.Close()
	}
}

// TestReadAheadPipelinedOrdering scans a file sequentially with the
// prefetch window pipelined on the upstream connection and verifies
// every block's bytes land at the right offset: each reply must be
// matched to its own request even with the whole window outstanding.
func TestReadAheadPipelinedOrdering(t *testing.T) {
	fs := memfs.New()
	payload := patternPayload(512 * 1024)
	fs.WriteFile("/seq.bin", payload)
	node, cleanup := startPipelinedRAProxy(t, fs)
	defer cleanup()

	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.ReadFile("/seq.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("sequential read through pipelined read-ahead: err=%v, equal=%v", err, bytes.Equal(got, payload))
	}
	if n := node.Proxy.Snapshot().Counter("gvfs_proxy_prefetched_total"); n == 0 {
		t.Error("no blocks prefetched on a fully sequential scan")
	}
	// Re-read after dropping the client cache: now mostly proxy-cache
	// hits on prefetched blocks; content must still match offset by
	// offset.
	sess.DropCaches()
	got, err = sess.ReadFile("/seq.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("re-read after pipelined prefetch: err=%v", err)
	}
}

// TestReadAheadPipelinedDoesNotCorruptWrites interleaves demand writes
// with a sequential scan driving pipelined prefetches: dirty blocks
// must win over racing prefetched data.
func TestReadAheadPipelinedDoesNotCorruptWrites(t *testing.T) {
	fs := memfs.New()
	payload := patternPayload(256 * 1024)
	fs.WriteFile("/rw.bin", payload)
	node, cleanup := startPipelinedRAProxy(t, fs)
	defer cleanup()

	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	f, err := sess.Open("/rw.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8192)
	patch := bytes.Repeat([]byte{0xFF}, 8192)
	for block := 0; block < 32; block++ {
		off := int64(block) * 8192
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if block%4 == 0 {
			if _, err := f.WriteAt(patch, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := node.Proxy.Flush(); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/rw.bin")
	for block := 0; block < 32; block++ {
		want := payload[block*8192]
		if block%4 == 0 {
			want = 0xFF
		}
		if data[block*8192] != want {
			t.Fatalf("block %d = %#x, want %#x", block, data[block*8192], want)
		}
	}
}
