package proxy

// Upstream health tracking: a circuit breaker that moves the proxy into
// a degraded, serve-from-cache mode when the next hop is unreachable,
// probes for recovery, and replays acknowledged (write-back) state once
// the upstream returns. Session semantics make this sound: during a
// session the proxy owns the file's dirty state, so cached reads and
// absorbed writes remain authoritative while the WAN is down.

import (
	"context"
	"errors"
	"sync"
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/sunrpc"
)

const (
	defaultFailureThreshold = 3
	defaultProbeInterval    = time.Second
)

// health is the upstream circuit breaker. The breaker opens after
// `threshold` consecutive transport failures; while open, forwarded
// calls fail fast (bounded error latency) and cached data keeps being
// served. A probe loop issues NFS NULL upstream until it answers, then
// closes the breaker and triggers a write-back replay.
type health struct {
	p         *Proxy
	threshold int
	interval  time.Duration

	mu      sync.Mutex
	open    bool
	fails   int
	probing bool
}

func newHealth(p *Proxy, threshold int, interval time.Duration) *health {
	if threshold <= 0 {
		threshold = defaultFailureThreshold
	}
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	return &health{p: p, threshold: threshold, interval: interval}
}

// isOpen reports whether the breaker is open (upstream considered dead).
func (h *health) isOpen() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.open
}

// success records an upstream response (any RPC-level verdict counts:
// the transport works).
func (h *health) success() {
	h.mu.Lock()
	h.fails = 0
	h.mu.Unlock()
}

// failure records a transport-level upstream failure and opens the
// breaker at the threshold.
func (h *health) failure() {
	h.mu.Lock()
	h.fails++
	trip := !h.open && h.fails >= h.threshold
	if trip {
		h.open = true
		if !h.probing {
			h.probing = true
			go h.probeLoop()
		}
	}
	h.mu.Unlock()
	if trip {
		h.p.stats.breakerOpens.Add(1)
		h.p.log.Warn("circuit breaker opened; serving degraded from cache",
			"consecutive_failures", h.threshold)
	}
}

// probeLoop pings the upstream until it answers or the proxy shuts
// down, then closes the breaker and replays dirty state.
func (h *health) probeLoop() {
	for {
		select {
		case <-h.p.done:
			h.mu.Lock()
			h.probing = false
			h.mu.Unlock()
			return
		case <-time.After(h.interval):
		}
		h.p.stats.probes.Add(1)
		if h.p.probeUpstream() == nil {
			h.mu.Lock()
			h.open = false
			h.fails = 0
			h.probing = false
			h.mu.Unlock()
			h.p.log.Info("circuit breaker closed; upstream answered probe")
			go h.p.replayAfterRecovery()
			return
		}
	}
}

// isTransportErr distinguishes connection-level failures (timeouts,
// resets, exhausted retries) from an upstream that answered with an
// RPC-level error — the latter proves the path is alive.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	_, isRPC := err.(*sunrpc.RPCError)
	return !isRPC
}

// observeUpstream feeds a forwarded or backend call's outcome into the
// breaker. Backend errors carry their own classification: only
// ClassUnavailable is a transport-level failure, a timeout is neutral
// (budget exhaustion says nothing about upstream health), and any
// classified per-file error proves the path is alive. Raw relay errors
// fall back to the transport-vs-RPC distinction.
func (p *Proxy) observeUpstream(err error) {
	if p.health == nil {
		return
	}
	var be *backend.Error
	if errors.As(err, &be) {
		switch be.Class {
		case backend.ClassTimeout:
			return
		case backend.ClassUnavailable:
			p.health.failure()
		default:
			p.health.success()
		}
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// The call ran out of its propagated budget — that says nothing
		// about upstream health, so it must not poison the breaker.
		return
	}
	if isTransportErr(err) {
		p.health.failure()
	} else {
		p.health.success()
	}
}

// degraded reports whether the proxy is currently in degraded
// (serve-from-cache) mode.
func (p *Proxy) degraded() bool {
	return p.health != nil && p.health.isOpen()
}

// Degraded reports whether the proxy is in degraded mode (upstream
// considered unreachable; cached data served under session semantics).
func (p *Proxy) Degraded() bool { return p.degraded() }

// probeUpstream issues a minimal backend probe to test the path. An
// upstream that answers with an RPC-level error still counts as
// reachable (the backend contract mirrors isTransportErr).
func (p *Proxy) probeUpstream() error {
	return p.cfg.Backend.Probe()
}

// replayAfterRecovery pushes every write acknowledged during (or
// before) the outage back upstream. Failures re-open the breaker via
// the regular accounting on upstreamWrite, so replay is retried on the
// next recovery.
func (p *Proxy) replayAfterRecovery() {
	p.stats.replays.Add(1)
	p.acct.flushTriggered(TriggerReplay)
	p.log.Info("replaying write-back state after recovery")
	if p.cfg.BlockCache != nil && !p.cfg.BlockCache.Config().ReadOnly {
		if err := p.cfg.BlockCache.WriteBackAll(); err != nil {
			p.log.Warn("post-recovery replay failed; data stays dirty", "err", err)
			return
		}
	}
	p.flushFileCache()
}

// Shutdown stops background health probing. Idempotent; the stack layer
// runs it when the proxy's node closes.
func (p *Proxy) Shutdown() {
	p.closeOnce.Do(func() { close(p.done) })
}
