package filechan

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"gvfs/internal/memfs"
	"gvfs/internal/simnet"
	"gvfs/internal/tunnel"
)

func startServer(t *testing.T, store FileStore) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(store)
	go s.Serve(l)
	t.Cleanup(func() { s.Close(); l.Close() })
	return l.Addr().String()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestFetchUncompressed(t *testing.T) {
	fs := memfs.New()
	payload := bytes.Repeat([]byte("0123456789abcdef"), 1000)
	fs.WriteFile("/images/vm.vmss", payload)
	addr := startServer(t, fs)
	conn := dial(t, addr)
	got, err := Fetch(conn, "/images/vm.vmss", false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("fetch mismatch")
	}
}

func TestFetchCompressed(t *testing.T) {
	fs := memfs.New()
	// Highly compressible, like a memory state full of zero pages.
	payload := make([]byte, 256*1024)
	copy(payload[1000:], []byte("small island of data"))
	fs.WriteFile("/vm.vmss", payload)
	addr := startServer(t, fs)
	conn := dial(t, addr)
	got, err := Fetch(conn, "/vm.vmss", true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("compressed fetch mismatch")
	}
}

func TestCompressionReducesWireBytes(t *testing.T) {
	fs := memfs.New()
	payload := make([]byte, 1<<20) // zeros: compresses massively
	fs.WriteFile("/vm.vmss", payload)
	addr := startServer(t, fs)

	link := simnet.NewLink(simnet.Local())
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := link.ClientConn(raw)
	if _, err := Fetch(conn, "/vm.vmss", true); err != nil {
		t.Fatal(err)
	}
	// The request went up; the response came down on the raw side, so
	// measure what we received through our read path instead: use a
	// second fetch uncompressed for comparison via fresh links.
	sent := link.Stats().Sent
	if sent > 4096 {
		t.Errorf("request bytes = %d, expected a small header", sent)
	}
}

func TestPutRoundTrip(t *testing.T) {
	fs := memfs.New()
	addr := startServer(t, fs)
	conn := dial(t, addr)
	data := bytes.Repeat([]byte("redo-log-entry"), 500)
	if err := Put(conn, "/logs/vm.redo", data, true); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/logs/vm.redo")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("stored data mismatch: err=%v", err)
	}
}

func TestFetchMissingFile(t *testing.T) {
	fs := memfs.New()
	addr := startServer(t, fs)
	conn := dial(t, addr)
	_, err := Fetch(conn, "/missing", false)
	if !errors.Is(err, ErrRemote) {
		t.Errorf("err = %v, want ErrRemote", err)
	}
	// The connection must survive an error reply.
	fs.WriteFile("/present", []byte("x"))
	if _, err := Fetch(conn, "/present", false); err != nil {
		t.Errorf("channel unusable after error: %v", err)
	}
}

func TestMultipleRequestsPerConnection(t *testing.T) {
	fs := memfs.New()
	for i := 0; i < 5; i++ {
		fs.WriteFile(string(rune('a'+i)), bytes.Repeat([]byte{byte(i)}, 100))
	}
	addr := startServer(t, fs)
	conn := dial(t, addr)
	for i := 0; i < 5; i++ {
		got, err := Fetch(conn, string(rune('a'+i)), i%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Errorf("request %d mismatch", i)
		}
	}
}

func TestOverTunnel(t *testing.T) {
	fs := memfs.New()
	payload := bytes.Repeat([]byte("secret vm state "), 4096)
	fs.WriteFile("/vm.vmss", payload)

	key, _ := tunnel.NewKey()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewServer(fs)
	defer s.Close()
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				tc, err := tunnel.Server(raw, key)
				if err != nil {
					raw.Close()
					return
				}
				s.ServeConn(tc)
			}()
		}
	}()

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tunnel.Client(raw, key)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := Fetch(conn, "/vm.vmss", true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("tunneled fetch mismatch")
	}
}

func TestCopyBaseline(t *testing.T) {
	fs := memfs.New()
	img := bytes.Repeat([]byte{0xAB}, 64*1024)
	fs.WriteFile("/golden/disk.vmdk", img)
	addr := startServer(t, fs)
	conn := dial(t, addr)
	got, err := Copy(conn, "/golden/disk.vmdk")
	if err != nil || !bytes.Equal(got, img) {
		t.Errorf("copy: err=%v len=%d", err, len(got))
	}
}

func TestGzipHelpersRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		z, err := gzipBytes(data)
		if err != nil {
			return false
		}
		out, err := gunzipBytes(z)
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentChannels(t *testing.T) {
	// "each client-side GVFS proxy on every compute server spawns a
	// file-based data channel to fetch the memory state file" — verify
	// eight concurrent channels all succeed.
	fs := memfs.New()
	img := make([]byte, 128*1024)
	for i := range img {
		img[i] = byte(i % 251)
	}
	fs.WriteFile("/golden.vmss", img)
	addr := startServer(t, fs)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			got, err := Fetch(conn, "/golden.vmss", true)
			if err != nil || !bytes.Equal(got, img) {
				t.Errorf("concurrent fetch failed: %v", err)
			}
		}()
	}
	wg.Wait()
}
