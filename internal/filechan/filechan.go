// Package filechan implements the GVFS file-based data channel (paper
// §3.2.2): an on-demand whole-file transfer service that the client
// proxy spawns when meta-data marks a file as entirely required. The
// server side compresses the file (the paper uses GZIP), the client
// remote-copies the compressed stream (the paper uses GSI-enabled SCP
// over SSH; here the channel runs over the tunnel package), then
// uncompresses it into the file cache. The same channel runs in
// reverse for write-back uploads.
//
// The package also provides Copy, the plain full-file transfer used as
// the paper's SCP baseline for whole-image cloning.
package filechan

import (
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Op codes.
const (
	opGet = 'G'
	opPut = 'P'
)

// Status codes.
const (
	statusOK    = 0
	statusError = 1
)

// maxFileSize bounds a single transfer (4 GiB).
const maxFileSize = 4 << 30

// ErrRemote reports a server-side failure.
var ErrRemote = errors.New("filechan: remote error")

// FileStore is the server-side storage interface. memfs.FS and
// osfs.FS satisfy it.
type FileStore interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
}

// Server answers file-channel requests from a FileStore. It runs on
// the image server beside the server-side proxy.
type Server struct {
	store FileStore

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer returns a Server backed by store.
func NewServer(store FileStore) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Serve accepts and serves connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.ServeConn(conn)
	}
}

// Close terminates all connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = make(map[net.Conn]struct{})
}

// ServeConn handles requests on one connection until EOF.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		op, compressed, path, err := readHeader(conn)
		if err != nil {
			return
		}
		switch op {
		case opGet:
			s.handleGet(conn, path, compressed)
		case opPut:
			if err := s.handlePut(conn, path, compressed); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (s *Server) handleGet(conn net.Conn, path string, compressed bool) {
	data, err := s.store.ReadFile(path)
	if err != nil {
		writeStatus(conn, statusError, err.Error())
		return
	}
	payload := data
	if compressed {
		// "compress the file on the server (e.g. using GZIP)"
		payload, err = gzipBytes(data)
		if err != nil {
			writeStatus(conn, statusError, err.Error())
			return
		}
	}
	var hdr [17]byte
	hdr[0] = statusOK
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(data)))     // uncompressed size
	binary.BigEndian.PutUint64(hdr[9:17], uint64(len(payload))) // wire size
	if _, err := conn.Write(hdr[:]); err != nil {
		return
	}
	conn.Write(payload)
}

func (s *Server) handlePut(conn net.Conn, path string, compressed bool) error {
	var szBuf [8]byte
	if _, err := io.ReadFull(conn, szBuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint64(szBuf[:])
	if n > maxFileSize {
		writeStatus(conn, statusError, "file too large")
		return errors.New("oversized put")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return err
	}
	data := payload
	if compressed {
		var err error
		data, err = gunzipBytes(payload)
		if err != nil {
			writeStatus(conn, statusError, err.Error())
			return nil
		}
	}
	if err := s.store.WriteFile(path, data); err != nil {
		writeStatus(conn, statusError, err.Error())
		return nil
	}
	writeStatus(conn, statusOK, "")
	return nil
}

func writeHeader(conn net.Conn, op byte, compressed bool, path string) error {
	buf := make([]byte, 0, 6+len(path))
	buf = append(buf, op)
	if compressed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(path)))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, path...)
	_, err := conn.Write(buf)
	return err
}

func readHeader(conn net.Conn) (op byte, compressed bool, path string, err error) {
	var hdr [6]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, false, "", err
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > 4096 {
		return 0, false, "", errors.New("filechan: path too long")
	}
	p := make([]byte, n)
	if _, err = io.ReadFull(conn, p); err != nil {
		return 0, false, "", err
	}
	return hdr[0], hdr[1] == 1, string(p), nil
}

func writeStatus(conn net.Conn, status byte, msg string) {
	buf := make([]byte, 5+len(msg))
	buf[0] = status
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(msg)))
	copy(buf[5:], msg)
	conn.Write(buf)
}

func readStatus(conn net.Conn) error {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 4096 {
		return errors.New("filechan: status message too long")
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(conn, msg); err != nil {
		return err
	}
	if hdr[0] != statusOK {
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	return nil
}

// Fetch retrieves path over the channel. With compressed set, the
// server gzips and the client gunzips — the paper's
// compress/remote-copy/uncompress sequence.
func Fetch(conn net.Conn, path string, compressed bool) ([]byte, error) {
	if err := writeHeader(conn, opGet, compressed, path); err != nil {
		return nil, err
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return nil, err
	}
	if status[0] != statusOK {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return nil, err
		}
		msg := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
		io.ReadFull(conn, msg)
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	var sizes [16]byte
	if _, err := io.ReadFull(conn, sizes[:]); err != nil {
		return nil, err
	}
	rawSize := binary.BigEndian.Uint64(sizes[:8])
	wireSize := binary.BigEndian.Uint64(sizes[8:])
	if rawSize > maxFileSize || wireSize > maxFileSize {
		return nil, errors.New("filechan: oversized transfer")
	}
	payload := make([]byte, wireSize)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	if !compressed {
		return payload, nil
	}
	data, err := gunzipBytes(payload)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) != rawSize {
		return nil, fmt.Errorf("filechan: size mismatch: got %d want %d", len(data), rawSize)
	}
	return data, nil
}

// Put uploads data to path over the channel — the write-back direction
// (compress, upload, uncompress on the server).
func Put(conn net.Conn, path string, data []byte, compressed bool) error {
	payload := data
	if compressed {
		var err error
		payload, err = gzipBytes(data)
		if err != nil {
			return err
		}
	}
	if err := writeHeader(conn, opPut, compressed, path); err != nil {
		return err
	}
	var szBuf [8]byte
	binary.BigEndian.PutUint64(szBuf[:], uint64(len(payload)))
	if _, err := conn.Write(szBuf[:]); err != nil {
		return err
	}
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	return readStatus(conn)
}

// Copy transfers one file from a remote store to a local byte slice
// without compression — the behaviour of plain SCP full-file copying,
// used as the paper's baseline (1127 s for a whole VM image).
func Copy(conn net.Conn, path string) ([]byte, error) {
	return Fetch(conn, path, false)
}

func gzipBytes(data []byte) ([]byte, error) {
	var buf sliceBuffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf, nil
}

func gunzipBytes(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytesReader{data: data, pos: new(int)})
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(io.LimitReader(zr, maxFileSize))
}

type sliceBuffer []byte

func (b *sliceBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

type bytesReader struct {
	data []byte
	pos  *int
}

func (r bytesReader) Read(p []byte) (int, error) {
	if *r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[*r.pos:])
	*r.pos += n
	return n, nil
}
