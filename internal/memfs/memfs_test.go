package memfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"gvfs/internal/nfs3"
)

func mustRoot(t *testing.T, fs *FS) nfs3.FH {
	t.Helper()
	root, err := fs.Root()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestCreateLookupReadWrite(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, attr, err := fs.Create(root, "vm.vmss", nfs3.SetAttr{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != nfs3.TypeReg || attr.Size != 0 {
		t.Errorf("attr = %+v", attr)
	}
	data := []byte("memory state contents")
	if _, err := fs.Write(fh, 0, data); err != nil {
		t.Fatal(err)
	}
	fh2, attr2, err := fs.Lookup(root, "vm.vmss")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fh, fh2) {
		t.Error("lookup returned different handle")
	}
	if attr2.Size != uint64(len(data)) {
		t.Errorf("size = %d, want %d", attr2.Size, len(data))
	}
	got, eof, err := fs.Read(fh, 0, 1024)
	if err != nil || !eof || !bytes.Equal(got, data) {
		t.Errorf("read = %q eof=%v err=%v", got, eof, err)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "f", nfs3.SetAttr{}, false)
	fs.Write(fh, 0, []byte("abc"))
	data, eof, err := fs.Read(fh, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 || !eof {
		t.Errorf("read past EOF: data=%q eof=%v", data, eof)
	}
}

func TestPartialRead(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "f", nfs3.SetAttr{}, false)
	fs.Write(fh, 0, []byte("0123456789"))
	data, eof, err := fs.Read(fh, 2, 4)
	if err != nil || eof {
		t.Fatalf("err=%v eof=%v", err, eof)
	}
	if string(data) != "2345" {
		t.Errorf("data = %q", data)
	}
}

func TestSparseWrite(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "f", nfs3.SetAttr{}, false)
	attr, err := fs.Write(fh, 100, []byte("xy"))
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 102 {
		t.Errorf("size = %d, want 102", attr.Size)
	}
	data, _, _ := fs.Read(fh, 0, 200)
	if data[0] != 0 || data[99] != 0 || data[100] != 'x' || data[101] != 'y' {
		t.Error("hole not zero-filled or data misplaced")
	}
}

func TestGuardedCreateExisting(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fs.Create(root, "f", nfs3.SetAttr{}, false)
	_, _, err := fs.Create(root, "f", nfs3.SetAttr{}, true)
	if nfs3.StatusOf(err) != nfs3.ErrExist {
		t.Errorf("err = %v, want EXIST", err)
	}
}

func TestUncheckedCreateTruncates(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "f", nfs3.SetAttr{}, false)
	fs.Write(fh, 0, []byte("data"))
	var zero uint64
	_, attr, err := fs.Create(root, "f", nfs3.SetAttr{Size: &zero}, false)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 0 {
		t.Errorf("size = %d after truncating create", attr.Size)
	}
}

func TestMkdirRmdir(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	dir, _, err := fs.Mkdir(root, "images", nfs3.SetAttr{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(root, "images"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Lookup(root, "images"); nfs3.StatusOf(err) != nfs3.ErrNoEnt {
		t.Errorf("lookup after rmdir: %v", err)
	}
	_ = dir
}

func TestRmdirNotEmpty(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	dir, _, _ := fs.Mkdir(root, "d", nfs3.SetAttr{})
	fs.Create(dir, "f", nfs3.SetAttr{}, false)
	if err := fs.Rmdir(root, "d"); nfs3.StatusOf(err) != nfs3.ErrNotEmpty {
		t.Errorf("err = %v, want NOTEMPTY", err)
	}
}

func TestRemoveDirFails(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fs.Mkdir(root, "d", nfs3.SetAttr{})
	if err := fs.Remove(root, "d"); nfs3.StatusOf(err) != nfs3.ErrIsDir {
		t.Errorf("err = %v, want ISDIR", err)
	}
}

func TestSymlinkReadlink(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, attr, err := fs.Symlink(root, "disk.vmdk", "/images/golden/disk.vmdk")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != nfs3.TypeLnk {
		t.Errorf("type = %d", attr.Type)
	}
	target, err := fs.ReadLink(fh)
	if err != nil || target != "/images/golden/disk.vmdk" {
		t.Errorf("target = %q err=%v", target, err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "old", nfs3.SetAttr{}, false)
	fs.Write(fh, 0, []byte("payload"))
	if err := fs.Rename(root, "old", root, "new"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Lookup(root, "old"); nfs3.StatusOf(err) != nfs3.ErrNoEnt {
		t.Error("old name still present")
	}
	nfh, _, err := fs.Lookup(root, "new")
	if err != nil {
		t.Fatal(err)
	}
	data, _, _ := fs.Read(nfh, 0, 100)
	if string(data) != "payload" {
		t.Errorf("data = %q", data)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	a, _, _ := fs.Create(root, "a", nfs3.SetAttr{}, false)
	fs.Write(a, 0, []byte("A"))
	b, _, _ := fs.Create(root, "b", nfs3.SetAttr{}, false)
	fs.Write(b, 0, []byte("B"))
	if err := fs.Rename(root, "a", root, "b"); err != nil {
		t.Fatal(err)
	}
	fh, _, _ := fs.Lookup(root, "b")
	data, _, _ := fs.Read(fh, 0, 10)
	if string(data) != "A" {
		t.Errorf("b = %q, want A", data)
	}
}

func TestReadDirPagination(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	const n = 50
	for i := 0; i < n; i++ {
		fs.Create(root, fmt.Sprintf("file%03d", i), nfs3.SetAttr{}, false)
	}
	seen := map[string]bool{}
	var cookie uint64
	for {
		entries, eof, err := fs.ReadDir(root, cookie, 256)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if seen[e.Name] {
				t.Errorf("duplicate entry %q", e.Name)
			}
			seen[e.Name] = true
			cookie = e.Cookie
		}
		if eof {
			break
		}
		if len(entries) == 0 {
			t.Fatal("no progress")
		}
	}
	if len(seen) != n {
		t.Errorf("saw %d entries, want %d", len(seen), n)
	}
}

func TestSetAttrTruncateAndExtend(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "f", nfs3.SetAttr{}, false)
	fs.Write(fh, 0, []byte("0123456789"))
	sz := uint64(4)
	attr, err := fs.SetAttr(fh, nfs3.SetAttr{Size: &sz})
	if err != nil || attr.Size != 4 {
		t.Fatalf("truncate: %v size=%d", err, attr.Size)
	}
	sz = 8
	attr, _ = fs.SetAttr(fh, nfs3.SetAttr{Size: &sz})
	data, _, _ := fs.Read(fh, 0, 10)
	if string(data) != "0123\x00\x00\x00\x00" {
		t.Errorf("data = %q", data)
	}
	if attr.Size != 8 {
		t.Errorf("size = %d", attr.Size)
	}
}

func TestStaleHandle(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	fh, _, _ := fs.Create(root, "f", nfs3.SetAttr{}, false)
	fs.Remove(root, "f")
	if _, err := fs.GetAttr(fh); nfs3.StatusOf(err) != nfs3.ErrStale {
		t.Errorf("err = %v, want STALE", err)
	}
}

func TestBadHandle(t *testing.T) {
	fs := New()
	if _, err := fs.GetAttr(nfs3.FH{1, 2, 3}); nfs3.StatusOf(err) != nfs3.ErrBadHandle {
		t.Errorf("err = %v, want BADHANDLE", err)
	}
}

func TestInvalidNames(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	for _, name := range []string{"", ".", "..", "a/b"} {
		if _, _, err := fs.Create(root, name, nfs3.SetAttr{}, false); err == nil {
			t.Errorf("create %q succeeded", name)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/images/golden/vm.vmx", []byte("config")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/images/golden/vm.vmx")
	if err != nil || string(data) != "config" {
		t.Fatalf("data=%q err=%v", data, err)
	}
	fh, err := fs.LookupPath("/images/golden")
	if err != nil {
		t.Fatal(err)
	}
	attr, err := fs.GetAttr(fh)
	if err != nil || attr.Type != nfs3.TypeDir {
		t.Errorf("attr=%+v err=%v", attr, err)
	}
	if sz, _ := fs.Size("/images/golden/vm.vmx"); sz != 6 {
		t.Errorf("size = %d", sz)
	}
}

func TestFSStat(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", make([]byte, 1000))
	root := mustRoot(t, fs)
	st, err := fs.FSStat(root)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes-st.FreeBytes != 1000 {
		t.Errorf("used = %d, want 1000", st.TotalBytes-st.FreeBytes)
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New()
	root := mustRoot(t, fs)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", i)
			fh, _, err := fs.Create(root, name, nfs3.SetAttr{}, false)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := fs.Write(fh, uint64(j*10), []byte("0123456789")); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	entries, _, _ := fs.ReadDir(root, 0, 1<<20)
	if len(entries) != 16 {
		t.Errorf("entries = %d", len(entries))
	}
}

// Property: any sequence of (offset, data) writes followed by a full
// read matches an in-memory model applied the same way.
func TestQuickWriteReadModel(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		fs := New()
		root, _ := fs.Root()
		fh, _, err := fs.Create(root, "f", nfs3.SetAttr{}, false)
		if err != nil {
			return false
		}
		var model []byte
		for _, o := range ops {
			if len(o.Data) > 256 {
				o.Data = o.Data[:256]
			}
			end := int(o.Off) + len(o.Data)
			if end > len(model) {
				model = append(model, make([]byte, end-len(model))...)
			}
			copy(model[o.Off:end], o.Data)
			if _, err := fs.Write(fh, uint64(o.Off), o.Data); err != nil {
				return false
			}
		}
		got, _, err := fs.Read(fh, 0, 1<<20)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
