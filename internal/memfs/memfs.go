// Package memfs provides an in-memory hierarchical filesystem that
// implements nfs3.Backend. It is the backing store for the userspace
// NFS servers in tests, examples and benchmarks, standing in for the
// image server's local disk. File handles are 8-byte big-endian node
// IDs; all operations are safe for concurrent use.
package memfs

import (
	"encoding/binary"
	"path"
	"sort"
	"strings"
	"sync"

	"gvfs/internal/nfs3"
)

type node struct {
	id                  uint64
	ftype               nfs3.FileType
	mode                uint32
	uid, gid            uint32
	data                []byte
	children            map[string]*node
	target              string // symlink
	nlink               uint32
	atime, mtime, ctime nfs3.Time
}

// FS is an in-memory filesystem.
type FS struct {
	mu     sync.RWMutex
	nodes  map[uint64]*node
	root   *node
	nextID uint64
	clock  uint32 // logical clock for deterministic timestamps
}

// New returns an empty filesystem with a root directory.
func New() *FS {
	fs := &FS{nodes: make(map[uint64]*node), nextID: 2}
	fs.root = &node{
		id:       1,
		ftype:    nfs3.TypeDir,
		mode:     0755,
		children: make(map[string]*node),
		nlink:    2,
	}
	fs.nodes[1] = fs.root
	return fs
}

func (fs *FS) tick() nfs3.Time {
	fs.clock++
	return nfs3.Time{Sec: fs.clock, Nsec: 0}
}

func fhOf(id uint64) nfs3.FH {
	fh := make(nfs3.FH, 8)
	binary.BigEndian.PutUint64(fh, id)
	return fh
}

func (fs *FS) get(fh nfs3.FH) (*node, error) {
	if len(fh) != 8 {
		return nil, &nfs3.Error{Status: nfs3.ErrBadHandle}
	}
	n, ok := fs.nodes[binary.BigEndian.Uint64(fh)]
	if !ok {
		return nil, &nfs3.Error{Status: nfs3.ErrStale}
	}
	return n, nil
}

func (fs *FS) getDir(fh nfs3.FH) (*node, error) {
	n, err := fs.get(fh)
	if err != nil {
		return nil, err
	}
	if n.ftype != nfs3.TypeDir {
		return nil, &nfs3.Error{Status: nfs3.ErrNotDir}
	}
	return n, nil
}

func (n *node) attr() nfs3.Fattr {
	size := uint64(len(n.data))
	if n.ftype == nfs3.TypeLnk {
		size = uint64(len(n.target))
	}
	return nfs3.Fattr{
		Type:   n.ftype,
		Mode:   n.mode,
		Nlink:  n.nlink,
		UID:    n.uid,
		GID:    n.gid,
		Size:   size,
		Used:   size,
		FSID:   0x6d656d6673, // "memfs"
		FileID: n.id,
		Atime:  n.atime,
		Mtime:  n.mtime,
		Ctime:  n.ctime,
	}
}

// Root implements nfs3.Backend.
func (fs *FS) Root() (nfs3.FH, error) { return fhOf(1), nil }

// GetAttr implements nfs3.Backend.
func (fs *FS) GetAttr(fh nfs3.FH) (nfs3.Fattr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(fh)
	if err != nil {
		return nfs3.Fattr{}, err
	}
	return n.attr(), nil
}

// SetAttr implements nfs3.Backend.
func (fs *FS) SetAttr(fh nfs3.FH, s nfs3.SetAttr) (nfs3.Fattr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(fh)
	if err != nil {
		return nfs3.Fattr{}, err
	}
	if s.Mode != nil {
		n.mode = *s.Mode
	}
	if s.UID != nil {
		n.uid = *s.UID
	}
	if s.GID != nil {
		n.gid = *s.GID
	}
	if s.Size != nil {
		if n.ftype == nfs3.TypeDir {
			return nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrIsDir}
		}
		sz := *s.Size
		if sz <= uint64(len(n.data)) {
			n.data = n.data[:sz]
		} else {
			n.data = append(n.data, make([]byte, sz-uint64(len(n.data)))...)
		}
		n.mtime = fs.tick()
	}
	switch s.AtimeHow {
	case nfs3.SetToServer:
		n.atime = fs.tick()
	case nfs3.SetToClient:
		n.atime = s.Atime
	}
	switch s.MtimeHow {
	case nfs3.SetToServer:
		n.mtime = fs.tick()
	case nfs3.SetToClient:
		n.mtime = s.Mtime
	}
	n.ctime = fs.tick()
	return n.attr(), nil
}

// Lookup implements nfs3.Backend.
func (fs *FS) Lookup(dir nfs3.FH, name string) (nfs3.FH, nfs3.Fattr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return nil, nfs3.Fattr{}, err
	}
	switch name {
	case ".", "":
		return fhOf(d.id), d.attr(), nil
	}
	child, ok := d.children[name]
	if !ok {
		return nil, nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrNoEnt, Op: "lookup " + name}
	}
	return fhOf(child.id), child.attr(), nil
}

// ReadLink implements nfs3.Backend.
func (fs *FS) ReadLink(fh nfs3.FH) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(fh)
	if err != nil {
		return "", err
	}
	if n.ftype != nfs3.TypeLnk {
		return "", &nfs3.Error{Status: nfs3.ErrInval}
	}
	return n.target, nil
}

// Read implements nfs3.Backend.
func (fs *FS) Read(fh nfs3.FH, off uint64, count uint32) ([]byte, bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.get(fh)
	if err != nil {
		return nil, false, err
	}
	if n.ftype == nfs3.TypeDir {
		return nil, false, &nfs3.Error{Status: nfs3.ErrIsDir}
	}
	size := uint64(len(n.data))
	if off >= size {
		return nil, true, nil
	}
	end := off + uint64(count)
	if end > size {
		end = size
	}
	out := make([]byte, end-off)
	copy(out, n.data[off:end])
	return out, end == size, nil
}

// Write implements nfs3.Backend.
func (fs *FS) Write(fh nfs3.FH, off uint64, data []byte) (nfs3.Fattr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.get(fh)
	if err != nil {
		return nfs3.Fattr{}, err
	}
	if n.ftype == nfs3.TypeDir {
		return nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrIsDir}
	}
	end := off + uint64(len(data))
	if end > uint64(len(n.data)) {
		n.data = append(n.data, make([]byte, end-uint64(len(n.data)))...)
	}
	copy(n.data[off:end], data)
	n.mtime = fs.tick()
	return n.attr(), nil
}

func (fs *FS) newNode(ftype nfs3.FileType, mode uint32) *node {
	n := &node{
		id:    fs.nextID,
		ftype: ftype,
		mode:  mode,
		nlink: 1,
	}
	if ftype == nfs3.TypeDir {
		n.children = make(map[string]*node)
		n.nlink = 2
	}
	now := fs.tick()
	n.atime, n.mtime, n.ctime = now, now, now
	fs.nextID++
	fs.nodes[n.id] = n
	return n
}

// Create implements nfs3.Backend.
func (fs *FS) Create(dir nfs3.FH, name string, attr nfs3.SetAttr, guarded bool) (nfs3.FH, nfs3.Fattr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return nil, nfs3.Fattr{}, err
	}
	if err := checkName(name); err != nil {
		return nil, nfs3.Fattr{}, err
	}
	if existing, ok := d.children[name]; ok {
		if guarded {
			return nil, nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrExist, Op: "create " + name}
		}
		if existing.ftype != nfs3.TypeReg {
			return nil, nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrExist, Op: "create " + name}
		}
		if attr.Size != nil && *attr.Size == 0 {
			existing.data = existing.data[:0]
			existing.mtime = fs.tick()
		}
		return fhOf(existing.id), existing.attr(), nil
	}
	mode := uint32(0644)
	if attr.Mode != nil {
		mode = *attr.Mode
	}
	n := fs.newNode(nfs3.TypeReg, mode)
	if attr.UID != nil {
		n.uid = *attr.UID
	}
	if attr.GID != nil {
		n.gid = *attr.GID
	}
	d.children[name] = n
	d.mtime = fs.tick()
	return fhOf(n.id), n.attr(), nil
}

// Mkdir implements nfs3.Backend.
func (fs *FS) Mkdir(dir nfs3.FH, name string, attr nfs3.SetAttr) (nfs3.FH, nfs3.Fattr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return nil, nfs3.Fattr{}, err
	}
	if err := checkName(name); err != nil {
		return nil, nfs3.Fattr{}, err
	}
	if _, ok := d.children[name]; ok {
		return nil, nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrExist, Op: "mkdir " + name}
	}
	mode := uint32(0755)
	if attr.Mode != nil {
		mode = *attr.Mode
	}
	n := fs.newNode(nfs3.TypeDir, mode)
	d.children[name] = n
	d.nlink++
	d.mtime = fs.tick()
	return fhOf(n.id), n.attr(), nil
}

// Symlink implements nfs3.Backend.
func (fs *FS) Symlink(dir nfs3.FH, name, target string) (nfs3.FH, nfs3.Fattr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return nil, nfs3.Fattr{}, err
	}
	if err := checkName(name); err != nil {
		return nil, nfs3.Fattr{}, err
	}
	if _, ok := d.children[name]; ok {
		return nil, nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrExist, Op: "symlink " + name}
	}
	n := fs.newNode(nfs3.TypeLnk, 0777)
	n.target = target
	d.children[name] = n
	d.mtime = fs.tick()
	return fhOf(n.id), n.attr(), nil
}

// Remove implements nfs3.Backend.
func (fs *FS) Remove(dir nfs3.FH, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return err
	}
	child, ok := d.children[name]
	if !ok {
		return &nfs3.Error{Status: nfs3.ErrNoEnt, Op: "remove " + name}
	}
	if child.ftype == nfs3.TypeDir {
		return &nfs3.Error{Status: nfs3.ErrIsDir, Op: "remove " + name}
	}
	delete(d.children, name)
	delete(fs.nodes, child.id)
	d.mtime = fs.tick()
	return nil
}

// Rmdir implements nfs3.Backend.
func (fs *FS) Rmdir(dir nfs3.FH, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return err
	}
	child, ok := d.children[name]
	if !ok {
		return &nfs3.Error{Status: nfs3.ErrNoEnt, Op: "rmdir " + name}
	}
	if child.ftype != nfs3.TypeDir {
		return &nfs3.Error{Status: nfs3.ErrNotDir, Op: "rmdir " + name}
	}
	if len(child.children) != 0 {
		return &nfs3.Error{Status: nfs3.ErrNotEmpty, Op: "rmdir " + name}
	}
	delete(d.children, name)
	delete(fs.nodes, child.id)
	d.nlink--
	d.mtime = fs.tick()
	return nil
}

// Rename implements nfs3.Backend.
func (fs *FS) Rename(fromDir nfs3.FH, fromName string, toDir nfs3.FH, toName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, err := fs.getDir(fromDir)
	if err != nil {
		return err
	}
	td, err := fs.getDir(toDir)
	if err != nil {
		return err
	}
	child, ok := fd.children[fromName]
	if !ok {
		return &nfs3.Error{Status: nfs3.ErrNoEnt, Op: "rename " + fromName}
	}
	if err := checkName(toName); err != nil {
		return err
	}
	if existing, ok := td.children[toName]; ok {
		if existing.ftype == nfs3.TypeDir {
			return &nfs3.Error{Status: nfs3.ErrExist, Op: "rename " + toName}
		}
		delete(fs.nodes, existing.id)
	}
	delete(fd.children, fromName)
	td.children[toName] = child
	now := fs.tick()
	fd.mtime, td.mtime = now, now
	return nil
}

// ReadDir implements nfs3.Backend. Cookies are 1-based indexes into the
// sorted name list; maxBytes approximates the encoded reply budget.
func (fs *FS) ReadDir(dir nfs3.FH, cookie uint64, maxBytes uint32) ([]nfs3.DirEntry, bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, err := fs.getDir(dir)
	if err != nil {
		return nil, false, err
	}
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []nfs3.DirEntry
	used := uint32(0)
	for i := int(cookie); i < len(names); i++ {
		child := d.children[names[i]]
		cost := uint32(24 + len(names[i]) + 8)
		if used+cost > maxBytes && len(out) > 0 {
			return out, false, nil
		}
		used += cost
		attr := child.attr()
		out = append(out, nfs3.DirEntry{
			FileID: child.id,
			Name:   names[i],
			Cookie: uint64(i + 1),
			Attr:   &attr,
			Handle: fhOf(child.id),
		})
	}
	return out, true, nil
}

// FSStat implements nfs3.Backend.
func (fs *FS) FSStat(fh nfs3.FH) (nfs3.FSStatRes, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, err := fs.get(fh); err != nil {
		return nfs3.FSStatRes{}, err
	}
	var used uint64
	for _, n := range fs.nodes {
		used += uint64(len(n.data))
	}
	const capacity = 576 << 30 // the paper's LAN image server: 576 GB
	return nfs3.FSStatRes{
		TotalBytes: capacity,
		FreeBytes:  capacity - used,
		AvailBytes: capacity - used,
		TotalFiles: 1 << 20,
		FreeFiles:  1<<20 - uint64(len(fs.nodes)),
		AvailFiles: 1<<20 - uint64(len(fs.nodes)),
		Invarsec:   0,
	}, nil
}

// Commit implements nfs3.Backend. Memory is always "stable" here.
func (fs *FS) Commit(fh nfs3.FH) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, err := fs.get(fh)
	return err
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." || strings.Contains(name, "/") {
		return &nfs3.Error{Status: nfs3.ErrInval, Op: "name " + name}
	}
	if len(name) > 255 {
		return &nfs3.Error{Status: nfs3.ErrNameTooLong}
	}
	return nil
}

// --- Convenience path-based helpers (test/benchmark setup) ---

func (fs *FS) walk(p string) (*node, error) {
	cur := fs.root
	for _, part := range splitPath(p) {
		if cur.ftype != nfs3.TypeDir {
			return nil, &nfs3.Error{Status: nfs3.ErrNotDir, Op: p}
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, &nfs3.Error{Status: nfs3.ErrNoEnt, Op: p}
		}
		cur = next
	}
	return cur, nil
}

func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// MkdirAll creates a directory path, making parents as needed.
func (fs *FS) MkdirAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.root
	for _, part := range splitPath(p) {
		next, ok := cur.children[part]
		if !ok {
			next = fs.newNode(nfs3.TypeDir, 0755)
			cur.children[part] = next
			cur.nlink++
		}
		if next.ftype != nfs3.TypeDir {
			return &nfs3.Error{Status: nfs3.ErrNotDir, Op: p}
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces the file at path p with data.
func (fs *FS) WriteFile(p string, data []byte) error {
	dir, base := path.Split(path.Clean("/" + p))
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.walk(dir)
	if err != nil {
		return err
	}
	n, ok := d.children[base]
	if !ok {
		n = fs.newNode(nfs3.TypeReg, 0644)
		d.children[base] = n
	}
	if n.ftype != nfs3.TypeReg {
		return &nfs3.Error{Status: nfs3.ErrIsDir, Op: p}
	}
	n.data = append(n.data[:0], data...)
	n.mtime = fs.tick()
	return nil
}

// ReadFile returns the contents of the file at path p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(p)
	if err != nil {
		return nil, err
	}
	if n.ftype != nfs3.TypeReg {
		return nil, &nfs3.Error{Status: nfs3.ErrIsDir, Op: p}
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// LookupPath resolves a slash-separated path to a file handle.
func (fs *FS) LookupPath(p string) (nfs3.FH, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(p)
	if err != nil {
		return nil, err
	}
	return fhOf(n.id), nil
}

// Size returns the size of the file at path p.
func (fs *FS) Size(p string) (uint64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(p)
	if err != nil {
		return 0, err
	}
	return uint64(len(n.data)), nil
}
