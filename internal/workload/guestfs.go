// Package workload reproduces the I/O structure of the paper's three
// application benchmarks — SPECseis96, the LaTeX interactive document
// benchmark, and the Red Hat 2.4.18 kernel compilation — as drivers of
// VM virtual-disk traffic. Inside a paper VM these applications issue
// file I/O that the guest OS turns into block reads/writes on the
// .vmdk file over NFS; GuestFS performs the same translation here, so
// the proxy chain sees the same traffic shape: large sequential trace
// writes (SPECseis phase 1), repeated reads of program binaries with
// small patch/output writes (LaTeX), and wide reads of a source tree
// with many object writes (kernel compilation).
//
// All sizes and compute times take the paper's full-scale values,
// divided by a configurable Scale so experiments complete quickly
// while preserving every ratio.
package workload

import (
	"fmt"
	"io"
	"sync"
)

// DiskFile is the VM virtual disk interface GuestFS drives; *gvfs.File
// implements it.
type DiskFile interface {
	io.ReaderAt
	io.WriterAt
}

type extent struct {
	off  uint64
	size uint64
}

// GuestFS maps guest files onto extents of the VM's virtual disk,
// modelling the guest filesystem's layout: preinstalled software (the
// benchmark binaries and datasets baked into the golden image) lives
// in the low region of the disk; files the benchmark writes land in a
// scratch region above it.
type GuestFS struct {
	disk      DiskFile
	blockSize uint64

	mu         sync.Mutex
	installed  map[string]extent
	written    map[string]extent
	installAt  uint64
	scratchAt  uint64
	scratchTop uint64

	bytesRead    uint64
	bytesWritten uint64
}

// FileSpec declares one preinstalled guest file.
type FileSpec struct {
	Name string
	Size uint64
}

// NewGuestFS lays out a guest filesystem on disk. diskSize bounds the
// scratch region; installed files are allocated from the front of the
// disk in the order given.
func NewGuestFS(disk DiskFile, diskSize uint64, blockSize uint32, installed []FileSpec) (*GuestFS, error) {
	g := &GuestFS{
		disk:       disk,
		blockSize:  uint64(blockSize),
		installed:  make(map[string]extent),
		written:    make(map[string]extent),
		scratchTop: diskSize,
	}
	for _, f := range installed {
		g.installed[f.Name] = extent{off: g.installAt, size: f.Size}
		g.installAt += align(f.Size, g.blockSize)
	}
	// Scratch begins at the installed high-water mark, block aligned.
	g.scratchAt = align(g.installAt, g.blockSize)
	if g.scratchAt >= diskSize {
		return nil, fmt.Errorf("workload: installed files (%d bytes) exceed disk size %d", g.installAt, diskSize)
	}
	return g, nil
}

func align(n, bs uint64) uint64 {
	if r := n % bs; r != 0 {
		return n + bs - r
	}
	return n
}

// BytesRead returns the total bytes read through the guest.
func (g *GuestFS) BytesRead() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bytesRead
}

// BytesWritten returns the total bytes written through the guest.
func (g *GuestFS) BytesWritten() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bytesWritten
}

func (g *GuestFS) lookup(name string) (extent, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.written[name]; ok {
		return e, true
	}
	e, ok := g.installed[name]
	return e, ok
}

// ReadFile reads the whole guest file in block-size chunks, returning
// the byte count.
func (g *GuestFS) ReadFile(name string) (uint64, error) {
	e, ok := g.lookup(name)
	if !ok {
		return 0, fmt.Errorf("workload: guest file %q does not exist", name)
	}
	return g.readExtent(e)
}

// ReadFileRange reads count bytes starting at off within the file.
func (g *GuestFS) ReadFileRange(name string, off, count uint64) (uint64, error) {
	e, ok := g.lookup(name)
	if !ok {
		return 0, fmt.Errorf("workload: guest file %q does not exist", name)
	}
	if off >= e.size {
		return 0, nil
	}
	if off+count > e.size {
		count = e.size - off
	}
	return g.readExtent(extent{off: e.off + off, size: count})
}

func (g *GuestFS) readExtent(e extent) (uint64, error) {
	buf := make([]byte, g.blockSize)
	var done uint64
	for done < e.size {
		n := g.blockSize
		if e.size-done < n {
			n = e.size - done
		}
		if _, err := g.disk.ReadAt(buf[:n], int64(e.off+done)); err != nil && err != io.EOF {
			return done, err
		}
		done += n
	}
	g.mu.Lock()
	g.bytesRead += done
	g.mu.Unlock()
	return done, nil
}

var fillPattern = func() []byte {
	p := make([]byte, 8192)
	for i := range p {
		p[i] = byte(i*131 + 17)
	}
	return p
}()

// WriteFile creates or overwrites a guest file of the given size,
// writing deterministic content block by block.
func (g *GuestFS) WriteFile(name string, size uint64) error {
	g.mu.Lock()
	e, ok := g.written[name]
	if !ok || e.size < size {
		// Allocate a fresh (or larger) extent in the scratch region.
		e = extent{off: g.scratchAt, size: size}
		needed := align(size, g.blockSize)
		if g.scratchAt+needed > g.scratchTop {
			g.mu.Unlock()
			return fmt.Errorf("workload: guest disk full writing %q (%d bytes)", name, size)
		}
		g.scratchAt += needed
	} else {
		e.size = size
	}
	g.written[name] = e
	g.mu.Unlock()
	return g.writeExtent(extent{off: e.off, size: size})
}

// PatchFile overwrites count bytes at off within an existing file —
// the LaTeX benchmark's per-iteration "patch" of one input.
func (g *GuestFS) PatchFile(name string, off, count uint64) error {
	e, ok := g.lookup(name)
	if !ok {
		return fmt.Errorf("workload: guest file %q does not exist", name)
	}
	if off+count > e.size {
		return fmt.Errorf("workload: patch beyond %q", name)
	}
	return g.writeExtent(extent{off: e.off + off, size: count})
}

func (g *GuestFS) writeExtent(e extent) error {
	var done uint64
	for done < e.size {
		n := g.blockSize
		if e.size-done < n {
			n = e.size - done
		}
		chunk := fillPattern
		if uint64(len(chunk)) > n {
			chunk = chunk[:n]
		}
		for uint64(len(chunk)) < n {
			chunk = append(chunk, fillPattern...)
		}
		if _, err := g.disk.WriteAt(chunk[:n], int64(e.off+done)); err != nil {
			return err
		}
		done += n
	}
	g.mu.Lock()
	g.bytesWritten += done
	g.mu.Unlock()
	return nil
}

// FileSize reports the size of a guest file.
func (g *GuestFS) FileSize(name string) (uint64, bool) {
	e, ok := g.lookup(name)
	return e.size, ok
}
