package workload

import (
	"fmt"
	"time"
)

// Params tune a workload run.
type Params struct {
	// Scale divides all data sizes and compute times (default 1 =
	// paper scale). Ratios between scenarios are scale-invariant.
	Scale float64
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// ScaledSize scales a paper-scale byte count by 1/Scale (exported for
// harness code that sizes ad-hoc transfers consistently).
func (p Params) ScaledSize(bytes uint64) uint64 { return p.size(bytes) }

// size scales a paper-scale byte count.
func (p Params) size(bytes uint64) uint64 {
	s := uint64(float64(bytes) / p.scale())
	if s == 0 {
		s = 1
	}
	return s
}

// compute sleeps for a paper-scale CPU time, scaled down. It stands in
// for the benchmark's computation phases (the VM's CPU work does not
// touch the distributed file system, so a scaled delay preserves the
// compute/I/O ratio).
func (p Params) compute(d time.Duration) {
	time.Sleep(time.Duration(float64(d) / p.scale()))
}

// PhaseResult is the measured duration of one workload phase.
type PhaseResult struct {
	Name     string
	Duration time.Duration
}

// Report is the outcome of one workload run.
type Report struct {
	Workload string
	Phases   []PhaseResult
	Total    time.Duration
}

// Phase returns the duration of the named phase.
func (r *Report) Phase(name string) time.Duration {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// runPhases executes named phases, timing each.
func runPhases(workload string, phases []struct {
	name string
	fn   func() error
}) (*Report, error) {
	rep := &Report{Workload: workload}
	start := time.Now()
	for _, ph := range phases {
		t0 := time.Now()
		if err := ph.fn(); err != nil {
			return rep, fmt.Errorf("%s/%s: %w", workload, ph.name, err)
		}
		rep.Phases = append(rep.Phases, PhaseResult{Name: ph.name, Duration: time.Since(t0)})
	}
	rep.Total = time.Since(start)
	return rep, nil
}

// --- SPECseis96 ---

// SPECseisInstall returns the preinstalled guest files the SPECseis
// benchmark needs (binary + seismic input dataset).
func SPECseisInstall(p Params) []FileSpec {
	return []FileSpec{
		{Name: "bin/specseis", Size: p.size(8 << 20)},
		{Name: "data/seis.input", Size: p.size(16 << 20)},
	}
}

// SPECseis models the SPEC high-performance group seismic benchmark in
// sequential mode with the small dataset: four phases where phase 1
// generates a large trace file on disk (I/O intensive) and phase 4
// performs intensive seismic processing (compute intensive).
func SPECseis(g *GuestFS, p Params) (*Report, error) {
	const (
		traceSize   = 112 << 20
		interimSize = 20 << 20
		resultSize  = 4 << 20
	)
	return runPhases("SPECseis", []struct {
		name string
		fn   func() error
	}{
		{"phase1", func() error {
			// Data generation: read the input set, write the trace.
			if _, err := g.ReadFile("bin/specseis"); err != nil {
				return err
			}
			if _, err := g.ReadFile("data/seis.input"); err != nil {
				return err
			}
			p.compute(45 * time.Second)
			return g.WriteFile("work/seis.trace", p.size(traceSize))
		}},
		{"phase2", func() error {
			if _, err := g.ReadFile("work/seis.trace"); err != nil {
				return err
			}
			p.compute(110 * time.Second)
			return g.WriteFile("work/seis.stack", p.size(interimSize))
		}},
		{"phase3", func() error {
			if _, err := g.ReadFile("work/seis.trace"); err != nil {
				return err
			}
			if _, err := g.ReadFile("work/seis.stack"); err != nil {
				return err
			}
			p.compute(110 * time.Second)
			return g.WriteFile("work/seis.migr", p.size(interimSize))
		}},
		{"phase4", func() error {
			// Seismic processing: compute-dominated.
			if _, err := g.ReadFile("work/seis.migr"); err != nil {
				return err
			}
			p.compute(480 * time.Second)
			return g.WriteFile("work/seis.result", p.size(resultSize))
		}},
	})
}

// --- LaTeX interactive document benchmark ---

// LaTeXIterations is the paper's iteration count.
const LaTeXIterations = 20

// LaTeXInstall returns the preinstalled files: the TeX distribution
// (binaries, fonts, packages) and the 190-page document's sources.
func LaTeXInstall(p Params) []FileSpec {
	specs := []FileSpec{
		{Name: "bin/texdist", Size: p.size(40 << 20)},
		{Name: "lib/fonts", Size: p.size(12 << 20)},
	}
	for i := 0; i < 20; i++ {
		specs = append(specs, FileSpec{
			Name: fmt.Sprintf("doc/chapter%02d.tex", i),
			Size: p.size(100 << 10),
		})
	}
	return specs
}

// LaTeX models the interactive document-processing session: 20
// iterations of latex+bibtex+dvipdf over a 190-page document, patching
// a different version of one input file each iteration.
func LaTeX(g *GuestFS, p Params) (*Report, error) {
	var phases []struct {
		name string
		fn   func() error
	}
	for i := 0; i < LaTeXIterations; i++ {
		iter := i
		phases = append(phases, struct {
			name string
			fn   func() error
		}{fmt.Sprintf("iter%02d", iter+1), func() error {
			// "patch" generates a different version of one input.
			target := fmt.Sprintf("doc/chapter%02d.tex", iter%20)
			if sz, ok := g.FileSize(target); ok && sz > 0 {
				if err := g.PatchFile(target, 0, sz/2+1); err != nil {
					return err
				}
			}
			// latex/bibtex/dvipdf read the TeX distribution and all
			// document sources...
			if _, err := g.ReadFile("bin/texdist"); err != nil {
				return err
			}
			if _, err := g.ReadFile("lib/fonts"); err != nil {
				return err
			}
			for j := 0; j < 20; j++ {
				if _, err := g.ReadFile(fmt.Sprintf("doc/chapter%02d.tex", j)); err != nil {
					return err
				}
			}
			// ...compute...
			p.compute(11 * time.Second)
			// ...and write the .aux/.dvi/.pdf outputs.
			if err := g.WriteFile("doc/main.aux", p.size(256<<10)); err != nil {
				return err
			}
			if err := g.WriteFile("doc/main.dvi", p.size(700<<10)); err != nil {
				return err
			}
			return g.WriteFile("doc/main.pdf", p.size(900<<10))
		}})
	}
	return runPhases("LaTeX", phases)
}

// FirstIteration returns the first iteration's duration of a LaTeX
// report (the paper's startup-latency metric).
func FirstIteration(r *Report) time.Duration {
	if len(r.Phases) == 0 {
		return 0
	}
	return r.Phases[0].Duration
}

// MeanOfRest returns the mean of iterations 2..n (the paper's
// steady-state interactive response-time metric).
func MeanOfRest(r *Report) time.Duration {
	if len(r.Phases) < 2 {
		return 0
	}
	var sum time.Duration
	for _, ph := range r.Phases[1:] {
		sum += ph.Duration
	}
	return sum / time.Duration(len(r.Phases)-1)
}

// --- Kernel compilation ---

// KernelSourceFiles is the number of modelled source files.
const KernelSourceFiles = 64

// KernelInstall returns the preinstalled Red Hat 2.4.18 source tree:
// headers plus source shards (modelled as 64 extents of a 160 MB
// tree, preserving many-file access without per-file RPC storms the
// paper's NFS clients would also batch).
func KernelInstall(p Params) []FileSpec {
	specs := []FileSpec{
		{Name: "usr/bin/toolchain", Size: p.size(24 << 20)},
		{Name: "linux/include", Size: p.size(24 << 20)},
	}
	for i := 0; i < KernelSourceFiles; i++ {
		specs = append(specs, FileSpec{
			Name: fmt.Sprintf("linux/src%02d.c", i),
			Size: p.size(136 << 20 / KernelSourceFiles),
		})
	}
	return specs
}

// KernelCompile models one full build: "make dep", "make bzImage",
// "make modules", "make modules_install" — substantial reads and
// writes over a large number of files. Run it twice against the same
// session for the paper's cold/warm comparison.
func KernelCompile(g *GuestFS, p Params) (*Report, error) {
	readSources := func(fraction float64) error {
		n := int(float64(KernelSourceFiles) * fraction)
		for i := 0; i < n; i++ {
			if _, err := g.ReadFile(fmt.Sprintf("linux/src%02d.c", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return runPhases("KernelCompile", []struct {
		name string
		fn   func() error
	}{
		{"make dep", func() error {
			if _, err := g.ReadFile("usr/bin/toolchain"); err != nil {
				return err
			}
			if _, err := g.ReadFile("linux/include"); err != nil {
				return err
			}
			if err := readSources(1.0); err != nil {
				return err
			}
			p.compute(120 * time.Second)
			return g.WriteFile("linux/.depend", p.size(2<<20))
		}},
		{"make bzImage", func() error {
			if _, err := g.ReadFile("linux/include"); err != nil {
				return err
			}
			if err := readSources(0.4); err != nil {
				return err
			}
			p.compute(900 * time.Second)
			if err := g.WriteFile("linux/objs.core", p.size(12<<20)); err != nil {
				return err
			}
			return g.WriteFile("linux/bzImage", p.size(2<<20))
		}},
		{"make modules", func() error {
			if _, err := g.ReadFile("linux/include"); err != nil {
				return err
			}
			if err := readSources(1.0); err != nil {
				return err
			}
			p.compute(1500 * time.Second)
			return g.WriteFile("linux/objs.modules", p.size(30<<20))
		}},
		{"make modules_install", func() error {
			if _, err := g.ReadFile("linux/objs.modules"); err != nil {
				return err
			}
			p.compute(60 * time.Second)
			return g.WriteFile("lib/modules.installed", p.size(30<<20))
		}},
	})
}
