package workload

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// memDisk is an in-memory DiskFile for unit tests.
type memDisk struct {
	mu   sync.Mutex
	data []byte
}

func newMemDisk(size int) *memDisk { return &memDisk{data: make([]byte, size)} }

func (d *memDisk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (d *memDisk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(d.data)) {
		d.data = append(d.data, make([]byte, end-int64(len(d.data)))...)
	}
	copy(d.data[off:end], p)
	return len(p), nil
}

func newGuest(t *testing.T, diskMB int, installed []FileSpec) *GuestFS {
	t.Helper()
	disk := newMemDisk(diskMB << 20)
	g, err := NewGuestFS(disk, uint64(diskMB)<<20, 8192, installed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuestFSReadWrite(t *testing.T) {
	g := newGuest(t, 4, []FileSpec{{Name: "bin/app", Size: 100 << 10}})
	n, err := g.ReadFile("bin/app")
	if err != nil || n != 100<<10 {
		t.Fatalf("read installed: n=%d err=%v", n, err)
	}
	if err := g.WriteFile("out/data", 200<<10); err != nil {
		t.Fatal(err)
	}
	n, err = g.ReadFile("out/data")
	if err != nil || n != 200<<10 {
		t.Errorf("read written: n=%d err=%v", n, err)
	}
	if g.BytesRead() != 300<<10 {
		t.Errorf("bytesRead = %d", g.BytesRead())
	}
	if g.BytesWritten() != 200<<10 {
		t.Errorf("bytesWritten = %d", g.BytesWritten())
	}
}

func TestGuestFSMissingFile(t *testing.T) {
	g := newGuest(t, 1, nil)
	if _, err := g.ReadFile("nope"); err == nil {
		t.Error("read of missing file succeeded")
	}
	if err := g.PatchFile("nope", 0, 1); err == nil {
		t.Error("patch of missing file succeeded")
	}
}

func TestGuestFSOverwriteReusesExtent(t *testing.T) {
	g := newGuest(t, 1, nil)
	if err := g.WriteFile("f", 64<<10); err != nil {
		t.Fatal(err)
	}
	before := g.scratchAt
	if err := g.WriteFile("f", 32<<10); err != nil {
		t.Fatal(err)
	}
	if g.scratchAt != before {
		t.Error("overwrite with smaller size allocated a new extent")
	}
	if sz, _ := g.FileSize("f"); sz != 32<<10 {
		t.Errorf("size = %d", sz)
	}
}

func TestGuestFSDiskFull(t *testing.T) {
	g := newGuest(t, 1, nil)
	if err := g.WriteFile("big", 2<<20); err == nil {
		t.Error("write beyond disk size succeeded")
	}
}

func TestGuestFSInstallOverflow(t *testing.T) {
	disk := newMemDisk(1 << 20)
	_, err := NewGuestFS(disk, 1<<20, 8192, []FileSpec{{Name: "huge", Size: 2 << 20}})
	if err == nil {
		t.Error("oversized install accepted")
	}
}

func TestGuestFSExtentsDoNotOverlap(t *testing.T) {
	g := newGuest(t, 4, []FileSpec{
		{Name: "a", Size: 10000},
		{Name: "b", Size: 10000},
	})
	// Write distinct content lengths and verify isolation by reading
	// counters (content is synthetic; offsets must not collide).
	ea := g.installed["a"]
	eb := g.installed["b"]
	if ea.off+ea.size > eb.off {
		t.Errorf("extents overlap: a=%+v b=%+v", ea, eb)
	}
	if err := g.WriteFile("w1", 5000); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteFile("w2", 5000); err != nil {
		t.Fatal(err)
	}
	w1 := g.written["w1"]
	w2 := g.written["w2"]
	if w1.off+w1.size > w2.off {
		t.Errorf("scratch extents overlap: %+v %+v", w1, w2)
	}
	if w1.off < eb.off+eb.size {
		t.Error("scratch region overlaps install region")
	}
}

func TestParamsScaling(t *testing.T) {
	p := Params{Scale: 64}
	if got := p.size(64 << 20); got != 1<<20 {
		t.Errorf("size = %d", got)
	}
	if got := p.size(1); got != 1 {
		t.Errorf("tiny size clamped to %d, want 1", got)
	}
	t0 := time.Now()
	p.compute(640 * time.Millisecond) // scaled to 10ms
	if elapsed := time.Since(t0); elapsed > 200*time.Millisecond {
		t.Errorf("compute(640ms)/64 took %v", elapsed)
	}
}

func TestSPECseisPhases(t *testing.T) {
	p := Params{Scale: 4096}
	g := newGuest(t, 4, SPECseisInstall(p))
	rep, err := SPECseis(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	names := []string{"phase1", "phase2", "phase3", "phase4"}
	for i, n := range names {
		if rep.Phases[i].Name != n {
			t.Errorf("phase %d = %q", i, rep.Phases[i].Name)
		}
		if rep.Phases[i].Duration <= 0 {
			t.Errorf("phase %q has no duration", n)
		}
	}
	// Phase 4 is compute-dominated: longest phase on a fast disk.
	if rep.Phase("phase4") < rep.Phase("phase2") {
		t.Error("phase4 should dominate on local disk")
	}
	if g.BytesWritten() == 0 {
		t.Error("SPECseis wrote nothing")
	}
}

func TestLaTeXIterations(t *testing.T) {
	p := Params{Scale: 4096}
	g := newGuest(t, 4, LaTeXInstall(p))
	rep, err := LaTeX(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != LaTeXIterations {
		t.Fatalf("iterations = %d", len(rep.Phases))
	}
	if FirstIteration(rep) <= 0 || MeanOfRest(rep) <= 0 {
		t.Error("iteration metrics empty")
	}
	if !strings.HasPrefix(rep.Phases[0].Name, "iter") {
		t.Errorf("phase name %q", rep.Phases[0].Name)
	}
}

func TestKernelCompilePhases(t *testing.T) {
	p := Params{Scale: 8192}
	g := newGuest(t, 4, KernelInstall(p))
	rep, err := KernelCompile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"make dep", "make bzImage", "make modules", "make modules_install"}
	if len(rep.Phases) != len(want) {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	for i, n := range want {
		if rep.Phases[i].Name != n {
			t.Errorf("phase %d = %q, want %q", i, rep.Phases[i].Name, n)
		}
	}
}

func TestReportPhaseLookup(t *testing.T) {
	r := &Report{Phases: []PhaseResult{{Name: "a", Duration: time.Second}}}
	if r.Phase("a") != time.Second || r.Phase("zzz") != 0 {
		t.Error("Phase lookup broken")
	}
}

func TestDeterministicFillPattern(t *testing.T) {
	if bytes.Equal(fillPattern[:16], make([]byte, 16)) {
		t.Error("fill pattern is all zero — writes would be trivially compressible")
	}
}
