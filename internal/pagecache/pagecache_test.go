package pagecache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"gvfs/internal/nfs3"
)

var fhA = nfs3.FH("handle-A")
var fhB = nfs3.FH("handle-B")

func TestPutGet(t *testing.T) {
	c := New(4)
	c.Put(fhA, 0, []byte("page zero"))
	got, ok := c.Get(fhA, 0)
	if !ok || string(got) != "page zero" {
		t.Errorf("got %q ok=%v", got, ok)
	}
	if _, ok := c.Get(fhA, 1); ok {
		t.Error("hit on absent page")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(fhA, 0, []byte("0"))
	c.Put(fhA, 1, []byte("1"))
	c.Get(fhA, 0) // 1 becomes LRU
	c.Put(fhA, 2, []byte("2"))
	if _, ok := c.Get(fhA, 1); ok {
		t.Error("LRU page survived")
	}
	if _, ok := c.Get(fhA, 0); !ok {
		t.Error("MRU page evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put(fhA, 0, []byte("x"))
	if _, ok := c.Get(fhA, 0); ok {
		t.Error("zero-capacity cache stored a page")
	}
	if c.Len() != 0 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New(2)
	c.Put(fhA, 0, []byte("v1"))
	c.Put(fhA, 0, []byte("v2"))
	got, _ := c.Get(fhA, 0)
	if string(got) != "v2" {
		t.Errorf("got %q", got)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := New(2)
	c.Put(fhA, 0, []byte("orig"))
	got, _ := c.Get(fhA, 0)
	got[0] = 'X'
	again, _ := c.Get(fhA, 0)
	if string(again) != "orig" {
		t.Error("caller mutation leaked into the cache")
	}
}

func TestPutCopiesInput(t *testing.T) {
	c := New(2)
	buf := []byte("orig")
	c.Put(fhA, 0, buf)
	buf[0] = 'X'
	got, _ := c.Get(fhA, 0)
	if string(got) != "orig" {
		t.Error("input slice aliasing leaked into the cache")
	}
}

func TestInvalidateFile(t *testing.T) {
	c := New(8)
	c.Put(fhA, 0, []byte("a0"))
	c.Put(fhA, 1, []byte("a1"))
	c.Put(fhB, 0, []byte("b0"))
	c.InvalidateFile(fhA)
	if _, ok := c.Get(fhA, 0); ok {
		t.Error("fhA page survived")
	}
	if _, ok := c.Get(fhB, 0); !ok {
		t.Error("fhB page wrongly dropped")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(8)
	c.Put(fhA, 0, []byte("a"))
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestStatsCounting(t *testing.T) {
	c := New(2)
	c.Get(fhA, 0)
	c.Put(fhA, 0, []byte("x"))
	c.Get(fhA, 0)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fh := nfs3.FH(fmt.Sprintf("fh%d", g))
			for i := uint64(0); i < 100; i++ {
				data := []byte{byte(g), byte(i)}
				c.Put(fh, i, data)
				if got, ok := c.Get(fh, i); ok && !bytes.Equal(got, data) {
					t.Errorf("corrupt page g=%d i=%d", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: the cache never exceeds capacity and a hit always returns
// the most recent Put.
func TestQuickCapacityAndFreshness(t *testing.T) {
	f := func(ops []struct {
		Block uint8
		Val   uint8
	}) bool {
		c := New(4)
		model := map[uint64][]byte{}
		for _, op := range ops {
			block := uint64(op.Block % 16)
			data := []byte{op.Val}
			c.Put(fhA, block, data)
			model[block] = data
			if c.Len() > 4 {
				return false
			}
			if got, ok := c.Get(fhA, block); !ok || !bytes.Equal(got, data) {
				return false
			}
		}
		for block, want := range model {
			if got, ok := c.Get(fhA, block); ok && !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
