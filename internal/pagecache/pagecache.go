// Package pagecache stands in for the kernel NFS client's memory
// buffer cache. The paper's analysis hinges on its two limitations in
// a WAN setting: limited storage capacity (capacity misses fall
// through to the network) and write staging that is only short-term.
// The GVFS proxy disk cache sits *behind* this cache and absorbs
// exactly those misses.
//
// The cache is a strict-capacity LRU of (file handle, block) pages.
package pagecache

import (
	"container/list"
	"sync"

	"gvfs/internal/nfs3"
)

type key struct {
	fh    string
	block uint64
}

type page struct {
	key  key
	data []byte
}

// Stats reports hit/miss counters.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Cache is an LRU page cache with a fixed page budget.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *page
	pages    map[key]*list.Element
	stats    Stats
}

// New returns a cache holding at most capacity pages. Zero capacity
// disables caching entirely (every Get misses).
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[key]*list.Element),
	}
}

// Capacity returns the page budget.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the cached page for (fh, block) if resident.
func (c *Cache) Get(fh nfs3.FH, block uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.pages[key{fh.Key(), block}]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	p := el.Value.(*page)
	out := make([]byte, len(p.data))
	copy(out, p.data)
	return out, true
}

// Put inserts or refreshes a page, evicting the LRU page if the cache
// is full.
func (c *Cache) Put(fh nfs3.FH, block uint64, data []byte) {
	if c.capacity == 0 {
		return
	}
	k := key{fh.Key(), block}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pages[k]; ok {
		p := el.Value.(*page)
		p.data = append(p.data[:0], data...)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.pages, back.Value.(*page).key)
		c.stats.Evictions++
	}
	p := &page{key: k, data: append([]byte{}, data...)}
	c.pages[k] = c.lru.PushFront(p)
}

// InvalidateFile drops all pages of fh.
func (c *Cache) InvalidateFile(fh nfs3.FH) {
	fhKey := fh.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*page).key.fh == fhKey {
			c.lru.Remove(el)
			delete(c.pages, el.Value.(*page).key)
		}
		el = next
	}
}

// InvalidateAll empties the cache (unmount/remount between runs — the
// paper's "cold cache" setup step).
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.pages = make(map[key]*list.Element)
}
