package cachean

import (
	"math"
	"math/bits"
)

// bkey identifies one block in the analytic state (the string is the
// raw nfs3 file-handle key).
type bkey struct {
	fh    string
	block uint64
}

const (
	// trackerCap is the number of references between tracker
	// compactions (the Fenwick tree's position space).
	trackerCap = 1 << 17
	// maxLive bounds the distinct keys kept across a compaction; the
	// oldest beyond it read as cold on their next reference. At the
	// default 1% sampling rate this tracks ~6.5M distinct real blocks.
	maxLive = 1 << 16
)

// distTracker computes LRU stack distances — the number of distinct
// keys referenced since a key's previous reference — with the classic
// hash-map + Fenwick-tree construction: each reference occupies one
// position in a logical timeline, the tree holds a 1 at every key's
// latest position, and the distance is the count of ones after the
// key's previous position. Positions are compacted periodically so the
// tree stays a fixed size.
type distTracker struct {
	pos   map[bkey]int32
	tree  []int32
	next  int32  // next position to assign, 1-based
	order []bkey // position-1 -> key referenced there (for compaction)
}

func newDistTracker() *distTracker {
	return &distTracker{
		pos:   make(map[bkey]int32),
		tree:  make([]int32, trackerCap+1),
		next:  1, // position 0 is unused: a Fenwick update at 0 would not terminate
		order: make([]bkey, 0, trackerCap),
	}
}

func (t *distTracker) add(i, d int32) {
	for ; i <= trackerCap; i += i & -i {
		t.tree[i] += d
	}
}

func (t *distTracker) sum(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & -i {
		s += t.tree[i]
	}
	return s
}

// ref records one reference to k and returns its stack distance, or
// -1 for a cold (first-touch) reference.
func (t *distTracker) ref(k bkey) int64 {
	if t.next > trackerCap {
		t.compact()
	}
	dist := int64(-1)
	if p, ok := t.pos[k]; ok {
		dist = int64(t.sum(t.next-1) - t.sum(p))
		t.add(p, -1)
	}
	p := t.next
	t.next++
	t.add(p, 1)
	t.pos[k] = p
	t.order = append(t.order, k)
	return dist
}

// live returns the number of distinct keys currently tracked.
func (t *distTracker) live() int { return len(t.pos) }

// compact renumbers live keys into positions 1..n preserving recency
// order, and drops the oldest keys beyond maxLive (their next
// reference reads as cold — a deliberate bound, not a leak).
func (t *distTracker) compact() {
	keys := make([]bkey, 0, len(t.pos))
	for i, k := range t.order {
		if p, ok := t.pos[k]; ok && p == int32(i+1) {
			keys = append(keys, k)
		}
	}
	if len(keys) > maxLive {
		for _, k := range keys[:len(keys)-maxLive] {
			delete(t.pos, k)
		}
		keys = keys[len(keys)-maxLive:]
	}
	for i := range t.tree {
		t.tree[i] = 0
	}
	t.order = t.order[:0]
	t.next = 1
	for _, k := range keys {
		t.pos[k] = t.next
		t.add(t.next, 1)
		t.order = append(t.order, k)
		t.next++
	}
}

const (
	// histExactMax: sampled distances below this are counted exactly.
	// At 1% sampling this is exact evaluation for caches up to ~400K
	// blocks; beyond it geometric buckets interpolate.
	histExactMax = 4096
	histGeoBase  = 12 // first geometric octave: 2^12 == histExactMax
	histGeoSub   = 8  // sub-buckets per octave (≤ 9% width)
	histGeoCount = (63 - histGeoBase) * histGeoSub
)

// mrcHist accumulates sampled stack distances. Evaluation at a
// threshold τ (= capacity·rate) yields the predicted hit ratio:
// references with distance < τ would have hit, cold references miss at
// every size and stay in the denominator, which is what makes the
// SHARDS estimate self-normalizing.
type mrcHist struct {
	exact [histExactMax]uint64
	geo   [histGeoCount]uint64
	cold  uint64
	total uint64
}

// add records one sampled distance (-1 = cold).
func (h *mrcHist) add(dist int64) {
	h.total++
	if dist < 0 {
		h.cold++
		return
	}
	if dist < histExactMax {
		h.exact[dist]++
		return
	}
	l := bits.Len64(uint64(dist)) - 1 // floor(log2)
	sub := (uint64(dist) >> uint(l-3)) & 7
	idx := (l-histGeoBase)*histGeoSub + int(sub)
	if idx >= histGeoCount {
		idx = histGeoCount - 1
	}
	h.geo[idx]++
}

// geoBounds returns bucket i's [lo, hi) distance range.
func geoBounds(i int) (lo, hi float64) {
	octave := histGeoBase + i/histGeoSub
	sub := i % histGeoSub
	width := math.Ldexp(1, octave-3) // 2^octave / 8
	lo = math.Ldexp(1, octave) + float64(sub)*width
	return lo, lo + width
}

// hitsBelow counts references with distance < tau, interpolating
// within a straddled geometric bucket.
func (h *mrcHist) hitsBelow(tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	var sum float64
	t := int64(math.Ceil(tau))
	if t > histExactMax {
		t = histExactMax
	}
	for d := int64(0); d < t; d++ {
		sum += float64(h.exact[d])
	}
	if tau <= histExactMax {
		return sum
	}
	for i := 0; i < histGeoCount; i++ {
		if h.geo[i] == 0 {
			continue
		}
		lo, hi := geoBounds(i)
		switch {
		case hi <= tau:
			sum += float64(h.geo[i])
		case lo >= tau:
			return sum
		default:
			sum += float64(h.geo[i]) * (tau - lo) / (hi - lo)
		}
	}
	return sum
}

// hitRatioAt evaluates the miss-ratio curve: the predicted hit ratio
// of an LRU cache holding capBlocks blocks, given sampling rate rate.
//
// expectedTotal is the expected sample count (exact reference count ×
// rate). Per the SHARDS adjustment, the difference between it and the
// actual sample count is applied at distance zero and the ratio is
// taken over the expectation: a draw that happened to include hot
// blocks oversamples short distances, and without the correction that
// bias inflates the whole curve.
func (h *mrcHist) hitRatioAt(capBlocks uint64, rate, expectedTotal float64) float64 {
	if h.total == 0 || expectedTotal <= 0 {
		return 0
	}
	tau := float64(capBlocks) * rate
	if tau <= 0 {
		return 0
	}
	hits := h.hitsBelow(tau) + (expectedTotal - float64(h.total))
	switch r := hits / expectedTotal; {
	case r < 0:
		return 0
	case r > 1:
		return 1
	default:
		return r
	}
}

// maxEpochEntries bounds the total map entries one working-set epoch
// may hold (blocks + per-tenant entries); beyond it new keys are
// dropped and counted, so a scan cannot grow memory without bound.
const (
	maxEpochEntries = 1 << 17
	maxTenants      = 64
)

// epochSet is one working-set window: sampled per-block reference
// counts (distinct size + heat in one map) and per-tenant sampled
// block sets from the proxy demand feed.
type epochSet struct {
	blocks  map[bkey]uint32
	tenants map[string]map[bkey]struct{}
	entries int
}

func newEpochSet() *epochSet {
	return &epochSet{
		blocks:  make(map[bkey]uint32),
		tenants: make(map[string]map[bkey]struct{}),
	}
}

func (e *epochSet) touchBlock(k bkey, saturated *uint64) {
	if n, ok := e.blocks[k]; ok {
		e.blocks[k] = n + 1
		return
	}
	if e.entries >= maxEpochEntries {
		*saturated++
		return
	}
	e.blocks[k] = 1
	e.entries++
}

func (e *epochSet) touchTenant(tenant string, k bkey, saturated *uint64) {
	set, ok := e.tenants[tenant]
	if !ok {
		if len(e.tenants) >= maxTenants {
			*saturated++
			return
		}
		set = make(map[bkey]struct{})
		e.tenants[tenant] = set
	}
	if _, ok := set[k]; ok {
		return
	}
	if e.entries >= maxEpochEntries {
		*saturated++
		return
	}
	set[k] = struct{}{}
	e.entries++
}
