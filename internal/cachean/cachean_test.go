package cachean

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
)

// --- distTracker ---

func TestTrackerBasics(t *testing.T) {
	tr := newDistTracker()
	k := func(b uint64) bkey { return bkey{fh: "f", block: b} }
	// First touches are cold.
	for b := uint64(0); b < 4; b++ {
		if d := tr.ref(k(b)); d != -1 {
			t.Fatalf("first ref of %d: dist %d, want -1", b, d)
		}
	}
	// 0 1 2 3 then 0: three distinct blocks since 0's last reference.
	if d := tr.ref(k(0)); d != 3 {
		t.Fatalf("re-ref of 0: dist %d, want 3", d)
	}
	// Immediately again: distance 0.
	if d := tr.ref(k(0)); d != 0 {
		t.Fatalf("back-to-back ref of 0: dist %d, want 0", d)
	}
	if got := tr.live(); got != 4 {
		t.Fatalf("live = %d, want 4", got)
	}
}

// Regression: a fresh tracker must assign 1-based positions. A Fenwick
// update at position 0 never advances (0 & -0 == 0), so a zero-valued
// `next` hangs the consumer on the very first sampled reference.
func TestTrackerFirstRefTerminates(t *testing.T) {
	done := make(chan int64)
	go func() {
		tr := newDistTracker()
		tr.ref(bkey{fh: "x", block: 0})
		done <- tr.ref(bkey{fh: "x", block: 0})
	}()
	select {
	case d := <-done:
		if d != 0 {
			t.Fatalf("second ref dist = %d, want 0", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tracker.ref did not terminate (Fenwick position-0 loop)")
	}
}

func TestTrackerCompaction(t *testing.T) {
	tr := newDistTracker()
	// More references than the position space and more distinct keys
	// than maxLive: compaction must renumber and drop the oldest.
	total := trackerCap + trackerCap/2
	for i := 0; i < total; i++ {
		tr.ref(bkey{fh: "f", block: uint64(i)})
	}
	// maxLive is enforced at compaction time; between compactions the
	// map can grow back toward the position space. The hard memory
	// bound is the position space itself.
	if tr.live() > trackerCap {
		t.Fatalf("live = %d, want <= %d", tr.live(), trackerCap)
	}
	// A recently referenced key still resolves with an exact distance.
	last := bkey{fh: "f", block: uint64(total - 1)}
	tr.ref(bkey{fh: "g", block: 1})
	tr.ref(bkey{fh: "g", block: 2})
	if d := tr.ref(last); d != 2 {
		t.Fatalf("recent key after compaction: dist %d, want 2", d)
	}
	// A key dropped at compaction reads as cold again.
	if d := tr.ref(bkey{fh: "f", block: 0}); d != -1 {
		t.Fatalf("evicted key: dist %d, want -1 (cold)", d)
	}
}

// --- mrcHist ---

func TestHistExactAndCold(t *testing.T) {
	var h mrcHist
	h.add(0)
	h.add(0)
	h.add(5)
	h.add(-1) // cold: in the denominator at every size
	// At rate 1 with a complete sample the expected total equals the
	// actual total, so the adjustment vanishes.
	// Capacity 1 block: tau = 1, only distance-0 refs hit.
	if got, want := h.hitRatioAt(1, 1, 4), 0.5; got != want {
		t.Fatalf("hitRatioAt(1) = %v, want %v", got, want)
	}
	// Large capacity: everything but the cold ref hits.
	if got, want := h.hitRatioAt(1000, 1, 4), 0.75; got != want {
		t.Fatalf("hitRatioAt(1000) = %v, want %v", got, want)
	}
	if got := h.hitRatioAt(0, 1, 4); got != 0 {
		t.Fatalf("hitRatioAt(0) = %v, want 0", got)
	}
	// SHARDS adjustment: an oversampled stream (actual 4 > expected 2)
	// shifts the correction into the distance-0 bucket.
	if got, want := h.hitRatioAt(1000, 1, 2), 0.5; got != want {
		t.Fatalf("adjusted hitRatioAt = %v, want %v", got, want)
	}
}

func TestHistGeometricInterpolation(t *testing.T) {
	var h mrcHist
	// One reference deep in the geometric range.
	h.add(100_000)
	if got := h.hitsBelow(50_000); got != 0 {
		t.Fatalf("hitsBelow(50k) = %v, want 0", got)
	}
	if got := h.hitsBelow(1_000_000); got != 1 {
		t.Fatalf("hitsBelow(1M) = %v, want 1", got)
	}
	// Straddling the bucket must interpolate to a fraction in (0, 1).
	if got := h.hitsBelow(100_001); got <= 0 || got >= 1 {
		t.Fatalf("hitsBelow(100001) = %v, want fractional", got)
	}
}

// --- estimator accuracy vs the exact oracle ---

// feedTrace pushes a reference trace through both a sampled analyzer
// and the exact oracle and compares the curves at the what-if scales.
// Returns the worst absolute hit-ratio disagreement.
func feedTrace(t *testing.T, blocks []uint64, capBlocks uint64) float64 {
	t.Helper()
	const blockSize = 8192
	an := New(Config{
		Rate:          0.01,
		CapacityBytes: capBlocks * blockSize,
		BlockSize:     blockSize,
	})
	defer an.Close()
	oracle := NewOracle()
	fh := nfs3.FH("trace-file-handle")
	for i, b := range blocks {
		an.CacheLookup(fh, b, cache.LookupMiss)
		oracle.Ref(string(fh), b)
		// Drain regularly so the bounded channel never overflows:
		// dropped events would make the comparison unfair.
		if i%1024 == 1023 {
			an.Sync()
		}
	}
	an.Sync()
	if d := an.DroppedEvents(); d != 0 {
		t.Fatalf("dropped %d events; accuracy comparison needs a complete stream", d)
	}
	worst := 0.0
	for _, s := range Scales {
		est := an.PredictedHitRatio(s)
		orc := oracle.HitRatioAt(uint64(s * float64(capBlocks)))
		t.Logf("@%s: estimated %.4f oracle %.4f (sampled %d)",
			ScaleLabel(s), est, orc, an.SampledRefs())
		if diff := est - orc; diff > worst {
			worst = diff
		} else if -diff > worst {
			worst = -diff
		}
	}
	return worst
}

func TestEstimatorAccuracyZipf(t *testing.T) {
	// Skewed head over a wide block space — the adversarial case for
	// spatial sampling: whether individual hot blocks land in the
	// sample swings the raw curve, and the SHARDS adjustment must
	// remove that bias.
	const n = 500_000
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 8, 20_000-1)
	blocks := make([]uint64, n)
	for i := range blocks {
		blocks[i] = zipf.Uint64()
	}
	if worst := feedTrace(t, blocks, 4000); worst > 0.05 {
		t.Errorf("zipf: worst abs err %.4f, want <= 0.05", worst)
	}
}

func TestEstimatorAccuracyScan(t *testing.T) {
	// One cold pass over a large space: hit ratio 0 at every size, and
	// the estimator must report that rather than extrapolate.
	blocks := make([]uint64, 50_000)
	for i := range blocks {
		blocks[i] = uint64(i)
	}
	if worst := feedTrace(t, blocks, 4000); worst > 0.05 {
		t.Errorf("scan: worst abs err %.4f, want <= 0.05", worst)
	}
}

func TestEstimatorAccuracyLoop(t *testing.T) {
	// Cyclic passes over 6000 blocks: the true curve is a step at the
	// loop size, placed between the 1x and 2x what-if points so the
	// sampled estimate must get both sides of the step right.
	const loop, passes = 6000, 20
	blocks := make([]uint64, 0, loop*passes)
	for p := 0; p < passes; p++ {
		for b := uint64(0); b < loop; b++ {
			blocks = append(blocks, b)
		}
	}
	if worst := feedTrace(t, blocks, 4000); worst > 0.05 {
		t.Errorf("loop: worst abs err %.4f, want <= 0.05", worst)
	}
}

// --- concurrency (run under -race) ---

func TestConcurrentTaps(t *testing.T) {
	an := New(Config{Rate: 0.5, CapacityBytes: 1 << 20, BlockSize: 8192, Window: 200 * time.Millisecond})
	defer an.Close()
	an.SetFileLabeler(func(k string) string { return "label:" + k })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fh := nfs3.FH(fmt.Sprintf("fh-%d", g))
			var fhb [8]byte
			binary.LittleEndian.PutUint64(fhb[:], uint64(g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := uint64(i % 512)
				an.CacheLookup(fh, b, cache.LookupOutcome(i%3))
				an.CacheInsert(cache.BlockID{FH: string(fh), Block: b}, i%2 == 0)
				an.CacheEvict(cache.BlockID{FH: string(fh), Block: b})
				an.DemandData(fmt.Sprintf("tenant-%d", g), fhb[:], b, 8192, i%2 == 0)
				an.DemandMeta(i % numClasses)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = an.Snapshot()
		_ = an.HitRatio()
		_ = an.PredictedHitRatio(2)
		_, _ = an.TenantWSS("tenant-1")
		_ = an.WorkingSetBytes()
		var buf bytes.Buffer
		if err := an.WriteCachez(&buf); err != nil {
			t.Fatalf("WriteCachez: %v", err)
		}
		an.SetCapacity(1<<21, 8192)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	an.Sync()
	// Taps must stay safe after Close, too.
	an.Close()
	an.CacheLookup(nfs3.FH("late"), 1, cache.LookupHit)
	an.Sync()
}

// --- snapshot bounds and shape ---

func TestSnapshotBounded(t *testing.T) {
	an := New(Config{Rate: 1, CapacityBytes: 100 * 8192, BlockSize: 8192})
	defer an.Close()
	// Far more tenants, files and blocks than the snapshot may carry.
	for i := 0; i < 3*maxSnapTenants; i++ {
		var fhb [8]byte
		binary.LittleEndian.PutUint64(fhb[:], uint64(i))
		an.DemandData(fmt.Sprintf("tenant-%03d", i), fhb[:], uint64(i), 8192, false)
	}
	for f := 0; f < 3*maxSnapFiles; f++ {
		fh := nfs3.FH(fmt.Sprintf("file-%03d", f))
		for b := uint64(0); b < 8; b++ {
			an.CacheLookup(fh, b, cache.LookupMiss)
		}
	}
	an.Sync()
	s := an.Snapshot()
	if len(s.Tenants) > maxSnapTenants {
		t.Errorf("tenants: %d > bound %d", len(s.Tenants), maxSnapTenants)
	}
	if len(s.Files) > maxSnapFiles {
		t.Errorf("files: %d > bound %d", len(s.Files), maxSnapFiles)
	}
	if len(s.HotBlocks) > maxHotBlocks {
		t.Errorf("hot blocks: %d > bound %d", len(s.HotBlocks), maxHotBlocks)
	}
	if len(s.MRC) > maxMRCPoints {
		t.Errorf("mrc points: %d > bound %d", len(s.MRC), maxMRCPoints)
	}
	if s.Lookups == 0 || s.SampledRefs == 0 {
		t.Errorf("counters empty: lookups %d sampled %d", s.Lookups, s.SampledRefs)
	}
	// The document must round-trip as JSON (the /cachez contract).
	var buf bytes.Buffer
	if err := an.WriteCachez(&buf); err != nil {
		t.Fatalf("WriteCachez: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("cachez is not valid JSON: %v", err)
	}
	if back.SampleRate != 1 {
		t.Errorf("round-trip sample_rate = %v, want 1", back.SampleRate)
	}
}

func TestWorkingSetScaling(t *testing.T) {
	// At rate 1 the estimate is exact: N distinct sampled blocks at
	// blockSize bytes each.
	an := New(Config{Rate: 1, CapacityBytes: 1 << 30, BlockSize: 4096})
	defer an.Close()
	fh := nfs3.FH("wss-file")
	for b := uint64(0); b < 100; b++ {
		an.CacheLookup(fh, b, cache.LookupMiss)
		an.CacheLookup(fh, b, cache.LookupHit) // re-touch: still one distinct block
	}
	an.Sync()
	if got, want := an.WorkingSetBytes(), uint64(100*4096); got != want {
		t.Errorf("WorkingSetBytes = %d, want %d", got, want)
	}
	var fhb [8]byte
	for b := uint64(0); b < 10; b++ {
		an.DemandData("uid=500", fhb[:], b, 4096, false)
	}
	an.Sync()
	bytes_, blocks := an.TenantWSS("uid=500")
	if blocks != 10 || bytes_ != 10*4096 {
		t.Errorf("TenantWSS = (%d, %d), want (40960, 10)", bytes_, blocks)
	}
	if b, n := an.TenantWSS("absent"); b != 0 || n != 0 {
		t.Errorf("TenantWSS(absent) = (%d, %d), want zeros", b, n)
	}
}

func TestHitRatioCounters(t *testing.T) {
	an := New(Config{Rate: 0.01})
	defer an.Close()
	fh := nfs3.FH("hr")
	for i := 0; i < 6; i++ {
		an.CacheLookup(fh, uint64(i), cache.LookupHit)
	}
	for i := 0; i < 2; i++ {
		an.CacheLookup(fh, uint64(i), cache.LookupAliasHit)
	}
	for i := 0; i < 2; i++ {
		an.CacheLookup(fh, uint64(i), cache.LookupMiss)
	}
	// 6 hits + 2 alias hits out of 10 lookups.
	if got, want := an.HitRatio(), 0.8; got != want {
		t.Errorf("HitRatio = %v, want %v", got, want)
	}
}
