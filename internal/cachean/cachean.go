// Package cachean is the cache-analytics subsystem: an always-on,
// low-overhead observer of the block cache's access stream that
// answers the operator questions proxy caching raises at scale — how
// big should this cache be, what would 2x (or 0.5x) the capacity buy,
// and which tenant or file owns the working set.
//
// The estimator is a SHARDS-style spatially-hashed reuse-distance
// sampler: a reference to block b enters the analysis iff
// hash(b) < R·2^64, so every reference to a sampled block is seen and
// the sampled stream is a faithful rate-R subsample of the distinct
// block space. The LRU stack distance of each sampled reference
// (distinct sampled blocks touched since its previous reference,
// computed with a Fenwick tree over reference timestamps) scales by
// 1/R to an estimate of the true stack distance, which makes the
// miss-ratio curve self-normalizing: a cache of C blocks would have
// hit a reference iff its sampled distance is below C·R, and the hit
// ratio at C is the fraction of sampled references below that
// threshold — cold (first-touch) references count as misses at every
// size. The exact reference count is also kept, and curves apply the
// SHARDS adjustment: the difference between the expected sample count
// (refs·R) and the actual one is folded in at distance zero, removing
// the bias a sample that happened to include (or miss) hot blocks
// would otherwise put on the whole curve.
//
// The hot-path tap is effectively free: an inline FNV-64a hash, a few
// atomic counter adds, and — for the ~R fraction of references that
// are sampled — one non-blocking send of a small value struct to the
// single consumer goroutine that owns all analytic state. The tap
// never blocks, never allocates, and never takes the analytics mutex;
// bursts beyond the channel buffer are dropped and counted.
package cachean

import (
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/nfs3"
)

// Op classes for the proxy-level demand taps: data classes carry byte
// counts and feed per-tenant working sets; metadata classes make
// GETATTR/LOOKUP demand visible separately from READ/WRITE.
const (
	ClassRead = iota
	ClassWrite
	ClassGetattr
	ClassLookup
	ClassOtherMeta
	numClasses
)

var classNames = [numClasses]string{"READ", "WRITE", "GETATTR", "LOOKUP", "OTHER"}

// Scales is the what-if grid: predicted hit ratio at each multiple of
// the configured capacity.
var Scales = []float64{0.25, 0.5, 1, 2, 4}

// ScaleLabel renders a what-if scale ("0.25x", "2x") for metric labels.
func ScaleLabel(s float64) string {
	switch s {
	case 0.25:
		return "0.25x"
	case 0.5:
		return "0.5x"
	case 1:
		return "1x"
	case 2:
		return "2x"
	case 4:
		return "4x"
	}
	return "?x"
}

// Config parameterizes an Analyzer. Zero fields take defaults.
type Config struct {
	// Rate is the spatial sampling rate in (0, 1]; default 0.01.
	Rate float64
	// Window is the working-set epoch length (default 60s): estimates
	// cover the last one-to-two windows and refresh each rotation.
	Window time.Duration
	// CapacityBytes centers the miss-ratio curve and the what-if grid
	// on the cache being observed. Required for useful predictions.
	CapacityBytes uint64
	// BlockSize is the cache frame size in bytes (default 8192).
	BlockSize int
	// Buffer is the event channel depth (default 8192).
	Buffer int
}

func (c *Config) fill() {
	if c.Rate <= 0 || c.Rate > 1 {
		c.Rate = 0.01
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 8192
	}
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
}

const (
	evRef uint8 = iota
	evDemand
	evSync
)

// event is one sampled observation, sent by value: the strings are
// references to already-allocated keys, so a send allocates nothing.
type event struct {
	fh     string
	tenant string
	block  uint64
	kind   uint8
	sync   chan struct{} // non-nil only for Sync barriers
}

// Analyzer maintains online miss-ratio curves, working-set estimates,
// block heat and what-if predictions from sampled cache and proxy
// demand taps. All methods are safe for concurrent use.
type Analyzer struct {
	cfg    Config
	thresh uint64 // sample iff hash < thresh

	// Hot-path counters (exact, unsampled).
	hits      atomic.Uint64
	misses    atomic.Uint64
	aliasHits atomic.Uint64
	inserts   atomic.Uint64
	evictions atomic.Uint64
	mrcRefs   atomic.Uint64 // every reference offered to the MRC stream, sampled or not
	sampled   atomic.Uint64
	dropped   atomic.Uint64

	classOps   [numClasses]atomic.Uint64
	classBytes [numClasses]atomic.Uint64

	events chan event
	done   chan struct{}
	wg     sync.WaitGroup

	// mu guards everything below: the consumer goroutine takes it per
	// drained batch, snapshots take it briefly.
	mu         sync.Mutex
	tr         *distTracker
	hist       mrcHist
	cur, prev  *epochSet
	epochStart time.Time
	busyNs     uint64
	saturated  uint64 // epoch entries dropped at the bound
	fileLabel  func(fhKey string) string
}

// New starts an analyzer and its consumer goroutine. Call Close to
// stop it.
func New(cfg Config) *Analyzer {
	cfg.fill()
	a := &Analyzer{
		cfg:        cfg,
		thresh:     rateThreshold(cfg.Rate),
		events:     make(chan event, cfg.Buffer),
		done:       make(chan struct{}),
		tr:         newDistTracker(),
		cur:        newEpochSet(),
		prev:       newEpochSet(),
		epochStart: time.Now(),
	}
	a.wg.Add(1)
	go a.run()
	return a
}

// Close stops the consumer goroutine. Taps remain safe to call after
// Close; their sampled events are dropped.
func (a *Analyzer) Close() {
	select {
	case <-a.done:
		return
	default:
	}
	close(a.done)
	a.wg.Wait()
}

// Rate returns the configured sampling rate.
func (a *Analyzer) Rate() float64 { return a.cfg.Rate }

// SetFileLabeler installs the function that renders a raw file-handle
// key into the human label used in snapshots (the proxy's path label).
func (a *Analyzer) SetFileLabeler(fn func(fhKey string) string) {
	a.mu.Lock()
	a.fileLabel = fn
	a.mu.Unlock()
}

// SetCapacity re-centers the what-if grid on the observed cache's
// actual geometry. The stack calls this after cache.New has filled the
// cache config's defaults; predictions pick up the new center on the
// next read.
func (a *Analyzer) SetCapacity(bytes uint64, blockSize int) {
	a.mu.Lock()
	if bytes > 0 {
		a.cfg.CapacityBytes = bytes
	}
	if blockSize > 0 {
		a.cfg.BlockSize = blockSize
	}
	a.mu.Unlock()
}

// rateThreshold maps a sampling rate to the 64-bit hash threshold:
// sample iff hash < rate·2^64.
func rateThreshold(rate float64) uint64 {
	if rate >= 1 {
		return ^uint64(0)
	}
	if rate <= 0 {
		return 0
	}
	return uint64(rate * float64(1<<32) * float64(1<<32))
}

// FNV-64a, inlined over the two key components so the hot path hashes
// without assembling a byte buffer.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashKey(fh string, block uint64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(fh); i++ {
		h ^= uint64(fh[i])
		h *= fnvPrime
	}
	for i := 0; i < 8; i++ {
		h ^= block & 0xff
		h *= fnvPrime
		block >>= 8
	}
	return h
}

func hashKeyBytes(fh []byte, block uint64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(fh); i++ {
		h ^= uint64(fh[i])
		h *= fnvPrime
	}
	for i := 0; i < 8; i++ {
		h ^= block & 0xff
		h *= fnvPrime
		block >>= 8
	}
	return h
}

// --- cache.AccessTap implementation (the cache-level feed) ---

// CacheLookup observes one block-cache lookup. Every lookup — hit,
// miss, or dedup alias hit — is one reference of the MRC stream. The
// fh bytes are hashed in place and copied only in the sampled branch,
// so the unsampled 99% allocates nothing.
func (a *Analyzer) CacheLookup(fh nfs3.FH, block uint64, outcome cache.LookupOutcome) {
	switch outcome {
	case cache.LookupHit:
		a.hits.Add(1)
	case cache.LookupAliasHit:
		a.aliasHits.Add(1)
	default:
		a.misses.Add(1)
	}
	a.refTapBytes(fh, block)
}

// CacheInsert observes one insertion. Dirty inserts (write absorbs)
// are demand the cache must hold, so they join the reference stream;
// clean inserts are miss fills whose demand was already counted by the
// missing lookup, so they only bump the counter.
func (a *Analyzer) CacheInsert(id cache.BlockID, dirty bool) {
	a.inserts.Add(1)
	if dirty {
		a.refTap(id.FH, id.Block)
	}
}

// CacheEvict observes one eviction. It runs under a stripe lock, so it
// is a single atomic add: the ghost LRU needs no eviction feed.
func (a *Analyzer) CacheEvict(cache.BlockID) { a.evictions.Add(1) }

// refTap funnels one reference into the sampled stream. The exact
// reference count feeds the SHARDS adjustment: the curve is evaluated
// against the expected sample count (refs·rate), with the difference
// from the actual count applied at distance zero, which removes the
// bias a lucky (or unlucky) draw of hot blocks would otherwise leave.
func (a *Analyzer) refTap(fh string, block uint64) {
	a.mrcRefs.Add(1)
	if hashKey(fh, block) >= a.thresh {
		return
	}
	a.sampled.Add(1)
	select {
	case a.events <- event{fh: fh, block: block, kind: evRef}:
	default:
		a.dropped.Add(1)
	}
}

// refTapBytes is refTap over raw fh bytes: the string copy is made
// only after the sampling decision.
func (a *Analyzer) refTapBytes(fh []byte, block uint64) {
	a.mrcRefs.Add(1)
	if hashKeyBytes(fh, block) >= a.thresh {
		return
	}
	a.sampled.Add(1)
	select {
	case a.events <- event{fh: string(fh), block: block, kind: evRef}:
	default:
		a.dropped.Add(1)
	}
}

// --- proxy-level demand taps (tenant identity, op classes) ---

// DemandData observes one data op (READ or WRITE) a tenant issued
// against a block. The class counters are exact; the per-tenant
// working set sees the same spatial sample as the MRC stream. The fh
// bytes are only converted to a string when the reference is sampled,
// so the common path does not allocate.
func (a *Analyzer) DemandData(tenant string, fh []byte, block uint64, bytes int, write bool) {
	class := ClassRead
	if write {
		class = ClassWrite
	}
	a.classOps[class].Add(1)
	a.classBytes[class].Add(uint64(bytes))
	if hashKeyBytes(fh, block) >= a.thresh {
		return
	}
	a.sampled.Add(1)
	select {
	case a.events <- event{fh: string(fh), tenant: tenant, block: block, kind: evDemand}:
	default:
		a.dropped.Add(1)
	}
}

// DemandMeta observes one metadata op (GETATTR, LOOKUP, other): a
// single atomic add, making metadata demand visible next to data
// demand without any per-call analytic work.
func (a *Analyzer) DemandMeta(class int) {
	if class < 0 || class >= numClasses {
		class = ClassOtherMeta
	}
	a.classOps[class].Add(1)
}

// Sync blocks until every event queued before the call has been
// applied — a barrier for tests, benches and snapshot-accuracy
// sensitive callers. Safe (and a no-op) after Close.
func (a *Analyzer) Sync() {
	ch := make(chan struct{})
	select {
	case a.events <- event{kind: evSync, sync: ch}:
	case <-a.done:
		return
	}
	select {
	case <-ch:
	case <-a.done:
	}
}

// run is the single consumer: it owns the reuse-distance tracker, the
// MRC histogram and the working-set epochs, draining events in batches
// under the analytics mutex.
func (a *Analyzer) run() {
	defer a.wg.Done()
	period := a.cfg.Window / 4
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	if period > 15*time.Second {
		period = 15 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case ev := <-a.events:
			start := time.Now()
			a.mu.Lock()
			a.apply(ev)
			// Drain the burst while we hold the lock, bounded so
			// snapshots are never starved.
		drain:
			for i := 0; i < 512; i++ {
				select {
				case ev = <-a.events:
					a.apply(ev)
				default:
					break drain
				}
			}
			a.busyNs += uint64(time.Since(start))
			a.mu.Unlock()
		case now := <-tick.C:
			a.mu.Lock()
			a.maybeRotate(now)
			a.mu.Unlock()
		case <-a.done:
			return
		}
	}
}

// apply folds one event into the analytic state. Caller holds a.mu.
func (a *Analyzer) apply(ev event) {
	switch ev.kind {
	case evSync:
		close(ev.sync)
	case evRef:
		k := bkey{fh: ev.fh, block: ev.block}
		a.hist.add(a.tr.ref(k))
		a.cur.touchBlock(k, &a.saturated)
	case evDemand:
		k := bkey{fh: ev.fh, block: ev.block}
		a.cur.touchTenant(ev.tenant, k, &a.saturated)
	}
}

// maybeRotate starts a new working-set epoch when the window elapsed.
// Caller holds a.mu.
func (a *Analyzer) maybeRotate(now time.Time) {
	if now.Sub(a.epochStart) < a.cfg.Window {
		return
	}
	a.prev = a.cur
	a.cur = newEpochSet()
	a.epochStart = now
}
