package cachean

import "math"

// Oracle is the exact (unsampled) LRU reuse-distance analyzer the
// estimator is judged against: every reference's stack distance is
// recorded exactly, and HitRatioAt counts them exactly — no sampling,
// no histogram bucketing. Tests and `gvfsbench -experiment mrc` feed
// it the same reference stream the sampled estimator sees and assert
// the curves agree.
//
// It shares the Fenwick-tree tracker with the estimator, so it is
// exact up to the tracker's maxLive bound on distinct keys (65536);
// keep oracle workloads below that.
type Oracle struct {
	tr    *distTracker
	dists []int32 // one stack distance per reference; -1 = cold
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{tr: newDistTracker()}
}

// Ref records one reference.
func (o *Oracle) Ref(fh string, block uint64) {
	d := o.tr.ref(bkey{fh: fh, block: block})
	if d > math.MaxInt32 {
		d = math.MaxInt32
	}
	o.dists = append(o.dists, int32(d))
}

// Refs returns the number of references recorded.
func (o *Oracle) Refs() int { return len(o.dists) }

// Distinct returns the number of distinct blocks referenced.
func (o *Oracle) Distinct() int { return o.tr.live() }

// HitRatioAt returns the exact hit ratio an LRU cache of capBlocks
// blocks would have achieved on the recorded stream (cold references
// miss at every size).
func (o *Oracle) HitRatioAt(capBlocks uint64) float64 {
	if len(o.dists) == 0 {
		return 0
	}
	hits := 0
	for _, d := range o.dists {
		if d >= 0 && uint64(d) < capBlocks {
			hits++
		}
	}
	return float64(hits) / float64(len(o.dists))
}
