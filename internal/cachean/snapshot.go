package cachean

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"math"
	"sort"
)

// Bounds on the arrays a snapshot (and therefore /cachez) may carry,
// so the document stays a bounded read for scrapers.
const (
	maxMRCPoints   = 33
	maxSnapTenants = 32
	maxSnapFiles   = 16
	maxHotBlocks   = 16
)

// MRCPoint is one point of the online miss-ratio curve.
type MRCPoint struct {
	SizeBytes uint64  `json:"size_bytes"`
	HitRatio  float64 `json:"hit_ratio"`
}

// WhatIf is one ghost-cache prediction: the hit ratio this workload
// would see at a multiple of the current capacity.
type WhatIf struct {
	Scale     string  `json:"scale"`
	SizeBytes uint64  `json:"size_bytes"`
	HitRatio  float64 `json:"predicted_hit_ratio"`
}

// TenantDemand is one tenant's working-set estimate over the sliding
// window, from the proxy demand feed.
type TenantDemand struct {
	Tenant              string `json:"tenant"`
	WorkingSetBytes     uint64 `json:"working_set_bytes"`
	SampledUniqueBlocks uint64 `json:"sampled_unique_blocks"`
}

// FileDemand is one file's working-set estimate over the sliding
// window, from the cache reference stream.
type FileDemand struct {
	File                string `json:"file"`
	WorkingSetBytes     uint64 `json:"working_set_bytes"`
	SampledUniqueBlocks uint64 `json:"sampled_unique_blocks"`
	SampledRefs         uint64 `json:"sampled_refs"`
}

// HotBlock is one entry of the sampled block-heat ranking.
type HotBlock struct {
	File        string `json:"file"`
	Block       uint64 `json:"block"`
	SampledRefs uint32 `json:"sampled_refs"`
}

// OpClass is one op class's exact demand counters.
type OpClass struct {
	Class string `json:"class"`
	Ops   uint64 `json:"ops"`
	Bytes uint64 `json:"bytes,omitempty"`
}

// Snapshot is the full cache-analytics reading served at /cachez.
// Working-set estimates are the max of the current and previous epoch,
// so they are at most one window stale and never dip to zero at a
// rotation.
type Snapshot struct {
	SampleRate    float64 `json:"sample_rate"`
	WindowSeconds float64 `json:"window_seconds"`
	CapacityBytes uint64  `json:"capacity_bytes"`
	BlockSize     int     `json:"block_size"`

	Lookups   uint64  `json:"lookups"`
	Hits      uint64  `json:"hits"`
	AliasHits uint64  `json:"alias_hits"`
	Misses    uint64  `json:"misses"`
	Inserts   uint64  `json:"inserts"`
	Evictions uint64  `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"`

	MRCRefs        uint64  `json:"mrc_refs"`
	SampledRefs    uint64  `json:"sampled_refs"`
	DroppedEvents  uint64  `json:"dropped_events"`
	SaturatedDrops uint64  `json:"saturated_drops"`
	ColdFraction   float64 `json:"cold_fraction"`
	TrackedKeys    int     `json:"tracked_keys"`
	SamplerBusyNs  uint64  `json:"sampler_busy_ns"`

	WorkingSetBytes     uint64 `json:"working_set_bytes"`
	SampledUniqueBlocks uint64 `json:"sampled_unique_blocks"`

	MRC       []MRCPoint     `json:"mrc"`
	WhatIf    []WhatIf       `json:"what_if"`
	OpClasses []OpClass      `json:"op_classes"`
	Tenants   []TenantDemand `json:"tenants,omitempty"`
	Files     []FileDemand   `json:"files,omitempty"`
	HotBlocks []HotBlock     `json:"hot_blocks,omitempty"`
}

// HitRatio returns the exact current hit ratio from the tap counters
// (hits + alias hits over all lookups); 0 before any traffic.
func (a *Analyzer) HitRatio() float64 {
	h := a.hits.Load() + a.aliasHits.Load()
	total := h + a.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(h) / float64(total)
}

// PredictedHitRatio evaluates the miss-ratio curve at scale times the
// configured capacity.
func (a *Analyzer) PredictedHitRatio(scale float64) float64 {
	expected := float64(a.mrcRefs.Load()) * a.cfg.Rate
	a.mu.Lock()
	defer a.mu.Unlock()
	capBlocks := uint64(scale * float64(a.cfg.CapacityBytes) / float64(a.cfg.BlockSize))
	return a.hist.hitRatioAt(capBlocks, a.cfg.Rate, expected)
}

// WorkingSetBytes estimates the bytes touched over the last window:
// distinct sampled blocks scaled by 1/rate times the block size.
func (a *Analyzer) WorkingSetBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.scaleBlocks(uint64(maxInt(len(a.cur.blocks), len(a.prev.blocks))))
}

// SampledRefs returns the total references admitted by the spatial
// filter.
func (a *Analyzer) SampledRefs() uint64 { return a.sampled.Load() }

// DroppedEvents returns sampled events dropped on channel overflow.
func (a *Analyzer) DroppedEvents() uint64 { return a.dropped.Load() }

// BusyNs returns cumulative consumer processing time, the sampler's
// overhead ledger.
func (a *Analyzer) BusyNs() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.busyNs
}

// TenantWSS returns one tenant's working-set estimate for the
// /statusz per-tenant table: scaled bytes and the raw sampled distinct
// block count behind the estimate.
func (a *Analyzer) TenantWSS(tenant string) (bytes, sampledBlocks uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := maxInt(len(a.cur.tenants[tenant]), len(a.prev.tenants[tenant]))
	return a.scaleBlocks(uint64(n)), uint64(n)
}

// scaleBlocks converts a sampled distinct-block count to estimated
// bytes. Caller holds a.mu (for cfg immutables it is not needed, but
// every caller already holds it).
func (a *Analyzer) scaleBlocks(n uint64) uint64 {
	return uint64(float64(n) / a.cfg.Rate * float64(a.cfg.BlockSize))
}

// Snapshot assembles the full analytics reading.
func (a *Analyzer) Snapshot() Snapshot {
	hits, alias, misses := a.hits.Load(), a.aliasHits.Load(), a.misses.Load()
	s := Snapshot{
		SampleRate:    a.cfg.Rate,
		WindowSeconds: a.cfg.Window.Seconds(),
		Lookups:       hits + alias + misses,
		Hits:          hits,
		AliasHits:     alias,
		Misses:        misses,
		Inserts:       a.inserts.Load(),
		Evictions:     a.evictions.Load(),
		HitRatio:      a.HitRatio(),
		MRCRefs:       a.mrcRefs.Load(),
		SampledRefs:   a.sampled.Load(),
		DroppedEvents: a.dropped.Load(),
	}
	for c := 0; c < numClasses; c++ {
		if ops := a.classOps[c].Load(); ops > 0 {
			s.OpClasses = append(s.OpClasses, OpClass{
				Class: classNames[c],
				Ops:   ops,
				Bytes: a.classBytes[c].Load(),
			})
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	s.CapacityBytes = a.cfg.CapacityBytes
	s.BlockSize = a.cfg.BlockSize
	s.SaturatedDrops = a.saturated
	s.TrackedKeys = a.tr.live()
	s.SamplerBusyNs = a.busyNs
	if a.hist.total > 0 {
		s.ColdFraction = float64(a.hist.cold) / float64(a.hist.total)
	}
	blocks := uint64(maxInt(len(a.cur.blocks), len(a.prev.blocks)))
	s.SampledUniqueBlocks = blocks
	s.WorkingSetBytes = a.scaleBlocks(blocks)

	capBlocks := a.cfg.CapacityBytes / uint64(a.cfg.BlockSize)
	expected := float64(s.MRCRefs) * a.cfg.Rate
	if capBlocks > 0 && a.hist.total > 0 {
		// The curve: 2^(1/3)-spaced sizes from capacity/32 to 32x.
		for i := 0; i < maxMRCPoints-1; i++ {
			scale := ldexpCbrt(i - 15) // 2^((i-15)/3)
			size := uint64(scale * float64(capBlocks))
			if size == 0 {
				continue
			}
			s.MRC = append(s.MRC, MRCPoint{
				SizeBytes: size * uint64(a.cfg.BlockSize),
				HitRatio:  a.hist.hitRatioAt(size, a.cfg.Rate, expected),
			})
		}
		for _, scale := range Scales {
			size := uint64(scale * float64(capBlocks))
			s.WhatIf = append(s.WhatIf, WhatIf{
				Scale:     ScaleLabel(scale),
				SizeBytes: size * uint64(a.cfg.BlockSize),
				HitRatio:  a.hist.hitRatioAt(size, a.cfg.Rate, expected),
			})
		}
	}
	s.Tenants = a.tenantRowsLocked()
	s.Files, s.HotBlocks = a.fileRowsLocked()
	return s
}

// tenantRowsLocked builds the per-tenant table, largest working set
// first, bounded. Caller holds a.mu.
func (a *Analyzer) tenantRowsLocked() []TenantDemand {
	names := make(map[string]struct{}, len(a.cur.tenants)+len(a.prev.tenants))
	for t := range a.cur.tenants {
		names[t] = struct{}{}
	}
	for t := range a.prev.tenants {
		names[t] = struct{}{}
	}
	rows := make([]TenantDemand, 0, len(names))
	for t := range names {
		n := uint64(maxInt(len(a.cur.tenants[t]), len(a.prev.tenants[t])))
		rows = append(rows, TenantDemand{
			Tenant:              t,
			WorkingSetBytes:     a.scaleBlocks(n),
			SampledUniqueBlocks: n,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].WorkingSetBytes != rows[j].WorkingSetBytes {
			return rows[i].WorkingSetBytes > rows[j].WorkingSetBytes
		}
		return rows[i].Tenant < rows[j].Tenant
	})
	if len(rows) > maxSnapTenants {
		rows = rows[:maxSnapTenants]
	}
	return rows
}

// fileRowsLocked derives the per-file working sets and the block-heat
// ranking from the current epoch's per-block counts. Caller holds a.mu.
func (a *Analyzer) fileRowsLocked() ([]FileDemand, []HotBlock) {
	type fagg struct {
		blocks uint64
		refs   uint64
	}
	files := make(map[string]*fagg)
	hot := make([]HotBlock, 0, len(a.cur.blocks))
	for k, n := range a.cur.blocks {
		f := files[k.fh]
		if f == nil {
			f = &fagg{}
			files[k.fh] = f
		}
		f.blocks++
		f.refs += uint64(n)
		hot = append(hot, HotBlock{File: k.fh, Block: k.block, SampledRefs: n})
	}
	rows := make([]FileDemand, 0, len(files))
	for fh, f := range files {
		rows = append(rows, FileDemand{
			File:                a.labelLocked(fh),
			WorkingSetBytes:     a.scaleBlocks(f.blocks),
			SampledUniqueBlocks: f.blocks,
			SampledRefs:         f.refs,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SampledRefs != rows[j].SampledRefs {
			return rows[i].SampledRefs > rows[j].SampledRefs
		}
		return rows[i].File < rows[j].File
	})
	if len(rows) > maxSnapFiles {
		rows = rows[:maxSnapFiles]
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].SampledRefs != hot[j].SampledRefs {
			return hot[i].SampledRefs > hot[j].SampledRefs
		}
		if hot[i].File != hot[j].File {
			return hot[i].File < hot[j].File
		}
		return hot[i].Block < hot[j].Block
	})
	if len(hot) > maxHotBlocks {
		hot = hot[:maxHotBlocks]
	}
	for i := range hot {
		hot[i].File = a.labelLocked(hot[i].File)
	}
	return rows, hot
}

// labelLocked renders a raw file-handle key for display. Caller holds
// a.mu.
func (a *Analyzer) labelLocked(fhKey string) string {
	if a.fileLabel != nil {
		return a.fileLabel(fhKey)
	}
	if len(fhKey) > 8 {
		fhKey = fhKey[:8]
	}
	return "fh:" + hex.EncodeToString([]byte(fhKey))
}

// WriteCachez renders the snapshot as the bounded /cachez JSON
// document.
func (a *Analyzer) WriteCachez(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Snapshot())
}

// ldexpCbrt returns 2^(n/3).
func ldexpCbrt(n int) float64 {
	oct, rem := n/3, n%3
	if rem < 0 {
		oct--
		rem += 3
	}
	f := 1.0
	switch rem {
	case 1:
		f = 1.2599210498948732 // 2^(1/3)
	case 2:
		f = 1.5874010519681994 // 2^(2/3)
	}
	return math.Ldexp(f, oct)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
