// Package tunnel provides encrypted, authenticated private data
// channels between GVFS proxies. It stands in for the SSH tunnels the
// paper uses to carry inter-proxy RPC traffic across administrative
// domains: all bytes are AES-256-CTR encrypted and HMAC-SHA256
// authenticated under a session key distributed by the middleware
// (the paper's short-lived, per-session credentials).
//
// A tunnel endpoint wraps any net.Conn and itself satisfies net.Conn,
// so the RPC and file-channel layers are oblivious to whether their
// transport is private — the same transparency property the paper's
// SSH port forwarding has.
package tunnel

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// KeySize is the session key length in bytes (AES-256).
const KeySize = 32

// maxFrame bounds a single encrypted frame.
const maxFrame = 1 << 20

var (
	// ErrAuth reports an HMAC verification failure: the peer does not
	// hold the session key or the stream was tampered with.
	ErrAuth = errors.New("tunnel: frame authentication failed")
	// ErrHandshake reports a malformed or mismatched handshake.
	ErrHandshake = errors.New("tunnel: handshake failed")
)

var magic = [8]byte{'G', 'V', 'F', 'S', 'T', 'U', 'N', '1'}

// NewKey generates a random session key. Middleware generates one per
// file system session and installs it at both proxies.
func NewKey() ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return key, nil
}

// Conn is an encrypted channel over an underlying net.Conn.
type Conn struct {
	raw net.Conn

	wmu  sync.Mutex
	wseq uint64
	enc  cipher.Stream
	wmac []byte // key for outbound HMAC

	rmu  sync.Mutex
	rseq uint64
	dec  cipher.Stream
	rmac []byte
	rbuf []byte // decrypted bytes not yet delivered
}

// Client performs the initiator handshake over raw using the shared
// session key and returns the encrypted channel.
func Client(raw net.Conn, key []byte) (*Conn, error) {
	var clientIV, serverIV [aes.BlockSize]byte
	if _, err := rand.Read(clientIV[:]); err != nil {
		return nil, err
	}
	hello := append(append([]byte{}, magic[:]...), clientIV[:]...)
	if _, err := raw.Write(hello); err != nil {
		return nil, err
	}
	resp := make([]byte, len(magic)+aes.BlockSize)
	if _, err := io.ReadFull(raw, resp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if string(resp[:8]) != string(magic[:]) {
		return nil, ErrHandshake
	}
	copy(serverIV[:], resp[8:])
	return newConn(raw, key, clientIV, serverIV, true)
}

// Server performs the responder handshake over raw using the shared
// session key and returns the encrypted channel.
func Server(raw net.Conn, key []byte) (*Conn, error) {
	hello := make([]byte, len(magic)+aes.BlockSize)
	if _, err := io.ReadFull(raw, hello); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if string(hello[:8]) != string(magic[:]) {
		return nil, ErrHandshake
	}
	var clientIV, serverIV [aes.BlockSize]byte
	copy(clientIV[:], hello[8:])
	if _, err := rand.Read(serverIV[:]); err != nil {
		return nil, err
	}
	resp := append(append([]byte{}, magic[:]...), serverIV[:]...)
	if _, err := raw.Write(resp); err != nil {
		return nil, err
	}
	return newConn(raw, key, clientIV, serverIV, false)
}

func newConn(raw net.Conn, key []byte, clientIV, serverIV [aes.BlockSize]byte, initiator bool) (*Conn, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("tunnel: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	// Directional MAC keys derived from the session key and role.
	cMAC := deriveMAC(key, "client")
	sMAC := deriveMAC(key, "server")
	c := &Conn{raw: raw}
	if initiator {
		c.enc = cipher.NewCTR(block, clientIV[:])
		c.dec = cipher.NewCTR(block, serverIV[:])
		c.wmac, c.rmac = cMAC, sMAC
	} else {
		c.enc = cipher.NewCTR(block, serverIV[:])
		c.dec = cipher.NewCTR(block, clientIV[:])
		c.wmac, c.rmac = sMAC, cMAC
	}
	return c, nil
}

func deriveMAC(key []byte, dir string) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte("gvfs-tunnel-mac-" + dir))
	return h.Sum(nil)
}

// Write encrypts p as one authenticated frame.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > maxFrame {
			chunk = chunk[:maxFrame]
		}
		ct := make([]byte, len(chunk))
		c.enc.XORKeyStream(ct, chunk)
		var hdr [12]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(ct)))
		binary.BigEndian.PutUint64(hdr[4:], c.wseq)
		mac := hmac.New(sha256.New, c.wmac)
		mac.Write(hdr[:])
		mac.Write(ct)
		frame := make([]byte, 0, 4+len(ct)+sha256.Size)
		frame = append(frame, hdr[:4]...)
		frame = append(frame, ct...)
		frame = append(frame, mac.Sum(nil)...)
		if _, err := c.raw.Write(frame); err != nil {
			return total, err
		}
		c.wseq++
		stats.txFrames.Add(1)
		stats.txBytes.Add(uint64(len(chunk)))
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// Read decrypts the next frame, buffering any surplus.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		var lenHdr [4]byte
		if _, err := io.ReadFull(c.raw, lenHdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(lenHdr[:])
		if n > maxFrame {
			return 0, fmt.Errorf("tunnel: oversized frame (%d bytes)", n)
		}
		body := make([]byte, int(n)+sha256.Size)
		if _, err := io.ReadFull(c.raw, body); err != nil {
			return 0, err
		}
		ct, tag := body[:n], body[n:]
		var hdr [12]byte
		copy(hdr[:4], lenHdr[:])
		binary.BigEndian.PutUint64(hdr[4:], c.rseq)
		mac := hmac.New(sha256.New, c.rmac)
		mac.Write(hdr[:])
		mac.Write(ct)
		if !hmac.Equal(mac.Sum(nil), tag) {
			return 0, ErrAuth
		}
		c.rseq++
		stats.rxFrames.Add(1)
		stats.rxBytes.Add(uint64(len(ct)))
		pt := make([]byte, len(ct))
		c.dec.XORKeyStream(pt, ct)
		c.rbuf = pt
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline forwards to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline forwards to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline forwards to the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }
