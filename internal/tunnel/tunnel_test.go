package tunnel

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

// pipePair establishes a tunnel over an in-process pipe.
func pipePair(t *testing.T, key []byte) (cli, srv *Conn) {
	t.Helper()
	a, b := net.Pipe()
	var wg sync.WaitGroup
	var cErr, sErr error
	wg.Add(2)
	go func() { defer wg.Done(); cli, cErr = Client(a, key) }()
	go func() { defer wg.Done(); srv, sErr = Server(b, key) }()
	wg.Wait()
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client=%v server=%v", cErr, sErr)
	}
	return cli, srv
}

func testKey(t *testing.T) []byte {
	t.Helper()
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestRoundTrip(t *testing.T) {
	key := testKey(t)
	cli, srv := pipePair(t, key)
	defer cli.Close()
	defer srv.Close()
	msg := []byte("NFS RPC over a private channel")
	go cli.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
}

func TestBidirectional(t *testing.T) {
	key := testKey(t)
	cli, srv := pipePair(t, key)
	defer cli.Close()
	defer srv.Close()
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(srv, buf)
		srv.Write(append(buf, []byte("-ack")...))
	}()
	cli.Write([]byte("ping"))
	buf := make([]byte, 8)
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping-ack" {
		t.Errorf("got %q", buf)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	key := testKey(t)
	a, b := net.Pipe()
	// Capture raw bytes between the endpoints with a middle pipe.
	rawCli, rawSrvSide := a, b
	var captured bytes.Buffer
	c2, s2 := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := rawSrvSide.Read(buf)
			if n > 0 {
				captured.Write(buf[:n])
				c2.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	go io.Copy(rawSrvSide, c2) // reverse path: server -> client
	var wg sync.WaitGroup
	var cli, srv *Conn
	var cErr, sErr error
	wg.Add(2)
	go func() { defer wg.Done(); cli, cErr = Client(rawCli, key) }()
	go func() { defer wg.Done(); srv, sErr = Server(s2, key) }()
	wg.Wait()
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: %v %v", cErr, sErr)
	}
	defer cli.Close()
	defer srv.Close()
	secret := bytes.Repeat([]byte("TOPSECRET-VM-STATE"), 10)
	go cli.Write(secret)
	buf := make([]byte, len(secret))
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(captured.Bytes(), []byte("TOPSECRET")) {
		t.Error("plaintext leaked onto the wire")
	}
}

func TestLargeTransfer(t *testing.T) {
	key := testKey(t)
	cli, srv := pipePair(t, key)
	defer cli.Close()
	defer srv.Close()
	payload := make([]byte, 3*maxFrame+12345)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		if _, err := cli.Write(payload); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large transfer corrupted")
	}
}

func TestWrongKeyFailsAuth(t *testing.T) {
	key1 := testKey(t)
	key2 := testKey(t)
	a, b := net.Pipe()
	var wg sync.WaitGroup
	var cli, srv *Conn
	wg.Add(2)
	go func() { defer wg.Done(); cli, _ = Client(a, key1) }()
	go func() { defer wg.Done(); srv, _ = Server(b, key2) }()
	wg.Wait()
	if cli == nil || srv == nil {
		t.Fatal("handshake did not complete")
	}
	defer cli.Close()
	defer srv.Close()
	go cli.Write([]byte("hello"))
	buf := make([]byte, 5)
	_, err := srv.Read(buf)
	if err != ErrAuth {
		t.Errorf("err = %v, want ErrAuth", err)
	}
}

func TestTamperedFrameFailsAuth(t *testing.T) {
	key := testKey(t)
	a, mid := net.Pipe()
	mid2, b := net.Pipe()
	// A man in the middle that flips one ciphertext bit.
	go func() {
		buf := make([]byte, 4096)
		first := true
		for {
			n, err := mid.Read(buf)
			if n > 0 {
				if !first && n > 10 {
					buf[6] ^= 0xff // flip a bit past the length header
				}
				first = false
				mid2.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	go func() { io.Copy(mid, mid2) }()
	var wg sync.WaitGroup
	var cli, srv *Conn
	wg.Add(2)
	go func() { defer wg.Done(); cli, _ = Client(a, key) }()
	go func() { defer wg.Done(); srv, _ = Server(b, key) }()
	wg.Wait()
	if cli == nil || srv == nil {
		t.Skip("handshake interfered with by tamper goroutine")
	}
	defer cli.Close()
	defer srv.Close()
	go cli.Write([]byte("sensitive"))
	_, err := srv.Read(make([]byte, 16))
	if err != ErrAuth {
		t.Errorf("err = %v, want ErrAuth", err)
	}
}

func TestBadKeySize(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		Server(b, make([]byte, KeySize))
	}()
	if _, err := Client(a, []byte("short")); err == nil {
		t.Error("expected error for short key")
	}
}

func TestNewKeyUnique(t *testing.T) {
	k1, err1 := NewKey()
	k2, err2 := NewKey()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if bytes.Equal(k1, k2) {
		t.Error("two keys are identical")
	}
	if len(k1) != KeySize {
		t.Errorf("key size = %d", len(k1))
	}
}

func TestQuickRoundTripChunks(t *testing.T) {
	key := testKey(t)
	cli, srv := pipePair(t, key)
	defer cli.Close()
	defer srv.Close()
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		go cli.Write(data)
		got := make([]byte, len(data))
		if _, err := io.ReadFull(srv, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
