package tunnel_test

// Mid-stream connection death on a tunneled hop must surface as an
// error at the session, never a hang — the encrypted mirror of the
// proxy package's TestUpstreamDeathSurfacesErrors.

import (
	"bytes"
	"testing"
	"time"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/stack"
)

func TestTunneledUpstreamDeathSurfacesErrors(t *testing.T) {
	fs := memfs.New()
	fs.WriteFile("/f", bytes.Repeat([]byte{1}, 64*1024))
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Encrypt: true})
	if err != nil {
		t.Fatal(err)
	}
	if server.Key == nil {
		t.Fatal("no tunnel key generated")
	}
	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 8, Assoc: 2,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamKey:  server.Key,
		CacheConfig:  &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}

	// The image server dies mid-session, taking the tunnel's far end
	// with it.
	server.Close()

	done := make(chan error, 1)
	go func() {
		_, err := sess.ReadFile("/g") // uncached: must reach upstream
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read of uncached file succeeded through a dead tunnel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read hung after tunneled upstream death")
	}
}
