package tunnel

import "sync/atomic"

// Package-wide transfer totals, aggregated across every tunnel Conn in
// the process. The counters are plain atomics so the per-frame cost is
// one add each; daemons bridge them into an obs.Registry with
// CounterFunc so the tunnel package stays dependency-free.
var stats struct {
	txFrames atomic.Uint64
	txBytes  atomic.Uint64
	rxFrames atomic.Uint64
	rxBytes  atomic.Uint64
}

// Stats is a point-in-time snapshot of the process-wide tunnel totals.
type Stats struct {
	TxFrames uint64 // encrypted frames sent
	TxBytes  uint64 // plaintext bytes sent
	RxFrames uint64 // authenticated frames received
	RxBytes  uint64 // plaintext bytes received
}

// ReadStats returns the current process-wide tunnel transfer totals.
func ReadStats() Stats {
	return Stats{
		TxFrames: stats.txFrames.Load(),
		TxBytes:  stats.txBytes.Load(),
		RxFrames: stats.rxFrames.Load(),
		RxBytes:  stats.rxBytes.Load(),
	}
}
