// Package mountd implements the MOUNT version 3 protocol (RFC 1813
// appendix I) used to obtain the root file handle of an NFS export.
// Real NFS deployments run mountd beside nfsd; GVFS sessions start with
// exactly this exchange before NFS traffic begins flowing through the
// proxy chain.
package mountd

import (
	"bytes"
	"sync"

	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
	"gvfs/internal/xdr"
)

// MOUNT v3 procedures.
const (
	ProcNull   = 0
	ProcMnt    = 1
	ProcDump   = 2
	ProcUmnt   = 3
	ProcExport = 5
)

// Mount status codes.
const (
	OK        uint32 = 0
	ErrNoEnt  uint32 = 2
	ErrAcces  uint32 = 13
	ErrNotDir uint32 = 20
	ErrInval  uint32 = 22
)

// Server answers MOUNT requests for a set of named exports.
type Server struct {
	mu      sync.RWMutex
	exports map[string]nfs3.FH
}

// NewServer returns a Server with no exports.
func NewServer() *Server { return &Server{exports: make(map[string]nfs3.FH)} }

// Export registers dirpath as an export rooted at fh.
func (s *Server) Export(dirpath string, fh nfs3.FH) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exports[dirpath] = fh
}

// HandleCall implements sunrpc.Handler.
func (s *Server) HandleCall(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	switch c.Proc {
	case ProcNull:
		return nil, sunrpc.Success
	case ProcMnt:
		d := xdr.NewDecoder(bytes.NewReader(c.Args))
		dirpath := d.String()
		if d.Err() != nil {
			return nil, sunrpc.GarbageArgs
		}
		s.mu.RLock()
		fh, ok := s.exports[dirpath]
		s.mu.RUnlock()
		var buf bytes.Buffer
		e := xdr.NewEncoder(&buf)
		if !ok {
			e.Uint32(ErrNoEnt)
			return buf.Bytes(), sunrpc.Success
		}
		e.Uint32(OK)
		e.Opaque(fh)
		e.Uint32(1) // one auth flavor follows
		e.Uint32(sunrpc.AuthUnix)
		return buf.Bytes(), sunrpc.Success
	case ProcUmnt, ProcDump:
		return nil, sunrpc.Success
	case ProcExport:
		s.mu.RLock()
		defer s.mu.RUnlock()
		var buf bytes.Buffer
		e := xdr.NewEncoder(&buf)
		for dirpath := range s.exports {
			e.Bool(true)
			e.String(dirpath)
			e.Bool(false) // no group list
		}
		e.Bool(false)
		return buf.Bytes(), sunrpc.Success
	}
	return nil, sunrpc.ProcUnavail
}

// Mount asks the MOUNT service reachable through rpc for the root
// handle of dirpath.
func Mount(rpc nfs3.Caller, cred sunrpc.OpaqueAuth, dirpath string) (nfs3.FH, error) {
	var args bytes.Buffer
	xdr.NewEncoder(&args).String(dirpath)
	res, err := rpc.Call(nfs3.MountProgram, nfs3.MountVersion, ProcMnt, cred, args.Bytes())
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	status := d.Uint32()
	if status != OK {
		return nil, &nfs3.Error{Status: nfs3.Status(status), Op: "mount " + dirpath}
	}
	fh := nfs3.FH(d.Opaque())
	if err := d.Err(); err != nil {
		return nil, err
	}
	return fh, nil
}
