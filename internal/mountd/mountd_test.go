package mountd_test

import (
	"net"
	"testing"

	"gvfs/internal/memfs"
	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
)

func startMountd(t *testing.T, exports map[string]nfs3.FH) *sunrpc.Client {
	t.Helper()
	srv := sunrpc.NewServer()
	md := mountd.NewServer()
	for p, fh := range exports {
		md.Export(p, fh)
	}
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, md)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	c, err := sunrpc.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMountKnownExport(t *testing.T) {
	fs := memfs.New()
	root, _ := fs.Root()
	c := startMountd(t, map[string]nfs3.FH{"/export": root})
	fh, err := mountd.Mount(c, sunrpc.AuthNoneCred, "/export")
	if err != nil {
		t.Fatal(err)
	}
	if string(fh) != string(root) {
		t.Errorf("fh = %x, want %x", fh, root)
	}
}

func TestMountUnknown(t *testing.T) {
	c := startMountd(t, nil)
	if _, err := mountd.Mount(c, sunrpc.AuthNoneCred, "/nope"); err == nil {
		t.Error("unknown export mounted")
	}
}

func TestMultipleExports(t *testing.T) {
	fs1, fs2 := memfs.New(), memfs.New()
	r1, _ := fs1.Root()
	fs2.MkdirAll("/sub")
	r2, _ := fs2.LookupPath("/sub")
	c := startMountd(t, map[string]nfs3.FH{"/a": r1, "/b": r2})
	fhA, err := mountd.Mount(c, sunrpc.AuthNoneCred, "/a")
	if err != nil {
		t.Fatal(err)
	}
	fhB, err := mountd.Mount(c, sunrpc.AuthNoneCred, "/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(fhA) == string(fhB) {
		t.Error("distinct exports returned the same handle")
	}
}

func TestNullAndUmnt(t *testing.T) {
	c := startMountd(t, nil)
	if _, err := c.Call(nfs3.MountProgram, nfs3.MountVersion, mountd.ProcNull, sunrpc.AuthNoneCred, nil); err != nil {
		t.Errorf("NULL: %v", err)
	}
	if _, err := c.Call(nfs3.MountProgram, nfs3.MountVersion, mountd.ProcUmnt, sunrpc.AuthNoneCred, nil); err != nil {
		t.Errorf("UMNT: %v", err)
	}
}
