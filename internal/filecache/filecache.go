// Package filecache implements the file-based disk cache of the
// paper's heterogeneous caching scheme (§3.2.2): whole files fetched
// through the file-based data channel are stored on local disk and all
// subsequent NFS requests to them are satisfied locally. It complements
// the block-based cache in package cache — together they form the
// heterogeneous disk cache the paper describes.
//
// Entries are keyed by remote path. The cache supports write-back:
// locally modified entries are marked dirty and uploaded through the
// file channel when the middleware flushes the session.
package filecache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrNotCached is returned when the requested path has no entry.
var ErrNotCached = errors.New("filecache: not cached")

type entry struct {
	local string // local file path
	size  uint64
	dirty bool
}

// Stats reports file-cache counters.
type Stats struct {
	Files     int
	Bytes     uint64
	Hits      uint64
	Stores    uint64
	WriteOuts uint64
}

// Cache is a whole-file disk cache. All methods are safe for
// concurrent use.
type Cache struct {
	dir string

	mu      sync.Mutex
	entries map[string]*entry
	hits    uint64
	stores  uint64
	flushes uint64
}

// New creates the cache directory if needed and returns an empty cache.
func New(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir, entries: make(map[string]*entry)}, nil
}

func (c *Cache) localName(path string) string {
	sum := sha256.Sum256([]byte(path))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16]))
}

// Store caches the full contents of path.
func (c *Cache) Store(path string, data []byte) error {
	local := c.localName(path)
	if err := os.WriteFile(local, data, 0644); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[path] = &entry{local: local, size: uint64(len(data))}
	c.stores++
	return nil
}

// Has reports whether path is cached.
func (c *Cache) Has(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[path]
	return ok
}

// Size returns the cached size of path.
func (c *Cache) Size(path string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[path]
	if !ok {
		return 0, false
	}
	return e.size, true
}

// ReadAt serves a block read from the cached file, reporting EOF when
// the read reaches the end.
func (c *Cache) ReadAt(path string, off uint64, count uint32) (data []byte, eof bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[path]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false, ErrNotCached
	}
	if off >= e.size {
		return nil, true, nil
	}
	end := off + uint64(count)
	if end > e.size {
		end = e.size
	}
	f, err := os.Open(e.local)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	buf := make([]byte, end-off)
	if _, err := f.ReadAt(buf, int64(off)); err != nil {
		return nil, false, err
	}
	return buf, end == e.size, nil
}

// WriteAt applies a block write to the cached file and marks it dirty
// (file-cache write-back).
func (c *Cache) WriteAt(path string, off uint64, data []byte) error {
	c.mu.Lock()
	e, ok := c.entries[path]
	if !ok {
		c.mu.Unlock()
		return ErrNotCached
	}
	e.dirty = true
	if end := off + uint64(len(data)); end > e.size {
		e.size = end
	}
	local := e.local
	c.mu.Unlock()
	f, err := os.OpenFile(local, os.O_WRONLY, 0644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, int64(off))
	return err
}

// Truncate resizes a cached entry and marks it dirty.
func (c *Cache) Truncate(path string, size uint64) error {
	c.mu.Lock()
	e, ok := c.entries[path]
	if !ok {
		c.mu.Unlock()
		return ErrNotCached
	}
	e.size = size
	e.dirty = true
	local := e.local
	c.mu.Unlock()
	return os.Truncate(local, int64(size))
}

// Contents returns the full cached contents of path.
func (c *Cache) Contents(path string) ([]byte, error) {
	c.mu.Lock()
	e, ok := c.entries[path]
	c.mu.Unlock()
	if !ok {
		return nil, ErrNotCached
	}
	data, err := os.ReadFile(e.local)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) > e.size {
		data = data[:e.size]
	}
	return data, nil
}

// Dirty reports whether path has local modifications.
func (c *Cache) Dirty(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[path]
	return ok && e.dirty
}

// DirtyPaths lists entries with local modifications.
func (c *Cache) DirtyPaths() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for p, e := range c.entries {
		if e.dirty {
			out = append(out, p)
		}
	}
	return out
}

// MarkClean clears the dirty flag after an upload.
func (c *Cache) MarkClean(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[path]; ok {
		e.dirty = false
	}
}

// Invalidate removes path from the cache. Dirty data is discarded;
// flush first if it must survive.
func (c *Cache) Invalidate(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[path]; ok {
		os.Remove(e.local)
		delete(c.entries, path)
	}
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p, e := range c.entries {
		os.Remove(e.local)
		delete(c.entries, p)
	}
}

// Stats returns a snapshot of counters and sizes.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Files: len(c.entries), Hits: c.hits, Stores: c.stores, WriteOuts: c.flushes}
	for _, e := range c.entries {
		st.Bytes += e.size
	}
	return st
}

// FlushFunc uploads one dirty file (e.g. via filechan.Put).
type FlushFunc func(path string, data []byte) error

// Flush uploads every dirty entry through fn and marks them clean.
func (c *Cache) Flush(fn FlushFunc) error {
	for _, p := range c.DirtyPaths() {
		data, err := c.Contents(p)
		if err != nil {
			return fmt.Errorf("filecache: flush %s: %w", p, err)
		}
		if err := fn(p, data); err != nil {
			return fmt.Errorf("filecache: flush %s: %w", p, err)
		}
		c.mu.Lock()
		c.flushes++
		c.mu.Unlock()
		c.MarkClean(p)
	}
	return nil
}
