package filecache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStoreAndReadAt(t *testing.T) {
	c := newCache(t)
	data := bytes.Repeat([]byte("memstate"), 1000)
	if err := c.Store("/images/vm.vmss", data); err != nil {
		t.Fatal(err)
	}
	if !c.Has("/images/vm.vmss") {
		t.Fatal("Has = false after Store")
	}
	got, eof, err := c.ReadAt("/images/vm.vmss", 16, 32)
	if err != nil || eof {
		t.Fatalf("err=%v eof=%v", err, eof)
	}
	if !bytes.Equal(got, data[16:48]) {
		t.Error("ReadAt returned wrong bytes")
	}
	tail, eof, err := c.ReadAt("/images/vm.vmss", uint64(len(data))-10, 100)
	if err != nil || !eof || len(tail) != 10 {
		t.Errorf("tail: len=%d eof=%v err=%v", len(tail), eof, err)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	c := newCache(t)
	c.Store("/f", []byte("xy"))
	data, eof, err := c.ReadAt("/f", 100, 10)
	if err != nil || !eof || len(data) != 0 {
		t.Errorf("data=%q eof=%v err=%v", data, eof, err)
	}
}

func TestNotCached(t *testing.T) {
	c := newCache(t)
	if _, _, err := c.ReadAt("/missing", 0, 10); !errors.Is(err, ErrNotCached) {
		t.Errorf("err = %v", err)
	}
	if err := c.WriteAt("/missing", 0, []byte("x")); !errors.Is(err, ErrNotCached) {
		t.Errorf("err = %v", err)
	}
	if _, ok := c.Size("/missing"); ok {
		t.Error("Size of missing entry")
	}
}

func TestWriteAtMarksDirty(t *testing.T) {
	c := newCache(t)
	c.Store("/f", make([]byte, 100))
	if c.Dirty("/f") {
		t.Error("fresh entry dirty")
	}
	if err := c.WriteAt("/f", 10, []byte("patch")); err != nil {
		t.Fatal(err)
	}
	if !c.Dirty("/f") {
		t.Error("entry not dirty after write")
	}
	data, _, _ := c.ReadAt("/f", 10, 5)
	if string(data) != "patch" {
		t.Errorf("read = %q", data)
	}
}

func TestWriteAtExtends(t *testing.T) {
	c := newCache(t)
	c.Store("/f", make([]byte, 10))
	if err := c.WriteAt("/f", 20, []byte("beyond")); err != nil {
		t.Fatal(err)
	}
	if sz, _ := c.Size("/f"); sz != 26 {
		t.Errorf("size = %d", sz)
	}
}

func TestTruncate(t *testing.T) {
	c := newCache(t)
	c.Store("/f", make([]byte, 100))
	if err := c.Truncate("/f", 10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := c.Size("/f"); sz != 10 {
		t.Errorf("size = %d", sz)
	}
	if !c.Dirty("/f") {
		t.Error("truncate should mark dirty")
	}
}

func TestContents(t *testing.T) {
	c := newCache(t)
	data := []byte("whole file contents")
	c.Store("/f", data)
	got, err := c.Contents("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("got %q err=%v", got, err)
	}
}

func TestFlush(t *testing.T) {
	c := newCache(t)
	c.Store("/a", []byte("A"))
	c.Store("/b", []byte("B"))
	c.WriteAt("/a", 0, []byte("X"))
	uploaded := map[string][]byte{}
	err := c.Flush(func(path string, data []byte) error {
		uploaded[path] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(uploaded) != 1 || string(uploaded["/a"]) != "X" {
		t.Errorf("uploaded = %v", uploaded)
	}
	if c.Dirty("/a") {
		t.Error("still dirty after flush")
	}
}

func TestFlushPropagatesError(t *testing.T) {
	c := newCache(t)
	c.Store("/a", []byte("A"))
	c.WriteAt("/a", 0, []byte("X"))
	wantErr := errors.New("network down")
	err := c.Flush(func(string, []byte) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	if !c.Dirty("/a") {
		t.Error("entry marked clean despite failed upload")
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(t)
	c.Store("/a", []byte("A"))
	c.Invalidate("/a")
	if c.Has("/a") {
		t.Error("entry survives Invalidate")
	}
	c.Store("/b", []byte("B"))
	c.InvalidateAll()
	if c.Has("/b") {
		t.Error("entry survives InvalidateAll")
	}
}

func TestStats(t *testing.T) {
	c := newCache(t)
	c.Store("/a", make([]byte, 100))
	c.Store("/b", make([]byte, 50))
	c.ReadAt("/a", 0, 10)
	st := c.Stats()
	if st.Files != 2 || st.Bytes != 150 || st.Hits != 1 || st.Stores != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDistinctPathsDistinctFiles(t *testing.T) {
	c := newCache(t)
	c.Store("/x/same-name", []byte("one"))
	c.Store("/y/same-name", []byte("two"))
	a, _ := c.Contents("/x/same-name")
	b, _ := c.Contents("/y/same-name")
	if string(a) != "one" || string(b) != "two" {
		t.Errorf("collision: %q %q", a, b)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := newCache(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("/f%d", i)
			data := bytes.Repeat([]byte{byte(i)}, 1000)
			if err := c.Store(p, data); err != nil {
				t.Error(err)
				return
			}
			got, _, err := c.ReadAt(p, 0, 1000)
			if err != nil || !bytes.Equal(got, data) {
				t.Errorf("readback %s failed: %v", p, err)
			}
		}(i)
	}
	wg.Wait()
}
