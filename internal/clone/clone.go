// Package clone implements the VM cloning workflow of the paper's
// §3.2.3 and §4.3: instantiating a new VM from a "golden" image stored
// on a (possibly remote) image server. The cloning scheme is exactly
// the benchmarked one:
//
//  1. copy the VM configuration file,
//  2. access the VM memory state file (the client proxy's meta-data
//     handling turns this into one compressed file-channel transfer),
//  3. build symbolic links to the virtual disk files (no disk copy —
//     disk blocks arrive on demand through the proxy cache),
//  4. configure the cloned VM with user-specific information,
//  5. resume the new VM.
//
// The package also provides the two baselines the paper compares
// against: full-image SCP copying (1127 s in the paper) and resuming
// directly from a plain NFS mount with no GVFS support (2060 s).
package clone

import (
	"fmt"
	"net"
	"path"
	"strings"
	"sync"
	"time"

	gvfs "gvfs"
	"gvfs/internal/filechan"
	"gvfs/internal/vm"
)

// Result reports one completed cloning.
type Result struct {
	Name     string
	Dir      string
	Duration time.Duration
	VM       *vm.VM
}

// Options parameterize Clone.
type Options struct {
	// GoldenDir is the golden image's directory on the image server.
	GoldenDir string
	// CloneDir is the directory for the clone's own files.
	CloneDir string
	// Name is the image base name (Spec.Name).
	Name string
	// User customizes the clone ("configuring it with user specific
	// information").
	User string
	// KeepVM leaves the resumed VM open in the Result.
	KeepVM bool
}

// Clone performs the full cloning workflow over sess and returns
// timing. The heavy lifting — compressed memory-state transfer,
// on-demand disk blocks — happens inside the GVFS proxy chain,
// transparently to this middleware-level code, exactly as the paper
// stresses ("the support from GVFS is on-demand, and transparent to
// user and VM monitor").
func Clone(sess *gvfs.Session, opts Options) (*Result, error) {
	start := time.Now()

	// 1. Copy the VM configuration file.
	cfg, err := sess.ReadFile(path.Join(opts.GoldenDir, opts.Name+".vmx"))
	if err != nil {
		return nil, fmt.Errorf("clone: read golden config: %w", err)
	}
	if err := sess.MkdirAll(opts.CloneDir); err != nil {
		return nil, fmt.Errorf("clone: mkdir: %w", err)
	}

	// 4 (part). Configure the clone with user-specific information.
	patched := configure(string(cfg), opts.User, opts.GoldenDir)
	if err := sess.WriteFile(path.Join(opts.CloneDir, opts.Name+".vmx"), []byte(patched)); err != nil {
		return nil, fmt.Errorf("clone: write config: %w", err)
	}

	// 3. Symbolic links to the virtual disk files.
	diskLink := path.Join(opts.CloneDir, opts.Name+".vmdk")
	if err := sess.Symlink(path.Join(opts.GoldenDir, opts.Name+".vmdk"), diskLink); err != nil {
		return nil, fmt.Errorf("clone: symlink disk: %w", err)
	}

	// 2 + 5. Resume the new VM: the monitor reads the entire memory
	// state (from the golden dir — served by the file channel when
	// meta-data is present) and opens the linked disk.
	monitor := vm.NewMonitor(sess)
	machine, err := monitor.Resume(opts.CloneDir, opts.Name)
	if err != nil {
		return nil, fmt.Errorf("clone: resume: %w", err)
	}

	res := &Result{Name: opts.Name, Dir: opts.CloneDir, Duration: time.Since(start), VM: machine}
	if !opts.KeepVM {
		machine.Close()
		res.VM = nil
	}
	return res, nil
}

// configure rewrites the golden configuration for the clone's user and
// points the checkpoint state at the golden directory (the clone does
// not get its own copy; modifications go to redo logs).
func configure(cfg, user, goldenDir string) string {
	var out []string
	for _, line := range strings.Split(cfg, "\n") {
		if rest, ok := strings.CutPrefix(line, "checkpoint.vmState = "); ok {
			name := strings.Trim(rest, "\"")
			line = fmt.Sprintf("checkpoint.vmState = %q", path.Join(goldenDir, name))
		}
		out = append(out, line)
	}
	if user != "" {
		out = append(out, fmt.Sprintf("guestinfo.gridUser = %q", user))
	}
	return strings.Join(out, "\n")
}

// Sequential clones each (goldenDir, cloneDir) pair in order over one
// session, as in the paper's WAN-S1/S2/S3 scenarios, returning
// per-clone results.
func Sequential(sess *gvfs.Session, opts []Options) ([]*Result, error) {
	results := make([]*Result, 0, len(opts))
	for _, o := range opts {
		r, err := Clone(sess, o)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Parallel clones one image per session concurrently — the paper's
// WAN-P scenario, where eight compute servers share a single image
// server and each client proxy spawns its own file-based data channel.
func Parallel(sessions []*gvfs.Session, opts []Options) ([]*Result, error) {
	if len(sessions) != len(opts) {
		return nil, fmt.Errorf("clone: %d sessions for %d clones", len(sessions), len(opts))
	}
	results := make([]*Result, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Clone(sessions[i], opts[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// SCPCopy is the full-file-copy baseline: transfer every image file in
// its entirety over a secure channel before instantiation, as scp
// would. dial must reach the image server's file-channel service; the
// transfer is uncompressed, matching plain scp of an uncompressible
// disk image. It returns the total bytes moved.
func SCPCopy(dial func() (net.Conn, error), goldenDir, name string) (uint64, time.Duration, error) {
	start := time.Now()
	conn, err := dial()
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	var total uint64
	for _, file := range []string{name + ".vmx", name + ".vmss", name + ".vmdk"} {
		data, err := filechan.Copy(conn, path.Join(goldenDir, file))
		if err != nil {
			return total, time.Since(start), fmt.Errorf("clone: scp %s: %w", file, err)
		}
		total += uint64(len(data))
	}
	return total, time.Since(start), nil
}

// PlainNFSResume is the non-enhanced baseline: resume the VM through a
// session with no proxy caching and no meta-data support, so the
// memory state arrives block by block over the WAN (2060 s in the
// paper).
func PlainNFSResume(sess *gvfs.Session, goldenDir, name string) (time.Duration, error) {
	start := time.Now()
	monitor := vm.NewMonitor(sess)
	machine, err := monitor.Resume(goldenDir, name)
	if err != nil {
		return 0, err
	}
	machine.Close()
	return time.Since(start), nil
}
