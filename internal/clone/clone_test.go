package clone_test

import (
	"fmt"
	"strings"
	"testing"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/clone"
	"gvfs/internal/memfs"
	"gvfs/internal/stack"
	"gvfs/internal/vm"
)

func spec(name string, seed int64) vm.Spec {
	return vm.Spec{Name: name, MemoryBytes: 1 << 20, DiskBytes: 4 << 20, Seed: seed}
}

// cloneEnv builds an image server with a golden image and a caching
// client proxy with the full extension set enabled.
type cloneEnv struct {
	fs     *memfs.FS
	server *stack.ImageServer
	node   *stack.Node
}

func newCloneEnv(t testing.TB) *cloneEnv {
	t.Helper()
	fs := memfs.New()
	if err := vm.InstallImage(fs, "/images/golden", spec("rh73", 1)); err != nil {
		t.Fatal(err)
	}
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	cfg := cache.Config{Dir: t.TempDir(), Banks: 16, SetsPerBank: 16, Assoc: 4, BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &cfg,
		FileCacheDir: t.TempDir(),
		FileChanAddr: server.FileChanAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return &cloneEnv{fs: fs, server: server, node: node}
}

func (e *cloneEnv) session(t testing.TB) *gvfs.Session {
	t.Helper()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: e.node.Addr, Export: "/", PageCachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func TestCloneWorkflow(t *testing.T) {
	e := newCloneEnv(t)
	sess := e.session(t)
	res, err := clone.Clone(sess, clone.Options{
		GoldenDir: "/images/golden",
		CloneDir:  "/clones/c1",
		Name:      "rh73",
		User:      "alice",
		KeepVM:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.VM.Close()

	// Config copied and customized.
	cfg, err := sess.ReadFile("/clones/c1/rh73.vmx")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cfg), `guestinfo.gridUser = "alice"`) {
		t.Error("clone config not customized")
	}
	if !strings.Contains(string(cfg), `checkpoint.vmState = "/images/golden/rh73.vmss"`) {
		t.Errorf("clone config does not reference golden memstate:\n%s", cfg)
	}
	// Disk is a symlink, not a copy.
	target, err := sess.ReadLink("/clones/c1/rh73.vmdk")
	if err != nil || target != "/images/golden/rh73.vmdk" {
		t.Errorf("disk link = %q err=%v", target, err)
	}
	// VM is usable: read a disk block through the link.
	buf := make([]byte, 8192)
	if _, err := res.VM.Disk.ReadAt(buf, 0); err != nil {
		t.Errorf("disk read through clone: %v", err)
	}
	// The memory state must have moved via the file channel, not
	// block-by-block NFS.
	if n := e.node.Proxy.Snapshot().Counter("gvfs_proxy_filechan_fetches_total"); n != 1 {
		t.Errorf("file channel fetches = %d, want 1", n)
	}
}

func TestSequentialClonesSameImageGetWarmer(t *testing.T) {
	e := newCloneEnv(t)
	sess := e.session(t)
	var opts []clone.Options
	for i := 0; i < 3; i++ {
		opts = append(opts, clone.Options{
			GoldenDir: "/images/golden",
			CloneDir:  fmt.Sprintf("/clones/c%d", i),
			Name:      "rh73",
		})
	}
	results, err := clone.Sequential(sess, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Only the first clone transfers the memory state.
	if n := e.node.Proxy.Snapshot().Counter("gvfs_proxy_filechan_fetches_total"); n != 1 {
		t.Errorf("file channel fetches = %d, want 1 (temporal locality)", n)
	}
}

func TestSequentialClonesDistinctImages(t *testing.T) {
	e := newCloneEnv(t)
	for i := 1; i < 3; i++ {
		if err := vm.InstallImage(e.fs, fmt.Sprintf("/images/g%d", i), spec(fmt.Sprintf("img%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sess := e.session(t)
	opts := []clone.Options{
		{GoldenDir: "/images/golden", CloneDir: "/clones/c0", Name: "rh73"},
		{GoldenDir: "/images/g1", CloneDir: "/clones/c1", Name: "img1"},
		{GoldenDir: "/images/g2", CloneDir: "/clones/c2", Name: "img2"},
	}
	if _, err := clone.Sequential(sess, opts); err != nil {
		t.Fatal(err)
	}
	if n := e.node.Proxy.Snapshot().Counter("gvfs_proxy_filechan_fetches_total"); n != 3 {
		t.Errorf("file channel fetches = %d, want 3 (no locality)", n)
	}
}

func TestParallelClones(t *testing.T) {
	// Eight compute servers (each with its own proxy+session) share
	// one image server.
	fs := memfs.New()
	if err := vm.InstallImage(fs, "/images/golden", spec("rh73", 1)); err != nil {
		t.Fatal(err)
	}
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	const n = 4
	var sessions []*gvfs.Session
	var opts []clone.Options
	for i := 0; i < n; i++ {
		cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 16, Assoc: 4, BlockSize: 8192, Policy: cache.WriteBack}
		node, err := stack.StartProxy(stack.ProxyOptions{
			UpstreamAddr: server.ProxyAddr(),
			CacheConfig:  &cfg,
			FileCacheDir: t.TempDir(),
			FileChanAddr: server.FileChanAddr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/", PageCachePages: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sessions = append(sessions, sess)
		opts = append(opts, clone.Options{
			GoldenDir: "/images/golden",
			CloneDir:  fmt.Sprintf("/clones/p%d", i),
			Name:      "rh73",
		})
	}
	results, err := clone.Parallel(sessions, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil || r.Duration <= 0 {
			t.Errorf("clone %d missing result", i)
		}
	}
}

func TestSCPCopyBaseline(t *testing.T) {
	e := newCloneEnv(t)
	dial := stack.Dialer(e.server.FileChanAddr(), nil, nil)
	total, dur, err := clone.SCPCopy(dial, "/images/golden", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	s := spec("rh73", 1)
	wantMin := s.MemoryBytes + s.DiskBytes // plus small config
	if total < wantMin {
		t.Errorf("scp moved %d bytes, want >= %d", total, wantMin)
	}
	if dur <= 0 {
		t.Error("no duration measured")
	}
}

func TestPlainNFSResumeBaseline(t *testing.T) {
	fs := memfs.New()
	if err := vm.InstallImage(fs, "/images/golden", spec("rh73", 1)); err != nil {
		t.Fatal(err)
	}
	// No proxy cache, no metadata: a plain NFS mount.
	node, err := stack.StartNFSServer(fs, stack.NFSServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/", PageCachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	dur, err := clone.PlainNFSResume(sess, "/images/golden", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("no duration measured")
	}
}
