package clone

import (
	"fmt"
	"time"

	gvfs "gvfs"
	"gvfs/internal/vm"
)

// Migration implements the paper's future-work direction of
// "distributed virtual file system support for efficient checkpointing
// and migration of VM instances for load-balancing and fault-tolerant
// execution". A running VM on one compute server is checkpointed — its
// memory state written back through the source session — the source
// proxy's dirty state is settled onto the image server, and the VM is
// resumed on a different compute server through its own session and
// proxy chain. Every mechanism involved (write-back caching, on-demand
// block access, session consistency) already exists; migration is
// middleware choreography on top.

// MigrateOptions parameterize Migrate.
type MigrateOptions struct {
	// Machine is the running VM on the source compute server.
	Machine *vm.VM
	// Monitor is the source VM monitor that owns Machine.
	Monitor *vm.Monitor
	// MemState is the checkpoint: the monitor's RAM snapshot at
	// suspend time.
	MemState []byte
	// SettleSource propagates the source proxy's dirty state to the
	// image server (middleware calls the source proxy's WriteBack).
	// Required: without it the destination could resume a stale VM.
	SettleSource func() error
}

// MigrateResult reports the phases of a migration.
type MigrateResult struct {
	SuspendTime time.Duration // checkpoint write on the source
	SettleTime  time.Duration // source proxy write-back
	ResumeTime  time.Duration // instantiation on the destination
	VM          *vm.VM        // the VM, now running on the destination
}

// Migrate suspends a running VM on its source compute server, settles
// the source proxy, and resumes the VM on the destination session.
func Migrate(dst *gvfs.Session, opts MigrateOptions) (*MigrateResult, error) {
	if opts.Machine == nil || opts.Monitor == nil {
		return nil, fmt.Errorf("clone: Migrate requires a running Machine and its Monitor")
	}
	if opts.SettleSource == nil {
		return nil, fmt.Errorf("clone: Migrate requires SettleSource (the source proxy's WriteBack)")
	}
	res := &MigrateResult{}

	// 1. Checkpoint on the source: write the memory state and release
	// the monitor's hold on the state files.
	t0 := time.Now()
	if err := opts.Monitor.Suspend(opts.Machine, opts.MemState); err != nil {
		return nil, fmt.Errorf("clone: migrate: suspend: %w", err)
	}
	opts.Machine.Close()
	res.SuspendTime = time.Since(t0)

	// 2. Settle: the middleware drives the source proxy's write-back
	// so the image server holds the authoritative state.
	t0 = time.Now()
	if err := opts.SettleSource(); err != nil {
		return nil, fmt.Errorf("clone: migrate: settle source: %w", err)
	}
	res.SettleTime = time.Since(t0)

	// 3. Resume on the destination through its own proxy chain.
	t0 = time.Now()
	dstMonitor := vm.NewMonitor(dst)
	resumed, err := dstMonitor.Resume(opts.Machine.Dir, opts.Machine.Name)
	if err != nil {
		return nil, fmt.Errorf("clone: migrate: destination resume: %w", err)
	}
	res.ResumeTime = time.Since(t0)
	res.VM = resumed
	return res, nil
}
