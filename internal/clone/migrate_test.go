package clone_test

import (
	"bytes"
	"testing"

	gvfs "gvfs"
	"gvfs/internal/cache"
	"gvfs/internal/clone"
	"gvfs/internal/memfs"
	"gvfs/internal/stack"
	"gvfs/internal/vm"
)

// computeServer builds one compute server (caching proxy + session)
// against server.
func computeServer(t *testing.T, server *stack.ImageServer) (*stack.Node, *gvfs.Session) {
	t.Helper()
	cfg := cache.Config{Dir: t.TempDir(), Banks: 8, SetsPerBank: 16, Assoc: 4,
		BlockSize: 8192, Policy: cache.WriteBack}
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		CacheConfig:  &cfg,
		FileCacheDir: t.TempDir(),
		FileChanAddr: server.FileChanAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/", PageCachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return node, sess
}

func TestMigrateMovesRunningVM(t *testing.T) {
	fs := memfs.New()
	s := vm.Spec{Name: "rh73", MemoryBytes: 1 << 20, DiskBytes: 4 << 20, Seed: 5}
	if err := vm.InstallImage(fs, "/vm", s); err != nil {
		t.Fatal(err)
	}
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	srcNode, srcSess := computeServer(t, server)
	_, dstSess := computeServer(t, server)

	// Start the VM on the source and modify its state: disk write +
	// a distinctive memory checkpoint.
	srcMonitor := vm.NewMonitor(srcSess)
	machine, err := srcMonitor.Resume("/vm", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	diskPatch := bytes.Repeat([]byte{0xD1}, 8192)
	if _, err := machine.Disk.WriteAt(diskPatch, 0); err != nil {
		t.Fatal(err)
	}
	newMem := bytes.Repeat([]byte{0xE5}, 1<<20)

	res, err := clone.Migrate(dstSess, clone.MigrateOptions{
		Machine:      machine,
		Monitor:      srcMonitor,
		MemState:     newMem,
		SettleSource: srcNode.Proxy.WriteBack,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.VM.Close()

	if res.SuspendTime <= 0 || res.ResumeTime <= 0 {
		t.Errorf("phases not timed: %+v", res)
	}
	// The image server holds the checkpointed memory state.
	mem, err := fs.ReadFile("/vm/rh73.vmss")
	if err != nil || !bytes.Equal(mem, newMem) {
		t.Fatalf("memory state not settled: err=%v", err)
	}
	// The destination VM sees the source's disk modification.
	buf := make([]byte, 8192)
	if _, err := res.VM.Disk.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, diskPatch) {
		t.Error("disk modification lost across migration")
	}
}

func TestMigrateRequiresSettle(t *testing.T) {
	fs := memfs.New()
	s := vm.Spec{Name: "rh73", MemoryBytes: 1 << 20, DiskBytes: 4 << 20, Seed: 5}
	vm.InstallImage(fs, "/vm", s)
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	_, srcSess := computeServer(t, server)
	srcMonitor := vm.NewMonitor(srcSess)
	machine, err := srcMonitor.Resume("/vm", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	defer machine.Close()
	if _, err := clone.Migrate(srcSess, clone.MigrateOptions{
		Machine: machine, Monitor: srcMonitor, MemState: nil,
	}); err == nil {
		t.Error("migrate without SettleSource succeeded")
	}
	if _, err := clone.Migrate(srcSess, clone.MigrateOptions{
		SettleSource: func() error { return nil },
	}); err == nil {
		t.Error("migrate without a running machine succeeded")
	}
}
