package bufpool

import (
	"testing"
)

func TestClassSizes(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096},
		{4097, 8192}, {32768, 32768}, {1 << 20, 1 << 20},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("Get(%d) = len %d cap %d, want len %d cap %d",
				c.n, len(b), cap(b), c.n, c.wantCap)
		}
		Put(b)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	before := Snapshot()
	b := Get(MaxPooled + 1)
	if len(b) != MaxPooled+1 {
		t.Fatalf("len = %d", len(b))
	}
	Put(b) // dropped: not a class size
	after := Snapshot()
	if after.Oversize != before.Oversize+1 {
		t.Errorf("oversize counter not bumped")
	}
	if after.Puts != before.Puts {
		t.Errorf("oversized buffer accepted back into pool")
	}
}

func TestPutForeignSliceIsDropped(t *testing.T) {
	before := Snapshot()
	Put(make([]byte, 100)) // cap 100 is not a class size
	Put(nil)
	if got := Snapshot().Puts; got != before.Puts {
		t.Errorf("foreign slice accepted: puts %d -> %d", before.Puts, got)
	}
}

func TestReuse(t *testing.T) {
	// Not guaranteed by sync.Pool in general, but single-goroutine
	// Get-after-Put reuses the per-P private slot in practice.
	b := Get(4096)
	b[0] = 42
	Put(b)
	c := Get(4096)
	defer Put(c)
	if cap(c) != 4096 {
		t.Fatalf("cap = %d", cap(c))
	}
}

// TestPoisonDetectsMutationAfterRelease releases a buffer, keeps the
// alias, writes through it, and verifies the next Get of that class
// panics: the exact bug class the debug mode exists to catch.
func TestPoisonDetectsMutationAfterRelease(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	b := Get(2048)
	leaked := b // aliasing bug under test
	Put(b)
	leaked[7] = 0x01 // mutate after release

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected poison panic, got none")
		}
		if Snapshot().PoisonHits == 0 {
			t.Error("poison hit not counted")
		}
	}()
	// Drain the class until we get our poisoned buffer back (the pool
	// may hand out other cached buffers first).
	for i := 0; i < 64; i++ {
		Get(2048)
	}
	t.Fatal("mutated buffer never resurfaced") // unreachable on success
}

func TestPoisonCleanRoundTrip(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	for i := 0; i < 16; i++ {
		b := Get(1024)
		for j := range b {
			b[j] = byte(j)
		}
		Put(b)
	}
}

func BenchmarkGetPut4K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(4096))
	}
}
