// Package bufpool provides size-classed, sync.Pool-backed byte
// buffers for the RPC data path. The proxy sits on every NFS call
// between a VM and its image server, so steady-state READ/WRITE
// traffic must not churn the allocator: record framing, XDR
// encode/decode and cache bank I/O all borrow buffers here and return
// them when the reply has been written.
//
// Ownership rules (see DESIGN.md §9): a pooled buffer has exactly one
// owner at a time. Whoever calls Get (or receives the buffer together
// with an explicit release callback) must either Put it back or hand
// it off; no component may retain a pooled slice past its release
// point — long-lived structures (cache index, flight recorder, trace
// ring) must copy. Put is always optional: a dropped buffer is
// garbage-collected like any other slice, so error paths may simply
// abandon buffers they own.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 512 B to 1 MiB: the data path
// mostly moves 4 KiB cache blocks, 32 KiB NFS transfers and ~1 MiB
// RPC records, plus small header-sized scratch buffers.
const (
	minClassBits = 9  // 512 B
	maxClassBits = 20 // 1 MiB
	numClasses   = maxClassBits - minClassBits + 1

	// MaxPooled is the largest buffer the pool manages. Requests
	// beyond it fall back to plain allocation and Put drops them.
	MaxPooled = 1 << maxClassBits
)

var pools [numClasses]sync.Pool

// boxes recycles the *[]byte headers that carry buffers through the
// class pools. Storing a raw []byte in a sync.Pool boxes the slice
// header on every Put; cycling preallocated boxes keeps Put
// allocation-free in steady state.
var boxes = sync.Pool{New: func() any { return new([]byte) }}

var (
	gets   atomic.Uint64 // successful Get calls
	puts   atomic.Uint64 // buffers accepted back
	news   atomic.Uint64 // Gets that had to allocate (pool miss)
	big    atomic.Uint64 // Gets larger than MaxPooled (unpooled)
	poison atomic.Uint64 // poison-check violations detected
	debug  atomic.Bool
)

// classFor returns the pool index for a request of n bytes, or -1 when
// n exceeds MaxPooled.
func classFor(n int) int {
	if n > MaxPooled {
		return -1
	}
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	return c
}

// Get returns a buffer with len n. Its capacity is the size class
// (cap >= n), so append within the class never reallocates. The
// contents are unspecified: callers must overwrite before reading.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		big.Add(1)
		return make([]byte, n)
	}
	gets.Add(1)
	if v := pools[c].Get(); v != nil {
		box := v.(*[]byte)
		b := *box
		*box = nil
		boxes.Put(box)
		if debug.Load() {
			checkPoison(b)
		}
		return b[:n]
	}
	news.Add(1)
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put returns a buffer obtained from Get to its size class. Buffers
// whose capacity is not an exact class size (resliced past cap games,
// or plain make() slices) are dropped silently, so Put is safe to call
// on any slice. After Put the caller must not touch b again.
func Put(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	cls := classFor(c)
	if cls < 0 || 1<<(minClassBits+cls) != c {
		return
	}
	b = b[:c]
	if debug.Load() {
		for i := range b {
			b[i] = poisonByte
		}
	}
	puts.Add(1)
	box := boxes.Get().(*[]byte)
	*box = b
	pools[cls].Put(box)
}

// poisonByte fills released buffers in debug mode; Get verifies the
// fill is intact, catching writers that kept a slice past its release.
const poisonByte = 0xDB

func checkPoison(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		if b[i] != poisonByte {
			poison.Add(1)
			panic("bufpool: pooled buffer mutated after release")
		}
	}
}

// SetDebug toggles poison-fill checking: Put fills released buffers
// with a sentinel and Get verifies it, turning any use-after-release
// write into a panic at the next reuse. Meant for tests; it makes
// every Get/Put O(size). Enabling drains the pools first so buffers
// released before the switch (never poisoned) cannot trip the check.
func SetDebug(on bool) {
	if on {
		for i := range pools {
			for pools[i].Get() != nil {
			}
		}
	}
	debug.Store(on)
}

// Stats reports cumulative counters: total pooled Gets, Puts accepted
// back, Gets that allocated (pool misses), and oversized requests that
// bypassed the pool.
type Stats struct {
	Gets, Puts, Misses, Oversize, PoisonHits uint64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{
		Gets:       gets.Load(),
		Puts:       puts.Load(),
		Misses:     news.Load(),
		Oversize:   big.Load(),
		PoisonHits: poison.Load(),
	}
}
