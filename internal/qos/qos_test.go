package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmitFastPath(t *testing.T) {
	s := New(Config{MaxConcurrent: 4})
	defer s.Close()
	release, err := s.Admit("a", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // idempotent
	if got := s.Snapshot(); len(got) != 1 || got[0].Admitted != 1 || got[0].Inflight != 0 {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestQueueFull(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, PerClientQueue: 2})
	defer s.Close()
	hold, err := s.Admit("a", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	// Fill the queue bound with blocked admissions.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := s.Admit("a", 1, time.Time{}); err == nil {
				r()
			}
		}()
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 2
	})
	if _, err := s.Admit("a", 1, time.Time{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	hold()
	wg.Wait()
}

func TestDeadlineExpiredBeforeAdmit(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Admit("a", 1, time.Now().Add(-time.Second)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestDeadlineExpiredInQueue(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()
	hold, err := s.Admit("a", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Admit("b", 1, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("expiry took %v, want prompt", el)
	}
	hold()
	// The expired waiter must not occupy a slot afterwards.
	r, err := s.Admit("b", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	r()
}

// With one execution slot and two backlogged clients, deficit
// round-robin must alternate admissions strictly — the flooding
// client's extra queue depth buys it nothing.
func TestFairShareAlternates(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, PerClientQueue: 64})
	defer s.Close()
	hold, err := s.Admit("seed", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(client string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r, err := s.Admit(client, 1, time.Time{})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, client)
				mu.Unlock()
				r()
			}()
		}
	}
	enqueue("aggressor", 24)
	enqueue("polite", 8)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 32
	})
	hold()
	wg.Wait()

	// While both clients had work (first 16 admissions) each must get
	// exactly half.
	polite := 0
	for _, c := range order[:16] {
		if c == "polite" {
			polite++
		}
	}
	if polite != 8 {
		t.Fatalf("polite got %d of first 16 admissions, want 8 (order %v)", polite, order)
	}
}

// Costs weight the round-robin: with quantum 4 and client A sending
// cost-4 requests against client B's cost-1 requests, each round
// serves 4 of A's bytes and 4 of B's — equal byte shares, not equal
// request counts.
func TestFairShareByBytes(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, PerClientQueue: 64, Quantum: 4})
	defer s.Close()
	hold, err := s.Admit("seed", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}

	var bytesA, bytesB atomic.Int64
	var admissions atomic.Int64
	var wg sync.WaitGroup
	enqueue := func(client string, cost, n int, acc *atomic.Int64) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r, err := s.Admit(client, cost, time.Time{})
				if err != nil {
					t.Error(err)
					return
				}
				if admissions.Add(1) <= 24 {
					acc.Add(int64(cost))
				}
				r()
			}()
		}
	}
	enqueue("heavy", 4, 16, &bytesA)
	enqueue("light", 1, 48, &bytesB)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 64
	})
	hold()
	wg.Wait()

	a, b := bytesA.Load(), bytesB.Load()
	if a == 0 || b == 0 {
		t.Fatalf("a=%d b=%d: both clients must be served", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("byte share ratio %.2f (a=%d b=%d), want near 1", ratio, a, b)
	}
}

// The token bucket delays a client that exhausts its burst; the
// refill timer (not a spin loop) re-dispatches it.
func TestTokenBucketPacesClient(t *testing.T) {
	s := New(Config{MaxConcurrent: 8, RatePerSec: 1000, Burst: 10})
	defer s.Close()
	r1, err := s.Admit("a", 10, time.Time{}) // drains the full burst
	if err != nil {
		t.Fatal(err)
	}
	r1()
	start := time.Now()
	r2, err := s.Admit("a", 10, time.Time{}) // must wait ~10ms of refill
	if err != nil {
		t.Fatal(err)
	}
	r2()
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("second burst admitted after %v, want >=4ms of token refill", el)
	}
}

// A request costing more than the whole bucket must still be served
// (charged at Burst), not deadlock.
func TestOversizedCostDoesNotDeadlock(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, RatePerSec: 1e6, Burst: 1024})
	defer s.Close()
	done := make(chan error, 1)
	go func() {
		r, err := s.Admit("a", 1<<20, time.Time{})
		if err == nil {
			r()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oversized request never admitted")
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	s := New(Config{BrownoutEnter: 10 * time.Millisecond})
	defer s.Close()
	if s.Brownout() {
		t.Fatal("brownout must start clear")
	}
	s.mu.Lock()
	s.observeDelayLocked(100 * time.Millisecond) // EWMA jumps to 20ms
	s.mu.Unlock()
	if !s.Brownout() {
		t.Fatalf("brownout must trip at EWMA %v >= 10ms", s.QueueDelayEWMA())
	}
	// Exit needs the EWMA to decay below Enter/4 = 2.5ms, not merely
	// below Enter — hysteresis prevents flapping.
	s.mu.Lock()
	s.observeDelayLocked(0)
	stillIn := s.brownout.Load()
	s.mu.Unlock()
	if !stillIn {
		t.Fatal("one low sample must not clear brownout (hysteresis)")
	}
	// Even with the EWMA fully decayed, the dwell bound holds the
	// state for brownoutDwell before the exit is allowed.
	for i := 0; i < 40; i++ {
		s.mu.Lock()
		s.observeDelayLocked(0)
		s.mu.Unlock()
	}
	if !s.Brownout() {
		t.Fatal("exit inside the dwell window must be suppressed")
	}
	time.Sleep(brownoutDwell + 100*time.Millisecond)
	s.mu.Lock()
	s.observeDelayLocked(0)
	s.mu.Unlock()
	if s.Brownout() {
		t.Fatalf("brownout must clear after decay+dwell, EWMA %v", s.QueueDelayEWMA())
	}
}

// With no traffic at all, the sampling ticker must decay the EWMA and
// clear brownout — a stale burst cannot pin degraded mode forever.
func TestBrownoutAutoRecoversWhenIdle(t *testing.T) {
	s := New(Config{BrownoutEnter: 10 * time.Millisecond})
	defer s.Close()
	s.mu.Lock()
	s.observeDelayLocked(time.Second)
	s.mu.Unlock()
	if !s.Brownout() {
		t.Fatal("setup: brownout should be active")
	}
	waitFor(t, func() bool { return !s.Brownout() })
}

func TestCloseFailsQueuedWaiters(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	hold, err := s.Admit("a", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit("b", 1, time.Time{})
		errc <- err
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 1
	})
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter err = %v, want ErrClosed", err)
	}
	hold() // release after close must not panic
	if _, err := s.Admit("c", 1, time.Time{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close admit err = %v, want ErrClosed", err)
	}
}

// Idle tenant state is evicted past the TTL so client-ID churn cannot
// grow the heap without bound.
func TestIdleClientEviction(t *testing.T) {
	s := New(Config{IdleTTL: time.Minute})
	defer s.Close()
	base := time.Now()
	s.now = func() time.Time { return base }
	for i := 0; i < 100; i++ {
		r, err := s.Admit(fmt.Sprintf("churn-%d", i), 1, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		r()
	}
	s.now = func() time.Time { return base.Add(2 * time.Minute) }
	r, err := s.Admit("fresh", 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	r()
	s.mu.Lock()
	n := len(s.clients)
	s.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d clients survive eviction, want 1 (fresh only)", n)
	}
}

// Hammer the scheduler from many goroutines with mixed deadlines and
// costs; run under -race. The invariant checked at the end: all
// slots returned, nothing queued, no waiter leaked.
func TestConcurrentStress(t *testing.T) {
	s := New(Config{
		MaxConcurrent:  8,
		PerClientQueue: 16,
		RatePerSec:     1 << 20,
		Burst:          64 << 10,
		BrownoutEnter:  5 * time.Millisecond,
	})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", g%4)
			for i := 0; i < 200; i++ {
				var deadline time.Time
				if i%3 == 0 {
					deadline = time.Now().Add(time.Duration(i%7) * time.Millisecond)
				}
				r, err := s.Admit(client, (i%64)<<8, deadline)
				if err != nil {
					continue
				}
				if i%5 == 0 {
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				}
				r()
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.inflight == 0 && s.queued == 0
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
