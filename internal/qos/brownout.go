package qos

// Brownout controller: an EWMA of admission queue delay with
// enter/exit hysteresis. Queue delay is the one signal that reflects
// *sustained* pressure — instantaneous queue length spikes on every
// burst, but delay only grows when the scheduler cannot drain as fast
// as work arrives. While brownout is active the proxy sheds optional
// work (read-ahead, idle write-back) and defers cache misses with the
// retriable NFS3ERR_JUKEBOX, preserving cache-hit service for
// everyone instead of collapsing for everyone.

import "time"

// Brownout reports whether the proxy should currently shed optional
// work. Safe to call from hot paths (single atomic load).
func (s *Scheduler) Brownout() bool { return s.brownout.Load() }

// QueueDelayEWMA returns the smoothed queue delay the controller is
// acting on.
func (s *Scheduler) QueueDelayEWMA() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.ewmaDelay)
}

// observeDelayLocked feeds one queue-delay sample to the EWMA and
// re-evaluates the brownout state.
func (s *Scheduler) observeDelayLocked(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.ewmaDelay = s.ewmaDelay*(1-ewmaAlpha) + float64(d)*ewmaAlpha
	s.updateBrownoutLocked()
}

// brownoutDwell is the minimum time in either state before the next
// transition. The EWMA hysteresis alone still flaps when shedding
// itself drains the queue (shed → delay collapses → exit → queue
// refills → enter, many times a second); the dwell turns that cycle
// into at most one transition per half second.
const brownoutDwell = 500 * time.Millisecond

func (s *Scheduler) updateBrownoutLocked() {
	if s.cfg.BrownoutEnter <= 0 {
		return
	}
	now := s.now()
	ewma := time.Duration(s.ewmaDelay)
	switch {
	case !s.brownout.Load() && ewma >= s.cfg.BrownoutEnter:
		if !s.lastBrownoutAt.IsZero() && now.Sub(s.lastBrownoutAt) < brownoutDwell {
			return
		}
		s.brownout.Store(true)
		s.lastBrownoutAt = now
		s.m.brownoutEnter.Inc()
		if cb := s.cfg.OnBrownout; cb != nil {
			go cb(true)
		}
	case s.brownout.Load() && ewma <= s.cfg.BrownoutExit:
		if now.Sub(s.lastBrownoutAt) < brownoutDwell {
			return
		}
		s.brownout.Store(false)
		s.lastBrownoutAt = now
		s.m.brownoutExit.Inc()
		if cb := s.cfg.OnBrownout; cb != nil {
			go cb(false)
		}
	}
}

// tickLoop keeps the EWMA honest between admissions. Admission-time
// samples alone have two blind spots: a wedged queue admits nothing
// (so the EWMA never sees the growing delay), and an idle scheduler
// observes nothing (so a stale high EWMA would pin brownout on
// forever). Each tick samples the age of the oldest queued waiter —
// zero when nothing waits — covering both.
func (s *Scheduler) tickLoop() {
	for {
		select {
		case <-s.tickDone:
			return
		case <-s.ticker.C:
		}
		now := s.now()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		var oldest time.Duration
		for _, cs := range s.clients {
			for _, w := range cs.queue {
				if w.state != stateQueued {
					continue
				}
				if age := now.Sub(w.enq); age > oldest {
					oldest = age
				}
				break // queue is FIFO; the first live waiter is oldest
			}
		}
		s.observeDelayLocked(oldest)
		s.mu.Unlock()
	}
}
