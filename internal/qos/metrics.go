package qos

// gvfs_qos_* metrics. All instruments are nil-safe through tiny
// wrappers so the scheduler runs identically with no registry (unit
// tests, benches that don't scrape).

import (
	"time"

	"gvfs/internal/obs"
)

type nilSafeCounter struct{ c *obs.Counter }

func (n nilSafeCounter) Inc() {
	if n.c != nil {
		n.c.Inc()
	}
}

type nilSafeHist struct{ h *obs.Histogram }

func (n nilSafeHist) Observe(d time.Duration) {
	if n.h != nil {
		n.h.Observe(d)
	}
}

type qosMetrics struct {
	admitted          nilSafeCounter
	rejectedQueueFull nilSafeCounter
	expired           nilSafeCounter
	brownoutEnter     nilSafeCounter
	brownoutExit      nilSafeCounter
	queueDelay        nilSafeHist
}

func (m *qosMetrics) register(r *obs.Registry, s *Scheduler) {
	if r == nil {
		return
	}
	m.admitted = nilSafeCounter{r.Counter("gvfs_qos_admitted_total",
		"Calls admitted by the QoS scheduler.")}
	m.rejectedQueueFull = nilSafeCounter{r.Counter("gvfs_qos_rejected_queue_full_total",
		"Calls rejected because the client's admission queue was full.")}
	m.expired = nilSafeCounter{r.Counter("gvfs_qos_deadline_expired_total",
		"Calls shed because their propagated deadline expired before or while queued.")}
	m.brownoutEnter = nilSafeCounter{r.Counter("gvfs_qos_brownout_entered_total",
		"Transitions into brownout (degraded) mode.")}
	m.brownoutExit = nilSafeCounter{r.Counter("gvfs_qos_brownout_exited_total",
		"Transitions out of brownout mode.")}
	m.queueDelay = nilSafeHist{r.Histogram("gvfs_qos_queue_delay_seconds",
		"Admission queue delay per admitted call.", obs.LatencyBuckets)}
	r.GaugeFunc("gvfs_qos_inflight",
		"Calls currently executing under the QoS concurrency cap.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.inflight)
		})
	r.GaugeFunc("gvfs_qos_queued",
		"Calls currently waiting in per-client admission queues.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	r.GaugeFunc("gvfs_qos_tenants",
		"Client identities with live scheduler state.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.clients))
		})
	r.GaugeFunc("gvfs_qos_brownout_active",
		"1 while brownout (degraded) mode is active.", func() float64 {
			if s.brownout.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("gvfs_qos_queue_delay_ewma_seconds",
		"Smoothed admission queue delay driving the brownout controller.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.ewmaDelay / float64(time.Second)
		})
}
