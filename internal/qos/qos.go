// Package qos keeps one shared proxy fair and alive under overload.
//
// The paper's deployment model puts a single user-level proxy in front
// of many unprivileged VM clients; nothing in NFS itself stops one
// aggressive client from queueing unbounded work and starving the
// rest. This package provides the admission pipeline the proxy runs
// every call through:
//
//	per-client bounded queue → token bucket → deficit round-robin →
//	global concurrency cap
//
// A client that offers more load than its fair share waits in its own
// queue (and eventually bounces off its queue bound) instead of
// inflating everyone's latency. Costs are expressed in bytes so a
// 64 KiB READ weighs more than a GETATTR, making the deficit
// round-robin quanta meaningful across mixed workloads.
//
// The scheduler also runs the brownout controller (see brownout.go):
// an EWMA of admission queue delay that flips the proxy into a
// degraded mode — shedding optional work and deferring cache misses —
// when sustained delay crosses a threshold, and recovers
// automatically.
package qos

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/obs"
)

// ErrQueueFull reports that a client's admission queue is at its
// bound; the caller should shed the request with a retriable error.
var ErrQueueFull = errors.New("qos: per-client queue full")

// ErrClosed reports admission after Close.
var ErrClosed = errors.New("qos: scheduler closed")

// Config tunes the scheduler. Zero values take the defaults noted on
// each field.
type Config struct {
	// MaxConcurrent caps calls executing concurrently across all
	// clients (default 64).
	MaxConcurrent int

	// PerClientQueue bounds each client's admission queue (default
	// 128). Requests beyond the bound fail with ErrQueueFull.
	PerClientQueue int

	// Quantum is the deficit-round-robin quantum in cost units
	// (bytes) added per scheduling visit (default 64 KiB).
	Quantum int

	// RatePerSec is the per-client token-bucket refill rate in cost
	// units per second. Zero disables rate limiting (fair-share and
	// the concurrency cap still apply).
	RatePerSec float64

	// Burst is the token-bucket capacity (default 4*RatePerSec... or
	// RatePerSec when unset). Costs larger than Burst are charged at
	// Burst so oversized single requests cannot deadlock.
	Burst float64

	// BrownoutEnter is the sustained (EWMA) queue delay that trips
	// brownout mode; zero disables the controller.
	BrownoutEnter time.Duration

	// BrownoutExit is the EWMA delay below which brownout clears
	// (default BrownoutEnter/4).
	BrownoutExit time.Duration

	// IdleTTL evicts a client's scheduler state after this long with
	// no queued or in-flight work (default 5m), bounding state under
	// client-ID churn.
	IdleTTL time.Duration

	// Metrics, when set, registers the gvfs_qos_* family.
	Metrics *obs.Registry

	// OnBrownout, when set, is called (without internal locks held)
	// after each brownout transition.
	OnBrownout func(active bool)
}

const (
	defaultMaxConcurrent  = 64
	defaultPerClientQueue = 128
	defaultQuantum        = 64 << 10
	defaultIdleTTL        = 5 * time.Minute
	ewmaAlpha             = 0.2
	tickInterval          = 100 * time.Millisecond
)

type waiterState int

const (
	stateQueued waiterState = iota
	stateAdmitted
	stateCanceled
)

type waiter struct {
	cost     int
	deadline time.Time
	enq      time.Time
	state    waiterState
	ch       chan struct{} // signaled (once) on admission
}

// client is one tenant's scheduler state.
type client struct {
	name       string
	queue      []*waiter
	live       int // queued waiters not yet admitted/canceled
	deficit    int
	tokens     float64
	lastRefill time.Time
	inflight   int
	inRing     bool
	lastActive time.Time

	admitted uint64
	rejected uint64
	expired  uint64
}

// TenantStats is one client's row in the /statusz tenant table.
type TenantStats struct {
	Client   string  `json:"client"`
	Inflight int     `json:"inflight"`
	Queued   int     `json:"queued"`
	Tokens   float64 `json:"tokens"`
	Admitted uint64  `json:"admitted"`
	Rejected uint64  `json:"rejected"`
	Expired  uint64  `json:"expired"`
}

// Scheduler is the admission controller. All methods are safe for
// concurrent use.
type Scheduler struct {
	cfg Config
	now func() time.Time // replaced in white-box tests

	mu       sync.Mutex
	clients  map[string]*client
	ring     []string // DRR visit order: clients with queued work
	ringIdx  int
	resume   bool // ring[ringIdx]'s visit was interrupted by the concurrency cap
	inflight int
	queued   int
	closed   bool

	timerArmed bool
	timerAt    time.Time
	timer      *time.Timer

	ewmaDelay      float64 // nanoseconds
	brownout       atomic.Bool
	lastBrownoutAt time.Time // last transition, for the dwell bound
	ticker         *time.Ticker
	tickDone       chan struct{}

	// metrics (nil-safe via m wrapper)
	m qosMetrics
}

// New builds a Scheduler and starts its brownout sampling loop (if a
// threshold is configured). Close releases the loop.
func New(cfg Config) *Scheduler {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = defaultMaxConcurrent
	}
	if cfg.PerClientQueue <= 0 {
		cfg.PerClientQueue = defaultPerClientQueue
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = defaultQuantum
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.RatePerSec
	}
	if cfg.BrownoutExit <= 0 {
		cfg.BrownoutExit = cfg.BrownoutEnter / 4
	}
	if cfg.IdleTTL <= 0 {
		cfg.IdleTTL = defaultIdleTTL
	}
	s := &Scheduler{
		cfg:     cfg,
		now:     time.Now,
		clients: make(map[string]*client),
	}
	s.m.register(cfg.Metrics, s)
	if cfg.BrownoutEnter > 0 {
		s.ticker = time.NewTicker(tickInterval)
		s.tickDone = make(chan struct{})
		go s.tickLoop()
	}
	return s
}

// Close stops background work and fails queued waiters with ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timerArmed = false
	}
	for _, cs := range s.clients {
		for _, w := range cs.queue {
			if w.state == stateQueued {
				w.state = stateCanceled
				close(w.ch)
			}
		}
		cs.queue = nil
		cs.live = 0
	}
	s.queued = 0
	s.ring = nil
	ticker, done := s.ticker, s.tickDone
	s.mu.Unlock()
	if ticker != nil {
		ticker.Stop()
		close(done)
	}
}

// Admit blocks until the call may proceed, then returns a release
// function the caller must invoke when the call completes. cost is
// the request's approximate byte weight (use 1 for metadata calls).
// A zero deadline waits indefinitely; otherwise expiry returns
// context.DeadlineExceeded. Over-bound queues return ErrQueueFull
// immediately.
func (s *Scheduler) Admit(clientID string, cost int, deadline time.Time) (release func(), err error) {
	if cost < 1 {
		cost = 1
	}
	now := s.now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	cs := s.clientLocked(clientID, now)
	if !deadline.IsZero() && !now.Before(deadline) {
		cs.expired++
		s.m.expired.Inc()
		s.mu.Unlock()
		return nil, context.DeadlineExceeded
	}
	if cs.live >= s.cfg.PerClientQueue {
		cs.rejected++
		s.m.rejectedQueueFull.Inc()
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{cost: cost, deadline: deadline, enq: now, ch: make(chan struct{}, 1)}
	cs.queue = append(cs.queue, w)
	cs.live++
	s.queued++
	if !cs.inRing {
		cs.inRing = true
		s.ring = append(s.ring, clientID)
	}
	s.dispatchLocked(now)
	admitted := w.state == stateAdmitted
	s.mu.Unlock()

	if !admitted {
		var expire <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			defer t.Stop()
			expire = t.C
		}
		select {
		case <-w.ch:
		case <-expire:
		}
		s.mu.Lock()
		switch w.state {
		case stateAdmitted:
			// Admission raced the expiry timer; proceed with the call.
		case stateQueued:
			// Deadline expired while queued: withdraw.
			w.state = stateCanceled
			cs.live--
			s.queued--
			cs.expired++
			s.m.expired.Inc()
			s.mu.Unlock()
			return nil, context.DeadlineExceeded
		default: // canceled by Close
			s.mu.Unlock()
			return nil, ErrClosed
		}
		s.mu.Unlock()
	}

	s.m.admitted.Inc()
	s.m.queueDelay.Observe(s.now().Sub(w.enq))
	var once sync.Once
	return func() {
		once.Do(func() { s.release(clientID) })
	}, nil
}

// release returns one concurrency slot and re-runs dispatch.
func (s *Scheduler) release(clientID string) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if cs, ok := s.clients[clientID]; ok {
		cs.inflight--
		cs.lastActive = now
	}
	if !s.closed {
		s.dispatchLocked(now)
	}
}

// clientLocked finds or creates tenant state, opportunistically
// evicting clients idle past the TTL so churning identities cannot
// grow the map without bound.
func (s *Scheduler) clientLocked(name string, now time.Time) *client {
	if cs, ok := s.clients[name]; ok {
		cs.lastActive = now
		return cs
	}
	for id, cs := range s.clients {
		if cs.live == 0 && cs.inflight == 0 && !cs.inRing &&
			now.Sub(cs.lastActive) > s.cfg.IdleTTL {
			delete(s.clients, id)
		}
	}
	cs := &client{
		name:       name,
		tokens:     s.cfg.Burst,
		lastRefill: now,
		lastActive: now,
	}
	s.clients[name] = cs
	return cs
}

// pruneLocked drops canceled waiters from the head of the queue.
func (cs *client) pruneLocked() {
	for len(cs.queue) > 0 && cs.queue[0].state != stateQueued {
		cs.queue = cs.queue[1:]
	}
}

// servableHeadLocked reports whether the client's head-of-line waiter
// could be admitted right now if a concurrency slot were free.
func (cs *client) servableHeadLocked(cfg *Config) bool {
	cs.pruneLocked()
	if len(cs.queue) == 0 {
		return false
	}
	w := cs.queue[0]
	if cs.deficit < w.cost {
		return false
	}
	if cfg.RatePerSec > 0 {
		ecost := float64(w.cost)
		if ecost > cfg.Burst {
			ecost = cfg.Burst
		}
		if cs.tokens < ecost {
			return false
		}
	}
	return true
}

// refillLocked advances the token bucket to now.
func (cs *client) refillLocked(now time.Time, cfg *Config) {
	if cfg.RatePerSec <= 0 {
		return
	}
	el := now.Sub(cs.lastRefill).Seconds()
	if el > 0 {
		cs.tokens += el * cfg.RatePerSec
		if cs.tokens > cfg.Burst {
			cs.tokens = cfg.Burst
		}
	}
	cs.lastRefill = now
}

// dispatchLocked runs deficit round-robin over the ring, admitting
// waiters while concurrency slots, deficits and tokens allow.
//
// Progress logic: a pass that admits nothing but found a client
// blocked only on deficit loops again (deficits grow by one quantum
// per visit, so a large request is served within cost/quantum
// passes). A pass blocked purely on tokens arms a timer for the
// earliest refill instant instead of spinning.
func (s *Scheduler) dispatchLocked(now time.Time) {
	for s.inflight < s.cfg.MaxConcurrent && len(s.ring) > 0 {
		admittedAny := false
		deficitBlocked := false
		nextToken := time.Duration(-1)
		visits := 0
		limit := len(s.ring)
		for visits < limit && len(s.ring) > 0 && s.inflight < s.cfg.MaxConcurrent {
			if s.ringIdx >= len(s.ring) {
				s.ringIdx = 0
			}
			cs := s.clients[s.ring[s.ringIdx]]
			// A visit the concurrency cap interrupted resumes with its
			// remaining deficit instead of banking another quantum —
			// otherwise a cap of 1 degrades byte-weighted DRR into
			// per-request round-robin.
			resumed := s.resume
			s.resume = false
			cs.pruneLocked()
			if cs.live == 0 {
				// No queued work: leave the ring (state is kept until
				// the idle TTL reaps it).
				s.ring = append(s.ring[:s.ringIdx], s.ring[s.ringIdx+1:]...)
				cs.inRing = false
				cs.deficit = 0
				limit--
				continue
			}
			cs.refillLocked(now, &s.cfg)
			if !resumed {
				cs.deficit += s.cfg.Quantum
				// Cap the deficit at what the head actually needs so a
				// token-starved client cannot bank unbounded credit.
				if head := cs.queue[0]; cs.deficit > head.cost && cs.deficit > s.cfg.Quantum {
					cs.deficit = maxInt(head.cost, s.cfg.Quantum)
				}
			}
			for s.inflight < s.cfg.MaxConcurrent {
				cs.pruneLocked()
				if cs.live == 0 || len(cs.queue) == 0 {
					break
				}
				w := cs.queue[0]
				if cs.deficit < w.cost {
					deficitBlocked = true
					break
				}
				ecost := float64(w.cost)
				if s.cfg.RatePerSec > 0 {
					if ecost > s.cfg.Burst {
						ecost = s.cfg.Burst
					}
					if cs.tokens < ecost {
						wait := time.Duration((ecost - cs.tokens) / s.cfg.RatePerSec * float64(time.Second))
						if nextToken < 0 || wait < nextToken {
							nextToken = wait
						}
						break
					}
					cs.tokens -= ecost
				}
				cs.queue = cs.queue[1:]
				cs.live--
				s.queued--
				cs.deficit -= w.cost
				if cs.deficit < 0 {
					cs.deficit = 0
				}
				w.state = stateAdmitted
				w.ch <- struct{}{}
				s.inflight++
				cs.inflight++
				cs.admitted++
				s.observeDelayLocked(now.Sub(w.enq))
				admittedAny = true
			}
			if s.inflight >= s.cfg.MaxConcurrent && cs.servableHeadLocked(&s.cfg) {
				// Interrupted mid-visit by the cap with entitlement left:
				// resume here on the next dispatch.
				s.resume = true
				return
			}
			s.ringIdx++
			visits++
		}
		if !admittedAny {
			if deficitBlocked {
				continue
			}
			if nextToken >= 0 {
				s.armTimerLocked(now, nextToken)
			}
			return
		}
	}
}

// armTimerLocked schedules a dispatch at the earliest instant a
// token-starved client can afford its head-of-line request.
func (s *Scheduler) armTimerLocked(now time.Time, wait time.Duration) {
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	at := now.Add(wait)
	if s.timerArmed && !s.timerAt.After(at) {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timerArmed = true
	s.timerAt = at
	s.timer = time.AfterFunc(wait, func() {
		s.mu.Lock()
		s.timerArmed = false
		if !s.closed {
			s.dispatchLocked(s.now())
		}
		s.mu.Unlock()
	})
}

// Snapshot returns per-tenant scheduler state sorted by client name,
// for the /statusz tenant table.
func (s *Scheduler) Snapshot() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.clients))
	for _, cs := range s.clients {
		out = append(out, TenantStats{
			Client:   cs.name,
			Inflight: cs.inflight,
			Queued:   cs.live,
			Tokens:   cs.tokens,
			Admitted: cs.admitted,
			Rejected: cs.rejected,
			Expired:  cs.expired,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
