package stack

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/tunnel"
)

// ProxyFlags collects every command-line knob of a proxy daemon in one
// struct, replacing the loose flag variables gvfsproxy used to declare
// inline. BindProxyFlags registers them on a FlagSet and Options()
// turns the parsed values into the same ProxyOptions the benchmarks
// and the chaos/failure tests build directly — one construction path
// for daemons, benches and tests.
type ProxyFlags struct {
	// Daemon-level settings (not part of ProxyOptions).
	Listen      string        // listen address for local NFS clients
	StatsEvery  time.Duration // periodic stats logging (0 = off)
	MetricsAddr string        // /metrics + /debug HTTP endpoint (empty = off)
	TraceRing   int           // request-trace ring capacity (0 = off)

	// Chain topology.
	Upstream string // next hop address
	Keyfile  string // 32-byte tunnel session key file

	// Block cache.
	CacheDir   string
	CacheBanks int
	CacheSets  int
	CacheAssoc int
	CacheBlock int
	Stripes    int
	Policy     string // write-back | write-through

	// File cache + channel.
	FileCacheDir string
	FileChan     string

	// Behaviour knobs.
	ReadAhead        int
	PersistIndex     bool
	IdleWriteBack    time.Duration
	CallTimeout      time.Duration
	MaxRetries       int
	DegradedReads    bool
	FailureThreshold int
	ProbeInterval    time.Duration
}

// BindProxyFlags registers the proxy daemon's flags on fs and returns
// the struct they parse into.
func BindProxyFlags(fs *flag.FlagSet) *ProxyFlags {
	f := &ProxyFlags{}
	fs.StringVar(&f.Listen, "listen", "127.0.0.1:8049", "listen address for local NFS clients")
	fs.StringVar(&f.Upstream, "upstream", "", "next hop (gvfsd or another gvfsproxy)")
	fs.StringVar(&f.Keyfile, "keyfile", "", "32-byte session key for the upstream tunnel")
	fs.StringVar(&f.CacheDir, "cache-dir", "", "block cache directory (empty = no disk cache)")
	fs.IntVar(&f.CacheBanks, "cache-banks", 512, "number of cache banks")
	fs.IntVar(&f.CacheSets, "cache-sets", 128, "sets per bank")
	fs.IntVar(&f.CacheAssoc, "cache-assoc", 16, "cache associativity")
	fs.IntVar(&f.CacheBlock, "cache-block", 8192, "cache block size (<= 32768)")
	fs.IntVar(&f.Stripes, "cache-stripes", 0, "cache lock stripes (0 = default 64; 1 = single global lock)")
	fs.StringVar(&f.Policy, "policy", "write-back", "write policy: write-back | write-through")
	fs.StringVar(&f.FileCacheDir, "filecache-dir", "", "file cache directory (enables meta-data handling)")
	fs.StringVar(&f.FileChan, "filechan", "", "image server file-channel address")
	fs.IntVar(&f.ReadAhead, "readahead", 0, "sequential read-ahead window in blocks (0 = off)")
	fs.BoolVar(&f.PersistIndex, "persist-index", true, "reload/save the disk cache index across restarts")
	fs.DurationVar(&f.IdleWriteBack, "idle-writeback", 0, "write dirty data back after this idle period (0 = only on signals)")
	fs.DurationVar(&f.StatsEvery, "stats", 0, "print proxy statistics at this interval (0 = off)")
	fs.DurationVar(&f.CallTimeout, "call-timeout", 0, "per-call deadline on upstream RPCs (0 = wait forever)")
	fs.IntVar(&f.MaxRetries, "max-retries", 0, "retransmission attempts for idempotent upstream calls (0 = no retries)")
	fs.BoolVar(&f.DegradedReads, "degraded-reads", false, "serve cached data while the upstream is unreachable")
	fs.IntVar(&f.FailureThreshold, "failure-threshold", 0, "consecutive upstream failures that open the circuit breaker (0 = default)")
	fs.DurationVar(&f.ProbeInterval, "probe-interval", 0, "recovery probe period while the breaker is open (0 = default)")
	fs.StringVar(&f.MetricsAddr, "metrics", "", "serve /metrics, /traces and /debug on this address (empty = off)")
	fs.IntVar(&f.TraceRing, "trace-ring", 0, "keep the last N request traces for /traces (0 = tracing off)")
	return f
}

// ParsePolicy maps a policy flag value to the cache write policy.
func ParsePolicy(name string) (cache.Policy, error) {
	switch name {
	case "write-back":
		return cache.WriteBack, nil
	case "write-through":
		return cache.WriteThrough, nil
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

// ReadKeyfile loads and validates a tunnel session key. An empty path
// returns a nil key (no tunnel).
func ReadKeyfile(path string) ([]byte, error) {
	if path == "" {
		return nil, nil
	}
	key, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(key) != tunnel.KeySize {
		return nil, fmt.Errorf("key must be %d bytes, got %d", tunnel.KeySize, len(key))
	}
	return key, nil
}

// Options converts the parsed flags into ProxyOptions, reading the
// keyfile and validating the write policy. The daemon-level fields
// (Listen, StatsEvery, MetricsAddr) stay on the flags struct.
func (f *ProxyFlags) Options() (ProxyOptions, error) {
	if f.Upstream == "" {
		return ProxyOptions{}, fmt.Errorf("-upstream is required")
	}
	key, err := ReadKeyfile(f.Keyfile)
	if err != nil {
		return ProxyOptions{}, err
	}
	policy, err := ParsePolicy(f.Policy)
	if err != nil {
		return ProxyOptions{}, err
	}
	opts := ProxyOptions{
		UpstreamAddr:        f.Upstream,
		UpstreamKey:         key,
		ReadAhead:           f.ReadAhead,
		PersistIndex:        f.PersistIndex,
		IdleWriteBack:       f.IdleWriteBack,
		UpstreamCallTimeout: f.CallTimeout,
		UpstreamMaxRetries:  f.MaxRetries,
		DegradedReads:       f.DegradedReads,
		FailureThreshold:    f.FailureThreshold,
		ProbeInterval:       f.ProbeInterval,
		TraceRing:           f.TraceRing,
	}
	if f.CacheDir != "" {
		opts.CacheConfig = &cache.Config{
			Dir: f.CacheDir, Banks: f.CacheBanks, SetsPerBank: f.CacheSets,
			Assoc: f.CacheAssoc, BlockSize: f.CacheBlock, Policy: policy,
			Stripes: f.Stripes,
		}
	}
	if f.FileCacheDir != "" {
		opts.FileCacheDir = f.FileCacheDir
		opts.FileChanAddr = f.FileChan
		opts.FileChanKey = key
	}
	return opts, nil
}
