package stack

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gvfs/internal/backend/replbe"
	"gvfs/internal/cache"
	"gvfs/internal/obs"
	"gvfs/internal/qos"
	"gvfs/internal/tunnel"
)

// LogFlags collects the structured-logging knobs shared by every GVFS
// daemon (gvfsproxy and gvfsd bind the same three flags). Logger()
// turns the parsed values into the process logger.
type LogFlags struct {
	Level string // minimum severity recorded
	File  string // optional log file appended alongside stderr
	Ring  int    // /logz ring capacity (0 = no ring)
}

// BindLogFlags registers the logging flags on fs.
func BindLogFlags(fs *flag.FlagSet) *LogFlags {
	f := &LogFlags{}
	fs.StringVar(&f.Level, "log-level", "info", "minimum log severity: debug | info | warn | error")
	fs.StringVar(&f.File, "log-file", "", "append structured log lines to this file as well as stderr")
	fs.IntVar(&f.Ring, "log-ring", obs.DefaultLogRing, "retain the last N structured events for /logz (0 = no ring)")
	return f
}

// Logger builds the daemon's structured logger from the parsed flags:
// text lines to stderr (plus -log-file when given), a bounded event
// ring for /logz, and per-level counters in metrics. The returned
// close function releases the log file; call it at shutdown.
func (f *LogFlags) Logger(component string, metrics *obs.Registry) (*obs.Logger, func(), error) {
	level, err := obs.ParseLevel(f.Level)
	if err != nil {
		return nil, nil, err
	}
	var out io.Writer = os.Stderr
	closeFn := func() {}
	if f.File != "" {
		fl, err := os.OpenFile(f.File, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0644)
		if err != nil {
			return nil, nil, fmt.Errorf("open log file: %w", err)
		}
		out = io.MultiWriter(os.Stderr, fl)
		closeFn = func() { fl.Close() }
	}
	var ring *obs.LogRing
	if f.Ring > 0 {
		ring = obs.NewLogRing(f.Ring)
	}
	log := obs.NewLogger(obs.LoggerConfig{
		Level:   level,
		Output:  out,
		Ring:    ring,
		Metrics: metrics,
	})
	return log.Named(component), closeFn, nil
}

// ProxyFlags collects every command-line knob of a proxy daemon in one
// struct, replacing the loose flag variables gvfsproxy used to declare
// inline. BindProxyFlags registers them on a FlagSet and Options()
// turns the parsed values into the same ProxyOptions the benchmarks
// and the chaos/failure tests build directly — one construction path
// for daemons, benches and tests.
type ProxyFlags struct {
	// Daemon-level settings (not part of ProxyOptions).
	Listen      string        // listen address for local NFS clients
	StatsEvery  time.Duration // periodic stats logging (0 = off)
	MetricsAddr string        // observability HTTP endpoint (empty = off)
	TraceRing   int           // request-trace ring capacity (0 = off)

	// Flight recorder (see obs.FlightRecorder).
	FlightRing    int           // retained slow/error recordings (0 = off)
	SlowThreshold time.Duration // latency that promotes a call (0 = default)

	// Statusz accounting bounds.
	StatuszTopN int // rows per /statusz ranking (0 = default)
	AuditRing   int // write-back audit events retained (0 = default)

	// Log holds the shared logging flags (also bindable standalone via
	// BindLogFlags for daemons that are not proxies, like gvfsd).
	Log *LogFlags

	// Chain topology.
	Upstream string // next hop address
	Keyfile  string // 32-byte tunnel session key file

	// Backend selection (see ProxyOptionsV2).
	Backend     string // nfs3 | objstore | repl
	ObjstoreDir string // object store directory (backend objstore)
	Dedup       bool   // content-addressed cross-file dedup in the block cache

	// Replicated backend (see ProxyOptionsV2.Replicas / replbe.Config).
	Replicas       string        // comma-separated replica specs (backend repl)
	ReplQuorum     bool          // majority-ack writes instead of primary-ack
	ReplHedgeQuant float64       // hedged-read latency quantile (0 = default, <0 off)
	ReplScrub      time.Duration // scrub pass interval (0 = default, <0 off)
	ReplFailThresh int           // consecutive errors marking a replica down (0 = default)
	ReplProbeEvery time.Duration // down-replica probe period (0 = default)

	// Block cache.
	CacheDir   string
	CacheBanks int
	CacheSets  int
	CacheAssoc int
	CacheBlock int
	Stripes    int
	Policy     string // write-back | write-through

	// Crash consistency.
	Journal     bool   // journal dirty blocks before acking (write-back only)
	JournalSync string // batch | always | none
	Crashpoint  string // fault injection: die at this named point (testing)

	// File cache + channel.
	FileCacheDir string
	FileChan     string

	// Behaviour knobs.
	ReadAhead        int
	ReadAheadPipe    bool
	WriteCoalesce    int
	PersistIndex     bool
	IdleWriteBack    time.Duration
	CallTimeout      time.Duration
	MaxRetries       int
	DegradedReads    bool
	FailureThreshold int
	ProbeInterval    time.Duration

	// Overload protection (see qos.Config and DESIGN.md §8).
	QoS           bool          // enable per-client admission control
	QoSInflight   int           // global concurrency cap (0 = default)
	QoSQueue      int           // per-client queue bound (0 = default)
	QoSQuantum    int           // fair-share quantum in bytes (0 = default)
	QoSRate       float64       // per-client token rate, bytes/s (0 = off)
	QoSBurst      float64       // token-bucket capacity (0 = rate)
	BrownoutEnter time.Duration // EWMA queue delay tripping brownout (0 = off)
	BrownoutExit  time.Duration // EWMA delay clearing brownout (0 = enter/4)
	CallBudget    time.Duration // default end-to-end call deadline (0 = off)

	// Accounting table bounds.
	AcctEntries int           // max per-file/per-client rows (0 = default)
	AcctTTL     time.Duration // idle row eviction TTL (0 = default)

	// Cache analytics (see internal/cachean and DESIGN.md §11).
	Cachean       bool          // enable miss-ratio curves + working-set estimation
	CacheanRate   float64       // spatial sample rate (0 = default 0.01)
	CacheanWindow time.Duration // working-set sliding window (0 = default 60s)
}

// BindProxyFlags registers the proxy daemon's flags on fs and returns
// the struct they parse into.
func BindProxyFlags(fs *flag.FlagSet) *ProxyFlags {
	f := &ProxyFlags{}
	fs.StringVar(&f.Listen, "listen", "127.0.0.1:8049", "listen address for local NFS clients")
	fs.StringVar(&f.Upstream, "upstream", "", "next hop (gvfsd or another gvfsproxy); required with -backend nfs3")
	fs.StringVar(&f.Keyfile, "keyfile", "", "32-byte session key for the upstream tunnel")
	fs.StringVar(&f.Backend, "backend", BackendNFS3, "upstream backend: nfs3 (RPC to -upstream) | objstore (local content-addressed store) | repl (replicated set, see -replicas)")
	fs.StringVar(&f.ObjstoreDir, "objstore-dir", "", "object store directory (required with -backend objstore)")
	fs.StringVar(&f.Replicas, "replicas", "", "comma-separated replica specs for -backend repl: objstore:<dir> | nfs3:<host:port> (first is the write primary)")
	fs.BoolVar(&f.ReplQuorum, "repl-quorum", false, "acknowledge writes after a majority of replicas instead of the primary only")
	fs.Float64Var(&f.ReplHedgeQuant, "repl-hedge-quantile", 0, "latency quantile arming hedged reads (0 = default 0.95, negative = hedging off)")
	fs.DurationVar(&f.ReplScrub, "repl-scrub", 0, "background scrub/read-repair pass interval (0 = default 30s, negative = off)")
	fs.IntVar(&f.ReplFailThresh, "repl-fail-threshold", 0, "consecutive failover-class errors that mark a replica down (0 = default 3)")
	fs.DurationVar(&f.ReplProbeEvery, "repl-probe-interval", 0, "recovery probe period for down replicas (0 = default 1s)")
	fs.BoolVar(&f.Dedup, "dedup", false, "share identical cached blocks across files (content-addressed dedup; needs -cache-dir)")
	fs.StringVar(&f.CacheDir, "cache-dir", "", "block cache directory (empty = no disk cache)")
	fs.IntVar(&f.CacheBanks, "cache-banks", 512, "number of cache banks")
	fs.IntVar(&f.CacheSets, "cache-sets", 128, "sets per bank")
	fs.IntVar(&f.CacheAssoc, "cache-assoc", 16, "cache associativity")
	fs.IntVar(&f.CacheBlock, "cache-block", 8192, "cache block size (<= 32768)")
	fs.IntVar(&f.Stripes, "cache-stripes", 0, "cache lock stripes (0 = default 64; 1 = single global lock)")
	fs.StringVar(&f.Policy, "policy", "write-back", "write policy: write-back | write-through")
	fs.BoolVar(&f.Journal, "journal", true, "journal dirty blocks before acking writes (write-back only)")
	fs.StringVar(&f.JournalSync, "journal-sync", "batch", "journal durability: batch (group fsync) | always (fsync per write) | none (testing)")
	fs.StringVar(&f.Crashpoint, "crashpoint", os.Getenv("GVFS_CRASHPOINT"), "fault injection: SIGKILL the process at this named point (testing only)")
	fs.StringVar(&f.FileCacheDir, "filecache-dir", "", "file cache directory (enables meta-data handling)")
	fs.StringVar(&f.FileChan, "filechan", "", "image server file-channel address")
	fs.IntVar(&f.ReadAhead, "readahead", 0, "sequential read-ahead window in blocks (0 = off)")
	fs.BoolVar(&f.ReadAheadPipe, "readahead-pipeline", false, "pipeline each prefetch window's READs on the upstream connection")
	fs.IntVar(&f.WriteCoalesce, "write-coalesce", 0, "merge runs of adjacent dirty blocks into WRITEs up to this many bytes at flush (0 = off, max 32768)")
	fs.BoolVar(&f.PersistIndex, "persist-index", true, "reload/save the disk cache index across restarts")
	fs.DurationVar(&f.IdleWriteBack, "idle-writeback", 0, "write dirty data back after this idle period (0 = only on signals)")
	fs.DurationVar(&f.StatsEvery, "stats", 0, "print proxy statistics at this interval (0 = off)")
	fs.DurationVar(&f.CallTimeout, "call-timeout", 0, "per-call deadline on upstream RPCs (0 = wait forever)")
	fs.IntVar(&f.MaxRetries, "max-retries", 0, "retransmission attempts for idempotent upstream calls (0 = no retries)")
	fs.BoolVar(&f.DegradedReads, "degraded-reads", false, "serve cached data while the upstream is unreachable")
	fs.IntVar(&f.FailureThreshold, "failure-threshold", 0, "consecutive upstream failures that open the circuit breaker (0 = default)")
	fs.DurationVar(&f.ProbeInterval, "probe-interval", 0, "recovery probe period while the breaker is open (0 = default)")
	fs.StringVar(&f.MetricsAddr, "metrics", "", "serve /metrics, /traces, /logz, /flightrec, /statusz and /debug on this address (empty = off)")
	fs.IntVar(&f.TraceRing, "trace-ring", 0, "keep the last N request traces for /traces (0 = tracing off)")
	fs.IntVar(&f.FlightRing, "flightrec", 0, "retain the last N slow/error call recordings for /flightrec (0 = off)")
	fs.DurationVar(&f.SlowThreshold, "slow-threshold", 0, "latency that promotes a call to the flight recorder (0 = default 100ms)")
	fs.IntVar(&f.StatuszTopN, "statusz-topn", 0, "rows per /statusz ranking (0 = default)")
	fs.IntVar(&f.AuditRing, "audit-ring", 0, "write-back audit events retained for /statusz (0 = default)")
	fs.BoolVar(&f.QoS, "qos", false, "enable per-client admission control and fair-share scheduling")
	fs.IntVar(&f.QoSInflight, "qos-inflight", 0, "global concurrent-call cap under -qos (0 = default 64)")
	fs.IntVar(&f.QoSQueue, "qos-queue", 0, "per-client admission queue bound under -qos (0 = default 128)")
	fs.IntVar(&f.QoSQuantum, "qos-quantum", 0, "fair-share round-robin quantum in bytes (0 = default 64KiB)")
	fs.Float64Var(&f.QoSRate, "qos-rate", 0, "per-client token-bucket rate in bytes/s (0 = no rate limit)")
	fs.Float64Var(&f.QoSBurst, "qos-burst", 0, "per-client token-bucket capacity in bytes (0 = rate)")
	fs.DurationVar(&f.BrownoutEnter, "brownout-enter", 0, "sustained queue delay that trips brownout degradation (0 = off)")
	fs.DurationVar(&f.BrownoutExit, "brownout-exit", 0, "queue delay below which brownout clears (0 = enter/4)")
	fs.DurationVar(&f.CallBudget, "call-budget", 0, "default end-to-end deadline for calls without a propagated budget (0 = off)")
	fs.IntVar(&f.AcctEntries, "acct-entries", 0, "max per-file/per-client accounting rows (0 = default 4096)")
	fs.DurationVar(&f.AcctTTL, "acct-ttl", 0, "evict accounting rows idle this long (0 = default 15m)")
	fs.BoolVar(&f.Cachean, "cachean", false, "enable cache analytics: miss-ratio curves, working sets, what-if sizing (/cachez)")
	fs.Float64Var(&f.CacheanRate, "cachean-sample-rate", 0, "cache-analytics spatial sample rate in (0,1] (0 = default 0.01)")
	fs.DurationVar(&f.CacheanWindow, "cachean-window", 0, "cache-analytics working-set window (0 = default 60s)")
	f.Log = BindLogFlags(fs)
	return f
}

// ParsePolicy maps a policy flag value to the cache write policy.
func ParsePolicy(name string) (cache.Policy, error) {
	switch name {
	case "write-back":
		return cache.WriteBack, nil
	case "write-through":
		return cache.WriteThrough, nil
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

// ReadKeyfile loads and validates a tunnel session key. An empty path
// returns a nil key (no tunnel).
func ReadKeyfile(path string) ([]byte, error) {
	if path == "" {
		return nil, nil
	}
	key, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(key) != tunnel.KeySize {
		return nil, fmt.Errorf("key must be %d bytes, got %d", tunnel.KeySize, len(key))
	}
	return key, nil
}

// Options converts the parsed flags into the classic ProxyOptions.
// Daemons that honor the -backend selector should call OptionsV2.
func (f *ProxyFlags) Options() (ProxyOptions, error) {
	v2, err := f.OptionsV2()
	if err != nil {
		return ProxyOptions{}, err
	}
	if v2.Backend != "" && v2.Backend != BackendNFS3 {
		return ProxyOptions{}, fmt.Errorf("-backend %s needs the V2 options path", v2.Backend)
	}
	return v2.ProxyOptions, nil
}

// OptionsV2 converts the parsed flags into ProxyOptionsV2, reading the
// keyfile and validating the write policy and backend selection. The
// daemon-level fields (Listen, StatsEvery, MetricsAddr) stay on the
// flags struct.
func (f *ProxyFlags) OptionsV2() (ProxyOptionsV2, error) {
	opts, err := f.baseOptions()
	if err != nil {
		return ProxyOptionsV2{}, err
	}
	v2 := ProxyOptionsV2{
		ProxyOptions: opts,
		Backend:      f.Backend,
		ObjstoreDir:  f.ObjstoreDir,
		Dedup:        f.Dedup,
	}
	switch f.Backend {
	case "", BackendNFS3:
		if f.Upstream == "" {
			return ProxyOptionsV2{}, fmt.Errorf("-upstream is required with -backend nfs3")
		}
	case BackendObjstore:
		if f.ObjstoreDir == "" {
			return ProxyOptionsV2{}, fmt.Errorf("-objstore-dir is required with -backend objstore")
		}
	case BackendRepl:
		if f.Replicas == "" {
			return ProxyOptionsV2{}, fmt.Errorf("-replicas is required with -backend repl")
		}
		v2.Replicas = strings.Split(f.Replicas, ",")
		if f.ReplQuorum || f.ReplHedgeQuant != 0 || f.ReplScrub != 0 ||
			f.ReplFailThresh != 0 || f.ReplProbeEvery != 0 {
			v2.ReplConfig = &replbe.Config{
				Quorum:        f.ReplQuorum,
				HedgeQuantile: f.ReplHedgeQuant,
				ScrubInterval: f.ReplScrub,
				FailThreshold: f.ReplFailThresh,
				ProbeInterval: f.ReplProbeEvery,
			}
		}
	default:
		return ProxyOptionsV2{}, fmt.Errorf("unknown -backend %q (want nfs3, objstore or repl)", f.Backend)
	}
	if f.Dedup && f.CacheDir == "" {
		return ProxyOptionsV2{}, fmt.Errorf("-dedup needs -cache-dir")
	}
	return v2, nil
}

func (f *ProxyFlags) baseOptions() (ProxyOptions, error) {
	key, err := ReadKeyfile(f.Keyfile)
	if err != nil {
		return ProxyOptions{}, err
	}
	policy, err := ParsePolicy(f.Policy)
	if err != nil {
		return ProxyOptions{}, err
	}
	syncMode, err := cache.ParseSyncMode(f.JournalSync)
	if err != nil {
		return ProxyOptions{}, err
	}
	opts := ProxyOptions{
		UpstreamAddr:        f.Upstream,
		UpstreamKey:         key,
		ReadAhead:           f.ReadAhead,
		ReadAheadPipeline:   f.ReadAheadPipe,
		PersistIndex:        f.PersistIndex,
		IdleWriteBack:       f.IdleWriteBack,
		UpstreamCallTimeout: f.CallTimeout,
		UpstreamMaxRetries:  f.MaxRetries,
		DegradedReads:       f.DegradedReads,
		FailureThreshold:    f.FailureThreshold,
		ProbeInterval:       f.ProbeInterval,
		TraceRing:           f.TraceRing,
		FlightRing:          f.FlightRing,
		SlowThreshold:       f.SlowThreshold,
		StatuszTopN:         f.StatuszTopN,
		AuditRing:           f.AuditRing,
		CallBudget:          f.CallBudget,
		AcctMaxEntries:      f.AcctEntries,
		AcctIdleTTL:         f.AcctTTL,
		Cachean:             f.Cachean,
		CacheanRate:         f.CacheanRate,
		CacheanWindow:       f.CacheanWindow,
	}
	if f.QoS || f.BrownoutEnter > 0 {
		opts.QoS = &qos.Config{
			MaxConcurrent:  f.QoSInflight,
			PerClientQueue: f.QoSQueue,
			Quantum:        f.QoSQuantum,
			RatePerSec:     f.QoSRate,
			Burst:          f.QoSBurst,
			BrownoutEnter:  f.BrownoutEnter,
			BrownoutExit:   f.BrownoutExit,
		}
	}
	if f.CacheDir != "" {
		opts.CacheConfig = &cache.Config{
			Dir: f.CacheDir, Banks: f.CacheBanks, SetsPerBank: f.CacheSets,
			Assoc: f.CacheAssoc, BlockSize: f.CacheBlock, Policy: policy,
			Stripes: f.Stripes, Journal: f.Journal, JournalSync: syncMode,
			WriteCoalesce: f.WriteCoalesce,
		}
	}
	if f.FileCacheDir != "" {
		opts.FileCacheDir = f.FileCacheDir
		opts.FileChanAddr = f.FileChan
		opts.FileChanKey = key
	}
	return opts, nil
}
