package stack_test

import (
	"bytes"
	"net"
	"testing"

	gvfs "gvfs"
	"gvfs/internal/filechan"
	"gvfs/internal/memfs"
	"gvfs/internal/simnet"
	"gvfs/internal/stack"
	"gvfs/internal/tunnel"

	"time"
)

func TestStartNFSServerAndMount(t *testing.T) {
	fs := memfs.New()
	fs.WriteFile("/f", []byte("data"))
	node, err := stack.StartNFSServer(fs, stack.NFSServerOptions{Exports: []string{"/", "/alt"}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for _, export := range []string{"/", "/alt"} {
		sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: export})
		if err != nil {
			t.Fatalf("mount %s: %v", export, err)
		}
		data, err := sess.ReadFile("/f")
		if err != nil || string(data) != "data" {
			t.Errorf("read via %s: %v", export, err)
		}
		sess.Close()
	}
}

func TestImageServerEncryptedEndToEnd(t *testing.T) {
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0x42}, 32*1024)
	fs.WriteFile("/blob", payload)
	link := simnet.NewLink(simnet.Local())
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Link: link, Encrypt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	if server.Key == nil {
		t.Fatal("no session key generated")
	}

	// Plain TCP to the tunneled listener must fail the handshake.
	if conn, err := net.Dial("tcp", server.ProxyAddr()); err == nil {
		conn.Write([]byte("not a tunnel handshake at all........"))
		buf := make([]byte, 8)
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := conn.Read(buf); err == nil {
			t.Error("un-tunneled client got a reply from encrypted listener")
		}
		conn.Close()
	}

	// A proper chain (client proxy with matching key) works.
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamLink: link,
		UpstreamKey:  server.Key,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.ReadFile("/blob")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("encrypted chain read: %v", err)
	}

	// File channel over the tunnel too.
	dial := stack.Dialer(server.FileChanAddr(), link, server.Key)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := filechan.Fetch(conn, "/blob", true)
	if err != nil || !bytes.Equal(data, payload) {
		t.Errorf("tunneled file channel: %v", err)
	}
}

func TestProxyWrongKeyFails(t *testing.T) {
	fs := memfs.New()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{Encrypt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	wrong, _ := tunnel.NewKey()
	node, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.ProxyAddr(),
		UpstreamKey:  wrong,
	})
	if err != nil {
		// Connection-level failure at startup is acceptable.
		return
	}
	defer node.Close()
	if _, err := gvfs.Mount(gvfs.SessionConfig{Addr: node.Addr, Export: "/"}); err == nil {
		t.Error("mount through mismatched keys succeeded")
	}
}

func TestFileChanRelayCachesUpstream(t *testing.T) {
	fs := memfs.New()
	payload := bytes.Repeat([]byte("golden"), 10000)
	fs.WriteFile("/img.vmss", payload)
	upstream, err := stack.StartFileChanServer(fs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer upstream.Close()

	relay, err := stack.StartFileChanRelay(stack.Dialer(upstream.Addr, nil, nil), t.TempDir(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	fetch := func() []byte {
		conn, err := net.Dial("tcp", relay.Addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		data, err := filechan.Fetch(conn, "/img.vmss", true)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(fetch(), payload) {
		t.Fatal("first fetch mismatch")
	}
	// Kill the upstream: the relay must serve from its cache.
	upstream.Close()
	if !bytes.Equal(fetch(), payload) {
		t.Error("relay did not serve from cache after upstream death")
	}
}

func TestNodeCleanupRuns(t *testing.T) {
	fs := memfs.New()
	node, err := stack.StartNFSServer(fs, stack.NFSServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	node.AddCleanup(func() { ran = true })
	node.Close()
	if !ran {
		t.Error("cleanup not invoked")
	}
}
