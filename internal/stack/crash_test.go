package stack_test

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"

	"gvfs/internal/cache"
	"gvfs/internal/memfs"
	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/stack"
	"gvfs/internal/sunrpc"
)

const crashBlock = 4096

func crashCacheConfig(dir string) *cache.Config {
	return &cache.Config{
		Dir: dir, Banks: 2, SetsPerBank: 8, Assoc: 4, BlockSize: crashBlock,
		Policy: cache.WriteBack, Journal: true, JournalSync: cache.SyncAlways,
	}
}

// rawClient opens a plain NFS connection to addr: unlike gvfs.Mount it
// has no client-side page cache, so every Write is an explicit proxy
// acknowledgment.
func rawClient(t *testing.T, addr string) (*nfs3.Client, nfs3.FH, func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	rpc := sunrpc.NewClient(conn)
	cred := sunrpc.UnixCred{UID: 500, GID: 500, MachineName: "crash-test"}.Encode()
	root, err := mountd.Mount(rpc, cred, "/")
	if err != nil {
		rpc.Close()
		t.Fatal(err)
	}
	return nfs3.NewClient(rpc, cred), root, func() { rpc.Close() }
}

func TestStartProxyJournalRecovery(t *testing.T) {
	// A proxy killed with acked-but-unpropagated write-back state must,
	// on restart over the same cache directory, replay that state to
	// the server before it starts listening.
	fs := memfs.New()
	initial := bytes.Repeat([]byte{0x01}, 8*crashBlock)
	if err := fs.WriteFile("/disk.img", initial); err != nil {
		t.Fatal(err)
	}
	server, err := stack.StartNFSServer(fs, stack.NFSServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	cacheDir := t.TempDir()
	node1, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.Addr,
		CacheConfig:  crashCacheConfig(cacheDir),
	})
	if err != nil {
		t.Fatal(err)
	}

	nc, root, closeC := rawClient(t, node1.Addr)
	fh, _, err := nc.Lookup(root, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	dirty := make(map[uint64][]byte)
	for i := uint64(0); i < 4; i++ {
		data := bytes.Repeat([]byte{byte(0xB0 + i)}, crashBlock)
		if _, _, err := nc.Write(fh, i*crashBlock, data, nfs3.Unstable); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		dirty[i] = data
	}
	closeC()
	// "Crash": tear the node down without WriteBack/SaveIndex. Close
	// drains nothing — write-back only happens on signal or eviction —
	// so the server must still hold the initial content.
	node1.Close()
	pre, err := fs.ReadFile("/disk.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, initial) {
		t.Fatal("writes reached the server before recovery; test premise broken")
	}

	// Restart over the same directory. StartProxy runs recovery +
	// replay synchronously before returning, so the server state is
	// final as soon as it succeeds.
	node2, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.Addr,
		CacheConfig:  crashCacheConfig(cacheDir),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	post, err := fs.ReadFile("/disk.img")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range dirty {
		if !bytes.Equal(post[i*crashBlock:(i+1)*crashBlock], want) {
			t.Errorf("block %d not replayed to the server", i)
		}
	}
	// And the restarted proxy serves the recovered data.
	nc2, root2, closeC2 := rawClient(t, node2.Addr)
	defer closeC2()
	fh2, _, err := nc2.Lookup(root2, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := nc2.Read(fh2, 0, crashBlock)
	if err != nil || !bytes.Equal(got, dirty[0]) {
		t.Errorf("read after recovery: %v", err)
	}
}

func TestStartProxyChecksumRefetch(t *testing.T) {
	// Banks corrupted while the proxy was down: the checksum catches it
	// on first read and the proxy silently refetches from the server.
	fs := memfs.New()
	payload := bytes.Repeat([]byte{0x5C}, 4*crashBlock)
	if err := fs.WriteFile("/disk.img", payload); err != nil {
		t.Fatal(err)
	}
	server, err := stack.StartNFSServer(fs, stack.NFSServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	cacheDir := t.TempDir()
	node1, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.Addr,
		CacheConfig:  crashCacheConfig(cacheDir),
		PersistIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nc, root, closeC := rawClient(t, node1.Addr)
	fh, _, err := nc.Lookup(root, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if _, _, err := nc.Read(fh, i*crashBlock, crashBlock); err != nil {
			t.Fatal(err)
		}
	}
	closeC()
	if err := node1.BlockCache.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	node1.Close()

	// Rot every bank on disk.
	banks, err := filepath.Glob(filepath.Join(cacheDir, "bank*"))
	if err != nil || len(banks) == 0 {
		t.Fatalf("no bank files: %v", err)
	}
	for _, bank := range banks {
		blob, err := os.ReadFile(bank)
		if err != nil {
			t.Fatal(err)
		}
		for i := range blob {
			blob[i] ^= 0xA5
		}
		if err := os.WriteFile(bank, blob, 0644); err != nil {
			t.Fatal(err)
		}
	}

	node2, err := stack.StartProxy(stack.ProxyOptions{
		UpstreamAddr: server.Addr,
		CacheConfig:  crashCacheConfig(cacheDir),
		PersistIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	nc2, root2, closeC2 := rawClient(t, node2.Addr)
	defer closeC2()
	fh2, _, err := nc2.Lookup(root2, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		got, _, err := nc2.Read(fh2, i*crashBlock, crashBlock)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload[i*crashBlock:(i+1)*crashBlock]) {
			t.Fatalf("block %d served corrupt data", i)
		}
	}
	if errs := node2.BlockCache.Stats().ChecksumErrors; errs == 0 {
		t.Error("corruption went undetected")
	}
}
