package stack

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gvfs/internal/cache"
	"gvfs/internal/tunnel"
)

func parseFlags(t *testing.T, args ...string) *ProxyFlags {
	t.Helper()
	fs := flag.NewFlagSet("gvfsproxy", flag.ContinueOnError)
	f := BindProxyFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f
}

func TestProxyFlagsFullCommandLine(t *testing.T) {
	keyFile := filepath.Join(t.TempDir(), "session.key")
	key := make([]byte, tunnel.KeySize)
	for i := range key {
		key[i] = byte(i)
	}
	if err := os.WriteFile(keyFile, key, 0o600); err != nil {
		t.Fatal(err)
	}

	f := parseFlags(t,
		"-listen", "127.0.0.1:9999",
		"-upstream", "img:7049",
		"-keyfile", keyFile,
		"-cache-dir", "/tmp/cache",
		"-cache-banks", "16", "-cache-sets", "4", "-cache-assoc", "2",
		"-cache-block", "4096", "-cache-stripes", "8",
		"-policy", "write-through",
		"-journal-sync", "always",
		"-filecache-dir", "/tmp/fcache", "-filechan", "img:7050",
		"-readahead", "4", "-persist-index=false",
		"-idle-writeback", "5s", "-call-timeout", "2s", "-max-retries", "3",
		"-degraded-reads", "-failure-threshold", "7", "-probe-interval", "1s",
		"-metrics", "127.0.0.1:9049", "-trace-ring", "256",
		"-flightrec", "128", "-slow-threshold", "150ms",
		"-statusz-topn", "7", "-audit-ring", "64",
		"-log-level", "debug", "-log-file", "/tmp/gvfs.log", "-log-ring", "512",
	)
	if f.Listen != "127.0.0.1:9999" || f.MetricsAddr != "127.0.0.1:9049" || f.StatsEvery != 0 {
		t.Errorf("daemon fields wrong: %+v", f)
	}

	opts, err := f.Options()
	if err != nil {
		t.Fatalf("Options: %v", err)
	}
	if opts.UpstreamAddr != "img:7049" {
		t.Errorf("UpstreamAddr = %q", opts.UpstreamAddr)
	}
	if string(opts.UpstreamKey) != string(key) {
		t.Error("keyfile contents not loaded into UpstreamKey")
	}
	cc := opts.CacheConfig
	if cc == nil {
		t.Fatal("cache-dir must produce a CacheConfig")
	}
	want := cache.Config{Dir: "/tmp/cache", Banks: 16, SetsPerBank: 4, Assoc: 2,
		BlockSize: 4096, Policy: cache.WriteThrough, Stripes: 8,
		Journal: true, JournalSync: cache.SyncAlways}
	if *cc != want {
		t.Errorf("CacheConfig = %+v, want %+v", *cc, want)
	}
	if opts.FileCacheDir != "/tmp/fcache" || opts.FileChanAddr != "img:7050" {
		t.Errorf("file cache fields wrong: %+v", opts)
	}
	if string(opts.FileChanKey) != string(key) {
		t.Error("file channel must reuse the session key")
	}
	if opts.ReadAhead != 4 || opts.PersistIndex || opts.IdleWriteBack != 5*time.Second {
		t.Errorf("behaviour knobs wrong: %+v", opts)
	}
	if opts.UpstreamCallTimeout != 2*time.Second || opts.UpstreamMaxRetries != 3 {
		t.Errorf("fault-tolerance knobs wrong: %+v", opts)
	}
	if !opts.DegradedReads || opts.FailureThreshold != 7 || opts.ProbeInterval != time.Second {
		t.Errorf("breaker knobs wrong: %+v", opts)
	}
	if opts.TraceRing != 256 {
		t.Errorf("TraceRing = %d, want 256", opts.TraceRing)
	}
	if opts.FlightRing != 128 || opts.SlowThreshold != 150*time.Millisecond {
		t.Errorf("flight recorder knobs wrong: ring=%d slow=%v", opts.FlightRing, opts.SlowThreshold)
	}
	if opts.StatuszTopN != 7 || opts.AuditRing != 64 {
		t.Errorf("accounting knobs wrong: topn=%d audit=%d", opts.StatuszTopN, opts.AuditRing)
	}
	if f.Log == nil {
		t.Fatal("BindProxyFlags must bind log flags")
	}
	if f.Log.Level != "debug" || f.Log.File != "/tmp/gvfs.log" || f.Log.Ring != 512 {
		t.Errorf("log flags wrong: %+v", f.Log)
	}
}

func TestLogFlagsLogger(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "out.log")
	fs := flag.NewFlagSet("gvfsd", flag.ContinueOnError)
	lf := BindLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "warn", "-log-file", logFile, "-log-ring", "8"}); err != nil {
		t.Fatal(err)
	}
	logger, closeLog, err := lf.Logger("testd", nil)
	if err != nil {
		t.Fatalf("Logger: %v", err)
	}
	defer closeLog()
	logger.Info("below threshold")
	logger.Warn("at threshold", "k", "v")
	data, err := os.ReadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "at threshold") || strings.Contains(out, "below threshold") {
		t.Errorf("level filter not applied to file sink:\n%s", out)
	}
	if ring := logger.Ring(); ring == nil {
		t.Error("-log-ring 8 must attach a ring")
	} else if evs := ring.Events(); len(evs) != 1 || evs[0].Msg != "at threshold" {
		t.Errorf("ring events = %+v, want the single warn event", evs)
	}

	// An unknown level is an error.
	bad := &LogFlags{Level: "shout"}
	if _, _, err := bad.Logger("testd", nil); err == nil {
		t.Error("bogus -log-level must be rejected")
	}
}

func TestProxyFlagsDefaultsAndErrors(t *testing.T) {
	// Defaults: no cache, write-back policy, persist-index on.
	f := parseFlags(t, "-upstream", "up:1")
	opts, err := f.Options()
	if err != nil {
		t.Fatalf("Options: %v", err)
	}
	if opts.CacheConfig != nil || opts.FileCacheDir != "" || opts.UpstreamKey != nil {
		t.Errorf("defaults produced non-empty optional config: %+v", opts)
	}
	if !opts.PersistIndex {
		t.Error("persist-index must default to true")
	}

	// Missing -upstream is an error.
	if _, err := parseFlags(t).Options(); err == nil {
		t.Error("empty -upstream must be rejected")
	}
	// Unknown policy is an error.
	if _, err := parseFlags(t, "-upstream", "u:1", "-policy", "bogus").Options(); err == nil {
		t.Error("bogus policy must be rejected")
	}
	// Unknown journal sync mode is an error.
	if _, err := parseFlags(t, "-upstream", "u:1", "-journal-sync", "bogus").Options(); err == nil {
		t.Error("bogus journal-sync must be rejected")
	}
	// Journaling defaults on with batched sync.
	f2 := parseFlags(t, "-upstream", "u:1", "-cache-dir", "/tmp/c")
	opts2, err := f2.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !opts2.CacheConfig.Journal || opts2.CacheConfig.JournalSync != cache.SyncBatch {
		t.Errorf("journal defaults wrong: %+v", opts2.CacheConfig)
	}
	// Bad keyfile (wrong size) is an error.
	short := filepath.Join(t.TempDir(), "short.key")
	if err := os.WriteFile(short, []byte("tiny"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFlags(t, "-upstream", "u:1", "-keyfile", short).Options(); err == nil {
		t.Error("short keyfile must be rejected")
	}
}
