// Package stack assembles complete GVFS deployments: an image server
// (userspace NFS + MOUNT + file-channel services), a chain of GVFS
// proxies, and the network links between them. It exists so that
// tests, examples and the benchmark harness all build the paper's
// topologies — compute server, optional LAN cache server, image
// server across a WAN — from the same, well-tested wiring.
package stack

import (
	"sync"
	"time"

	"fmt"
	"net"
	"strings"

	"gvfs/internal/auth"
	"gvfs/internal/backend/nfs3be"
	"gvfs/internal/backend/objstore"
	"gvfs/internal/backend/replbe"
	"gvfs/internal/cache"
	"gvfs/internal/cachean"
	"gvfs/internal/filecache"
	"gvfs/internal/filechan"
	"gvfs/internal/memfs"
	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/obs"
	"gvfs/internal/proxy"
	"gvfs/internal/qos"
	"gvfs/internal/simnet"
	"gvfs/internal/sunrpc"
	"gvfs/internal/tunnel"
)

// Node is one running RPC endpoint (server or proxy).
type Node struct {
	Addr       string
	Proxy      *proxy.Proxy        // nil for end servers
	BlockCache *cache.Cache        // nil unless the proxy has a disk cache
	Metrics    *obs.Registry       // the proxy's registry (nil for end servers)
	Tracer     *obs.Tracer         // the proxy's trace ring (nil unless enabled)
	Flight     *obs.FlightRecorder // the proxy's flight recorder (nil unless enabled)
	Cachean    *cachean.Analyzer   // cache analytics (nil unless enabled)
	rpcSrv     *sunrpc.Server
	listener   net.Listener
	extra      []func() // additional cleanup
}

// Close stops the node.
func (n *Node) Close() {
	if n.rpcSrv != nil {
		n.rpcSrv.Close()
	}
	if n.listener != nil {
		n.listener.Close()
	}
	for _, f := range n.extra {
		f()
	}
}

// listen opens a loopback listener, optionally shaped by link and
// wrapped in a tunnel responder with key.
func listen(link *simnet.Link, key []byte) (net.Listener, error) {
	return ListenOn("127.0.0.1:0", link, key)
}

// ListenOn opens a listener on addr, optionally shaped by link and
// wrapped in a tunnel responder with key. Exported for the daemons.
func ListenOn(addr string, link *simnet.Link, key []byte) (net.Listener, error) {
	var l net.Listener
	var err error
	if link != nil {
		l, err = simnet.Listen(addr, link)
	} else {
		l, err = net.Listen("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	if key != nil {
		l = &tunnelListener{Listener: l, key: key}
	}
	return l, nil
}

// tunnelListener upgrades accepted connections to tunnel endpoints.
type tunnelListener struct {
	net.Listener
	key []byte
}

func (t *tunnelListener) Accept() (net.Conn, error) {
	for {
		raw, err := t.Listener.Accept()
		if err != nil {
			return nil, err
		}
		// A failed or stalled handshake (wrong key, port scan) must
		// not take the service down: bound it and keep accepting.
		raw.SetDeadline(time.Now().Add(10 * time.Second))
		conn, err := tunnel.Server(raw, t.key)
		if err != nil {
			raw.Close()
			continue
		}
		raw.SetDeadline(time.Time{})
		return conn, nil
	}
}

// Dialer returns a dial function to addr, optionally shaped by link
// and upgraded to a tunnel initiator with key.
func Dialer(addr string, link *simnet.Link, key []byte) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		var conn net.Conn
		var err error
		if link != nil {
			conn, err = simnet.Dial(addr, link)
		} else {
			conn, err = net.Dial("tcp", addr)
		}
		if err != nil {
			return nil, err
		}
		if key != nil {
			tc, err := tunnel.Client(conn, key)
			if err != nil {
				conn.Close()
				return nil, err
			}
			return tc, nil
		}
		return conn, nil
	}
}

// NFSServerOptions configure StartNFSServer.
type NFSServerOptions struct {
	// Exports lists MOUNT dirpaths all mapped to the backend root
	// (default: "/").
	Exports []string
	// ListenLink shapes the listener (for proxy-less baselines that
	// mount the end server across the WAN directly).
	ListenLink *simnet.Link
	// ListenKey upgrades accepted connections to tunnel endpoints.
	ListenKey []byte
}

// StartNFSServer runs a userspace NFS+MOUNT server for backend.
func StartNFSServer(backend nfs3.Backend, opts NFSServerOptions) (*Node, error) {
	root, err := backend.Root()
	if err != nil {
		return nil, err
	}
	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, nfs3.NewServer(backend))
	md := mountd.NewServer()
	exports := opts.Exports
	if len(exports) == 0 {
		exports = []string{"/"}
	}
	for _, e := range exports {
		md.Export(e, root)
	}
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, md)
	l, err := listen(opts.ListenLink, opts.ListenKey)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	return &Node{Addr: l.Addr().String(), rpcSrv: srv, listener: l}, nil
}

// StartFileChanServer runs a file-channel service for store.
func StartFileChanServer(store filechan.FileStore, link *simnet.Link, key []byte) (*Node, error) {
	l, err := listen(link, key)
	if err != nil {
		return nil, err
	}
	srv := filechan.NewServer(store)
	go srv.Serve(l)
	return &Node{Addr: l.Addr().String(), listener: l, extra: []func(){srv.Close}}, nil
}

// ProxyOptions configure StartProxy.
type ProxyOptions struct {
	// UpstreamAddr is the next hop's RPC address.
	UpstreamAddr string
	// UpstreamLink shapes the upstream connection.
	UpstreamLink *simnet.Link
	// UpstreamKey tunnels the upstream connection.
	UpstreamKey []byte

	// ListenLink / ListenKey shape and protect this proxy's listener.
	ListenLink *simnet.Link
	ListenKey  []byte

	// Mapper enables identity mapping (server-side proxy role).
	Mapper *auth.Mapper

	// CacheConfig enables the block-based disk cache (Dir required).
	// All fields pass through verbatim, including the concurrency
	// knobs Stripes and SerialIO (see cache.Config).
	CacheConfig *cache.Config

	// SharedBlockCache lets several proxies serve from one disk cache
	// — the paper's shared read-only cache mode. The cache must be
	// configured ReadOnly; writes bypass it. Mutually exclusive with
	// CacheConfig.
	SharedBlockCache *cache.Cache

	// FileCacheDir enables the file-based cache; FileChanAddr (plus
	// optional link and key) reaches the image server's file channel.
	FileCacheDir string
	FileChanAddr string
	FileChanLink *simnet.Link
	FileChanKey  []byte

	// DisableMeta turns meta-data handling off (ablations).
	DisableMeta bool

	// ReadAhead enables sequential prefetching of this many blocks at
	// the proxy (requires CacheConfig).
	ReadAhead int

	// ReadAheadPipeline pipelines each prefetch window's READs on the
	// upstream connection instead of issuing one call per block (see
	// proxy.Config.ReadAheadPipeline).
	ReadAheadPipeline bool

	// PersistIndex reloads a saved cache-tag snapshot from the cache
	// directory at startup, so a restarted proxy resumes with a warm
	// disk cache. Pair with Cache.SaveIndex at shutdown.
	PersistIndex bool

	// IdleWriteBack, when positive, starts the proxy's idle writer:
	// dirty session data is propagated automatically once the session
	// has been quiet this long (paper §3.2.3).
	IdleWriteBack time.Duration

	// UpstreamCallTimeout bounds each upstream RPC (per-call deadline).
	UpstreamCallTimeout time.Duration

	// UpstreamMaxRetries enables transparent upstream reconnection with
	// exponential backoff and XID-preserving retransmission of
	// idempotent NFS calls (nfs3.RetrySafe). 0 disables retries.
	UpstreamMaxRetries int

	// DegradedReads serves cached data while the upstream is down; see
	// proxy.Config.DegradedReads.
	DegradedReads bool
	// FailureThreshold and ProbeInterval tune the upstream circuit
	// breaker (proxy.Config fields of the same names).
	FailureThreshold int
	ProbeInterval    time.Duration

	// Metrics is the obs registry the proxy publishes into. Nil gives
	// the proxy a private registry (reachable via Node.Metrics).
	Metrics *obs.Registry

	// TraceRing, when positive, enables request tracing with a ring of
	// this capacity (reachable via Node.Tracer).
	TraceRing int

	// FlightRing, when positive, enables the flight recorder with a
	// ring of this capacity (reachable via Node.Flight). The recorder
	// needs span trees, so tracing is enabled implicitly (with a
	// DefaultRing-sized ring) if TraceRing is zero.
	FlightRing int
	// SlowThreshold is the latency that promotes a call into the
	// flight recorder (0 = obs.DefaultSlowThreshold).
	SlowThreshold time.Duration

	// Logger, when set, gives the proxy a structured event log.
	Logger *obs.Logger

	// StatuszTopN bounds each /statusz ranking; AuditRing bounds the
	// write-back audit trail (0 = package defaults).
	StatuszTopN int
	AuditRing   int

	// QoS, when non-nil, enables per-client admission control: the
	// scheduler is built from this config (metrics wired into the
	// proxy's registry when the config doesn't name one) and closed
	// with the node. See qos.Config for the knobs.
	QoS *qos.Config

	// CallBudget is the default end-to-end deadline stamped on calls
	// that arrive without a propagated budget in their trace verifier
	// (0 = no local deadline).
	CallBudget time.Duration

	// AcctMaxEntries / AcctIdleTTL bound the per-file and per-client
	// accounting tables (0 = package defaults).
	AcctMaxEntries int
	AcctIdleTTL    time.Duration

	// Cachean enables the cache-analytics subsystem (internal/cachean):
	// a SHARDS-sampled reuse-distance tracker behind the block cache
	// that maintains online miss-ratio curves, working-set estimates
	// and what-if sizing, surfaced at /cachez and as gvfs_cachean_*
	// metrics. The analyzer is installed as the block cache's access
	// tap, so it needs CacheConfig; with only a SharedBlockCache the
	// proxy-level demand taps still feed it, but the MRC stays empty.
	// CacheanRate is the spatial sample rate (0 = 0.01); CacheanWindow
	// the working-set sliding window (0 = 60s).
	Cachean       bool
	CacheanRate   float64
	CacheanWindow time.Duration
}

// Backend selector values for ProxyOptionsV2.Backend.
const (
	BackendNFS3     = "nfs3"     // NFSv3 over ONC-RPC to UpstreamAddr (classic)
	BackendObjstore = "objstore" // local content-addressed object store, no upstream
	BackendRepl     = "repl"     // replicated composite over Replicas specs
)

// ProxyOptionsV2 is the versioned successor of ProxyOptions: all the
// classic wiring plus the backend selector that arrived with the
// pluggable upstream API. The zero Backend keeps the historical
// behavior, so ProxyOptionsV2{ProxyOptions: opts} is always equivalent
// to the old StartProxy(opts).
type ProxyOptionsV2 struct {
	ProxyOptions

	// Backend selects the upstream implementation: BackendNFS3
	// (default) dials UpstreamAddr; BackendObjstore serves from a local
	// object store and ignores the Upstream* fields entirely.
	Backend string

	// ObjstoreDir is the object store directory (BackendObjstore).
	// Ignored when ObjstoreStore is set.
	ObjstoreDir string

	// ObjstoreStore supplies the store directly — a MemStore for
	// self-contained runs, or a CountingStore wrapper when the caller
	// wants per-object traffic accounting (the dedup benchmark).
	ObjstoreStore objstore.Store

	// ObjstoreBlock is the store's block size (0 = objstore default).
	ObjstoreBlock int

	// Dedup enables the content-addressed dedup map in the block cache
	// (cache.Config.Dedup): identical blocks across files — N cloned VM
	// images — share one cached frame.
	Dedup bool

	// Replicas lists the replicated backend's members (BackendRepl) in
	// priority order — index 0 is the write primary and, when it is an
	// NFS replica, the control-plane relay. Each spec is
	// "objstore:<dir>" or "nfs3:<host:port>".
	Replicas []string

	// ReplicaBackends supplies pre-built replicas directly (tests and
	// benchmarks wire simnet-backed replicas this way); takes
	// precedence over Replicas. The composite owns and closes them.
	ReplicaBackends []replbe.Replica

	// ReplConfig tunes the replicated backend (nil = replbe defaults:
	// hedged reads at the p95 latency, 30s scrub, primary-ack writes).
	ReplConfig *replbe.Config
}

// StartProxy runs a GVFS proxy node over the classic NFSv3 upstream.
// Equivalent to StartProxyV2 with the zero backend selector.
func StartProxy(opts ProxyOptions) (*Node, error) {
	return StartProxyV2(ProxyOptionsV2{ProxyOptions: opts})
}

// StartProxyV2 runs a GVFS proxy node over the selected backend.
func StartProxyV2(o ProxyOptionsV2) (*Node, error) {
	opts := o.ProxyOptions
	var cleanup []func()
	fail := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}

	cfg := proxy.Config{
		Mapper:            opts.Mapper,
		DisableMeta:       opts.DisableMeta,
		ReadAhead:         opts.ReadAhead,
		ReadAheadPipeline: opts.ReadAheadPipeline,
		DegradedReads:     opts.DegradedReads,
		FailureThreshold:  opts.FailureThreshold,
		ProbeInterval:     opts.ProbeInterval,
		Metrics:           opts.Metrics,
		Logger:            opts.Logger,
		StatuszTopN:       opts.StatuszTopN,
		AuditRing:         opts.AuditRing,
		CallBudget:        opts.CallBudget,
		AcctMaxEntries:    opts.AcctMaxEntries,
		AcctIdleTTL:       opts.AcctIdleTTL,
	}

	switch o.Backend {
	case "", BackendNFS3:
		dial := Dialer(opts.UpstreamAddr, opts.UpstreamLink, opts.UpstreamKey)
		conn, err := dial()
		if err != nil {
			return nil, fmt.Errorf("stack: proxy upstream dial: %w", err)
		}
		var upstream *sunrpc.Client
		if opts.UpstreamCallTimeout > 0 || opts.UpstreamMaxRetries > 0 {
			copts := sunrpc.ClientOptions{
				CallTimeout: opts.UpstreamCallTimeout,
				MaxRetries:  opts.UpstreamMaxRetries,
				Idempotent:  nfs3.RetrySafe,
			}
			if opts.UpstreamMaxRetries > 0 {
				copts.Redial = dial
			}
			upstream = sunrpc.NewClientWithOptions(conn, copts)
		} else {
			upstream = sunrpc.NewClient(conn)
		}
		cfg.Upstream = upstream
		cleanup = append(cleanup, func() { upstream.Close() })
	case BackendObjstore:
		store := o.ObjstoreStore
		if store == nil {
			if o.ObjstoreDir == "" {
				return nil, fmt.Errorf("stack: objstore backend needs ObjstoreDir or ObjstoreStore")
			}
			ds, err := objstore.NewDirStore(o.ObjstoreDir)
			if err != nil {
				return nil, fmt.Errorf("stack: objstore: %w", err)
			}
			store = ds
		}
		cfg.Backend = objstore.New(store, o.ObjstoreBlock)
	case BackendRepl:
		reps := o.ReplicaBackends
		var relay nfs3.Caller
		if len(reps) == 0 {
			for i, spec := range o.Replicas {
				kind, arg, ok := strings.Cut(spec, ":")
				if !ok || arg == "" {
					fail()
					return nil, fmt.Errorf("stack: bad replica spec %q (want objstore:<dir> or nfs3:<host:port>)", spec)
				}
				name := fmt.Sprintf("r%d", i)
				switch kind {
				case "objstore":
					ds, err := objstore.NewDirStore(arg)
					if err != nil {
						fail()
						return nil, fmt.Errorf("stack: replica %s: %w", name, err)
					}
					reps = append(reps, replbe.Replica{Name: name, B: objstore.New(ds, o.ObjstoreBlock)})
				case "nfs3":
					dial := Dialer(arg, nil, opts.UpstreamKey)
					conn, err := dial()
					if err != nil {
						fail()
						return nil, fmt.Errorf("stack: replica %s dial: %w", name, err)
					}
					// Replica clients always redial: probe-driven recovery
					// after an outage needs a fresh transport, and the
					// composite's health gating (not a dead socket) is what
					// decides whether the replica serves.
					client := sunrpc.NewClientWithOptions(conn, sunrpc.ClientOptions{
						CallTimeout: opts.UpstreamCallTimeout,
						MaxRetries:  opts.UpstreamMaxRetries,
						Idempotent:  nfs3.RetrySafe,
						Redial:      dial,
					})
					cleanup = append(cleanup, func() { client.Close() })
					reps = append(reps, replbe.Replica{Name: name, B: nfs3be.New(client)})
					if i == 0 {
						// NFS replicas carry no local namespace: relay
						// MOUNT/LOOKUP over the primary, like the classic
						// single-upstream arrangement.
						relay = client
					}
				default:
					fail()
					return nil, fmt.Errorf("stack: unknown replica kind %q in %q", kind, spec)
				}
			}
		}
		if relay == nil && opts.UpstreamAddr != "" {
			// Injected replicas (or an all-objstore set) can still name a
			// control-plane relay the classic way: UpstreamAddr/Link is
			// then the namespace hop, typically the primary replica's
			// server.
			dial := Dialer(opts.UpstreamAddr, opts.UpstreamLink, opts.UpstreamKey)
			conn, err := dial()
			if err != nil {
				fail()
				return nil, fmt.Errorf("stack: repl relay dial: %w", err)
			}
			client := sunrpc.NewClientWithOptions(conn, sunrpc.ClientOptions{
				CallTimeout: opts.UpstreamCallTimeout,
				MaxRetries:  opts.UpstreamMaxRetries,
				Idempotent:  nfs3.RetrySafe,
				Redial:      dial,
			})
			cleanup = append(cleanup, func() { client.Close() })
			relay = client
		}
		rcfg := replbe.Config{}
		if o.ReplConfig != nil {
			rcfg = *o.ReplConfig
		}
		rb, err := replbe.New(reps, rcfg)
		if err != nil {
			fail()
			return nil, fmt.Errorf("stack: repl backend: %w", err)
		}
		cfg.Backend = rb
		cfg.Upstream = relay
		cleanup = append(cleanup, func() { rb.Close() })
	default:
		return nil, fmt.Errorf("stack: unknown backend %q (want %q, %q or %q)",
			o.Backend, BackendNFS3, BackendObjstore, BackendRepl)
	}

	if opts.TraceRing > 0 {
		cfg.Tracer = obs.NewTracer(opts.TraceRing)
	}
	if opts.FlightRing > 0 {
		// Flight recordings are span trees, so the recorder implies
		// tracing even when the daemon did not ask for /traces.
		if cfg.Tracer == nil {
			cfg.Tracer = obs.NewTracer(obs.DefaultRing)
		}
		cfg.Flight = obs.NewFlightRecorder(opts.FlightRing, opts.SlowThreshold)
	}

	if opts.QoS != nil {
		qcfg := *opts.QoS
		if qcfg.Metrics == nil {
			// The scheduler publishes gvfs_qos_* next to the proxy's
			// own metrics; when the caller didn't bring a registry,
			// create the shared one here so both land in it.
			if cfg.Metrics == nil {
				cfg.Metrics = obs.NewRegistry()
			}
			qcfg.Metrics = cfg.Metrics
		}
		if qcfg.OnBrownout == nil && opts.Logger != nil {
			qlog := opts.Logger.Named("qos")
			qcfg.OnBrownout = func(active bool) {
				if active {
					qlog.Warn("brownout enter")
				} else {
					qlog.Info("brownout exit")
				}
			}
		}
		sched := qos.New(qcfg)
		cfg.QoS = sched
		cleanup = append(cleanup, sched.Close)
	}

	var analyzer *cachean.Analyzer
	if opts.Cachean {
		analyzer = cachean.New(cachean.Config{
			Rate:   opts.CacheanRate,
			Window: opts.CacheanWindow,
		})
		cfg.Cachean = analyzer
		cleanup = append(cleanup, analyzer.Close)
	}

	var blockCache *cache.Cache
	if opts.SharedBlockCache != nil {
		if opts.CacheConfig != nil {
			fail()
			return nil, fmt.Errorf("stack: SharedBlockCache and CacheConfig are mutually exclusive")
		}
		if !opts.SharedBlockCache.Config().ReadOnly {
			fail()
			return nil, fmt.Errorf("stack: a shared block cache must be ReadOnly")
		}
		blockCache = opts.SharedBlockCache
		cfg.BlockCache = blockCache
		cfg.WritePolicy = cache.WriteThrough
		// Shared caches are not closed with the node: their owner is
		// whoever created them.
	}
	if opts.CacheConfig != nil {
		ccfg := *opts.CacheConfig
		if ccfg.Logger == nil && opts.Logger != nil {
			ccfg.Logger = opts.Logger.Named("cache")
		}
		if o.Dedup {
			ccfg.Dedup = true
		}
		if analyzer != nil && ccfg.Tap == nil {
			ccfg.Tap = analyzer
		}
		var err error
		blockCache, err = cache.New(ccfg)
		if err != nil {
			fail()
			return nil, err
		}
		if opts.PersistIndex {
			if err := blockCache.LoadIndex(); err != nil {
				blockCache.Close()
				fail()
				return nil, fmt.Errorf("stack: reload cache index: %w", err)
			}
		}
		cfg.BlockCache = blockCache
		cfg.WritePolicy = opts.CacheConfig.Policy
		cleanup = append(cleanup, func() { blockCache.Close() })
	}
	if opts.FileCacheDir != "" {
		fc, err := filecache.New(opts.FileCacheDir)
		if err != nil {
			fail()
			return nil, err
		}
		cfg.FileCache = fc
		if opts.FileChanAddr != "" {
			cfg.FileChanDial = Dialer(opts.FileChanAddr, opts.FileChanLink, opts.FileChanKey)
		}
	}

	if analyzer != nil && blockCache != nil {
		cc := blockCache.Config()
		analyzer.SetCapacity(
			uint64(cc.Banks)*uint64(cc.SetsPerBank)*uint64(cc.Assoc)*uint64(cc.BlockSize),
			cc.BlockSize)
	}

	p, err := proxy.New(cfg)
	if err != nil {
		fail()
		return nil, err
	}
	cleanup = append(cleanup, p.Shutdown)
	// Crash recovery: replay any journaled dirty blocks a crashed
	// predecessor left in the cache directory BEFORE the listener
	// starts — by the time a client can reconnect, the server already
	// reflects every previously acknowledged write.
	if blockCache != nil && blockCache.JournalEnabled() {
		if _, err := p.RecoverJournal(); err != nil {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
			return nil, fmt.Errorf("stack: journal recovery: %w", err)
		}
	}
	srv := sunrpc.NewServer()
	srv.Register(nfs3.Program, nfs3.Version, p)
	srv.Register(nfs3.MountProgram, nfs3.MountVersion, p)
	l, err := listen(opts.ListenLink, opts.ListenKey)
	if err != nil {
		fail()
		return nil, err
	}
	if opts.IdleWriteBack > 0 {
		stopIdle := p.StartIdleWriteBack(opts.IdleWriteBack)
		cleanup = append(cleanup, stopIdle)
	}
	go srv.Serve(l)
	return &Node{Addr: l.Addr().String(), Proxy: p, BlockCache: blockCache,
		Metrics: p.MetricsRegistry(), Tracer: cfg.Tracer, Flight: cfg.Flight,
		Cachean: analyzer, rpcSrv: srv, listener: l, extra: cleanup}, nil
}

// StartStatsLogger emits one structured "stats" event for p at every
// interval — the replacement for the per-daemon printf stats loops.
// It returns a stop function; calling it more than once is safe.
func StartStatsLogger(log *obs.Logger, p *proxy.Proxy, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			st := p.Snapshot()
			log.Info("stats",
				"calls", st.Counter("gvfs_proxy_calls_total"),
				"hits", st.Counter("gvfs_proxy_read_hits_total"),
				"misses", st.Counter("gvfs_proxy_read_misses_total"),
				"zero", st.Counter("gvfs_proxy_zero_filtered_total"),
				"filechan_reads", st.Counter("gvfs_proxy_filechan_reads_total"),
				"filechan_fetches", st.Counter("gvfs_proxy_filechan_fetches_total"),
				"absorbed", st.Counter("gvfs_proxy_writes_absorbed_total"),
				"prefetched", st.Counter("gvfs_proxy_prefetched_total"),
				"retries", st.Counter("gvfs_rpc_retries_total"),
				"reconnects", st.Counter("gvfs_rpc_reconnects_total"),
				"timeouts", st.Counter("gvfs_rpc_timeouts_total"),
				"breaker_opens", st.Counter("gvfs_proxy_breaker_opens_total"),
				"fast_fails", st.Counter("gvfs_proxy_breaker_fastfails_total"),
				"probes", st.Counter("gvfs_proxy_probes_total"),
				"replays", st.Counter("gvfs_proxy_replays_total"),
				"degraded_reads", st.Counter("gvfs_proxy_degraded_reads_total"),
				"degraded", p.Degraded(),
			)
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// ImageServer bundles the services running on a paper "image server":
// the NFS/MOUNT server, the server-side GVFS proxy with identity
// mapping, and the file-channel service. The proxy and file channel
// listen across the given link (the WAN or LAN path to this server);
// the NFS server itself is only reachable locally, through the proxy.
type ImageServer struct {
	FS        *memfs.FS
	NFS       *Node
	Proxy     *Node
	FileChan  *Node
	Key       []byte // tunnel session key for this server's services
	Allocator *auth.Allocator
}

// Close stops all services.
func (s *ImageServer) Close() {
	if s.Proxy != nil {
		s.Proxy.Close()
	}
	if s.FileChan != nil {
		s.FileChan.Close()
	}
	if s.NFS != nil {
		s.NFS.Close()
	}
}

// ProxyAddr is the address sessions and downstream proxies connect to.
func (s *ImageServer) ProxyAddr() string { return s.Proxy.Addr }

// FileChanAddr is the file-channel service address.
func (s *ImageServer) FileChanAddr() string { return s.FileChan.Addr }

// ImageServerOptions configure StartImageServer.
type ImageServerOptions struct {
	// Link is the network path to this server (nil = local).
	Link *simnet.Link
	// Encrypt enables tunnels on the proxy and file-channel services.
	Encrypt bool
	// IdentityBase/IdentityCount configure the logical account pool.
	IdentityBase, IdentityCount uint32
	// Metrics, TraceRing, FlightRing, SlowThreshold and Logger pass
	// through to the server-side proxy (see ProxyOptions fields of the
	// same names).
	Metrics       *obs.Registry
	TraceRing     int
	FlightRing    int
	SlowThreshold time.Duration
	Logger        *obs.Logger
}

// StartImageServer assembles a full image server around fs.
func StartImageServer(fs *memfs.FS, opts ImageServerOptions) (*ImageServer, error) {
	nfsNode, err := StartNFSServer(fs, NFSServerOptions{})
	if err != nil {
		return nil, err
	}
	var key []byte
	if opts.Encrypt {
		key, err = tunnel.NewKey()
		if err != nil {
			nfsNode.Close()
			return nil, err
		}
	}
	base, count := opts.IdentityBase, opts.IdentityCount
	if count == 0 {
		base, count = 60000, 1000
	}
	alloc := auth.NewAllocator(base, count, identityTTL)
	proxyNode, err := StartProxy(ProxyOptions{
		UpstreamAddr:  nfsNode.Addr,
		ListenLink:    opts.Link,
		ListenKey:     key,
		Mapper:        auth.NewMapper(alloc),
		Metrics:       opts.Metrics,
		TraceRing:     opts.TraceRing,
		FlightRing:    opts.FlightRing,
		SlowThreshold: opts.SlowThreshold,
		Logger:        opts.Logger,
	})
	if err != nil {
		nfsNode.Close()
		return nil, err
	}
	fcNode, err := StartFileChanServer(fs, opts.Link, key)
	if err != nil {
		proxyNode.Close()
		nfsNode.Close()
		return nil, err
	}
	return &ImageServer{
		FS:        fs,
		NFS:       nfsNode,
		Proxy:     proxyNode,
		FileChan:  fcNode,
		Key:       key,
		Allocator: alloc,
	}, nil
}

// identityTTL is the short-lived identity lifetime used by image
// servers (renewed on use, so it only needs to exceed call gaps).
const identityTTL = 30 * time.Minute

// relayStore is a caching filechan.FileStore: reads are served from a
// local file cache, fetched (compressed) from the upstream file
// channel on miss; writes pass through. It gives a LAN cache server
// the file-based half of the paper's second-level heterogeneous cache.
type relayStore struct {
	dial  func() (net.Conn, error)
	cache *filecache.Cache
}

// ReadFile implements filechan.FileStore.
func (r *relayStore) ReadFile(path string) ([]byte, error) {
	if r.cache.Has(path) {
		return r.cache.Contents(path)
	}
	conn, err := r.dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	data, err := filechan.Fetch(conn, path, true)
	if err != nil {
		return nil, err
	}
	if err := r.cache.Store(path, data); err != nil {
		return nil, err
	}
	return data, nil
}

// WriteFile implements filechan.FileStore (write-through upload).
func (r *relayStore) WriteFile(path string, data []byte) error {
	conn, err := r.dial()
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := filechan.Put(conn, path, data, true); err != nil {
		return err
	}
	return r.cache.Store(path, data)
}

// StartFileChanRelay runs a caching file-channel relay: downstream
// clients fetch from it across listenLink; misses are pulled from the
// upstream file channel through upstreamDial. This is the second-level
// file cache of the paper's WAN-S3 scenario.
func StartFileChanRelay(upstreamDial func() (net.Conn, error), cacheDir string,
	listenLink *simnet.Link, listenKey []byte) (*Node, error) {
	fc, err := filecache.New(cacheDir)
	if err != nil {
		return nil, err
	}
	store := &relayStore{dial: upstreamDial, cache: fc}
	l, err := listen(listenLink, listenKey)
	if err != nil {
		return nil, err
	}
	srv := filechan.NewServer(store)
	go srv.Serve(l)
	return &Node{Addr: l.Addr().String(), listener: l, extra: []func(){srv.Close}}, nil
}

// AddCleanup registers fn to run when the node is closed.
func (n *Node) AddCleanup(fn func()) { n.extra = append(n.extra, fn) }
