package vm_test

import (
	"bytes"
	"compress/gzip"
	"testing"

	gvfs "gvfs"
	"gvfs/internal/memfs"
	"gvfs/internal/meta"
	"gvfs/internal/stack"
	"gvfs/internal/vm"
)

func testSpec() vm.Spec {
	return vm.Spec{
		Name:        "rh73",
		MemoryBytes: 2 << 20,
		DiskBytes:   8 << 20,
		Seed:        42,
	}
}

func TestGenerateMemStateZeroFraction(t *testing.T) {
	spec := testSpec()
	mem := spec.GenerateMemState()
	if uint64(len(mem)) != spec.MemoryBytes {
		t.Fatalf("len = %d", len(mem))
	}
	zero := 0
	pages := len(mem) / vm.PageSize
	for p := 0; p < pages; p++ {
		isZero := true
		for _, b := range mem[p*vm.PageSize : (p+1)*vm.PageSize] {
			if b != 0 {
				isZero = false
				break
			}
		}
		if isZero {
			zero++
		}
	}
	frac := float64(zero) / float64(pages)
	if frac < 0.85 || frac > 0.97 {
		t.Errorf("zero fraction = %.3f, want ~0.92", frac)
	}
}

func TestGenerateMemStateDeterministic(t *testing.T) {
	spec := testSpec()
	a := spec.GenerateMemState()
	b := spec.GenerateMemState()
	if !bytes.Equal(a, b) {
		t.Error("memory state not deterministic")
	}
	spec.Seed = 43
	c := spec.GenerateMemState()
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical state")
	}
}

func TestMemStateCompressible(t *testing.T) {
	// The paper relies on memory state being highly compressible.
	spec := testSpec()
	mem := spec.GenerateMemState()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(mem)
	zw.Close()
	ratio := float64(len(mem)) / float64(buf.Len())
	if ratio < 5 {
		t.Errorf("compression ratio = %.1fx, want well above 5x for ~92%% zero state", ratio)
	}
}

func TestConfigContents(t *testing.T) {
	spec := testSpec()
	cfg := spec.ConfigContents()
	for _, want := range []string{"rh73.vmdk", "rh73.vmss", "memsize = \"2\""} {
		if !bytes.Contains([]byte(cfg), []byte(want)) {
			t.Errorf("config missing %q:\n%s", want, cfg)
		}
	}
}

func TestInstallImage(t *testing.T) {
	fs := memfs.New()
	spec := testSpec()
	if err := vm.InstallImage(fs, "/images/golden", spec); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"rh73.vmx", "rh73.vmss", "rh73.vmdk", meta.NameFor("rh73.vmss")} {
		if _, err := fs.ReadFile("/images/golden/" + f); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	// The installed meta-data must describe the memory state.
	blob, _ := fs.ReadFile("/images/golden/" + meta.NameFor("rh73.vmss"))
	m, err := meta.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.FileSize != spec.MemoryBytes || !m.WantsFileChannel() || !m.HasZeroMap() {
		t.Errorf("meta = %+v", m)
	}
}

func startSession(t *testing.T, fs *memfs.FS) *gvfs.Session {
	t.Helper()
	server, err := stack.StartImageServer(fs, stack.ImageServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	sess, err := gvfs.Mount(gvfs.SessionConfig{Addr: server.ProxyAddr(), Export: "/", PageCachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func TestResumeReadsWholeMemState(t *testing.T) {
	fs := memfs.New()
	spec := testSpec()
	if err := vm.InstallImage(fs, "/images/golden", spec); err != nil {
		t.Fatal(err)
	}
	sess := startSession(t, fs)
	monitor := vm.NewMonitor(sess)
	machine, err := monitor.Resume("/images/golden", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	defer machine.Close()
	if machine.Name != "rh73" || machine.Disk == nil {
		t.Errorf("vm = %+v", machine)
	}
	if machine.Disk.Size() != spec.DiskBytes {
		t.Errorf("disk size = %d", machine.Disk.Size())
	}
}

func TestResumeFollowsDiskSymlink(t *testing.T) {
	fs := memfs.New()
	spec := testSpec()
	if err := vm.InstallImage(fs, "/images/golden", spec); err != nil {
		t.Fatal(err)
	}
	sess := startSession(t, fs)
	// Build a clone-style directory: copied config, symlinked disk.
	if err := sess.MkdirAll("/clones/c1"); err != nil {
		t.Fatal(err)
	}
	cfg, _ := sess.ReadFile("/images/golden/rh73.vmx")
	// Point checkpoint state at the golden dir.
	patched := bytes.ReplaceAll(cfg, []byte(`checkpoint.vmState = "rh73.vmss"`),
		[]byte(`checkpoint.vmState = "/images/golden/rh73.vmss"`))
	sess.WriteFile("/clones/c1/rh73.vmx", patched)
	if err := sess.Symlink("/images/golden/rh73.vmdk", "/clones/c1/rh73.vmdk"); err != nil {
		t.Fatal(err)
	}
	monitor := vm.NewMonitor(sess)
	machine, err := monitor.Resume("/clones/c1", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	defer machine.Close()
	if machine.Disk.Size() != spec.DiskBytes {
		t.Errorf("cloned disk size = %d, want %d", machine.Disk.Size(), spec.DiskBytes)
	}
}

func TestSuspendWritesMemState(t *testing.T) {
	fs := memfs.New()
	spec := testSpec()
	vm.InstallImage(fs, "/vm", spec)
	sess := startSession(t, fs)
	monitor := vm.NewMonitor(sess)
	machine, err := monitor.Resume("/vm", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	defer machine.Close()
	newState := bytes.Repeat([]byte{0xAA}, 1<<20)
	if err := monitor.Suspend(machine, newState); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/vm/rh73.vmss")
	if err != nil || !bytes.Equal(data, newState) {
		t.Errorf("suspend state mismatch: err=%v len=%d", err, len(data))
	}
}

func TestRedoLog(t *testing.T) {
	fs := memfs.New()
	spec := testSpec()
	vm.InstallImage(fs, "/vm", spec)
	sess := startSession(t, fs)
	monitor := vm.NewMonitor(sess)
	machine, err := monitor.Resume("/vm", "rh73")
	if err != nil {
		t.Fatal(err)
	}
	defer machine.Close()
	redo, err := machine.OpenRedoLog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := redo.Write([]byte("block 42 -> new contents")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/vm/rh73.redo"); err != nil {
		t.Errorf("redo log missing on server: %v", err)
	}
}
