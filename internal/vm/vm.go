// Package vm models the virtual machines of the paper's evaluation:
// VMware GSX-style hosted VMs whose state lives in regular files — a
// .vmx configuration file, a .vmss suspended memory state, and a .vmdk
// plain virtual disk — all accessed through a (distributed) file
// system. The Monitor type simulates the VM monitor's file access
// behaviour, which is what drives every experiment:
//
//   - resuming a VM reads the configuration and the *entire* memory
//     state file (hundreds of MBs, largely zero-filled and highly
//     compressible);
//   - running applications issues block I/O against the virtual disk,
//     touching a working set far smaller than the disk (<10%);
//   - suspending writes the memory state back;
//   - non-persistent VMs write modifications to redo logs instead of
//     the (shared, golden) virtual disk.
package vm

import (
	"fmt"
	"io"
	"math/rand"
	"path"
	"strings"

	gvfs "gvfs"
	"gvfs/internal/memfs"
	"gvfs/internal/meta"
)

// Spec describes a VM image.
type Spec struct {
	// Name is the image's base name; files are <Name>.vmx/.vmss/.vmdk.
	Name string
	// MemoryBytes is the memory state size (paper: 320 MB / 512 MB).
	MemoryBytes uint64
	// DiskBytes is the virtual disk size (paper: 1.6 GB / 2 GB).
	DiskBytes uint64
	// ZeroPageFraction is the fraction of all-zero memory pages
	// (paper: 60452/65750 ≈ 0.92 for a post-boot RedHat 7.3 VM).
	ZeroPageFraction float64
	// Seed makes image contents deterministic.
	Seed int64
}

// DefaultZeroPageFraction matches the paper's post-boot measurement.
const DefaultZeroPageFraction = float64(60452) / float64(65750)

// PageSize is the guest page size used when generating memory state.
const PageSize = 4096

// ConfigFile, MemStateFile and DiskFile name the image files.
func (s Spec) ConfigFile() string { return s.Name + ".vmx" }

// MemStateFile returns the memory state filename.
func (s Spec) MemStateFile() string { return s.Name + ".vmss" }

// DiskFile returns the virtual disk filename.
func (s Spec) DiskFile() string { return s.Name + ".vmdk" }

// GenerateMemState builds a deterministic suspended-memory image:
// ZeroPageFraction of the pages are zero-filled; the rest carry
// moderately compressible content (kernel text, page tables, file
// cache — gzip shrinks such pages roughly 3x).
func (s Spec) GenerateMemState() []byte {
	frac := s.ZeroPageFraction
	if frac <= 0 {
		frac = DefaultZeroPageFraction
	}
	rng := rand.New(rand.NewSource(s.Seed))
	data := make([]byte, s.MemoryBytes)
	words := []string{"kernel", "page", "inode", "buffer", "socket", "task_struct"}
	// Zero and non-zero pages cluster in runs, as in real post-boot
	// memory (allocated regions are contiguous). A two-state Markov
	// walk with a mean non-zero run of 4 pages keeps the stationary
	// zero fraction at frac while making multi-page NFS blocks mostly
	// all-zero or all-used, matching the paper's 92% filter rate for
	// 8 KB reads.
	const nonZeroPersist = 0.75 // mean non-zero run: 4 pages
	zeroPersist := 1.0
	if frac < 1 {
		zeroPersist = 1 - (1-frac)*(1-nonZeroPersist)/frac
	}
	inZero := rng.Float64() < frac
	for off := 0; off+PageSize <= len(data); off += PageSize {
		if inZero {
			if rng.Float64() >= zeroPersist {
				inZero = false
			}
		} else {
			if rng.Float64() >= nonZeroPersist {
				inZero = true
			}
		}
		if inZero {
			continue // zero page
		}
		page := data[off : off+PageSize]
		// Low-entropy fill: repeated tokens plus sparse random bytes.
		w := words[rng.Intn(len(words))]
		for i := 0; i < len(page); i += len(w) {
			copy(page[i:], w)
		}
		for i := 0; i < 64; i++ {
			page[rng.Intn(len(page))] = byte(rng.Intn(256))
		}
	}
	return data
}

// GenerateDisk builds a deterministic virtual disk image. Most of a
// freshly-installed plain-mode disk is zero; installed software and
// data occupy deterministic extents at the front.
func (s Spec) GenerateDisk() []byte {
	rng := rand.New(rand.NewSource(s.Seed + 1))
	data := make([]byte, s.DiskBytes)
	// Populate the first ~25% with filesystem-like content.
	used := len(data) / 4
	for off := 0; off+PageSize <= used; off += PageSize {
		page := data[off : off+PageSize]
		for i := 0; i < len(page); i += 16 {
			copy(page[i:], "/usr/lib/libgrid")
		}
		for i := 0; i < 32; i++ {
			page[rng.Intn(len(page))] = byte(rng.Intn(256))
		}
	}
	return data
}

// ConfigContents builds the .vmx-style configuration text.
func (s Spec) ConfigContents() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config.version = \"8\"\n")
	fmt.Fprintf(&b, "displayName = %q\n", s.Name)
	fmt.Fprintf(&b, "memsize = \"%d\"\n", s.MemoryBytes>>20)
	fmt.Fprintf(&b, "ide0:0.fileName = %q\n", s.DiskFile())
	fmt.Fprintf(&b, "checkpoint.vmState = %q\n", s.MemStateFile())
	return b.String()
}

// InstallImage writes a complete golden image into dir on the image
// server's filesystem, including the middleware-generated meta-data
// for the memory state (zero map + file-channel actions).
func InstallImage(fs *memfs.FS, dir string, spec Spec) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	if err := fs.WriteFile(path.Join(dir, spec.ConfigFile()), []byte(spec.ConfigContents())); err != nil {
		return err
	}
	mem := spec.GenerateMemState()
	if err := fs.WriteFile(path.Join(dir, spec.MemStateFile()), mem); err != nil {
		return err
	}
	m := meta.ForWholeFile(mem, 8192)
	blob, err := m.Encode()
	if err != nil {
		return err
	}
	if err := fs.WriteFile(path.Join(dir, meta.NameFor(spec.MemStateFile())), blob); err != nil {
		return err
	}
	disk := spec.GenerateDisk()
	return fs.WriteFile(path.Join(dir, spec.DiskFile()), disk)
}

// Monitor simulates the VM monitor on a compute server. All its file
// access goes through a GVFS session, as VMware's does through the
// kernel NFS mount in the paper.
type Monitor struct {
	Session *gvfs.Session
	// ReadSize is the transfer size used when reading memory state
	// (default: the session block size).
	ReadSize uint32
}

// NewMonitor returns a Monitor using sess.
func NewMonitor(sess *gvfs.Session) *Monitor {
	return &Monitor{Session: sess, ReadSize: sess.BlockSize()}
}

// VM is a resumed (running) virtual machine.
type VM struct {
	Name    string
	Dir     string
	Config  string
	Disk    *gvfs.File
	monitor *Monitor
	redo    *gvfs.File
}

// Resume instantiates the VM whose files are in dir: it reads the
// configuration, reads the ENTIRE memory state (the VMware behaviour
// the paper's meta-data handling accelerates), resolves the virtual
// disk (following one level of symlink, as cloned VMs link to golden
// disks) and opens it.
func (m *Monitor) Resume(dir, name string) (*VM, error) {
	cfgBytes, err := m.Session.ReadFile(path.Join(dir, name+".vmx"))
	if err != nil {
		return nil, fmt.Errorf("vm: read config: %w", err)
	}
	memPath, diskPath, err := statePaths(dir, name, string(cfgBytes))
	if err != nil {
		return nil, err
	}
	if err := m.readAll(memPath); err != nil {
		return nil, fmt.Errorf("vm: read memory state: %w", err)
	}
	diskPath, err = m.resolveLink(diskPath)
	if err != nil {
		return nil, err
	}
	disk, err := m.Session.Open(diskPath)
	if err != nil {
		return nil, fmt.Errorf("vm: open disk: %w", err)
	}
	return &VM{Name: name, Dir: dir, Config: string(cfgBytes), Disk: disk, monitor: m}, nil
}

// statePaths extracts the memory-state and disk paths from the config.
func statePaths(dir, name, cfg string) (memPath, diskPath string, err error) {
	memPath = path.Join(dir, name+".vmss")
	diskPath = path.Join(dir, name+".vmdk")
	resolve := func(v string) string {
		v = strings.Trim(v, "\"")
		if strings.HasPrefix(v, "/") {
			return v // absolute guest-visible path (e.g. golden dir)
		}
		return path.Join(dir, v)
	}
	for _, line := range strings.Split(cfg, "\n") {
		if rest, ok := strings.CutPrefix(line, "checkpoint.vmState = "); ok {
			memPath = resolve(rest)
		}
		if rest, ok := strings.CutPrefix(line, "ide0:0.fileName = "); ok {
			diskPath = resolve(rest)
		}
	}
	return memPath, diskPath, nil
}

// resolveLink follows a symlink once (cloned disks link to the golden
// image's disk files).
func (m *Monitor) resolveLink(p string) (string, error) {
	attr, err := m.Session.Stat(p)
	if err != nil {
		return "", err
	}
	if attr.Type != 5 { // nfs3.TypeLnk
		return p, nil
	}
	target, err := m.Session.ReadLink(p)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(target, "/") {
		target = path.Join(path.Dir(p), target)
	}
	return target, nil
}

// readAll sequentially reads an entire file, as VMware does with the
// memory state on resume.
func (m *Monitor) readAll(p string) error {
	f, err := m.Session.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, m.ReadSize)
	var off int64
	for {
		n, err := f.ReadAt(buf, off)
		off += int64(n)
		if err == io.EOF || (err == nil && n == 0) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Suspend checkpoints the VM: the memory state is written back in
// full (persistent VMs) to the VM's own directory.
func (m *Monitor) Suspend(v *VM, memState []byte) error {
	if err := m.Session.WriteFile(path.Join(v.Dir, v.Name+".vmss"), memState); err != nil {
		return err
	}
	return v.Disk.Sync()
}

// OpenRedoLog opens (creating if needed) the VM's redo log for
// non-persistent disk modifications.
func (v *VM) OpenRedoLog() (*gvfs.File, error) {
	if v.redo != nil {
		return v.redo, nil
	}
	f, err := v.monitor.Session.Create(path.Join(v.Dir, v.Name+".redo"))
	if err != nil {
		return nil, err
	}
	v.redo = f
	return f, nil
}

// Close releases the VM's open files.
func (v *VM) Close() error {
	if v.redo != nil {
		v.redo.Close()
	}
	return v.Disk.Close()
}
