package sunrpc

import (
	"net"
	"testing"
)

func TestTraceVerfRoundTrip(t *testing.T) {
	in := TraceContext{ID: 0xdeadbeefcafe, Hop: 3}
	verf := in.EncodeVerf()
	if verf.Flavor != TraceVerfFlavor {
		t.Fatalf("flavor = %#x, want %#x", verf.Flavor, TraceVerfFlavor)
	}
	out, ok := DecodeTraceVerf(verf)
	if !ok || out != in {
		t.Fatalf("round trip = %+v ok=%v, want %+v", out, ok, in)
	}
}

func TestTraceVerfBudgetRoundTrip(t *testing.T) {
	in := TraceContext{ID: 7, Hop: 2, BudgetMs: 1500}
	out, ok := DecodeTraceVerf(in.EncodeVerf())
	if !ok || out != in {
		t.Fatalf("round trip = %+v ok=%v, want %+v", out, ok, in)
	}
	// Budget-only context: ID 0 marks an untraced call that still
	// propagates its deadline.
	in = TraceContext{BudgetMs: 250}
	out, ok = DecodeTraceVerf(in.EncodeVerf())
	if !ok || out != in {
		t.Fatalf("budget-only round trip = %+v ok=%v, want %+v", out, ok, in)
	}
}

// A 12-byte verifier from a peer that predates the budget word must
// still decode, with BudgetMs zero (no deadline).
func TestDecodeTraceVerfLegacy12Bytes(t *testing.T) {
	full := TraceContext{ID: 99, Hop: 4, BudgetMs: 777}.EncodeVerf()
	legacy := OpaqueAuth{Flavor: TraceVerfFlavor, Body: full.Body[:12]}
	out, ok := DecodeTraceVerf(legacy)
	if !ok {
		t.Fatal("legacy 12-byte body must decode")
	}
	if out.ID != 99 || out.Hop != 4 || out.BudgetMs != 0 {
		t.Fatalf("legacy decode = %+v, want ID 99 Hop 4 BudgetMs 0", out)
	}
}

func TestDecodeTraceVerfRejectsOthers(t *testing.T) {
	if _, ok := DecodeTraceVerf(AuthNoneCred); ok {
		t.Error("AUTH_NONE must not decode as a trace context")
	}
	if _, ok := DecodeTraceVerf(OpaqueAuth{Flavor: TraceVerfFlavor, Body: []byte{1, 2}}); ok {
		t.Error("short body must not decode")
	}
}

// TestTraceVerfAcrossWire proves the extension is a transparent header:
// a server handler sees the propagated context, and a handler that
// ignores the verifier (like the end NFS server) still works.
func TestTraceVerfAcrossWire(t *testing.T) {
	srv := NewServer()
	var seen TraceContext
	var sawTrace bool
	srv.Register(100, 1, HandlerFunc(func(c *Call) ([]byte, AcceptStat) {
		seen, sawTrace = DecodeTraceVerf(c.Verf)
		return []byte{0, 0, 0, 7}, Success
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Plain Call: AUTH_NONE verifier, no trace decoded.
	if _, err := client.Call(100, 1, 0, AuthNoneCred, nil); err != nil {
		t.Fatalf("plain call: %v", err)
	}
	if sawTrace {
		t.Fatal("plain call must not carry a trace context")
	}

	// CallVerf: the context crosses the wire intact.
	want := TraceContext{ID: 42, Hop: 1}
	if _, err := client.CallVerf(100, 1, 0, AuthNoneCred, want.EncodeVerf(), nil); err != nil {
		t.Fatalf("CallVerf: %v", err)
	}
	if !sawTrace || seen != want {
		t.Fatalf("server saw %+v (trace=%v), want %+v", seen, sawTrace, want)
	}
}
