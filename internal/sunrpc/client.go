package sunrpc

// Fault-tolerant RPC client: per-call deadlines, transparent reconnect
// with exponential backoff and jitter, and XID-based retransmission of
// idempotent calls. A WAN session (the paper's Abilene path) stalls,
// flaps and drops; the NFS session layered on this client must absorb
// those transients instead of dying with the first TCP connection.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/bufpool"
	"gvfs/internal/xdr"
)

// ErrClientClosed is returned by Call after the client is closed or its
// connection fails (with no reconnect configured).
var ErrClientClosed = errors.New("sunrpc: client closed")

// ErrCallTimeout reports that a call's per-call deadline expired before
// a reply arrived.
var ErrCallTimeout = errors.New("sunrpc: call timed out")

// ErrRetriesExhausted is the terminal error after every retransmission
// attempt of an idempotent call has failed.
var ErrRetriesExhausted = errors.New("sunrpc: retries exhausted")

// RPCError reports a non-SUCCESS accept state from the server.
type RPCError struct {
	Stat AcceptStat
}

func (e *RPCError) Error() string { return "sunrpc: call failed: " + e.Stat.String() }

// ClientOptions tune the client's fault-tolerance behavior. The zero
// value reproduces the plain single-connection client: no deadline, no
// reconnect, no retransmission.
type ClientOptions struct {
	// CallTimeout bounds each call attempt. While a call is in flight
	// the connection carries a matching write deadline, and the reply
	// wait is cut off after this duration. Zero means wait forever.
	CallTimeout time.Duration

	// Redial re-establishes the transport after a connection failure.
	// When nil the client is single-shot: a dead connection fails all
	// current and future calls, as before.
	Redial func() (net.Conn, error)

	// MaxRetries is the number of retransmission attempts after the
	// first try (default 8 when retries are enabled at all).
	MaxRetries int

	// BackoffBase and BackoffMax bound the exponential backoff between
	// attempts (defaults 20ms and 2s). Each wait is jittered to half
	// its nominal value at minimum.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Idempotent reports whether a procedure is safe to retransmit
	// after an ambiguous failure (the call may have executed). Calls
	// for which it returns false are retried only when the failure
	// provably precedes transmission (e.g. a failed dial). Nil means
	// nothing is idempotent.
	Idempotent func(prog, vers, proc uint32) bool
}

const (
	defaultMaxRetries  = 8
	defaultBackoffBase = 20 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
)

// TransportStats counts client fault-handling activity.
type TransportStats struct {
	Retries    uint64 // retransmission attempts (beyond first tries)
	Reconnects uint64 // successful redials
	Timeouts   uint64 // per-call deadline expiries
}

// Client issues RPC calls over a stream connection. It is safe for
// concurrent use: calls are multiplexed by XID. With ClientOptions it
// survives connection failures by reconnecting and retransmitting
// idempotent calls under their original XIDs.
type Client struct {
	opts ClientOptions

	wmu sync.Mutex // serializes record writes

	mu      sync.Mutex
	cond    *sync.Cond // signals redial completion
	conn    net.Conn   // nil while down
	gen     int        // bumped per established connection
	dialing bool
	closed  bool
	lastErr error // last transport error, for the no-redial path
	nextXID uint32
	pending map[uint32]chan clientReply
	done    chan struct{}

	retries    atomic.Uint64
	reconnects atomic.Uint64
	timeouts   atomic.Uint64
}

type clientReply struct {
	stat    AcceptStat
	results []byte
	err     error
	// transport marks err as a connection-level failure (the call may
	// be retransmitted) rather than a server verdict.
	transport bool
}

// NewClient wraps an established connection with default (no-retry)
// options.
func NewClient(conn net.Conn) *Client {
	return NewClientWithOptions(conn, ClientOptions{})
}

// NewClientWithOptions wraps an established connection.
func NewClientWithOptions(conn net.Conn, opts ClientOptions) *Client {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = defaultMaxRetries
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = defaultBackoffBase
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = defaultBackoffMax
	}
	c := &Client{
		opts:    opts,
		conn:    conn,
		gen:     1,
		nextXID: 1,
		pending: make(map[uint32]chan clientReply),
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop(conn, 1)
	return c
}

// Dial connects to addr over TCP and returns a Client.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, ClientOptions{})
}

// DialWithOptions connects to addr over TCP with the given options.
// Set opts.Redial to enable reconnection; it is not defaulted here.
func DialWithOptions(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientWithOptions(conn, opts), nil
}

// Close tears down the connection; outstanding calls fail and no
// reconnect is attempted. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	conn := c.conn
	c.conn = nil
	c.failPendingLocked(ErrClientClosed)
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// TransportStats returns a snapshot of the fault-handling counters.
func (c *Client) TransportStats() TransportStats {
	return TransportStats{
		Retries:    c.retries.Load(),
		Reconnects: c.reconnects.Load(),
		Timeouts:   c.timeouts.Load(),
	}
}

// failPendingLocked pushes err to every pending call without removing
// the registrations: a retransmitting call keeps its XID so a reply on
// a later connection still matches.
func (c *Client) failPendingLocked(err error) {
	for _, ch := range c.pending {
		select {
		case ch <- clientReply{err: err, transport: true}:
		default:
		}
	}
}

// connDown records the death of a specific connection generation. A
// stale generation's error (late readLoop exit after a reconnect) is
// ignored.
func (c *Client) connDown(gen int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.conn == nil {
		return
	}
	c.conn.Close()
	c.conn = nil
	c.lastErr = fmt.Errorf("%w: %v", ErrClientClosed, err)
	c.failPendingLocked(c.lastErr)
}

func (c *Client) readLoop(conn net.Conn, gen int) {
	hdr := make([]byte, 4) // per-loop record-mark scratch
	for {
		// The record itself is GC-allocated, not pooled: the results
		// slice is handed to the waiting caller with unbounded lifetime.
		rec, err := readRecordInto(conn, hdr, nil)
		if err != nil {
			c.connDown(gen, err)
			return
		}
		var d xdr.Decoder
		d.ResetBytes(rec)
		xid := d.Uint32()
		mt := d.Uint32()
		rstat := d.Uint32()
		if d.Err() != nil || mt != msgReply {
			c.connDown(gen, errors.New("malformed reply"))
			return
		}
		var rep clientReply
		if rstat == replyDenied {
			rep.err = errors.New("sunrpc: call denied by server")
		} else {
			d.Uint32()    // verifier flavor
			d.OpaqueRef() // verifier body (unused)
			rep.stat = AcceptStat(d.Uint32())
			if err := d.Err(); err != nil {
				c.connDown(gen, err)
				return
			}
			rep.results = rec[d.Pos():]
		}
		c.mu.Lock()
		ch, ok := c.pending[xid]
		c.mu.Unlock()
		if ok {
			// Non-blocking: a duplicate reply (retransmission answered
			// twice) is dropped rather than wedging the read loop.
			select {
			case ch <- rep:
			default:
			}
		}
	}
}

// ensureConn returns a live connection, redialing if configured. The
// caller is responsible for backoff between attempts.
func (c *Client) ensureConn() (net.Conn, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, 0, ErrClientClosed
		}
		if c.conn != nil {
			return c.conn, c.gen, nil
		}
		if c.opts.Redial == nil {
			err := c.lastErr
			if err == nil {
				err = ErrClientClosed
			}
			return nil, 0, err
		}
		if c.dialing {
			c.cond.Wait()
			continue
		}
		c.dialing = true
		c.mu.Unlock()
		conn, err := c.opts.Redial()
		c.mu.Lock()
		c.dialing = false
		c.cond.Broadcast()
		if err != nil {
			c.lastErr = fmt.Errorf("%w: redial: %v", ErrClientClosed, err)
			return nil, 0, err
		}
		if c.closed {
			conn.Close()
			return nil, 0, ErrClientClosed
		}
		c.gen++
		c.conn = conn
		c.reconnects.Add(1)
		go c.readLoop(conn, c.gen)
		return c.conn, c.gen, nil
	}
}

// backoffDelay returns the jittered exponential delay for the given
// retry ordinal.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Jitter to [d/2, d] so parallel retransmitters decorrelate. The
	// package-level rand source is safe for concurrent use, unlike a
	// per-client *rand.Rand, which concurrent backoff paths would race
	// on.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleep waits for d, aborting early if the client closes.
func (c *Client) sleep(d time.Duration) {
	select {
	case <-time.After(d):
	case <-c.done:
	}
}

// retriesEnabled reports whether the retry loop applies at all.
func (c *Client) retriesEnabled() bool {
	return c.opts.Redial != nil || c.opts.CallTimeout > 0
}

// Call issues one RPC and waits for its reply. On a non-SUCCESS accept
// state it returns an *RPCError. With retry options set, transport
// failures of idempotent calls are retransmitted (same XID) across
// reconnects until MaxRetries is exhausted, then reported as
// ErrRetriesExhausted wrapping the last cause.
func (c *Client) Call(prog, vers, proc uint32, cred OpaqueAuth, args []byte) ([]byte, error) {
	return c.CallVerf(prog, vers, proc, cred, AuthNoneCred, args)
}

// CallVerf is Call with an explicit call verifier — the header
// extension slot proxies use to propagate trace contexts (see
// TraceContext). The verifier rides every retransmission of the call
// unchanged. It implements VerfCaller.
func (c *Client) CallVerf(prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte) ([]byte, error) {
	return c.callVerfDeadline(prog, vers, proc, cred, verf, args, time.Time{})
}

// CallVerfDeadline is CallVerf bounded by an absolute deadline. The
// retry loop never sleeps a backoff it cannot recover from: once the
// deadline cannot be met before the next attempt could complete, the
// call fails promptly with an error satisfying
// errors.Is(err, context.DeadlineExceeded). Each attempt's reply wait
// is additionally capped at the remaining budget, so a stalled
// connection cannot hold the call past its deadline either. A zero
// deadline behaves exactly like CallVerf. It implements
// DeadlineVerfCaller.
func (c *Client) CallVerfDeadline(prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte, deadline time.Time) ([]byte, error) {
	return c.callVerfDeadline(prog, vers, proc, cred, verf, args, deadline)
}

func (c *Client) callVerfDeadline(prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte, deadline time.Time) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	xid := c.nextXID
	c.nextXID++
	ch := make(chan clientReply, 1)
	c.pending[xid] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
	}()

	// The record-marked message lives in a pooled buffer for the whole
	// retry loop (retransmissions reuse it verbatim); every write path
	// below is synchronous, so the deferred release cannot race a send.
	msg := marshalCallRecord(xid, prog, vers, proc, cred, verf, args)
	defer bufpool.Put(msg)
	idempotent := c.opts.Idempotent != nil && c.opts.Idempotent(prog, vers, proc)
	attempts := 1
	if c.retriesEnabled() {
		attempts = 1 + c.opts.MaxRetries
	}

	var lastErr error
	timedOutGen := -1 // connection generation already charged one timeout
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := c.backoffDelay(attempt - 1)
			if !deadline.IsZero() && !time.Now().Add(d).Before(deadline) {
				// Sleeping this backoff would overrun the deadline, so
				// no further attempt can be answered in time. One last
				// non-blocking check for a reply that already landed,
				// then fail promptly instead of burning the caller's
				// budget on dead retransmissions.
				select {
				case rep := <-ch:
					if rep.err == nil {
						if rep.stat != Success {
							return nil, &RPCError{Stat: rep.stat}
						}
						return rep.results, nil
					}
				default:
				}
				return nil, fmt.Errorf("%w: retry backoff overruns deadline (last: %v)",
					context.DeadlineExceeded, lastErr)
			}
			c.retries.Add(1)
			c.sleep(d)
			// A reply may have landed during the backoff (the call was
			// merely delayed): complete with it. A buffered transport
			// error from the previous attempt is stale — discard it so
			// it is not mistaken for this attempt's outcome.
			select {
			case rep := <-ch:
				if rep.err == nil {
					if rep.stat != Success {
						return nil, &RPCError{Stat: rep.stat}
					}
					return rep.results, nil
				}
			default:
			}
		}
		conn, gen, err := c.ensureConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) && c.opts.Redial == nil {
				return nil, err
			}
			// Nothing was transmitted: safe to retry regardless of
			// idempotence.
			lastErr = err
			continue
		}

		c.wmu.Lock()
		if c.opts.CallTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(c.opts.CallTimeout))
		}
		_, werr := conn.Write(msg)
		if c.opts.CallTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
		c.wmu.Unlock()
		if werr != nil {
			c.connDown(gen, werr)
			lastErr = fmt.Errorf("%w: %v", ErrClientClosed, werr)
			if !idempotent || c.opts.Redial == nil {
				return nil, lastErr
			}
			continue
		}

		// Each attempt waits at most CallTimeout, further capped at the
		// remaining deadline budget so a stalled connection cannot hold
		// the call past its deadline.
		attemptTimeout := c.opts.CallTimeout
		deadlineBound := false
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				return nil, fmt.Errorf("%w (xid %d, prog %d proc %d)",
					context.DeadlineExceeded, xid, prog, proc)
			}
			if attemptTimeout <= 0 || rem < attemptTimeout {
				attemptTimeout = rem
				deadlineBound = true
			}
		}
		var timeout <-chan time.Time
		var timer *time.Timer
		if attemptTimeout > 0 {
			timer = time.NewTimer(attemptTimeout)
			timeout = timer.C
		}
		select {
		case rep := <-ch:
			if timer != nil {
				timer.Stop()
			}
			if rep.err != nil {
				lastErr = rep.err
				if rep.transport && idempotent && c.opts.Redial != nil {
					continue
				}
				return nil, rep.err
			}
			if rep.stat != Success {
				return nil, &RPCError{Stat: rep.stat}
			}
			return rep.results, nil
		case <-timeout:
			c.timeouts.Add(1)
			if deadlineBound {
				return nil, fmt.Errorf("%w after %v (xid %d, prog %d proc %d)",
					context.DeadlineExceeded, attemptTimeout, xid, prog, proc)
			}
			lastErr = fmt.Errorf("%w after %v (xid %d, prog %d proc %d)",
				ErrCallTimeout, c.opts.CallTimeout, xid, prog, proc)
			if !idempotent {
				return nil, lastErr
			}
			// Retransmit under the same XID: if the original call (or
			// its reply) was merely delayed, the late reply still
			// completes this call. A second expiry on the same
			// connection suggests a wedged or desynchronized stream —
			// sever it so the next attempt starts on a fresh one.
			if c.opts.Redial != nil {
				if gen == timedOutGen {
					c.connDown(gen, lastErr)
				} else {
					timedOutGen = gen
				}
			}
			continue
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// Starter is the pipelining capability: transmit a call without
// waiting for its reply, multiplexing many outstanding calls by XID on
// one connection. *Client implements it; callers type-assert their
// transport and fall back to synchronous Call when absent.
type Starter interface {
	Start(prog, vers, proc uint32, cred OpaqueAuth, args []byte) (*Pending, error)
}

// Pending is a call in flight after Start. Exactly one Wait must
// follow each successful Start.
type Pending struct {
	c   *Client
	xid uint32
	ch  chan clientReply
}

// Start transmits one call and returns without waiting for the reply,
// so a batch of calls can be pipelined on the connection — N requests
// outstanding, replies collected by XID — paying one WAN round trip
// for the whole window instead of one per call. Unlike Call, Start
// never retransmits: a transport failure fails Start (write error) or
// surfaces from Wait (connection death fails all pending calls).
// Read-ahead uses this to keep its prefetch window outstanding.
func (c *Client) Start(prog, vers, proc uint32, cred OpaqueAuth, args []byte) (*Pending, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	conn := c.conn
	gen := c.gen
	if conn == nil {
		err := c.lastErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	xid := c.nextXID
	c.nextXID++
	ch := make(chan clientReply, 1)
	c.pending[xid] = ch
	c.mu.Unlock()

	msg := marshalCallRecord(xid, prog, vers, proc, cred, AuthNoneCred, args)
	c.wmu.Lock()
	if c.opts.CallTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(c.opts.CallTimeout))
	}
	_, werr := conn.Write(msg)
	if c.opts.CallTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	c.wmu.Unlock()
	bufpool.Put(msg)
	if werr != nil {
		c.connDown(gen, werr)
		c.mu.Lock()
		delete(c.pending, xid)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrClientClosed, werr)
	}
	return &Pending{c: c, xid: xid, ch: ch}, nil
}

// Wait blocks for the reply to a Start-ed call. The client's
// CallTimeout, when set, bounds the wait; a connection failure fails
// the wait promptly.
func (p *Pending) Wait() ([]byte, error) {
	defer func() {
		p.c.mu.Lock()
		delete(p.c.pending, p.xid)
		p.c.mu.Unlock()
	}()
	var timeout <-chan time.Time
	var timer *time.Timer
	if d := p.c.opts.CallTimeout; d > 0 {
		timer = time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case rep := <-p.ch:
		if rep.err != nil {
			return nil, rep.err
		}
		if rep.stat != Success {
			return nil, &RPCError{Stat: rep.stat}
		}
		return rep.results, nil
	case <-timeout:
		p.c.timeouts.Add(1)
		return nil, fmt.Errorf("%w after %v (xid %d)", ErrCallTimeout, p.c.opts.CallTimeout, p.xid)
	}
}
