package sunrpc

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gvfs/internal/xdr"
)

const (
	testProg = 0x20000001
	testVers = 1
)

// echoHandler echoes args for proc 1, doubles a uint32 for proc 2.
func echoHandler(c *Call) ([]byte, AcceptStat) {
	switch c.Proc {
	case 0:
		return nil, Success
	case 1:
		return c.Args, Success
	case 2:
		d := xdr.NewDecoder(bytes.NewReader(c.Args))
		v := d.Uint32()
		if d.Err() != nil {
			return nil, GarbageArgs
		}
		var out bytes.Buffer
		xdr.NewEncoder(&out).Uint32(v * 2)
		return out.Bytes(), Success
	}
	return nil, ProcUnavail
}

func startTestServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Register(testProg, testVers, HandlerFunc(echoHandler))
	go s.Serve(l)
	return l.Addr().String(), func() { s.Close(); l.Close() }
}

func TestCallNullProc(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Call(testProg, testVers, 0, AuthNoneCred, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("NULL returned %d bytes", len(res))
	}
}

func TestCallEcho(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := c.Call(testProg, testVers, 1, AuthNoneCred, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, payload) {
		t.Errorf("echo = %v, want %v", res, payload)
	}
}

func TestCallDouble(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, _ := Dial(addr)
	defer c.Close()
	var args bytes.Buffer
	xdr.NewEncoder(&args).Uint32(21)
	res, err := c.Call(testProg, testVers, 2, AuthNoneCred, args.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	if got := d.Uint32(); got != 42 {
		t.Errorf("double(21) = %d, want 42", got)
	}
}

func TestProcUnavail(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(testProg, testVers, 99, AuthNoneCred, nil)
	rpcErr, ok := err.(*RPCError)
	if !ok || rpcErr.Stat != ProcUnavail {
		t.Errorf("err = %v, want PROC_UNAVAIL", err)
	}
}

func TestProgUnavail(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(0x30000000, 1, 0, AuthNoneCred, nil)
	rpcErr, ok := err.(*RPCError)
	if !ok || rpcErr.Stat != ProgUnavail {
		t.Errorf("err = %v, want PROG_UNAVAIL", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, _ := Dial(addr)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var args bytes.Buffer
			xdr.NewEncoder(&args).Uint32(uint32(i))
			res, err := c.Call(testProg, testVers, 2, AuthNoneCred, args.Bytes())
			if err != nil {
				errs <- err
				return
			}
			d := xdr.NewDecoder(bytes.NewReader(res))
			if got := d.Uint32(); got != uint32(i*2) {
				errs <- fmt.Errorf("double(%d) = %d", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallAfterServerClose(t *testing.T) {
	addr, stop := startTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(testProg, testVers, 0, AuthNoneCred, nil); err != nil {
		t.Fatal(err)
	}
	stop()
	deadline := time.After(2 * time.Second)
	for {
		_, err := c.Call(testProg, testVers, 0, AuthNoneCred, nil)
		if err != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("call kept succeeding after server close")
		default:
		}
	}
}

func TestUnixCredRoundTrip(t *testing.T) {
	in := UnixCred{Stamp: 7, MachineName: "grid-c1", UID: 1001, GID: 100, GIDs: []uint32{100, 4}}
	a := in.Encode()
	if a.Flavor != AuthUnix {
		t.Fatalf("flavor = %d", a.Flavor)
	}
	out, err := DecodeUnixCred(a)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stamp != in.Stamp || out.MachineName != in.MachineName ||
		out.UID != in.UID || out.GID != in.GID || len(out.GIDs) != 2 {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestUnixCredWrongFlavor(t *testing.T) {
	if _, err := DecodeUnixCred(AuthNoneCred); err == nil {
		t.Error("expected error decoding AUTH_NONE as AUTH_UNIX")
	}
}

func TestQuickUnixCredRoundTrip(t *testing.T) {
	f := func(stamp, uid, gid uint32, name string) bool {
		in := UnixCred{Stamp: stamp, MachineName: name, UID: uid, GID: gid}
		out, err := DecodeUnixCred(in.Encode())
		return err == nil && out.Stamp == stamp && out.UID == uid &&
			out.GID == gid && out.MachineName == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordMarkingFragments(t *testing.T) {
	// A message split into multiple fragments must reassemble.
	var buf bytes.Buffer
	frag1 := []byte("hello ")
	frag2 := []byte("world")
	hdr := make([]byte, 4)
	put := func(n uint32, last bool) {
		if last {
			n |= 0x80000000
		}
		hdr[0] = byte(n >> 24)
		hdr[1] = byte(n >> 16)
		hdr[2] = byte(n >> 8)
		hdr[3] = byte(n)
		buf.Write(hdr)
	}
	put(uint32(len(frag1)), false)
	buf.Write(frag1)
	put(uint32(len(frag2)), true)
	buf.Write(frag2)
	rec, err := readRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec) != "hello world" {
		t.Errorf("rec = %q", rec)
	}
}

func TestRecordTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // huge fragment claim
	if _, err := readRecord(&buf); err == nil {
		t.Error("expected error for oversized record")
	}
}

func TestAuthUnixPassedToHandler(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan UnixCred, 1)
	s := NewServer()
	s.Register(testProg, testVers, HandlerFunc(func(c *Call) ([]byte, AcceptStat) {
		cred, err := DecodeUnixCred(c.Cred)
		if err == nil {
			got <- cred
		}
		return nil, Success
	}))
	defer s.Close()
	go s.Serve(l)
	c, _ := Dial(l.Addr().String())
	defer c.Close()
	cred := UnixCred{UID: 500, GID: 500, MachineName: "vm1"}
	if _, err := c.Call(testProg, testVers, 0, cred.Encode(), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		if g.UID != 500 || g.MachineName != "vm1" {
			t.Errorf("handler saw cred %+v", g)
		}
	case <-time.After(time.Second):
		t.Fatal("handler never saw credential")
	}
}

func TestGarbageStreamDoesNotKillServer(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	// A client that speaks garbage gets dropped...
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write(bytes.Repeat([]byte{0xFF}, 64))
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	raw.Read(buf) // either EOF or timeout; both fine
	raw.Close()
	// ...while legitimate clients keep working.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(testProg, testVers, 0, AuthNoneCred, nil); err != nil {
		t.Errorf("server unusable after garbage client: %v", err)
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, _ := Dial(addr)
	defer c.Close()
	// Close to the record cap: a 512 KB echo.
	payload := bytes.Repeat([]byte{0xA5}, 512*1024)
	res, err := c.Call(testProg, testVers, 1, AuthNoneCred, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, payload) {
		t.Error("large payload corrupted")
	}
}

func TestManySequentialCalls(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	c, _ := Dial(addr)
	defer c.Close()
	for i := 0; i < 500; i++ {
		var args bytes.Buffer
		xdr.NewEncoder(&args).Uint32(uint32(i))
		res, err := c.Call(testProg, testVers, 2, AuthNoneCred, args.Bytes())
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		d := xdr.NewDecoder(bytes.NewReader(res))
		if got := d.Uint32(); got != uint32(i*2) {
			t.Fatalf("call %d: got %d", i, got)
		}
	}
}
