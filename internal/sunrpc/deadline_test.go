package sunrpc

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// silentServer accepts connections and reads requests but never
// replies — the shape of a wedged upstream that forces the client
// through its full timeout/retry machinery.
func silentServer(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return l
}

// The satellite fix: with a deadline shorter than the retry budget the
// client must return context.DeadlineExceeded promptly — it must not
// sleep a backoff past the deadline before discovering the failure.
func TestCallVerfDeadlinePrompt(t *testing.T) {
	l := silentServer(t)
	defer l.Close()

	c, err := DialWithOptions(l.Addr().String(), ClientOptions{
		CallTimeout: 30 * time.Millisecond,
		Redial:      func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
		MaxRetries:  8,
		BackoffBase: 200 * time.Millisecond, // each backoff alone overruns the deadline
		BackoffMax:  2 * time.Second,
		Idempotent:  func(prog, vers, proc uint32) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(60 * time.Millisecond)
	start := time.Now()
	_, err = c.CallVerfDeadline(100, 1, 0, AuthNoneCred, AuthNoneCred, nil, deadline)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Without the fix the first backoff alone sleeps ≥100ms past the
	// deadline; the fixed client gives up within the budget plus slop.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("took %v to report deadline exceeded; want prompt failure", elapsed)
	}
}

// A deadline shorter than CallTimeout caps the very first reply wait.
func TestCallVerfDeadlineCapsFirstAttempt(t *testing.T) {
	l := silentServer(t)
	defer l.Close()

	c, err := DialWithOptions(l.Addr().String(), ClientOptions{
		CallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.CallVerfDeadline(100, 1, 0, AuthNoneCred, AuthNoneCred, nil,
		time.Now().Add(50*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("reply wait ran %v, not capped by the 50ms deadline", elapsed)
	}
}

// An already-expired deadline fails before any transmission.
func TestCallVerfDeadlineAlreadyExpired(t *testing.T) {
	l := silentServer(t)
	defer l.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.CallVerfDeadline(100, 1, 0, AuthNoneCred, AuthNoneCred, nil,
		time.Now().Add(-time.Second))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// A zero deadline must not change CallVerf behavior: the call succeeds
// against a live server.
func TestCallVerfDeadlineZeroIsUnbounded(t *testing.T) {
	srv := NewServer()
	srv.Register(100, 1, HandlerFunc(func(c *Call) ([]byte, AcceptStat) {
		return []byte{0, 0, 0, 1}, Success
	}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.CallVerfDeadline(100, 1, 0, AuthNoneCred, AuthNoneCred, nil, time.Time{})
	if err != nil || len(res) != 4 {
		t.Fatalf("res=%v err=%v, want 4-byte reply", res, err)
	}
}
