package sunrpc

import (
	"net"
	"sync"
	"testing"
	"time"
)

// Regression test for the shared-RNG race: the client used to seed one
// *rand.Rand consulted from every retransmission path, and concurrent
// backoffs raced on its internal state. Run under -race (the CI
// default) this test fails on the old implementation.
func TestBackoffConcurrentCallersNoRace(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	c := NewClientWithOptions(c1, ClientOptions{
		BackoffBase: time.Microsecond,
		BackoffMax:  8 * time.Microsecond,
	})
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 0; attempt < 32; attempt++ {
				c.sleep(c.backoffDelay(attempt % 6))
			}
		}()
	}
	wg.Wait()
}

// The jitter contract: backoff delays stay within [base/2, max] so
// parallel retransmitters decorrelate without exceeding the cap.
func TestBackoffJitterBounds(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	base := 2 * time.Millisecond
	max := 8 * time.Millisecond
	c := NewClientWithOptions(c1, ClientOptions{BackoffBase: base, BackoffMax: max})
	defer c.Close()

	for attempt := 0; attempt < 8; attempt++ {
		start := time.Now()
		c.sleep(c.backoffDelay(attempt))
		elapsed := time.Since(start)
		if elapsed < base/2 {
			t.Errorf("attempt %d: backoff %v shorter than base/2 %v", attempt, elapsed, base/2)
		}
		// Generous ceiling: the nominal max plus scheduling slop.
		if elapsed > max+500*time.Millisecond {
			t.Errorf("attempt %d: backoff %v far exceeds max %v", attempt, elapsed, max)
		}
	}
}
