package sunrpc

// GVFS trace-context propagation as an optional RPC header extension.
//
// ONC RPC gives every CALL message a credential and a verifier; NFS
// traffic always sends AUTH_NONE as the call verifier and every server
// in this chain (proxies and the end nfs3 server alike) ignores it.
// That makes the verifier a free, in-band extension slot: a proxy that
// wants a downstream trace continued upstream replaces the empty
// verifier with flavor TraceVerfFlavor carrying {trace ID, hop}. Hops
// that understand the extension continue the trace; hops that don't
// (an unmodified NFS server) ignore the verifier entirely, so the
// extension is transparent end to end.

import (
	"time"

	"gvfs/internal/xdr"
)

// TraceVerfFlavor marks a CALL verifier carrying a GVFS trace context.
// The value spells "gvfs" and sits far outside the assigned RPC auth
// flavor range, so it cannot collide with real authentication.
const TraceVerfFlavor uint32 = 0x67766673

// TraceContext identifies one traced RPC as it crosses proxy hops and
// carries the caller's remaining deadline budget so every hop can shed
// work the client has already given up on.
type TraceContext struct {
	ID  uint64 // allocated at hop 0, stable across the chain; 0 = untraced (budget-only)
	Hop uint32 // 0 at the allocating proxy, +1 per upstream hop

	// BudgetMs is the caller's remaining deadline budget in
	// milliseconds at the time the call was transmitted. Zero means
	// "no deadline" — both for peers that predate the field (their
	// 12-byte verifier decodes with BudgetMs 0) and for calls without
	// a budget, so the extension stays wire-compatible in both
	// directions.
	BudgetMs uint32
}

// EncodeVerf packs the context into a verifier OpaqueAuth. Old peers
// decode only the leading 12 bytes and ignore the budget word.
func (tc TraceContext) EncodeVerf() OpaqueAuth {
	var b sliceWriter
	e := xdr.NewEncoder(&b)
	e.Uint64(tc.ID)
	e.Uint32(tc.Hop)
	e.Uint32(tc.BudgetMs)
	return OpaqueAuth{Flavor: TraceVerfFlavor, Body: b}
}

// DecodeTraceVerf extracts a trace context from a call's verifier.
// The second result is false for any other flavor or a short body. A
// 12-byte body from a pre-budget peer decodes with BudgetMs 0.
func DecodeTraceVerf(a OpaqueAuth) (TraceContext, bool) {
	if a.Flavor != TraceVerfFlavor || len(a.Body) < 12 {
		return TraceContext{}, false
	}
	d := xdr.NewDecoder(bytesReader(a.Body))
	tc := TraceContext{ID: d.Uint64(), Hop: d.Uint32()}
	if len(a.Body) >= 16 {
		tc.BudgetMs = d.Uint32()
	}
	if d.Err() != nil {
		return TraceContext{}, false
	}
	return tc, true
}

// VerfCaller is implemented by transports that can attach an explicit
// call verifier — the hook proxies use to propagate trace contexts
// upstream. *Client implements it.
type VerfCaller interface {
	CallVerf(prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte) ([]byte, error)
}

// DeadlineVerfCaller extends VerfCaller with an absolute per-call
// deadline that caps retransmission: the transport must fail with an
// error satisfying errors.Is(err, context.DeadlineExceeded) rather
// than retry past it. *Client implements it.
type DeadlineVerfCaller interface {
	VerfCaller
	CallVerfDeadline(prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte, deadline time.Time) ([]byte, error)
}
