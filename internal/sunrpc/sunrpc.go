// Package sunrpc implements the ONC RPC version 2 protocol (RFC 5531)
// over stream transports with record marking (RFC 5531 §11). It provides
// a concurrent Client that multiplexes calls over one connection using
// XID matching, and a Server that dispatches registered programs.
//
// Only the features NFSv3 and MOUNT need are implemented: AUTH_NONE and
// AUTH_UNIX credential flavors, accepted replies with the standard
// accept states, and TCP-style record marking. This is the transport
// that the GVFS proxies interpose on: a proxy is simultaneously a
// sunrpc.Server (towards the client) and a sunrpc.Client (towards the
// next hop).
package sunrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gvfs/internal/bufpool"
	"gvfs/internal/xdr"
)

// RPC message constants from RFC 5531.
const (
	rpcVersion = 2

	msgCall  = 0
	msgReply = 1

	replyAccepted = 0
	replyDenied   = 1
)

// AcceptStat is the status of an accepted RPC reply.
type AcceptStat uint32

// Accept states (RFC 5531 §9).
const (
	Success      AcceptStat = 0
	ProgUnavail  AcceptStat = 1
	ProgMismatch AcceptStat = 2
	ProcUnavail  AcceptStat = 3
	GarbageArgs  AcceptStat = 4
	SystemErr    AcceptStat = 5
)

func (s AcceptStat) String() string {
	switch s {
	case Success:
		return "SUCCESS"
	case ProgUnavail:
		return "PROG_UNAVAIL"
	case ProgMismatch:
		return "PROG_MISMATCH"
	case ProcUnavail:
		return "PROC_UNAVAIL"
	case GarbageArgs:
		return "GARBAGE_ARGS"
	case SystemErr:
		return "SYSTEM_ERR"
	}
	return fmt.Sprintf("AcceptStat(%d)", uint32(s))
}

// Auth flavors.
const (
	AuthNone uint32 = 0
	AuthUnix uint32 = 1
)

// OpaqueAuth is an RPC authenticator: a flavor and opaque body.
type OpaqueAuth struct {
	Flavor uint32
	Body   []byte
}

// AuthNoneCred is the empty AUTH_NONE credential.
var AuthNoneCred = OpaqueAuth{Flavor: AuthNone}

// UnixCred is the AUTH_UNIX credential body (RFC 5531 appendix A).
type UnixCred struct {
	Stamp       uint32
	MachineName string
	UID, GID    uint32
	GIDs        []uint32
}

// Encode serializes the credential into an OpaqueAuth.
func (c UnixCred) Encode() OpaqueAuth {
	var b sliceWriter
	e := xdr.NewEncoder(&b)
	e.Uint32(c.Stamp)
	e.String(c.MachineName)
	e.Uint32(c.UID)
	e.Uint32(c.GID)
	e.Uint32(uint32(len(c.GIDs)))
	for _, g := range c.GIDs {
		e.Uint32(g)
	}
	return OpaqueAuth{Flavor: AuthUnix, Body: b}
}

// DecodeUnixCred parses an AUTH_UNIX opaque body.
func DecodeUnixCred(a OpaqueAuth) (UnixCred, error) {
	if a.Flavor != AuthUnix {
		return UnixCred{}, fmt.Errorf("sunrpc: flavor %d is not AUTH_UNIX", a.Flavor)
	}
	d := xdr.NewDecoder(bytesReader(a.Body))
	var c UnixCred
	c.Stamp = d.Uint32()
	c.MachineName = d.String()
	c.UID = d.Uint32()
	c.GID = d.Uint32()
	n := d.Uint32()
	if n > 16 {
		return UnixCred{}, errors.New("sunrpc: too many groups in AUTH_UNIX cred")
	}
	for i := uint32(0); i < n; i++ {
		c.GIDs = append(c.GIDs, d.Uint32())
	}
	if err := d.Err(); err != nil {
		return UnixCred{}, fmt.Errorf("sunrpc: bad AUTH_UNIX cred: %w", err)
	}
	return c, nil
}

// sliceWriter is a minimal append-based io.Writer.
type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

func bytesReader(p []byte) io.Reader { return &byteSliceReader{p: p} }

type byteSliceReader struct{ p []byte }

func (r *byteSliceReader) Read(out []byte) (int, error) {
	if len(r.p) == 0 {
		return 0, io.EOF
	}
	n := copy(out, r.p)
	r.p = r.p[n:]
	return n, nil
}

// maxRecord bounds a single RPC record. NFSv3 transfers are capped at
// 32 KB of payload; 1 MiB leaves ample room for headers and READDIR
// replies.
const maxRecord = 1 << 20

// writeRecord writes one record-marked RPC message. Header and payload
// go out in a single Write so the message crosses emulated links (and
// tunnel framing) as one unit, costing one propagation delay.
func writeRecord(w io.Writer, payload []byte) error {
	msg := make([]byte, 4+len(payload))
	// Last-fragment bit set: we always send whole messages as one fragment.
	binary.BigEndian.PutUint32(msg[:4], uint32(len(payload))|0x80000000)
	copy(msg[4:], payload)
	_, err := w.Write(msg)
	return err
}

// readRecord reads one record-marked RPC message, reassembling fragments.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	rec, err := readRecordInto(r, hdr[:], nil)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// readRecordPooled reads one record into a bufpool buffer; the caller
// owns the result and must bufpool.Put it when done. hdr is a 4-byte
// scratch slice the caller reuses across records so the record mark
// read doesn't allocate.
func readRecordPooled(r io.Reader, hdr []byte) ([]byte, error) {
	rec, err := readRecordInto(r, hdr, bufpool.Get)
	if err != nil && rec != nil {
		bufpool.Put(rec)
		rec = nil
	}
	return rec, err
}

// readRecordInto is the common record reader. alloc, when non-nil,
// supplies the record buffer (pooled); otherwise plain make is used.
// On error the partially-filled buffer is returned for the caller to
// release.
func readRecordInto(r io.Reader, hdr []byte, alloc func(int) []byte) ([]byte, error) {
	var rec []byte
	for {
		if _, err := io.ReadFull(r, hdr[:4]); err != nil {
			return rec, err
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		last := n&0x80000000 != 0
		n &^= 0x80000000
		if n > maxRecord || len(rec)+int(n) > maxRecord {
			return rec, fmt.Errorf("sunrpc: record too large (%d bytes)", n)
		}
		old := len(rec)
		need := old + int(n)
		switch {
		case rec == nil:
			if alloc != nil {
				rec = alloc(need)
			} else {
				rec = make([]byte, need)
			}
		case cap(rec) >= need:
			rec = rec[:need]
		default:
			// Multi-fragment growth (rare: we always send single
			// fragments; other implementations may not).
			var nb []byte
			if alloc != nil {
				nb = alloc(need)
			} else {
				nb = make([]byte, need)
			}
			copy(nb, rec)
			if alloc != nil {
				bufpool.Put(rec)
			}
			rec = nb
		}
		if _, err := io.ReadFull(r, rec[old:need]); err != nil {
			return rec, err
		}
		if last {
			return rec, nil
		}
	}
}

func encodeAuth(e *xdr.Encoder, a OpaqueAuth) {
	e.Uint32(a.Flavor)
	e.Opaque(a.Body)
}

func decodeAuth(d *xdr.Decoder) OpaqueAuth {
	return OpaqueAuth{Flavor: d.Uint32(), Body: d.Opaque()}
}

// marshalCall builds the wire form of a CALL message.
func marshalCall(xid, prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte) []byte {
	var b sliceWriter
	e := xdr.NewEncoder(&b)
	e.Uint32(xid)
	e.Uint32(msgCall)
	e.Uint32(rpcVersion)
	e.Uint32(prog)
	e.Uint32(vers)
	e.Uint32(proc)
	encodeAuth(e, cred)
	encodeAuth(e, verf)
	b = append(b, args...)
	return b
}

// authWireSize is the encoded size of an OpaqueAuth.
func authWireSize(a OpaqueAuth) int { return 8 + len(a.Body) + padTo4(len(a.Body)) }

// marshalCallRecord builds the record-marked wire form of a CALL into a
// bufpool buffer: a filled-in 4-byte record mark followed by the
// message, sized for a single conn.Write. The caller owns the buffer
// and must bufpool.Put it after its final write.
func marshalCallRecord(xid, prog, vers, proc uint32, cred, verf OpaqueAuth, args []byte) []byte {
	need := 4 + 6*4 + authWireSize(cred) + authWireSize(verf) + len(args)
	b := xdr.Builder{B: bufpool.Get(need)[:4]}
	b.Uint32(xid)
	b.Uint32(msgCall)
	b.Uint32(rpcVersion)
	b.Uint32(prog)
	b.Uint32(vers)
	b.Uint32(proc)
	b.Uint32(cred.Flavor)
	b.Opaque(cred.Body)
	b.Uint32(verf.Flavor)
	b.Opaque(verf.Body)
	msg := append(b.B, args...)
	binary.BigEndian.PutUint32(msg[:4], uint32(len(msg)-4)|0x80000000)
	return msg
}

// marshalAcceptedReply builds the wire form of an accepted REPLY.
func marshalAcceptedReply(xid uint32, stat AcceptStat, results []byte) []byte {
	var b sliceWriter
	e := xdr.NewEncoder(&b)
	e.Uint32(xid)
	e.Uint32(msgReply)
	e.Uint32(replyAccepted)
	encodeAuth(e, AuthNoneCred) // verifier
	e.Uint32(uint32(stat))
	b = append(b, results...)
	return b
}

// Call describes a received RPC call as seen by a Server handler.
type Call struct {
	XID        uint32
	Prog, Vers uint32
	Proc       uint32
	Cred       OpaqueAuth
	Verf       OpaqueAuth
	Args       []byte // raw XDR-encoded procedure arguments
	RemoteAddr net.Addr

	// Deadline, when nonzero, is the absolute instant by which the
	// caller still cares about a reply. Dispatch layers (the proxy's
	// QoS admission) set it from the propagated trace-verifier budget
	// and use it to shed calls that have already expired. The
	// transport itself does not enforce it.
	Deadline time.Time

	// ReplyPooled, when set by the handler, marks the returned results
	// slice as a bufpool buffer: the server releases it once the reply
	// has been copied into the outgoing record. The handler must not
	// touch the slice after HandleCall returns.
	ReplyPooled bool
}

// Handler processes calls for one (program, version). Results must be
// the raw XDR-encoded reply body; stat reports the RPC accept state.
// Handlers are invoked concurrently.
//
// Ownership: the Call and everything it references (Args, Cred.Body,
// Verf.Body alias the pooled request record) are only valid until
// HandleCall returns. A handler that needs any of it afterwards —
// including in goroutines it spawns — must copy.
type Handler interface {
	HandleCall(c *Call) (results []byte, stat AcceptStat)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(c *Call) ([]byte, AcceptStat)

// HandleCall calls f(c).
func (f HandlerFunc) HandleCall(c *Call) ([]byte, AcceptStat) { return f(c) }

type progVers struct{ prog, vers uint32 }

// Server serves ONC RPC programs on a stream listener.
type Server struct {
	mu        sync.Mutex
	handlers  map[progVers]Handler
	conns     map[net.Conn]struct{}
	listeners map[net.Listener]struct{}
	closed    bool
}

// NewServer returns an empty Server; register programs before serving.
func NewServer() *Server {
	return &Server{
		handlers:  make(map[progVers]Handler),
		conns:     make(map[net.Conn]struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
}

// Register installs h as the handler for (prog, vers).
func (s *Server) Register(prog, vers uint32, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[progVers{prog, vers}] = h
}

// Serve accepts connections from l until l is closed or Close is called.
// It always returns a non-nil error (net.ErrClosed after Close). The
// listener is adopted: Close closes it, so Serve cannot keep accepting
// (or stay blocked in Accept) on a closed server.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Close ran between Accept returning and this registration:
			// the connection must not outlive the server.
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close terminates all active connections and adopted listeners. It is
// idempotent and safe to call concurrently with Serve.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := s.conns
	s.conns = make(map[net.Conn]struct{})
	listeners := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		listeners = append(listeners, l)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for c := range conns {
		c.Close()
	}
}

// acceptedReplyHdrMax bounds the accepted-reply header we emit: xid +
// msg type + reply stat + AUTH_NONE verifier (flavor, zero length) +
// accept stat = 6 words.
const acceptedReplyHdrMax = 24

// callPool recycles Call structs between requests: a Call lives from
// parse to reply write, and handlers must not retain it.
var callPool = sync.Pool{New: func() any { return new(Call) }}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var wmu sync.Mutex // serializes record writes from concurrent handlers
	hdr := make([]byte, 4)
	for {
		rec, err := readRecordPooled(conn, hdr)
		if err != nil {
			return
		}
		call, err := parseCall(rec)
		if err != nil {
			bufpool.Put(rec)
			return // malformed stream: drop connection
		}
		call.RemoteAddr = conn.RemoteAddr()
		s.mu.Lock()
		h, ok := s.handlers[progVers{call.Prog, call.Vers}]
		s.mu.Unlock()
		go func() {
			var results []byte
			stat := ProgUnavail
			if ok {
				results, stat = h.HandleCall(call)
			}
			// Build record mark + reply header + results in one pooled
			// buffer so the message leaves in a single Write and the
			// handler's pooled results can be released immediately
			// after the copy.
			reply := bufpool.Get(4 + acceptedReplyHdrMax + len(results))[:4]
			b := xdr.Builder{B: reply}
			b.Uint32(call.XID)
			b.Uint32(msgReply)
			b.Uint32(replyAccepted)
			b.Uint32(AuthNone) // verifier flavor
			b.Uint32(0)        // verifier length
			b.Uint32(uint32(stat))
			reply = append(b.B, results...)
			if call.ReplyPooled {
				bufpool.Put(results)
			}
			binary.BigEndian.PutUint32(reply[:4], uint32(len(reply)-4)|0x80000000)
			wmu.Lock()
			_, werr := conn.Write(reply)
			wmu.Unlock()
			bufpool.Put(reply)
			*call = Call{}
			callPool.Put(call)
			bufpool.Put(rec)
			if werr != nil {
				conn.Close()
			}
		}()
	}
}

// parseCall decodes a CALL record. The returned Call comes from
// callPool, and its Cred/Verf bodies and Args alias rec: the caller
// releases both once the reply is on the wire.
func parseCall(rec []byte) (*Call, error) {
	var d xdr.Decoder
	d.ResetBytes(rec)
	c := callPool.Get().(*Call)
	*c = Call{}
	c.XID = d.Uint32()
	if mt := d.Uint32(); mt != msgCall {
		callPool.Put(c)
		return nil, fmt.Errorf("sunrpc: unexpected message type %d", mt)
	}
	if rv := d.Uint32(); rv != rpcVersion {
		callPool.Put(c)
		return nil, fmt.Errorf("sunrpc: unsupported RPC version %d", rv)
	}
	c.Prog = d.Uint32()
	c.Vers = d.Uint32()
	c.Proc = d.Uint32()
	c.Cred = OpaqueAuth{Flavor: d.Uint32(), Body: d.OpaqueRef()}
	c.Verf = OpaqueAuth{Flavor: d.Uint32(), Body: d.OpaqueRef()}
	if err := d.Err(); err != nil {
		callPool.Put(c)
		return nil, err
	}
	c.Args = d.Rest()
	return c, nil
}

func padTo4(n int) int {
	if r := n % 4; r != 0 {
		return 4 - r
	}
	return 0
}

// The Client implementation (per-call deadlines, reconnect with
// backoff, XID-based retransmission of idempotent calls) lives in
// client.go.
