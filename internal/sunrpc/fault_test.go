package sunrpc

// Fault-tolerance tests: per-call deadlines, reconnect + XID-based
// retransmission, terminal exhaustion, and the Server.Close races.

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func allIdempotent(prog, vers, proc uint32) bool { return true }

// serveEcho answers every call with its own args (SUCCESS).
func serveEcho(conn net.Conn) {
	defer conn.Close()
	for {
		rec, err := readRecord(conn)
		if err != nil {
			return
		}
		call, err := parseCall(rec)
		if err != nil {
			return
		}
		if err := writeRecord(conn, marshalAcceptedReply(call.XID, Success, call.Args)); err != nil {
			return
		}
	}
}

// flakyServer kills the first `kills` connections after reading one
// call (reply never sent), then serves echo normally.
func flakyServer(t *testing.T, kills int32) (addr string, accepts *atomic.Int32, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepts = new(atomic.Int32)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			n := accepts.Add(1)
			if n <= kills {
				go func() {
					readRecord(conn) // swallow the call, then hang up
					conn.Close()
				}()
				continue
			}
			go serveEcho(conn)
		}
	}()
	return l.Addr().String(), accepts, func() { l.Close() }
}

func TestCallTimeoutNoRetry(t *testing.T) {
	// A server that never replies: the per-call deadline must fire.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				readRecord(conn) // read and ignore forever
				select {}
			}()
		}
	}()
	c, err := DialWithOptions(l.Addr().String(), ClientOptions{CallTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(testProg, testVers, 7, AuthNoneCred, nil) // non-idempotent: single attempt
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v, want ~100ms", d)
	}
	if st := c.TransportStats(); st.Timeouts == 0 {
		t.Error("timeout not counted")
	}
}

func TestIdempotentRetransmitAfterReconnect(t *testing.T) {
	addr, accepts, stop := flakyServer(t, 1)
	defer stop()
	opts := ClientOptions{
		CallTimeout: 500 * time.Millisecond,
		Redial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		MaxRetries:  4,
		BackoffBase: 5 * time.Millisecond,
		Idempotent:  allIdempotent,
	}
	c, err := DialWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := []byte("retransmit me!!!")
	res, err := c.Call(testProg, testVers, 1, AuthNoneCred, payload)
	if err != nil {
		t.Fatalf("call across reconnect: %v", err)
	}
	if !bytes.Equal(res, payload) {
		t.Errorf("res = %q, want %q", res, payload)
	}
	if got := accepts.Load(); got < 2 {
		t.Errorf("server saw %d connections, want >= 2", got)
	}
	st := c.TransportStats()
	if st.Reconnects == 0 || st.Retries == 0 {
		t.Errorf("stats = %+v, want reconnects and retries > 0", st)
	}
}

func TestNonIdempotentNotRetransmitted(t *testing.T) {
	addr, accepts, stop := flakyServer(t, 1)
	defer stop()
	opts := ClientOptions{
		Redial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		MaxRetries:  4,
		BackoffBase: 5 * time.Millisecond,
		// Idempotent nil: nothing may be retransmitted.
	}
	c, err := DialWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(testProg, testVers, 7, AuthNoneCred, nil); err == nil {
		t.Fatal("non-idempotent call succeeded despite connection death")
	}
	// Give any (buggy) retransmission a moment to show up.
	time.Sleep(50 * time.Millisecond)
	if got := accepts.Load(); got != 1 {
		t.Errorf("server saw %d connections, want exactly 1", got)
	}
}

func TestRetriesExhaustedIsTerminal(t *testing.T) {
	addr, _, stop := flakyServer(t, 1000) // every connection dies
	defer stop()
	opts := ClientOptions{
		CallTimeout: 200 * time.Millisecond,
		Redial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Idempotent:  allIdempotent,
	}
	c, err := DialWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(testProg, testVers, 1, AuthNoneCred, []byte("x"))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

func TestDialFailureRetriesUntilServerUp(t *testing.T) {
	// The redial target comes up only after the first connection dies:
	// calls must ride the backoff loop to success.
	addr, _, stop := flakyServer(t, 1)
	defer stop()
	opts := ClientOptions{
		CallTimeout: 500 * time.Millisecond,
		Redial: func() (net.Conn, error) {
			return net.Dial("tcp", addr)
		},
		MaxRetries:  6,
		BackoffBase: 5 * time.Millisecond,
		Idempotent:  allIdempotent,
	}
	c, err := DialWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(testProg, testVers, 1, AuthNoneCred, []byte("hi")); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent call across reconnect: %v", err)
	}
}

func TestXIDsMonotonicAcrossReconnect(t *testing.T) {
	addr, _, stop := flakyServer(t, 1)
	defer stop()
	opts := ClientOptions{
		CallTimeout: 500 * time.Millisecond,
		Redial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		BackoffBase: 5 * time.Millisecond,
		Idempotent:  allIdempotent,
	}
	c, err := DialWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(testProg, testVers, 1, AuthNoneCred, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	c.mu.Lock()
	next := c.nextXID
	c.mu.Unlock()
	if next != 6 {
		t.Errorf("nextXID = %d after 5 calls, want 6 (monotonic across reconnects)", next)
	}
}

func TestCloseAbortsRetryLoop(t *testing.T) {
	addr, _, stop := flakyServer(t, 1000)
	defer stop()
	opts := ClientOptions{
		CallTimeout: 100 * time.Millisecond,
		Redial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		MaxRetries:  100,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  10 * time.Second,
		Idempotent:  allIdempotent,
	}
	c, err := DialWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(testProg, testVers, 1, AuthNoneCred, nil)
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("call succeeded against all-flaky server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call did not return after Close")
	}
}

// --- Server.Close hardening (regression tests) ---

func TestServerCloseIdempotent(t *testing.T) {
	s := NewServer()
	s.Close()
	s.Close() // must not panic or hang
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
}

func TestServerCloseUnblocksServe(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Register(testProg, testVers, HandlerFunc(echoHandler))
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	time.Sleep(20 * time.Millisecond)
	s.Close() // no external l.Close(): Close alone must unblock Serve
	select {
	case err := <-served:
		if err == nil {
			t.Error("Serve returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve still blocked in Accept after Close")
	}
}

func TestServeOnClosedServerReturns(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewServer()
	s.Close()
	if err := s.Serve(l); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve on closed server = %v, want net.ErrClosed", err)
	}
}

func TestCloseAcceptRaceDropsConnection(t *testing.T) {
	// Hammer the close-then-accept window: connections accepted while
	// (or after) the server closes must be terminated, never serviced
	// indefinitely.
	for i := 0; i < 20; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer()
		s.Register(testProg, testVers, HandlerFunc(echoHandler))
		go s.Serve(l)
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		go s.Close()
		// Whatever the interleaving, the connection must reach EOF
		// soon: either it was never registered, or Close killed it.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("read got data from a closing server")
		}
		conn.Close()
		l.Close()
	}
}
