// Package nfs3 implements the NFS version 3 protocol (RFC 1813) over
// ONC RPC: wire types, a server that dispatches to a pluggable Backend,
// and a client. This is the de-facto distributed file system standard
// that GVFS virtualizes — the GVFS proxies forward, cache and rewrite
// the RPC calls defined here without any modification to the client or
// server endpoints, exactly as the paper requires.
package nfs3

import (
	"fmt"

	"gvfs/internal/xdr"
)

// RPC program numbers.
const (
	Program = 100003 // NFS
	Version = 3

	MountProgram = 100005 // MOUNT
	MountVersion = 3
)

// NFSv3 procedure numbers (RFC 1813 §3).
const (
	ProcNull        = 0
	ProcGetattr     = 1
	ProcSetattr     = 2
	ProcLookup      = 3
	ProcAccess      = 4
	ProcReadlink    = 5
	ProcRead        = 6
	ProcWrite       = 7
	ProcCreate      = 8
	ProcMkdir       = 9
	ProcSymlink     = 10
	ProcMknod       = 11
	ProcRemove      = 12
	ProcRmdir       = 13
	ProcRename      = 14
	ProcLink        = 15
	ProcReaddir     = 16
	ProcReaddirplus = 17
	ProcFSStat      = 18
	ProcFSInfo      = 19
	ProcPathconf    = 20
	ProcCommit      = 21
)

// ProcName returns the conventional name of an NFSv3 procedure, for
// logging and metrics.
func ProcName(proc uint32) string {
	names := [...]string{
		"NULL", "GETATTR", "SETATTR", "LOOKUP", "ACCESS", "READLINK",
		"READ", "WRITE", "CREATE", "MKDIR", "SYMLINK", "MKNOD",
		"REMOVE", "RMDIR", "RENAME", "LINK", "READDIR", "READDIRPLUS",
		"FSSTAT", "FSINFO", "PATHCONF", "COMMIT",
	}
	if int(proc) < len(names) {
		return names[proc]
	}
	return fmt.Sprintf("PROC%d", proc)
}

// Status is an NFSv3 status code (nfsstat3).
type Status uint32

// NFSv3 status codes (subset used by this implementation).
const (
	OK             Status = 0
	ErrPerm        Status = 1
	ErrNoEnt       Status = 2
	ErrIO          Status = 5
	ErrAcces       Status = 13
	ErrExist       Status = 17
	ErrNotDir      Status = 20
	ErrIsDir       Status = 21
	ErrInval       Status = 22
	ErrFBig        Status = 27
	ErrNoSpc       Status = 28
	ErrRoFS        Status = 30
	ErrNameTooLong Status = 63
	ErrNotEmpty    Status = 66
	ErrStale       Status = 70
	ErrBadHandle   Status = 10001
	ErrNotSupp     Status = 10004
	ErrServerFault Status = 10006
	ErrJukebox     Status = 10008
)

func (s Status) String() string {
	switch s {
	case OK:
		return "NFS3_OK"
	case ErrPerm:
		return "NFS3ERR_PERM"
	case ErrNoEnt:
		return "NFS3ERR_NOENT"
	case ErrIO:
		return "NFS3ERR_IO"
	case ErrAcces:
		return "NFS3ERR_ACCES"
	case ErrExist:
		return "NFS3ERR_EXIST"
	case ErrNotDir:
		return "NFS3ERR_NOTDIR"
	case ErrIsDir:
		return "NFS3ERR_ISDIR"
	case ErrInval:
		return "NFS3ERR_INVAL"
	case ErrFBig:
		return "NFS3ERR_FBIG"
	case ErrNoSpc:
		return "NFS3ERR_NOSPC"
	case ErrRoFS:
		return "NFS3ERR_ROFS"
	case ErrNameTooLong:
		return "NFS3ERR_NAMETOOLONG"
	case ErrNotEmpty:
		return "NFS3ERR_NOTEMPTY"
	case ErrStale:
		return "NFS3ERR_STALE"
	case ErrBadHandle:
		return "NFS3ERR_BADHANDLE"
	case ErrNotSupp:
		return "NFS3ERR_NOTSUPP"
	case ErrServerFault:
		return "NFS3ERR_SERVERFAULT"
	case ErrJukebox:
		return "NFS3ERR_JUKEBOX"
	}
	return fmt.Sprintf("NFS3ERR(%d)", uint32(s))
}

// Error is an NFSv3 protocol error carrying a Status. Backends return
// *Error to select the status reported to clients; any other error maps
// to NFS3ERR_IO.
type Error struct {
	Status Status
	Op     string
}

func (e *Error) Error() string {
	if e.Op != "" {
		return "nfs3: " + e.Op + ": " + e.Status.String()
	}
	return "nfs3: " + e.Status.String()
}

// StatusOf extracts the NFS status from an error (OK for nil).
func StatusOf(err error) Status {
	if err == nil {
		return OK
	}
	if e, ok := err.(*Error); ok {
		return e.Status
	}
	return ErrIO
}

// FH is an NFSv3 file handle: opaque, up to 64 bytes.
type FH []byte

// MaxFHSize is the protocol's file handle size limit.
const MaxFHSize = 64

// Key returns the handle as a map key.
func (fh FH) Key() string { return string(fh) }

func (fh FH) String() string { return fmt.Sprintf("fh(%x)", []byte(fh)) }

// FileType is an NFSv3 ftype3.
type FileType uint32

// File types.
const (
	TypeReg  FileType = 1
	TypeDir  FileType = 2
	TypeBlk  FileType = 3
	TypeChr  FileType = 4
	TypeLnk  FileType = 5
	TypeSock FileType = 6
	TypeFifo FileType = 7
)

// Time is an NFSv3 nfstime3.
type Time struct {
	Sec  uint32
	Nsec uint32
}

// Less reports whether t is earlier than u.
func (t Time) Less(u Time) bool {
	return t.Sec < u.Sec || (t.Sec == u.Sec && t.Nsec < u.Nsec)
}

// Fattr is an NFSv3 fattr3: the full attributes of a file object.
type Fattr struct {
	Type                 FileType
	Mode                 uint32
	Nlink                uint32
	UID                  uint32
	GID                  uint32
	Size                 uint64
	Used                 uint64
	RdevMajor, RdevMinor uint32
	FSID                 uint64
	FileID               uint64
	Atime                Time
	Mtime                Time
	Ctime                Time
}

// Encode writes the fattr3 wire form.
func (a *Fattr) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(a.Type))
	e.Uint32(a.Mode)
	e.Uint32(a.Nlink)
	e.Uint32(a.UID)
	e.Uint32(a.GID)
	e.Uint64(a.Size)
	e.Uint64(a.Used)
	e.Uint32(a.RdevMajor)
	e.Uint32(a.RdevMinor)
	e.Uint64(a.FSID)
	e.Uint64(a.FileID)
	e.Uint32(a.Atime.Sec)
	e.Uint32(a.Atime.Nsec)
	e.Uint32(a.Mtime.Sec)
	e.Uint32(a.Mtime.Nsec)
	e.Uint32(a.Ctime.Sec)
	e.Uint32(a.Ctime.Nsec)
}

// FattrSize is the fixed encoded size of a fattr3 (21 words).
const FattrSize = 84

// FHSize bounds the encoded size of an nfs_fh3 (length word + up to
// 64 padded handle bytes, RFC 1813 NFS3_FHSIZE).
const FHSize = 4 + 64

// Append writes the fattr3 wire form through a Builder.
func (a *Fattr) Append(b *xdr.Builder) {
	b.Uint32(uint32(a.Type))
	b.Uint32(a.Mode)
	b.Uint32(a.Nlink)
	b.Uint32(a.UID)
	b.Uint32(a.GID)
	b.Uint64(a.Size)
	b.Uint64(a.Used)
	b.Uint32(a.RdevMajor)
	b.Uint32(a.RdevMinor)
	b.Uint64(a.FSID)
	b.Uint64(a.FileID)
	b.Uint32(a.Atime.Sec)
	b.Uint32(a.Atime.Nsec)
	b.Uint32(a.Mtime.Sec)
	b.Uint32(a.Mtime.Nsec)
	b.Uint32(a.Ctime.Sec)
	b.Uint32(a.Ctime.Nsec)
}

// DecodeFattr reads the fattr3 wire form.
func DecodeFattr(d *xdr.Decoder) Fattr {
	var a Fattr
	a.Type = FileType(d.Uint32())
	a.Mode = d.Uint32()
	a.Nlink = d.Uint32()
	a.UID = d.Uint32()
	a.GID = d.Uint32()
	a.Size = d.Uint64()
	a.Used = d.Uint64()
	a.RdevMajor = d.Uint32()
	a.RdevMinor = d.Uint32()
	a.FSID = d.Uint64()
	a.FileID = d.Uint64()
	a.Atime = Time{d.Uint32(), d.Uint32()}
	a.Mtime = Time{d.Uint32(), d.Uint32()}
	a.Ctime = Time{d.Uint32(), d.Uint32()}
	return a
}

// EncodePostOpAttr writes a post_op_attr (optional fattr3).
func EncodePostOpAttr(e *xdr.Encoder, a *Fattr) {
	if a == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	a.Encode(e)
}

// AppendPostOpAttr writes a post_op_attr through a Builder.
func AppendPostOpAttr(b *xdr.Builder, a *Fattr) {
	if a == nil {
		b.Bool(false)
		return
	}
	b.Bool(true)
	a.Append(b)
}

// DecodePostOpAttr reads a post_op_attr.
func DecodePostOpAttr(d *xdr.Decoder) *Fattr {
	if !d.Bool() {
		return nil
	}
	a := DecodeFattr(d)
	return &a
}

// WccAttr is the pre-operation attribute subset (wcc_attr).
type WccAttr struct {
	Size  uint64
	Mtime Time
	Ctime Time
}

// EncodePreOpAttr writes a pre_op_attr.
func EncodePreOpAttr(e *xdr.Encoder, a *WccAttr) {
	if a == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Uint64(a.Size)
	e.Uint32(a.Mtime.Sec)
	e.Uint32(a.Mtime.Nsec)
	e.Uint32(a.Ctime.Sec)
	e.Uint32(a.Ctime.Nsec)
}

// DecodePreOpAttr reads a pre_op_attr.
func DecodePreOpAttr(d *xdr.Decoder) *WccAttr {
	if !d.Bool() {
		return nil
	}
	return &WccAttr{
		Size:  d.Uint64(),
		Mtime: Time{d.Uint32(), d.Uint32()},
		Ctime: Time{d.Uint32(), d.Uint32()},
	}
}

// WccData is weak cache consistency data attached to modifying replies.
type WccData struct {
	Before *WccAttr
	After  *Fattr
}

// Encode writes the wcc_data wire form.
func (w *WccData) Encode(e *xdr.Encoder) {
	EncodePreOpAttr(e, w.Before)
	EncodePostOpAttr(e, w.After)
}

// Append writes the wcc_data wire form through a Builder.
func (w *WccData) Append(b *xdr.Builder) {
	if w.Before == nil {
		b.Bool(false)
	} else {
		b.Bool(true)
		b.Uint64(w.Before.Size)
		b.Uint32(w.Before.Mtime.Sec)
		b.Uint32(w.Before.Mtime.Nsec)
		b.Uint32(w.Before.Ctime.Sec)
		b.Uint32(w.Before.Ctime.Nsec)
	}
	AppendPostOpAttr(b, w.After)
}

// DecodeWccData reads a wcc_data.
func DecodeWccData(d *xdr.Decoder) WccData {
	return WccData{Before: DecodePreOpAttr(d), After: DecodePostOpAttr(d)}
}

// TimeHow selects how SETATTR updates a timestamp (time_how).
type TimeHow uint32

// time_how values.
const (
	DontChange  TimeHow = 0
	SetToServer TimeHow = 1
	SetToClient TimeHow = 2
)

// SetAttr is an NFSv3 sattr3: the attributes a client can set.
type SetAttr struct {
	Mode *uint32
	UID  *uint32
	GID  *uint32
	Size *uint64

	AtimeHow TimeHow
	Atime    Time // valid when AtimeHow == SetToClient
	MtimeHow TimeHow
	Mtime    Time
}

// Encode writes the sattr3 wire form.
func (s *SetAttr) Encode(e *xdr.Encoder) {
	encOptU32 := func(p *uint32) {
		if p == nil {
			e.Bool(false)
		} else {
			e.Bool(true)
			e.Uint32(*p)
		}
	}
	encOptU32(s.Mode)
	encOptU32(s.UID)
	encOptU32(s.GID)
	if s.Size == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Uint64(*s.Size)
	}
	e.Uint32(uint32(s.AtimeHow))
	if s.AtimeHow == SetToClient {
		e.Uint32(s.Atime.Sec)
		e.Uint32(s.Atime.Nsec)
	}
	e.Uint32(uint32(s.MtimeHow))
	if s.MtimeHow == SetToClient {
		e.Uint32(s.Mtime.Sec)
		e.Uint32(s.Mtime.Nsec)
	}
}

// DecodeSetAttr reads the sattr3 wire form.
func DecodeSetAttr(d *xdr.Decoder) SetAttr {
	var s SetAttr
	decOptU32 := func() *uint32 {
		if !d.Bool() {
			return nil
		}
		v := d.Uint32()
		return &v
	}
	s.Mode = decOptU32()
	s.UID = decOptU32()
	s.GID = decOptU32()
	if d.Bool() {
		v := d.Uint64()
		s.Size = &v
	}
	s.AtimeHow = TimeHow(d.Uint32())
	if s.AtimeHow == SetToClient {
		s.Atime = Time{d.Uint32(), d.Uint32()}
	}
	s.MtimeHow = TimeHow(d.Uint32())
	if s.MtimeHow == SetToClient {
		s.Mtime = Time{d.Uint32(), d.Uint32()}
	}
	return s
}

// ACCESS permission bits (RFC 1813 §3.3.4).
const (
	AccessRead    uint32 = 0x01
	AccessLookup  uint32 = 0x02
	AccessModify  uint32 = 0x04
	AccessExtend  uint32 = 0x08
	AccessDelete  uint32 = 0x10
	AccessExecute uint32 = 0x20
)

// Write stability levels (stable_how).
const (
	Unstable uint32 = 0
	DataSync uint32 = 1
	FileSync uint32 = 2
)

// CreateMode values (createmode3).
const (
	CreateUnchecked uint32 = 0
	CreateGuarded   uint32 = 1
	CreateExclusive uint32 = 2
)

// DirEntry is one directory entry as returned by READDIR/READDIRPLUS.
type DirEntry struct {
	FileID uint64
	Name   string
	Cookie uint64
	// Attr and Handle are populated by READDIRPLUS only.
	Attr   *Fattr
	Handle FH
}

// FSStatRes carries FSSTAT results (sizes in bytes, counts of files).
type FSStatRes struct {
	TotalBytes, FreeBytes, AvailBytes uint64
	TotalFiles, FreeFiles, AvailFiles uint64
	Invarsec                          uint32
}

// FSInfoRes carries FSINFO results: server transfer-size limits.
type FSInfoRes struct {
	RtMax, RtPref, RtMult uint32
	WtMax, WtPref, WtMult uint32
	DtPref                uint32
	MaxFileSize           uint64
	TimeDelta             Time
	Properties            uint32
}

// DefaultFSInfo reports the transfer sizes this implementation prefers:
// 32 KB maximum (the NFSv3-era protocol ceiling the paper cites) with
// 8 KB preferred.
func DefaultFSInfo() FSInfoRes {
	return FSInfoRes{
		RtMax: 32768, RtPref: 8192, RtMult: 512,
		WtMax: 32768, WtPref: 8192, WtMult: 512,
		DtPref:      8192,
		MaxFileSize: 1 << 62,
		TimeDelta:   Time{0, 1},
		Properties:  0x0008 | 0x0010, // FSF_HOMOGENEOUS | FSF_CANSETTIME
	}
}

// EncodeFH writes an nfs_fh3 (variable-length opaque handle).
func EncodeFH(e *xdr.Encoder, fh FH) { e.Opaque(fh) }

// DecodeFH reads an nfs_fh3.
func DecodeFH(d *xdr.Decoder) FH { return FH(d.Opaque()) }

// EncodePostOpFH writes a post_op_fh3.
func EncodePostOpFH(e *xdr.Encoder, fh FH) {
	if fh == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Opaque(fh)
}

// DecodePostOpFH reads a post_op_fh3.
func DecodePostOpFH(d *xdr.Decoder) FH {
	if !d.Bool() {
		return nil
	}
	return FH(d.Opaque())
}
