package nfs3_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"gvfs/internal/memfs"
	"gvfs/internal/mountd"
	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
)

// startStack runs an NFS+MOUNT server over memfs on loopback TCP and
// returns a connected client plus the export root handle.
func startStack(t testing.TB) (*nfs3.Client, nfs3.FH, *memfs.FS) {
	t.Helper()
	fs := memfs.New()
	root, _ := fs.Root()

	rpcSrv := sunrpc.NewServer()
	rpcSrv.Register(nfs3.Program, nfs3.Version, nfs3.NewServer(fs))
	md := mountd.NewServer()
	md.Export("/export", root)
	rpcSrv.Register(nfs3.MountProgram, nfs3.MountVersion, md)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpcSrv.Serve(l)
	t.Cleanup(func() { rpcSrv.Close(); l.Close() })

	rpc, err := sunrpc.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rpc.Close() })

	cred := sunrpc.UnixCred{UID: 1000, GID: 1000, MachineName: "test"}.Encode()
	fh, err := mountd.Mount(rpc, cred, "/export")
	if err != nil {
		t.Fatal(err)
	}
	return nfs3.NewClient(rpc, cred), fh, fs
}

func TestMountUnknownExport(t *testing.T) {
	_, _, _ = startStack(t) // ensure stack builds
	fs := memfs.New()
	root, _ := fs.Root()
	rpcSrv := sunrpc.NewServer()
	md := mountd.NewServer()
	md.Export("/export", root)
	rpcSrv.Register(nfs3.MountProgram, nfs3.MountVersion, md)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	go rpcSrv.Serve(l)
	defer rpcSrv.Close()
	rpc, _ := sunrpc.Dial(l.Addr().String())
	defer rpc.Close()
	if _, err := mountd.Mount(rpc, sunrpc.AuthNoneCred, "/nope"); err == nil {
		t.Error("mount of unknown export succeeded")
	}
}

func TestNullPing(t *testing.T) {
	c, _, _ := startStack(t)
	if err := c.Null(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndFileLifecycle(t *testing.T) {
	c, root, _ := startStack(t)

	fh, attr, err := c.Create(root, "state.vmss", nfs3.SetAttr{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if attr == nil || attr.Type != nfs3.TypeReg {
		t.Fatalf("attr = %+v", attr)
	}

	payload := bytes.Repeat([]byte("GVFS"), 1000)
	n, wattr, err := c.Write(fh, 0, payload, nfs3.FileSync)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint32(len(payload)) {
		t.Errorf("wrote %d, want %d", n, len(payload))
	}
	if wattr == nil || wattr.Size != uint64(len(payload)) {
		t.Errorf("post-write attr %+v", wattr)
	}

	data, eof, err := c.Read(fh, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !eof || !bytes.Equal(data, payload) {
		t.Errorf("read mismatch: %d bytes, eof=%v", len(data), eof)
	}

	// Read the tail.
	data, eof, err = c.Read(fh, 3000, 8192)
	if err != nil || !eof {
		t.Fatalf("tail read: err=%v eof=%v", err, eof)
	}
	if !bytes.Equal(data, payload[3000:]) {
		t.Error("tail read mismatch")
	}

	got, err := c.GetAttr(fh)
	if err != nil || got.Size != 4000 {
		t.Errorf("getattr: %+v err=%v", got, err)
	}

	if err := c.Remove(root, "state.vmss"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(root, "state.vmss"); nfs3.StatusOf(err) != nfs3.ErrNoEnt {
		t.Errorf("lookup after remove: %v", err)
	}
}

func TestEndToEndDirectories(t *testing.T) {
	c, root, _ := startStack(t)
	dir, _, err := c.Mkdir(root, "images", nfs3.SetAttr{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := c.Create(dir, fmt.Sprintf("img%02d.vmdk", i), nfs3.SetAttr{}, false); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.ReadDirAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Errorf("entries = %d, want 20", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("img%02d.vmdk", i)
		if e.Name != want {
			t.Errorf("entry %d = %q, want %q", i, e.Name, want)
		}
	}
}

func TestEndToEndSymlink(t *testing.T) {
	c, root, _ := startStack(t)
	fh, _, err := c.Symlink(root, "disk.vmdk", "../golden/disk.vmdk")
	if err != nil {
		t.Fatal(err)
	}
	target, err := c.ReadLink(fh)
	if err != nil || target != "../golden/disk.vmdk" {
		t.Errorf("target = %q err=%v", target, err)
	}
}

func TestEndToEndRename(t *testing.T) {
	c, root, _ := startStack(t)
	fh, _, _ := c.Create(root, "a", nfs3.SetAttr{}, false)
	c.Write(fh, 0, []byte("x"), nfs3.FileSync)
	if err := c.Rename(root, "a", root, "b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(root, "b"); err != nil {
		t.Error(err)
	}
}

func TestEndToEndSetAttr(t *testing.T) {
	c, root, _ := startStack(t)
	fh, _, _ := c.Create(root, "f", nfs3.SetAttr{}, false)
	c.Write(fh, 0, make([]byte, 100), nfs3.FileSync)
	sz := uint64(10)
	attr, err := c.SetAttr(fh, nfs3.SetAttr{Size: &sz})
	if err != nil {
		t.Fatal(err)
	}
	if attr == nil || attr.Size != 10 {
		t.Errorf("attr = %+v", attr)
	}
}

func TestEndToEndAccessFSInfo(t *testing.T) {
	c, root, _ := startStack(t)
	granted, err := c.Access(root, nfs3.AccessRead|nfs3.AccessLookup)
	if err != nil {
		t.Fatal(err)
	}
	if granted != nfs3.AccessRead|nfs3.AccessLookup {
		t.Errorf("granted = %#x", granted)
	}
	info, err := c.FSInfo(root)
	if err != nil {
		t.Fatal(err)
	}
	if info.RtMax != 32768 || info.WtPref != 8192 {
		t.Errorf("fsinfo = %+v", info)
	}
	st, err := c.FSStat(root)
	if err != nil || st.TotalBytes == 0 {
		t.Errorf("fsstat = %+v err=%v", st, err)
	}
}

func TestEndToEndCommit(t *testing.T) {
	c, root, _ := startStack(t)
	fh, _, _ := c.Create(root, "f", nfs3.SetAttr{}, false)
	c.Write(fh, 0, []byte("unstable"), nfs3.Unstable)
	if err := c.Commit(fh, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndErrors(t *testing.T) {
	c, root, _ := startStack(t)
	if _, _, err := c.Lookup(root, "missing"); nfs3.StatusOf(err) != nfs3.ErrNoEnt {
		t.Errorf("lookup: %v", err)
	}
	if _, err := c.GetAttr(nfs3.FH{9, 9, 9, 9, 9, 9, 9, 9}); nfs3.StatusOf(err) != nfs3.ErrStale {
		t.Errorf("getattr: %v", err)
	}
	if err := c.Remove(root, "missing"); nfs3.StatusOf(err) != nfs3.ErrNoEnt {
		t.Errorf("remove: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	c, root, _ := startStack(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("file%d", i)
			fh, _, err := c.Create(root, name, nfs3.SetAttr{}, false)
			if err != nil {
				t.Error(err)
				return
			}
			blob := bytes.Repeat([]byte{byte(i)}, 4096)
			for off := uint64(0); off < 64*1024; off += 4096 {
				if _, _, err := c.Write(fh, off, blob, nfs3.Unstable); err != nil {
					t.Error(err)
					return
				}
			}
			for off := uint64(0); off < 64*1024; off += 4096 {
				data, _, err := c.Read(fh, off, 4096)
				if err != nil || !bytes.Equal(data, blob) {
					t.Errorf("readback %s@%d: err=%v", name, off, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestEndToEndReadDirPlus(t *testing.T) {
	c, root, _ := startStack(t)
	dir, _, err := c.Mkdir(root, "plus", nfs3.SetAttr{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fh, _, err := c.Create(dir, fmt.Sprintf("f%d", i), nfs3.SetAttr{}, false)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(fh, 0, bytes.Repeat([]byte{byte(i)}, 100*(i+1)), nfs3.FileSync)
	}
	entries, eof, err := c.ReadDirPlus(dir, 0, 1<<16)
	if err != nil || !eof {
		t.Fatalf("readdirplus: eof=%v err=%v", eof, err)
	}
	if len(entries) != 5 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i, ent := range entries {
		if ent.Attr == nil || ent.Handle == nil {
			t.Errorf("entry %d missing attr/handle", i)
			continue
		}
		if ent.Attr.Size != uint64(100*(i+1)) {
			t.Errorf("entry %d size = %d", i, ent.Attr.Size)
		}
		// The returned handle is directly usable.
		data, _, err := c.Read(ent.Handle, 0, 10)
		if err != nil || len(data) == 0 {
			t.Errorf("read via readdirplus handle: %v", err)
		}
	}
}

func TestMknodAndLinkNotSupported(t *testing.T) {
	c, root, _ := startStack(t)
	// MKNOD: diropargs + type; encode minimal args via raw call.
	args := (&nfs3.LookupArgs{Dir: root, Name: "dev"}).Encode()
	withType := append(args, 0, 0, 0, 6) // NF3FIFO: no extra body
	res, err := c.RawCall(nfs3.ProcMknod, withType)
	if err != nil {
		t.Fatal(err)
	}
	if got := nfs3.Status(binaryBigEndianUint32(res[:4])); got != nfs3.ErrNotSupp {
		t.Errorf("mknod status = %v, want NOTSUPP", got)
	}
}

func binaryBigEndianUint32(p []byte) uint32 {
	return uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])
}

func TestWriteCarriesPreOpAttrs(t *testing.T) {
	c, root, _ := startStack(t)
	fh, _, _ := c.Create(root, "wcc", nfs3.SetAttr{}, false)
	c.Write(fh, 0, []byte("first"), nfs3.FileSync)
	// Issue a raw WRITE and inspect the wcc_data.
	args := nfs3.WriteArgs{FH: fh, Offset: 5, Count: 4, Stable: nfs3.FileSync, Data: []byte("more")}
	res, err := c.RawCall(nfs3.ProcWrite, args.Encode())
	if err != nil {
		t.Fatal(err)
	}
	r, err := nfs3.DecodeWriteRes(res)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != nfs3.OK {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Wcc.Before == nil {
		t.Fatal("WRITE reply missing pre-op attributes")
	}
	if r.Wcc.Before.Size != 5 {
		t.Errorf("pre-op size = %d, want 5", r.Wcc.Before.Size)
	}
	if r.Wcc.After == nil || r.Wcc.After.Size != 9 {
		t.Errorf("post-op attrs = %+v", r.Wcc.After)
	}
}
