package nfs3

import (
	"bytes"
	"errors"

	"gvfs/internal/xdr"
)

// This file defines typed argument/result codecs for the procedures the
// GVFS proxy interposes on. Server, client and proxy all share these so
// that a byte sequence produced by one is always parseable by the others.
//
// Two codec styles coexist:
//
//   - Encode()/Decode* functions allocate their output and copy all
//     payloads — safe anywhere, used off the hot path.
//   - AppendTo/DecodeInto/DecodeRef operate on caller-supplied buffers:
//     AppendTo builds the wire form into a (typically pooled) slice with
//     plain appends, DecodeInto fills a stack-allocated struct, and the
//     Ref variants alias bulk payloads (READ reply data, WRITE arg data)
//     into the input buffer instead of copying. Ref results follow the
//     input buffer's ownership rules: never retain them past the call
//     that supplied the buffer (see DESIGN.md §9).

// ErrShortReply reports a truncated or malformed XDR reply body.
var ErrShortReply = errors.New("nfs3: malformed message")

func finish(e *xdr.Encoder, buf *bytes.Buffer) []byte {
	if e.Err() != nil {
		// Encoding into a bytes.Buffer cannot fail; treat as a bug.
		panic(e.Err())
	}
	return buf.Bytes()
}

// GetattrArgs are the arguments of GETATTR (and the common single-handle
// argument shape shared by READLINK, FSSTAT, FSINFO and PATHCONF).
type GetattrArgs struct {
	FH FH
}

// Encode returns the XDR form of the arguments.
func (a *GetattrArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	return finish(e, &buf)
}

// DecodeGetattrArgs parses GETATTR-shaped arguments.
func DecodeGetattrArgs(p []byte) (*GetattrArgs, error) {
	var d xdr.Decoder
	d.ResetBytes(p)
	a := &GetattrArgs{FH: DecodeFH(&d)}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// LookupArgs are the arguments of LOOKUP (diropargs3).
type LookupArgs struct {
	Dir  FH
	Name string
}

// Encode returns the XDR form of the arguments.
func (a *LookupArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.Dir)
	e.String(a.Name)
	return finish(e, &buf)
}

// DecodeLookupArgs parses diropargs3.
func DecodeLookupArgs(p []byte) (*LookupArgs, error) {
	var d xdr.Decoder
	d.ResetBytes(p)
	a := &LookupArgs{Dir: DecodeFH(&d), Name: d.String()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// LookupRes is the LOOKUP result.
type LookupRes struct {
	Status  Status
	Object  FH     // OK only
	ObjAttr *Fattr // OK only
	DirAttr *Fattr
}

// Encode returns the XDR form of the result.
func (r *LookupRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		EncodeFH(e, r.Object)
		EncodePostOpAttr(e, r.ObjAttr)
	}
	EncodePostOpAttr(e, r.DirAttr)
	return finish(e, &buf)
}

// DecodeLookupRes parses a LOOKUP result.
func DecodeLookupRes(p []byte) (*LookupRes, error) {
	var d xdr.Decoder
	d.ResetBytes(p)
	r := &LookupRes{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Object = DecodeFH(&d)
		r.ObjAttr = DecodePostOpAttr(&d)
	}
	r.DirAttr = DecodePostOpAttr(&d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// GetattrRes is the GETATTR result.
type GetattrRes struct {
	Status Status
	Attr   Fattr // OK only
}

// Encode returns the XDR form of the result.
func (r *GetattrRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.Encode(e)
	}
	return finish(e, &buf)
}

// DecodeGetattrRes parses a GETATTR result.
func DecodeGetattrRes(p []byte) (*GetattrRes, error) {
	var d xdr.Decoder
	d.ResetBytes(p)
	r := &GetattrRes{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Attr = DecodeFattr(&d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// ReadArgs are the READ arguments.
type ReadArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Encode returns the XDR form of the arguments.
func (a *ReadArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	return finish(e, &buf)
}

// AppendTo appends the XDR form of the arguments to dst.
func (a *ReadArgs) AppendTo(dst []byte) []byte {
	b := xdr.Builder{B: dst}
	b.Opaque(a.FH)
	b.Uint64(a.Offset)
	b.Uint32(a.Count)
	return b.B
}

// DecodeInto fills a (typically stack-allocated) ReadArgs. The FH is
// copied, so the result does not alias p.
func (a *ReadArgs) DecodeInto(p []byte) error {
	var d xdr.Decoder
	d.ResetBytes(p)
	a.FH = DecodeFH(&d)
	a.Offset = d.Uint64()
	a.Count = d.Uint32()
	return d.Err()
}

// DecodeReadArgs parses READ arguments.
func DecodeReadArgs(p []byte) (*ReadArgs, error) {
	a := &ReadArgs{}
	if err := a.DecodeInto(p); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadRes is the READ result.
type ReadRes struct {
	Status Status
	Attr   *Fattr
	Count  uint32 // OK only
	EOF    bool   // OK only
	Data   []byte // OK only
}

// Encode returns the XDR form of the result.
func (r *ReadRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	EncodePostOpAttr(e, r.Attr)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Bool(r.EOF)
		e.Opaque(r.Data)
	}
	return finish(e, &buf)
}

// AppendTo appends the XDR form of the result to dst. With dst from
// bufpool sized by ReadResSize, the whole encode is allocation-free.
func (r *ReadRes) AppendTo(dst []byte) []byte {
	b := xdr.Builder{B: dst}
	b.Uint32(uint32(r.Status))
	AppendPostOpAttr(&b, r.Attr)
	if r.Status == OK {
		b.Uint32(r.Count)
		b.Bool(r.EOF)
		b.Opaque(r.Data)
	}
	return b.B
}

// ReadResSize bounds the encoded size of a READ result carrying n data
// bytes: status + post-op attr + count + eof + opaque header/padding.
func ReadResSize(n int) int { return 4 + 4 + FattrSize + 4 + 4 + 4 + n + 4 }

// DecodeReadRes parses a READ result, copying the data payload.
func DecodeReadRes(p []byte) (*ReadRes, error) {
	r := &ReadRes{}
	if err := r.decode(p, false); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeRefInto fills r with Data aliasing p: zero-copy parse for
// callers that consume the payload before p's owner releases it.
func (r *ReadRes) DecodeRefInto(p []byte) error { return r.decode(p, true) }

func (r *ReadRes) decode(p []byte, ref bool) error {
	var d xdr.Decoder
	d.ResetBytes(p)
	r.Status = Status(d.Uint32())
	r.Attr = DecodePostOpAttr(&d)
	if r.Status == OK {
		r.Count = d.Uint32()
		r.EOF = d.Bool()
		if ref {
			r.Data = d.OpaqueRef()
		} else {
			r.Data = d.Opaque()
		}
	}
	return d.Err()
}

// WriteArgs are the WRITE arguments.
type WriteArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
}

// Encode returns the XDR form of the arguments.
func (a *WriteArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	e.Uint32(a.Stable)
	e.Opaque(a.Data)
	return finish(e, &buf)
}

// AppendTo appends the XDR form of the arguments to dst.
func (a *WriteArgs) AppendTo(dst []byte) []byte {
	b := xdr.Builder{B: dst}
	b.Opaque(a.FH)
	b.Uint64(a.Offset)
	b.Uint32(a.Count)
	b.Uint32(a.Stable)
	b.Opaque(a.Data)
	return b.B
}

// WriteArgsSize bounds the encoded size of WRITE arguments carrying n
// data bytes.
func WriteArgsSize(n int) int { return 4 + FHSize + 4 + 8 + 4 + 4 + 4 + n + 4 }

// DecodeWriteArgs parses WRITE arguments, copying the data payload.
func DecodeWriteArgs(p []byte) (*WriteArgs, error) {
	a := &WriteArgs{}
	if err := a.decode(p, false); err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeRefInto fills a with Data aliasing p — the zero-copy parse for
// the proxy's WRITE path, where the payload is consumed (journaled and
// written to the cache bank) before the RPC record is released. The FH
// is still copied: handles outlive the call in cache and accounting
// keys.
func (a *WriteArgs) DecodeRefInto(p []byte) error { return a.decode(p, true) }

func (a *WriteArgs) decode(p []byte, ref bool) error {
	var d xdr.Decoder
	d.ResetBytes(p)
	a.FH = DecodeFH(&d)
	a.Offset = d.Uint64()
	a.Count = d.Uint32()
	a.Stable = d.Uint32()
	if ref {
		a.Data = d.OpaqueRef()
	} else {
		a.Data = d.Opaque()
	}
	return d.Err()
}

// WriteRes is the WRITE result.
type WriteRes struct {
	Status    Status
	Wcc       WccData
	Count     uint32 // OK only
	Committed uint32 // OK only
	Verf      [8]byte
}

// Encode returns the XDR form of the result.
func (r *WriteRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Uint32(r.Committed)
		e.FixedOpaque(r.Verf[:])
	}
	return finish(e, &buf)
}

// AppendTo appends the XDR form of the result to dst.
func (r *WriteRes) AppendTo(dst []byte) []byte {
	b := xdr.Builder{B: dst}
	b.Uint32(uint32(r.Status))
	r.Wcc.Append(&b)
	if r.Status == OK {
		b.Uint32(r.Count)
		b.Uint32(r.Committed)
		b.FixedOpaque(r.Verf[:])
	}
	return b.B
}

// WriteResSize bounds the encoded size of a WRITE result.
const WriteResSize = 4 + (4 + 24) + (4 + FattrSize) + 4 + 4 + 8

// DecodeWriteRes parses a WRITE result.
func DecodeWriteRes(p []byte) (*WriteRes, error) {
	r := &WriteRes{}
	if err := r.DecodeInto(p); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeInto fills a (typically stack-allocated) WriteRes.
func (r *WriteRes) DecodeInto(p []byte) error {
	var d xdr.Decoder
	d.ResetBytes(p)
	r.Status = Status(d.Uint32())
	r.Wcc = DecodeWccData(&d)
	if r.Status == OK {
		r.Count = d.Uint32()
		r.Committed = d.Uint32()
		d.FixedOpaque(r.Verf[:])
	}
	return d.Err()
}

// SetattrArgs are the SETATTR arguments (guard unsupported: guard.check
// is decoded and must be false).
type SetattrArgs struct {
	FH   FH
	Attr SetAttr
}

// Encode returns the XDR form of the arguments.
func (a *SetattrArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	a.Attr.Encode(e)
	e.Bool(false) // guard: no ctime check
	return finish(e, &buf)
}

// DecodeSetattrArgs parses SETATTR arguments.
func DecodeSetattrArgs(p []byte) (*SetattrArgs, error) {
	var d xdr.Decoder
	d.ResetBytes(p)
	a := &SetattrArgs{FH: DecodeFH(&d), Attr: DecodeSetAttr(&d)}
	if d.Bool() { // guard present: consume ctime
		d.Uint32()
		d.Uint32()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// CommitArgs are the COMMIT arguments.
type CommitArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Encode returns the XDR form of the arguments.
func (a *CommitArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	return finish(e, &buf)
}

// DecodeCommitArgs parses COMMIT arguments.
func DecodeCommitArgs(p []byte) (*CommitArgs, error) {
	var d xdr.Decoder
	d.ResetBytes(p)
	a := &CommitArgs{FH: DecodeFH(&d), Offset: d.Uint64(), Count: d.Uint32()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}
