package nfs3

import (
	"bytes"
	"errors"

	"gvfs/internal/xdr"
)

// This file defines typed argument/result codecs for the procedures the
// GVFS proxy interposes on. Server, client and proxy all share these so
// that a byte sequence produced by one is always parseable by the others.

// ErrShortReply reports a truncated or malformed XDR reply body.
var ErrShortReply = errors.New("nfs3: malformed message")

func finish(e *xdr.Encoder, buf *bytes.Buffer) []byte {
	if e.Err() != nil {
		// Encoding into a bytes.Buffer cannot fail; treat as a bug.
		panic(e.Err())
	}
	return buf.Bytes()
}

// GetattrArgs are the arguments of GETATTR (and the common single-handle
// argument shape shared by READLINK, FSSTAT, FSINFO and PATHCONF).
type GetattrArgs struct {
	FH FH
}

// Encode returns the XDR form of the arguments.
func (a *GetattrArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	return finish(e, &buf)
}

// DecodeGetattrArgs parses GETATTR-shaped arguments.
func DecodeGetattrArgs(p []byte) (*GetattrArgs, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	a := &GetattrArgs{FH: DecodeFH(d)}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// LookupArgs are the arguments of LOOKUP (diropargs3).
type LookupArgs struct {
	Dir  FH
	Name string
}

// Encode returns the XDR form of the arguments.
func (a *LookupArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.Dir)
	e.String(a.Name)
	return finish(e, &buf)
}

// DecodeLookupArgs parses diropargs3.
func DecodeLookupArgs(p []byte) (*LookupArgs, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	a := &LookupArgs{Dir: DecodeFH(d), Name: d.String()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// LookupRes is the LOOKUP result.
type LookupRes struct {
	Status  Status
	Object  FH     // OK only
	ObjAttr *Fattr // OK only
	DirAttr *Fattr
}

// Encode returns the XDR form of the result.
func (r *LookupRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		EncodeFH(e, r.Object)
		EncodePostOpAttr(e, r.ObjAttr)
	}
	EncodePostOpAttr(e, r.DirAttr)
	return finish(e, &buf)
}

// DecodeLookupRes parses a LOOKUP result.
func DecodeLookupRes(p []byte) (*LookupRes, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	r := &LookupRes{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Object = DecodeFH(d)
		r.ObjAttr = DecodePostOpAttr(d)
	}
	r.DirAttr = DecodePostOpAttr(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// GetattrRes is the GETATTR result.
type GetattrRes struct {
	Status Status
	Attr   Fattr // OK only
}

// Encode returns the XDR form of the result.
func (r *GetattrRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.Encode(e)
	}
	return finish(e, &buf)
}

// DecodeGetattrRes parses a GETATTR result.
func DecodeGetattrRes(p []byte) (*GetattrRes, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	r := &GetattrRes{Status: Status(d.Uint32())}
	if r.Status == OK {
		r.Attr = DecodeFattr(d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// ReadArgs are the READ arguments.
type ReadArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Encode returns the XDR form of the arguments.
func (a *ReadArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	return finish(e, &buf)
}

// DecodeReadArgs parses READ arguments.
func DecodeReadArgs(p []byte) (*ReadArgs, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	a := &ReadArgs{FH: DecodeFH(d), Offset: d.Uint64(), Count: d.Uint32()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadRes is the READ result.
type ReadRes struct {
	Status Status
	Attr   *Fattr
	Count  uint32 // OK only
	EOF    bool   // OK only
	Data   []byte // OK only
}

// Encode returns the XDR form of the result.
func (r *ReadRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	EncodePostOpAttr(e, r.Attr)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Bool(r.EOF)
		e.Opaque(r.Data)
	}
	return finish(e, &buf)
}

// DecodeReadRes parses a READ result.
func DecodeReadRes(p []byte) (*ReadRes, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	r := &ReadRes{Status: Status(d.Uint32())}
	r.Attr = DecodePostOpAttr(d)
	if r.Status == OK {
		r.Count = d.Uint32()
		r.EOF = d.Bool()
		r.Data = d.Opaque()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// WriteArgs are the WRITE arguments.
type WriteArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
}

// Encode returns the XDR form of the arguments.
func (a *WriteArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	e.Uint32(a.Stable)
	e.Opaque(a.Data)
	return finish(e, &buf)
}

// DecodeWriteArgs parses WRITE arguments.
func DecodeWriteArgs(p []byte) (*WriteArgs, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	a := &WriteArgs{FH: DecodeFH(d), Offset: d.Uint64(), Count: d.Uint32(), Stable: d.Uint32()}
	a.Data = d.Opaque()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// WriteRes is the WRITE result.
type WriteRes struct {
	Status    Status
	Wcc       WccData
	Count     uint32 // OK only
	Committed uint32 // OK only
	Verf      [8]byte
}

// Encode returns the XDR form of the result.
func (r *WriteRes) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Uint32(r.Committed)
		e.FixedOpaque(r.Verf[:])
	}
	return finish(e, &buf)
}

// DecodeWriteRes parses a WRITE result.
func DecodeWriteRes(p []byte) (*WriteRes, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	r := &WriteRes{Status: Status(d.Uint32())}
	r.Wcc = DecodeWccData(d)
	if r.Status == OK {
		r.Count = d.Uint32()
		r.Committed = d.Uint32()
		d.FixedOpaque(r.Verf[:])
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// SetattrArgs are the SETATTR arguments (guard unsupported: guard.check
// is decoded and must be false).
type SetattrArgs struct {
	FH   FH
	Attr SetAttr
}

// Encode returns the XDR form of the arguments.
func (a *SetattrArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	a.Attr.Encode(e)
	e.Bool(false) // guard: no ctime check
	return finish(e, &buf)
}

// DecodeSetattrArgs parses SETATTR arguments.
func DecodeSetattrArgs(p []byte) (*SetattrArgs, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	a := &SetattrArgs{FH: DecodeFH(d), Attr: DecodeSetAttr(d)}
	if d.Bool() { // guard present: consume ctime
		d.Uint32()
		d.Uint32()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// CommitArgs are the COMMIT arguments.
type CommitArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Encode returns the XDR form of the arguments.
func (a *CommitArgs) Encode() []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, a.FH)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	return finish(e, &buf)
}

// DecodeCommitArgs parses COMMIT arguments.
func DecodeCommitArgs(p []byte) (*CommitArgs, error) {
	d := xdr.NewDecoder(bytes.NewReader(p))
	a := &CommitArgs{FH: DecodeFH(d), Offset: d.Uint64(), Count: d.Uint32()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return a, nil
}
