package nfs3

// IsIdempotent reports whether an NFSv3 procedure can be safely
// retransmitted: repeating the call with the same arguments yields the
// same result and no additional side effects. This is the classic NFS
// retry rule — reads and attribute queries retransmit freely; anything
// that creates, removes or mutates state must not be blindly replayed
// (a retried REMOVE can turn success into ENOENT, a retried CREATE
// into EEXIST).
//
// WRITE is deliberately excluded even though overwriting the same
// bytes twice is idempotent in isolation: the GVFS proxy absorbs
// writes into its write-back cache and replays them itself, so
// transport-level retransmission is unnecessary and would race with
// interleaved writes to the same range.
func IsIdempotent(proc uint32) bool {
	switch proc {
	case ProcNull, ProcGetattr, ProcLookup, ProcAccess, ProcReadlink,
		ProcRead, ProcReaddir, ProcReaddirplus,
		ProcFSStat, ProcFSInfo, ProcPathconf:
		return true
	}
	return false
}

// RetrySafe classifies (program, procedure) pairs for transport-level
// retransmission: NFS procedures by IsIdempotent, and every MOUNT
// procedure (MNT/UMNT repeat harmlessly). Use it as the Idempotent
// hook of a sunrpc client carrying NFS traffic.
func RetrySafe(prog, vers, proc uint32) bool {
	switch prog {
	case Program:
		return IsIdempotent(proc)
	case MountProgram:
		return true
	}
	return false
}
