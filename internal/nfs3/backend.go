package nfs3

// Backend is the storage interface an NFSv3 server exports. Two
// implementations exist: memfs (in-memory, used heavily by tests and
// benchmarks) and osfs (backed by a directory on the host filesystem,
// used by the daemons). Backends return *Error to select a specific
// NFS status; any other error maps to NFS3ERR_IO.
//
// All methods must be safe for concurrent use: the RPC server invokes
// handlers from multiple goroutines.
type Backend interface {
	// Root returns the handle of the export root.
	Root() (FH, error)

	// GetAttr returns the attributes of the object.
	GetAttr(fh FH) (Fattr, error)

	// SetAttr applies the requested attribute changes and returns the
	// resulting attributes.
	SetAttr(fh FH, s SetAttr) (Fattr, error)

	// Lookup resolves name within directory dir.
	Lookup(dir FH, name string) (FH, Fattr, error)

	// ReadLink returns the target of a symbolic link.
	ReadLink(fh FH) (string, error)

	// Read returns up to count bytes at off, reporting EOF when the
	// read reaches or passes the end of the file.
	Read(fh FH, off uint64, count uint32) (data []byte, eof bool, err error)

	// Write stores data at off, extending the file if needed, and
	// returns the post-write attributes.
	Write(fh FH, off uint64, data []byte) (Fattr, error)

	// Create makes a regular file. With guarded set, an existing name
	// is an error; otherwise an existing regular file is truncated per
	// the requested attributes.
	Create(dir FH, name string, attr SetAttr, guarded bool) (FH, Fattr, error)

	// Mkdir makes a directory.
	Mkdir(dir FH, name string, attr SetAttr) (FH, Fattr, error)

	// Symlink makes a symbolic link to target.
	Symlink(dir FH, name, target string) (FH, Fattr, error)

	// Remove unlinks a non-directory.
	Remove(dir FH, name string) error

	// Rmdir removes an empty directory.
	Rmdir(dir FH, name string) error

	// Rename moves fromDir/fromName to toDir/toName, replacing any
	// existing non-directory target.
	Rename(fromDir FH, fromName string, toDir FH, toName string) error

	// ReadDir lists entries starting after cookie (0 = from start).
	// Implementations return at most as many entries as fit in
	// maxBytes of encoded reply and report eof when the listing is
	// complete.
	ReadDir(dir FH, cookie uint64, maxBytes uint32) ([]DirEntry, bool, error)

	// FSStat reports filesystem capacity and usage.
	FSStat(fh FH) (FSStatRes, error)

	// Commit forces buffered writes for the file to stable storage.
	Commit(fh FH) error
}
