package nfs3

import (
	"bytes"
	"fmt"

	"gvfs/internal/bufpool"
	"gvfs/internal/sunrpc"
	"gvfs/internal/xdr"
)

// Caller abstracts the RPC transport under a Client. *sunrpc.Client
// satisfies it; tests can substitute an in-process transport.
type Caller interface {
	Call(prog, vers, proc uint32, cred sunrpc.OpaqueAuth, args []byte) ([]byte, error)
}

// Client issues NFSv3 calls with a fixed credential over a Caller. It
// plays the role of the kernel NFS client in the paper's stack: the VM
// monitor's file accesses become Client calls, which flow through the
// GVFS proxy chain to the end server.
type Client struct {
	rpc  Caller
	cred sunrpc.OpaqueAuth
}

// NewClient wraps rpc with credential cred. A zero OpaqueAuth means
// AUTH_NONE.
func NewClient(rpc Caller, cred sunrpc.OpaqueAuth) *Client {
	return &Client{rpc: rpc, cred: cred}
}

// Cred returns the client's RPC credential.
func (c *Client) Cred() sunrpc.OpaqueAuth { return c.cred }

func (c *Client) call(proc uint32, args []byte) ([]byte, error) {
	return c.rpc.Call(Program, Version, proc, c.cred, args)
}

// statusErr converts a non-OK status into an *Error.
func statusErr(op string, st Status) error {
	if st == OK {
		return nil
	}
	return &Error{Status: st, Op: op}
}

// Null issues the NULL ping procedure.
func (c *Client) Null() error {
	_, err := c.call(ProcNull, nil)
	return err
}

// GetAttr fetches attributes for fh.
func (c *Client) GetAttr(fh FH) (Fattr, error) {
	res, err := c.call(ProcGetattr, (&GetattrArgs{FH: fh}).Encode())
	if err != nil {
		return Fattr{}, err
	}
	r, err := DecodeGetattrRes(res)
	if err != nil {
		return Fattr{}, err
	}
	return r.Attr, statusErr("getattr", r.Status)
}

// SetAttr applies attribute changes to fh.
func (c *Client) SetAttr(fh FH, attr SetAttr) (*Fattr, error) {
	res, err := c.call(ProcSetattr, (&SetattrArgs{FH: fh, Attr: attr}).Encode())
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	wcc := DecodeWccData(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return wcc.After, statusErr("setattr", st)
}

// Lookup resolves name in dir.
func (c *Client) Lookup(dir FH, name string) (FH, *Fattr, error) {
	res, err := c.call(ProcLookup, (&LookupArgs{Dir: dir, Name: name}).Encode())
	if err != nil {
		return nil, nil, err
	}
	r, err := DecodeLookupRes(res)
	if err != nil {
		return nil, nil, err
	}
	if r.Status != OK {
		return nil, nil, statusErr("lookup "+name, r.Status)
	}
	return r.Object, r.ObjAttr, nil
}

// Access checks access rights; returns the granted subset of want.
func (c *Client) Access(fh FH, want uint32) (uint32, error) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, fh)
	e.Uint32(want)
	res, err := c.call(ProcAccess, buf.Bytes())
	if err != nil {
		return 0, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodePostOpAttr(d)
	if st != OK {
		return 0, statusErr("access", st)
	}
	granted := d.Uint32()
	return granted, d.Err()
}

// ReadLink fetches the target of a symlink.
func (c *Client) ReadLink(fh FH) (string, error) {
	res, err := c.call(ProcReadlink, (&GetattrArgs{FH: fh}).Encode())
	if err != nil {
		return "", err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodePostOpAttr(d)
	if st != OK {
		return "", statusErr("readlink", st)
	}
	target := d.String()
	return target, d.Err()
}

// Read reads up to count bytes at off. The returned data aliases the
// reply buffer, which the caller owns.
func (c *Client) Read(fh FH, off uint64, count uint32) (data []byte, eof bool, err error) {
	args := ReadArgs{FH: fh, Offset: off, Count: count}
	buf := args.AppendTo(bufpool.Get(FHSize + 16)[:0])
	res, err := c.call(ProcRead, buf)
	bufpool.Put(buf)
	if err != nil {
		return nil, false, err
	}
	var r ReadRes
	if err := r.DecodeRefInto(res); err != nil {
		return nil, false, err
	}
	if r.Status != OK {
		return nil, false, statusErr("read", r.Status)
	}
	return r.Data, r.EOF, nil
}

// Write writes data at off with the given stability level, returning
// the server's count and post-op attributes when available.
func (c *Client) Write(fh FH, off uint64, data []byte, stable uint32) (uint32, *Fattr, error) {
	args := WriteArgs{FH: fh, Offset: off, Count: uint32(len(data)), Stable: stable, Data: data}
	buf := args.AppendTo(bufpool.Get(WriteArgsSize(len(data)))[:0])
	res, err := c.call(ProcWrite, buf)
	bufpool.Put(buf)
	if err != nil {
		return 0, nil, err
	}
	var r WriteRes
	if err := r.DecodeInto(res); err != nil {
		return 0, nil, err
	}
	if r.Status != OK {
		return 0, r.Wcc.After, statusErr("write", r.Status)
	}
	return r.Count, r.Wcc.After, nil
}

// Create makes a regular file in dir.
func (c *Client) Create(dir FH, name string, attr SetAttr, guarded bool) (FH, *Fattr, error) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, dir)
	e.String(name)
	if guarded {
		e.Uint32(CreateGuarded)
	} else {
		e.Uint32(CreateUnchecked)
	}
	attr.Encode(e)
	return c.newObjectCall(ProcCreate, "create "+name, buf.Bytes())
}

// Mkdir makes a directory in dir.
func (c *Client) Mkdir(dir FH, name string, attr SetAttr) (FH, *Fattr, error) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, dir)
	e.String(name)
	attr.Encode(e)
	return c.newObjectCall(ProcMkdir, "mkdir "+name, buf.Bytes())
}

// Symlink makes a symbolic link dir/name -> target.
func (c *Client) Symlink(dir FH, name, target string) (FH, *Fattr, error) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, dir)
	e.String(name)
	(&SetAttr{}).Encode(e)
	e.String(target)
	return c.newObjectCall(ProcSymlink, "symlink "+name, buf.Bytes())
}

func (c *Client) newObjectCall(proc uint32, op string, args []byte) (FH, *Fattr, error) {
	res, err := c.call(proc, args)
	if err != nil {
		return nil, nil, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	if st != OK {
		return nil, nil, statusErr(op, st)
	}
	fh := DecodePostOpFH(d)
	attr := DecodePostOpAttr(d)
	DecodeWccData(d)
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	if fh == nil {
		return nil, nil, fmt.Errorf("nfs3: %s: server returned no handle", op)
	}
	return fh, attr, nil
}

// Remove unlinks dir/name.
func (c *Client) Remove(dir FH, name string) error {
	return c.dirOpCall(ProcRemove, "remove "+name, dir, name)
}

// Rmdir removes the directory dir/name.
func (c *Client) Rmdir(dir FH, name string) error {
	return c.dirOpCall(ProcRmdir, "rmdir "+name, dir, name)
}

func (c *Client) dirOpCall(proc uint32, op string, dir FH, name string) error {
	res, err := c.call(proc, (&LookupArgs{Dir: dir, Name: name}).Encode())
	if err != nil {
		return err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodeWccData(d)
	if err := d.Err(); err != nil {
		return err
	}
	return statusErr(op, st)
}

// Rename moves fromDir/fromName to toDir/toName.
func (c *Client) Rename(fromDir FH, fromName string, toDir FH, toName string) error {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, fromDir)
	e.String(fromName)
	EncodeFH(e, toDir)
	e.String(toName)
	res, err := c.call(ProcRename, buf.Bytes())
	if err != nil {
		return err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodeWccData(d)
	DecodeWccData(d)
	if err := d.Err(); err != nil {
		return err
	}
	return statusErr("rename", st)
}

// ReadDir lists one batch of directory entries starting after cookie.
func (c *Client) ReadDir(dir FH, cookie uint64, count uint32) ([]DirEntry, bool, error) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, dir)
	e.Uint64(cookie)
	var verf [8]byte
	e.FixedOpaque(verf[:])
	e.Uint32(count)
	res, err := c.call(ProcReaddir, buf.Bytes())
	if err != nil {
		return nil, false, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodePostOpAttr(d)
	if st != OK {
		return nil, false, statusErr("readdir", st)
	}
	d.FixedOpaque(verf[:])
	var entries []DirEntry
	for d.Bool() {
		ent := DirEntry{FileID: d.Uint64(), Name: d.String(), Cookie: d.Uint64()}
		if d.Err() != nil {
			return nil, false, d.Err()
		}
		entries = append(entries, ent)
	}
	eof := d.Bool()
	return entries, eof, d.Err()
}

// ReadDirAll lists the complete contents of a directory.
func (c *Client) ReadDirAll(dir FH) ([]DirEntry, error) {
	var all []DirEntry
	var cookie uint64
	for {
		batch, eof, err := c.ReadDir(dir, cookie, 8192)
		if err != nil {
			return nil, err
		}
		all = append(all, batch...)
		if eof || len(batch) == 0 {
			return all, nil
		}
		cookie = batch[len(batch)-1].Cookie
	}
}

// FSStat reports filesystem usage for the filesystem containing fh.
func (c *Client) FSStat(fh FH) (FSStatRes, error) {
	res, err := c.call(ProcFSStat, (&GetattrArgs{FH: fh}).Encode())
	if err != nil {
		return FSStatRes{}, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodePostOpAttr(d)
	if st != OK {
		return FSStatRes{}, statusErr("fsstat", st)
	}
	out := FSStatRes{
		TotalBytes: d.Uint64(), FreeBytes: d.Uint64(), AvailBytes: d.Uint64(),
		TotalFiles: d.Uint64(), FreeFiles: d.Uint64(), AvailFiles: d.Uint64(),
		Invarsec: d.Uint32(),
	}
	return out, d.Err()
}

// FSInfo fetches the server's transfer-size limits.
func (c *Client) FSInfo(fh FH) (FSInfoRes, error) {
	res, err := c.call(ProcFSInfo, (&GetattrArgs{FH: fh}).Encode())
	if err != nil {
		return FSInfoRes{}, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodePostOpAttr(d)
	if st != OK {
		return FSInfoRes{}, statusErr("fsinfo", st)
	}
	out := FSInfoRes{
		RtMax: d.Uint32(), RtPref: d.Uint32(), RtMult: d.Uint32(),
		WtMax: d.Uint32(), WtPref: d.Uint32(), WtMult: d.Uint32(),
		DtPref:      d.Uint32(),
		MaxFileSize: d.Uint64(),
		TimeDelta:   Time{d.Uint32(), d.Uint32()},
		Properties:  d.Uint32(),
	}
	return out, d.Err()
}

// Commit flushes unstable writes in [off, off+count) to stable storage.
func (c *Client) Commit(fh FH, off uint64, count uint32) error {
	res, err := c.call(ProcCommit, (&CommitArgs{FH: fh, Offset: off, Count: count}).Encode())
	if err != nil {
		return err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodeWccData(d)
	if err := d.Err(); err != nil {
		return err
	}
	return statusErr("commit", st)
}

// ReadDirPlus lists one batch of directory entries with attributes and
// handles (READDIRPLUS), saving the per-entry LOOKUP round trips that
// plain READDIR requires.
func (c *Client) ReadDirPlus(dir FH, cookie uint64, maxCount uint32) ([]DirEntry, bool, error) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	EncodeFH(e, dir)
	e.Uint64(cookie)
	var verf [8]byte
	e.FixedOpaque(verf[:])
	e.Uint32(maxCount / 4) // dircount: name-data budget
	e.Uint32(maxCount)     // maxcount: full reply budget
	res, err := c.call(ProcReaddirplus, buf.Bytes())
	if err != nil {
		return nil, false, err
	}
	d := xdr.NewDecoder(bytes.NewReader(res))
	st := Status(d.Uint32())
	DecodePostOpAttr(d)
	if st != OK {
		return nil, false, statusErr("readdirplus", st)
	}
	d.FixedOpaque(verf[:])
	var entries []DirEntry
	for d.Bool() {
		ent := DirEntry{FileID: d.Uint64(), Name: d.String(), Cookie: d.Uint64()}
		ent.Attr = DecodePostOpAttr(d)
		ent.Handle = DecodePostOpFH(d)
		if d.Err() != nil {
			return nil, false, d.Err()
		}
		entries = append(entries, ent)
	}
	eof := d.Bool()
	return entries, eof, d.Err()
}

// RawCall issues an arbitrary NFS procedure with the client's
// credential, for callers that marshal their own arguments.
func (c *Client) RawCall(proc uint32, args []byte) ([]byte, error) {
	return c.call(proc, args)
}
