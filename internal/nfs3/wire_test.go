package nfs3

import (
	"bytes"
	"testing"
	"testing/quick"

	"gvfs/internal/xdr"
)

func TestReadArgsRoundTrip(t *testing.T) {
	in := ReadArgs{FH: FH{1, 2, 3, 4}, Offset: 1 << 33, Count: 8192}
	out, err := DecodeReadArgs(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.FH, in.FH) || out.Offset != in.Offset || out.Count != in.Count {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestWriteArgsRoundTrip(t *testing.T) {
	in := WriteArgs{FH: FH{9, 9}, Offset: 4096, Count: 5, Stable: FileSync, Data: []byte("hello")}
	out, err := DecodeWriteArgs(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Data, in.Data) || out.Offset != in.Offset || out.Stable != in.Stable {
		t.Errorf("got %+v", out)
	}
}

func TestReadResRoundTripOK(t *testing.T) {
	attr := Fattr{Type: TypeReg, Size: 100, FileID: 42}
	in := ReadRes{Status: OK, Attr: &attr, Count: 3, EOF: true, Data: []byte{7, 8, 9}}
	out, err := DecodeReadRes(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || !out.EOF || !bytes.Equal(out.Data, in.Data) {
		t.Errorf("got %+v", out)
	}
	if out.Attr == nil || out.Attr.FileID != 42 {
		t.Errorf("attr = %+v", out.Attr)
	}
}

func TestReadResRoundTripError(t *testing.T) {
	in := ReadRes{Status: ErrStale}
	out, err := DecodeReadRes(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != ErrStale || out.Data != nil || out.Attr != nil {
		t.Errorf("got %+v", out)
	}
}

func TestWriteResRoundTrip(t *testing.T) {
	attr := Fattr{Size: 1 << 20}
	in := WriteRes{Status: OK, Wcc: WccData{After: &attr}, Count: 8192, Committed: DataSync, Verf: WriteVerf}
	out, err := DecodeWriteRes(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Count != 8192 || out.Committed != DataSync || out.Verf != WriteVerf {
		t.Errorf("got %+v", out)
	}
	if out.Wcc.After == nil || out.Wcc.After.Size != 1<<20 {
		t.Errorf("wcc = %+v", out.Wcc)
	}
}

func TestLookupRoundTrip(t *testing.T) {
	attr := Fattr{Type: TypeDir, FileID: 7}
	in := LookupRes{Status: OK, Object: FH{5, 5, 5}, ObjAttr: &attr, DirAttr: nil}
	out, err := DecodeLookupRes(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Object, in.Object) || out.ObjAttr.FileID != 7 || out.DirAttr != nil {
		t.Errorf("got %+v", out)
	}
}

func TestLookupArgsRoundTrip(t *testing.T) {
	in := LookupArgs{Dir: FH{1}, Name: "vm.vmdk"}
	out, err := DecodeLookupArgs(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "vm.vmdk" || !bytes.Equal(out.Dir, in.Dir) {
		t.Errorf("got %+v", out)
	}
}

func TestGetattrResRoundTrip(t *testing.T) {
	in := GetattrRes{Status: OK, Attr: Fattr{Type: TypeReg, Mode: 0644, Size: 320 << 20, FileID: 3,
		Atime: Time{1, 2}, Mtime: Time{3, 4}, Ctime: Time{5, 6}}}
	out, err := DecodeGetattrRes(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *out != in {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestSetattrArgsRoundTrip(t *testing.T) {
	mode := uint32(0600)
	size := uint64(1 << 30)
	in := SetattrArgs{FH: FH{8}, Attr: SetAttr{Mode: &mode, Size: &size,
		MtimeHow: SetToClient, Mtime: Time{100, 200}}}
	out, err := DecodeSetattrArgs(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *out.Attr.Mode != 0600 || *out.Attr.Size != 1<<30 {
		t.Errorf("got %+v", out.Attr)
	}
	if out.Attr.MtimeHow != SetToClient || out.Attr.Mtime != (Time{100, 200}) {
		t.Errorf("mtime: %+v", out.Attr)
	}
	if out.Attr.UID != nil || out.Attr.AtimeHow != DontChange {
		t.Errorf("unexpected fields set: %+v", out.Attr)
	}
}

func TestCommitArgsRoundTrip(t *testing.T) {
	in := CommitArgs{FH: FH{1, 2}, Offset: 99, Count: 100}
	out, err := DecodeCommitArgs(in.Encode())
	if err != nil || *&out.Offset != 99 || out.Count != 100 {
		t.Errorf("got %+v err=%v", out, err)
	}
}

func TestFattrFullRoundTrip(t *testing.T) {
	in := Fattr{
		Type: TypeLnk, Mode: 0777, Nlink: 3, UID: 500, GID: 501,
		Size: 123, Used: 456, RdevMajor: 8, RdevMinor: 1,
		FSID: 0xdead, FileID: 0xbeef,
		Atime: Time{10, 11}, Mtime: Time{12, 13}, Ctime: Time{14, 15},
	}
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	in.Encode(e)
	d := xdr.NewDecoder(&buf)
	out := DecodeFattr(d)
	if d.Err() != nil || out != in {
		t.Errorf("got %+v err=%v", out, d.Err())
	}
}

func TestQuickReadArgsRoundTrip(t *testing.T) {
	f := func(fh []byte, off uint64, count uint32) bool {
		if len(fh) > MaxFHSize {
			fh = fh[:MaxFHSize]
		}
		in := ReadArgs{FH: fh, Offset: off, Count: count}
		out, err := DecodeReadArgs(in.Encode())
		return err == nil && bytes.Equal(out.FH, fh) && out.Offset == off && out.Count == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWriteArgsRoundTrip(t *testing.T) {
	f := func(fh, data []byte, off uint64) bool {
		if len(fh) > MaxFHSize {
			fh = fh[:MaxFHSize]
		}
		in := WriteArgs{FH: fh, Offset: off, Count: uint32(len(data)), Stable: Unstable, Data: data}
		out, err := DecodeWriteArgs(in.Encode())
		return err == nil && bytes.Equal(out.Data, data) && out.Offset == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		OK:            "NFS3_OK",
		ErrNoEnt:      "NFS3ERR_NOENT",
		ErrStale:      "NFS3ERR_STALE",
		Status(12345): "NFS3ERR(12345)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestProcNames(t *testing.T) {
	if ProcName(ProcRead) != "READ" || ProcName(ProcWrite) != "WRITE" {
		t.Error("basic proc names wrong")
	}
	if ProcName(99) != "PROC99" {
		t.Errorf("unknown proc name = %q", ProcName(99))
	}
}

func TestStatusOf(t *testing.T) {
	if StatusOf(nil) != OK {
		t.Error("nil should be OK")
	}
	if StatusOf(&Error{Status: ErrAcces}) != ErrAcces {
		t.Error("typed error lost")
	}
	if StatusOf(bytes.ErrTooLarge) != ErrIO {
		t.Error("foreign error should map to EIO")
	}
}
