package nfs3

import (
	"bytes"
	"sync/atomic"

	"gvfs/internal/sunrpc"
	"gvfs/internal/xdr"
)

// WriteVerf is this server instance's write/commit verifier. NFSv3 uses
// it to let clients detect server reboots; a process-constant value is
// sufficient here.
var WriteVerf = [8]byte{'g', 'v', 'f', 's', 'n', 'f', 's', '3'}

// ServerStats counts RPCs processed by a Server, one counter per
// procedure. Counters are updated atomically and may be read while the
// server is running.
type ServerStats struct {
	Calls [22]atomic.Uint64
}

// Total returns the total number of calls across all procedures.
func (s *ServerStats) Total() uint64 {
	var t uint64
	for i := range s.Calls {
		t += s.Calls[i].Load()
	}
	return t
}

// Server dispatches NFSv3 RPC calls to a Backend. It implements
// sunrpc.Handler; register it with a sunrpc.Server under
// (nfs3.Program, nfs3.Version).
type Server struct {
	backend Backend
	stats   ServerStats
}

// NewServer returns a Server exporting backend.
func NewServer(backend Backend) *Server { return &Server{backend: backend} }

// Stats exposes the server's RPC counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// HandleCall implements sunrpc.Handler.
func (s *Server) HandleCall(c *sunrpc.Call) ([]byte, sunrpc.AcceptStat) {
	if c.Proc < uint32(len(s.stats.Calls)) {
		s.stats.Calls[c.Proc].Add(1)
	}
	switch c.Proc {
	case ProcNull:
		return nil, sunrpc.Success
	case ProcGetattr:
		return s.getattr(c.Args)
	case ProcSetattr:
		return s.setattr(c.Args)
	case ProcLookup:
		return s.lookup(c.Args)
	case ProcAccess:
		return s.access(c.Args)
	case ProcReadlink:
		return s.readlink(c.Args)
	case ProcRead:
		return s.read(c.Args)
	case ProcWrite:
		return s.write(c.Args)
	case ProcCreate:
		return s.create(c.Args)
	case ProcMkdir:
		return s.mkdir(c.Args)
	case ProcSymlink:
		return s.symlink(c.Args)
	case ProcRemove:
		return s.remove(c.Args)
	case ProcRmdir:
		return s.rmdir(c.Args)
	case ProcRename:
		return s.rename(c.Args)
	case ProcReaddir:
		return s.readdir(c.Args)
	case ProcReaddirplus:
		return s.readdirplus(c.Args)
	case ProcFSStat:
		return s.fsstat(c.Args)
	case ProcFSInfo:
		return s.fsinfo(c.Args)
	case ProcPathconf:
		return s.pathconf(c.Args)
	case ProcCommit:
		return s.commit(c.Args)
	case ProcMknod, ProcLink:
		// Device nodes and hard links are not needed for VM state;
		// answer NFS3ERR_NOTSUPP as period servers did, rather than
		// rejecting at the RPC layer.
		return s.notSupported(c.Proc, c.Args)
	}
	return nil, sunrpc.ProcUnavail
}

// notSupported encodes the proper NOTSUPP reply shape for MKNOD (new
// object reply) and LINK (post_op_attr + wcc_data).
func (s *Server) notSupported(proc uint32, args []byte) ([]byte, sunrpc.AcceptStat) {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(ErrNotSupp))
	switch proc {
	case ProcMknod:
		// MKNOD3resfail: wcc_data on the directory.
		(&WccData{}).Encode(e)
	case ProcLink:
		// LINK3resfail: post_op_attr + wcc_data.
		EncodePostOpAttr(e, nil)
		(&WccData{}).Encode(e)
	}
	return buf.Bytes(), sunrpc.Success
}

// attrOf fetches attributes, returning nil on failure (post_op_attr is
// optional on the wire).
func (s *Server) attrOf(fh FH) *Fattr {
	a, err := s.backend.GetAttr(fh)
	if err != nil {
		return nil
	}
	return &a
}

// preOf captures pre-operation attributes for wcc_data, letting
// clients validate their caches across modifying operations.
func (s *Server) preOf(fh FH) *WccAttr {
	a, err := s.backend.GetAttr(fh)
	if err != nil {
		return nil
	}
	return &WccAttr{Size: a.Size, Mtime: a.Mtime, Ctime: a.Ctime}
}

func (s *Server) getattr(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeGetattrArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	attr, berr := s.backend.GetAttr(a.FH)
	res := GetattrRes{Status: StatusOf(berr), Attr: attr}
	return res.Encode(), sunrpc.Success
}

func (s *Server) setattr(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeSetattrArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	before := s.preOf(a.FH)
	attr, berr := s.backend.SetAttr(a.FH, a.Attr)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	wcc := WccData{Before: before}
	if berr == nil {
		wcc.After = &attr
	} else {
		wcc.After = s.attrOf(a.FH)
	}
	wcc.Encode(e)
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) lookup(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeLookupArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	fh, attr, berr := s.backend.Lookup(a.Dir, a.Name)
	res := LookupRes{Status: StatusOf(berr), DirAttr: s.attrOf(a.Dir)}
	if berr == nil {
		res.Object = fh
		res.ObjAttr = &attr
	}
	return res.Encode(), sunrpc.Success
}

func (s *Server) access(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	fh := DecodeFH(d)
	want := d.Uint32()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	attr, berr := s.backend.GetAttr(fh)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	if berr != nil {
		EncodePostOpAttr(e, nil)
		return buf.Bytes(), sunrpc.Success
	}
	EncodePostOpAttr(e, &attr)
	// Access control is enforced by the GVFS proxy layer (identity
	// mapping); the end server grants whatever was requested.
	e.Uint32(want)
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) readlink(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeGetattrArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	target, berr := s.backend.ReadLink(a.FH)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	EncodePostOpAttr(e, s.attrOf(a.FH))
	if berr == nil {
		e.String(target)
	}
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) read(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeReadArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	data, eof, berr := s.backend.Read(a.FH, a.Offset, a.Count)
	res := ReadRes{Status: StatusOf(berr), Attr: s.attrOf(a.FH)}
	if berr == nil {
		res.Count = uint32(len(data))
		res.EOF = eof
		res.Data = data
	}
	return res.Encode(), sunrpc.Success
}

func (s *Server) write(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeWriteArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	if uint32(len(a.Data)) > a.Count {
		a.Data = a.Data[:a.Count]
	}
	before := s.preOf(a.FH)
	attr, berr := s.backend.Write(a.FH, a.Offset, a.Data)
	res := WriteRes{Status: StatusOf(berr), Verf: WriteVerf}
	res.Wcc.Before = before
	if berr == nil {
		res.Wcc.After = &attr
		res.Count = uint32(len(a.Data))
		res.Committed = FileSync
	} else {
		res.Wcc.After = s.attrOf(a.FH)
	}
	return res.Encode(), sunrpc.Success
}

func (s *Server) create(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	dir := DecodeFH(d)
	name := d.String()
	mode := d.Uint32()
	var attr SetAttr
	guarded := false
	switch mode {
	case CreateUnchecked:
		attr = DecodeSetAttr(d)
	case CreateGuarded:
		attr = DecodeSetAttr(d)
		guarded = true
	case CreateExclusive:
		var verf [8]byte
		d.FixedOpaque(verf[:])
		guarded = true
	default:
		return nil, sunrpc.GarbageArgs
	}
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	before := s.preOf(dir)
	fh, fattr, berr := s.backend.Create(dir, name, attr, guarded)
	return s.newObjectReply(StatusOf(berr), fh, fattr, berr == nil, dir, before), sunrpc.Success
}

func (s *Server) mkdir(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	dir := DecodeFH(d)
	name := d.String()
	attr := DecodeSetAttr(d)
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	before := s.preOf(dir)
	fh, fattr, berr := s.backend.Mkdir(dir, name, attr)
	return s.newObjectReply(StatusOf(berr), fh, fattr, berr == nil, dir, before), sunrpc.Success
}

func (s *Server) symlink(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	dir := DecodeFH(d)
	name := d.String()
	_ = DecodeSetAttr(d) // symlink attributes: accepted, ignored
	target := d.String()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	before := s.preOf(dir)
	fh, fattr, berr := s.backend.Symlink(dir, name, target)
	return s.newObjectReply(StatusOf(berr), fh, fattr, berr == nil, dir, before), sunrpc.Success
}

// newObjectReply encodes the common CREATE/MKDIR/SYMLINK result shape.
func (s *Server) newObjectReply(st Status, fh FH, attr Fattr, ok bool, dir FH, before *WccAttr) []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(st))
	if ok {
		EncodePostOpFH(e, fh)
		EncodePostOpAttr(e, &attr)
	}
	wcc := WccData{Before: before, After: s.attrOf(dir)}
	wcc.Encode(e)
	return buf.Bytes()
}

func (s *Server) remove(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeLookupArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	before := s.preOf(a.Dir)
	berr := s.backend.Remove(a.Dir, a.Name)
	return s.wccReply(StatusOf(berr), a.Dir, before), sunrpc.Success
}

func (s *Server) rmdir(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeLookupArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	before := s.preOf(a.Dir)
	berr := s.backend.Rmdir(a.Dir, a.Name)
	return s.wccReply(StatusOf(berr), a.Dir, before), sunrpc.Success
}

func (s *Server) wccReply(st Status, dir FH, before *WccAttr) []byte {
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(st))
	wcc := WccData{Before: before, After: s.attrOf(dir)}
	wcc.Encode(e)
	return buf.Bytes()
}

func (s *Server) rename(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	fromDir := DecodeFH(d)
	fromName := d.String()
	toDir := DecodeFH(d)
	toName := d.String()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	fromBefore := s.preOf(fromDir)
	toBefore := s.preOf(toDir)
	berr := s.backend.Rename(fromDir, fromName, toDir, toName)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	(&WccData{Before: fromBefore, After: s.attrOf(fromDir)}).Encode(e)
	(&WccData{Before: toBefore, After: s.attrOf(toDir)}).Encode(e)
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) readdir(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	dir := DecodeFH(d)
	cookie := d.Uint64()
	var verf [8]byte
	d.FixedOpaque(verf[:])
	count := d.Uint32()
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	entries, eof, berr := s.backend.ReadDir(dir, cookie, count)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	EncodePostOpAttr(e, s.attrOf(dir))
	if berr != nil {
		return buf.Bytes(), sunrpc.Success
	}
	e.FixedOpaque(verf[:]) // cookieverf echoed back
	for _, ent := range entries {
		e.Bool(true)
		e.Uint64(ent.FileID)
		e.String(ent.Name)
		e.Uint64(ent.Cookie)
	}
	e.Bool(false)
	e.Bool(eof)
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) readdirplus(args []byte) ([]byte, sunrpc.AcceptStat) {
	d := xdr.NewDecoder(bytes.NewReader(args))
	dir := DecodeFH(d)
	cookie := d.Uint64()
	var verf [8]byte
	d.FixedOpaque(verf[:])
	dircount := d.Uint32()
	maxcount := d.Uint32()
	_ = dircount
	if d.Err() != nil {
		return nil, sunrpc.GarbageArgs
	}
	entries, eof, berr := s.backend.ReadDir(dir, cookie, maxcount)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	EncodePostOpAttr(e, s.attrOf(dir))
	if berr != nil {
		return buf.Bytes(), sunrpc.Success
	}
	e.FixedOpaque(verf[:])
	for _, ent := range entries {
		e.Bool(true)
		e.Uint64(ent.FileID)
		e.String(ent.Name)
		e.Uint64(ent.Cookie)
		attr := ent.Attr
		handle := ent.Handle
		if handle == nil {
			if fh, fa, err := s.backend.Lookup(dir, ent.Name); err == nil {
				handle, attr = fh, &fa
			}
		}
		EncodePostOpAttr(e, attr)
		EncodePostOpFH(e, handle)
	}
	e.Bool(false)
	e.Bool(eof)
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) fsstat(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeGetattrArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	st, berr := s.backend.FSStat(a.FH)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	EncodePostOpAttr(e, s.attrOf(a.FH))
	if berr == nil {
		e.Uint64(st.TotalBytes)
		e.Uint64(st.FreeBytes)
		e.Uint64(st.AvailBytes)
		e.Uint64(st.TotalFiles)
		e.Uint64(st.FreeFiles)
		e.Uint64(st.AvailFiles)
		e.Uint32(st.Invarsec)
	}
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) fsinfo(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeGetattrArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	info := DefaultFSInfo()
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(OK))
	EncodePostOpAttr(e, s.attrOf(a.FH))
	e.Uint32(info.RtMax)
	e.Uint32(info.RtPref)
	e.Uint32(info.RtMult)
	e.Uint32(info.WtMax)
	e.Uint32(info.WtPref)
	e.Uint32(info.WtMult)
	e.Uint32(info.DtPref)
	e.Uint64(info.MaxFileSize)
	e.Uint32(info.TimeDelta.Sec)
	e.Uint32(info.TimeDelta.Nsec)
	e.Uint32(info.Properties)
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) pathconf(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeGetattrArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(OK))
	EncodePostOpAttr(e, s.attrOf(a.FH))
	e.Uint32(255) // linkmax
	e.Uint32(255) // name_max
	e.Bool(true)  // no_trunc
	e.Bool(false) // chown_restricted
	e.Bool(true)  // case_insensitive = false? (true means preserves case)
	e.Bool(true)  // case_preserving
	return buf.Bytes(), sunrpc.Success
}

func (s *Server) commit(args []byte) ([]byte, sunrpc.AcceptStat) {
	a, err := DecodeCommitArgs(args)
	if err != nil {
		return nil, sunrpc.GarbageArgs
	}
	berr := s.backend.Commit(a.FH)
	var buf bytes.Buffer
	e := xdr.NewEncoder(&buf)
	e.Uint32(uint32(StatusOf(berr)))
	wcc := WccData{After: s.attrOf(a.FH)}
	wcc.Encode(e)
	if berr == nil {
		e.FixedOpaque(WriteVerf[:])
	}
	return buf.Bytes(), sunrpc.Success
}
