// Package xdr implements the External Data Representation standard
// (RFC 4506) used by ONC RPC and NFS. It provides a streaming Encoder
// and Decoder for the primitive types the NFSv3 and MOUNT protocols
// need: 32/64-bit integers, booleans, opaque byte arrays (fixed and
// variable length) and strings. All quantities are big-endian and
// padded to 4-byte boundaries as the standard requires.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrLimit is returned when a variable-length item declares a size
// larger than the decoder's configured maximum. It guards against
// corrupt or hostile peers asking us to allocate unbounded memory.
var ErrLimit = errors.New("xdr: variable-length item exceeds limit")

// DefaultMaxSize bounds variable-length opaques and strings accepted
// by a Decoder unless overridden with SetMaxSize. 1 MiB comfortably
// exceeds the 32 KB NFSv3 transfer-size ceiling plus headers.
const DefaultMaxSize = 1 << 20

var pad [4]byte

// Encoder writes XDR-encoded values to an underlying io.Writer.
type Encoder struct {
	w   io.Writer
	buf [8]byte
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first error encountered while encoding, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	binary.BigEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) Uint64(v uint64) {
	binary.BigEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

// Int64 encodes a 64-bit signed integer (XDR "hyper").
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as a 32-bit 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes a variable-length opaque: length prefix, bytes, padding.
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.FixedOpaque(p)
}

// FixedOpaque encodes bytes without a length prefix, padded to 4 bytes.
func (e *Encoder) FixedOpaque(p []byte) {
	e.write(p)
	if n := len(p) % 4; n != 0 {
		e.write(pad[:4-n])
	}
}

// String encodes an XDR string (identical wire format to Opaque).
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder reads XDR-encoded values from an underlying io.Reader.
type Decoder struct {
	r   io.Reader
	buf [8]byte
	max uint32
	err error
}

// NewDecoder returns a Decoder reading from r with DefaultMaxSize.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r, max: DefaultMaxSize} }

// SetMaxSize overrides the maximum accepted variable-length item size.
func (d *Decoder) SetMaxSize(n uint32) { d.max = n }

// Err returns the first error encountered while decoding, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, p)
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	d.read(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(d.buf[:4])
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	d.read(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(d.buf[:8])
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool decodes a boolean.
func (d *Decoder) Bool() bool { return d.Uint32() != 0 }

// Opaque decodes a variable-length opaque into a fresh slice.
func (d *Decoder) Opaque() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > d.max {
		d.err = fmt.Errorf("%w: %d > %d", ErrLimit, n, d.max)
		return nil
	}
	p := make([]byte, n)
	d.FixedOpaque(p)
	return p
}

// FixedOpaque decodes len(p) bytes plus padding into p.
func (d *Decoder) FixedOpaque(p []byte) {
	d.read(p)
	if n := len(p) % 4; n != 0 {
		d.read(d.buf[:4-n])
	}
}

// String decodes an XDR string.
func (d *Decoder) String() string { return string(d.Opaque()) }
