// Package xdr implements the External Data Representation standard
// (RFC 4506) used by ONC RPC and NFS. It provides a streaming Encoder
// and Decoder for the primitive types the NFSv3 and MOUNT protocols
// need: 32/64-bit integers, booleans, opaque byte arrays (fixed and
// variable length) and strings. All quantities are big-endian and
// padded to 4-byte boundaries as the standard requires.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrLimit is returned when a variable-length item declares a size
// larger than the decoder's configured maximum. It guards against
// corrupt or hostile peers asking us to allocate unbounded memory.
var ErrLimit = errors.New("xdr: variable-length item exceeds limit")

// DefaultMaxSize bounds variable-length opaques and strings accepted
// by a Decoder unless overridden with SetMaxSize. 1 MiB comfortably
// exceeds the 32 KB NFSv3 transfer-size ceiling plus headers.
const DefaultMaxSize = 1 << 20

var pad [4]byte

// Encoder writes XDR-encoded values to an underlying io.Writer.
type Encoder struct {
	w   io.Writer
	buf [8]byte
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first error encountered while encoding, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	binary.BigEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) Uint64(v uint64) {
	binary.BigEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

// Int64 encodes a 64-bit signed integer (XDR "hyper").
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as a 32-bit 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes a variable-length opaque: length prefix, bytes, padding.
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.FixedOpaque(p)
}

// FixedOpaque encodes bytes without a length prefix, padded to 4 bytes.
func (e *Encoder) FixedOpaque(p []byte) {
	e.write(p)
	if n := len(p) % 4; n != 0 {
		e.write(pad[:4-n])
	}
}

// String encodes an XDR string (identical wire format to Opaque).
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder reads XDR-encoded values from an underlying io.Reader, or —
// in byte-backed mode — directly from a slice. Byte-backed decoding
// (NewDecoderBytes / ResetBytes) is the hot-path form: it allocates
// nothing, and OpaqueRef can return subslices that alias the input
// instead of copying payloads.
type Decoder struct {
	r    io.Reader
	rbuf *[8]byte // reader-mode scratch; behind a pointer so the
	// io.ReadFull calls don't force a stack-declared Decoder to
	// escape (byte-backed decoding must stay allocation-free)
	data []byte // byte-backed input (used when byt is true)
	pos  int
	byt  bool
	max  uint32
	err  error
}

// NewDecoder returns a Decoder reading from r with DefaultMaxSize.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, rbuf: new([8]byte), max: DefaultMaxSize}
}

// NewDecoderBytes returns a byte-backed Decoder over p. Prefer
// declaring a Decoder value and calling ResetBytes in hot paths so the
// Decoder itself stays on the stack.
func NewDecoderBytes(p []byte) *Decoder {
	d := &Decoder{}
	d.ResetBytes(p)
	return d
}

// ResetBytes re-initializes d as a byte-backed Decoder over p.
func (d *Decoder) ResetBytes(p []byte) {
	*d = Decoder{data: p, byt: true, max: DefaultMaxSize}
}

// SetMaxSize overrides the maximum accepted variable-length item size.
func (d *Decoder) SetMaxSize(n uint32) { d.max = n }

// Err returns the first error encountered while decoding, if any.
func (d *Decoder) Err() error { return d.err }

// Pos returns the number of input bytes consumed so far (byte-backed
// decoders only; reader-backed decoders return 0).
func (d *Decoder) Pos() int { return d.pos }

// Rest returns the unconsumed remainder of a byte-backed Decoder's
// input, aliasing the input slice. Reader-backed decoders return nil.
func (d *Decoder) Rest() []byte {
	if !d.byt || d.err != nil {
		return nil
	}
	return d.data[d.pos:]
}

func (d *Decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if d.byt {
		if len(d.data)-d.pos < len(p) {
			d.err = io.ErrUnexpectedEOF
			return
		}
		copy(p, d.data[d.pos:])
		d.pos += len(p)
		return
	}
	_, d.err = io.ReadFull(d.r, p)
}

// take returns the next n input bytes of a byte-backed Decoder without
// copying, plus padding to the 4-byte boundary. ok is false (and err
// set) when the input is short or the Decoder is reader-backed.
func (d *Decoder) take(n int) (p []byte, ok bool) {
	if d.err != nil || !d.byt {
		return nil, false
	}
	padded := n + xdrPad(n)
	if len(d.data)-d.pos < padded {
		d.err = io.ErrUnexpectedEOF
		return nil, false
	}
	p = d.data[d.pos : d.pos+n : d.pos+n]
	d.pos += padded
	return p, true
}

func xdrPad(n int) int {
	if r := n % 4; r != 0 {
		return 4 - r
	}
	return 0
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	if d.byt {
		if d.err != nil {
			return 0
		}
		if len(d.data)-d.pos < 4 {
			d.err = io.ErrUnexpectedEOF
			return 0
		}
		v := binary.BigEndian.Uint32(d.data[d.pos:])
		d.pos += 4
		return v
	}
	d.read(d.rbuf[:4])
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(d.rbuf[:4])
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	if d.byt {
		if d.err != nil {
			return 0
		}
		if len(d.data)-d.pos < 8 {
			d.err = io.ErrUnexpectedEOF
			return 0
		}
		v := binary.BigEndian.Uint64(d.data[d.pos:])
		d.pos += 8
		return v
	}
	d.read(d.rbuf[:8])
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(d.rbuf[:8])
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool decodes a boolean.
func (d *Decoder) Bool() bool { return d.Uint32() != 0 }

// Opaque decodes a variable-length opaque into a fresh slice.
func (d *Decoder) Opaque() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > d.max {
		d.err = fmt.Errorf("%w: %d > %d", ErrLimit, n, d.max)
		return nil
	}
	if ref, ok := d.take(int(n)); ok {
		p := make([]byte, n)
		copy(p, ref)
		return p
	}
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	d.FixedOpaque(p)
	return p
}

// OpaqueRef decodes a variable-length opaque without copying: on a
// byte-backed Decoder the result aliases the input slice and is only
// valid while the input is. Reader-backed Decoders fall back to
// Opaque's fresh allocation. Callers must honor the input buffer's
// ownership rules — never retain a ref past the buffer's release.
func (d *Decoder) OpaqueRef() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > d.max {
		d.err = fmt.Errorf("%w: %d > %d", ErrLimit, n, d.max)
		return nil
	}
	if ref, ok := d.take(int(n)); ok {
		return ref
	}
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	d.FixedOpaque(p)
	return p
}

// FixedOpaque decodes len(p) bytes plus padding into p.
func (d *Decoder) FixedOpaque(p []byte) {
	d.read(p)
	if n := xdrPad(len(p)); n != 0 {
		d.skip(n)
	}
}

// skip discards n input bytes (padding).
func (d *Decoder) skip(n int) {
	if d.err != nil {
		return
	}
	if d.byt {
		if len(d.data)-d.pos < n {
			d.err = io.ErrUnexpectedEOF
			return
		}
		d.pos += n
		return
	}
	_, d.err = io.ReadFull(d.r, d.rbuf[:n])
}

// String decodes an XDR string with a single copy: the returned
// string's backing array is the only allocation on a byte-backed
// Decoder, or for reader-backed input short enough for the scratch
// buffer.
func (d *Decoder) String() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	if n > d.max {
		d.err = fmt.Errorf("%w: %d > %d", ErrLimit, n, d.max)
		return ""
	}
	if ref, ok := d.take(int(n)); ok {
		return string(ref)
	}
	if d.err != nil {
		return ""
	}
	var scratch [64]byte
	if int(n) <= len(scratch) {
		p := scratch[:n]
		d.FixedOpaque(p)
		if d.err != nil {
			return ""
		}
		return string(p)
	}
	p := make([]byte, n)
	d.FixedOpaque(p)
	if d.err != nil {
		return ""
	}
	return string(p)
}

// Builder appends XDR-encoded values to a byte slice. It is the
// allocation-free counterpart of Encoder for hot paths: callers bring
// a buffer (typically from bufpool) with enough capacity and encode
// with plain appends — no io.Writer indirection, no internal state,
// no error (append cannot fail).
type Builder struct{ B []byte }

// Uint32 appends a 32-bit unsigned integer.
func (b *Builder) Uint32(v uint32) {
	b.B = append(b.B, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Int32 appends a 32-bit signed integer.
func (b *Builder) Int32(v int32) { b.Uint32(uint32(v)) }

// Uint64 appends a 64-bit unsigned integer.
func (b *Builder) Uint64(v uint64) {
	b.Uint32(uint32(v >> 32))
	b.Uint32(uint32(v))
}

// Int64 appends a 64-bit signed integer.
func (b *Builder) Int64(v int64) { b.Uint64(uint64(v)) }

// Bool appends a boolean as a 32-bit 0/1.
func (b *Builder) Bool(v bool) {
	if v {
		b.Uint32(1)
	} else {
		b.Uint32(0)
	}
}

// FixedOpaque appends bytes without a length prefix, padded to 4 bytes.
func (b *Builder) FixedOpaque(p []byte) {
	b.B = append(b.B, p...)
	if n := xdrPad(len(p)); n != 0 {
		b.B = append(b.B, pad[:n]...)
	}
}

// Opaque appends a variable-length opaque: length prefix, bytes, padding.
func (b *Builder) Opaque(p []byte) {
	b.Uint32(uint32(len(p)))
	b.FixedOpaque(p)
}

// String appends an XDR string (identical wire format to Opaque).
func (b *Builder) String(s string) {
	b.Uint32(uint32(len(s)))
	b.B = append(b.B, s...)
	if n := xdrPad(len(s)); n != 0 {
		b.B = append(b.B, pad[:n]...)
	}
}
