package xdr

import (
	"bytes"
	"io"
	"testing"
)

// encodeSample produces one of every primitive so byte-backed and
// reader-backed decoders can be compared field by field.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Uint32(0xdeadbeef)
	e.Int32(-5)
	e.Uint64(1 << 40)
	e.Int64(-1 << 40)
	e.Bool(true)
	e.Opaque([]byte("hello")) // padded
	e.String("gvfs")
	e.FixedOpaque([]byte{9, 8, 7}) // padded
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecoderBytesMatchesReader(t *testing.T) {
	wire := encodeSample(t)
	db := NewDecoderBytes(wire)
	dr := NewDecoder(bytes.NewReader(wire))
	for _, d := range []*Decoder{db, dr} {
		if got := d.Uint32(); got != 0xdeadbeef {
			t.Errorf("Uint32 = %#x", got)
		}
		if got := d.Int32(); got != -5 {
			t.Errorf("Int32 = %d", got)
		}
		if got := d.Uint64(); got != 1<<40 {
			t.Errorf("Uint64 = %d", got)
		}
		if got := d.Int64(); got != -1<<40 {
			t.Errorf("Int64 = %d", got)
		}
		if !d.Bool() {
			t.Error("Bool = false")
		}
		if got := d.Opaque(); !bytes.Equal(got, []byte("hello")) {
			t.Errorf("Opaque = %q", got)
		}
		if got := d.String(); got != "gvfs" {
			t.Errorf("String = %q", got)
		}
		p := make([]byte, 3)
		d.FixedOpaque(p)
		if !bytes.Equal(p, []byte{9, 8, 7}) {
			t.Errorf("FixedOpaque = %v", p)
		}
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if db.Rest() != nil && len(db.Rest()) != 0 {
		t.Errorf("Rest = %v, want empty", db.Rest())
	}
}

func TestOpaqueRefAliasesInput(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Uint32(7)
	e.Opaque([]byte("payload"))
	wire := buf.Bytes()

	d := NewDecoderBytes(wire)
	if got := d.Uint32(); got != 7 {
		t.Fatalf("Uint32 = %d", got)
	}
	ref := d.OpaqueRef()
	if string(ref) != "payload" {
		t.Fatalf("OpaqueRef = %q", ref)
	}
	// Mutating the input must show through the ref: proof of aliasing.
	wire[8] = 'P'
	if string(ref) != "Payload" {
		t.Errorf("ref does not alias input: %q", ref)
	}
	// The ref's capacity is clipped so appends cannot clobber the
	// bytes that follow in the record.
	if cap(ref) != len(ref) {
		t.Errorf("cap = %d, want %d", cap(ref), len(ref))
	}
}

func TestOpaqueRefReaderFallbackCopies(t *testing.T) {
	var buf bytes.Buffer
	NewEncoder(&buf).Opaque([]byte("copyme"))
	d := NewDecoder(&buf)
	got := d.OpaqueRef()
	if string(got) != "copyme" || d.Err() != nil {
		t.Fatalf("OpaqueRef = %q, err %v", got, d.Err())
	}
}

func TestDecoderBytesShortInput(t *testing.T) {
	var buf bytes.Buffer
	NewEncoder(&buf).Opaque(make([]byte, 100))
	wire := buf.Bytes()
	for cut := range wire {
		d := NewDecoderBytes(wire[:cut])
		d.Opaque()
		d.OpaqueRef()
		d.Uint64()
		if d.Err() == nil {
			t.Fatalf("cut=%d: no error on truncated input", cut)
		}
		if d.Err() != io.ErrUnexpectedEOF && !bytes.Contains([]byte(d.Err().Error()), []byte("unexpected EOF")) {
			// Any error is fine as long as there is one; this branch
			// just documents the common case.
			_ = d
		}
	}
}

func TestDecoderBytesLimit(t *testing.T) {
	var buf bytes.Buffer
	NewEncoder(&buf).Opaque(make([]byte, 256))
	d := NewDecoderBytes(buf.Bytes())
	d.SetMaxSize(16)
	if d.OpaqueRef() != nil || d.Err() == nil {
		t.Fatal("limit not enforced on OpaqueRef")
	}
}

func TestStringSingleCopyLongAndShort(t *testing.T) {
	long := string(make([]byte, 200)) // exceeds the 64-byte scratch
	for _, s := range []string{"", "abc", "exactly-64-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", long} {
		var buf bytes.Buffer
		NewEncoder(&buf).String(s)
		wire := buf.Bytes()
		if got := NewDecoderBytes(wire).String(); got != s {
			t.Errorf("bytes String len %d mismatch", len(s))
		}
		if got := NewDecoder(bytes.NewReader(wire)).String(); got != s {
			t.Errorf("reader String len %d mismatch", len(s))
		}
	}
}

func TestResetBytesReuses(t *testing.T) {
	var d Decoder
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		NewEncoder(&buf).Uint32(uint32(i))
		d.ResetBytes(buf.Bytes())
		if got := d.Uint32(); got != uint32(i) {
			t.Fatalf("round %d: got %d", i, got)
		}
	}
}

func TestBuilderMatchesEncoder(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	var b Builder
	e.Uint32(1)
	b.Uint32(1)
	e.Int32(-2)
	b.Int32(-2)
	e.Uint64(3 << 33)
	b.Uint64(3 << 33)
	e.Int64(-4 << 33)
	b.Int64(-4 << 33)
	e.Bool(true)
	b.Bool(true)
	e.Bool(false)
	b.Bool(false)
	e.Opaque([]byte("odd"))
	b.Opaque([]byte("odd"))
	e.FixedOpaque([]byte{1, 2, 3, 4, 5})
	b.FixedOpaque([]byte{1, 2, 3, 4, 5})
	e.String("str")
	b.String("str")
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), b.B) {
		t.Fatalf("builder wire differs:\n  enc %v\n  bld %v", buf.Bytes(), b.B)
	}
}

func TestDecodeAllocFree(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Uint32(1)
	e.Uint64(2)
	e.Opaque(make([]byte, 4096))
	wire := buf.Bytes()
	allocs := testing.AllocsPerRun(100, func() {
		var d Decoder
		d.ResetBytes(wire)
		_ = d.Uint32()
		_ = d.Uint64()
		_ = d.OpaqueRef()
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
	})
	if allocs != 0 {
		t.Errorf("byte-backed decode allocates %.1f/op, want 0", allocs)
	}
}
