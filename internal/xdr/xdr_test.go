package xdr

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	for _, v := range []uint32{0, 1, 0xffffffff, 0x12345678} {
		e.Uint32(v)
	}
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	d := NewDecoder(&buf)
	for _, want := range []uint32{0, 1, 0xffffffff, 0x12345678} {
		if got := d.Uint32(); got != want {
			t.Errorf("Uint32 = %#x, want %#x", got, want)
		}
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestUint32BigEndianWire(t *testing.T) {
	var buf bytes.Buffer
	NewEncoder(&buf).Uint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wire = %v, want %v", buf.Bytes(), want)
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		p := bytes.Repeat([]byte{0xab}, n)
		e.Opaque(p)
		if err := e.Err(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantLen := 4 + n
		if rem := n % 4; rem != 0 {
			wantLen += 4 - rem
		}
		if buf.Len() != wantLen {
			t.Errorf("n=%d: wire length %d, want %d", n, buf.Len(), wantLen)
		}
		d := NewDecoder(&buf)
		got := d.Opaque()
		if d.Err() != nil {
			t.Fatalf("n=%d decode: %v", n, d.Err())
		}
		if !bytes.Equal(got, p) {
			t.Errorf("n=%d: got %v want %v", n, got, p)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.String("hello, 世界")
	e.String("")
	d := NewDecoder(&buf)
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("got %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("got %q, want empty", got)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestBoolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(&buf)
	if !d.Bool() {
		t.Error("want true")
	}
	if d.Bool() {
		t.Error("want false")
	}
}

func TestInt64RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Int64(-1)
	e.Int64(1 << 40)
	d := NewDecoder(&buf)
	if got := d.Int64(); got != -1 {
		t.Errorf("got %d", got)
	}
	if got := d.Int64(); got != 1<<40 {
		t.Errorf("got %d", got)
	}
}

func TestDecoderLimit(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Opaque(make([]byte, 100))
	d := NewDecoder(&buf)
	d.SetMaxSize(99)
	if got := d.Opaque(); got != nil {
		t.Errorf("expected nil, got %d bytes", len(got))
	}
	if d.Err() == nil {
		t.Error("expected error for oversized opaque")
	}
}

func TestDecoderShortInput(t *testing.T) {
	d := NewDecoder(bytes.NewReader([]byte{0, 0}))
	d.Uint32()
	if d.Err() == nil {
		t.Error("expected error on short input")
	}
}

func TestErrorSticky(t *testing.T) {
	d := NewDecoder(bytes.NewReader(nil))
	d.Uint32()
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	d.Uint64()
	if d.Err() != first {
		t.Error("error should be sticky")
	}
	if first != io.EOF && first != io.ErrUnexpectedEOF {
		t.Errorf("unexpected error %v", first)
	}
}

func TestQuickOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.Opaque(p)
		if e.Err() != nil {
			return false
		}
		d := NewDecoder(&buf)
		got := d.Opaque()
		return d.Err() == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(a uint32, b int64, c string, d bool) bool {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.Uint32(a)
		e.Int64(b)
		e.String(c)
		e.Bool(d)
		if e.Err() != nil {
			return false
		}
		dec := NewDecoder(&buf)
		return dec.Uint32() == a && dec.Int64() == b && dec.String() == c &&
			dec.Bool() == d && dec.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedOpaqueRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.FixedOpaque([]byte{1, 2, 3, 4, 5})
	if buf.Len() != 8 {
		t.Errorf("padded length = %d, want 8", buf.Len())
	}
	d := NewDecoder(&buf)
	p := make([]byte, 5)
	d.FixedOpaque(p)
	if d.Err() != nil || !bytes.Equal(p, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("got %v err %v", p, d.Err())
	}
}
