package simnet

// Fault-injection API tests: determinism of seeded loss, partition
// semantics, stalls, and connection kills.

import (
	"net"
	"testing"
	"time"
)

func TestSeededLossIsDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		l := NewLink(Local())
		l.SetLoss(0.5, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = l.loseMessage()
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical loss patterns")
	}
}

func TestLossRateZeroDropsNothing(t *testing.T) {
	l := NewLink(Local())
	l.SetLoss(0.9, 1)
	l.SetLoss(0, 0) // disable again
	for i := 0; i < 100; i++ {
		if l.loseMessage() {
			t.Fatal("message lost with loss disabled")
		}
	}
}

func TestPartitionBlackholesAndHeals(t *testing.T) {
	link := NewLink(Local())
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()

	link.Partition()
	if _, err := cli.Write([]byte("lost")); err != nil {
		t.Fatalf("write during partition should appear to succeed: %v", err)
	}
	buf := make([]byte, 16)
	srv.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := srv.Read(buf); err == nil {
		t.Fatalf("read got %d bytes through a partition", n)
	}
	if link.DroppedMessages() == 0 {
		t.Error("partition loss not accounted")
	}

	link.Heal()
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	go cli.Write([]byte("through"))
	n, err := srv.Read(buf)
	if err != nil || string(buf[:n]) != "through" {
		t.Fatalf("read after heal = %q, %v", buf[:n], err)
	}
}

func TestPartitionBlocksDial(t *testing.T) {
	link := NewLink(Local())
	l, err := Listen("127.0.0.1:0", link)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	link.Partition()
	if _, err := Dial(l.Addr().String(), link); err == nil {
		t.Error("Dial succeeded through a partition")
	}
	link.Heal()
	c, err := Dial(l.Addr().String(), link)
	if err != nil {
		t.Fatalf("Dial after heal: %v", err)
	}
	c.Close()
}

func TestStallDelaysDelivery(t *testing.T) {
	link := NewLink(Local())
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()

	const stall = 300 * time.Millisecond
	link.Stall(stall)
	start := time.Now()
	go cli.Write([]byte("delayed"))
	buf := make([]byte, 16)
	srv.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall-50*time.Millisecond {
		t.Errorf("message arrived after %v despite a %v stall", d, stall)
	}
}

func TestDropKillsEstablishedConns(t *testing.T) {
	link := NewLink(Local())
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := srv.Read(buf)
		done <- err
	}()
	link.Drop()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read returned data from a dropped connection")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after Drop")
	}
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Error("write on a dropped connection succeeded")
	}
}

func TestFlapAllowsReconnect(t *testing.T) {
	link := NewLink(Local())
	l, err := Listen("127.0.0.1:0", link)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 16)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					c.Write(buf[:n])
				}
			}(c)
		}
	}()
	for i := 0; i < 3; i++ {
		c, err := Dial(l.Addr().String(), link)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		buf := make([]byte, 4)
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(buf); err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		link.Flap(1, time.Millisecond) // kills this conn; next dial works
		buf2 := make([]byte, 1)
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(buf2); err == nil {
			t.Fatalf("conn %d survived a flap", i)
		}
	}
}
