package simnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestProfileMath(t *testing.T) {
	p := Profile{RTT: 30 * time.Millisecond, Bandwidth: 1e6}
	if got := p.OneWayDelay(); got != 15*time.Millisecond {
		t.Errorf("OneWayDelay = %v", got)
	}
	if got := p.TransmitTime(1e6); got != time.Second {
		t.Errorf("TransmitTime(1MB) = %v", got)
	}
}

func TestProfileScale(t *testing.T) {
	p := Profile{RTT: 30 * time.Millisecond, Bandwidth: 1e6, Scale: 10}
	if got := p.OneWayDelay(); got != 1500*time.Microsecond {
		t.Errorf("scaled OneWayDelay = %v", got)
	}
	if got := p.TransmitTime(1e6); got != 100*time.Millisecond {
		t.Errorf("scaled TransmitTime = %v", got)
	}
}

func TestLocalProfileNoDelay(t *testing.T) {
	link := NewLink(Local())
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()
	go func() {
		buf := make([]byte, 1024)
		io.ReadFull(srv, buf)
		srv.Write(buf)
	}()
	start := time.Now()
	cli.Write(make([]byte, 1024))
	io.ReadFull(cli, make([]byte, 1024))
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("local round trip took %v", d)
	}
}

func TestLatencyApplied(t *testing.T) {
	p := Profile{Name: "test", RTT: 40 * time.Millisecond}
	link := NewLink(p)
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4)
		io.ReadFull(srv, buf)
		srv.Write(buf) // another one-way delay
	}()
	start := time.Now()
	cli.Write([]byte("ping"))
	io.ReadFull(cli, make([]byte, 4))
	elapsed := time.Since(start)
	<-done
	if elapsed < 40*time.Millisecond {
		t.Errorf("round trip %v, want >= 40ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("round trip %v, far too slow", elapsed)
	}
}

func TestBandwidthApplied(t *testing.T) {
	// 1 MB at 10 MB/s should take >= 100ms.
	p := Profile{Name: "test", Bandwidth: 10e6}
	link := NewLink(p)
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()
	const total = 1 << 20
	go func() {
		io.Copy(io.Discard, srv)
	}()
	start := time.Now()
	buf := make([]byte, 64*1024)
	for sent := 0; sent < total; sent += len(buf) {
		if _, err := cli.Write(buf); err != nil {
			t.Error(err)
			return
		}
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("1MB at 10MB/s took %v, want >= 100ms", elapsed)
	}
}

func TestSharedUplinkContention(t *testing.T) {
	// Two concurrent senders share one uplink: total time for 2×500KB
	// at 10MB/s must be >= 100ms (serialized), not ~50ms (parallel).
	p := Profile{Name: "test", Bandwidth: 10e6}
	link := NewLink(p)
	cli1, srv1 := Pipe(link)
	cli2, srv2 := Pipe(link)
	defer cli1.Close()
	defer srv1.Close()
	defer cli2.Close()
	defer srv2.Close()
	go io.Copy(io.Discard, srv1)
	go io.Copy(io.Discard, srv2)
	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range []net.Conn{cli1, cli2} {
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			buf := make([]byte, 64*1024)
			for sent := 0; sent < 500*1024; sent += len(buf) {
				c.Write(buf)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 95*time.Millisecond {
		t.Errorf("contended transfer took %v, want >= ~100ms", elapsed)
	}
}

func TestStatsAccounting(t *testing.T) {
	link := NewLink(Local())
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()
	go io.Copy(io.Discard, srv)
	cli.Write(make([]byte, 1000))
	cli.Write(make([]byte, 24))
	st := link.Stats()
	if st.Sent != 1024 {
		t.Errorf("sent = %d, want 1024", st.Sent)
	}
	link.ResetStats()
	if st := link.Stats(); st.Sent != 0 {
		t.Errorf("after reset sent = %d", st.Sent)
	}
}

func TestTCPListenerDial(t *testing.T) {
	link := NewLink(Local())
	l, err := Listen("127.0.0.1:0", link)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn) // echo
	}()
	conn, err := Dial(l.Addr().String(), link)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("over tcp")
	conn.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q", buf)
	}
	if st := link.Stats(); st.Sent == 0 || st.Received == 0 {
		t.Errorf("stats = %+v, want both directions counted", st)
	}
}

func TestStandardProfiles(t *testing.T) {
	if LAN().RTT >= WAN().RTT {
		t.Error("LAN RTT should be far below WAN RTT")
	}
	if LAN().Bandwidth <= WAN().Bandwidth {
		t.Error("LAN bandwidth should exceed WAN bandwidth")
	}
	if Local().RTT != 0 || Local().Bandwidth != 0 {
		t.Error("Local must be unconstrained")
	}
}

func TestDeliveryOrderPreserved(t *testing.T) {
	// Messages written in order must arrive in order despite the
	// asynchronous delivery pipeline.
	p := Profile{Name: "test", RTT: 10 * time.Millisecond, Bandwidth: 50e6}
	link := NewLink(p)
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			msg := []byte{byte(i), byte(i >> 8)}
			cli.Write(msg)
		}
	}()
	buf := make([]byte, 2*n)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if buf[2*i] != byte(i) || buf[2*i+1] != byte(i>>8) {
			t.Fatalf("message %d out of order", i)
		}
	}
}

func TestPipeliningOverlapsLatency(t *testing.T) {
	// 20 small messages over a 40ms-RTT link should take far less
	// than 20 * 20ms one-way if they pipeline.
	p := Profile{Name: "test", RTT: 40 * time.Millisecond}
	link := NewLink(p)
	cli, srv := Pipe(link)
	defer cli.Close()
	defer srv.Close()
	go io.Copy(io.Discard, srv)
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := cli.Write([]byte("msg")); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 100*time.Millisecond {
		t.Errorf("20 pipelined writes took %v; they serialized on propagation", elapsed)
	}
}

func TestCloseWhileInFlight(t *testing.T) {
	p := Profile{Name: "test", RTT: 50 * time.Millisecond}
	link := NewLink(p)
	cli, srv := Pipe(link)
	defer srv.Close()
	cli.Write([]byte("in flight"))
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("after close")); err == nil {
		t.Error("write after close succeeded")
	}
}
