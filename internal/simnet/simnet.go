// Package simnet emulates wide-area and local-area network links on
// top of real loopback connections. It stands in for the paper's
// physical networks: the 100 Mbit/s campus Ethernet between compute
// and LAN image servers, and the Abilene path between the University
// of Florida and Northwestern University for the WAN image server.
//
// A Link applies one-way propagation delay and token-bucket bandwidth
// shaping to every byte that crosses it, and accounts traffic so
// experiments can report wire bytes alongside wall time. Shaping is
// enforced with real sleeps, so measured wall-clock durations include
// the same latency·RPC-count and bytes/bandwidth terms that dominate
// the paper's results.
package simnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes a link's characteristics.
type Profile struct {
	// Name labels the profile in reports ("LAN", "WAN", ...).
	Name string
	// RTT is the round-trip propagation delay; each direction of a
	// Link adds RTT/2 to the delivery time of every byte.
	RTT time.Duration
	// Bandwidth is the link rate in bytes per second (0 = unlimited).
	Bandwidth float64
	// Scale divides both RTT and per-byte cost, letting full-size
	// experiments run quickly while preserving every ratio. Zero or
	// one means unscaled.
	Scale float64
}

func (p Profile) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// OneWayDelay returns the effective one-way propagation delay.
func (p Profile) OneWayDelay() time.Duration {
	return time.Duration(float64(p.RTT) / 2 / p.scale())
}

// TransmitTime returns the serialization time for n bytes.
func (p Profile) TransmitTime(n int) time.Duration {
	if p.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (p.Bandwidth * p.scale()) * float64(time.Second))
}

// Local is an unconstrained profile (same-host disk-backed access).
func Local() Profile { return Profile{Name: "Local"} }

// LAN models the paper's 100 Mbit/s campus Ethernet.
func LAN() Profile {
	return Profile{Name: "LAN", RTT: 200 * time.Microsecond, Bandwidth: 12.5e6}
}

// WAN models the Abilene path used in the paper, calibrated so that
// full-image SCP (~1.9 GB in 1127 s) and block-by-block NFS reads of a
// 320 MB memory state (~2060 s at 8 KB per 30 ms round trip) match the
// reported baselines.
func WAN() Profile {
	return Profile{Name: "WAN", RTT: 30 * time.Millisecond, Bandwidth: 1.75e6}
}

// Stats accumulates traffic counters for one direction of a link.
type Stats struct {
	Bytes    atomic.Uint64
	Messages atomic.Uint64
}

// LinkStats reports both directions of a link.
type LinkStats struct {
	Sent, Received uint64
}

// shaper meters bytes through a token bucket at the profile rate and
// computes each message's delivery time (serialization plus
// propagation). One shaper per direction serializes concurrent
// writers, modelling a shared physical link — this is what makes eight
// parallel clonings contend for the image server's uplink in the WAN-P
// experiment.
type shaper struct {
	p  Profile
	mu sync.Mutex
	// nextFree is when the link is next idle (token-bucket horizon).
	nextFree time.Time
}

// schedule accounts n bytes on the link. It returns how long the
// sender must stall for serialization back-pressure and the absolute
// time at which the bytes arrive at the far end. Senders do NOT wait
// out the propagation delay — messages pipeline on the wire, as on a
// real network.
func (s *shaper) schedule(n int) (stall time.Duration, deliverAt time.Time) {
	now := time.Now()
	if s.p.RTT == 0 && s.p.Bandwidth <= 0 {
		return 0, now
	}
	tx := s.p.TransmitTime(n)
	s.mu.Lock()
	if s.nextFree.Before(now) {
		s.nextFree = now
	}
	s.nextFree = s.nextFree.Add(tx)
	deliverAt = s.nextFree.Add(s.p.OneWayDelay())
	stall = s.nextFree.Sub(now)
	s.mu.Unlock()
	return stall, deliverAt
}

// delivery is one in-flight message.
type delivery struct {
	data []byte
	at   time.Time
}

// Conn wraps a net.Conn with link emulation. Writes stall only for
// serialization (bandwidth back-pressure); a delivery goroutine
// forwards each message to the underlying connection once its
// propagation delay has elapsed, so independent messages pipeline.
type Conn struct {
	net.Conn
	out   *shaper
	stats *Stats

	mu     sync.Mutex
	ch     chan delivery
	closed bool
	werr   error
}

func newConn(raw net.Conn, out *shaper, stats *Stats) *Conn {
	c := &Conn{Conn: raw, out: out, stats: stats, ch: make(chan delivery, 1024)}
	go c.deliverLoop()
	return c
}

func (c *Conn) deliverLoop() {
	for d := range c.ch {
		if wait := time.Until(d.at); wait > 0 {
			time.Sleep(wait)
		}
		if _, err := c.Conn.Write(d.data); err != nil {
			c.mu.Lock()
			if c.werr == nil {
				c.werr = err
			}
			c.mu.Unlock()
			// Drain the rest so writers never block forever.
			for range c.ch {
			}
			return
		}
	}
}

// Write shapes and forwards p. The data is copied; delivery happens
// asynchronously after the link's propagation delay.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if c.werr != nil {
		err := c.werr
		c.mu.Unlock()
		return 0, err
	}
	c.mu.Unlock()
	stall, at := c.out.schedule(len(p))
	c.stats.Bytes.Add(uint64(len(p)))
	c.stats.Messages.Add(1)
	buf := make([]byte, len(p))
	copy(buf, p)
	if stall > 0 {
		time.Sleep(stall)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.ch <- delivery{data: buf, at: at}
	c.mu.Unlock()
	return len(p), nil
}

// Close stops deliveries and closes the underlying connection. Any
// messages still "on the wire" are dropped, as when a host fails.
func (c *Conn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// Link emulates a bidirectional network path. Both directions share
// the profile but have independent token buckets, as with full-duplex
// links.
type Link struct {
	p         Profile
	up, down  shaper // up: client→server, down: server→client
	upStats   Stats
	downStats Stats
}

// NewLink returns a Link with the given profile.
func NewLink(p Profile) *Link {
	return &Link{p: p, up: shaper{p: p}, down: shaper{p: p}}
}

// Profile returns the link's profile.
func (l *Link) Profile() Profile { return l.p }

// Stats returns cumulative traffic counts: bytes sent client→server
// and server→client.
func (l *Link) Stats() LinkStats {
	return LinkStats{Sent: l.upStats.Bytes.Load(), Received: l.downStats.Bytes.Load()}
}

// ResetStats zeroes the traffic counters.
func (l *Link) ResetStats() {
	l.upStats.Bytes.Store(0)
	l.upStats.Messages.Store(0)
	l.downStats.Bytes.Store(0)
	l.downStats.Messages.Store(0)
}

// ClientConn wraps the client side of conn: writes traverse the uplink.
func (l *Link) ClientConn(conn net.Conn) net.Conn {
	return newConn(conn, &l.up, &l.upStats)
}

// ServerConn wraps the server side of conn: writes traverse the downlink.
func (l *Link) ServerConn(conn net.Conn) net.Conn {
	return newConn(conn, &l.down, &l.downStats)
}

// Listener wraps an accept loop so that every accepted connection is
// shaped by the link's downlink (server writes).
type Listener struct {
	net.Listener
	link *Link
}

// Listen starts a TCP listener on addr whose accepted connections are
// shaped by link.
func Listen(addr string, link *Link) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: l, link: link}, nil
}

// Accept returns the next shaped connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.link.ServerConn(conn), nil
}

// Dial connects to addr and shapes the client side with link.
func Dial(addr string, link *Link) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return link.ClientConn(conn), nil
}

// Pipe returns an in-process connection pair shaped by link: cli's
// writes traverse the uplink, srv's the downlink. It avoids TCP
// overhead in unit tests.
func Pipe(link *Link) (cli, srv net.Conn) {
	a, b := net.Pipe()
	return link.ClientConn(a), link.ServerConn(b)
}
