// Package simnet emulates wide-area and local-area network links on
// top of real loopback connections. It stands in for the paper's
// physical networks: the 100 Mbit/s campus Ethernet between compute
// and LAN image servers, and the Abilene path between the University
// of Florida and Northwestern University for the WAN image server.
//
// A Link applies one-way propagation delay and token-bucket bandwidth
// shaping to every byte that crosses it, and accounts traffic so
// experiments can report wire bytes alongside wall time. Shaping is
// enforced with real sleeps, so measured wall-clock durations include
// the same latency·RPC-count and bytes/bandwidth terms that dominate
// the paper's results.
package simnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes a link's characteristics.
type Profile struct {
	// Name labels the profile in reports ("LAN", "WAN", ...).
	Name string
	// RTT is the round-trip propagation delay; each direction of a
	// Link adds RTT/2 to the delivery time of every byte.
	RTT time.Duration
	// Bandwidth is the link rate in bytes per second (0 = unlimited).
	Bandwidth float64
	// Scale divides both RTT and per-byte cost, letting full-size
	// experiments run quickly while preserving every ratio. Zero or
	// one means unscaled.
	Scale float64
}

func (p Profile) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// OneWayDelay returns the effective one-way propagation delay.
func (p Profile) OneWayDelay() time.Duration {
	return time.Duration(float64(p.RTT) / 2 / p.scale())
}

// TransmitTime returns the serialization time for n bytes.
func (p Profile) TransmitTime(n int) time.Duration {
	if p.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (p.Bandwidth * p.scale()) * float64(time.Second))
}

// Local is an unconstrained profile (same-host disk-backed access).
func Local() Profile { return Profile{Name: "Local"} }

// LAN models the paper's 100 Mbit/s campus Ethernet.
func LAN() Profile {
	return Profile{Name: "LAN", RTT: 200 * time.Microsecond, Bandwidth: 12.5e6}
}

// WAN models the Abilene path used in the paper, calibrated so that
// full-image SCP (~1.9 GB in 1127 s) and block-by-block NFS reads of a
// 320 MB memory state (~2060 s at 8 KB per 30 ms round trip) match the
// reported baselines.
func WAN() Profile {
	return Profile{Name: "WAN", RTT: 30 * time.Millisecond, Bandwidth: 1.75e6}
}

// Stats accumulates traffic counters for one direction of a link.
type Stats struct {
	Bytes    atomic.Uint64
	Messages atomic.Uint64
}

// LinkStats reports both directions of a link.
type LinkStats struct {
	Sent, Received uint64
}

// shaper meters bytes through a token bucket at the profile rate and
// computes each message's delivery time (serialization plus
// propagation). One shaper per direction serializes concurrent
// writers, modelling a shared physical link — this is what makes eight
// parallel clonings contend for the image server's uplink in the WAN-P
// experiment.
type shaper struct {
	p  Profile
	mu sync.Mutex
	// nextFree is when the link is next idle (token-bucket horizon).
	nextFree time.Time
}

// schedule accounts n bytes on the link. It returns how long the
// sender must stall for serialization back-pressure and the absolute
// time at which the bytes arrive at the far end. Senders do NOT wait
// out the propagation delay — messages pipeline on the wire, as on a
// real network.
func (s *shaper) schedule(n int) (stall time.Duration, deliverAt time.Time) {
	now := time.Now()
	if s.p.RTT == 0 && s.p.Bandwidth <= 0 {
		return 0, now
	}
	tx := s.p.TransmitTime(n)
	s.mu.Lock()
	if s.nextFree.Before(now) {
		s.nextFree = now
	}
	s.nextFree = s.nextFree.Add(tx)
	deliverAt = s.nextFree.Add(s.p.OneWayDelay())
	stall = s.nextFree.Sub(now)
	s.mu.Unlock()
	return stall, deliverAt
}

// delivery is one in-flight message.
type delivery struct {
	data []byte
	at   time.Time
}

// Conn wraps a net.Conn with link emulation. Writes stall only for
// serialization (bandwidth back-pressure); a delivery goroutine
// forwards each message to the underlying connection once its
// propagation delay has elapsed, so independent messages pipeline.
type Conn struct {
	net.Conn
	out   *shaper
	stats *Stats
	link  *Link // for fault injection; nil only in tests

	mu     sync.Mutex
	ch     chan delivery
	closed bool
	werr   error
}

func newConn(raw net.Conn, out *shaper, stats *Stats, link *Link) *Conn {
	c := &Conn{Conn: raw, out: out, stats: stats, link: link, ch: make(chan delivery, 1024)}
	if link != nil {
		link.addConn(c)
	}
	go c.deliverLoop()
	return c
}

func (c *Conn) deliverLoop() {
	for d := range c.ch {
		if wait := time.Until(d.at); wait > 0 {
			time.Sleep(wait)
		}
		if c.link != nil {
			// A stall injected after this message was scheduled still
			// freezes it on the wire until the stall lifts.
			if wait := time.Until(c.link.stallDeadline()); wait > 0 {
				time.Sleep(wait)
			}
		}
		if _, err := c.Conn.Write(d.data); err != nil {
			c.mu.Lock()
			if c.werr == nil {
				c.werr = err
			}
			c.mu.Unlock()
			// Drain the rest so writers never block forever.
			for range c.ch {
			}
			return
		}
	}
}

// Write shapes and forwards p. The data is copied; delivery happens
// asynchronously after the link's propagation delay.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if c.werr != nil {
		err := c.werr
		c.mu.Unlock()
		return 0, err
	}
	c.mu.Unlock()
	if c.link != nil && c.link.loseMessage() {
		// Lost on the wire: the sender sees a normal local write (as
		// with a real TCP segment dropped past the NIC); the far end
		// simply never receives it.
		c.stats.Bytes.Add(uint64(len(p)))
		c.stats.Messages.Add(1)
		return len(p), nil
	}
	stall, at := c.out.schedule(len(p))
	if c.link != nil {
		if until := c.link.stallDeadline(); at.Before(until) {
			at = until
		}
	}
	c.stats.Bytes.Add(uint64(len(p)))
	c.stats.Messages.Add(1)
	buf := make([]byte, len(p))
	copy(buf, p)
	if stall > 0 {
		time.Sleep(stall)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.ch <- delivery{data: buf, at: at}
	c.mu.Unlock()
	return len(p), nil
}

// Close stops deliveries and closes the underlying connection. Any
// messages still "on the wire" are dropped, as when a host fails.
func (c *Conn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	if c.link != nil {
		c.link.removeConn(c)
	}
	return c.Conn.Close()
}

// Link emulates a bidirectional network path. Both directions share
// the profile but have independent token buckets, as with full-duplex
// links. Fault injection — message loss, stalls, partitions and
// connection kills — applies to both directions; see Drop, Stall,
// Partition and SetLoss.
type Link struct {
	p         Profile
	up, down  shaper // up: client→server, down: server→client
	upStats   Stats
	downStats Stats

	dropped atomic.Uint64 // messages lost to faults

	fmu         sync.Mutex
	partitioned bool
	stallUntil  time.Time
	lossRate    float64
	rng         *rand.Rand // nil until SetLoss; seeded for determinism
	conns       map[*Conn]struct{}
}

// NewLink returns a Link with the given profile.
func NewLink(p Profile) *Link {
	return &Link{p: p, up: shaper{p: p}, down: shaper{p: p},
		conns: make(map[*Conn]struct{})}
}

// --- fault injection -------------------------------------------------
//
// These model the WAN failure modes a long-lived GVFS session must
// survive: flapping TCP connections (Drop/Flap), routing stalls
// (Stall), hard partitions (Partition/Heal) and random message loss
// (SetLoss). All methods are safe for concurrent use with traffic.

func (l *Link) addConn(c *Conn) {
	l.fmu.Lock()
	l.conns[c] = struct{}{}
	l.fmu.Unlock()
}

func (l *Link) removeConn(c *Conn) {
	l.fmu.Lock()
	delete(l.conns, c)
	l.fmu.Unlock()
}

// Drop kills every connection currently traversing the link, as when a
// NAT entry expires or a stateful middlebox reboots. New connections
// (and redials) succeed immediately.
func (l *Link) Drop() {
	l.fmu.Lock()
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.fmu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Flap kills all connections n times, gap apart — a flapping path.
// It blocks for n*gap; run it from a goroutine to flap mid-transfer.
func (l *Link) Flap(n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		l.Drop()
		time.Sleep(gap)
	}
}

// Stall freezes delivery in both directions for d: messages written
// (or still on the wire) during the stall arrive only after it lifts.
// Connections stay up — the paper's long-haul path hiccup.
func (l *Link) Stall(d time.Duration) {
	l.fmu.Lock()
	if until := time.Now().Add(d); until.After(l.stallUntil) {
		l.stallUntil = until
	}
	l.fmu.Unlock()
}

func (l *Link) stallDeadline() time.Time {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.stallUntil
}

// Partition black-holes the link: every message in either direction is
// silently lost and new Dials through the link fail, while established
// connections stay "up" from the endpoints' perspective — exactly the
// failure a per-call deadline exists to detect. Heal ends it.
func (l *Link) Partition() {
	l.fmu.Lock()
	l.partitioned = true
	l.fmu.Unlock()
}

// Heal ends a partition.
func (l *Link) Heal() {
	l.fmu.Lock()
	l.partitioned = false
	l.fmu.Unlock()
}

// Partitioned reports whether the link is currently partitioned.
func (l *Link) Partitioned() bool {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.partitioned
}

// SetLoss drops each message crossing the link with probability rate,
// using a deterministic seeded source so chaos runs are reproducible.
// Rate 0 disables loss.
func (l *Link) SetLoss(rate float64, seed int64) {
	l.fmu.Lock()
	l.lossRate = rate
	if rate > 0 {
		l.rng = rand.New(rand.NewSource(seed))
	} else {
		l.rng = nil
	}
	l.fmu.Unlock()
}

// loseMessage decides the fate of one message under the current faults.
func (l *Link) loseMessage() bool {
	l.fmu.Lock()
	lost := l.partitioned || (l.rng != nil && l.rng.Float64() < l.lossRate)
	l.fmu.Unlock()
	if lost {
		l.dropped.Add(1)
	}
	return lost
}

// DroppedMessages returns the number of messages lost to injected
// faults (loss and partitions; messages cut off by Drop not included).
func (l *Link) DroppedMessages() uint64 { return l.dropped.Load() }

// Profile returns the link's profile.
func (l *Link) Profile() Profile { return l.p }

// Stats returns cumulative traffic counts: bytes sent client→server
// and server→client.
func (l *Link) Stats() LinkStats {
	return LinkStats{Sent: l.upStats.Bytes.Load(), Received: l.downStats.Bytes.Load()}
}

// ResetStats zeroes the traffic counters.
func (l *Link) ResetStats() {
	l.upStats.Bytes.Store(0)
	l.upStats.Messages.Store(0)
	l.downStats.Bytes.Store(0)
	l.downStats.Messages.Store(0)
}

// ClientConn wraps the client side of conn: writes traverse the uplink.
func (l *Link) ClientConn(conn net.Conn) net.Conn {
	return newConn(conn, &l.up, &l.upStats, l)
}

// ServerConn wraps the server side of conn: writes traverse the downlink.
func (l *Link) ServerConn(conn net.Conn) net.Conn {
	return newConn(conn, &l.down, &l.downStats, l)
}

// Listener wraps an accept loop so that every accepted connection is
// shaped by the link's downlink (server writes).
type Listener struct {
	net.Listener
	link *Link
}

// Listen starts a TCP listener on addr whose accepted connections are
// shaped by link.
func Listen(addr string, link *Link) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: l, link: link}, nil
}

// Accept returns the next shaped connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.link.ServerConn(conn), nil
}

// Dial connects to addr and shapes the client side with link. While
// the link is partitioned, dialing fails as a real SYN would.
func (l *Link) checkDial() error {
	if l.Partitioned() {
		return fmt.Errorf("simnet: %s link partitioned", l.p.Name)
	}
	return nil
}

// Dial connects to addr and shapes the client side with link.
func Dial(addr string, link *Link) (net.Conn, error) {
	if err := link.checkDial(); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return link.ClientConn(conn), nil
}

// Pipe returns an in-process connection pair shaped by link: cli's
// writes traverse the uplink, srv's the downlink. It avoids TCP
// overhead in unit tests.
func Pipe(link *Link) (cli, srv net.Conn) {
	a, b := net.Pipe()
	return link.ClientConn(a), link.ServerConn(b)
}
