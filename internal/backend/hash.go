package backend

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Hash is a block content hash (SHA-256). The cache's dedup map keys
// frames by it, and the paper's zero-block map generalizes to "blocks
// whose hash is the well-known hash of N zero bytes".
type Hash [sha256.Size]byte

// String returns the hash in hex (for manifests and logs).
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash decodes a hex hash string.
func ParseHash(s string) (Hash, bool) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return Hash{}, false
	}
	copy(h[:], b)
	return h, true
}

// HashOf returns the content hash of data.
func HashOf(data []byte) Hash { return sha256.Sum256(data) }

// zeroHashes caches the hash of n zero bytes per length seen; block
// sizes in one deployment are few, so the map stays tiny.
var zeroHashes sync.Map // int -> Hash

// ZeroHash returns the well-known hash of n zero bytes.
func ZeroHash(n int) Hash {
	if v, ok := zeroHashes.Load(n); ok {
		return v.(Hash)
	}
	h := sha256.Sum256(make([]byte, n))
	zeroHashes.Store(n, Hash(h))
	return h
}

// IsZeroHash reports whether h is the hash of n zero bytes.
func IsZeroHash(h Hash, n int) bool { return h == ZeroHash(n) }
