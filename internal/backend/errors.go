package backend

import (
	"context"
	"errors"
	"fmt"
)

// Class partitions backend failures by how the proxy must react. The
// taxonomy replaces ad-hoc inspection of nfs3.Error / sunrpc.RPCError
// on the write-back and read-miss paths, so an objstore failure
// degrades exactly like the equivalent NFS failure.
type Class int

const (
	// ClassIO is a hard, server-reported error: the path to the
	// backend is alive but this operation failed (permission, I/O
	// error, invalid argument...). Not retriable, never trips the
	// circuit breaker.
	ClassIO Class = iota

	// ClassUnavailable is a transport-level failure — the backend
	// could not be reached or did not answer at the RPC level. Counts
	// toward opening the circuit breaker.
	ClassUnavailable

	// ClassTimeout is an exhausted per-call deadline. Deliberately
	// breaker-neutral: a caller-imposed budget expiring says nothing
	// definitive about backend health.
	ClassTimeout

	// ClassRetriable is a transient backend condition (NFS3ERR_JUKEBOX
	// and equivalents): retry later. Write-back keeps the block dirty
	// and the journal entry live.
	ClassRetriable

	// ClassStale means the file identifier no longer resolves
	// (NFS3ERR_STALE): cached state for the file should be dropped.
	ClassStale

	// ClassNotFound is a missing file or name (NFS3ERR_NOENT).
	ClassNotFound
)

func (c Class) String() string {
	switch c {
	case ClassIO:
		return "io"
	case ClassUnavailable:
		return "unavailable"
	case ClassTimeout:
		return "timeout"
	case ClassRetriable:
		return "retriable"
	case ClassStale:
		return "stale"
	case ClassNotFound:
		return "not-found"
	}
	return "unknown"
}

// Error is the backend failure type. Status carries the NFS-compatible
// status code when one applies (so the proxy can echo the original
// code to its client); zero means "none, derive from Class".
type Error struct {
	Class  Class
	Op     string
	Status uint32
	Err    error
}

func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("backend: %s: %s: %v", e.Op, e.Class, e.Err)
	}
	return fmt.Sprintf("backend: %s: %s", e.Op, e.Class)
}

func (e *Error) Unwrap() error { return e.Err }

// Classify maps any error to the Class the proxy should act on.
// Unknown errors default to ClassUnavailable — an unclassifiable
// failure from the upstream path is treated as transport trouble,
// matching the pre-refactor breaker semantics.
func Classify(err error) Class {
	var be *Error
	if errors.As(err, &be) {
		return be.Class
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	return ClassUnavailable
}
