package replbe

import (
	"sync"

	"gvfs/internal/backend"
)

// item is one queued replication operation: an acknowledged write or
// create to re-apply on a secondary, keyed by the file it touches so
// read routing can tell which files the replica is still catching up
// on.
type item struct {
	key   string
	apply func(b backend.Backend) error
}

// queue is one replica's FIFO replication queue. Items are applied in
// the order the primary acknowledged them, which preserves per-file
// write ordering for any single writer. pending counts items per file
// and stays nonzero from enqueue until the apply finished — the window
// in which reads must avoid the replica.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []item
	pending map[string]int
	closed  bool
}

func newQueue() *queue {
	q := &queue{pending: make(map[string]int)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// add enqueues one operation (no-op after close).
func (q *queue) add(key string, apply func(b backend.Backend) error) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, item{key: key, apply: apply})
		q.pending[key]++
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// take blocks for the next item; ok is false when the queue is closed
// and drained of waiters.
func (q *queue) take() (item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return item{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

// finish drops the pending count for one applied (or abandoned) item.
func (q *queue) finish(key string) {
	q.mu.Lock()
	if q.pending[key]--; q.pending[key] <= 0 {
		delete(q.pending, key)
	}
	q.mu.Unlock()
}

// pendingFor returns the number of not-yet-applied items for a file.
func (q *queue) pendingFor(key string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending[key]
}

// depth is the total pending count across files (queued + in-flight).
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, v := range q.pending {
		n += v
	}
	return n
}

// close wakes the worker to exit; queued items are abandoned (their
// files keep nonzero pending, but the composite is shutting down).
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
