package replbe

import (
	"errors"
	"sync"

	"gvfs/internal/backend"
)

// item is one queued replication operation: an acknowledged write or
// create to re-apply on a secondary, keyed by the file it touches so
// read routing can tell which files the replica is still catching up
// on. Create items carry a second key — the (dir, name) pair — so
// lookup routing can tell the name is still materializing. done is
// non-nil for synchronously routed operations (a failover write landing
// behind queued items, see Backend.writeOn): the worker delivers the
// apply error there.
type item struct {
	key     string
	nameKey string // optional second pending key ("" = none)
	apply   func(b backend.Backend) error
	done    chan error
}

// errQueueClosed is delivered to sync waiters whose item can no longer
// be applied because the composite is shutting down.
var errQueueClosed = &backend.Error{Class: backend.ClassUnavailable, Op: "replicate",
	Err: errors.New("replication queue closed")}

// errReplicaDown is delivered when the worker skips an item because the
// replica is marked down (the item's file goes stale instead).
var errReplicaDown = &backend.Error{Class: backend.ClassUnavailable, Op: "replicate",
	Err: errors.New("replica down")}

// queue is one replica's FIFO replication queue. Items are applied in
// the order the primary acknowledged them, which preserves per-file
// write ordering for any single writer. pending counts items per key
// and stays nonzero from enqueue until the apply finished — the window
// in which reads must avoid the replica.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []item
	pending map[string]int
	closed  bool
}

func newQueue() *queue {
	q := &queue{pending: make(map[string]int)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// add enqueues one asynchronous operation (no-op after close).
func (q *queue) add(key, nameKey string, apply func(b backend.Backend) error) {
	q.mu.Lock()
	if !q.closed {
		q.enqueueLocked(item{key: key, nameKey: nameKey, apply: apply})
	}
	q.mu.Unlock()
}

// addSync enqueues an operation that a caller is waiting on — a
// failover op that must apply *after* the queued items for its file to
// preserve write ordering. The returned channel delivers the apply
// error (buffered: the worker never blocks on a departed waiter).
func (q *queue) addSync(key, nameKey string, apply func(b backend.Backend) error) <-chan error {
	done := make(chan error, 1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done <- errQueueClosed
		return done
	}
	q.enqueueLocked(item{key: key, nameKey: nameKey, apply: apply, done: done})
	q.mu.Unlock()
	return done
}

func (q *queue) enqueueLocked(it item) {
	q.items = append(q.items, it)
	q.pending[it.key]++
	if it.nameKey != "" {
		q.pending[it.nameKey]++
	}
	q.cond.Signal()
}

// take blocks for the next item; ok is false when the queue is closed
// and drained.
func (q *queue) take() (item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return item{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

// finish drops the pending counts for one applied (or abandoned) item.
func (q *queue) finish(it item) {
	q.mu.Lock()
	if q.pending[it.key]--; q.pending[it.key] <= 0 {
		delete(q.pending, it.key)
	}
	if it.nameKey != "" {
		if q.pending[it.nameKey]--; q.pending[it.nameKey] <= 0 {
			delete(q.pending, it.nameKey)
		}
	}
	q.mu.Unlock()
}

// pendingFor returns the number of not-yet-applied items for a key.
func (q *queue) pendingFor(key string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending[key]
}

// pendingForID is pendingFor keyed by FileID without materializing the
// key string (the map index compiles to an allocation-free lookup).
func (q *queue) pendingForID(f backend.FileID) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending[string(f)]
}

// depth is the total pending count across keys (queued + in-flight).
// Create items count once per key, so depth is an upper bound on the
// queued item count — callers only compare it against zero.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, v := range q.pending {
		n += v
	}
	return n
}

// close wakes the worker, which drains the remaining items before
// exiting (Backend.Close waits on the worker before closing replica
// backends, so the drain still has live targets).
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
