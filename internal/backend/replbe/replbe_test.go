package replbe

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/backend/objstore"
)

const testFile = "/images/vm0.img"

func fileContent(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*13 + i>>9)
	}
	return data
}

// mkObj builds one objstore replica holding testFile with content.
func mkObj(t *testing.T, content []byte) *objstore.Backend {
	t.Helper()
	b := objstore.New(objstore.NewMemStore(), 8192)
	if err := b.CreateFile(testFile, content); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return b
}

func unavailable() error {
	return &backend.Error{Class: backend.ClassUnavailable, Op: "fault", Err: errors.New("injected outage")}
}

// mkSet builds a composite over n identically seeded objstore replicas.
func mkSet(t *testing.T, n int, cfg Config) (*Backend, []*objstore.Backend, []byte) {
	t.Helper()
	content := fileContent(40960)
	var reps []Replica
	var objs []*objstore.Backend
	for i := 0; i < n; i++ {
		o := mkObj(t, content)
		objs = append(objs, o)
		reps = append(reps, Replica{B: o})
	}
	c, err := New(reps, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, objs, content
}

func TestFailoverRead(t *testing.T) {
	c, objs, content := mkSet(t, 3, Config{ScrubInterval: -1})
	objs[0].SetFault(unavailable())
	for i := 0; i < 5; i++ {
		r, err := c.Read(backend.FileID(testFile), 0, 8192, backend.CallOpts{})
		if err != nil {
			t.Fatalf("read %d with one dead replica: %v", i, err)
		}
		if !bytes.Equal(r.Data, content[:8192]) {
			t.Fatalf("read %d returned wrong bytes", i)
		}
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Error("no failovers recorded despite a dead replica")
	}
	if st.Replicas[0].State != "down" {
		t.Errorf("replica 0 state = %q after repeated failures, want down", st.Replicas[0].State)
	}
}

func TestAllReplicasDownIsUnavailable(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	for _, o := range objs {
		o.SetFault(unavailable())
	}
	_, err := c.Read(backend.FileID(testFile), 0, 8192, backend.CallOpts{})
	if err == nil {
		t.Fatal("read succeeded with every replica dead")
	}
	if cl := backend.Classify(err); cl != backend.ClassUnavailable {
		t.Errorf("whole-set failure classified %v, want unavailable", cl)
	}
	if err := c.Probe(); err == nil {
		t.Error("probe reported a fully dead set healthy")
	}
}

func TestAuthoritativeErrorNotRetried(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	// A missing file is an authoritative NotFound from the first
	// replica; the composite must not mask it by trying the others.
	_, err := c.Read(backend.FileID("/nope"), 0, 8192, backend.CallOpts{})
	if cl := backend.Classify(err); cl != backend.ClassNotFound {
		t.Errorf("missing file classified %v, want not-found", cl)
	}
	if got := c.Stats().Failovers; got != 0 {
		t.Errorf("authoritative error caused %d failovers, want 0", got)
	}
	_ = objs
}

func TestWriteReplicatesAsync(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	patch := bytes.Repeat([]byte{0xAB}, 8192)
	if _, err := c.Write(backend.FileID(testFile), 8192, patch, backend.CallOpts{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Read-your-writes through the composite, immediately.
	r, err := c.Read(backend.FileID(testFile), 8192, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(r.Data, patch) {
		t.Fatalf("readback through composite: err=%v match=%v", err, bytes.Equal(r.Data, patch))
	}
	if !c.WaitReplicated(5 * time.Second) {
		t.Fatal("replication queues did not drain")
	}
	// Every replica holds the write after the queues drain.
	for i, o := range objs {
		r, err := o.Read(backend.FileID(testFile), 8192, 8192, backend.CallOpts{})
		if err != nil || !bytes.Equal(r.Data, patch) {
			t.Errorf("replica %d missing replicated write: err=%v", i, err)
		}
	}
}

func TestFailedReplicationMarksStaleThenScrubRepairs(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	objs[2].SetFault(unavailable())
	patch := bytes.Repeat([]byte{0xCD}, 8192)
	if _, err := c.Write(backend.FileID(testFile), 0, patch, backend.CallOpts{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !c.WaitReplicated(5 * time.Second) {
		t.Fatal("replication queues did not drain")
	}
	if got := c.Stats().Replicas[2].StaleFiles; got != 1 {
		t.Fatalf("replica 2 stale files = %d after failed replication, want 1", got)
	}
	// While stale, reads must never land on replica 2 (its copy is old).
	if c.reps[2].consistentFor(testFile) {
		t.Fatal("stale replica still considered consistent")
	}
	objs[2].SetFault(nil)
	c.reps[2].markUp() // probe loop would do this; keep the test synchronous
	c.ScrubNow()
	st := c.Stats()
	if st.Scrub.BlocksRepaired == 0 {
		t.Fatalf("scrub repaired nothing: %+v", st.Scrub)
	}
	if got := st.Replicas[2].StaleFiles; got != 0 {
		t.Errorf("stale files = %d after scrub, want 0", got)
	}
	r, err := objs[2].Read(backend.FileID(testFile), 0, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(r.Data, patch) {
		t.Errorf("replica 2 still divergent after scrub: err=%v", err)
	}
}

func TestScrubDetectsAndRepairsDivergence(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	// Diverge replica 1 behind the composite's back: a direct write the
	// replication machinery never saw (bit rot, a rogue writer).
	rogue := bytes.Repeat([]byte{0x66}, 8192)
	if _, err := objs[1].Write(backend.FileID(testFile), 16384, rogue, backend.CallOpts{}); err != nil {
		t.Fatalf("rogue write: %v", err)
	}
	c.RegisterFile(backend.FileID(testFile))
	c.ScrubNow()
	st := c.Stats().Scrub
	if st.BlocksDivergent == 0 {
		t.Fatalf("scrub saw no divergence: %+v", st)
	}
	if st.BlocksRepaired == 0 {
		t.Fatalf("scrub repaired no blocks: %+v", st)
	}
	want := fileContent(40960)[16384 : 16384+8192]
	r, err := objs[1].Read(backend.FileID(testFile), 16384, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(r.Data, want) {
		t.Errorf("replica 1 not repaired: err=%v", err)
	}
}

func TestQuorumWrite(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{Quorum: true, ScrubInterval: -1})
	objs[2].SetFault(unavailable())
	patch := bytes.Repeat([]byte{0xEE}, 8192)
	// 2 of 3 up: quorum holds.
	if _, err := c.Write(backend.FileID(testFile), 0, patch, backend.CallOpts{}); err != nil {
		t.Fatalf("write with 2/3 replicas: %v", err)
	}
	if got := c.Stats().Replicas[2].StaleFiles; got != 1 {
		t.Errorf("skipped replica stale files = %d, want 1", got)
	}
	// 1 of 3 up: below quorum, the write must fail as Unavailable.
	objs[1].SetFault(unavailable())
	_, err := c.Write(backend.FileID(testFile), 0, patch, backend.CallOpts{})
	if err == nil {
		t.Fatal("write succeeded below quorum")
	}
	if cl := backend.Classify(err); cl != backend.ClassUnavailable {
		t.Errorf("below-quorum write classified %v, want unavailable", cl)
	}
}

func TestProbeRecovery(t *testing.T) {
	c, objs, _ := mkSet(t, 2, Config{ProbeInterval: 10 * time.Millisecond, ScrubInterval: -1})
	objs[0].SetFault(unavailable())
	for i := 0; i < 4; i++ {
		c.Read(backend.FileID(testFile), 0, 512, backend.CallOpts{})
	}
	if !c.reps[0].isDown() {
		t.Fatal("replica 0 not marked down after repeated failures")
	}
	objs[0].SetFault(nil)
	deadline := time.Now().Add(5 * time.Second)
	for c.reps[0].isDown() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.reps[0].isDown() {
		t.Fatal("probe loop never recovered the healed replica")
	}
}

// slowBackend delays reads by the current value of delay, simulating a
// stalled-but-alive replica.
type slowBackend struct {
	backend.Backend
	delayNs atomic.Int64
}

func (s *slowBackend) Read(f backend.FileID, off uint64, count uint32, opts backend.CallOpts) (backend.ReadResult, error) {
	if d := s.delayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.Backend.Read(f, off, count, opts)
}

func TestHedgedReadBeatsStalledReplica(t *testing.T) {
	content := fileContent(40960)
	slow := &slowBackend{Backend: mkObj(t, content)}
	// The hedge target carries a constant 300µs so the other replica is
	// deterministically the EWMA-preferred primary.
	fast := &slowBackend{Backend: mkObj(t, content)}
	fast.delayNs.Store(int64(300 * time.Microsecond))
	c, err := New([]Replica{{Name: "a", B: slow}, {Name: "b", B: fast}}, Config{
		ScrubInterval: -1,
		HedgeMinDelay: 2 * time.Millisecond,
		HedgeMaxDelay: 5 * time.Millisecond,
		HedgeBudget:   1.0, // the test wants every slow read hedged
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer c.Close()
	fid := backend.FileID(testFile)
	// Warm the latency distribution past the hedge threshold while both
	// replicas are fast.
	for i := 0; i < hedgeWarmup+5; i++ {
		if _, err := c.Read(fid, 0, 4096, backend.CallOpts{}); err != nil {
			t.Fatalf("warmup read: %v", err)
		}
	}
	// Stall replica a. Its EWMA is the lowest (it answered instantly so
	// far), so it stays the first routing choice — exactly the case
	// hedging exists for.
	slow.delayNs.Store(int64(200 * time.Millisecond))
	start := time.Now()
	r, err := c.Read(fid, 0, 4096, backend.CallOpts{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(r.Data, content[:4096]) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if got := c.Stats().Replicas[0].EWMALatencyNs; got == 0 {
		t.Error("primary never served the warmup reads; routing premise broken")
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("hedged read took %v; the hedge should have beaten the 200ms stall", elapsed)
	}
	st := c.Stats()
	if st.HedgesFired == 0 || st.HedgesWon == 0 {
		t.Errorf("hedge counters: fired=%d won=%d, want both > 0", st.HedgesFired, st.HedgesWon)
	}
}

func TestHedgeRespectsDeadlineBudget(t *testing.T) {
	c, _, _ := mkSet(t, 2, Config{ScrubInterval: -1, HedgeMinDelay: 50 * time.Millisecond})
	for i := 0; i < hedgeWarmup+5; i++ {
		c.Read(backend.FileID(testFile), 0, 512, backend.CallOpts{})
	}
	// Remaining budget (20ms) < 2 x hedge delay (50ms): no hedge.
	opts := backend.CallOpts{Deadline: time.Now().Add(20 * time.Millisecond)}
	if d := c.hedgeDelay(opts); d != 0 {
		t.Errorf("hedgeDelay = %v under a tight deadline, want 0", d)
	}
	// Without a deadline the clamped delay applies.
	if d := c.hedgeDelay(backend.CallOpts{}); d < 50*time.Millisecond {
		t.Errorf("hedgeDelay = %v, want >= the 50ms floor", d)
	}
}

func TestHedgeBudgetCap(t *testing.T) {
	c, _, _ := mkSet(t, 2, Config{ScrubInterval: -1, HedgeBudget: 0.1})
	c.reads.Store(100)
	c.hedgesFired.Store(11)
	if c.takeHedgeToken() {
		t.Error("hedge token granted above the 10% budget")
	}
	c.hedgesFired.Store(2)
	if !c.takeHedgeToken() {
		t.Error("hedge token denied below budget")
	}
}

func TestCreateReplicates(t *testing.T) {
	c, objs, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	fid, _, err := c.Create(backend.FileID("/images"), "new.img", backend.CallOpts{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Write(fid, 0, []byte("hello"), backend.CallOpts{}); err != nil {
		t.Fatalf("write to created file: %v", err)
	}
	if !c.WaitReplicated(5 * time.Second) {
		t.Fatal("replication queues did not drain")
	}
	for i, o := range objs {
		if _, err := o.GetAttr(fid, backend.CallOpts{}); err != nil {
			t.Errorf("replica %d missing created file: %v", i, err)
		}
	}
}

// gatedBackend holds Write and Create until the gate opens, letting a
// test pin a replica's replication queue in the not-yet-applied state
// while it drives failover traffic at the same file.
type gatedBackend struct {
	*objstore.Backend
	gate chan struct{}
}

func (g *gatedBackend) Write(f backend.FileID, off uint64, data []byte, opts backend.CallOpts) (*backend.Attr, error) {
	<-g.gate
	return g.Backend.Write(f, off, data, opts)
}

func (g *gatedBackend) Create(dir backend.FileID, name string, opts backend.CallOpts) (backend.FileID, backend.Attr, error) {
	<-g.gate
	return g.Backend.Create(dir, name, opts)
}

// TestWriteFailoverOrdersBehindQueuedWrites pins the write-ordering
// invariant: a write that fails over to a secondary whose queue still
// holds an older write for the same file must apply after it, not race
// it. A direct write would be overwritten when the worker applied the
// queued data, silently losing an acknowledged write.
func TestWriteFailoverOrdersBehindQueuedWrites(t *testing.T) {
	content := fileContent(40960)
	primary := mkObj(t, content)
	gate := make(chan struct{})
	gateOnce := sync.OnceFunc(func() { close(gate) })
	defer gateOnce() // a Fatal path must still unblock the worker for Close
	sec := &gatedBackend{Backend: mkObj(t, content), gate: gate}
	c, err := New([]Replica{{Name: "p", B: primary}, {Name: "s", B: sec}}, Config{ScrubInterval: -1})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	fid := backend.FileID(testFile)

	// Acknowledged on the primary; the replication to s parks at the gate.
	old := bytes.Repeat([]byte{0x01}, 8192)
	if _, err := c.Write(fid, 0, old, backend.CallOpts{}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	primary.SetFault(unavailable())

	// The failover write must queue behind the parked item.
	newData := bytes.Repeat([]byte{0x02}, 8192)
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(fid, 0, newData, backend.CallOpts{})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.reps[1].q.pendingFor(testFile) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("failover write never routed through the replication queue")
		}
		time.Sleep(time.Millisecond)
	}
	gateOnce()
	if err := <-done; err != nil {
		t.Fatalf("failover write: %v", err)
	}
	if !c.WaitReplicated(5 * time.Second) {
		t.Fatal("replication queues did not drain")
	}
	// The secondary must hold the acknowledged (newer) data, and the
	// composite must serve it: the queued old write applied first.
	r, err := sec.Backend.Read(fid, 0, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(r.Data, newData) {
		t.Fatalf("secondary lost the acknowledged failover write: err=%v old=%v",
			err, bytes.Equal(r.Data, old))
	}
	cr, err := c.Read(fid, 0, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(cr.Data, newData) {
		t.Fatalf("composite read after failover write: err=%v", err)
	}
}

// TestQuorumTotalFailureMarksNothingStale: a quorum write that lands
// nowhere leaves the old state uniform, so no replica may be marked
// stale — branding all of them would leave the file with no read
// candidate and the scrub with no repair source, permanently.
func TestQuorumTotalFailureMarksNothingStale(t *testing.T) {
	c, objs, content := mkSet(t, 3, Config{Quorum: true, ScrubInterval: -1})
	for _, o := range objs {
		o.SetFault(unavailable())
	}
	patch := bytes.Repeat([]byte{0x7F}, 8192)
	if _, err := c.Write(backend.FileID(testFile), 0, patch, backend.CallOpts{}); err == nil {
		t.Fatal("write succeeded with every replica dead")
	}
	for i, r := range c.reps {
		if got := r.staleCount(); got != 0 {
			t.Errorf("replica %d stale files = %d after total write failure, want 0", i, got)
		}
	}
	for _, o := range objs {
		o.SetFault(nil)
	}
	r, err := c.Read(backend.FileID(testFile), 0, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(r.Data, content[:8192]) {
		t.Fatalf("file unreadable after recovered total-failure write: %v", err)
	}
}

// TestLookupSeesQueuedCreate: a lookup that fails over to a replica
// whose queue still holds the Create for that name must resolve the
// file (by riding the queue behind the create), not return NotFound
// for a file the composite has acknowledged.
func TestLookupSeesQueuedCreate(t *testing.T) {
	content := fileContent(8192)
	primary := mkObj(t, content)
	gate := make(chan struct{})
	gateOnce := sync.OnceFunc(func() { close(gate) })
	defer gateOnce()
	sec := &gatedBackend{Backend: mkObj(t, content), gate: gate}
	c, err := New([]Replica{{Name: "p", B: primary}, {Name: "s", B: sec}}, Config{ScrubInterval: -1})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	dir := backend.FileID("/images")
	fid, _, err := c.Create(dir, "new.img", backend.CallOpts{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	primary.SetFault(unavailable())

	type lookupResult struct {
		fid backend.FileID
		err error
	}
	done := make(chan lookupResult, 1)
	go func() {
		f, _, lerr := c.Lookup(dir, "new.img", backend.CallOpts{})
		done <- lookupResult{f, lerr}
	}()
	nk := nameKey(dir, "new.img")
	deadline := time.Now().Add(5 * time.Second)
	for c.reps[1].q.pendingFor(nk) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("failover lookup never routed through the replication queue")
		}
		time.Sleep(time.Millisecond)
	}
	gateOnce()
	res := <-done
	if res.err != nil {
		t.Fatalf("lookup after create with dead acker: %v", res.err)
	}
	if !bytes.Equal(res.fid, fid) {
		t.Fatalf("lookup resolved %q, create returned %q", res.fid, fid)
	}
}

// TestScrubConvergesWhenEveryReplicaStale: when no replica holds a
// consistent copy (every one carries a stale marker), the scrub must
// converge the set on the primary-order copy and restore readability
// instead of leaving the file permanently without a repair source.
func TestScrubConvergesWhenEveryReplicaStale(t *testing.T) {
	c, _, content := mkSet(t, 3, Config{Quorum: true, ScrubInterval: -1})
	c.RegisterFile(backend.FileID(testFile))
	for _, r := range c.reps {
		r.markStale(testFile)
	}
	if _, err := c.Read(backend.FileID(testFile), 0, 8192, backend.CallOpts{}); err == nil {
		t.Fatal("read succeeded with every replica stale")
	}
	c.ScrubNow()
	for i, r := range c.reps {
		if got := r.staleCount(); got != 0 {
			t.Errorf("replica %d stale files = %d after scrub convergence, want 0", i, got)
		}
	}
	r, err := c.Read(backend.FileID(testFile), 0, 8192, backend.CallOpts{})
	if err != nil || !bytes.Equal(r.Data, content[:8192]) {
		t.Fatalf("file still unreadable after scrub convergence: %v", err)
	}
}

func TestLatTrackerQuantile(t *testing.T) {
	lt := newLatTracker()
	for i := 0; i < 99; i++ {
		lt.observe(100 * time.Microsecond)
	}
	lt.observe(50 * time.Millisecond)
	q := lt.quantile(0.5)
	if q > time.Millisecond {
		t.Errorf("p50 = %v, want at most ~256µs", q)
	}
	q99 := lt.quantile(0.999)
	if q99 < 10*time.Millisecond {
		t.Errorf("p99.9 = %v, want to land in the slow tail", q99)
	}
}

func TestCapsAndDelegation(t *testing.T) {
	c, _, _ := mkSet(t, 3, Config{ScrubInterval: -1})
	caps := c.Caps()
	if caps.Name != "repl" {
		t.Errorf("caps name = %q", caps.Name)
	}
	if !caps.ContentHashes {
		t.Error("all-objstore set should advertise content hashes")
	}
	if _, _, ok := c.BlockHash(backend.FileID(testFile), 0, 8192); !ok {
		t.Error("BlockHash delegation failed")
	}
	if _, _, err := c.Root("/images"); err != nil {
		t.Errorf("root: %v", err)
	}
	if _, _, err := c.Lookup(backend.FileID("/images"), "vm0.img", backend.CallOpts{}); err != nil {
		t.Errorf("lookup: %v", err)
	}
}
