package replbe

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latTracker is a lock-free fixed-bucket latency histogram tracking
// the read-latency distribution online, the hedge trigger's evidence —
// the flight recorder's histogram idea reduced to the two operations
// this path needs (observe, quantile). Bucket i covers durations in
// [2^i, 2^(i+1)) microseconds; 40 buckets span <1µs to ~12 days.
type latTracker struct {
	buckets [40]atomic.Uint64
	total   atomic.Uint64
}

func newLatTracker() *latTracker { return &latTracker{} }

func (t *latTracker) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for <1µs, else floor(log2)+1
	if i >= len(t.buckets) {
		i = len(t.buckets) - 1
	}
	t.buckets[i].Add(1)
	t.total.Add(1)
}

func (t *latTracker) count() uint64 { return t.total.Load() }

// quantile returns an upper bound on the q-quantile of observed
// latencies (the top edge of the bucket the quantile falls in). The
// scan reads each bucket once; concurrent observes can make the result
// off by a sample, which is fine for a hedge trigger.
func (t *latTracker) quantile(q float64) time.Duration {
	total := t.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := range t.buckets {
		cum += t.buckets[i].Load()
		if cum > target {
			// Upper edge of bucket i: 2^i µs.
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(len(t.buckets)-1)) * time.Microsecond
}
