package replbe

import (
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/backend"
)

// replica is one member's runtime state: the backend, its health
// score, its replication queue (primary-ack mode) and the set of files
// known stale on it.
type replica struct {
	name     string
	b        backend.Backend
	readOnly bool
	idx      int

	ops       atomic.Uint64
	errs      atomic.Uint64
	hedgeWins atomic.Uint64
	ewmaNs    atomic.Int64

	mu          sync.Mutex
	down        bool
	consec      int // consecutive Unavailable/Timeout failures
	downSince   time.Time
	transitions uint64 // healthy→down transitions

	// stale holds files this replica is known to be missing data for:
	// a replication apply failed, or a quorum write skipped it. Reads
	// never route to a replica stale for the file; the scrub repairs
	// and clears. staleEpoch increments on every marking so the scrub
	// can detect a mark that raced its repair.
	stale      map[string]bool
	staleEpoch uint64

	q *queue // nil for read-only replicas and in quorum mode
}

func newReplica(name string, b backend.Backend, readOnly bool, idx int) *replica {
	return &replica{name: name, b: b, readOnly: readOnly, idx: idx, stale: make(map[string]bool)}
}

// ewmaAlphaInv is the EWMA weight divisor: new = old + (d-old)/8.
const ewmaAlphaInv = 8

// observe feeds one operation's outcome into the health score. Only
// the failover classes (Unavailable, Timeout) count toward marking the
// replica down — any answer from the server, even an error, proves the
// path alive, mirroring the proxy breaker's semantics.
func (r *replica) observe(err error, d time.Duration, threshold int) {
	r.ops.Add(1)
	if err == nil {
		old := r.ewmaNs.Load()
		if old == 0 {
			r.ewmaNs.Store(int64(d))
		} else {
			r.ewmaNs.Store(old + (int64(d)-old)/ewmaAlphaInv)
		}
		r.mu.Lock()
		r.consec = 0
		r.mu.Unlock()
		return
	}
	r.errs.Add(1)
	if !failoverClass(err) {
		r.mu.Lock()
		r.consec = 0
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.consec++
	if !r.down && r.consec >= threshold {
		r.down = true
		r.downSince = time.Now()
		r.transitions++
	}
	r.mu.Unlock()
}

func (r *replica) isDown() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down
}

// markUp clears the down state after a successful probe. The EWMA is
// reset so a recovered replica re-earns its routing rank instead of
// competing with a pre-outage score.
func (r *replica) markUp() {
	r.mu.Lock()
	if r.down {
		r.down = false
		r.consec = 0
		r.ewmaNs.Store(0)
	}
	r.mu.Unlock()
}

func (r *replica) ewma() time.Duration { return time.Duration(r.ewmaNs.Load()) }

// markStale records that this replica is missing acknowledged data for
// the file.
func (r *replica) markStale(key string) {
	r.mu.Lock()
	r.stale[key] = true
	r.staleEpoch++
	r.mu.Unlock()
}

// clearStale removes the marker, but only if no new marking happened
// since epoch was read — a write that failed to replicate during the
// repair must keep the file excluded until the next scrub pass.
func (r *replica) clearStale(key string, epoch uint64) {
	r.mu.Lock()
	if r.staleEpoch == epoch {
		delete(r.stale, key)
	}
	r.mu.Unlock()
}

func (r *replica) epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.staleEpoch
}

// staleFiles snapshots the stale set.
func (r *replica) staleFiles() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.stale))
	for k := range r.stale {
		keys = append(keys, k)
	}
	return keys
}

func (r *replica) staleCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.stale)
}

// consistentFor reports whether this replica holds every acknowledged
// write for the file: nothing queued for it and no stale marker.
func (r *replica) consistentFor(key string) bool {
	r.mu.Lock()
	st := r.stale[key]
	r.mu.Unlock()
	if st {
		return false
	}
	return r.q == nil || r.q.pendingFor(key) == 0
}

// consistentForID is consistentFor keyed by FileID. The map indexes
// compile to allocation-free string conversions, keeping the read
// routing path free of per-op key allocations.
func (r *replica) consistentForID(f backend.FileID) bool {
	r.mu.Lock()
	st := r.stale[string(f)]
	r.mu.Unlock()
	if st {
		return false
	}
	return r.q == nil || r.q.pendingForID(f) == 0
}

// behind reports whether the replica is known to be missing anything at
// all — queued replication or stale files. A NotFound from a behind
// replica is not authoritative: the name it cannot resolve may be
// sitting in its queue or among the files the scrub still owes it.
func (r *replica) behind() bool {
	if r.staleCount() > 0 {
		return true
	}
	return r.q != nil && r.q.depth() > 0
}

func (r *replica) state() string {
	if r.isDown() {
		return "down"
	}
	return "healthy"
}
