package replbe

import "time"

// ReplicaStats is one replica's health snapshot, rendered into the
// /statusz replica table and the gvfs_backend_replica_* metrics.
type ReplicaStats struct {
	Name          string `json:"name"`
	Backend       string `json:"backend"` // the child's Caps().Name
	State         string `json:"state"`   // healthy | down
	ReadOnly      bool   `json:"read_only,omitempty"`
	EWMALatencyNs int64  `json:"ewma_latency_ns"`
	Ops           uint64 `json:"ops"`
	Errors        uint64 `json:"errors"`
	HedgeWins     uint64 `json:"hedge_wins"`
	PendingRepl   int    `json:"pending_repl"` // queued replication ops
	StaleFiles    int    `json:"stale_files"`  // files awaiting read-repair
	DownSinceNs   int64  `json:"down_since_ns,omitempty"`
	Transitions   uint64 `json:"down_transitions"`
}

// ScrubStats is the background scrub's cumulative counters.
type ScrubStats struct {
	Passes          uint64 `json:"passes"`
	FilesScrubbed   uint64 `json:"files_scrubbed"`
	BlocksScrubbed  uint64 `json:"blocks_scrubbed"`
	BlocksDivergent uint64 `json:"blocks_divergent"`
	BlocksRepaired  uint64 `json:"blocks_repaired"`
	RepairErrors    uint64 `json:"repair_errors"`
}

// Stats is the composite's full snapshot.
type Stats struct {
	Quorum       bool           `json:"quorum,omitempty"`
	Reads        uint64         `json:"reads"`
	Failovers    uint64         `json:"failovers"`
	HedgesFired  uint64         `json:"hedges_fired"`
	HedgesWon    uint64         `json:"hedges_won"`
	HedgeDelayNs int64          `json:"hedge_delay_ns"` // currently armed delay (0 = warming up)
	Replicas     []ReplicaStats `json:"replicas"`
	Scrub        ScrubStats     `json:"scrub"`
}

// Stats snapshots the composite.
func (c *Backend) Stats() Stats {
	s := Stats{
		Quorum:      c.cfg.Quorum,
		Reads:       c.reads.Load(),
		Failovers:   c.failovers.Load(),
		HedgesFired: c.hedgesFired.Load(),
		HedgesWon:   c.hedgesWon.Load(),
		Scrub: ScrubStats{
			Passes:          c.scrub.passes.Load(),
			FilesScrubbed:   c.scrub.filesSeen.Load(),
			BlocksScrubbed:  c.scrub.blocks.Load(),
			BlocksDivergent: c.scrub.divergent.Load(),
			BlocksRepaired:  c.scrub.repaired.Load(),
			RepairErrors:    c.scrub.repairErr.Load(),
		},
	}
	if c.lat.count() >= hedgeWarmup {
		s.HedgeDelayNs = int64(c.lat.quantile(c.cfg.HedgeQuantile))
	}
	for i := range c.reps {
		s.Replicas = append(s.Replicas, c.replicaStats(i))
	}
	return s
}

func (c *Backend) replicaStats(i int) ReplicaStats {
	r := c.reps[i]
	rs := ReplicaStats{
		Name:          r.name,
		Backend:       r.b.Caps().Name,
		State:         r.state(),
		ReadOnly:      r.readOnly,
		EWMALatencyNs: r.ewmaNs.Load(),
		Ops:           r.ops.Load(),
		Errors:        r.errs.Load(),
		HedgeWins:     r.hedgeWins.Load(),
		StaleFiles:    r.staleCount(),
	}
	if r.q != nil {
		rs.PendingRepl = r.q.depth()
	}
	r.mu.Lock()
	if r.down {
		rs.DownSinceNs = r.downSince.UnixNano()
	}
	rs.Transitions = r.transitions
	r.mu.Unlock()
	return rs
}

// Per-replica accessors for collection-time metric bridges, so a
// callback reads one atomic instead of building a full Stats.

// ReplicaCount returns the number of replicas.
func (c *Backend) ReplicaCount() int { return len(c.reps) }

// ReplicaName returns replica i's label.
func (c *Backend) ReplicaName(i int) string { return c.reps[i].name }

// ReplicaUp reports 1 when replica i is healthy, 0 when down.
func (c *Backend) ReplicaUp(i int) float64 {
	if c.reps[i].isDown() {
		return 0
	}
	return 1
}

// ReplicaEWMASeconds returns replica i's EWMA op latency in seconds.
func (c *Backend) ReplicaEWMASeconds(i int) float64 {
	return time.Duration(c.reps[i].ewmaNs.Load()).Seconds()
}

// ReplicaOps returns replica i's op count.
func (c *Backend) ReplicaOps(i int) uint64 { return c.reps[i].ops.Load() }

// ReplicaErrors returns replica i's error count.
func (c *Backend) ReplicaErrors(i int) uint64 { return c.reps[i].errs.Load() }

// Failovers returns the total re-routed operations.
func (c *Backend) Failovers() uint64 { return c.failovers.Load() }

// HedgesFired returns the total hedged reads issued.
func (c *Backend) HedgesFired() uint64 { return c.hedgesFired.Load() }

// HedgesWon returns the hedges where the second read answered first.
func (c *Backend) HedgesWon() uint64 { return c.hedgesWon.Load() }

// ScrubDivergent returns the total divergent blocks detected.
func (c *Backend) ScrubDivergent() uint64 { return c.scrub.divergent.Load() }

// ScrubRepaired returns the total blocks repaired.
func (c *Backend) ScrubRepaired() uint64 { return c.scrub.repaired.Load() }
