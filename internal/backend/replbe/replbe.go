// Package replbe implements backend.Backend over a set of replica
// backends — any mix of nfs3be and objstore — so a proxy survives the
// loss of any single upstream. The composite tracks per-replica health
// (EWMA latency plus consecutive-error scoring over the backend.Classify
// taxonomy, with probe-driven recovery), re-routes operations that fail
// with Unavailable/Timeout to the next healthy replica before the
// client or the proxy circuit breaker ever sees the error, hedges slow
// READs against the next-best replica after an online latency quantile,
// and runs a background scrub that cross-checks block content hashes
// between replicas and repairs divergence (see scrub.go).
//
// Replicas must be interchangeable: the same FileID must name the same
// file on every replica (objstore FileIDs are paths; NFS replicas get
// this from deterministically seeded servers). Writes are acknowledged
// by the first healthy write-capable replica and replicated to the
// rest asynchronously (or fanned out synchronously with Quorum); reads
// are routed only to replicas that hold every acknowledged write for
// the file (no queued replication, no stale marker), which preserves
// read-your-writes without waiting for the fan-out. A write that fails
// over to a replica whose queue still holds earlier operations for the
// same file is routed *through* that queue, so per-file apply order
// always matches acknowledgement order — a direct write would be
// overwritten when the worker applied the older queued data behind it.
package replbe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/backend"
)

// Replica is one member of the replicated set.
type Replica struct {
	// Name labels the replica in metrics, /statusz and logs.
	Name string
	// B is the replica's backend. The composite owns it: Close closes it.
	B backend.Backend
	// ReadOnly excludes the replica from writes, replication and repair
	// (e.g. a snapshot mirror).
	ReadOnly bool
}

// Config tunes the composite. The zero value gets sane defaults.
type Config struct {
	// FailThreshold is the number of consecutive Unavailable/Timeout
	// failures that mark a replica down (default 3).
	FailThreshold int

	// ProbeInterval is how often down replicas are probed for recovery
	// (default 1s).
	ProbeInterval time.Duration

	// HedgeQuantile is the read-latency quantile that arms a hedge: a
	// READ still outstanding after this quantile fires a second read at
	// the next-best replica (default 0.95). Negative disables hedging.
	HedgeQuantile float64

	// HedgeMinDelay / HedgeMaxDelay clamp the hedge delay (defaults
	// 1ms / 2s), so a fast steady state cannot hedge every call and a
	// slow one still hedges within the caller's patience.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration

	// HedgeBudget caps hedged reads as a fraction of all reads
	// (default 0.1). The cap keeps hedging from doubling upstream load
	// when the latency distribution is genuinely wide.
	HedgeBudget float64

	// Quorum makes writes synchronous: fan out to every write-capable
	// replica and acknowledge once a majority succeeded. The default
	// (false) is primary-ack: one durable write, async replication.
	Quorum bool

	// ScrubInterval is the cadence of the background scrub/read-repair
	// pass (default 30s; negative disables the loop — ScrubNow still
	// works).
	ScrubInterval time.Duration

	// ScrubBlockSize is the block granularity of hash comparison
	// (default 8192).
	ScrubBlockSize int

	// ScrubFilesPerPass bounds how many files one pass examines
	// (default 16).
	ScrubFilesPerPass int
}

func (c Config) withDefaults() Config {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 2 * time.Second
	}
	if c.HedgeBudget == 0 {
		c.HedgeBudget = 0.1
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = 30 * time.Second
	}
	if c.ScrubBlockSize <= 0 {
		c.ScrubBlockSize = 8192
	}
	if c.ScrubFilesPerPass <= 0 {
		c.ScrubFilesPerPass = 16
	}
	return c
}

// Backend is the replicated composite. It implements backend.Backend
// plus the optional capability interfaces its replicas support
// (Namespacer, Hasher, CredentialCarrier, TransportStatser).
type Backend struct {
	cfg  Config
	reps []*replica

	lat *latTracker // successful READ latency distribution (hedge trigger)

	// candPool recycles read-routing scratch buffers so candidate
	// selection does not allocate per READ.
	candPool sync.Pool

	reads       atomic.Uint64 // READs handled by the composite
	failovers   atomic.Uint64 // ops re-routed after an Unavailable/Timeout failure
	hedgesFired atomic.Uint64
	hedgesWon   atomic.Uint64 // hedges where the second read answered first

	scrub scrubState

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds the composite over replicas. At least one replica must be
// write-capable unless every caller is read-only.
func New(replicas []Replica, cfg Config) (*Backend, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replbe: no replicas")
	}
	cfg = cfg.withDefaults()
	c := &Backend{
		cfg:  cfg,
		lat:  newLatTracker(),
		done: make(chan struct{}),
	}
	c.scrub.init(&c.cfg)
	for i, r := range replicas {
		if r.B == nil {
			return nil, fmt.Errorf("replbe: replica %d has no backend", i)
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("r%d", i)
		}
		rep := newReplica(name, r.B, r.ReadOnly, i)
		c.reps = append(c.reps, rep)
	}
	// Replication workers only exist in primary-ack mode: quorum writes
	// fan out synchronously and leave only stale marks behind.
	if !cfg.Quorum {
		for _, r := range c.reps {
			if r.readOnly {
				continue
			}
			r.q = newQueue()
			c.wg.Add(1)
			go c.replWorker(r)
		}
	}
	c.wg.Add(1)
	go c.probeLoop()
	if cfg.ScrubInterval > 0 {
		c.wg.Add(1)
		go c.scrubLoop()
	}
	return c, nil
}

// failoverClass reports whether an error means "try another replica":
// transport-level unavailability and deadline expiry. Every other
// class is an authoritative answer from a live server and is returned
// to the caller as-is.
func failoverClass(err error) bool {
	switch backend.Classify(err) {
	case backend.ClassUnavailable, backend.ClassTimeout:
		return true
	}
	return false
}

// allDown is the error returned when every candidate replica failed
// with a failover class. It is ClassUnavailable so the proxy breaker
// counts it — the breaker should open only when the whole replica set
// is gone, which is exactly this case. The one exception: when the
// last failure was a Timeout, the set is not known dead — the caller's
// deadline ran out — so the class stays Timeout and the breaker is not
// charged for the client's own budget.
func allDown(op string, last error) error {
	class := backend.ClassUnavailable
	if backend.Classify(last) == backend.ClassTimeout {
		class = backend.ClassTimeout
	}
	return &backend.Error{Class: class, Op: op,
		Err: fmt.Errorf("all replicas failed (last: %w)", last)}
}

// candBuf is reusable scratch for read candidate selection.
type candBuf struct {
	all  []*replica
	down []*replica
}

func (c *Backend) getCandBuf() *candBuf {
	if v := c.candPool.Get(); v != nil {
		b := v.(*candBuf)
		b.all = b.all[:0]
		b.down = b.down[:0]
		return b
	}
	return &candBuf{}
}

func (c *Backend) putCandBuf(b *candBuf) { c.candPool.Put(b) }

// readCandidates orders replicas for a read of key: first the eligible
// ones (healthy, no queued replication and no stale marker for the
// file) by ascending EWMA latency, then — only as a last resort when
// nothing is eligible — consistent-but-down replicas, since a probe
// may not have noticed a recovery yet. Replicas with pending or stale
// state for the file are never read: they may miss acknowledged
// writes.
func (c *Backend) readCandidates(key string) []*replica {
	var elig, downOK []*replica
	for _, r := range c.reps {
		if !r.consistentFor(key) {
			continue
		}
		if r.isDown() {
			downOK = append(downOK, r)
		} else {
			elig = append(elig, r)
		}
	}
	sortByEWMA(elig)
	return append(elig, downOK...)
}

// readCandidatesInto is readCandidates for the hot path: it fills a
// pooled buffer and never materializes the key string, so candidate
// selection costs no per-op allocations. The returned slice aliases
// buf and must not outlive its return to the pool (hedge goroutines
// capture individual *replica pointers, never the slice).
func (c *Backend) readCandidatesInto(f backend.FileID, buf *candBuf) []*replica {
	for _, r := range c.reps {
		if !r.consistentForID(f) {
			continue
		}
		if r.isDown() {
			buf.down = append(buf.down, r)
		} else {
			buf.all = append(buf.all, r)
		}
	}
	sortByEWMA(buf.all)
	buf.all = append(buf.all, buf.down...)
	return buf.all
}

// writeCandidates orders write-capable replicas by index — a stable
// primary, so consecutive writes land on the same replica — healthy
// first, down ones as a last resort.
func (c *Backend) writeCandidates() []*replica {
	var up, down []*replica
	for _, r := range c.reps {
		if r.readOnly {
			continue
		}
		if r.isDown() {
			down = append(down, r)
		} else {
			up = append(up, r)
		}
	}
	return append(up, down...)
}

func sortByEWMA(reps []*replica) {
	// Insertion sort: the set is tiny (2-5 replicas) and mostly sorted.
	for i := 1; i < len(reps); i++ {
		for j := i; j > 0 && reps[j].ewma() < reps[j-1].ewma(); j-- {
			reps[j], reps[j-1] = reps[j-1], reps[j]
		}
	}
}

// scrubSampleMask samples read-path scrub registration: one in 64
// reads takes the registry lock. Writes and creates still register
// unconditionally — those registrations are what stale repair depends
// on — so sampling only thins the rot-detection candidates, and the
// mask is small enough that a steady workload's files register within
// its first moments (read #1 always registers).
const scrubSampleMask = 63

// Read implements backend.Backend with failover and hedging.
func (c *Backend) Read(f backend.FileID, off uint64, count uint32, opts backend.CallOpts) (backend.ReadResult, error) {
	n := c.reads.Add(1)
	buf := c.getCandBuf()
	defer c.putCandBuf(buf)
	cands := c.readCandidatesInto(f, buf)
	if len(cands) == 0 {
		return backend.ReadResult{}, &backend.Error{Class: backend.ClassUnavailable, Op: "read",
			Err: errors.New("no consistent replica for file")}
	}
	if n&scrubSampleMask == 1 {
		c.scrub.register(f, nil, "")
	}
	return c.hedgedRead(cands, f, off, count, opts)
}

// timedRead is one replica read with health/latency observation.
func (c *Backend) timedRead(r *replica, f backend.FileID, off uint64, count uint32, opts backend.CallOpts) (backend.ReadResult, error) {
	start := time.Now()
	res, err := r.b.Read(f, off, count, opts)
	d := time.Since(start)
	r.observe(err, d, c.cfg.FailThreshold)
	if err == nil {
		c.lat.observe(d)
	}
	return res, err
}

// seqRead walks cands from index i, returning the first success or the
// first authoritative (non-failover) error.
func (c *Backend) seqRead(cands []*replica, i int, f backend.FileID, off uint64, count uint32, opts backend.CallOpts, lastErr error) (backend.ReadResult, error) {
	for ; i < len(cands); i++ {
		if lastErr != nil {
			c.failovers.Add(1)
		}
		res, err := c.timedRead(cands[i], f, off, count, opts)
		if err == nil {
			return res, nil
		}
		if !failoverClass(err) {
			return backend.ReadResult{}, err
		}
		lastErr = err
	}
	return backend.ReadResult{}, allDown("read", lastErr)
}

// hedgedRead issues the read on the best candidate and, if it is still
// outstanding after the hedge delay, fires a second read at the next
// candidate, taking the first success. Failures (of the failover
// classes) immediately launch the next candidate instead of waiting.
func (c *Backend) hedgedRead(cands []*replica, f backend.FileID, off uint64, count uint32, opts backend.CallOpts) (backend.ReadResult, error) {
	delay := c.hedgeDelay(opts)
	if delay <= 0 || len(cands) < 2 {
		return c.seqRead(cands, 0, f, off, count, opts, nil)
	}

	type result struct {
		res backend.ReadResult
		err error
		rep *replica
	}
	// Buffered to the candidate count: a loser finishing after we
	// return must not block its goroutine forever.
	ch := make(chan result, len(cands))
	launch := func(r *replica) {
		go func() {
			res, err := c.timedRead(r, f, off, count, opts)
			ch <- result{res, err, r}
		}()
	}
	launch(cands[0])
	next := 1
	outstanding := 1
	var hedged *replica
	var lastErr, authErr error
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if hedged != nil && r.rep == hedged {
					c.hedgesWon.Add(1)
					r.rep.hedgeWins.Add(1)
				}
				return r.res, nil
			}
			if !failoverClass(r.err) {
				// Authoritative failure: remember it, but let an
				// in-flight hedge still win before we surface it.
				if authErr == nil {
					authErr = r.err
				}
				continue
			}
			lastErr = r.err
			if next < len(cands) {
				c.failovers.Add(1)
				launch(cands[next])
				next++
				outstanding++
			}
		case <-timerC:
			timerC = nil
			if outstanding > 0 && next < len(cands) && c.takeHedgeToken() {
				hedged = cands[next]
				launch(cands[next])
				next++
				outstanding++
			}
		}
	}
	if authErr != nil {
		return backend.ReadResult{}, authErr
	}
	return backend.ReadResult{}, allDown("read", lastErr)
}

// hedgeDelay computes the delay before a hedge fires, or 0 when this
// read must not hedge: hedging disabled, the latency distribution is
// still warming up, or the caller's remaining deadline budget cannot
// fit a second attempt (QoS deadline propagation wins over the hedge).
func (c *Backend) hedgeDelay(opts backend.CallOpts) time.Duration {
	if c.cfg.HedgeQuantile < 0 || c.lat.count() < hedgeWarmup {
		return 0
	}
	d := c.lat.quantile(c.cfg.HedgeQuantile)
	if d < c.cfg.HedgeMinDelay {
		d = c.cfg.HedgeMinDelay
	}
	if d > c.cfg.HedgeMaxDelay {
		d = c.cfg.HedgeMaxDelay
	}
	if !opts.Deadline.IsZero() {
		rem := time.Until(opts.Deadline)
		if rem <= 2*d {
			// No budget for a second attempt after the delay; spend the
			// whole deadline on the primary instead.
			return 0
		}
	}
	return d
}

// hedgeWarmup is the minimum observed reads before hedging arms: the
// quantile of a handful of samples is noise.
const hedgeWarmup = 20

// takeHedgeToken enforces the hedge budget: hedges may be at most
// HedgeBudget of all reads.
func (c *Backend) takeHedgeToken() bool {
	for {
		fired := c.hedgesFired.Load()
		if float64(fired+1) > c.cfg.HedgeBudget*float64(c.reads.Load())+1 {
			return false
		}
		if c.hedgesFired.CompareAndSwap(fired, fired+1) {
			return true
		}
	}
}

// Write implements backend.Backend: primary-ack with asynchronous
// replication, or synchronous majority fan-out under Config.Quorum.
func (c *Backend) Write(f backend.FileID, off uint64, data []byte, opts backend.CallOpts) (*backend.Attr, error) {
	c.scrub.register(f, nil, "")
	if c.cfg.Quorum {
		return c.quorumWrite(f, off, data, opts)
	}
	cands := c.writeCandidates()
	if len(cands) == 0 {
		return nil, &backend.Error{Class: backend.ClassUnavailable, Op: "write",
			Err: errors.New("no write-capable replica")}
	}
	key := f.Key()
	var lastErr error
	for i, r := range cands {
		if i > 0 {
			c.failovers.Add(1)
		}
		attr, err := c.writeOn(r, key, f, off, data, opts)
		if err == nil {
			c.replicateWrite(r, f, off, data)
			return attr, nil
		}
		if !failoverClass(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, allDown("write", lastErr)
}

// writeOn lands one write on r. When r's replication queue still holds
// earlier operations for the file — r is a failover target that has
// not caught up on writes another replica acknowledged — the write is
// routed through the queue and applied in order behind them: a direct
// write would race the worker, which would then apply the older queued
// data over it, silently losing an acknowledged write. The sync route
// blocks until the worker applies the item, so the returned error has
// normal Write semantics and the caller's buffer is never retained.
func (c *Backend) writeOn(r *replica, key string, f backend.FileID, off uint64, data []byte, opts backend.CallOpts) (*backend.Attr, error) {
	if r.q != nil && r.q.pendingFor(key) > 0 {
		var attr *backend.Attr
		err := <-r.q.addSync(key, "", func(b backend.Backend) error {
			a, werr := b.Write(f, off, data, opts)
			attr = a
			return werr
		})
		if err != nil {
			return nil, err
		}
		return attr, nil
	}
	start := time.Now()
	attr, err := r.b.Write(f, off, data, opts)
	r.observe(err, time.Since(start), c.cfg.FailThreshold)
	return attr, err
}

// replicateWrite enqueues the acknowledged write to every other
// write-capable replica. The data is copied once — queue items only
// hold the copy — so the caller may reuse its buffer immediately. The
// enqueue happens before Write returns, which is what guarantees a
// subsequent read never picks a replica missing this write: the
// replica's pending count for the file is already nonzero.
func (c *Backend) replicateWrite(acker *replica, f backend.FileID, off uint64, data []byte) {
	var cp []byte
	key := f.Key()
	fid := append(backend.FileID(nil), f...)
	for _, r := range c.reps {
		if r == acker || r.readOnly || r.q == nil {
			continue
		}
		if cp == nil {
			cp = append([]byte(nil), data...)
		}
		r.q.add(key, "", func(b backend.Backend) error {
			_, err := b.Write(fid, off, cp, backend.CallOpts{})
			return err
		})
	}
}

// quorumWrite fans the write out to every write-capable replica
// concurrently and acknowledges once a majority of them succeeded.
// Replicas that failed or were down get a stale marker so reads skip
// them until the scrub repairs the file — but only when at least one
// writer succeeded: stale means "missing data that exists on another
// replica", and a write that landed nowhere leaves the old state
// uniform. Marking on total failure would brand every replica stale at
// once, leaving the file with no consistent read candidate and the
// scrub with no repair source.
func (c *Backend) quorumWrite(f backend.FileID, off uint64, data []byte, opts backend.CallOpts) (*backend.Attr, error) {
	var writers []*replica
	for _, r := range c.reps {
		if !r.readOnly {
			writers = append(writers, r)
		}
	}
	if len(writers) == 0 {
		return nil, &backend.Error{Class: backend.ClassUnavailable, Op: "write",
			Err: errors.New("no write-capable replica")}
	}
	need := len(writers)/2 + 1
	key := f.Key()

	type result struct {
		attr *backend.Attr
		err  error
		rep  *replica
	}
	ch := make(chan result, len(writers))
	attempted := 0
	var missed []*replica // down or failed: stale iff the data landed somewhere
	for _, r := range writers {
		if r.isDown() {
			missed = append(missed, r)
			continue
		}
		attempted++
		go func(r *replica) {
			start := time.Now()
			attr, err := r.b.Write(f, off, data, opts)
			r.observe(err, time.Since(start), c.cfg.FailThreshold)
			ch <- result{attr, err, r}
		}(r)
	}
	var attr *backend.Attr
	var firstErr error
	succ := 0
	for i := 0; i < attempted; i++ {
		res := <-ch
		if res.err == nil {
			succ++
			if attr == nil {
				attr = res.attr
			}
		} else {
			missed = append(missed, res.rep)
			if firstErr == nil || failoverClass(firstErr) && !failoverClass(res.err) {
				firstErr = res.err
			}
		}
	}
	if succ > 0 {
		for _, r := range missed {
			r.markStale(key)
		}
	}
	if succ >= need {
		return attr, nil
	}
	if firstErr == nil {
		firstErr = errors.New("quorum not reached")
	}
	if succ > 0 || failoverClass(firstErr) {
		// Partial success below quorum is still a durability failure the
		// caller must retry; report it as Unavailable so the breaker
		// logic treats the set as unhealthy.
		return nil, &backend.Error{Class: backend.ClassUnavailable, Op: "write",
			Err: fmt.Errorf("quorum %d/%d: %w", succ, need, firstErr)}
	}
	return nil, firstErr
}

// Commit implements backend.Backend against the write candidates. Like
// writeOn, a commit that fails over to a replica with queued operations
// for the file rides the queue, so the data it makes durable includes
// every write acknowledged before it.
func (c *Backend) Commit(f backend.FileID, opts backend.CallOpts) error {
	cands := c.writeCandidates()
	if len(cands) == 0 {
		return &backend.Error{Class: backend.ClassUnavailable, Op: "commit",
			Err: errors.New("no write-capable replica")}
	}
	key := f.Key()
	var lastErr error
	for i, r := range cands {
		if i > 0 {
			c.failovers.Add(1)
		}
		var err error
		if r.q != nil && r.q.pendingFor(key) > 0 {
			err = <-r.q.addSync(key, "", func(b backend.Backend) error {
				return b.Commit(f, opts)
			})
		} else {
			start := time.Now()
			err = r.b.Commit(f, opts)
			r.observe(err, time.Since(start), c.cfg.FailThreshold)
		}
		if err == nil {
			return nil
		}
		if !failoverClass(err) {
			return err
		}
		lastErr = err
	}
	return allDown("commit", lastErr)
}

// GetAttr implements backend.Backend with the read routing rules
// (attributes from a replica missing acknowledged writes would report
// a stale size).
func (c *Backend) GetAttr(f backend.FileID, opts backend.CallOpts) (backend.Attr, error) {
	buf := c.getCandBuf()
	defer c.putCandBuf(buf)
	cands := c.readCandidatesInto(f, buf)
	if len(cands) == 0 {
		return backend.Attr{}, &backend.Error{Class: backend.ClassUnavailable, Op: "getattr",
			Err: errors.New("no consistent replica for file")}
	}
	var lastErr error
	for i, r := range cands {
		if i > 0 {
			c.failovers.Add(1)
		}
		start := time.Now()
		attr, err := r.b.GetAttr(f, opts)
		r.observe(err, time.Since(start), c.cfg.FailThreshold)
		if err == nil {
			return attr, nil
		}
		if !failoverClass(err) {
			return backend.Attr{}, err
		}
		lastErr = err
	}
	return backend.Attr{}, allDown("getattr", lastErr)
}

// Probe implements backend.Backend: the composite is reachable while
// any replica is. A probe success also feeds the health tracker, so
// the proxy breaker's recovery probe doubles as replica recovery.
func (c *Backend) Probe() error {
	var lastErr error
	for _, r := range c.reps {
		err := r.b.Probe()
		if err == nil {
			r.markUp()
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no replicas")
	}
	return &backend.Error{Class: backend.ClassUnavailable, Op: "probe", Err: lastErr}
}

// Caps implements backend.Backend. ContentHashes is advertised only
// when every replica has it, so a BlockHash fallback never silently
// disagrees with a Read served by a hashless replica.
func (c *Backend) Caps() backend.Caps {
	hashes := true
	for _, r := range c.reps {
		if !r.b.Caps().ContentHashes {
			hashes = false
		}
	}
	return backend.Caps{Name: "repl", ContentHashes: hashes}
}

// Close stops the probe, scrub and replication machinery, then closes
// every replica backend.
func (c *Backend) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		for _, r := range c.reps {
			if r.q != nil {
				r.q.close()
			}
		}
		c.wg.Wait()
		for _, r := range c.reps {
			if cerr := r.b.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// probeLoop recovers down replicas: a successful Probe marks the
// replica healthy again (reads and writes resume; stale files stay
// excluded until the scrub repairs them).
func (c *Backend) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		for _, r := range c.reps {
			if !r.isDown() {
				continue
			}
			if err := r.b.Probe(); err == nil {
				r.markUp()
			}
		}
	}
}

// replWorker drains one replica's replication queue. A failed apply —
// the replica is down, or the write errored — marks the file stale on
// that replica: reads skip it and the scrub repairs it from a replica
// that holds the acknowledged data. Sync items (failover ops routed
// through the queue to stay ordered) get their apply error delivered to
// the waiting caller.
func (c *Backend) replWorker(r *replica) {
	defer c.wg.Done()
	for {
		it, ok := r.q.take()
		if !ok {
			return
		}
		var err error
		if r.isDown() {
			err = errReplicaDown
			r.markStale(it.key)
		} else {
			start := time.Now()
			err = it.apply(r.b)
			r.observe(err, time.Since(start), c.cfg.FailThreshold)
			if err != nil {
				r.markStale(it.key)
			}
		}
		if it.done != nil {
			it.done <- err
		}
		r.q.finish(it)
	}
}

// nameKey is the queue pending key for a directory entry, letting
// lookup routing see a queued Create for (dir, name) before the created
// file's own FileID is known on that replica. The NUL prefix keeps it
// out of the FileID key space (objstore keys are slash-rooted paths,
// NFS keys are server handles).
func nameKey(dir backend.FileID, name string) string {
	return "\x00n" + string(dir) + "\x00" + name
}

// Lookup implements backend.Lookuper with index-order failover, so a
// lookup immediately after Create resolves on the replica that
// acknowledged the create (both use the same stable order). A replica
// whose queue still holds the Create for this (dir, name) answers
// through the queue — after the create applies — instead of returning
// a NotFound for a file the composite has acknowledged; and a NotFound
// from a replica that is demonstrably behind (non-empty queue or stale
// files) is kept only as a last resort rather than returned over a
// caught-up replica's answer.
func (c *Backend) Lookup(dir backend.FileID, name string, opts backend.CallOpts) (backend.FileID, backend.Attr, error) {
	nk := nameKey(dir, name)
	var lastErr, notFound error
	tried := false
	for _, r := range c.reps {
		if _, ok := r.b.(backend.Lookuper); !ok || r.isDown() {
			continue
		}
		tried = true
		var fid backend.FileID
		var attr backend.Attr
		run := func(b backend.Backend) error {
			f, a, lerr := b.(backend.Lookuper).Lookup(dir, name, opts)
			fid, attr = f, a
			return lerr
		}
		var err error
		if r.q != nil && r.q.pendingFor(nk) > 0 {
			err = <-r.q.addSync(nk, "", run)
		} else {
			start := time.Now()
			err = run(r.b)
			r.observe(err, time.Since(start), c.cfg.FailThreshold)
		}
		if err == nil {
			return fid, attr, nil
		}
		if !failoverClass(err) {
			if backend.Classify(err) == backend.ClassNotFound && r.behind() {
				// The replica may simply not have applied a create it
				// missed (failed replication, recovering from an outage);
				// let a caught-up replica answer before believing it.
				if notFound == nil {
					notFound = err
				}
				continue
			}
			return nil, backend.Attr{}, err
		}
		lastErr = err
	}
	if notFound != nil {
		return nil, backend.Attr{}, notFound
	}
	if !tried {
		return nil, backend.Attr{}, &backend.Error{Class: backend.ClassIO, Op: "lookup",
			Err: errors.New("no replica supports lookup")}
	}
	return nil, backend.Attr{}, allDown("lookup", lastErr)
}

// Root implements backend.Namespacer against the first replica that
// can answer.
func (c *Backend) Root(dirpath string) (backend.FileID, backend.Attr, error) {
	var lastErr error
	tried := false
	for _, r := range c.reps {
		ns, ok := r.b.(backend.Namespacer)
		if !ok || r.isDown() {
			continue
		}
		tried = true
		fid, attr, err := ns.Root(dirpath)
		if err == nil {
			return fid, attr, nil
		}
		if !failoverClass(err) {
			return nil, backend.Attr{}, err
		}
		lastErr = err
	}
	if !tried {
		return nil, backend.Attr{}, &backend.Error{Class: backend.ClassIO, Op: "root",
			Err: errors.New("no replica supports namespace operations")}
	}
	return nil, backend.Attr{}, allDown("root", lastErr)
}

// Create implements backend.Namespacer: create on the first healthy
// write-capable replica, replicate the create to the rest. The created
// file's identity (and its parent dir + name, so the scrub can
// re-create it on a replica that missed the replication) is registered
// with the scrub.
func (c *Backend) Create(dir backend.FileID, name string, opts backend.CallOpts) (backend.FileID, backend.Attr, error) {
	var acker *replica
	var fid backend.FileID
	var attr backend.Attr
	var lastErr error
	tried := false
	for _, r := range c.writeCandidates() {
		ns, ok := r.b.(backend.Namespacer)
		if !ok {
			continue
		}
		if tried {
			c.failovers.Add(1)
		}
		tried = true
		start := time.Now()
		f, a, err := ns.Create(dir, name, opts)
		r.observe(err, time.Since(start), c.cfg.FailThreshold)
		if err == nil {
			acker, fid, attr = r, f, a
			break
		}
		if !failoverClass(err) {
			return nil, backend.Attr{}, err
		}
		lastErr = err
	}
	if acker == nil {
		if !tried {
			return nil, backend.Attr{}, &backend.Error{Class: backend.ClassIO, Op: "create",
				Err: errors.New("no replica supports create")}
		}
		return nil, backend.Attr{}, allDown("create", lastErr)
	}
	c.scrub.register(fid, dir, name)
	key := fid.Key()
	nk := nameKey(dir, name)
	pdir := append(backend.FileID(nil), dir...)
	for _, r := range c.reps {
		if r == acker || r.readOnly || r.q == nil {
			continue
		}
		if _, ok := r.b.(backend.Namespacer); !ok {
			continue
		}
		r.q.add(key, nk, func(b backend.Backend) error {
			_, _, err := b.(backend.Namespacer).Create(pdir, name, backend.CallOpts{})
			return err
		})
	}
	return fid, attr, nil
}

// BlockHash implements backend.Hasher by asking the read candidates in
// routing order; ok is false when none can answer.
func (c *Backend) BlockHash(f backend.FileID, block uint64, blockSize int) (backend.Hash, uint32, bool) {
	for _, r := range c.readCandidates(f.Key()) {
		if h, ok := r.b.(backend.Hasher); ok {
			if hash, n, ok := h.BlockHash(f, block, blockSize); ok {
				return hash, n, true
			}
		}
	}
	return backend.Hash{}, 0, false
}

// TransportStats implements backend.TransportStatser by summing the
// replicas' transport counters.
func (c *Backend) TransportStats() backend.TransportStats {
	var sum backend.TransportStats
	for _, r := range c.reps {
		if ts, ok := r.b.(backend.TransportStatser); ok {
			s := ts.TransportStats()
			sum.Retries += s.Retries
			sum.Reconnects += s.Reconnects
			sum.Timeouts += s.Timeouts
		}
	}
	return sum
}

// SetCredSource implements backend.CredentialCarrier, fanning the
// source to every replica that authenticates.
func (c *Backend) SetCredSource(src backend.CredSource) {
	for _, r := range c.reps {
		if cc, ok := r.b.(backend.CredentialCarrier); ok {
			cc.SetCredSource(src)
		}
	}
}

// WaitReplicated blocks until every replication queue is empty (or the
// timeout passes), returning whether it drained. Tests and benchmarks
// use it to bound the asynchronous window.
func (c *Backend) WaitReplicated(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, r := range c.reps {
			if r.q != nil && r.q.depth() > 0 {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}
