package replbe

import (
	"sync"
	"sync/atomic"
	"time"

	"gvfs/internal/backend"
)

// scrubState is the background scrub's bookkeeping: the set of files
// the composite has seen (scrub candidates), a rotating cursor over
// them, and the pass counters. Block hashes come from backend.Hasher
// when a replica is content-addressed — the dedup SHA-256 machinery —
// and from Read + HashOf otherwise, so any replica mix can be
// cross-checked.
type scrubState struct {
	cfg *Config

	mu     sync.Mutex
	files  map[string]scrubFile
	order  []string // registration order, scanned round-robin
	cursor int

	running sync.Mutex // serializes passes (ticker vs ScrubNow)

	passes    atomic.Uint64
	filesSeen atomic.Uint64 // files examined across all passes
	blocks    atomic.Uint64 // blocks hash-compared
	divergent atomic.Uint64 // block mismatches found
	repaired  atomic.Uint64 // blocks rewritten from a good replica
	repairErr atomic.Uint64 // repair attempts that failed
}

// scrubFile is one registered file. dir and name are remembered for
// files the composite created, so a replica that missed the create
// replication can have the file re-created before block repair.
type scrubFile struct {
	fid  backend.FileID
	dir  backend.FileID // nil unless registered via Create
	name string
}

// scrubMaxFiles bounds the registry; beyond it new files are not
// tracked (the hot set registered first keeps being scrubbed).
const scrubMaxFiles = 4096

func (s *scrubState) init(cfg *Config) {
	s.cfg = cfg
	s.files = make(map[string]scrubFile)
}

// register remembers a file for scrubbing. Directory-less registration
// (from Read/Write) never downgrades one that knows its parent.
func (s *scrubState) register(fid backend.FileID, dir backend.FileID, name string) {
	key := fid.Key()
	s.mu.Lock()
	if old, ok := s.files[key]; ok {
		if dir != nil && old.dir == nil {
			old.dir = append(backend.FileID(nil), dir...)
			old.name = name
			s.files[key] = old
		}
	} else if len(s.files) < scrubMaxFiles {
		sf := scrubFile{fid: append(backend.FileID(nil), fid...)}
		if dir != nil {
			sf.dir = append(backend.FileID(nil), dir...)
			sf.name = name
		}
		s.files[key] = sf
		s.order = append(s.order, key)
	}
	s.mu.Unlock()
}

// nextFiles returns up to n files starting at the cursor.
func (s *scrubState) nextFiles(n int) []scrubFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) == 0 {
		return nil
	}
	if n > len(s.order) {
		n = len(s.order)
	}
	out := make([]scrubFile, 0, n)
	for i := 0; i < n; i++ {
		key := s.order[(s.cursor+i)%len(s.order)]
		out = append(out, s.files[key])
	}
	s.cursor = (s.cursor + n) % len(s.order)
	return out
}

// scrubLoop runs one pass per ScrubInterval.
func (c *Backend) scrubLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.ScrubNow()
		}
	}
}

// ScrubNow runs one synchronous scrub pass: repair every stale file
// first (a replica that failed replication or recovered from an
// outage), then cross-check a window of registered files block by
// block. Tests and benchmarks call it directly for a deterministic
// trigger.
func (c *Backend) ScrubNow() {
	c.scrub.running.Lock()
	defer c.scrub.running.Unlock()
	c.scrub.passes.Add(1)

	// Stale files first: they are known-bad and block read routing.
	for _, r := range c.reps {
		if r.readOnly || r.isDown() {
			continue
		}
		for _, key := range r.staleFiles() {
			c.scrub.mu.Lock()
			sf, ok := c.scrub.files[key]
			c.scrub.mu.Unlock()
			if !ok {
				// Untracked file (registry overflow): leave the marker;
				// the replica simply serves no reads for it.
				continue
			}
			epoch := r.epoch()
			if c.repairFile(r, sf) {
				r.clearStale(key, epoch)
			}
		}
	}

	// Then the rotating verification window over everything seen.
	for _, sf := range c.scrub.nextFiles(c.cfg.ScrubFilesPerPass) {
		c.scrub.filesSeen.Add(1)
		c.verifyFile(sf)
	}
}

// scrubSource picks the reference replica for a file: the write
// primary — the first consistent healthy write-capable replica in
// index order, the same stable order writes are acknowledged in — so
// divergence on a secondary is always repaired from the copy that
// acknowledged the writes, never the other way around. Read-only
// replicas are a fallback reference when no writer qualifies.
//
// Last resort: when NO replica — healthy or down — is consistent for
// the file (every copy carries a stale marker, which partial quorum
// failures can produce over time), the first healthy write-capable
// replica becomes the reference even though it is stale. Converging
// the set on the primary-order copy and clearing the markers restores
// availability at the cost of possibly settling on a state missing
// some unacknowledged-or-partially-acknowledged write; the alternative
// is a file that is permanently unreadable because repair has no
// source. If a consistent copy exists but is merely down, repair
// waits for its recovery instead of converging without it.
func (c *Backend) scrubSource(key string, not *replica) *replica {
	for _, r := range c.writeCandidates() {
		if r != not && !r.isDown() && r.consistentFor(key) {
			return r
		}
	}
	for _, r := range c.readCandidates(key) {
		if r != not && !r.isDown() {
			return r
		}
	}
	for _, r := range c.reps {
		if r.consistentFor(key) {
			return nil // a consistent copy exists (down): wait for it
		}
	}
	for _, r := range c.writeCandidates() {
		if r != not && !r.isDown() {
			return r
		}
	}
	return nil
}

// blockHash returns the hash and length of one block on a replica,
// via the Hasher fast path (no data transfer) when available, else by
// reading and hashing. A non-nil error means the block's state could
// not be determined (treat as divergent only on the repair target —
// unless the error says the replica is unreachable, see repairAgainst).
func blockHash(r *replica, f backend.FileID, block uint64, bs int) (backend.Hash, uint32, error) {
	if h, ok := r.b.(backend.Hasher); ok {
		if hash, n, ok := h.BlockHash(f, block, bs); ok {
			return hash, n, nil
		}
	}
	res, err := r.b.Read(f, uint64(block)*uint64(bs), uint32(bs), backend.CallOpts{})
	if err != nil {
		return backend.Hash{}, 0, err
	}
	return backend.HashOf(res.Data), uint32(len(res.Data)), nil
}

// verifyFile cross-checks every other write-capable healthy replica
// against the reference copy (the write primary, see scrubSource),
// repairing divergent blocks in place. The reference itself is the
// definition of the acknowledged state and is never "repaired" from a
// secondary — that direction would propagate a secondary's rot into
// the copy that acknowledged the writes.
func (c *Backend) verifyFile(sf scrubFile) {
	key := sf.fid.Key()
	src := c.scrubSource(key, nil)
	if src == nil {
		return
	}
	for _, r := range c.reps {
		if r == src || r.readOnly || r.isDown() || !r.consistentFor(key) {
			continue
		}
		c.repairAgainst(src, r, sf, false)
	}
}

// repairFile restores a stale file on replica r from a consistent
// source, returning true when the repair completed (the caller clears
// the stale marker if no new staleness raced in).
func (c *Backend) repairFile(r *replica, sf scrubFile) bool {
	src := c.scrubSource(sf.fid.Key(), r)
	if src == nil {
		return false
	}
	return c.repairAgainst(src, r, sf, true)
}

// repairAgainst walks the file block by block, comparing content
// hashes between src and dst and rewriting mismatched blocks on dst
// with src's bytes. When full is set (stale repair), a missing file on
// dst is re-created via Namespacer when the registry knows the
// parent. Returns true when the walk completed without repair errors.
func (c *Backend) repairAgainst(src, dst *replica, sf scrubFile, full bool) bool {
	f := sf.fid
	attr, err := src.b.GetAttr(f, backend.CallOpts{})
	if err != nil {
		return false
	}
	bs := c.cfg.ScrubBlockSize
	nblocks := (attr.Size + uint64(bs) - 1) / uint64(bs)

	// A dst that doesn't know the file at all (missed Create) needs the
	// namespace entry before any Write can land.
	if full {
		if _, err := dst.b.GetAttr(f, backend.CallOpts{}); backend.Classify(err) == backend.ClassNotFound {
			ns, ok := dst.b.(backend.Namespacer)
			if !ok || sf.dir == nil {
				return false
			}
			if _, _, err := ns.Create(sf.dir, sf.name, backend.CallOpts{}); err != nil {
				c.scrub.repairErr.Add(1)
				return false
			}
		}
	}

	ok := true
	for i := uint64(0); i < nblocks; i++ {
		c.scrub.blocks.Add(1)
		srcHash, srcN, err := blockHash(src, f, i, bs)
		if err != nil {
			if failoverClass(err) {
				// The reference replica is unreachable mid-walk: nothing
				// useful can be decided about the remaining blocks.
				return false
			}
			ok = false
			continue
		}
		dstHash, dstN, err := blockHash(dst, f, i, bs)
		if err != nil && failoverClass(err) {
			// An unreachable dst is having an outage, not divergence —
			// abort the walk instead of booking every block as divergent
			// with a failed repair. The health layer (probes, op errors)
			// owns outage handling; scrub retries after recovery.
			return false
		}
		if err == nil && dstHash == srcHash && dstN == srcN {
			continue
		}
		// Divergent, missing or unreadable on dst: rewrite from src.
		c.scrub.divergent.Add(1)
		res, err := src.b.Read(f, i*uint64(bs), uint32(bs), backend.CallOpts{})
		if err != nil {
			c.scrub.repairErr.Add(1)
			ok = false
			continue
		}
		if _, err := dst.b.Write(f, i*uint64(bs), res.Data, backend.CallOpts{}); err != nil {
			c.scrub.repairErr.Add(1)
			ok = false
			continue
		}
		c.scrub.repaired.Add(1)
	}
	return ok
}

// RegisterFile adds a file to the scrub registry without an operation
// touching it first (benchmarks seed their working set this way).
func (c *Backend) RegisterFile(f backend.FileID) { c.scrub.register(f, nil, "") }
