// Package backend defines the proxy↔upstream boundary: the narrow
// interface a GVFS proxy needs from whatever holds the authoritative
// bytes. The paper assumes the upstream is always a WAN NFSv3 server,
// but the proxy's caching machinery only ever needs "read a byte
// range, write a byte range durably, commit, stat, and tell me if you
// are alive" — so that contract is extracted here and the NFSv3
// client becomes one implementation (internal/backend/nfs3be) beside
// an object-store implementation (internal/backend/objstore) usable
// in tests and benchmarks without an nfsd.
//
// The package is a leaf: it imports only the standard library, so the
// cache and proxy layers can depend on it without dragging RPC wire
// types onto the data path.
package backend

import "time"

// FileID names a file at the backend. For nfs3be it is the opaque NFS
// file handle; for objstore it is the object path. The proxy treats
// it as an opaque byte string.
type FileID []byte

// Key returns the FileID as a map key.
func (f FileID) Key() string { return string(f) }

// CallOpts carries per-call context across the boundary. The zero
// value means "no deadline, no trace".
type CallOpts struct {
	// Deadline, when nonzero, bounds the call (including transport
	// retries). An expired deadline surfaces as a ClassTimeout error.
	Deadline time.Time

	// TraceID and Hop propagate the request trace to upstreams that
	// can carry it (nfs3be encodes them in the RPC verifier). TraceID
	// zero means budget-only or no trace.
	TraceID uint64
	Hop     uint32
}

// Attr is the subset of file attributes the proxy's data path needs.
type Attr struct {
	Size uint64
	Mode uint32
	Dir  bool
}

// ReadResult is one Read's outcome. Data may alias a transport-owned
// buffer that is recycled on the next call: callers must copy bytes
// they retain past the call.
type ReadResult struct {
	Data []byte
	EOF  bool
	Attr *Attr // post-op attributes when the backend knows them
}

// Caps advertises what a backend can do, so the proxy can enable
// optional machinery (pipelined read-ahead, hash-hinted dedup)
// without type-switching on concrete implementations for policy.
type Caps struct {
	// Name labels the backend in logs and metrics ("nfs3", "objstore").
	Name string

	// Batched is set when ReadBatch pipelines a window of reads in
	// roughly one round trip (see BatchReader).
	Batched bool

	// ContentHashes is set when the backend knows block content
	// hashes without transferring the data (see Hasher).
	ContentHashes bool
}

// Backend is the upstream contract for the proxy data path: READ and
// WRITE misses, write-back of dirty frames, commit, size probing, and
// the circuit breaker's health probe all go through it.
//
// Error discipline: every non-nil error should be (or wrap) a
// *backend.Error so callers can dispatch on its Class; see Classify.
type Backend interface {
	// Read returns up to count bytes at off. Short reads at EOF set
	// ReadResult.EOF; reads entirely past EOF return empty data with
	// EOF set, not an error.
	Read(f FileID, off uint64, count uint32, opts CallOpts) (ReadResult, error)

	// Write stores data at off with durable (FILE_SYNC-equivalent)
	// semantics: when Write returns nil the bytes survive a backend
	// crash. The write-back cache depends on this to mark frames
	// clean. Returns post-op attributes when known.
	Write(f FileID, off uint64, data []byte, opts CallOpts) (*Attr, error)

	// Commit makes previously written data durable. With Write already
	// durable it is a no-op for both bundled backends, but the proxy
	// calls it where NFS COMMIT semantics require.
	Commit(f FileID, opts CallOpts) error

	// GetAttr returns the file's attributes (the proxy mainly wants
	// Size for EOF computation).
	GetAttr(f FileID, opts CallOpts) (Attr, error)

	// Probe is the circuit breaker's recovery check: nil means the
	// backend is reachable (even if individual files error).
	Probe() error

	// Caps reports the backend's capabilities.
	Caps() Caps

	// Close releases resources owned by the backend. It does not
	// close transports owned by the caller.
	Close() error
}

// Lookuper resolves a name in a directory. The proxy's meta-data
// machinery uses it to find .meta companion files.
type Lookuper interface {
	Lookup(dir FileID, name string, opts CallOpts) (FileID, Attr, error)
}

// Namespacer is implemented by backends that can serve as the whole
// upstream — no raw RPC relay behind them. The proxy uses it to
// synthesize MOUNT/LOOKUP/CREATE replies when Config.Upstream is nil.
type Namespacer interface {
	Lookuper

	// Root resolves an export path to its root FileID.
	Root(dirpath string) (FileID, Attr, error)

	// Create makes an empty regular file.
	Create(dir FileID, name string, opts CallOpts) (FileID, Attr, error)
}

// Hasher is implemented by content-addressed backends that know block
// hashes without transferring data. BlockHash returns the hash of
// block's content and the content's length; ok is false when the
// backend cannot answer for this file/blockSize (wrong manifest block
// size, unknown file), in which case the caller falls back to a
// normal Read.
type Hasher interface {
	BlockHash(f FileID, block uint64, blockSize int) (h Hash, n uint32, ok bool)
}

// BatchReader pipelines a window of same-size reads: all requests go
// out back to back and each reply is delivered to the callback in
// order. Over a WAN the window costs roughly one round trip. The
// ReadResult passed to each may alias transport buffers; copy to
// retain.
type BatchReader interface {
	ReadBatch(f FileID, offs []uint64, count uint32, opts CallOpts, each func(i int, r ReadResult, err error))
}

// TransportStats mirrors the fault-tolerant RPC client's counters so
// the proxy's metrics bridges stay backend-agnostic.
type TransportStats struct {
	Retries    uint64
	Reconnects uint64
	Timeouts   uint64
}

// TransportStatser exposes transport-level retry counters.
type TransportStatser interface {
	TransportStats() TransportStats
}

// CredSource supplies the credential for backend-initiated upstream
// calls, pre-encoded as an RPC auth flavor and opaque body. It lives
// here as a plain function type so backends that authenticate (nfs3be)
// can accept one without this package importing RPC types.
type CredSource func() (flavor uint32, body []byte, err error)

// CredentialCarrier is implemented by backends that attach caller
// credentials to upstream calls. The proxy installs a source that
// yields the identity-mapped session credential.
type CredentialCarrier interface {
	SetCredSource(src CredSource)
}
