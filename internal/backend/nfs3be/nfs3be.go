// Package nfs3be adapts the NFSv3-over-sunrpc client to the
// backend.Backend contract. It is the paper's original upstream — a
// (possibly WAN-distant) NFS server — moved behind the pluggable
// boundary: per-call deadline propagation, trace-context verifiers,
// transport retry counters and the error taxonomy the circuit breaker
// keys on are all preserved here, out of the proxy's data path.
package nfs3be

import (
	"context"
	"errors"
	"sync"
	"time"

	"gvfs/internal/backend"
	"gvfs/internal/bufpool"
	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
)

// defaultCred authenticates backend-initiated calls when no credential
// source is installed.
var defaultCred = sunrpc.UnixCred{MachineName: "gvfs-proxy", UID: 0, GID: 0}.Encode()

// Backend speaks NFSv3 to the next hop over an RPC transport.
type Backend struct {
	rpc nfs3.Caller

	mu  sync.RWMutex
	src backend.CredSource
}

// New wraps an NFSv3 RPC transport. The caller keeps ownership of the
// transport's lifecycle (Close here does not close it).
func New(rpc nfs3.Caller) *Backend { return &Backend{rpc: rpc} }

// SetCredSource installs the credential source for upstream calls
// (the proxy wires its identity-mapped session credential here).
func (b *Backend) SetCredSource(src backend.CredSource) {
	b.mu.Lock()
	b.src = src
	b.mu.Unlock()
}

func (b *Backend) cred() (sunrpc.OpaqueAuth, error) {
	b.mu.RLock()
	src := b.src
	b.mu.RUnlock()
	if src == nil {
		return defaultCred, nil
	}
	flavor, body, err := src()
	if err != nil {
		return sunrpc.OpaqueAuth{}, &backend.Error{Class: backend.ClassIO, Op: "cred", Err: err}
	}
	return sunrpc.OpaqueAuth{Flavor: flavor, Body: body}, nil
}

func remainingBudgetMs(deadline time.Time) uint32 {
	if deadline.IsZero() {
		return 0
	}
	rem := time.Until(deadline)
	if rem < time.Millisecond {
		return 1
	}
	ms := rem / time.Millisecond
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// verf builds the trace/budget verifier for opts, reporting whether
// one is needed.
func verf(opts backend.CallOpts) (sunrpc.OpaqueAuth, bool) {
	var tc sunrpc.TraceContext
	have := false
	if opts.TraceID != 0 {
		tc.ID, tc.Hop = opts.TraceID, opts.Hop
		have = true
	}
	if budget := remainingBudgetMs(opts.Deadline); budget > 0 {
		tc.BudgetMs = budget
		have = true
	}
	if !have {
		return sunrpc.OpaqueAuth{}, false
	}
	return tc.EncodeVerf(), true
}

// call issues one upstream RPC, attaching the trace context and/or
// remaining deadline budget as a verifier when the transport can
// carry them, and capping retransmission at the deadline when the
// transport supports that.
func (b *Backend) call(proc uint32, args []byte, opts backend.CallOpts) ([]byte, error) {
	cred, err := b.cred()
	if err != nil {
		return nil, err
	}
	if v, ok := verf(opts); ok {
		if !opts.Deadline.IsZero() {
			if dc, isDC := b.rpc.(sunrpc.DeadlineVerfCaller); isDC {
				return dc.CallVerfDeadline(nfs3.Program, nfs3.Version, proc, cred, v, args, opts.Deadline)
			}
		}
		if vc, isVC := b.rpc.(sunrpc.VerfCaller); isVC {
			return vc.CallVerf(nfs3.Program, nfs3.Version, proc, cred, v, args)
		}
	}
	return b.rpc.Call(nfs3.Program, nfs3.Version, proc, cred, args)
}

// wrapErr classifies a transport/RPC-level error. An *sunrpc.RPCError
// means the server answered at the RPC layer (prog unavailable, auth
// rejected): the path is alive, so it is ClassIO, not unavailability.
func wrapErr(op string, err error) error {
	if err == nil {
		return nil
	}
	var be *backend.Error
	if errors.As(err, &be) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &backend.Error{Class: backend.ClassTimeout, Op: op, Err: err}
	}
	var rpcErr *sunrpc.RPCError
	if errors.As(err, &rpcErr) {
		return &backend.Error{Class: backend.ClassIO, Op: op, Err: err}
	}
	return &backend.Error{Class: backend.ClassUnavailable, Op: op, Err: err}
}

// statusErr classifies a decoded NFS status, preserving the original
// code for clients that want to see it.
func statusErr(op string, st nfs3.Status) error {
	class := backend.ClassIO
	switch st {
	case nfs3.ErrJukebox:
		class = backend.ClassRetriable
	case nfs3.ErrStale, nfs3.ErrBadHandle:
		class = backend.ClassStale
	case nfs3.ErrNoEnt:
		class = backend.ClassNotFound
	}
	return &backend.Error{Class: class, Op: op, Status: uint32(st), Err: &nfs3.Error{Status: st, Op: op}}
}

func attrOf(a *nfs3.Fattr) *backend.Attr {
	if a == nil {
		return nil
	}
	return &backend.Attr{Size: a.Size, Mode: a.Mode, Dir: a.Type == nfs3.TypeDir}
}

// Read implements backend.Backend.
func (b *Backend) Read(f backend.FileID, off uint64, count uint32, opts backend.CallOpts) (backend.ReadResult, error) {
	args := nfs3.ReadArgs{FH: nfs3.FH(f), Offset: off, Count: count}
	buf := args.AppendTo(bufpool.Get(nfs3.FHSize + 16)[:0])
	res, err := b.call(nfs3.ProcRead, buf, opts)
	bufpool.Put(buf)
	if err != nil {
		return backend.ReadResult{}, wrapErr("read", err)
	}
	var r nfs3.ReadRes
	if err := r.DecodeRefInto(res); err != nil {
		return backend.ReadResult{}, &backend.Error{Class: backend.ClassIO, Op: "read", Err: err}
	}
	if r.Status != nfs3.OK {
		return backend.ReadResult{}, statusErr("read", r.Status)
	}
	return backend.ReadResult{Data: r.Data, EOF: r.EOF, Attr: attrOf(r.Attr)}, nil
}

// Write implements backend.Backend with FILE_SYNC stability: the data
// is durable at the server when Write returns nil.
func (b *Backend) Write(f backend.FileID, off uint64, data []byte, opts backend.CallOpts) (*backend.Attr, error) {
	args := nfs3.WriteArgs{FH: nfs3.FH(f), Offset: off, Count: uint32(len(data)), Stable: nfs3.FileSync, Data: data}
	buf := args.AppendTo(bufpool.Get(nfs3.WriteArgsSize(len(data)))[:0])
	res, err := b.call(nfs3.ProcWrite, buf, opts)
	bufpool.Put(buf)
	if err != nil {
		return nil, wrapErr("write", err)
	}
	var r nfs3.WriteRes
	if err := r.DecodeInto(res); err != nil {
		return nil, &backend.Error{Class: backend.ClassIO, Op: "write", Err: err}
	}
	if r.Status != nfs3.OK {
		return nil, statusErr("write", r.Status)
	}
	return attrOf(r.Wcc.After), nil
}

// Commit implements backend.Backend.
func (b *Backend) Commit(f backend.FileID, opts backend.CallOpts) error {
	args := nfs3.CommitArgs{FH: nfs3.FH(f)}
	res, err := b.call(nfs3.ProcCommit, args.Encode(), opts)
	if err != nil {
		return wrapErr("commit", err)
	}
	// commit3res: status + wcc_data (+ verf on success).
	var r nfs3.WriteRes
	if err := r.DecodeInto(res); err == nil && r.Status != nfs3.OK {
		return statusErr("commit", r.Status)
	}
	return nil
}

// GetAttr implements backend.Backend.
func (b *Backend) GetAttr(f backend.FileID, opts backend.CallOpts) (backend.Attr, error) {
	args := nfs3.GetattrArgs{FH: nfs3.FH(f)}
	res, err := b.call(nfs3.ProcGetattr, args.Encode(), opts)
	if err != nil {
		return backend.Attr{}, wrapErr("getattr", err)
	}
	r, err := nfs3.DecodeGetattrRes(res)
	if err != nil {
		return backend.Attr{}, &backend.Error{Class: backend.ClassIO, Op: "getattr", Err: err}
	}
	if r.Status != nfs3.OK {
		return backend.Attr{}, statusErr("getattr", r.Status)
	}
	a := attrOf(&r.Attr)
	return *a, nil
}

// Lookup implements backend.Lookuper (the meta-data machinery resolves
// .meta companions through it).
func (b *Backend) Lookup(dir backend.FileID, name string, opts backend.CallOpts) (backend.FileID, backend.Attr, error) {
	args := nfs3.LookupArgs{Dir: nfs3.FH(dir), Name: name}
	res, err := b.call(nfs3.ProcLookup, args.Encode(), opts)
	if err != nil {
		return nil, backend.Attr{}, wrapErr("lookup", err)
	}
	r, err := nfs3.DecodeLookupRes(res)
	if err != nil {
		return nil, backend.Attr{}, &backend.Error{Class: backend.ClassIO, Op: "lookup", Err: err}
	}
	if r.Status != nfs3.OK {
		return nil, backend.Attr{}, statusErr("lookup", r.Status)
	}
	var attr backend.Attr
	if a := attrOf(r.ObjAttr); a != nil {
		attr = *a
	}
	return backend.FileID(r.Object), attr, nil
}

// Probe implements the circuit breaker's recovery check: a NULL call
// that reaches the server at the RPC level means the path is back,
// even if the server rejects the program or credential.
func (b *Backend) Probe() error {
	cred, err := b.cred()
	if err != nil {
		return err
	}
	_, err = b.rpc.Call(nfs3.Program, nfs3.Version, nfs3.ProcNull, cred, nil)
	if err == nil {
		return nil
	}
	var rpcErr *sunrpc.RPCError
	if errors.As(err, &rpcErr) {
		return nil
	}
	return wrapErr("probe", err)
}

// ReadBatch implements backend.BatchReader when the transport can
// pipeline (sunrpc.Starter): the whole window is transmitted back to
// back and the in-order replies are handed to each. Falls back to
// sequential reads otherwise.
func (b *Backend) ReadBatch(f backend.FileID, offs []uint64, count uint32, opts backend.CallOpts, each func(i int, r backend.ReadResult, err error)) {
	st, ok := b.rpc.(sunrpc.Starter)
	if !ok {
		for i, off := range offs {
			r, err := b.Read(f, off, count, opts)
			each(i, r, err)
		}
		return
	}
	cred, err := b.cred()
	if err != nil {
		for i := range offs {
			each(i, backend.ReadResult{}, err)
		}
		return
	}
	type flight struct {
		idx int
		pd  *sunrpc.Pending
	}
	flights := make([]flight, 0, len(offs))
	started := 0
	for i, off := range offs {
		args := nfs3.ReadArgs{FH: nfs3.FH(f), Offset: off, Count: count}
		buf := args.AppendTo(bufpool.Get(nfs3.FHSize + 16)[:0])
		pd, err := st.Start(nfs3.Program, nfs3.Version, nfs3.ProcRead, cred, buf)
		bufpool.Put(buf)
		if err != nil {
			// Transport down: nothing later will fare better.
			each(i, backend.ReadResult{}, wrapErr("read-batch", err))
			break
		}
		flights = append(flights, flight{idx: i, pd: pd})
		started++
	}
	// Every started call must be waited (Wait releases the XID slot).
	for _, fl := range flights {
		res, err := fl.pd.Wait()
		if err != nil {
			each(fl.idx, backend.ReadResult{}, wrapErr("read-batch", err))
			continue
		}
		var r nfs3.ReadRes
		if derr := r.DecodeRefInto(res); derr != nil {
			each(fl.idx, backend.ReadResult{}, &backend.Error{Class: backend.ClassIO, Op: "read-batch", Err: derr})
			continue
		}
		if r.Status != nfs3.OK {
			each(fl.idx, backend.ReadResult{}, statusErr("read-batch", r.Status))
			continue
		}
		each(fl.idx, backend.ReadResult{Data: r.Data, EOF: r.EOF, Attr: attrOf(r.Attr)}, nil)
	}
}

// TransportStats implements backend.TransportStatser by passing
// through the RPC client's counters when it keeps them.
func (b *Backend) TransportStats() backend.TransportStats {
	if ts, ok := b.rpc.(interface{ TransportStats() sunrpc.TransportStats }); ok {
		t := ts.TransportStats()
		return backend.TransportStats{Retries: t.Retries, Reconnects: t.Reconnects, Timeouts: t.Timeouts}
	}
	return backend.TransportStats{}
}

// Caller exposes the wrapped transport for control-plane relay (the
// proxy forwards non-data procedures verbatim over it).
func (b *Backend) Caller() nfs3.Caller { return b.rpc }

// Caps implements backend.Backend.
func (b *Backend) Caps() backend.Caps {
	_, batched := b.rpc.(sunrpc.Starter)
	return backend.Caps{Name: "nfs3", Batched: batched}
}

// Close implements backend.Backend. The RPC transport belongs to the
// caller, so there is nothing to release here.
func (b *Backend) Close() error { return nil }
