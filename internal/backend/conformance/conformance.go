// Package conformance is the executable contract for backend.Backend
// implementations. Both bundled backends (nfs3be over a live RPC
// server, objstore over an in-memory store) must pass the same suite,
// so the proxy can treat them interchangeably: byte-range semantics,
// EOF behavior, durable writes, and — critically — the error taxonomy
// the circuit breaker and write-back machinery dispatch on.
package conformance

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gvfs/internal/backend"
)

// Fixture is one backend instance under test, built fresh per subtest.
type Fixture struct {
	// B is the backend, with File already holding Content.
	B    backend.Backend
	File backend.FileID
	// Content is the file's initial bytes (echoed back by the maker so
	// the suite can size reads off the real fixture).
	Content []byte

	// SetJukebox toggles transient-failure injection on data calls
	// (ClassRetriable). Nil skips the jukebox subtest.
	SetJukebox func(on bool)

	// KillTransport makes the backend unreachable (ClassUnavailable).
	// Irreversible; called last in its subtest. Nil skips the subtest.
	KillTransport func()
}

// Maker builds a fresh fixture whose File contains content. Register
// cleanup with t.Cleanup.
type Maker func(t *testing.T, content []byte) *Fixture

// content builds the deterministic test file: every byte derived from
// its offset, so any misplaced block is caught by a plain compare.
func content(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i>>8)
	}
	return data
}

const fileSize = 40960 // 5 blocks of 8 KiB

// Run drives the conformance suite against fixtures built by mk.
func Run(t *testing.T, mk Maker) {
	t.Run("ReadFull", func(t *testing.T) {
		f := mk(t, content(fileSize))
		r, err := f.B.Read(f.File, 0, uint32(len(f.Content)+16), backend.CallOpts{})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(r.Data, f.Content) {
			t.Errorf("read returned %d bytes, want %d matching bytes", len(r.Data), len(f.Content))
		}
		if !r.EOF {
			t.Error("read to end did not report EOF")
		}
	})

	t.Run("ReadPartial", func(t *testing.T) {
		f := mk(t, content(fileSize))
		const off, count = 8192, 8192
		r, err := f.B.Read(f.File, off, count, backend.CallOpts{})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(r.Data, f.Content[off:off+count]) {
			t.Error("partial read returned wrong bytes")
		}
		if r.EOF {
			t.Error("mid-file read reported EOF")
		}
	})

	t.Run("ReadPastEOF", func(t *testing.T) {
		f := mk(t, content(fileSize))
		r, err := f.B.Read(f.File, uint64(len(f.Content))+8192, 8192, backend.CallOpts{})
		if err != nil {
			t.Fatalf("read past EOF must not error, got %v", err)
		}
		if len(r.Data) != 0 || !r.EOF {
			t.Errorf("read past EOF: %d bytes, EOF=%v; want empty + EOF", len(r.Data), r.EOF)
		}
	})

	t.Run("ReadShortAtEOF", func(t *testing.T) {
		f := mk(t, content(fileSize))
		off := uint64(len(f.Content) - 100)
		r, err := f.B.Read(f.File, off, 8192, backend.CallOpts{})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(r.Data, f.Content[off:]) {
			t.Errorf("short read at EOF returned %d bytes, want 100", len(r.Data))
		}
		if !r.EOF {
			t.Error("read straddling EOF did not report EOF")
		}
	})

	t.Run("GetAttrSize", func(t *testing.T) {
		f := mk(t, content(fileSize))
		attr, err := f.B.GetAttr(f.File, backend.CallOpts{})
		if err != nil {
			t.Fatalf("getattr: %v", err)
		}
		if attr.Size != uint64(len(f.Content)) {
			t.Errorf("size = %d, want %d", attr.Size, len(f.Content))
		}
	})

	t.Run("WriteReadbackCommit", func(t *testing.T) {
		f := mk(t, content(fileSize))
		// Overwrite a range that straddles a block boundary, then
		// extend the file past its old end.
		patch := bytes.Repeat([]byte{0xC3}, 4096)
		if _, err := f.B.Write(f.File, 8192-2048, patch, backend.CallOpts{}); err != nil {
			t.Fatalf("write: %v", err)
		}
		tail := bytes.Repeat([]byte{0x5E}, 3000)
		growOff := uint64(len(f.Content))
		if _, err := f.B.Write(f.File, growOff, tail, backend.CallOpts{}); err != nil {
			t.Fatalf("extending write: %v", err)
		}
		if err := f.B.Commit(f.File, backend.CallOpts{}); err != nil {
			t.Fatalf("commit: %v", err)
		}
		attr, err := f.B.GetAttr(f.File, backend.CallOpts{})
		if err != nil {
			t.Fatalf("getattr: %v", err)
		}
		if want := growOff + uint64(len(tail)); attr.Size != want {
			t.Errorf("size after extend = %d, want %d", attr.Size, want)
		}
		r, err := f.B.Read(f.File, 8192-2048, 4096, backend.CallOpts{})
		if err != nil || !bytes.Equal(r.Data, patch) {
			t.Errorf("patched range readback: err=%v match=%v", err, bytes.Equal(r.Data, patch))
		}
		r, err = f.B.Read(f.File, growOff, uint32(len(tail)), backend.CallOpts{})
		if err != nil || !bytes.Equal(r.Data, tail) {
			t.Errorf("extended range readback: err=%v match=%v", err, bytes.Equal(r.Data, tail))
		}
		// Untouched bytes must survive both writes.
		r, err = f.B.Read(f.File, 16384, 8192, backend.CallOpts{})
		if err != nil || !bytes.Equal(r.Data, f.Content[16384:16384+8192]) {
			t.Errorf("untouched range corrupted by writes: err=%v", err)
		}
	})

	t.Run("ConcurrentDisjointWrites", func(t *testing.T) {
		// The proxy's flush pipeline has FlushConcurrency dirty blocks
		// of one file in flight at once; every one of those durable
		// writes must survive, whatever the interleaving.
		f := mk(t, content(fileSize))
		const writers, rounds = 5, 12
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					patch := bytes.Repeat([]byte{0xA0 + byte(w)}, 8192)
					if _, err := f.B.Write(f.File, uint64(w)*8192, patch, backend.CallOpts{}); err != nil {
						t.Errorf("writer %d round %d: %v", w, r, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err := f.B.Commit(f.File, backend.CallOpts{}); err != nil {
			t.Fatalf("commit: %v", err)
		}
		for w := 0; w < writers; w++ {
			r, err := f.B.Read(f.File, uint64(w)*8192, 8192, backend.CallOpts{})
			if err != nil {
				t.Fatalf("readback block %d: %v", w, err)
			}
			want := bytes.Repeat([]byte{0xA0 + byte(w)}, 8192)
			if !bytes.Equal(r.Data, want) {
				t.Errorf("block %d lost a concurrent write (got %x..., want %x...)", w, r.Data[:4], want[:4])
			}
		}
	})

	t.Run("Probe", func(t *testing.T) {
		f := mk(t, content(fileSize))
		if err := f.B.Probe(); err != nil {
			t.Errorf("probe on healthy backend: %v", err)
		}
		if f.B.Caps().Name == "" {
			t.Error("Caps().Name is empty")
		}
	})

	t.Run("JukeboxIsRetriable", func(t *testing.T) {
		f := mk(t, content(fileSize))
		if f.SetJukebox == nil {
			t.Skip("fixture has no jukebox injection")
		}
		f.SetJukebox(true)
		_, err := f.B.Read(f.File, 0, 8192, backend.CallOpts{})
		if err == nil {
			t.Fatal("read succeeded under jukebox injection")
		}
		if c := backend.Classify(err); c != backend.ClassRetriable {
			t.Errorf("jukebox classified %v, want retriable (err: %v)", c, err)
		}
		if _, werr := f.B.Write(f.File, 0, make([]byte, 512), backend.CallOpts{}); werr == nil {
			t.Error("write succeeded under jukebox injection")
		} else if c := backend.Classify(werr); c != backend.ClassRetriable {
			t.Errorf("jukebox write classified %v, want retriable", c)
		}
		f.SetJukebox(false)
		if _, err := f.B.Read(f.File, 0, 8192, backend.CallOpts{}); err != nil {
			t.Errorf("read after jukebox cleared: %v", err)
		}
	})

	t.Run("ExpiredDeadlineIsTimeout", func(t *testing.T) {
		f := mk(t, content(fileSize))
		opts := backend.CallOpts{Deadline: time.Now().Add(-time.Second)}
		_, err := f.B.Read(f.File, 0, 8192, opts)
		if err == nil {
			t.Fatal("read with expired deadline succeeded")
		}
		if c := backend.Classify(err); c != backend.ClassTimeout {
			t.Errorf("expired deadline classified %v, want timeout (err: %v)", c, err)
		}
	})

	t.Run("DeadTransportIsUnavailable", func(t *testing.T) {
		f := mk(t, content(fileSize))
		if f.KillTransport == nil {
			t.Skip("fixture has no transport kill")
		}
		f.KillTransport()
		_, err := f.B.Read(f.File, 0, 8192, backend.CallOpts{})
		if err == nil {
			t.Fatal("read succeeded over a dead transport")
		}
		if c := backend.Classify(err); c != backend.ClassUnavailable {
			t.Errorf("dead transport classified %v, want unavailable (err: %v)", c, err)
		}
		perr := f.B.Probe()
		if perr == nil {
			t.Error("probe reported a dead transport healthy")
		} else if c := backend.Classify(perr); c != backend.ClassUnavailable {
			// The class matters, not just presence: the breaker counts
			// only Unavailable, and the replicated backend fails over on
			// it. A misclassified probe error silently disables both.
			t.Errorf("dead-transport probe classified %v, want unavailable (err: %v)", c, perr)
		}
	})
}
