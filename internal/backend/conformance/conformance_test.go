package conformance

import (
	"net"
	"sync/atomic"
	"testing"

	"gvfs/internal/backend"
	"gvfs/internal/backend/nfs3be"
	"gvfs/internal/backend/objstore"
	"gvfs/internal/backend/replbe"
	"gvfs/internal/memfs"
	"gvfs/internal/nfs3"
	"gvfs/internal/sunrpc"
)

// faultyFS wraps the in-memory NFS backend with jukebox injection on
// the data procedures, so the suite can see NFS3ERR_JUKEBOX arrive
// through a real server and wire decode.
type faultyFS struct {
	*memfs.FS
	jukebox atomic.Bool
}

func (f *faultyFS) Read(fh nfs3.FH, off uint64, count uint32) ([]byte, bool, error) {
	if f.jukebox.Load() {
		return nil, false, &nfs3.Error{Status: nfs3.ErrJukebox, Op: "read"}
	}
	return f.FS.Read(fh, off, count)
}

func (f *faultyFS) Write(fh nfs3.FH, off uint64, data []byte) (nfs3.Fattr, error) {
	if f.jukebox.Load() {
		return nfs3.Fattr{}, &nfs3.Error{Status: nfs3.ErrJukebox, Op: "write"}
	}
	return f.FS.Write(fh, off, data)
}

// TestNFS3Backend runs the suite against nfs3be over a live userspace
// NFS server on a loopback TCP connection.
func TestNFS3Backend(t *testing.T) {
	Run(t, func(t *testing.T, content []byte) *Fixture {
		fs := memfs.New()
		fs.WriteFile("/data.bin", content)
		faulty := &faultyFS{FS: fs}

		srv := sunrpc.NewServer()
		srv.Register(nfs3.Program, nfs3.Version, nfs3.NewServer(faulty))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close(); l.Close() })

		client, err := sunrpc.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })

		root, err := fs.Root()
		if err != nil {
			t.Fatal(err)
		}
		fh, _, err := fs.Lookup(root, "data.bin")
		if err != nil {
			t.Fatal(err)
		}
		return &Fixture{
			B:          nfs3be.New(client),
			File:       backend.FileID(fh),
			Content:    content,
			SetJukebox: faulty.jukebox.Store,
			KillTransport: func() {
				client.Close()
				srv.Close()
				l.Close()
			},
		}
	})
}

// TestObjstoreBackend runs the suite against the content-addressed
// object store over an in-memory Store, using its fault injection for
// the failure-class subtests.
func TestObjstoreBackend(t *testing.T) {
	Run(t, func(t *testing.T, content []byte) *Fixture {
		be := objstore.New(objstore.NewMemStore(), 8192)
		if err := be.CreateFile("/data.bin", content); err != nil {
			t.Fatal(err)
		}
		return &Fixture{
			B:       be,
			File:    backend.FileID("/data.bin"),
			Content: content,
			SetJukebox: func(on bool) {
				if on {
					be.SetFault(&backend.Error{
						Class:  backend.ClassRetriable,
						Op:     "fault",
						Status: uint32(nfs3.ErrJukebox),
					})
				} else {
					be.SetFault(nil)
				}
			},
			KillTransport: func() {
				be.SetFault(&backend.Error{Class: backend.ClassUnavailable, Op: "fault"})
			},
		}
	})
}

// TestReplBackend runs the suite against the replicated composite over
// three identically seeded object stores, with replica 0 permanently
// unreachable — the composite must pass every subtest, including the
// failure-class ones, while quietly failing over around the dead
// replica. The fault hooks hit the two live replicas so "jukebox" and
// "dead transport" mean the whole surviving set.
func TestReplBackend(t *testing.T) {
	Run(t, func(t *testing.T, content []byte) *Fixture {
		stores := make([]*objstore.Backend, 3)
		reps := make([]replbe.Replica, 3)
		for i := range stores {
			be := objstore.New(objstore.NewMemStore(), 8192)
			if err := be.CreateFile("/data.bin", content); err != nil {
				t.Fatal(err)
			}
			stores[i] = be
			reps[i] = replbe.Replica{Name: "r" + string(rune('0'+i)), B: be}
		}
		stores[0].SetFault(&backend.Error{Class: backend.ClassUnavailable, Op: "fault"})
		rb, err := replbe.New(reps, replbe.Config{
			ScrubInterval: -1, // deterministic: no background pass mid-subtest
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rb.Close() })
		return &Fixture{
			B:       rb,
			File:    backend.FileID("/data.bin"),
			Content: content,
			SetJukebox: func(on bool) {
				for _, be := range stores[1:] {
					if on {
						be.SetFault(&backend.Error{
							Class:  backend.ClassRetriable,
							Op:     "fault",
							Status: uint32(nfs3.ErrJukebox),
						})
					} else {
						be.SetFault(nil)
					}
				}
			},
			KillTransport: func() {
				for _, be := range stores[1:] {
					be.SetFault(&backend.Error{Class: backend.ClassUnavailable, Op: "fault"})
				}
			},
		}
	})
}

// TestObjstoreDirStore re-runs the core read/write subtests against a
// directory-backed store, proving the durable store path matches the
// in-memory one (no fault hooks: DirStore has no injection surface).
func TestObjstoreDirStore(t *testing.T) {
	Run(t, func(t *testing.T, content []byte) *Fixture {
		store, err := objstore.NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		be := objstore.New(store, 8192)
		if err := be.CreateFile("/data.bin", content); err != nil {
			t.Fatal(err)
		}
		return &Fixture{B: be, File: backend.FileID("/data.bin"), Content: content}
	})
}
