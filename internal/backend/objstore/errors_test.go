package objstore

import (
	"bytes"
	"errors"
	"syscall"
	"testing"

	"gvfs/internal/backend"
)

// faultStore wraps a Store and fails Get/Put with a fixed error,
// standing in for a filesystem-backed store hitting ENOSPC, EIO, etc.
type faultStore struct {
	Store
	getErr error
	putErr error
}

func (s *faultStore) Get(key string) ([]byte, error) {
	if s.getErr != nil {
		return nil, s.getErr
	}
	return s.Store.Get(key)
}

func (s *faultStore) Put(key string, data []byte) error {
	if s.putErr != nil {
		return s.putErr
	}
	return s.Store.Put(key, data)
}

func classAndStatus(t *testing.T, err error, class backend.Class, status uint32) {
	t.Helper()
	if err == nil {
		t.Fatal("expected error")
	}
	if got := backend.Classify(err); got != class {
		t.Fatalf("class = %v, want %v (err: %v)", got, class, err)
	}
	var be *backend.Error
	if !errors.As(err, &be) {
		t.Fatalf("not a *backend.Error: %v", err)
	}
	if be.Status != status {
		t.Fatalf("status = %d, want %d (err: %v)", be.Status, status, err)
	}
}

func TestStoreErrorTaxonomy(t *testing.T) {
	fs := &faultStore{Store: NewMemStore()}
	b := New(fs, 4096)
	defer b.Close()
	if err := b.CreateFile("/images/vm.img", bytes.Repeat([]byte{0xab}, 8192)); err != nil {
		t.Fatal(err)
	}
	f := backend.FileID("/images/vm.img")

	// Missing file: NotFound, NFS3ERR_NOENT.
	_, err := b.GetAttr(backend.FileID("/images/absent.img"), backend.CallOpts{})
	classAndStatus(t, err, backend.ClassNotFound, 2)

	// Store out of space on write: IO-class (path alive, breaker- and
	// replica-health-neutral), NFS3ERR_NOSPC.
	fs.putErr = syscall.ENOSPC
	_, err = b.Write(f, 0, []byte("x"), backend.CallOpts{})
	classAndStatus(t, err, backend.ClassIO, 28)

	// Quota exceeded maps the same way.
	fs.putErr = syscall.EDQUOT
	_, err = b.Write(f, 0, []byte("x"), backend.CallOpts{})
	classAndStatus(t, err, backend.ClassIO, 28)
	fs.putErr = nil

	// Media error on read: NFS3ERR_IO.
	fs.getErr = syscall.EIO
	_, err = b.Read(f, 0, 4096, backend.CallOpts{})
	classAndStatus(t, err, backend.ClassIO, 5)

	// Read-only filesystem: NFS3ERR_ROFS.
	fs.getErr = syscall.EROFS
	_, err = b.Read(f, 0, 4096, backend.CallOpts{})
	classAndStatus(t, err, backend.ClassIO, 30)

	// Permission denied: NFS3ERR_ACCES.
	fs.getErr = syscall.EACCES
	_, err = b.Read(f, 0, 4096, backend.CallOpts{})
	classAndStatus(t, err, backend.ClassIO, 13)
	fs.getErr = nil

	// Anything unrecognized stays Unavailable: transport-ish failures
	// must keep counting against the breaker.
	fs.getErr = errors.New("connection reset by peer")
	_, err = b.Read(f, 0, 4096, backend.CallOpts{})
	if got := backend.Classify(err); got != backend.ClassUnavailable {
		t.Fatalf("unknown error class = %v, want Unavailable", got)
	}
	fs.getErr = nil
}

func TestMissingBlockObjectIsIO(t *testing.T) {
	ms := NewMemStore()
	b := New(ms, 4096)
	defer b.Close()
	if err := b.CreateFile("/images/vm.img", bytes.Repeat([]byte{0xcd}, 4096)); err != nil {
		t.Fatal(err)
	}
	f := backend.FileID("/images/vm.img")

	// Tear the block object out from under the manifest: store-side
	// corruption, surfaced as NFS3ERR_IO, not NOENT.
	keys, err := ms.List(dataPrefix)
	if err != nil || len(keys) == 0 {
		t.Fatalf("no data objects (err=%v)", err)
	}
	for _, k := range keys {
		if err := ms.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	_, err = b.Read(f, 0, 4096, backend.CallOpts{})
	classAndStatus(t, err, backend.ClassIO, 5)
}
