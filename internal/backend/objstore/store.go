package objstore

import (
	"errors"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrNotExist is returned by Store.Get for a missing key.
var ErrNotExist = errors.New("objstore: object does not exist")

// Store is the flat key→bytes substrate under the objstore backend: a
// get/put object store with no rename, no partial update, no
// directory semantics. MemStore backs tests and benchmarks; DirStore
// persists to a local directory.
type Store interface {
	// Get returns the object's bytes (callers must not mutate them)
	// or ErrNotExist.
	Get(key string) ([]byte, error)

	// Put stores the object durably; the data is copied.
	Put(key string, data []byte) error

	// Delete removes the object (missing keys are not an error).
	Delete(key string) error

	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu   sync.RWMutex
	objs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{objs: make(map[string][]byte)} }

func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objs[key]
	if !ok {
		return nil, ErrNotExist
	}
	return data, nil
}

func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	s.objs[key] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.objs, key)
	s.mu.Unlock()
	return nil
}

func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// DirStore stores each object as one file in a flat local directory,
// with the key URL-escaped into the file name. Puts go through a
// temp-file rename so crash-interrupted writes never surface as
// truncated objects.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, url.PathEscape(key))
}

func (s *DirStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotExist
	}
	return data, err
}

func (s *DirStore) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, s.path(key))
}

func (s *DirStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

func (s *DirStore) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".put-") {
			continue
		}
		key, err := url.PathUnescape(e.Name())
		if err != nil {
			continue
		}
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// StoreStats counts traffic through a CountingStore. DataGets/
// DataGetBytes cover only content objects (the "obj/" keyspace) —
// the dedup benchmark's origin-bytes measure.
type StoreStats struct {
	Gets         uint64
	GetBytes     uint64
	Puts         uint64
	PutBytes     uint64
	DataGets     uint64
	DataGetBytes uint64
}

// CountingStore wraps a Store and counts operations and bytes, so
// benchmarks can measure exactly what left the origin.
type CountingStore struct {
	Store
	gets, getBytes         atomic.Uint64
	puts, putBytes         atomic.Uint64
	dataGets, dataGetBytes atomic.Uint64
}

// NewCountingStore wraps inner with traffic counters.
func NewCountingStore(inner Store) *CountingStore { return &CountingStore{Store: inner} }

func (s *CountingStore) Get(key string) ([]byte, error) {
	data, err := s.Store.Get(key)
	if err == nil {
		s.gets.Add(1)
		s.getBytes.Add(uint64(len(data)))
		if strings.HasPrefix(key, dataPrefix) {
			s.dataGets.Add(1)
			s.dataGetBytes.Add(uint64(len(data)))
		}
	}
	return data, err
}

func (s *CountingStore) Put(key string, data []byte) error {
	err := s.Store.Put(key, data)
	if err == nil {
		s.puts.Add(1)
		s.putBytes.Add(uint64(len(data)))
	}
	return err
}

// Stats returns the counters' current values.
func (s *CountingStore) Stats() StoreStats {
	return StoreStats{
		Gets:         s.gets.Load(),
		GetBytes:     s.getBytes.Load(),
		Puts:         s.puts.Load(),
		PutBytes:     s.putBytes.Load(),
		DataGets:     s.dataGets.Load(),
		DataGetBytes: s.dataGetBytes.Load(),
	}
}
